/**
 * @file
 * halint output formats (text / JSON / SARIF 2.1.0) and the
 * baseline/ratchet machinery (tools/halint_baseline.json). See
 * DESIGN.md §14 for the workflow: bootstrap with --write-baseline,
 * then only ever shrink the committed file.
 */

#include "halint.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "json_mini.hh"
#include "lexer.hh" // trim()

namespace halint {

// --------------------------------------------------------------------
// Baseline
// --------------------------------------------------------------------

bool
loadBaseline(const std::string &json, Baseline &out, std::string &err)
{
    JsonParser jp{json};
    const JsonValue doc = jp.value();
    jp.ws();
    if (!jp.ok || jp.i != json.size() ||
        doc.kind != JsonValue::Kind::Obj) {
        err = "baseline is not a JSON object (line " +
              std::to_string(jp.line) + ")";
        return false;
    }
    const JsonValue *sup = doc.get("suppressions");
    if (sup == nullptr || sup->kind != JsonValue::Kind::Arr) {
        err = "baseline needs a top-level \"suppressions\" array";
        return false;
    }
    for (const JsonValue &e : sup->arr) {
        if (e.kind != JsonValue::Kind::Obj) {
            err = "suppression entry at line " +
                  std::to_string(e.line) + " is not an object";
            return false;
        }
        BaselineEntry be;
        const JsonValue *rule = e.get("rule");
        const JsonValue *file = e.get("file");
        const JsonValue *count = e.get("count");
        const JsonValue *reason = e.get("reason");
        if (rule == nullptr || rule->kind != JsonValue::Kind::Str ||
            file == nullptr || file->kind != JsonValue::Kind::Str ||
            count == nullptr ||
            count->kind != JsonValue::Kind::Other ||
            reason == nullptr ||
            reason->kind != JsonValue::Kind::Str) {
            err = "suppression entry at line " +
                  std::to_string(e.line) +
                  " needs string rule/file/reason and numeric count";
            return false;
        }
        be.rule = rule->str;
        be.file = file->str;
        be.reason = reason->str;
        try {
            be.count = std::stoi(count->str);
        } catch (...) {
            be.count = -1;
        }
        if (be.count <= 0) {
            err = "suppression entry at line " +
                  std::to_string(e.line) +
                  " has non-positive count — delete the entry "
                  "instead";
            return false;
        }
        if (trim(be.reason).empty()) {
            err = "suppression entry at line " +
                  std::to_string(e.line) +
                  " has an empty reason — every legacy finding "
                  "must say why it is tolerated";
            return false;
        }
        out.entries.push_back(std::move(be));
    }
    return true;
}

std::vector<Diagnostic>
applyBaseline(std::vector<Diagnostic> diags, const Baseline &bl,
              const std::string &baselinePath)
{
    std::vector<Diagnostic> out;
    // Per (rule, file): how many findings an entry may absorb.
    std::map<std::pair<std::string, std::string>, int> budget;
    for (const BaselineEntry &e : bl.entries)
        budget[{e.rule, e.file}] += e.count;
    std::map<std::pair<std::string, std::string>, int> absorbed;
    for (Diagnostic &d : diags) {
        const auto key = std::make_pair(d.rule, d.file);
        auto it = budget.find(key);
        if (it != budget.end() && it->second > 0) {
            --it->second;
            ++absorbed[key];
            continue;
        }
        out.push_back(std::move(d));
    }
    // Ratchet: leftover budget means the code improved but the
    // baseline did not shrink with it. Fail so it cannot regrow.
    for (const auto &[key, left] : budget)
        if (left > 0)
            out.push_back(
                {baselinePath, 0, kRuleDirective,
                 "stale baseline entry: rule " + key.first +
                     " in '" + key.second + "' matched only " +
                     std::to_string(absorbed[key]) + " of " +
                     std::to_string(absorbed[key] + left) +
                     " suppressed finding(s) — lower or delete the "
                     "entry so the ratchet can only tighten "
                     "(DESIGN.md §14)"});
    std::sort(out.begin(), out.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
    return out;
}

// --------------------------------------------------------------------
// Formats
// --------------------------------------------------------------------

std::string
formatText(const std::vector<Diagnostic> &diags)
{
    std::ostringstream os;
    for (const Diagnostic &d : diags)
        os << d.file << ":" << d.line << ": " << d.rule << ": "
           << d.message << "\n";
    return os.str();
}

std::string
formatJson(const std::vector<Diagnostic> &diags)
{
    std::ostringstream os;
    os << "{\n  \"diagnostics\": [";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        os << (i ? ",\n" : "\n")
           << "    {\"file\": \"" << jsonEscape(d.file)
           << "\", \"line\": " << d.line << ", \"rule\": \""
           << jsonEscape(d.rule) << "\", \"message\": \""
           << jsonEscape(d.message) << "\"}";
    }
    os << (diags.empty() ? "]" : "\n  ]") << ",\n  \"count\": "
       << diags.size() << "\n}\n";
    return os.str();
}

std::string
formatSarif(const std::vector<Diagnostic> &diags)
{
    // Rule metadata: id -> short description, collected from the
    // diagnostics actually present plus the static table.
    static const std::map<std::string, std::string> kRuleDesc{
        {"HAL-W000", "malformed or stale halint directive/baseline"},
        {"HAL-W001", "wall-clock time source in simulation code"},
        {"HAL-W002", "unseeded or non-deterministic RNG"},
        {"HAL-W003", "unordered container iteration in src/"},
        {"HAL-W004", "allocation inside a hotpath-annotated body"},
        {"HAL-W005", "impure parallelFor callback"},
        {"HAL-W006", "header hygiene (using namespace, etc.)"},
        {"HAL-W007", "cross-wheel state outside a mailbox"},
        {"HAL-W008",
         "allocation transitively reachable from a hotpath root"},
        {"HAL-W009",
         "cross-band field access outside a mailbox section"},
        {"HAL-W010",
         "kFields/stats registration drifted from bench_schema.json"},
    };
    std::set<std::string> used;
    for (const Diagnostic &d : diags)
        used.insert(d.rule);
    std::ostringstream os;
    os << "{\n"
          "  \"version\": \"2.1.0\",\n"
          "  \"$schema\": \"https://raw.githubusercontent.com/oasis-"
          "tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
          "  \"runs\": [\n"
          "    {\n"
          "      \"tool\": {\n"
          "        \"driver\": {\n"
          "          \"name\": \"halint\",\n"
          "          \"informationUri\": "
          "\"https://example.invalid/halsim/tools/halint\",\n"
          "          \"rules\": [";
    bool first = true;
    for (const std::string &id : used) {
        const auto it = kRuleDesc.find(id);
        os << (first ? "\n" : ",\n")
           << "            {\"id\": \"" << jsonEscape(id)
           << "\", \"shortDescription\": {\"text\": \""
           << jsonEscape(it != kRuleDesc.end() ? it->second
                                               : "halint rule")
           << "\"}}";
        first = false;
    }
    os << (used.empty() ? "]" : "\n          ]")
       << "\n        }\n      },\n      \"results\": [";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        os << (i ? ",\n" : "\n")
           << "        {\"ruleId\": \"" << jsonEscape(d.rule)
           << "\", \"level\": \"warning\", \"message\": {\"text\": \""
           << jsonEscape(d.message)
           << "\"}, \"locations\": [{\"physicalLocation\": "
              "{\"artifactLocation\": {\"uri\": \""
           << jsonEscape(d.file)
           << "\"}, \"region\": {\"startLine\": "
           << std::max(d.line, 1) << "}}}]}";
    }
    os << (diags.empty() ? "]" : "\n      ]")
       << "\n    }\n  ]\n}\n";
    return os.str();
}

std::string
formatBaseline(const std::vector<Diagnostic> &diags)
{
    // Collapse to (rule, file) counts, the unit the ratchet works in.
    std::map<std::pair<std::string, std::string>, int> counts;
    for (const Diagnostic &d : diags)
        ++counts[{d.rule, d.file}];
    std::ostringstream os;
    os << "{\n  \"suppressions\": [";
    bool first = true;
    for (const auto &[key, n] : counts) {
        os << (first ? "\n" : ",\n")
           << "    {\"rule\": \"" << jsonEscape(key.first)
           << "\", \"file\": \"" << jsonEscape(key.second)
           << "\", \"count\": " << n
           << ", \"reason\": \"TODO: justify or fix\"}";
        first = false;
    }
    os << (counts.empty() ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

} // namespace halint
