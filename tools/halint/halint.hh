/**
 * @file
 * halint: the repo-native determinism & concurrency analysis engine.
 *
 * The simulator's headline guarantee — bit-identical RunResult across
 * seeds, pooling modes, and sweep thread counts — depends on coding
 * invariants (no wall clock, no unseeded RNG, no unordered iteration,
 * allocation-free hot paths, pure parallelFor callbacks, mailbox-only
 * cross-wheel state) that a compiler cannot check. halint promotes
 * them from DESIGN.md prose to named, suppressible diagnostics. See
 * DESIGN.md §9 for the per-file rule table and §14 for the v2
 * multi-pass engine (indexer, call graph, baseline/ratchet).
 *
 * The engine is deliberately not a C++ front end: a small lexer
 * strips comments/strings/preprocessor lines into a token stream;
 * per-rule scanners pattern-match on it, and a heuristic repo indexer
 * (tools/halint/index.hh) recovers enough structure — functions, call
 * sites, annotated classes — for the cross-TU passes (HAL-W008/9/10).
 * That keeps the tool dependency-free and fast enough to run as a
 * tier-1 ctest on every build (< 5 s over the whole repo).
 */

#ifndef HALSIM_TOOLS_HALINT_HH
#define HALSIM_TOOLS_HALINT_HH

#include <string>
#include <string_view>
#include <vector>

namespace halint {

/** One finding: a rule violation (or malformed directive) at a line. */
struct Diagnostic
{
    std::string file;    //!< path as given to the scanner
    int line = 0;        //!< 1-based line of the offending token
    std::string rule;    //!< "HAL-Wnnn"
    std::string message; //!< explanation + fix pointer (DESIGN.md §9)
};

/** Rule identifiers (HAL-W000 covers the directive grammar itself). */
inline constexpr const char *kRuleDirective = "HAL-W000";
inline constexpr const char *kRuleWallClock = "HAL-W001";
inline constexpr const char *kRuleRng = "HAL-W002";
inline constexpr const char *kRuleUnordered = "HAL-W003";
inline constexpr const char *kRuleHotpathAlloc = "HAL-W004";
inline constexpr const char *kRuleParallelPurity = "HAL-W005";
inline constexpr const char *kRuleHeaderHygiene = "HAL-W006";
inline constexpr const char *kRuleCrossWheel = "HAL-W007";
inline constexpr const char *kRuleTransitiveAlloc = "HAL-W008";
inline constexpr const char *kRuleBandEscape = "HAL-W009";
inline constexpr const char *kRuleSchemaDrift = "HAL-W010";

/** One input file handed to the engine (path decides rule scope). */
struct SourceFile
{
    std::string path;
    std::string content;
};

/**
 * Lint one translation unit with the per-file rules only. @p path
 * decides which rules apply (HAL-W002/W003 fire only under "src/",
 * HAL-W006 only on headers), so tests can pass synthetic paths like
 * "src/x.cc" with fixture strings as @p content. Suppressions
 * (`// halint: allow(...)`) are already applied; malformed
 * directives come back as HAL-W000.
 */
std::vector<Diagnostic> lintSource(const std::string &path,
                                   std::string_view content);

/**
 * Full engine over a set of in-memory sources: per-file rules plus
 * the cross-TU passes (HAL-W008 transitive hotpath allocation,
 * HAL-W009 wheel-partition escape, HAL-W010 schema drift). A file
 * whose path ends in "bench_schema.json" is consumed as the W010
 * schema instead of being linted as C++. Diagnostics come back
 * suppression-filtered and sorted by (file, line, rule).
 */
std::vector<Diagnostic>
analyzeSources(const std::vector<SourceFile> &files);

/** Human-readable one-line summary of every rule (for --list-rules). */
std::string ruleTable();

/**
 * Lint every C++ source under @p roots (files, or directories walked
 * recursively for .cc/.hh/.cpp/.h), with paths reported relative to
 * @p base when they fall under it, then run the cross-TU passes.
 * When @p base holds tools/bench_schema.json it is loaded for the
 * HAL-W010 drift pass. Unreadable paths produce a HAL-W000
 * diagnostic rather than a crash.
 */
std::vector<Diagnostic> lintPaths(const std::string &base,
                                  const std::vector<std::string> &roots);

// --------------------------------------------------------------------
// Baseline / ratchet (tools/halint_baseline.json)
// --------------------------------------------------------------------

/**
 * One legacy suppression: up to @p count findings of @p rule in
 * @p file are burned down over time instead of failing the build.
 * The reason is mandatory, mirroring the allow() grammar.
 */
struct BaselineEntry
{
    std::string rule;
    std::string file;
    int count = 0;
    std::string reason;
};

struct Baseline
{
    std::vector<BaselineEntry> entries;
    int totalCount() const
    {
        int n = 0;
        for (const BaselineEntry &e : entries)
            n += e.count;
        return n;
    }
};

/** Parse a baseline file's JSON. Returns false (with @p err set) on
 *  malformed input — the caller should fail loudly, not lint. */
bool loadBaseline(const std::string &json, Baseline &out,
                  std::string &err);

/**
 * Ratchet semantics: each entry removes up to `count` matching
 * (rule, file) diagnostics. An entry that matches *fewer* findings
 * than its count is stale and produces a HAL-W000 diagnostic — the
 * baseline must shrink in lockstep with the fixes, so suppressions
 * can only burn down, never silently linger or grow.
 */
std::vector<Diagnostic> applyBaseline(std::vector<Diagnostic> diags,
                                      const Baseline &bl,
                                      const std::string &baselinePath);

// --------------------------------------------------------------------
// Output formats
// --------------------------------------------------------------------

/** One line per diagnostic: "file:line: RULE: message". */
std::string formatText(const std::vector<Diagnostic> &diags);

/** {"diagnostics":[{"file":...,"line":...,"rule":...,"message":...}]} */
std::string formatJson(const std::vector<Diagnostic> &diags);

/** SARIF 2.1.0, one run, for GitHub code-scanning upload. */
std::string formatSarif(const std::vector<Diagnostic> &diags);

/** Serialize findings as a baseline file (reasons stubbed TODO), for
 *  --write-baseline bootstrap. */
std::string formatBaseline(const std::vector<Diagnostic> &diags);

} // namespace halint

#endif // HALSIM_TOOLS_HALINT_HH
