/**
 * @file
 * halint: the repo-native determinism & concurrency linter.
 *
 * The simulator's headline guarantee — bit-identical RunResult across
 * seeds, pooling modes, and sweep thread counts — depends on coding
 * invariants (no wall clock, no unseeded RNG, no unordered iteration,
 * allocation-free hot paths, pure parallelFor callbacks) that a
 * compiler cannot check. halint promotes them from DESIGN.md prose to
 * named, suppressible diagnostics. See DESIGN.md §9 for the rule
 * table and the suppression grammar.
 *
 * The scanner is deliberately not a C++ front end: a small lexer
 * strips comments/strings/preprocessor lines into a token stream and
 * per-rule scanners pattern-match on it. That keeps the tool at a few
 * hundred lines, dependency-free, and fast enough to run as a tier-1
 * ctest on every build.
 */

#ifndef HALSIM_TOOLS_HALINT_HH
#define HALSIM_TOOLS_HALINT_HH

#include <string>
#include <string_view>
#include <vector>

namespace halint {

/** One finding: a rule violation (or malformed directive) at a line. */
struct Diagnostic
{
    std::string file;    //!< path as given to the scanner
    int line = 0;        //!< 1-based line of the offending token
    std::string rule;    //!< "HAL-Wnnn"
    std::string message; //!< explanation + fix pointer (DESIGN.md §9)
};

/** Rule identifiers (HAL-W000 covers the directive grammar itself). */
inline constexpr const char *kRuleDirective = "HAL-W000";
inline constexpr const char *kRuleWallClock = "HAL-W001";
inline constexpr const char *kRuleRng = "HAL-W002";
inline constexpr const char *kRuleUnordered = "HAL-W003";
inline constexpr const char *kRuleHotpathAlloc = "HAL-W004";
inline constexpr const char *kRuleParallelPurity = "HAL-W005";
inline constexpr const char *kRuleHeaderHygiene = "HAL-W006";
inline constexpr const char *kRuleCrossWheel = "HAL-W007";

/**
 * Lint one translation unit. @p path decides which rules apply
 * (HAL-W002/W003 fire only under "src/", HAL-W006 only on headers),
 * so tests can pass synthetic paths like "src/x.cc" with fixture
 * strings as @p content. Suppressions (`// halint: allow(...)`) are
 * already applied; malformed directives come back as HAL-W000.
 */
std::vector<Diagnostic> lintSource(const std::string &path,
                                   std::string_view content);

/** Human-readable one-line summary of every rule (for --list-rules). */
std::string ruleTable();

/**
 * Lint every C++ source under @p roots (files, or directories walked
 * recursively for .cc/.hh/.cpp/.h), with paths reported relative to
 * @p base when they fall under it. Unreadable paths produce a
 * HAL-W000 diagnostic rather than a crash.
 */
std::vector<Diagnostic> lintPaths(const std::string &base,
                                  const std::vector<std::string> &roots);

} // namespace halint

#endif // HALSIM_TOOLS_HALINT_HH
