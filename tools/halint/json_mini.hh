/**
 * @file
 * Line-tracking mini JSON reader shared by the HAL-W010 schema pass
 * and the baseline loader. Handles the subset the repo's committed
 * JSON uses — objects, arrays, strings, and skipped-over scalars —
 * and records the line of every value so diagnostics can point into
 * bench_schema.json / halint_baseline.json. Not a general parser:
 * no \uXXXX decoding, duplicate keys kept as-is.
 */

#ifndef HALSIM_TOOLS_HALINT_JSON_MINI_HH
#define HALSIM_TOOLS_HALINT_JSON_MINI_HH

#include <cctype>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace halint {

struct JsonValue
{
    enum class Kind { Obj, Arr, Str, Other } kind = Kind::Other;
    int line = 1;
    std::string str;
    std::vector<std::pair<std::string, JsonValue>> obj;
    std::vector<JsonValue> arr;

    const JsonValue *
    get(const std::string &key) const
    {
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }
};

struct JsonParser
{
    std::string_view s;
    std::size_t i = 0;
    int line = 1;
    bool ok = true;

    void
    ws()
    {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            if (s[i] == '\n')
                ++line;
            ++i;
        }
    }

    bool
    lit(char c)
    {
        ws();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        return false;
    }

    std::string
    string()
    {
        std::string out;
        if (!lit('"')) {
            ok = false;
            return out;
        }
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\' && i + 1 < s.size())
                ++i; // keep the escaped char, drop the backslash
            if (s[i] == '\n')
                ++line;
            out += s[i++];
        }
        if (i < s.size())
            ++i;
        else
            ok = false;
        return out;
    }

    JsonValue
    value()
    {
        JsonValue v;
        ws();
        v.line = line;
        if (i >= s.size()) {
            ok = false;
            return v;
        }
        const char c = s[i];
        if (c == '{') {
            ++i;
            v.kind = JsonValue::Kind::Obj;
            ws();
            if (lit('}'))
                return v;
            for (;;) {
                ws();
                const int keyLine = line;
                std::string key = string();
                if (!ok || !lit(':')) {
                    ok = false;
                    return v;
                }
                JsonValue child = value();
                if (child.kind == JsonValue::Kind::Other)
                    child.line = keyLine;
                v.obj.emplace_back(std::move(key), std::move(child));
                if (lit(','))
                    continue;
                if (!lit('}'))
                    ok = false;
                return v;
            }
        }
        if (c == '[') {
            ++i;
            v.kind = JsonValue::Kind::Arr;
            ws();
            if (lit(']'))
                return v;
            for (;;) {
                v.arr.push_back(value());
                if (!ok)
                    return v;
                if (lit(','))
                    continue;
                if (!lit(']'))
                    ok = false;
                return v;
            }
        }
        if (c == '"') {
            v.kind = JsonValue::Kind::Str;
            v.str = string();
            return v;
        }
        // number / true / false / null: record the raw token text.
        const std::size_t b = i;
        while (i < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[i])) ||
                s[i] == '-' || s[i] == '+' || s[i] == '.'))
            ++i;
        if (i == b) { // punctuation that fits no production
            ok = false;
            return v;
        }
        v.str = std::string(s.substr(b, i - b));
        return v;
    }
};

/** JSON string escaping for the emitters. */
inline std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace halint

#endif // HALSIM_TOOLS_HALINT_JSON_MINI_HH
