/**
 * @file
 * halint lexer: turns one C++ translation unit into the token stream
 * the rule scanners and the repo indexer share. Comments, string
 * literals, and preprocessor logical lines are isolated so a
 * forbidden name inside a string (or halint's own rule tables) cannot
 * trip a rule; string literals are still *kept* as Str tokens because
 * the HAL-W010 drift pass needs the dotted stats paths and kFields
 * names they carry.
 *
 * The lexer also parses `// halint: ...` control comments into
 * Directive records (hotpath/mailbox/band/allow), which the engine
 * attaches to the following function, block, or class.
 */

#ifndef HALSIM_TOOLS_HALINT_LEXER_HH
#define HALSIM_TOOLS_HALINT_LEXER_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace halint {

enum class TokKind { Ident, Punct, Number, PP, Str };

struct Tok
{
    TokKind kind;
    std::string text; //!< for Str: the raw inner text, escapes kept
    int line;
};

/** A parsed `// halint: ...` control comment. */
struct Directive
{
    int line = 0;
    bool hotpath = false;
    bool mailbox = false;
    std::string band;               //!< band(<name>): wheel band tag
    std::vector<std::string> allow; //!< rule ids for allow(...)
    bool malformed = false;
    std::string error;
    std::size_t tokenIndexAfter = 0; //!< tokens emitted before it
};

struct Lexed
{
    std::vector<Tok> toks;
    std::vector<Directive> directives;
};

/** Lex one source file. Never fails: unterminated constructs run to
 *  end of input. */
Lexed lex(std::string_view src);

/** True when @p r is a known HAL-Wnnn rule id (directive grammar). */
bool validRuleId(const std::string &r);

/** True when @p b names a wheel band from the registry in
 *  src/sim/wheels.hh (client/snic/host). */
bool validBandName(const std::string &b);

/** Whitespace-trimmed copy. */
std::string trim(std::string_view s);

} // namespace halint

#endif // HALSIM_TOOLS_HALINT_LEXER_HH
