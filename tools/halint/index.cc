#include "index.hh"

#include <algorithm>
#include <set>

namespace halint {

namespace {

/** Keywords that look like calls or definitions but are neither. */
const std::set<std::string> &
keywordSet()
{
    static const std::set<std::string> kw{
        "if",       "for",      "while",    "switch",   "return",
        "catch",    "sizeof",   "alignof",  "decltype", "noexcept",
        "new",      "delete",   "throw",    "case",     "do",
        "else",     "goto",     "static_assert", "operator",
        "typeid",   "co_await", "co_return", "co_yield", "assert",
        "defined",  "alignas",  "requires"};
    return kw;
}

bool
isPunct(const Tok &t, const char *p)
{
    return t.kind == TokKind::Punct && t.text == p;
}

enum class CtxKind { Namespace, Class, Func, Other };

struct Ctx
{
    CtxKind kind;
    std::string name;
    std::size_t funcIndex = 0; //!< into out.funcs when kind == Func
};

/** Matching '}' for the '{' at @p open, or toks.size(). */
std::size_t
matchBrace(const std::vector<Tok> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (isPunct(toks[i], "{"))
            ++depth;
        else if (isPunct(toks[i], "}") && --depth == 0)
            return i;
    }
    return toks.size();
}

/**
 * Statement-buffer classification for a '{': what kind of scope does
 * it open? The buffer holds the token indices since the previous
 * ';', '{', '}', or access-specifier boundary.
 */
struct StmtInfo
{
    bool isNamespace = false;
    bool isClass = false;
    bool isFunc = false;
    std::string name;  //!< namespace/class name or function last seg
    std::string qual;  //!< function qualified name
    std::string klass; //!< qualifying class for out-of-class defs
    int nameLine = 0;
};

StmtInfo
classify(const std::vector<Tok> &toks, const std::vector<std::size_t> &buf)
{
    StmtInfo out;
    bool sawClassKw = false, sawEnum = false, sawNamespace = false;
    std::size_t classKwPos = 0;
    int parenDepth = 0;
    std::size_t firstCall = 0; //!< buffer pos of depth-0 '(' or 0
    for (std::size_t bi = 0; bi < buf.size(); ++bi) {
        const Tok &t = toks[buf[bi]];
        if (t.kind == TokKind::Punct) {
            if (t.text == "(") {
                if (parenDepth == 0 && firstCall == 0 && bi > 0)
                    firstCall = bi;
                ++parenDepth;
            } else if (t.text == ")") {
                --parenDepth;
            }
            continue;
        }
        if (t.kind != TokKind::Ident)
            continue;
        if (t.text == "namespace")
            sawNamespace = true;
        else if (t.text == "enum")
            sawEnum = true;
        else if ((t.text == "class" || t.text == "struct" ||
                  t.text == "union") &&
                 !sawClassKw) {
            sawClassKw = true;
            classKwPos = bi;
        }
    }
    if (sawNamespace) {
        out.isNamespace = true;
        // `namespace foo {` / anonymous `namespace {`.
        for (std::size_t bi = buf.size(); bi-- > 0;) {
            const Tok &t = toks[buf[bi]];
            if (t.kind == TokKind::Ident && t.text != "namespace") {
                out.name = t.text;
                break;
            }
        }
        return out;
    }
    if (sawClassKw && !sawEnum && firstCall == 0) {
        out.isClass = true;
        // Name: first Ident after the class/struct keyword that is
        // not an attribute/alignas noise token; base clauses follow a
        // ':' and are ignored because we only take the first Ident.
        for (std::size_t bi = classKwPos + 1; bi < buf.size(); ++bi) {
            const Tok &t = toks[buf[bi]];
            if (isPunct(t, ":"))
                break;
            if (t.kind == TokKind::Ident && t.text != "final" &&
                t.text != "alignas") {
                out.name = t.text;
                out.nameLine = t.line;
                break;
            }
        }
        return out;
    }
    if (firstCall == 0)
        return out;
    // Function definition: Ident (possibly qualified) right before
    // the first depth-0 '('. Reject keywords and lambda '[]('.
    const Tok &nameTok = toks[buf[firstCall - 1]];
    if (nameTok.kind != TokKind::Ident ||
        keywordSet().count(nameTok.text) != 0)
        return out;
    out.isFunc = true;
    out.name = nameTok.text;
    out.nameLine = nameTok.line;
    // Walk back over `A::B::name` qualification.
    std::vector<std::string> chain{nameTok.text};
    std::size_t bi = firstCall - 1;
    while (bi >= 2 && isPunct(toks[buf[bi - 1]], "::") &&
           toks[buf[bi - 2]].kind == TokKind::Ident) {
        chain.insert(chain.begin(), toks[buf[bi - 2]].text);
        bi -= 2;
    }
    for (std::size_t ci = 0; ci < chain.size(); ++ci) {
        if (ci)
            out.qual += "::";
        out.qual += chain[ci];
    }
    if (chain.size() > 1)
        out.klass = chain[chain.size() - 2];
    return out;
}

/** Member-field recovery from one class-scope statement buffer:
 *  `Type name;` / `Type *name = init;` / `Type name{init};`.
 *  Method declarations (any '('), using/typedef/friend, and
 *  const/constexpr/static members are skipped — the W009 escape
 *  analysis cares about mutable per-instance state. */
std::string
fieldNameOf(const std::vector<Tok> &toks,
            const std::vector<std::size_t> &buf, int &line)
{
    if (buf.size() < 2)
        return "";
    std::size_t end = buf.size();
    for (std::size_t bi = 0; bi < buf.size(); ++bi) {
        const Tok &t = toks[buf[bi]];
        if (t.kind == TokKind::Punct &&
            (t.text == "(" || t.text == ")"))
            return "";
        if (t.kind == TokKind::Ident &&
            (t.text == "using" || t.text == "typedef" ||
             t.text == "friend" || t.text == "static" ||
             t.text == "const" || t.text == "constexpr" ||
             t.text == "enum" || t.text == "class" ||
             t.text == "struct" || t.text == "public" ||
             t.text == "private" || t.text == "protected"))
            return "";
        if (t.kind == TokKind::Punct &&
            (t.text == "=" || t.text == "{")) {
            end = bi;
            break;
        }
    }
    if (end < 2)
        return "";
    const Tok &last = toks[buf[end - 1]];
    if (last.kind != TokKind::Ident)
        return "";
    line = last.line;
    return last.text;
}

} // namespace

std::vector<AllocSite>
findAllocations(const Lexed &lx, std::size_t begin, std::size_t end)
{
    static const std::set<std::string> kAllocCalls{
        "malloc", "calloc", "realloc", "aligned_alloc", "strdup"};
    static const std::set<std::string> kGrowth{
        "push_back", "emplace_back", "emplace", "resize",
        "reserve",   "insert",       "append"};
    static const std::set<std::string> kMakers{"make_unique",
                                               "make_shared"};
    std::vector<AllocSite> out;
    auto nextIs = [&](std::size_t i, const char *p) {
        return i + 1 < lx.toks.size() && isPunct(lx.toks[i + 1], p);
    };
    for (std::size_t i = begin; i <= end && i < lx.toks.size(); ++i) {
        const Tok &t = lx.toks[i];
        if (t.kind != TokKind::Ident)
            continue;
        std::string what;
        if (t.text == "new" && !nextIs(i, "(")) {
            what = "operator new"; // placement new is exempt
        } else if (kAllocCalls.count(t.text) != 0 && nextIs(i, "(")) {
            what = t.text + "()";
        } else if (kMakers.count(t.text) != 0 &&
                   (nextIs(i, "<") || nextIs(i, "("))) {
            what = "std::" + t.text;
        } else if (kGrowth.count(t.text) != 0 && i > 0 &&
                   (isPunct(lx.toks[i - 1], ".") ||
                    isPunct(lx.toks[i - 1], "->"))) {
            what = "container ." + t.text + "()";
        }
        if (!what.empty())
            out.push_back({t.line, std::move(what)});
    }
    return out;
}

bool
inMailbox(const Unit &u, std::size_t tok)
{
    for (const auto &[b, e] : u.mailbox)
        if (tok >= b && tok <= e)
            return true;
    return false;
}

RepoIndex
buildIndex(const std::vector<SourceFile> &files)
{
    RepoIndex idx;
    idx.units.reserve(files.size());
    for (const SourceFile &f : files) {
        Unit u;
        u.path = f.path;
        u.lx = lex(f.content);
        for (const Directive &d : u.lx.directives) {
            if (!d.mailbox)
                continue;
            std::size_t i = d.tokenIndexAfter;
            while (i < u.lx.toks.size() && !isPunct(u.lx.toks[i], "{"))
                ++i;
            if (i < u.lx.toks.size())
                u.mailbox.emplace_back(i, matchBrace(u.lx.toks, i));
        }
        idx.units.push_back(std::move(u));
    }

    for (std::size_t ui = 0; ui < idx.units.size(); ++ui) {
        Unit &u = idx.units[ui];
        const std::vector<Tok> &toks = u.lx.toks;

        // Pending band directives: attached to the next class pushed.
        std::vector<const Directive *> bands;
        for (const Directive &d : u.lx.directives)
            if (!d.band.empty() && !d.malformed)
                bands.push_back(&d);
        std::size_t nextBand = 0;

        std::vector<Ctx> ctx;
        std::vector<std::size_t> buf; //!< token indices of the stmt
        auto innermost = [&]() -> CtxKind {
            return ctx.empty() ? CtxKind::Namespace : ctx.back().kind;
        };
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const Tok &t = toks[i];
            if (t.kind == TokKind::PP)
                continue;
            if (isPunct(t, ";")) {
                if (innermost() == CtxKind::Class) {
                    int line = 0;
                    const std::string fname =
                        fieldNameOf(toks, buf, line);
                    const std::string &klass = ctx.back().name;
                    if (!fname.empty() &&
                        idx.classBand.count(klass) != 0)
                        idx.bandFields.push_back(
                            {fname, klass, idx.classBand[klass], ui,
                             line});
                }
                buf.clear();
                continue;
            }
            if (isPunct(t, ":") && buf.size() == 1) {
                const Tok &a = toks[buf[0]];
                if (a.kind == TokKind::Ident &&
                    (a.text == "public" || a.text == "private" ||
                     a.text == "protected")) {
                    buf.clear();
                    continue;
                }
            }
            if (isPunct(t, "}")) {
                if (!ctx.empty()) {
                    if (ctx.back().kind == CtxKind::Func)
                        idx.funcs[ctx.back().funcIndex].bodyEnd = i;
                    ctx.pop_back();
                }
                buf.clear();
                continue;
            }
            if (!isPunct(t, "{")) {
                buf.push_back(i);
                continue;
            }

            // '{' — classify the scope it opens.
            const CtxKind inner = innermost();
            StmtInfo si;
            if (inner == CtxKind::Namespace || inner == CtxKind::Class)
                si = classify(toks, buf);
            if (si.isNamespace) {
                ctx.push_back({CtxKind::Namespace, si.name});
            } else if (si.isClass) {
                ctx.push_back({CtxKind::Class, si.name});
                if (nextBand < bands.size() &&
                    bands[nextBand]->tokenIndexAfter <= i) {
                    idx.classBand[si.name] = bands[nextBand]->band;
                    idx.bandClasses.push_back(
                        {si.name, bands[nextBand]->band, ui,
                         si.nameLine});
                    ++nextBand;
                }
            } else if (si.isFunc) {
                FuncDef fd;
                fd.unit = ui;
                fd.name = si.name;
                fd.klass = !si.klass.empty()
                               ? si.klass
                               : (inner == CtxKind::Class
                                      ? ctx.back().name
                                      : "");
                fd.qual = si.qual;
                if (si.klass.empty() && !fd.klass.empty())
                    fd.qual = fd.klass + "::" + fd.name;
                fd.line = si.nameLine;
                fd.bodyBegin = i;
                fd.bodyEnd = toks.size();
                ctx.push_back({CtxKind::Func, fd.name,
                               idx.funcs.size()});
                idx.funcs.push_back(std::move(fd));
            } else {
                // Brace init, enum body, lambda at odd scope, or a
                // block inside a function: neutral nesting. A member
                // with brace-init (`std::array<...> x_{};`) surfaces
                // here, not at the ';' — recover the field now.
                if (inner == CtxKind::Class) {
                    int line = 0;
                    const std::string fname =
                        fieldNameOf(toks, buf, line);
                    const std::string &klass = ctx.back().name;
                    if (!fname.empty() &&
                        idx.classBand.count(klass) != 0)
                        idx.bandFields.push_back(
                            {fname, klass, idx.classBand[klass], ui,
                             line});
                }
                ctx.push_back({CtxKind::Other, ""});
            }
            buf.clear();
        }

        // Close any unterminated scopes (truncated input).
        while (!ctx.empty()) {
            if (ctx.back().kind == CtxKind::Func)
                idx.funcs[ctx.back().funcIndex].bodyEnd =
                    toks.size() > 0 ? toks.size() - 1 : 0;
            ctx.pop_back();
        }
    }

    // Hotpath annotations: each attaches to the first function whose
    // body opens at or after the directive (matches the per-file
    // W004 "next brace-balanced block" semantics).
    for (std::size_t ui = 0; ui < idx.units.size(); ++ui) {
        for (const Directive &d : idx.units[ui].lx.directives) {
            if (!d.hotpath)
                continue;
            FuncDef *best = nullptr;
            for (FuncDef &f : idx.funcs) {
                if (f.unit != ui || f.bodyBegin < d.tokenIndexAfter)
                    continue;
                if (best == nullptr || f.bodyBegin < best->bodyBegin)
                    best = &f;
            }
            if (best != nullptr) {
                best->hotpath = true;
                best->hotpathLine = d.line;
            }
        }
    }

    // Call sites per function body.
    for (FuncDef &f : idx.funcs) {
        const std::vector<Tok> &toks = idx.units[f.unit].lx.toks;
        const std::size_t hi =
            std::min(f.bodyEnd, toks.size() > 0 ? toks.size() - 1
                                                : std::size_t{0});
        for (std::size_t i = f.bodyBegin; i <= hi; ++i) {
            const Tok &t = toks[i];
            if (t.kind != TokKind::Ident ||
                keywordSet().count(t.text) != 0)
                continue;
            if (i + 1 >= toks.size() || !isPunct(toks[i + 1], "("))
                continue;
            CallSite cs;
            cs.callee = t.text;
            cs.line = t.line;
            cs.tok = i;
            if (i > 0) {
                const Tok &prev = toks[i - 1];
                if (isPunct(prev, ".") || isPunct(prev, "->")) {
                    cs.member = true;
                } else if (isPunct(prev, "::") && i >= 2 &&
                           toks[i - 2].kind == TokKind::Ident) {
                    cs.qualifier = toks[i - 2].text;
                }
            }
            // std:: library calls carry no repo edge.
            if (cs.qualifier == "std")
                continue;
            f.calls.push_back(std::move(cs));
        }
    }

    for (std::size_t fi = 0; fi < idx.funcs.size(); ++fi)
        idx.byName[idx.funcs[fi].name].push_back(fi);
    for (std::size_t bi = 0; bi < idx.bandFields.size(); ++bi)
        idx.fieldsByName[idx.bandFields[bi].name].push_back(bi);
    return idx;
}

} // namespace halint
