#include "lexer.hh"

#include <cctype>
#include <set>
#include <sstream>

#include "halint.hh"

namespace halint {

namespace {

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/**
 * Parse the text of one line comment for a halint directive. Grammar
 * (the whole comment is the directive; block comments and prose that
 * merely mention the tag are ignored):
 *
 *   halint: hotpath [note]
 *   halint: mailbox [note]
 *   halint: band(client|snic|host) [note]
 *   halint: allow(HAL-Wnnn[, HAL-Wnnn...]) <reason>
 *
 * The reason after allow(...) is mandatory: a suppression that does
 * not say why is itself a diagnostic (HAL-W000).
 */
void
parseDirective(std::string_view text, int line, std::size_t tokenIndex,
               std::vector<Directive> &out)
{
    const std::string_view kTag = "halint:";
    const std::string lead = trim(text);
    if (lead.rfind(kTag, 0) != 0)
        return;
    Directive d;
    d.line = line;
    d.tokenIndexAfter = tokenIndex;
    std::string rest = trim(lead.substr(kTag.size()));
    if (rest.rfind("hotpath", 0) == 0) {
        d.hotpath = true;
    } else if (rest.rfind("mailbox", 0) == 0) {
        d.mailbox = true;
    } else if (rest.rfind("band", 0) == 0) {
        const std::size_t open = rest.find('(');
        const std::size_t close = rest.find(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open) {
            d.malformed = true;
            d.error = "band directive needs (client|snic|host): '" +
                      rest + "'";
        } else {
            d.band = trim(rest.substr(open + 1, close - open - 1));
            if (!validBandName(d.band)) {
                d.malformed = true;
                d.error = "unknown wheel band '" + d.band +
                          "' (registry: src/sim/wheels.hh)";
            }
        }
    } else if (rest.rfind("allow", 0) == 0) {
        const std::size_t open = rest.find('(');
        const std::size_t close = rest.find(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open) {
            d.malformed = true;
            d.error = "allow directive needs (HAL-Wnnn): '" + rest + "'";
        } else {
            std::stringstream list(
                rest.substr(open + 1, close - open - 1));
            std::string id;
            while (std::getline(list, id, ',')) {
                id = trim(id);
                if (!validRuleId(id)) {
                    d.malformed = true;
                    d.error = "unknown rule id '" + id + "' in allow()";
                    break;
                }
                d.allow.push_back(id);
            }
            if (!d.malformed && d.allow.empty()) {
                d.malformed = true;
                d.error = "empty allow() list";
            }
            if (!d.malformed && trim(rest.substr(close + 1)).empty()) {
                d.malformed = true;
                d.error = "allow() without a reason; write "
                          "'// halint: allow(HAL-Wnnn) <why>'";
            }
        }
    } else {
        d.malformed = true;
        d.error = "unknown halint directive '" + rest + "'";
    }
    out.push_back(std::move(d));
}

} // namespace

std::string
trim(std::string_view s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

bool
validRuleId(const std::string &r)
{
    static const std::set<std::string> kKnown{
        kRuleDirective,      kRuleWallClock,     kRuleRng,
        kRuleUnordered,      kRuleHotpathAlloc,
        kRuleParallelPurity, kRuleHeaderHygiene, kRuleCrossWheel,
        kRuleTransitiveAlloc, kRuleBandEscape,   kRuleSchemaDrift};
    return kKnown.count(r) != 0;
}

bool
validBandName(const std::string &b)
{
    return b == "client" || b == "snic" || b == "host";
}

Lexed
lex(std::string_view src)
{
    Lexed out;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto newlineSpan = [&](std::size_t from, std::size_t to) {
        for (std::size_t k = from; k < to; ++k)
            if (src[k] == '\n')
                ++line;
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comment (may hold a directive).
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t e = i;
            while (e < n && src[e] != '\n')
                ++e;
            parseDirective(src.substr(i + 2, e - i - 2), line,
                           out.toks.size(), out.directives);
            i = e;
            continue;
        }
        // Block comment (never carries directives).
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            std::size_t e = src.find("*/", i + 2);
            if (e == std::string_view::npos)
                e = n;
            else
                e += 2;
            newlineSpan(i, e);
            i = e;
            continue;
        }
        // Preprocessor logical line (with backslash continuations).
        if (c == '#' &&
            (out.toks.empty() || out.toks.back().line != line ||
             out.toks.back().kind == TokKind::PP)) {
            std::size_t e = i;
            const int start = line;
            while (e < n) {
                if (src[e] == '\n') {
                    std::size_t back = e;
                    while (back > i &&
                           std::isspace(
                               static_cast<unsigned char>(src[back - 1])) &&
                           src[back - 1] != '\n')
                        --back;
                    if (back > i && src[back - 1] == '\\') {
                        ++line;
                        ++e;
                        continue;
                    }
                    break;
                }
                ++e;
            }
            out.toks.push_back(
                {TokKind::PP, std::string(src.substr(i, e - i)), start});
            i = e;
            continue;
        }
        // Raw string literal R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
            (i == 0 || !identChar(src[i - 1]))) {
            std::size_t dEnd = i + 2;
            while (dEnd < n && src[dEnd] != '(' && src[dEnd] != '\n')
                ++dEnd;
            const std::string delim =
                ")" + std::string(src.substr(i + 2, dEnd - i - 2)) + "\"";
            std::size_t e = src.find(delim, dEnd);
            const std::size_t bodyBegin = std::min(dEnd + 1, n);
            const std::size_t bodyEnd = (e == std::string_view::npos)
                                            ? n
                                            : e;
            const int start = line;
            out.toks.push_back(
                {TokKind::Str,
                 std::string(src.substr(bodyBegin,
                                        bodyEnd - bodyBegin)),
                 start});
            e = (e == std::string_view::npos) ? n : e + delim.size();
            newlineSpan(i, e);
            i = e;
            continue;
        }
        // Ordinary string / char literal. Strings become Str tokens
        // (W010 reads them); char literals are dropped.
        if (c == '"' || c == '\'') {
            const int start = line;
            std::size_t e = i + 1;
            while (e < n && src[e] != c) {
                if (src[e] == '\\' && e + 1 < n)
                    ++e;
                if (src[e] == '\n')
                    ++line;
                ++e;
            }
            if (c == '"')
                out.toks.push_back(
                    {TokKind::Str,
                     std::string(src.substr(i + 1, e - i - 1)), start});
            i = (e < n) ? e + 1 : n;
            continue;
        }
        // Number (consumes digit separators so 1'000 is not a char).
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t e = i;
            while (e < n && (identChar(src[e]) || src[e] == '.' ||
                             (src[e] == '\'' && e + 1 < n &&
                              identChar(src[e + 1]))))
                ++e;
            out.toks.push_back(
                {TokKind::Number, std::string(src.substr(i, e - i)),
                 line});
            i = e;
            continue;
        }
        // Identifier / keyword.
        if (identChar(c)) {
            std::size_t e = i;
            while (e < n && identChar(src[e]))
                ++e;
            out.toks.push_back(
                {TokKind::Ident, std::string(src.substr(i, e - i)),
                 line});
            i = e;
            continue;
        }
        // Punctuation; '::' and '->' kept whole (qualifier checks).
        if (c == ':' && i + 1 < n && src[i + 1] == ':') {
            out.toks.push_back({TokKind::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && src[i + 1] == '>') {
            out.toks.push_back({TokKind::Punct, "->", line});
            i += 2;
            continue;
        }
        out.toks.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

} // namespace halint
