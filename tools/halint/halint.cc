/**
 * @file
 * halint engine core: per-file rule scanners (HAL-W001..W007), the
 * suppression/directive machinery, and the analyzeSources()
 * orchestration that adds the cross-TU passes (HAL-W008..W010, see
 * passes.cc). The lexer lives in lexer.cc, the repo indexer in
 * index.cc, output/baseline in output.cc.
 */

#include "halint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "index.hh"
#include "lexer.hh"
#include "passes.hh"

namespace halint {

namespace {

// --------------------------------------------------------------------
// Per-file rule scanners (the v1 single-pass rules)
// --------------------------------------------------------------------

struct Scanner
{
    const std::string &path;
    const Lexed &lx;
    std::vector<Diagnostic> diags;

    bool inSrc;
    bool isHeader;

    Scanner(const std::string &p, const Lexed &l) : path(p), lx(l)
    {
        inSrc = p.rfind("src/", 0) == 0 ||
                p.find("/src/") != std::string::npos;
        auto ends = [&](std::string_view suf) {
            return p.size() >= suf.size() &&
                   p.compare(p.size() - suf.size(), suf.size(), suf) == 0;
        };
        isHeader = ends(".hh") || ends(".h") || ends(".hpp");
    }

    void
    add(const char *rule, int line, std::string msg)
    {
        diags.push_back({path, line, rule, std::move(msg)});
    }

    const Tok *
    at(std::size_t i) const
    {
        return i < lx.toks.size() ? &lx.toks[i] : nullptr;
    }

    bool
    nextIs(std::size_t i, std::string_view punct) const
    {
        const Tok *t = at(i + 1);
        return t != nullptr && t->kind == TokKind::Punct &&
               t->text == punct;
    }

    /**
     * True when toks[i] is a plausible call of a global/std function:
     * followed by '(' and not reached through '.', '->', or a
     * non-std '::' qualifier (SomeClass::time() is not wall clock).
     */
    bool
    bareOrStdCall(std::size_t i) const
    {
        if (!nextIs(i, "("))
            return false;
        if (i == 0)
            return true;
        const Tok &prev = lx.toks[i - 1];
        if (prev.kind == TokKind::Punct &&
            (prev.text == "." || prev.text == "->"))
            return false;
        if (prev.kind == TokKind::Punct && prev.text == "::") {
            const Tok *q = at(i - 2);
            return q != nullptr && q->kind == TokKind::Ident &&
                   q->text == "std";
        }
        return true;
    }

    // ---- HAL-W001: wall-clock / host-time sources -------------------
    void
    wallClock()
    {
        static const std::set<std::string> kIdents{
            "gettimeofday", "clock_gettime", "timespec_get", "ftime",
            "system_clock", "high_resolution_clock"};
        for (std::size_t i = 0; i < lx.toks.size(); ++i) {
            const Tok &t = lx.toks[i];
            if (t.kind == TokKind::PP) {
                if (t.text.find("include") != std::string::npos &&
                    (t.text.find("<ctime>") != std::string::npos ||
                     t.text.find("time.h>") != std::string::npos))
                    add(kRuleWallClock, t.line,
                        "include of a host time header — simulated "
                        "time comes from EventQueue::now(); wall clock "
                        "breaks bit-reproducible runs (DESIGN.md §9)");
                continue;
            }
            if (t.kind != TokKind::Ident)
                continue;
            const bool named = kIdents.count(t.text) != 0;
            const bool call = (t.text == "time" || t.text == "clock") &&
                              bareOrStdCall(i);
            if (named || call)
                add(kRuleWallClock, t.line,
                    "wall-clock time source '" + t.text +
                        "' — simulated time comes from "
                        "EventQueue::now(); wall clock breaks "
                        "bit-reproducible runs (DESIGN.md §9)");
        }
    }

    // ---- HAL-W002: unseeded / stdlib RNG (src/ only) ----------------
    void
    rng()
    {
        if (!inSrc)
            return;
        static const std::set<std::string> kIdents{
            "srand",        "random_device",         "random_shuffle",
            "mt19937",      "mt19937_64",            "minstd_rand",
            "minstd_rand0", "default_random_engine", "knuth_b",
            "ranlux24",     "ranlux48"};
        for (std::size_t i = 0; i < lx.toks.size(); ++i) {
            const Tok &t = lx.toks[i];
            if (t.kind == TokKind::PP) {
                if (t.text.find("include") != std::string::npos &&
                    t.text.find("<random>") != std::string::npos)
                    add(kRuleRng, t.line,
                        "include of <random> — stdlib generators and "
                        "distributions differ across implementations; "
                        "use halsim::Rng (src/sim/rng.hh) seeded from "
                        "the run config (DESIGN.md §9)");
                continue;
            }
            if (t.kind != TokKind::Ident)
                continue;
            const bool named = kIdents.count(t.text) != 0;
            const bool call = t.text == "rand" && bareOrStdCall(i);
            if (named || call)
                add(kRuleRng, t.line,
                    "non-deterministic RNG '" + t.text +
                        "' — use halsim::Rng (src/sim/rng.hh) seeded "
                        "from the run config so results replay "
                        "bit-identically (DESIGN.md §9)");
        }
    }

    // ---- HAL-W003: unordered-container iteration (src/ only) --------
    void
    unordered()
    {
        if (!inSrc)
            return;
        static const std::set<std::string> kIdents{
            "unordered_map", "unordered_set", "unordered_multimap",
            "unordered_multiset"};
        for (const Tok &t : lx.toks) {
            const bool use =
                t.kind == TokKind::Ident && kIdents.count(t.text) != 0;
            const bool incl =
                t.kind == TokKind::PP &&
                t.text.find("include") != std::string::npos &&
                (t.text.find("<unordered_map>") != std::string::npos ||
                 t.text.find("<unordered_set>") != std::string::npos);
            if (use || incl)
                add(kRuleUnordered, t.line,
                    "unordered container — iteration order is "
                    "implementation-defined and can leak into "
                    "simulation state; use alg::FixedMap "
                    "(src/alg/fixed_map.hh) or an ordered container "
                    "(DESIGN.md §9)");
        }
    }

    // ---- HAL-W004: allocation in `// halint: hotpath` functions -----
    void
    hotpathAlloc()
    {
        for (const Directive &d : lx.directives) {
            if (!d.hotpath)
                continue;
            // The annotation precedes the function; its body is the
            // next brace-balanced block.
            std::size_t i = d.tokenIndexAfter;
            while (i < lx.toks.size() &&
                   !(lx.toks[i].kind == TokKind::Punct &&
                     lx.toks[i].text == "{"))
                ++i;
            if (i == lx.toks.size()) {
                add(kRuleDirective, d.line,
                    "hotpath annotation with no function body after it");
                continue;
            }
            std::size_t end = i;
            int depth = 0;
            for (; end < lx.toks.size(); ++end) {
                const Tok &t = lx.toks[end];
                if (t.kind != TokKind::Punct)
                    continue;
                if (t.text == "{")
                    ++depth;
                else if (t.text == "}" && --depth == 0)
                    break;
            }
            for (const AllocSite &a : findAllocations(lx, i, end))
                add(kRuleHotpathAlloc, a.line,
                    a.what +
                        " in a '// halint: hotpath' function — "
                        "hot paths must be allocation-free at "
                        "steady state; preallocate, pool, or "
                        "justify the cold path with an allow() "
                        "(DESIGN.md §8, §9)");
        }
    }

    // ---- HAL-W005: impure parallelFor / runSweep callbacks ----------
    void
    parallelPurity()
    {
        for (std::size_t i = 0; i < lx.toks.size(); ++i) {
            const Tok &t = lx.toks[i];
            if (t.kind != TokKind::Ident ||
                (t.text != "parallelFor" && t.text != "runSweep") ||
                !nextIs(i, "("))
                continue;
            int depth = 0;
            bool sawLambda = false;
            for (std::size_t j = i + 1; j < lx.toks.size(); ++j) {
                const Tok &u = lx.toks[j];
                if (u.kind == TokKind::Punct) {
                    if (u.text == "(")
                        ++depth;
                    else if (u.text == ")" && --depth == 0)
                        break;
                    else if (u.text == "[")
                        sawLambda = true;
                    continue;
                }
                if (!sawLambda || u.kind != TokKind::Ident)
                    continue;
                if (u.text == "mutable")
                    add(kRuleParallelPurity, u.line,
                        "mutable lambda passed to " + t.text +
                            " — callbacks run concurrently and must be "
                            "pure over disjoint per-index state "
                            "(DESIGN.md §9)");
                else if (u.text == "static")
                    add(kRuleParallelPurity, u.line,
                        "function-local static inside a " + t.text +
                            " callback — statics are shared across "
                            "workers and race (DESIGN.md §9)");
            }
        }
    }

    // ---- HAL-W007: cross-wheel state outside mailbox sections -------
    /**
     * The time-parallel engine's safety argument (DESIGN.md §13)
     * rests on wheels sharing state ONLY through SPSC mailboxes
     * drained at window barriers. Any thread-synchronization
     * primitive in the DES core (src/sim/, src/net/) is therefore a
     * protocol extension and must sit inside a block annotated
     * '// halint: mailbox' (the annotation covers the next
     * brace-balanced block, e.g. a class or function body).
     */
    void
    crossWheel()
    {
        const bool scoped =
            path.rfind("src/sim/", 0) == 0 ||
            path.find("/src/sim/") != std::string::npos ||
            path.rfind("src/net/", 0) == 0 ||
            path.find("/src/net/") != std::string::npos;
        if (!scoped)
            return;
        static const std::set<std::string> kPrims{
            "atomic",        "atomic_flag",
            "atomic_ref",    "mutex",
            "shared_mutex",  "recursive_mutex",
            "timed_mutex",   "condition_variable",
            "condition_variable_any", "thread",
            "jthread",       "barrier",
            "latch",         "counting_semaphore",
            "binary_semaphore",       "promise",
            "async"};

        // Token ranges covered by a mailbox annotation: the next
        // brace-balanced block after each directive.
        std::vector<std::pair<std::size_t, std::size_t>> covered;
        for (const Directive &d : lx.directives) {
            if (!d.mailbox)
                continue;
            std::size_t i = d.tokenIndexAfter;
            while (i < lx.toks.size() &&
                   !(lx.toks[i].kind == TokKind::Punct &&
                     lx.toks[i].text == "{"))
                ++i;
            if (i == lx.toks.size()) {
                add(kRuleDirective, d.line,
                    "mailbox annotation with no block after it");
                continue;
            }
            const std::size_t start = i;
            int depth = 0;
            for (; i < lx.toks.size(); ++i) {
                const Tok &t = lx.toks[i];
                if (t.kind != TokKind::Punct)
                    continue;
                if (t.text == "{")
                    ++depth;
                else if (t.text == "}" && --depth == 0)
                    break;
            }
            covered.emplace_back(start, i);
        }

        for (std::size_t i = 0; i < lx.toks.size(); ++i) {
            const Tok &t = lx.toks[i];
            if (t.kind != TokKind::Ident || kPrims.count(t.text) == 0)
                continue;
            bool inside = false;
            for (const auto &[b, e] : covered)
                if (i >= b && i <= e) {
                    inside = true;
                    break;
                }
            if (!inside)
                add(kRuleCrossWheel, t.line,
                    "thread primitive '" + t.text +
                        "' outside a '// halint: mailbox' section — "
                        "wheels may share state only through SPSC "
                        "mailboxes drained at window barriers "
                        "(DESIGN.md §13)");
        }
    }

    // ---- HAL-W006: header hygiene -----------------------------------
    void
    headerHygiene()
    {
        if (!isHeader)
            return;
        bool pragmaOnce = false, sawIfndef = false, sawDefine = false;
        for (const Tok &t : lx.toks) {
            if (t.kind != TokKind::PP)
                continue;
            std::string squeezed;
            for (char c : t.text)
                if (!std::isspace(static_cast<unsigned char>(c)))
                    squeezed += c;
            if (squeezed.rfind("#pragmaonce", 0) == 0)
                pragmaOnce = true;
            else if (squeezed.rfind("#ifndef", 0) == 0)
                sawIfndef = true;
            else if (sawIfndef && squeezed.rfind("#define", 0) == 0)
                sawDefine = true;
        }
        if (!pragmaOnce && !(sawIfndef && sawDefine))
            add(kRuleHeaderHygiene, 1,
                "header has no include guard or #pragma once "
                "(DESIGN.md §9)");
        for (std::size_t i = 0; i + 1 < lx.toks.size(); ++i)
            if (lx.toks[i].kind == TokKind::Ident &&
                lx.toks[i].text == "using" &&
                lx.toks[i + 1].kind == TokKind::Ident &&
                lx.toks[i + 1].text == "namespace")
                add(kRuleHeaderHygiene, lx.toks[i].line,
                    "'using namespace' in a header leaks the namespace "
                    "into every includer (DESIGN.md §9)");
    }
};

std::vector<Diagnostic>
runScanners(const std::string &path, const Lexed &lx)
{
    Scanner s(path, lx);
    s.wallClock();
    s.rng();
    s.unordered();
    s.hotpathAlloc();
    s.parallelPurity();
    s.headerHygiene();
    s.crossWheel();
    return std::move(s.diags);
}

/**
 * Per-file suppression map: an allow(HAL-Wnnn) covers its own line
 * (trailing comment) and the next line (comment above the statement).
 * allow(HAL-W004) at an allocation site also covers HAL-W008 there —
 * one justification per site, whichever pass reached it first.
 * Malformed directives are appended to @p diags as HAL-W000.
 */
std::map<int, std::set<std::string>>
directiveMap(const std::string &path, const Lexed &lx,
             std::vector<Diagnostic> &diags)
{
    std::map<int, std::set<std::string>> allowAt;
    for (const Directive &d : lx.directives) {
        if (d.malformed) {
            diags.push_back({path, d.line, kRuleDirective,
                             "malformed halint directive: " + d.error});
            continue;
        }
        for (const std::string &r : d.allow) {
            allowAt[d.line].insert(r);
            allowAt[d.line + 1].insert(r);
            if (r == kRuleHotpathAlloc) {
                allowAt[d.line].insert(kRuleTransitiveAlloc);
                allowAt[d.line + 1].insert(kRuleTransitiveAlloc);
            }
        }
    }
    return allowAt;
}

void
sortDiags(std::vector<Diagnostic> &diags)
{
    std::sort(diags.begin(), diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
}

bool
endsWith(const std::string &s, std::string_view suf)
{
    return s.size() >= suf.size() &&
           s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

} // namespace

std::vector<Diagnostic>
lintSource(const std::string &path, std::string_view content)
{
    const Lexed lx = lex(content);
    std::vector<Diagnostic> diags = runScanners(path, lx);
    const auto allowAt = directiveMap(path, lx, diags);
    std::vector<Diagnostic> kept;
    for (Diagnostic &d : diags) {
        const auto it = allowAt.find(d.line);
        const bool suppressed = d.rule != kRuleDirective &&
                                it != allowAt.end() &&
                                it->second.count(d.rule) != 0;
        if (!suppressed)
            kept.push_back(std::move(d));
    }
    sortDiags(kept);
    return kept;
}

std::vector<Diagnostic>
analyzeSources(const std::vector<SourceFile> &files)
{
    std::vector<SourceFile> cpp;
    std::string schemaPath, schemaContent;
    for (const SourceFile &f : files) {
        if (endsWith(f.path, "bench_schema.json")) {
            schemaPath = f.path;
            schemaContent = f.content;
        } else {
            cpp.push_back(f);
        }
    }
    const RepoIndex idx = buildIndex(cpp);

    std::vector<Diagnostic> diags;
    std::map<std::string, std::map<int, std::set<std::string>>> allow;
    for (const Unit &u : idx.units) {
        for (Diagnostic &d : runScanners(u.path, u.lx))
            diags.push_back(std::move(d));
        allow[u.path] = directiveMap(u.path, u.lx, diags);
    }

    passTransitiveHotpath(idx, diags);
    passBandEscape(idx, diags);
    passSchemaDrift(idx, schemaPath, schemaContent, diags);

    std::vector<Diagnostic> kept;
    for (Diagnostic &d : diags) {
        bool suppressed = false;
        if (d.rule != kRuleDirective) {
            const auto fit = allow.find(d.file);
            if (fit != allow.end()) {
                const auto it = fit->second.find(d.line);
                suppressed = it != fit->second.end() &&
                             it->second.count(d.rule) != 0;
            }
        }
        if (!suppressed)
            kept.push_back(std::move(d));
    }
    sortDiags(kept);
    return kept;
}

std::string
ruleTable()
{
    return "HAL-W000  malformed halint directive or stale baseline "
           "entry\n"
           "HAL-W001  wall-clock/host time source (simulated time only)\n"
           "HAL-W002  stdlib/unseeded RNG in src/ (use halsim::Rng)\n"
           "HAL-W003  unordered container in src/ (use alg::FixedMap)\n"
           "HAL-W004  allocation inside a '// halint: hotpath' function\n"
           "HAL-W005  impure parallelFor/runSweep callback\n"
           "HAL-W006  header hygiene (guard, 'using namespace')\n"
           "HAL-W007  thread primitive in the DES core outside a "
           "'// halint: mailbox' section\n"
           "HAL-W008  allocation transitively reachable from a "
           "'// halint: hotpath' root (call-graph pass)\n"
           "HAL-W009  field of a '// halint: band(...)' class touched "
           "from another band outside a mailbox section\n"
           "HAL-W010  RunResult kFields / registered stats drifted "
           "from tools/bench_schema.json\n"
           "Suppress with: // halint: allow(HAL-Wnnn) <reason>, or a "
           "counted entry in tools/halint_baseline.json\n";
}

std::vector<Diagnostic>
lintPaths(const std::string &base, const std::vector<std::string> &roots)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    std::vector<Diagnostic> diags;
    auto wanted = [](const fs::path &p) {
        const std::string e = p.extension().string();
        return e == ".cc" || e == ".hh" || e == ".cpp" || e == ".h" ||
               e == ".hpp";
    };
    for (const std::string &r : roots) {
        std::error_code ec;
        const fs::path root(r);
        if (fs::is_directory(root, ec)) {
            for (fs::recursive_directory_iterator it(root, ec), end;
                 !ec && it != end; it.increment(ec))
                if (it->is_regular_file(ec) && wanted(it->path()))
                    files.push_back(it->path().string());
        } else if (fs::is_regular_file(root, ec)) {
            files.push_back(r);
        } else {
            diags.push_back({r, 0, kRuleDirective,
                             "path does not exist or is unreadable"});
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    const std::string prefix =
        base.empty() || base == "." ? "" : base + "/";
    auto slurp = [](const std::string &p, std::string &out) {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        if (!in)
            return false;
        out = buf.str();
        return true;
    };

    std::vector<SourceFile> sources;
    for (const std::string &f : files) {
        SourceFile sf;
        if (!slurp(f, sf.content)) {
            diags.push_back({f, 0, kRuleDirective, "cannot read file"});
            continue;
        }
        sf.path = f;
        if (!prefix.empty() && sf.path.rfind(prefix, 0) == 0)
            sf.path = sf.path.substr(prefix.size());
        sources.push_back(std::move(sf));
    }
    // The committed schema rides along for the HAL-W010 drift pass.
    {
        const std::string schemaOnDisk =
            (base.empty() || base == "." ? std::string()
                                         : base + "/") +
            "tools/bench_schema.json";
        SourceFile sf;
        if (slurp(schemaOnDisk, sf.content)) {
            sf.path = "tools/bench_schema.json";
            sources.push_back(std::move(sf));
        }
    }
    for (Diagnostic &d : analyzeSources(sources))
        diags.push_back(std::move(d));
    sortDiags(diags);
    return diags;
}

} // namespace halint
