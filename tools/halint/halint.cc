#include "halint.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace halint {

namespace {

// --------------------------------------------------------------------
// Lexer: comments/strings/preprocessor lines never reach the rule
// scanners as code, so a forbidden name inside a string literal (or
// this very file's rule tables) cannot trip a rule.
// --------------------------------------------------------------------

enum class TokKind { Ident, Punct, Number, PP };

struct Tok
{
    TokKind kind;
    std::string text;
    int line;
};

/** A parsed `// halint: ...` control comment. */
struct Directive
{
    int line = 0;
    bool hotpath = false;
    bool mailbox = false;
    std::vector<std::string> allow; //!< rule ids for allow(...)
    bool malformed = false;
    std::string error;
    std::size_t tokenIndexAfter = 0; //!< tokens emitted before it
};

struct Lexed
{
    std::vector<Tok> toks;
    std::vector<Directive> directives;
};

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string
trim(std::string_view s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

bool
validRuleId(const std::string &r)
{
    static const std::set<std::string> kKnown{
        kRuleDirective,      kRuleWallClock,     kRuleRng,
        kRuleUnordered,      kRuleHotpathAlloc,
        kRuleParallelPurity, kRuleHeaderHygiene, kRuleCrossWheel};
    return kKnown.count(r) != 0;
}

/**
 * Parse the text of one line comment for a halint directive. Grammar
 * (the whole comment is the directive; block comments and prose that
 * merely mention the tag are ignored):
 *
 *   halint: hotpath [note]
 *   halint: mailbox [note]
 *   halint: allow(HAL-Wnnn[, HAL-Wnnn...]) <reason>
 *
 * The reason after allow(...) is mandatory: a suppression that does
 * not say why is itself a diagnostic (HAL-W000).
 */
void
parseDirective(std::string_view text, int line, std::size_t tokenIndex,
               std::vector<Directive> &out)
{
    const std::string_view kTag = "halint:";
    const std::string lead = trim(text);
    if (lead.rfind(kTag, 0) != 0)
        return;
    Directive d;
    d.line = line;
    d.tokenIndexAfter = tokenIndex;
    std::string rest = trim(lead.substr(kTag.size()));
    if (rest.rfind("hotpath", 0) == 0) {
        d.hotpath = true;
    } else if (rest.rfind("mailbox", 0) == 0) {
        d.mailbox = true;
    } else if (rest.rfind("allow", 0) == 0) {
        const std::size_t open = rest.find('(');
        const std::size_t close = rest.find(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open) {
            d.malformed = true;
            d.error = "allow directive needs (HAL-Wnnn): '" + rest + "'";
        } else {
            std::stringstream list(
                rest.substr(open + 1, close - open - 1));
            std::string id;
            while (std::getline(list, id, ',')) {
                id = trim(id);
                if (!validRuleId(id)) {
                    d.malformed = true;
                    d.error = "unknown rule id '" + id + "' in allow()";
                    break;
                }
                d.allow.push_back(id);
            }
            if (!d.malformed && d.allow.empty()) {
                d.malformed = true;
                d.error = "empty allow() list";
            }
            if (!d.malformed && trim(rest.substr(close + 1)).empty()) {
                d.malformed = true;
                d.error = "allow() without a reason; write "
                          "'// halint: allow(HAL-Wnnn) <why>'";
            }
        }
    } else {
        d.malformed = true;
        d.error = "unknown halint directive '" + rest + "'";
    }
    out.push_back(std::move(d));
}

Lexed
lex(std::string_view src)
{
    Lexed out;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto newlineSpan = [&](std::size_t from, std::size_t to) {
        for (std::size_t k = from; k < to; ++k)
            if (src[k] == '\n')
                ++line;
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comment (may hold a directive).
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t e = i;
            while (e < n && src[e] != '\n')
                ++e;
            parseDirective(src.substr(i + 2, e - i - 2), line,
                           out.toks.size(), out.directives);
            i = e;
            continue;
        }
        // Block comment (never carries directives).
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            std::size_t e = src.find("*/", i + 2);
            if (e == std::string_view::npos)
                e = n;
            else
                e += 2;
            newlineSpan(i, e);
            i = e;
            continue;
        }
        // Preprocessor logical line (with backslash continuations).
        if (c == '#' &&
            (out.toks.empty() || out.toks.back().line != line ||
             out.toks.back().kind == TokKind::PP)) {
            std::size_t e = i;
            const int start = line;
            while (e < n) {
                if (src[e] == '\n') {
                    std::size_t back = e;
                    while (back > i &&
                           std::isspace(
                               static_cast<unsigned char>(src[back - 1])) &&
                           src[back - 1] != '\n')
                        --back;
                    if (back > i && src[back - 1] == '\\') {
                        ++line;
                        ++e;
                        continue;
                    }
                    break;
                }
                ++e;
            }
            out.toks.push_back(
                {TokKind::PP, std::string(src.substr(i, e - i)), start});
            i = e;
            continue;
        }
        // Raw string literal R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
            (i == 0 || !identChar(src[i - 1]))) {
            std::size_t dEnd = i + 2;
            while (dEnd < n && src[dEnd] != '(' && src[dEnd] != '\n')
                ++dEnd;
            const std::string delim =
                ")" + std::string(src.substr(i + 2, dEnd - i - 2)) + "\"";
            std::size_t e = src.find(delim, dEnd);
            e = (e == std::string_view::npos) ? n : e + delim.size();
            newlineSpan(i, e);
            i = e;
            continue;
        }
        // Ordinary string / char literal.
        if (c == '"' || c == '\'') {
            std::size_t e = i + 1;
            while (e < n && src[e] != c) {
                if (src[e] == '\\' && e + 1 < n)
                    ++e;
                if (src[e] == '\n')
                    ++line;
                ++e;
            }
            i = (e < n) ? e + 1 : n;
            continue;
        }
        // Number (consumes digit separators so 1'000 is not a char).
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t e = i;
            while (e < n && (identChar(src[e]) || src[e] == '.' ||
                             (src[e] == '\'' && e + 1 < n &&
                              identChar(src[e + 1]))))
                ++e;
            out.toks.push_back(
                {TokKind::Number, std::string(src.substr(i, e - i)),
                 line});
            i = e;
            continue;
        }
        // Identifier / keyword.
        if (identChar(c)) {
            std::size_t e = i;
            while (e < n && identChar(src[e]))
                ++e;
            out.toks.push_back(
                {TokKind::Ident, std::string(src.substr(i, e - i)),
                 line});
            i = e;
            continue;
        }
        // Punctuation; '::' and '->' kept whole (qualifier checks).
        if (c == ':' && i + 1 < n && src[i + 1] == ':') {
            out.toks.push_back({TokKind::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && src[i + 1] == '>') {
            out.toks.push_back({TokKind::Punct, "->", line});
            i += 2;
            continue;
        }
        out.toks.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

// --------------------------------------------------------------------
// Rule scanners
// --------------------------------------------------------------------

struct Scanner
{
    const std::string &path;
    const Lexed &lx;
    std::vector<Diagnostic> diags;

    bool inSrc;
    bool isHeader;

    Scanner(const std::string &p, const Lexed &l) : path(p), lx(l)
    {
        inSrc = p.rfind("src/", 0) == 0 ||
                p.find("/src/") != std::string::npos;
        auto ends = [&](std::string_view suf) {
            return p.size() >= suf.size() &&
                   p.compare(p.size() - suf.size(), suf.size(), suf) == 0;
        };
        isHeader = ends(".hh") || ends(".h") || ends(".hpp");
    }

    void
    add(const char *rule, int line, std::string msg)
    {
        diags.push_back({path, line, rule, std::move(msg)});
    }

    const Tok *
    at(std::size_t i) const
    {
        return i < lx.toks.size() ? &lx.toks[i] : nullptr;
    }

    bool
    nextIs(std::size_t i, std::string_view punct) const
    {
        const Tok *t = at(i + 1);
        return t != nullptr && t->kind == TokKind::Punct &&
               t->text == punct;
    }

    /**
     * True when toks[i] is a plausible call of a global/std function:
     * followed by '(' and not reached through '.', '->', or a
     * non-std '::' qualifier (SomeClass::time() is not wall clock).
     */
    bool
    bareOrStdCall(std::size_t i) const
    {
        if (!nextIs(i, "("))
            return false;
        if (i == 0)
            return true;
        const Tok &prev = lx.toks[i - 1];
        if (prev.kind == TokKind::Punct &&
            (prev.text == "." || prev.text == "->"))
            return false;
        if (prev.kind == TokKind::Punct && prev.text == "::") {
            const Tok *q = at(i - 2);
            return q != nullptr && q->kind == TokKind::Ident &&
                   q->text == "std";
        }
        return true;
    }

    // ---- HAL-W001: wall-clock / host-time sources -------------------
    void
    wallClock()
    {
        static const std::set<std::string> kIdents{
            "gettimeofday", "clock_gettime", "timespec_get", "ftime",
            "system_clock", "high_resolution_clock"};
        for (std::size_t i = 0; i < lx.toks.size(); ++i) {
            const Tok &t = lx.toks[i];
            if (t.kind == TokKind::PP) {
                if (t.text.find("include") != std::string::npos &&
                    (t.text.find("<ctime>") != std::string::npos ||
                     t.text.find("time.h>") != std::string::npos))
                    add(kRuleWallClock, t.line,
                        "include of a host time header — simulated "
                        "time comes from EventQueue::now(); wall clock "
                        "breaks bit-reproducible runs (DESIGN.md §9)");
                continue;
            }
            if (t.kind != TokKind::Ident)
                continue;
            const bool named = kIdents.count(t.text) != 0;
            const bool call = (t.text == "time" || t.text == "clock") &&
                              bareOrStdCall(i);
            if (named || call)
                add(kRuleWallClock, t.line,
                    "wall-clock time source '" + t.text +
                        "' — simulated time comes from "
                        "EventQueue::now(); wall clock breaks "
                        "bit-reproducible runs (DESIGN.md §9)");
        }
    }

    // ---- HAL-W002: unseeded / stdlib RNG (src/ only) ----------------
    void
    rng()
    {
        if (!inSrc)
            return;
        static const std::set<std::string> kIdents{
            "srand",        "random_device",         "random_shuffle",
            "mt19937",      "mt19937_64",            "minstd_rand",
            "minstd_rand0", "default_random_engine", "knuth_b",
            "ranlux24",     "ranlux48"};
        for (std::size_t i = 0; i < lx.toks.size(); ++i) {
            const Tok &t = lx.toks[i];
            if (t.kind == TokKind::PP) {
                if (t.text.find("include") != std::string::npos &&
                    t.text.find("<random>") != std::string::npos)
                    add(kRuleRng, t.line,
                        "include of <random> — stdlib generators and "
                        "distributions differ across implementations; "
                        "use halsim::Rng (src/sim/rng.hh) seeded from "
                        "the run config (DESIGN.md §9)");
                continue;
            }
            if (t.kind != TokKind::Ident)
                continue;
            const bool named = kIdents.count(t.text) != 0;
            const bool call = t.text == "rand" && bareOrStdCall(i);
            if (named || call)
                add(kRuleRng, t.line,
                    "non-deterministic RNG '" + t.text +
                        "' — use halsim::Rng (src/sim/rng.hh) seeded "
                        "from the run config so results replay "
                        "bit-identically (DESIGN.md §9)");
        }
    }

    // ---- HAL-W003: unordered-container iteration (src/ only) --------
    void
    unordered()
    {
        if (!inSrc)
            return;
        static const std::set<std::string> kIdents{
            "unordered_map", "unordered_set", "unordered_multimap",
            "unordered_multiset"};
        for (const Tok &t : lx.toks) {
            const bool use =
                t.kind == TokKind::Ident && kIdents.count(t.text) != 0;
            const bool incl =
                t.kind == TokKind::PP &&
                t.text.find("include") != std::string::npos &&
                (t.text.find("<unordered_map>") != std::string::npos ||
                 t.text.find("<unordered_set>") != std::string::npos);
            if (use || incl)
                add(kRuleUnordered, t.line,
                    "unordered container — iteration order is "
                    "implementation-defined and can leak into "
                    "simulation state; use alg::FixedMap "
                    "(src/alg/fixed_map.hh) or an ordered container "
                    "(DESIGN.md §9)");
        }
    }

    // ---- HAL-W004: allocation in `// halint: hotpath` functions -----
    void
    hotpathAlloc()
    {
        static const std::set<std::string> kAllocCalls{
            "malloc", "calloc", "realloc", "aligned_alloc", "strdup"};
        static const std::set<std::string> kGrowth{
            "push_back", "emplace_back", "emplace", "resize",
            "reserve",   "insert",       "append"};
        static const std::set<std::string> kMakers{"make_unique",
                                                   "make_shared"};
        for (const Directive &d : lx.directives) {
            if (!d.hotpath)
                continue;
            // The annotation precedes the function; its body is the
            // next brace-balanced block.
            std::size_t i = d.tokenIndexAfter;
            while (i < lx.toks.size() &&
                   !(lx.toks[i].kind == TokKind::Punct &&
                     lx.toks[i].text == "{"))
                ++i;
            if (i == lx.toks.size()) {
                add(kRuleDirective, d.line,
                    "hotpath annotation with no function body after it");
                continue;
            }
            int depth = 0;
            for (; i < lx.toks.size(); ++i) {
                const Tok &t = lx.toks[i];
                if (t.kind == TokKind::Punct) {
                    if (t.text == "{")
                        ++depth;
                    else if (t.text == "}" && --depth == 0)
                        break;
                    continue;
                }
                if (t.kind != TokKind::Ident)
                    continue;
                std::string what;
                if (t.text == "new" && !nextIs(i, "(")) {
                    what = "operator new"; // placement new is exempt
                } else if (kAllocCalls.count(t.text) != 0 &&
                           nextIs(i, "(")) {
                    what = t.text + "()";
                } else if (kMakers.count(t.text) != 0 &&
                           (nextIs(i, "<") || nextIs(i, "("))) {
                    what = "std::" + t.text;
                } else if (kGrowth.count(t.text) != 0 && i > 0 &&
                           lx.toks[i - 1].kind == TokKind::Punct &&
                           (lx.toks[i - 1].text == "." ||
                            lx.toks[i - 1].text == "->")) {
                    what = "container ." + t.text + "()";
                }
                if (!what.empty())
                    add(kRuleHotpathAlloc, t.line,
                        what +
                            " in a '// halint: hotpath' function — "
                            "hot paths must be allocation-free at "
                            "steady state; preallocate, pool, or "
                            "justify the cold path with an allow() "
                            "(DESIGN.md §8, §9)");
            }
        }
    }

    // ---- HAL-W005: impure parallelFor / runSweep callbacks ----------
    void
    parallelPurity()
    {
        for (std::size_t i = 0; i < lx.toks.size(); ++i) {
            const Tok &t = lx.toks[i];
            if (t.kind != TokKind::Ident ||
                (t.text != "parallelFor" && t.text != "runSweep") ||
                !nextIs(i, "("))
                continue;
            int depth = 0;
            bool sawLambda = false;
            for (std::size_t j = i + 1; j < lx.toks.size(); ++j) {
                const Tok &u = lx.toks[j];
                if (u.kind == TokKind::Punct) {
                    if (u.text == "(")
                        ++depth;
                    else if (u.text == ")" && --depth == 0)
                        break;
                    else if (u.text == "[")
                        sawLambda = true;
                    continue;
                }
                if (!sawLambda || u.kind != TokKind::Ident)
                    continue;
                if (u.text == "mutable")
                    add(kRuleParallelPurity, u.line,
                        "mutable lambda passed to " + t.text +
                            " — callbacks run concurrently and must be "
                            "pure over disjoint per-index state "
                            "(DESIGN.md §9)");
                else if (u.text == "static")
                    add(kRuleParallelPurity, u.line,
                        "function-local static inside a " + t.text +
                            " callback — statics are shared across "
                            "workers and race (DESIGN.md §9)");
            }
        }
    }

    // ---- HAL-W007: cross-wheel state outside mailbox sections -------
    /**
     * The time-parallel engine's safety argument (DESIGN.md §13)
     * rests on wheels sharing state ONLY through SPSC mailboxes
     * drained at window barriers. Any thread-synchronization
     * primitive in the DES core (src/sim/, src/net/) is therefore a
     * protocol extension and must sit inside a block annotated
     * '// halint: mailbox' (the annotation covers the next
     * brace-balanced block, e.g. a class or function body).
     */
    void
    crossWheel()
    {
        const bool scoped =
            path.rfind("src/sim/", 0) == 0 ||
            path.find("/src/sim/") != std::string::npos ||
            path.rfind("src/net/", 0) == 0 ||
            path.find("/src/net/") != std::string::npos;
        if (!scoped)
            return;
        static const std::set<std::string> kPrims{
            "atomic",        "atomic_flag",
            "atomic_ref",    "mutex",
            "shared_mutex",  "recursive_mutex",
            "timed_mutex",   "condition_variable",
            "condition_variable_any", "thread",
            "jthread",       "barrier",
            "latch",         "counting_semaphore",
            "binary_semaphore",       "promise",
            "async"};

        // Token ranges covered by a mailbox annotation: the next
        // brace-balanced block after each directive.
        std::vector<std::pair<std::size_t, std::size_t>> covered;
        for (const Directive &d : lx.directives) {
            if (!d.mailbox)
                continue;
            std::size_t i = d.tokenIndexAfter;
            while (i < lx.toks.size() &&
                   !(lx.toks[i].kind == TokKind::Punct &&
                     lx.toks[i].text == "{"))
                ++i;
            if (i == lx.toks.size()) {
                add(kRuleDirective, d.line,
                    "mailbox annotation with no block after it");
                continue;
            }
            const std::size_t start = i;
            int depth = 0;
            for (; i < lx.toks.size(); ++i) {
                const Tok &t = lx.toks[i];
                if (t.kind != TokKind::Punct)
                    continue;
                if (t.text == "{")
                    ++depth;
                else if (t.text == "}" && --depth == 0)
                    break;
            }
            covered.emplace_back(start, i);
        }

        for (std::size_t i = 0; i < lx.toks.size(); ++i) {
            const Tok &t = lx.toks[i];
            if (t.kind != TokKind::Ident || kPrims.count(t.text) == 0)
                continue;
            bool inside = false;
            for (const auto &[b, e] : covered)
                if (i >= b && i <= e) {
                    inside = true;
                    break;
                }
            if (!inside)
                add(kRuleCrossWheel, t.line,
                    "thread primitive '" + t.text +
                        "' outside a '// halint: mailbox' section — "
                        "wheels may share state only through SPSC "
                        "mailboxes drained at window barriers "
                        "(DESIGN.md §13)");
        }
    }

    // ---- HAL-W006: header hygiene -----------------------------------
    void
    headerHygiene()
    {
        if (!isHeader)
            return;
        bool pragmaOnce = false, sawIfndef = false, sawDefine = false;
        for (const Tok &t : lx.toks) {
            if (t.kind != TokKind::PP)
                continue;
            std::string squeezed;
            for (char c : t.text)
                if (!std::isspace(static_cast<unsigned char>(c)))
                    squeezed += c;
            if (squeezed.rfind("#pragmaonce", 0) == 0)
                pragmaOnce = true;
            else if (squeezed.rfind("#ifndef", 0) == 0)
                sawIfndef = true;
            else if (sawIfndef && squeezed.rfind("#define", 0) == 0)
                sawDefine = true;
        }
        if (!pragmaOnce && !(sawIfndef && sawDefine))
            add(kRuleHeaderHygiene, 1,
                "header has no include guard or #pragma once "
                "(DESIGN.md §9)");
        for (std::size_t i = 0; i + 1 < lx.toks.size(); ++i)
            if (lx.toks[i].kind == TokKind::Ident &&
                lx.toks[i].text == "using" &&
                lx.toks[i + 1].kind == TokKind::Ident &&
                lx.toks[i + 1].text == "namespace")
                add(kRuleHeaderHygiene, lx.toks[i].line,
                    "'using namespace' in a header leaks the namespace "
                    "into every includer (DESIGN.md §9)");
    }
};

} // namespace

std::vector<Diagnostic>
lintSource(const std::string &path, std::string_view content)
{
    const Lexed lx = lex(content);
    Scanner s(path, lx);
    s.wallClock();
    s.rng();
    s.unordered();
    s.hotpathAlloc();
    s.parallelPurity();
    s.headerHygiene();
    s.crossWheel();

    // Suppressions: an allow(HAL-Wnnn) covers its own line (trailing
    // comment) and the next line (comment above the statement).
    std::map<int, std::set<std::string>> allowAt;
    for (const Directive &d : lx.directives) {
        if (d.malformed) {
            s.add(kRuleDirective, d.line,
                  "malformed halint directive: " + d.error);
            continue;
        }
        for (const std::string &r : d.allow) {
            allowAt[d.line].insert(r);
            allowAt[d.line + 1].insert(r);
        }
    }
    std::vector<Diagnostic> kept;
    for (Diagnostic &d : s.diags) {
        const auto it = allowAt.find(d.line);
        const bool suppressed = d.rule != kRuleDirective &&
                                it != allowAt.end() &&
                                it->second.count(d.rule) != 0;
        if (!suppressed)
            kept.push_back(std::move(d));
    }
    std::stable_sort(kept.begin(), kept.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         return a.line < b.line;
                     });
    return kept;
}

std::string
ruleTable()
{
    return "HAL-W000  malformed or reason-less halint directive\n"
           "HAL-W001  wall-clock/host time source (simulated time only)\n"
           "HAL-W002  stdlib/unseeded RNG in src/ (use halsim::Rng)\n"
           "HAL-W003  unordered container in src/ (use alg::FixedMap)\n"
           "HAL-W004  allocation inside a '// halint: hotpath' function\n"
           "HAL-W005  impure parallelFor/runSweep callback\n"
           "HAL-W006  header hygiene (guard, 'using namespace')\n"
           "HAL-W007  thread primitive in the DES core outside a "
           "'// halint: mailbox' section\n"
           "Suppress with: // halint: allow(HAL-Wnnn) <reason>\n";
}

std::vector<Diagnostic>
lintPaths(const std::string &base, const std::vector<std::string> &roots)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    std::vector<Diagnostic> diags;
    auto wanted = [](const fs::path &p) {
        const std::string e = p.extension().string();
        return e == ".cc" || e == ".hh" || e == ".cpp" || e == ".h" ||
               e == ".hpp";
    };
    for (const std::string &r : roots) {
        std::error_code ec;
        const fs::path root(r);
        if (fs::is_directory(root, ec)) {
            for (fs::recursive_directory_iterator it(root, ec), end;
                 !ec && it != end; it.increment(ec))
                if (it->is_regular_file(ec) && wanted(it->path()))
                    files.push_back(it->path().string());
        } else if (fs::is_regular_file(root, ec)) {
            files.push_back(r);
        } else {
            diags.push_back({r, 0, kRuleDirective,
                             "path does not exist or is unreadable"});
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    const std::string prefix =
        base.empty() || base == "." ? "" : base + "/";
    for (const std::string &f : files) {
        std::ifstream in(f, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        if (!in) {
            diags.push_back(
                {f, 0, kRuleDirective, "cannot read file"});
            continue;
        }
        std::string rel = f;
        if (!prefix.empty() && rel.rfind(prefix, 0) == 0)
            rel = rel.substr(prefix.size());
        for (Diagnostic &d : lintSource(rel, buf.str()))
            diags.push_back(std::move(d));
    }
    return diags;
}

} // namespace halint
