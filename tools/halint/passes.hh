/**
 * @file
 * halint cross-TU analysis passes (DESIGN.md §14). These run over
 * the RepoIndex that buildIndex() recovers, unlike the per-file rule
 * scanners in halint.cc:
 *
 *  - HAL-W008: transitive hotpath allocation — walk the call graph
 *    from every `// halint: hotpath` root and flag allocations in
 *    reachable callees, with the call chain in the diagnostic.
 *  - HAL-W009: wheel-partition escape analysis — member fields of
 *    `// halint: band(...)` classes touched from another band's
 *    methods outside a `// halint: mailbox` section.
 *  - HAL-W010: stats/results/schema drift — RunResult kFields and
 *    registered stats paths cross-checked against
 *    tools/bench_schema.json in both directions.
 */

#ifndef HALSIM_TOOLS_HALINT_PASSES_HH
#define HALSIM_TOOLS_HALINT_PASSES_HH

#include <string>
#include <vector>

#include "halint.hh"
#include "index.hh"

namespace halint {

void passTransitiveHotpath(const RepoIndex &idx,
                           std::vector<Diagnostic> &diags);

void passBandEscape(const RepoIndex &idx,
                    std::vector<Diagnostic> &diags);

/**
 * @p schemaPath / @p schemaContent carry tools/bench_schema.json;
 * empty content skips the pass (no schema in the lint set).
 */
void passSchemaDrift(const RepoIndex &idx,
                     const std::string &schemaPath,
                     const std::string &schemaContent,
                     std::vector<Diagnostic> &diags);

} // namespace halint

#endif // HALSIM_TOOLS_HALINT_PASSES_HH
