#include "passes.hh"

#include <algorithm>
#include <cctype>
#include <deque>
#include <map>
#include <set>

#include "json_mini.hh"

namespace halint {

namespace {

// --------------------------------------------------------------------
// HAL-W008: transitive hotpath allocation
// --------------------------------------------------------------------

/** Candidate callees for one call site (indices into idx.funcs). */
std::vector<std::size_t>
resolveCall(const RepoIndex &idx, const CallSite &cs,
            const FuncDef &caller)
{
    const auto it = idx.byName.find(cs.callee);
    if (it == idx.byName.end())
        return {};
    std::vector<std::size_t> out;
    if (!cs.qualifier.empty()) {
        // Explicit Class::fn — only that class's definitions.
        for (std::size_t fi : it->second)
            if (idx.funcs[fi].klass == cs.qualifier)
                out.push_back(fi);
        return out;
    }
    if (!cs.member) {
        // Bare call: prefer a method of the caller's own class, else
        // free functions, else any definition of that name.
        for (std::size_t fi : it->second)
            if (!caller.klass.empty() &&
                idx.funcs[fi].klass == caller.klass)
                out.push_back(fi);
        if (!out.empty())
            return out;
    }
    // Member (or unresolved bare) call: no receiver type at lexer
    // level, so take the union of same-named definitions — but give
    // up on names too common to carry a meaningful edge.
    if (it->second.size() > kMaxCallCandidates)
        return {};
    return it->second;
}

std::string
chainString(const RepoIndex &idx, const std::vector<std::size_t> &chain)
{
    std::string s;
    for (std::size_t k = 0; k < chain.size(); ++k) {
        const FuncDef &f = idx.funcs[chain[k]];
        if (k)
            s += " -> ";
        s += !f.qual.empty() ? f.qual : f.name;
        if (k + 1 < chain.size()) {
            // Edge provenance: where in this frame the next call is.
            const FuncDef &next = idx.funcs[chain[k + 1]];
            for (const CallSite &cs : f.calls)
                if (cs.callee == next.name) {
                    s += " [" + idx.units[f.unit].path + ":" +
                         std::to_string(cs.line) + "]";
                    break;
                }
        }
    }
    return s;
}

} // namespace

void
passTransitiveHotpath(const RepoIndex &idx,
                      std::vector<Diagnostic> &diags)
{
    // Dedup: one report per (root, allocation site); BFS gives the
    // shortest why-chain.
    std::set<std::pair<std::size_t, std::pair<std::size_t, int>>> seen;
    for (std::size_t root = 0; root < idx.funcs.size(); ++root) {
        if (!idx.funcs[root].hotpath)
            continue;
        std::set<std::size_t> visited{root};
        std::deque<std::vector<std::size_t>> queue;
        queue.push_back({root});
        while (!queue.empty()) {
            const std::vector<std::size_t> chain = queue.front();
            queue.pop_front();
            if (chain.size() > 8) // depth guard vs pathological graphs
                continue;
            const FuncDef &cur = idx.funcs[chain.back()];
            if (chain.size() > 1) {
                // Allocations in a *callee* body: the root's own
                // allocations are already HAL-W004.
                const Lexed &lx = idx.units[cur.unit].lx;
                for (const AllocSite &a :
                     findAllocations(lx, cur.bodyBegin, cur.bodyEnd)) {
                    const auto key = std::make_pair(
                        root, std::make_pair(cur.unit, a.line));
                    if (!seen.insert(key).second)
                        continue;
                    const FuncDef &rf = idx.funcs[root];
                    diags.push_back(
                        {idx.units[cur.unit].path, a.line,
                         kRuleTransitiveAlloc,
                         a.what + " reachable from '// halint: "
                                  "hotpath' root '" +
                             (!rf.qual.empty() ? rf.qual : rf.name) +
                             "' (" + idx.units[rf.unit].path + ":" +
                             std::to_string(rf.line) +
                             ") via call chain: " +
                             chainString(idx, chain) +
                             " — hot paths must be allocation-free "
                             "at steady state; preallocate, pool, or "
                             "justify with allow(HAL-W008) at the "
                             "allocation site (DESIGN.md §14)"});
                }
            }
            for (const CallSite &cs : cur.calls) {
                for (std::size_t fi : resolveCall(idx, cs, cur)) {
                    if (visited.count(fi) != 0)
                        continue;
                    // A callee that is itself a hotpath root reports
                    // its own subtree under its own (shorter) chains.
                    if (idx.funcs[fi].hotpath)
                        continue;
                    visited.insert(fi);
                    std::vector<std::size_t> next = chain;
                    next.push_back(fi);
                    queue.push_back(std::move(next));
                }
            }
        }
    }
}

// --------------------------------------------------------------------
// HAL-W009: wheel-partition escape analysis
// --------------------------------------------------------------------

namespace {

bool
inWheelScope(const std::string &p)
{
    auto under = [&](const char *pre) {
        return p.rfind(pre, 0) == 0 ||
               p.find(std::string("/") + pre) != std::string::npos;
    };
    return under("src/sim/") || under("src/net/");
}

/** Does a write follow the field name at @p i? The lexer emits
 *  single-char punct (only :: and -> are fused), so `+=` is "+" "="
 *  and `++` is "+" "+". */
bool
writeFollows(const std::vector<Tok> &toks, std::size_t i)
{
    if (i + 1 >= toks.size() || toks[i + 1].kind != TokKind::Punct)
        return false;
    const std::string &a = toks[i + 1].text;
    const std::string b =
        (i + 2 < toks.size() && toks[i + 2].kind == TokKind::Punct)
            ? toks[i + 2].text
            : std::string();
    if (a == "=")
        return b != "="; // `f = x` yes, `f == x` no
    static const std::string kCompound = "+-*/%&|^";
    if (a.size() == 1 && kCompound.find(a[0]) != std::string::npos) {
        if (b == "=")
            return true; // f += x
        if ((a == "+" || a == "-") && b == a)
            return true; // f++ / f--
    }
    return false;
}

} // namespace

void
passBandEscape(const RepoIndex &idx, std::vector<Diagnostic> &diags)
{
    if (idx.bandFields.empty())
        return;
    for (const FuncDef &f : idx.funcs) {
        const Unit &u = idx.units[f.unit];
        if (!inWheelScope(u.path))
            continue;
        const auto bandIt = idx.classBand.find(f.klass);
        if (bandIt == idx.classBand.end())
            continue; // unbanded code: no owner to attribute
        const std::string &myBand = bandIt->second;
        const std::vector<Tok> &toks = u.lx.toks;
        const std::size_t hi =
            std::min(f.bodyEnd,
                     toks.empty() ? std::size_t{0} : toks.size() - 1);
        for (std::size_t i = f.bodyBegin; i <= hi && i < toks.size();
             ++i) {
            const Tok &t = toks[i];
            if (t.kind != TokKind::Ident || i == 0)
                continue;
            const Tok &prev = toks[i - 1];
            const bool memberAccess =
                (prev.kind == TokKind::Punct &&
                 (prev.text == "." || prev.text == "->"));
            if (!memberAccess)
                continue;
            // Method calls are walked by W008; W009 is about state.
            if (i + 1 < toks.size() &&
                toks[i + 1].kind == TokKind::Punct &&
                toks[i + 1].text == "(")
                continue;
            const auto fit = idx.fieldsByName.find(t.text);
            if (fit == idx.fieldsByName.end())
                continue;
            // A name claimed by classes in different bands is
            // ambiguous at lexer level; skip rather than guess.
            std::set<std::string> bands;
            for (std::size_t bfi : fit->second)
                bands.insert(idx.bandFields[bfi].band);
            if (bands.size() != 1)
                continue;
            const BandField &bf = idx.bandFields[fit->second.front()];
            if (bf.band == myBand)
                continue;
            if (inMailbox(u, i))
                continue;
            const bool write = writeFollows(toks, i);
            diags.push_back(
                {u.path, t.line, kRuleBandEscape,
                 std::string(write ? "write to" : "read of") +
                     " field '" + t.text + "' of band(" + bf.band +
                     ") class '" + bf.klass + "' (" +
                     idx.units[bf.unit].path + ":" +
                     std::to_string(bf.line) + ") from band(" +
                     myBand + ") function '" +
                     (!f.qual.empty() ? f.qual : f.name) +
                     "' outside a '// halint: mailbox' section — "
                     "wheels may share state only through SPSC "
                     "mailboxes drained at window barriers "
                     "(DESIGN.md §13, §14)"});
        }
    }
}

// --------------------------------------------------------------------
// HAL-W010: stats/results/schema drift
// --------------------------------------------------------------------

namespace {

bool
looksDotted(const std::string &t)
{
    if (t.find('.') == std::string::npos || t.empty())
        return false;
    if (t.front() == '.' || t.back() == '.')
        return false;
    for (char c : t)
        if (!(std::islower(static_cast<unsigned char>(c)) ||
              std::isdigit(static_cast<unsigned char>(c)) ||
              c == '_' || c == '.'))
            return false;
    return true;
}

bool
looksSuffix(const std::string &t)
{
    if (t.size() < 2 || t.front() != '.')
        return false;
    for (char c : t.substr(1))
        if (!(std::islower(static_cast<unsigned char>(c)) ||
              std::isdigit(static_cast<unsigned char>(c)) ||
              c == '_' || c == '.'))
            return false;
    return true;
}

bool
looksPlain(const std::string &t)
{
    if (t.empty())
        return false;
    for (char c : t)
        if (!(std::islower(static_cast<unsigned char>(c)) ||
              std::isdigit(static_cast<unsigned char>(c)) || c == '_'))
            return false;
    return true;
}

std::string
stripLeadingDigits(const std::string &s)
{
    std::size_t k = 0;
    while (k < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[k])))
        ++k;
    return s.substr(k);
}

/** Registered-path vocabulary harvested from src/ string literals. */
struct PathVocab
{
    std::set<std::string> dotted; //!< "server.snic", full paths too
    std::set<std::string> suffix; //!< ".frames", ".core"
    std::set<std::string> plain;  //!< "static", "snic_cpu"

    /** Can the tail @p rest be assembled from suffix/plain pieces
     *  (with std::to_string(i) digits interpolated between them)? */
    bool
    consumable(const std::string &rest) const
    {
        if (rest.empty())
            return true;
        if (suffix.count(rest) != 0)
            return true;
        // Any suffix literal that is a proper prefix of rest, with
        // optional digits after it ("\.core" + "3" + ".busy_frac").
        for (const std::string &sfx : suffix) {
            if (rest.size() <= sfx.size() ||
                rest.compare(0, sfx.size(), sfx) != 0)
                continue;
            if (consumable(
                    stripLeadingDigits(rest.substr(sfx.size()))))
                return true;
        }
        // Or "." + plain-literal segment (energy account names).
        if (rest.front() != '.')
            return false;
        const std::size_t dot = rest.find('.', 1);
        const std::string seg =
            rest.substr(1, dot == std::string::npos ? std::string::npos
                                                    : dot - 1);
        std::string stem = seg;
        while (!stem.empty() &&
               std::isdigit(static_cast<unsigned char>(stem.back())))
            stem.pop_back();
        if (plain.count(seg) == 0 && plain.count(stem) == 0)
            return false;
        return consumable(dot == std::string::npos
                              ? std::string()
                              : rest.substr(dot));
    }

    bool
    resolves(const std::string &path) const
    {
        if (dotted.count(path) != 0)
            return true;
        for (const std::string &pre : dotted) {
            if (path.size() <= pre.size() ||
                path.compare(0, pre.size(), pre) != 0)
                continue;
            if (consumable(
                    stripLeadingDigits(path.substr(pre.size()))))
                return true;
        }
        return false;
    }
};

bool
pathEndsWith(const std::string &p, std::string_view suf)
{
    return p.size() >= suf.size() &&
           p.compare(p.size() - suf.size(), suf.size(), suf) == 0;
}

/** Keys emitted by hand in sweepRowJson-style literals: scan raw
 *  string text for `"name":` / `\"name\":` occurrences. */
void
harvestJsonKeys(const std::string &raw, std::set<std::string> &out)
{
    std::string flat;
    flat.reserve(raw.size());
    for (char c : raw)
        if (c != '\\')
            flat += c;
    std::size_t pos = 0;
    while ((pos = flat.find('"', pos)) != std::string::npos) {
        std::size_t e = pos + 1;
        while (e < flat.size() &&
               (std::isalnum(static_cast<unsigned char>(flat[e])) ||
                flat[e] == '_'))
            ++e;
        if (e > pos + 1 && e + 1 < flat.size() && flat[e] == '"' &&
            flat[e + 1] == ':')
            out.insert(flat.substr(pos + 1, e - pos - 1));
        pos = e;
    }
}

} // namespace

void
passSchemaDrift(const RepoIndex &idx, const std::string &schemaPath,
                const std::string &schemaContent,
                std::vector<Diagnostic> &diags)
{
    if (schemaContent.empty())
        return;
    JsonParser jp{schemaContent};
    const JsonValue doc = jp.value();
    jp.ws();
    if (!jp.ok || doc.kind != JsonValue::Kind::Obj) {
        diags.push_back({schemaPath, jp.line, kRuleSchemaDrift,
                         "bench schema is not parseable JSON — the "
                         "kFields/stats cross-check cannot run"});
        return;
    }

    // --- gather the three source-side inventories ---------------------
    std::map<std::string, int> kFieldNames; // name -> line
    std::string resultsPath = "src/core/results.cc";
    std::set<std::string> labelKeys;
    PathVocab vocab;
    static const std::set<std::string> kRegCalls{
        "counter", "gauge",     "fnCounter", "fnGauge",
        "probe",   "histogram", "accumulator"};

    for (const Unit &u : idx.units) {
        const std::vector<Tok> &toks = u.lx.toks;
        const bool isResults = pathEndsWith(u.path, "results.cc");
        const bool isSweep = pathEndsWith(u.path, "sweep.cc");
        const bool inSrc = u.path.rfind("src/", 0) == 0 ||
                           u.path.find("/src/") != std::string::npos;
        if (isResults)
            resultsPath = u.path;

        // kFields literal names: Str tokens opening an aggregate
        // (`{"name", ...}`) inside the kFields initializer.
        if (isResults) {
            std::size_t start = toks.size();
            for (std::size_t i = 0; i + 1 < toks.size(); ++i)
                if (toks[i].kind == TokKind::Ident &&
                    toks[i].text == "kFields") {
                    while (i < toks.size() &&
                           !(toks[i].kind == TokKind::Punct &&
                             toks[i].text == "{"))
                        ++i;
                    start = i;
                    break;
                }
            if (start < toks.size()) {
                int depth = 0;
                for (std::size_t i = start; i < toks.size(); ++i) {
                    const Tok &t = toks[i];
                    if (t.kind == TokKind::Punct) {
                        if (t.text == "{")
                            ++depth;
                        else if (t.text == "}" && --depth == 0)
                            break;
                        continue;
                    }
                    if (t.kind == TokKind::Str && i > 0 &&
                        toks[i - 1].kind == TokKind::Punct &&
                        toks[i - 1].text == "{")
                        kFieldNames.emplace(t.text, t.line);
                }
            }
        }
        if (isSweep)
            for (const Tok &t : toks)
                if (t.kind == TokKind::Str)
                    harvestJsonKeys(t.text, labelKeys);
        if (!inSrc)
            continue;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const Tok &t = toks[i];
            if (t.kind != TokKind::Str)
                continue;
            if (looksDotted(t.text))
                vocab.dotted.insert(t.text);
            else if (looksSuffix(t.text))
                vocab.suffix.insert(t.text);
            else if (looksPlain(t.text))
                vocab.plain.insert(t.text);
            // First-arg literals of registry calls are known-dotted
            // even when single-segment.
            if (i >= 2 && toks[i - 1].kind == TokKind::Punct &&
                toks[i - 1].text == "(" &&
                toks[i - 2].kind == TokKind::Ident &&
                kRegCalls.count(toks[i - 2].text) != 0 &&
                looksDotted(t.text))
                vocab.dotted.insert(t.text);
        }
    }

    // --- results.point_fields <-> kFields (both directions) -----------
    const JsonValue *results = doc.get("results");
    const JsonValue *pf =
        results != nullptr ? results->get("point_fields") : nullptr;
    if (pf == nullptr || pf->kind != JsonValue::Kind::Obj) {
        diags.push_back({schemaPath, doc.line, kRuleSchemaDrift,
                         "schema has no results.point_fields object "
                         "(tools/bench_schema.json contract)"});
    } else if (!kFieldNames.empty()) {
        std::set<std::string> schemaFields;
        for (const auto &[k, v] : pf->obj)
            schemaFields.insert(k);
        for (const auto &[name, line] : kFieldNames)
            if (schemaFields.count(name) == 0)
                diags.push_back(
                    {resultsPath, line, kRuleSchemaDrift,
                     "RunResult field '" + name +
                         "' is emitted by the kFields table but "
                         "missing from results.point_fields in "
                         "tools/bench_schema.json — add it so "
                         "check_bench_json.py keeps validating "
                         "artifacts (DESIGN.md §14)"});
        for (const auto &[k, v] : pf->obj)
            if (kFieldNames.count(k) == 0 && labelKeys.count(k) == 0)
                diags.push_back(
                    {schemaPath, v.line, kRuleSchemaDrift,
                     "schema point_field '" + k +
                         "' matches neither a kFields entry "
                         "(src/core/results.cc) nor a sweep-row "
                         "labeling key (core::sweepRowJson) — stale "
                         "schema entry (DESIGN.md §14)"});
    }

    // --- required stat paths must be registered somewhere in src/ -----
    const JsonValue *stats = doc.get("stats");
    if (stats != nullptr && !vocab.dotted.empty()) {
        for (const char *key :
             {"required_stat_paths", "required_fleet_stat_paths"}) {
            const JsonValue *arr = stats->get(key);
            if (arr == nullptr || arr->kind != JsonValue::Kind::Arr)
                continue;
            for (const JsonValue &p : arr->arr) {
                if (p.kind != JsonValue::Kind::Str)
                    continue;
                if (!vocab.resolves(p.str))
                    diags.push_back(
                        {schemaPath, p.line, kRuleSchemaDrift,
                         "schema-required stat path '" + p.str +
                             "' has no matching registration in "
                             "src/ (StatsRegistry literals and "
                             "prefix+suffix joins searched) — either "
                             "the registration moved/renamed or the "
                             "schema is stale (DESIGN.md §14)"});
            }
        }
    }
}

} // namespace halint
