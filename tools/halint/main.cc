/**
 * @file
 * halint CLI. Scans the repo's C++ trees (default: src/ bench/
 * examples/ tools/ relative to --root), runs the per-file rules plus
 * the cross-TU passes (HAL-W008..W010), and reports diagnostics:
 *
 *   src/sim/foo.cc:123: HAL-W002: non-deterministic RNG 'rand' — ...
 *
 * Options:
 *   --root DIR            repo root (paths reported relative to it)
 *   --format text|json|sarif
 *   --output FILE         write the report there instead of stdout
 *   --baseline FILE       apply a ratcheted suppression baseline
 *   --write-baseline FILE bootstrap a baseline from current findings
 *   --list-rules          print the rule table and exit
 *
 * Exit status: 0 clean, 1 diagnostics found, 2 usage/IO error. Run
 * from the build as `ctest -R halint` or directly:
 *
 *   ./build/tools/halint/halint --root . --format=sarif --output out.sarif
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "halint.hh"

namespace {

/** Accept both "--flag VALUE" and "--flag=VALUE". */
bool
flagValue(int argc, char **argv, int &i, const char *name,
          std::string &out)
{
    const std::size_t n = std::strlen(name);
    if (std::strcmp(argv[i], name) == 0) {
        if (i + 1 >= argc)
            return false;
        out = argv[++i];
        return true;
    }
    if (std::strncmp(argv[i], name, n) == 0 && argv[i][n] == '=') {
        out = argv[i] + n + 1;
        return true;
    }
    return false;
}

int
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--format text|json|sarif]\n"
        "          [--output FILE] [--baseline FILE]\n"
        "          [--write-baseline FILE] [--list-rules] [path...]\n"
        "  default paths: src bench examples tools\n",
        prog);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string format = "text";
    std::string outputFile;
    std::string baselineFile;
    std::string writeBaselineFile;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (flagValue(argc, argv, i, "--root", v)) {
            root = v;
        } else if (flagValue(argc, argv, i, "--format", v)) {
            format = v;
            if (format != "text" && format != "json" &&
                format != "sarif")
                return usage(argv[0]);
        } else if (flagValue(argc, argv, i, "--output", v)) {
            outputFile = v;
        } else if (flagValue(argc, argv, i, "--baseline", v)) {
            baselineFile = v;
        } else if (flagValue(argc, argv, i, "--write-baseline", v)) {
            writeBaselineFile = v;
        } else if (std::strcmp(argv[i], "--list-rules") == 0) {
            std::fputs(halint::ruleTable().c_str(), stdout);
            return 0;
        } else if (argv[i][0] == '-') {
            return usage(argv[0]);
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.empty())
        paths = {"src", "bench", "examples", "tools"};
    for (std::string &p : paths)
        if (p[0] != '/' && root != ".")
            p = root + "/" + p;

    std::vector<halint::Diagnostic> diags =
        halint::lintPaths(root, paths);

    if (!writeBaselineFile.empty()) {
        std::ofstream out(writeBaselineFile);
        out << halint::formatBaseline(diags);
        if (!out) {
            std::fprintf(stderr, "halint: cannot write baseline %s\n",
                         writeBaselineFile.c_str());
            return 2;
        }
        std::printf("halint: wrote %zu finding(s) to %s — fill in "
                    "the TODO reasons before committing\n",
                    diags.size(), writeBaselineFile.c_str());
        return 0;
    }

    if (!baselineFile.empty()) {
        std::ifstream in(baselineFile, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        if (!in) {
            std::fprintf(stderr, "halint: cannot read baseline %s\n",
                         baselineFile.c_str());
            return 2;
        }
        halint::Baseline bl;
        std::string err;
        if (!halint::loadBaseline(buf.str(), bl, err)) {
            std::fprintf(stderr, "halint: %s: %s\n",
                         baselineFile.c_str(), err.c_str());
            return 2;
        }
        diags = halint::applyBaseline(std::move(diags), bl,
                                      baselineFile);
    }

    std::string report;
    if (format == "json")
        report = halint::formatJson(diags);
    else if (format == "sarif")
        report = halint::formatSarif(diags);
    else
        report = halint::formatText(diags);

    if (!outputFile.empty()) {
        std::ofstream out(outputFile);
        out << report;
        if (!out) {
            std::fprintf(stderr, "halint: cannot write %s\n",
                         outputFile.c_str());
            return 2;
        }
    } else {
        std::fputs(report.c_str(), stdout);
    }

    if (format == "text" && outputFile.empty()) {
        if (diags.empty())
            std::printf("halint: clean\n");
        else
            std::printf(
                "halint: %zu diagnostic(s); suppress a justified one "
                "with '// halint: allow(HAL-Wnnn) <reason>' or a "
                "counted tools/halint_baseline.json entry "
                "(see DESIGN.md §9, §14)\n",
                diags.size());
    }
    return diags.empty() ? 0 : 1;
}
