/**
 * @file
 * halint CLI. Scans the repo's C++ trees (default: src/ bench/
 * examples/ tools/ relative to --root) and prints one line per
 * diagnostic:
 *
 *   src/sim/foo.cc:123: HAL-W002: non-deterministic RNG 'rand' — ...
 *
 * Exit status: 0 clean, 1 diagnostics found, 2 usage error. Run from
 * the build as `ctest -R halint` or directly:
 *
 *   ./build/tools/halint/halint --root .
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "halint.hh"

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
            root = argv[++i];
        } else if (std::strcmp(argv[i], "--list-rules") == 0) {
            std::fputs(halint::ruleTable().c_str(), stdout);
            return 0;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr,
                         "usage: %s [--root DIR] [--list-rules] "
                         "[path...]\n"
                         "  default paths: src bench examples tools\n",
                         argv[0]);
            return 2;
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.empty())
        paths = {"src", "bench", "examples", "tools"};
    for (std::string &p : paths)
        if (p[0] != '/' && root != ".")
            p = root + "/" + p;

    const std::vector<halint::Diagnostic> diags =
        halint::lintPaths(root, paths);
    for (const halint::Diagnostic &d : diags)
        std::printf("%s:%d: %s: %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.message.c_str());
    if (diags.empty()) {
        std::printf("halint: clean\n");
        return 0;
    }
    std::printf("halint: %zu diagnostic(s); suppress a justified one "
                "with '// halint: allow(HAL-Wnnn) <reason>' "
                "(see DESIGN.md §9)\n",
                diags.size());
    return 1;
}
