/**
 * @file
 * halint repo indexer: a heuristic, lexer-level symbol table and
 * function call graph over a set of translation units (DESIGN.md
 * §14). Same philosophy as the per-file scanners — no libClang, no
 * template instantiation, no overload resolution — just enough
 * structure recovery (namespaces, classes, function bodies, call
 * sites, member fields) for the cross-TU passes:
 *
 *  - HAL-W008 propagates `// halint: hotpath` over call edges;
 *  - HAL-W009 classifies annotated types by wheel band and follows
 *    member-field accesses across band boundaries;
 *  - HAL-W010 harvests the string literals that name stats paths and
 *    RunResult fields.
 *
 * Known limits (deliberate): calls through function pointers,
 * virtual dispatch, and macros produce no edges; overloads and
 * same-named methods on different classes resolve to the union of
 * candidates (capped, see kMaxCallCandidates).
 */

#ifndef HALSIM_TOOLS_HALINT_INDEX_HH
#define HALSIM_TOOLS_HALINT_INDEX_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "halint.hh"
#include "lexer.hh"

namespace halint {

/** A call site inside a function body. */
struct CallSite
{
    std::string callee;    //!< last name segment
    std::string qualifier; //!< "BatchEvent" for BatchEvent::f(); ""
    bool member = false;   //!< reached via '.' or '->'
    int line = 0;
    std::size_t tok = 0;   //!< token index of the callee name
};

/** A function (or method) definition recovered from one file. */
struct FuncDef
{
    std::size_t unit = 0;  //!< index into RepoIndex::units
    std::string name;      //!< last segment ("append")
    std::string qual;      //!< best-effort ("BatchEvent::append")
    std::string klass;     //!< enclosing/qualifying class, "" if free
    int line = 0;
    std::size_t bodyBegin = 0; //!< token index of the opening '{'
    std::size_t bodyEnd = 0;   //!< token index of the closing '}'
    bool hotpath = false;      //!< `// halint: hotpath` annotated
    int hotpathLine = 0;
    std::vector<CallSite> calls;
};

/** A member field of a band-annotated class. */
struct BandField
{
    std::string name;
    std::string klass;
    std::string band;
    std::size_t unit = 0;
    int line = 0;
};

/** A class carrying a `// halint: band(<b>)` annotation. */
struct BandClass
{
    std::string name;
    std::string band;
    std::size_t unit = 0;
    int line = 0;
};

/** One lexed translation unit plus its mailbox-covered token ranges. */
struct Unit
{
    std::string path;
    Lexed lx;
    /** Token ranges covered by a `// halint: mailbox` annotation
     *  (the next brace-balanced block after each directive). */
    std::vector<std::pair<std::size_t, std::size_t>> mailbox;
};

struct RepoIndex
{
    std::vector<Unit> units;
    std::vector<FuncDef> funcs;
    std::vector<BandClass> bandClasses;
    std::vector<BandField> bandFields;
    /** name -> indices into funcs, for call resolution. */
    std::map<std::string, std::vector<std::size_t>> byName;
    /** field name -> indices into bandFields. */
    std::map<std::string, std::vector<std::size_t>> fieldsByName;
    /** class name -> band (only annotated classes). */
    std::map<std::string, std::string> classBand;
};

/** Member-call resolution gives up beyond this many same-named
 *  candidates: names like size()/reset() are too common to carry a
 *  meaningful edge. */
inline constexpr std::size_t kMaxCallCandidates = 4;

/**
 * Lex every file and recover the symbol table + call graph. The
 * lexed units are kept inside the index so passes (and the per-file
 * scanners) share one lex per file.
 */
RepoIndex buildIndex(const std::vector<SourceFile> &files);

/** An allocation site found by the shared W004/W008 detector. */
struct AllocSite
{
    int line = 0;
    std::string what; //!< "operator new", "container .push_back()"...
};

/**
 * Scan toks[begin..end] for allocations: operator new (placement new
 * exempt), malloc-family calls, std::make_unique/make_shared, and
 * growth calls on containers (.push_back/.reserve/...).
 */
std::vector<AllocSite> findAllocations(const Lexed &lx,
                                       std::size_t begin,
                                       std::size_t end);

/** True when @p tok lies inside a mailbox-covered range of @p u. */
bool inMailbox(const Unit &u, std::size_t tok);

} // namespace halint

#endif // HALSIM_TOOLS_HALINT_INDEX_HH
