#!/usr/bin/env python3
"""Compare two bench JSON artifacts and fail on regression.

Stdlib-only gate for the CI perf job: compares a freshly measured
artifact against a committed baseline, metric by metric, with a
relative tolerance per metric.

Two comparison modes:

  regress  (default) one-sided: fail only when the current value is
           *worse* than baseline by more than the tolerance. "Worse"
           means lower for throughput-style metrics (the default) and
           higher for metrics named with --lower-better (latencies,
           seconds, drops).
  drift    two-sided: fail when the current value differs from the
           baseline by more than the tolerance in either direction
           (for deterministic artifacts that should reproduce).

Document selection: --baseline-key / --current-key drill into the
JSON with a dotted path (e.g. `post_overhaul` or `metrics`). If both
selected documents are sweep artifacts (objects holding a "points"
list), rows are matched by their "label" and every shared numeric
field is compared; otherwise the selected objects' numeric fields are
compared directly.

Examples:
  bench_diff.py --baseline bench/BENCH_simcore.json \
      --baseline-key post_overhaul \
      --current out.json --current-key metrics --default-tol 0.25
  bench_diff.py --mode drift --default-tol 1e-6 \
      --baseline bench/BENCH_fig3_quick.json --current fig3.json

Exit codes: 0 clean, 1 regression/drift found, 2 usage or input error.
"""

from __future__ import annotations

import argparse
import json
import sys


def resolve(doc, dotted):
    """Drill into *doc* with a dotted path; '' returns doc itself."""
    node = doc
    if not dotted:
        return node
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(dotted)
        node = node[part]
    return node


def numeric_fields(obj):
    """The comparable scalars of a JSON object (bool is not numeric)."""
    return {
        k: v
        for k, v in obj.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def compare_value(name, base, cur, tol, mode, lower_better):
    """Return (ok, detail) for one metric."""
    if base == 0.0:
        delta = abs(cur)
        ok = delta <= tol
        if mode == "regress":
            worse = cur < 0.0 if not lower_better else cur > 0.0
            ok = ok or not worse
        return ok, f"baseline 0, current {cur:g}"
    rel = (cur - base) / abs(base)
    if mode == "drift":
        ok = abs(rel) <= tol
    elif lower_better:
        ok = rel <= tol
    else:
        ok = rel >= -tol
    return ok, f"{base:g} -> {cur:g} ({rel:+.2%}, tol {tol:g})"


class Differ:
    def __init__(self, args):
        self.mode = args.mode
        self.default_tol = args.default_tol
        self.tols = {}
        for spec in args.tol:
            name, _, frac = spec.partition("=")
            if not _:
                raise ValueError(f"--tol wants NAME=FRAC, got '{spec}'")
            self.tols[name] = float(frac)
        self.lower_better = set(args.lower_better)
        self.ignore = set(args.ignore)
        self.rows = []
        self.failures = 0

    def compare_fields(self, ctx, base_obj, cur_obj):
        base_num = {k: v for k, v in numeric_fields(base_obj).items()
                    if k not in self.ignore}
        cur_num = {k: v for k, v in numeric_fields(cur_obj).items()
                   if k not in self.ignore}
        shared = sorted(set(base_num) & set(cur_num))
        if not shared:
            raise ValueError(f"{ctx or 'top level'}: no shared numeric "
                             "fields to compare")
        for name in shared:
            tol = self.tols.get(name, self.default_tol)
            ok, detail = compare_value(
                name, float(base_num[name]), float(cur_num[name]), tol,
                self.mode, name in self.lower_better)
            label = f"{ctx}.{name}" if ctx else name
            self.rows.append((ok, label, detail))
            if not ok:
                self.failures += 1
        missing = sorted(set(base_num) - set(cur_num))
        if missing:
            self.rows.append(
                (False, ctx or "top level",
                 "missing in current: " + ", ".join(missing)))
            self.failures += 1

    def compare_docs(self, base_doc, cur_doc):
        base_pts = base_doc.get("points") if isinstance(base_doc, dict) \
            else None
        cur_pts = cur_doc.get("points") if isinstance(cur_doc, dict) \
            else None
        if isinstance(base_pts, list) and isinstance(cur_pts, list):
            cur_by_label = {
                p.get("label"): p for p in cur_pts if isinstance(p, dict)
            }
            for bp in base_pts:
                label = bp.get("label")
                cp = cur_by_label.get(label)
                if cp is None:
                    self.rows.append((False, str(label),
                                      "point missing in current"))
                    self.failures += 1
                    continue
                self.compare_fields(str(label), bp, cp)
            return
        if not isinstance(base_doc, dict) or not isinstance(cur_doc, dict):
            raise ValueError("selected documents must be JSON objects")
        self.compare_fields("", base_doc, cur_doc)

    def report(self, verbose):
        for ok, label, detail in self.rows:
            if ok and not verbose:
                continue
            print(f"  [{'ok' if ok else 'FAIL'}] {label}: {detail}")
        checked = len(self.rows)
        print(f"bench_diff: {checked} comparisons, "
              f"{self.failures} failed ({self.mode} mode)")


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--baseline-key", default="")
    ap.add_argument("--current-key", default="")
    ap.add_argument("--mode", choices=("regress", "drift"),
                    default="regress")
    ap.add_argument("--default-tol", type=float, default=0.25,
                    help="relative tolerance for unnamed metrics")
    ap.add_argument("--tol", action="append", default=[],
                    metavar="NAME=FRAC",
                    help="per-metric tolerance override (repeatable)")
    ap.add_argument("--lower-better", action="append", default=[],
                    metavar="NAME",
                    help="metric where smaller is better (repeatable)")
    ap.add_argument("--ignore", action="append", default=[],
                    metavar="NAME",
                    help="metric to exclude from comparison and the "
                         "missing-field check (repeatable)")
    ap.add_argument("-v", "--verbose", action="store_true",
                    help="print passing comparisons too")
    args = ap.parse_args(argv)

    try:
        with open(args.baseline, encoding="utf-8") as f:
            base_doc = resolve(json.load(f), args.baseline_key)
        with open(args.current, encoding="utf-8") as f:
            cur_doc = resolve(json.load(f), args.current_key)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_diff: cannot load input: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"bench_diff: key {exc} not found", file=sys.stderr)
        return 2

    differ = Differ(args)
    try:
        differ.compare_docs(base_doc, cur_doc)
    except ValueError as exc:
        print(f"bench_diff: {exc}", file=sys.stderr)
        return 2
    differ.report(args.verbose)
    return 1 if differ.failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
