#!/usr/bin/env python3
"""Validate sweep-bench artifacts against the committed schema.

CI runs the fig4 bench with --json/--stats-out/--trace and feeds the
three artifacts through this script, so a RunResult field added (or
renamed) in src/core/results.cc without a matching edit to
tools/bench_schema.json fails the build instead of silently shipping
a different artifact shape.

Only the Python standard library is used.
"""

import argparse
import json
import sys

ERRORS = []


def fail(msg):
    ERRORS.append(msg)


def type_ok(value, kind):
    """Check a leaf value against a schema type name."""
    if kind == "string":
        return isinstance(value, str)
    if kind == "uint":
        return isinstance(value, int) and not isinstance(value, bool) \
            and value >= 0
    if kind == "number":
        return isinstance(value, (int, float)) \
            and not isinstance(value, bool)
    if kind == "array":
        return isinstance(value, list)
    if kind == "object":
        return isinstance(value, dict)
    raise ValueError("unknown schema type %r" % kind)


def check_fields(obj, fields, where, exact=True):
    """Every schema field present with the right type; no strays."""
    for name, kind in fields.items():
        if name not in obj:
            fail("%s: missing field %r" % (where, name))
        elif not type_ok(obj[name], kind):
            fail("%s: field %r should be %s, got %r" %
                 (where, name, kind, obj[name]))
    if exact:
        for name in obj:
            if name not in fields:
                fail("%s: unexpected field %r (schema out of date?)" %
                     (where, name))


def load(path):
    try:
        with open(path, "rb") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        fail("%s: %s" % (path, e))
        return None


def resolve(tree, dotted):
    """Walk a nested stats object along a dotted path."""
    node = tree
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


ENERGY_COMPONENTS = (
    "energy_snic_cpu_j",
    "energy_snic_accel_j",
    "energy_host_cpu_j",
    "energy_host_accel_j",
    "energy_fleet_j",
    "energy_extra_j",
    "energy_static_j",
)


def check_energy_sum(row, where):
    """Per-component joules must sum to the reported total (the
    EnergyLedger defines the total as the literal sum, so anything
    beyond serialization round-off means the breakdown is broken)."""
    values = [row.get(name) for name in ENERGY_COMPONENTS]
    total = row.get("energy_total_j")
    if not all(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in values + [total]):
        return  # missing/mistyped fields already reported
    sigma = sum(values)
    if abs(total - sigma) > 1e-9 * max(abs(total), 1.0):
        fail("%s: energy components sum to %r but energy_total_j is %r"
             % (where, sigma, total))


GOV_COUNTERS = (
    "gov_rebalances",
    "gov_migrations",
    "gov_parks",
    "gov_unparks",
    "gov_min_active_cores",
    "gov_max_active_cores",
)


def check_governor(row, where):
    """Governor counters must be internally consistent: the active-core
    extremes are ordered, and a run with zero governor epochs (governor
    disabled) reports every governor counter as zero."""
    values = {n: row.get(n) for n in GOV_COUNTERS + ("gov_epochs",)}
    if not all(isinstance(v, int) and not isinstance(v, bool)
               for v in values.values()):
        return  # missing/mistyped fields already reported
    if values["gov_min_active_cores"] > values["gov_max_active_cores"]:
        fail("%s: gov_min_active_cores %d > gov_max_active_cores %d" %
             (where, values["gov_min_active_cores"],
              values["gov_max_active_cores"]))
    if values["gov_epochs"] == 0:
        for name in GOV_COUNTERS:
            if values[name] != 0:
                fail("%s: %s is %d but gov_epochs is 0 (governor "
                     "counters without governor epochs)" %
                     (where, name, values[name]))


def check_results(path, schema):
    doc = load(path)
    if doc is None:
        return
    check_fields(doc, schema["header"], path)
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        fail("%s: points must be a non-empty array" % path)
        return
    for i, row in enumerate(points):
        where = "%s: points[%d]" % (path, i)
        if not isinstance(row, dict):
            fail(where + ": not an object")
            continue
        check_fields(row, schema["point_fields"], where)
        check_energy_sum(row, where)
        check_governor(row, where)


def check_stats(path, schema):
    doc = load(path)
    if doc is None:
        return
    check_fields(doc, schema["header"], path)
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        fail("%s: points must be a non-empty array" % path)
        return
    for i, row in enumerate(points):
        where = "%s: points[%d]" % (path, i)
        if not isinstance(row, dict):
            fail(where + ": not an object")
            continue
        check_fields(row, schema["point_fields"], where)
        stats = row.get("stats")
        if isinstance(stats, dict) and "server" not in stats \
                and "fleet" not in stats:
            fail(where + ": stats tree has no 'server' or 'fleet' root")

    def some_point_has(dotted):
        return any(isinstance(row, dict) and
                   resolve(row.get("stats"), dotted) is not None
                   for row in points)

    # Each required dotted path must resolve in at least one point
    # (mode-specific subtrees, e.g. server.snic.*, are absent from
    # points that have no such component). Single-server and fleet
    # artifacts carry different roots, so each root's paths are
    # required only when some point actually exposes that root.
    if some_point_has("server"):
        for dotted in schema.get("required_stat_paths", []):
            if not some_point_has(dotted):
                fail("%s: no point exposes stat path %r" %
                     (path, dotted))
    if some_point_has("fleet"):
        for dotted in schema.get("required_fleet_stat_paths", []):
            if not some_point_has(dotted):
                fail("%s: no point exposes stat path %r" %
                     (path, dotted))


def check_simcore(path, schema):
    """The bench_sim_core artifact: full metric matrix present and
    numeric (a --batch/--run-threads-restricted run writes a partial
    artifact, which must not be committed or gated)."""
    doc = load(path)
    if doc is None:
        return
    check_fields(doc, schema["header"], path)
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        check_fields(metrics, schema["metric_fields"],
                     "%s: metrics" % path)
    workload = doc.get("workload")
    if isinstance(workload, dict):
        check_fields(workload, schema["workload_fields"],
                     "%s: workload" % path)


def check_trace(path, schema):
    doc = load(path)
    if doc is None:
        return
    check_fields(doc, schema["header"], path)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("%s: traceEvents must be a non-empty array" % path)
        return
    phases = set(schema["event_phases"])
    meta_names = ("thread_name", "process_name", "run_metadata")
    saw_instant = saw_meta = False
    for i, ev in enumerate(events):
        where = "%s: traceEvents[%d]" % (path, i)
        if not isinstance(ev, dict):
            fail(where + ": not an object")
            continue
        ph = ev.get("ph")
        if ph not in phases:
            fail("%s: unexpected phase %r" % (where, ph))
            continue
        if ph == "i":
            saw_instant = True
            check_fields(ev, schema["instant_fields"], where,
                         exact=False)
            ts = ev.get("ts")
            if isinstance(ts, (int, float)) and ts < 0:
                fail(where + ": negative ts")
        elif ph == "M":
            saw_meta = True
            if ev.get("name") not in meta_names:
                fail("%s: metadata event is not one of %s: %r" %
                     (where, "/".join(meta_names), ev.get("name")))
        else:
            # Async span ("b"/"e") and flow ("s"/"t"/"f") events from
            # span documents are id-keyed; nesting and pairing are
            # validated in depth by tools/check_trace_json.py.
            if "id" not in ev:
                fail("%s: %r event without id" % (where, ph))
            ts = ev.get("ts")
            if isinstance(ts, (int, float)) and ts < 0:
                fail(where + ": negative ts")
    if not saw_instant:
        fail("%s: no instant events recorded" % path)
    if not saw_meta:
        fail("%s: no thread_name metadata (lanes unlabeled)" % path)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--schema", default="tools/bench_schema.json")
    ap.add_argument("--results", help="results artifact (--json)")
    ap.add_argument("--stats", help="stats artifact (--stats-out)")
    ap.add_argument("--trace", help="trace artifact (--trace)")
    ap.add_argument("--simcore",
                    help="bench_sim_core artifact (--json)")
    args = ap.parse_args()
    if not (args.results or args.stats or args.trace or args.simcore):
        ap.error("give at least one of "
                 "--results/--stats/--trace/--simcore")

    schema = load(args.schema)
    if schema is None:
        print("\n".join(ERRORS), file=sys.stderr)
        return 1

    if args.results:
        check_results(args.results, schema["results"])
    if args.stats:
        check_stats(args.stats, schema["stats"])
    if args.trace:
        check_trace(args.trace, schema["trace"])
    if args.simcore:
        check_simcore(args.simcore, schema["simcore"])

    if ERRORS:
        for e in ERRORS:
            print("error: " + e, file=sys.stderr)
        print("%d schema violation(s)" % len(ERRORS), file=sys.stderr)
        return 1
    checked = [p for p in (args.results, args.stats, args.trace,
                           args.simcore) if p]
    print("schema OK: " + ", ".join(checked))
    return 0


if __name__ == "__main__":
    sys.exit(main())
