#!/usr/bin/env python3
"""Validate a span-trace artifact (--trace-spans) structurally.

check_bench_json.py gates the artifact's *shape* against the schema;
this script checks the *semantics* Chrome/Perfetto rely on to render
the document:

  * async span pairing — every "e" (span end) must be preceded, within
    its (pid, id, name) key, by an unmatched "b" (span begin). The
    exporter demotes ends whose begins fell off the ring to instants,
    so a dangling "e" means the demotion pass is broken. Unclosed "b"s
    are legal: a request still in flight (or killed by a backend
    crash) never ends its span.
  * flow pairing — per (pid, id) the flow start "s" must come first;
    "t"/"f" steps without a prior "s" draw arrows from nowhere.
    Duplicate-suppression instants can legally emit a "t" after the
    finish "f" (a late response lands after the request resolved), so
    order beyond "s first" is not enforced.
  * per-phase required keys, and "bp":"e" on every flow finish.
  * metadata ("M") names restricted to thread_name / process_name /
    run_metadata, with run_metadata carrying the deterministic
    bench/preset/seed/build block.

Global timestamp monotonicity is deliberately NOT checked: bridged
packet-stage instants are appended after the run and interleave out
of tick order with the live span records.

Only the Python standard library is used. Exit 0 when every given
artifact passes, 1 otherwise (one diagnostic per violation).
"""

import argparse
import json
import sys

ERRORS = []

META_NAMES = ("thread_name", "process_name", "run_metadata")
SPAN_PHASES = ("b", "e")
FLOW_PHASES = ("s", "t", "f")


def fail(msg):
    ERRORS.append(msg)


def load(path):
    try:
        with open(path, "rb") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        fail("%s: %s" % (path, e))
        return None


def is_uint(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def require(ev, keys, where):
    ok = True
    for k in keys:
        if k not in ev:
            fail("%s: missing key %r" % (where, k))
            ok = False
    return ok


def check_ts(ev, where):
    ts = ev.get("ts")
    if not is_num(ts):
        fail("%s: ts is not a number: %r" % (where, ts))
    elif ts < 0:
        fail("%s: negative ts" % where)


def check_meta(ev, where):
    name = ev.get("name")
    if name not in META_NAMES:
        fail("%s: metadata event is not one of %s: %r" %
             (where, "/".join(META_NAMES), name))
        return
    args = ev.get("args")
    if not isinstance(args, dict):
        fail("%s: %s without args object" % (where, name))
        return
    if name in ("thread_name", "process_name"):
        if not isinstance(args.get("name"), str):
            fail("%s: %s args.name is not a string" % (where, name))
    else:  # run_metadata: the deterministic artifact fingerprint
        for key, pred, kind in (("bench", str, "string"),
                                ("preset", str, "string"),
                                ("build", str, "string")):
            if not isinstance(args.get(key), pred):
                fail("%s: run_metadata args.%s is not a %s" %
                     (where, key, kind))
        if not is_uint(args.get("seed")):
            fail("%s: run_metadata args.seed is not a uint" % where)


def check_artifact(path, require_flows):
    doc = load(path)
    if doc is None:
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("%s: traceEvents must be a non-empty array" % path)
        return

    # (pid, id, name) -> count of unmatched "b"s.
    open_spans = {}
    # (pid, id) -> set of flow phases seen so far.
    flows = {}
    saw_begin = saw_flow_start = False

    for i, ev in enumerate(events):
        where = "%s: traceEvents[%d]" % (path, i)
        if not isinstance(ev, dict):
            fail(where + ": not an object")
            continue
        ph = ev.get("ph")

        if ph == "M":
            if not require(ev, ("name", "ph", "pid", "tid"), where):
                continue
            check_meta(ev, where)
            continue

        if ph == "i":
            if require(ev, ("name", "ph", "ts", "pid", "tid"), where):
                check_ts(ev, where)
            continue

        if ph in SPAN_PHASES:
            if not require(ev, ("name", "ph", "ts", "pid", "tid",
                                "id", "cat"), where):
                continue
            check_ts(ev, where)
            if ev["cat"] != "span":
                fail("%s: %r event with cat %r (want \"span\")" %
                     (where, ph, ev["cat"]))
            key = (ev["pid"], ev["id"], ev["name"])
            if ph == "b":
                saw_begin = True
                open_spans[key] = open_spans.get(key, 0) + 1
            else:
                n = open_spans.get(key, 0)
                if n == 0:
                    fail("%s: span end %r id=%r without a prior "
                         "unmatched begin (demotion pass broken?)" %
                         (where, ev["name"], ev["id"]))
                else:
                    open_spans[key] = n - 1
            continue

        if ph in FLOW_PHASES:
            if not require(ev, ("name", "ph", "ts", "pid", "tid",
                                "id", "cat"), where):
                continue
            check_ts(ev, where)
            if ev["cat"] != "flow":
                fail("%s: %r event with cat %r (want \"flow\")" %
                     (where, ph, ev["cat"]))
            key = (ev["pid"], ev["id"])
            seen = flows.setdefault(key, set())
            if ph == "s":
                saw_flow_start = True
                if "s" in seen:
                    fail("%s: duplicate flow start for id %r" %
                         (where, ev["id"]))
            else:
                if "s" not in seen:
                    fail("%s: flow %r for id %r before its start" %
                         (where, ph, ev["id"]))
                if ph == "f" and ev.get("bp") != "e":
                    fail("%s: flow finish without bp=\"e\"" % where)
            seen.add(ph)
            continue

        fail("%s: unexpected phase %r" % (where, ph))

    # A server-mode span artifact legitimately holds only bridged
    # packet-stage instants (request spans are a fleet concept), so
    # presence of begins/flows is opt-in for fleet artifacts.
    if require_flows:
        if not saw_begin:
            fail("%s: no span begin events (tracer off or ring "
                 "empty?)" % path)
        if not saw_flow_start:
            fail("%s: no flow start events (no retained root Request "
                 "span)" % path)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("traces", nargs="+",
                    help="span-trace artifacts (--trace-spans output)")
    ap.add_argument("--require-flows", action="store_true",
                    help="additionally require span begins and flow "
                         "starts (fleet artifacts: request spans "
                         "must be present)")
    args = ap.parse_args()

    for path in args.traces:
        check_artifact(path, args.require_flows)

    if ERRORS:
        for e in ERRORS:
            print("error: " + e, file=sys.stderr)
        print("%d trace violation(s)" % len(ERRORS), file=sys.stderr)
        return 1
    print("trace OK: " + ", ".join(args.traces))
    return 0


if __name__ == "__main__":
    sys.exit(main())
