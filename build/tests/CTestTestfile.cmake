# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_funcs[1]_include.cmake")
include("/root/repo/build/tests/test_coherence[1]_include.cmake")
include("/root/repo/build/tests/test_proc[1]_include.cmake")
include("/root/repo/build/tests/test_hal[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_alg_sha256[1]_include.cmake")
include("/root/repo/build/tests/test_alg_bignum[1]_include.cmake")
include("/root/repo/build/tests/test_alg_deflate[1]_include.cmake")
include("/root/repo/build/tests/test_alg_aho[1]_include.cmake")
include("/root/repo/build/tests/test_alg_fixed_map[1]_include.cmake")
include("/root/repo/build/tests/test_alg_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_alg_prefilter[1]_include.cmake")
include("/root/repo/build/tests/test_alg_pubkey[1]_include.cmake")
include("/root/repo/build/tests/test_alg_zstream[1]_include.cmake")
include("/root/repo/build/tests/test_funcs_configs[1]_include.cmake")
include("/root/repo/build/tests/test_report_pcap[1]_include.cmake")
include("/root/repo/build/tests/test_net_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_platforms[1]_include.cmake")
