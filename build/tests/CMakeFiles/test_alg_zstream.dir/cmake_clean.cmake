file(REMOVE_RECURSE
  "CMakeFiles/test_alg_zstream.dir/test_alg_zstream.cc.o"
  "CMakeFiles/test_alg_zstream.dir/test_alg_zstream.cc.o.d"
  "test_alg_zstream"
  "test_alg_zstream.pdb"
  "test_alg_zstream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alg_zstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
