# Empty compiler generated dependencies file for test_alg_zstream.
# This may be replaced when dependencies are built.
