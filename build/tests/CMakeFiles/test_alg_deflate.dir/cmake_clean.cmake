file(REMOVE_RECURSE
  "CMakeFiles/test_alg_deflate.dir/test_alg_deflate.cc.o"
  "CMakeFiles/test_alg_deflate.dir/test_alg_deflate.cc.o.d"
  "test_alg_deflate"
  "test_alg_deflate.pdb"
  "test_alg_deflate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alg_deflate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
