# Empty dependencies file for test_funcs_configs.
# This may be replaced when dependencies are built.
