file(REMOVE_RECURSE
  "CMakeFiles/test_funcs_configs.dir/test_funcs_configs.cc.o"
  "CMakeFiles/test_funcs_configs.dir/test_funcs_configs.cc.o.d"
  "test_funcs_configs"
  "test_funcs_configs.pdb"
  "test_funcs_configs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_funcs_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
