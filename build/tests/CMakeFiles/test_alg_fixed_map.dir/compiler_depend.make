# Empty compiler generated dependencies file for test_alg_fixed_map.
# This may be replaced when dependencies are built.
