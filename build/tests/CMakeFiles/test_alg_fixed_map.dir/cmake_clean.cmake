file(REMOVE_RECURSE
  "CMakeFiles/test_alg_fixed_map.dir/test_alg_fixed_map.cc.o"
  "CMakeFiles/test_alg_fixed_map.dir/test_alg_fixed_map.cc.o.d"
  "test_alg_fixed_map"
  "test_alg_fixed_map.pdb"
  "test_alg_fixed_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alg_fixed_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
