file(REMOVE_RECURSE
  "CMakeFiles/test_alg_pubkey.dir/test_alg_pubkey.cc.o"
  "CMakeFiles/test_alg_pubkey.dir/test_alg_pubkey.cc.o.d"
  "test_alg_pubkey"
  "test_alg_pubkey.pdb"
  "test_alg_pubkey[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alg_pubkey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
