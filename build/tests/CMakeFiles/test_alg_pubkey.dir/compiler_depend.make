# Empty compiler generated dependencies file for test_alg_pubkey.
# This may be replaced when dependencies are built.
