
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_proc.cc" "tests/CMakeFiles/test_proc.dir/test_proc.cc.o" "gcc" "tests/CMakeFiles/test_proc.dir/test_proc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/halsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/halsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/alg/CMakeFiles/halsim_alg.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/halsim_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/funcs/CMakeFiles/halsim_funcs.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/halsim_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/halsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
