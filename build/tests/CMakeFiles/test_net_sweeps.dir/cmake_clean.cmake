file(REMOVE_RECURSE
  "CMakeFiles/test_net_sweeps.dir/test_net_sweeps.cc.o"
  "CMakeFiles/test_net_sweeps.dir/test_net_sweeps.cc.o.d"
  "test_net_sweeps"
  "test_net_sweeps.pdb"
  "test_net_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
