# Empty dependencies file for test_net_sweeps.
# This may be replaced when dependencies are built.
