file(REMOVE_RECURSE
  "CMakeFiles/test_report_pcap.dir/test_report_pcap.cc.o"
  "CMakeFiles/test_report_pcap.dir/test_report_pcap.cc.o.d"
  "test_report_pcap"
  "test_report_pcap.pdb"
  "test_report_pcap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
