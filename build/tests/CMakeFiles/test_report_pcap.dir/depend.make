# Empty dependencies file for test_report_pcap.
# This may be replaced when dependencies are built.
