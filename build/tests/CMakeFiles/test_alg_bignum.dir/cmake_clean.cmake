file(REMOVE_RECURSE
  "CMakeFiles/test_alg_bignum.dir/test_alg_bignum.cc.o"
  "CMakeFiles/test_alg_bignum.dir/test_alg_bignum.cc.o.d"
  "test_alg_bignum"
  "test_alg_bignum.pdb"
  "test_alg_bignum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alg_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
