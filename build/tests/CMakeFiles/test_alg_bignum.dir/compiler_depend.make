# Empty compiler generated dependencies file for test_alg_bignum.
# This may be replaced when dependencies are built.
