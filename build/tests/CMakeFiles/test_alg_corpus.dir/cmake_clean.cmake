file(REMOVE_RECURSE
  "CMakeFiles/test_alg_corpus.dir/test_alg_corpus.cc.o"
  "CMakeFiles/test_alg_corpus.dir/test_alg_corpus.cc.o.d"
  "test_alg_corpus"
  "test_alg_corpus.pdb"
  "test_alg_corpus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alg_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
