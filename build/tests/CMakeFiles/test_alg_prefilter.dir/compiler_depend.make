# Empty compiler generated dependencies file for test_alg_prefilter.
# This may be replaced when dependencies are built.
