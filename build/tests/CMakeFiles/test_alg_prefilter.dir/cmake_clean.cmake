file(REMOVE_RECURSE
  "CMakeFiles/test_alg_prefilter.dir/test_alg_prefilter.cc.o"
  "CMakeFiles/test_alg_prefilter.dir/test_alg_prefilter.cc.o.d"
  "test_alg_prefilter"
  "test_alg_prefilter.pdb"
  "test_alg_prefilter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alg_prefilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
