# Empty dependencies file for test_alg_aho.
# This may be replaced when dependencies are built.
