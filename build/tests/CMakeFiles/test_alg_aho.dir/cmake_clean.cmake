file(REMOVE_RECURSE
  "CMakeFiles/test_alg_aho.dir/test_alg_aho.cc.o"
  "CMakeFiles/test_alg_aho.dir/test_alg_aho.cc.o.d"
  "test_alg_aho"
  "test_alg_aho.pdb"
  "test_alg_aho[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alg_aho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
