file(REMOVE_RECURSE
  "CMakeFiles/test_alg_sha256.dir/test_alg_sha256.cc.o"
  "CMakeFiles/test_alg_sha256.dir/test_alg_sha256.cc.o.d"
  "test_alg_sha256"
  "test_alg_sha256.pdb"
  "test_alg_sha256[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alg_sha256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
