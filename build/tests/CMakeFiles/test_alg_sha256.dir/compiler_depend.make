# Empty compiler generated dependencies file for test_alg_sha256.
# This may be replaced when dependencies are built.
