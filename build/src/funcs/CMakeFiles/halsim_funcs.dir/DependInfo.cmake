
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/funcs/analytics.cc" "src/funcs/CMakeFiles/halsim_funcs.dir/analytics.cc.o" "gcc" "src/funcs/CMakeFiles/halsim_funcs.dir/analytics.cc.o.d"
  "/root/repo/src/funcs/calibration.cc" "src/funcs/CMakeFiles/halsim_funcs.dir/calibration.cc.o" "gcc" "src/funcs/CMakeFiles/halsim_funcs.dir/calibration.cc.o.d"
  "/root/repo/src/funcs/content.cc" "src/funcs/CMakeFiles/halsim_funcs.dir/content.cc.o" "gcc" "src/funcs/CMakeFiles/halsim_funcs.dir/content.cc.o.d"
  "/root/repo/src/funcs/nat.cc" "src/funcs/CMakeFiles/halsim_funcs.dir/nat.cc.o" "gcc" "src/funcs/CMakeFiles/halsim_funcs.dir/nat.cc.o.d"
  "/root/repo/src/funcs/registry.cc" "src/funcs/CMakeFiles/halsim_funcs.dir/registry.cc.o" "gcc" "src/funcs/CMakeFiles/halsim_funcs.dir/registry.cc.o.d"
  "/root/repo/src/funcs/stateful.cc" "src/funcs/CMakeFiles/halsim_funcs.dir/stateful.cc.o" "gcc" "src/funcs/CMakeFiles/halsim_funcs.dir/stateful.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/halsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/halsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/alg/CMakeFiles/halsim_alg.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/halsim_coherence.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
