file(REMOVE_RECURSE
  "CMakeFiles/halsim_funcs.dir/analytics.cc.o"
  "CMakeFiles/halsim_funcs.dir/analytics.cc.o.d"
  "CMakeFiles/halsim_funcs.dir/calibration.cc.o"
  "CMakeFiles/halsim_funcs.dir/calibration.cc.o.d"
  "CMakeFiles/halsim_funcs.dir/content.cc.o"
  "CMakeFiles/halsim_funcs.dir/content.cc.o.d"
  "CMakeFiles/halsim_funcs.dir/nat.cc.o"
  "CMakeFiles/halsim_funcs.dir/nat.cc.o.d"
  "CMakeFiles/halsim_funcs.dir/registry.cc.o"
  "CMakeFiles/halsim_funcs.dir/registry.cc.o.d"
  "CMakeFiles/halsim_funcs.dir/stateful.cc.o"
  "CMakeFiles/halsim_funcs.dir/stateful.cc.o.d"
  "libhalsim_funcs.a"
  "libhalsim_funcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halsim_funcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
