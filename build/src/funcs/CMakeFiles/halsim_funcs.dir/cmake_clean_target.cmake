file(REMOVE_RECURSE
  "libhalsim_funcs.a"
)
