# Empty dependencies file for halsim_funcs.
# This may be replaced when dependencies are built.
