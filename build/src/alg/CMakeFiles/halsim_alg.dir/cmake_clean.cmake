file(REMOVE_RECURSE
  "CMakeFiles/halsim_alg.dir/aho_corasick.cc.o"
  "CMakeFiles/halsim_alg.dir/aho_corasick.cc.o.d"
  "CMakeFiles/halsim_alg.dir/bignum.cc.o"
  "CMakeFiles/halsim_alg.dir/bignum.cc.o.d"
  "CMakeFiles/halsim_alg.dir/corpus.cc.o"
  "CMakeFiles/halsim_alg.dir/corpus.cc.o.d"
  "CMakeFiles/halsim_alg.dir/deflate.cc.o"
  "CMakeFiles/halsim_alg.dir/deflate.cc.o.d"
  "CMakeFiles/halsim_alg.dir/prefilter.cc.o"
  "CMakeFiles/halsim_alg.dir/prefilter.cc.o.d"
  "CMakeFiles/halsim_alg.dir/pubkey.cc.o"
  "CMakeFiles/halsim_alg.dir/pubkey.cc.o.d"
  "CMakeFiles/halsim_alg.dir/sha256.cc.o"
  "CMakeFiles/halsim_alg.dir/sha256.cc.o.d"
  "CMakeFiles/halsim_alg.dir/zstream.cc.o"
  "CMakeFiles/halsim_alg.dir/zstream.cc.o.d"
  "libhalsim_alg.a"
  "libhalsim_alg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halsim_alg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
