
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alg/aho_corasick.cc" "src/alg/CMakeFiles/halsim_alg.dir/aho_corasick.cc.o" "gcc" "src/alg/CMakeFiles/halsim_alg.dir/aho_corasick.cc.o.d"
  "/root/repo/src/alg/bignum.cc" "src/alg/CMakeFiles/halsim_alg.dir/bignum.cc.o" "gcc" "src/alg/CMakeFiles/halsim_alg.dir/bignum.cc.o.d"
  "/root/repo/src/alg/corpus.cc" "src/alg/CMakeFiles/halsim_alg.dir/corpus.cc.o" "gcc" "src/alg/CMakeFiles/halsim_alg.dir/corpus.cc.o.d"
  "/root/repo/src/alg/deflate.cc" "src/alg/CMakeFiles/halsim_alg.dir/deflate.cc.o" "gcc" "src/alg/CMakeFiles/halsim_alg.dir/deflate.cc.o.d"
  "/root/repo/src/alg/prefilter.cc" "src/alg/CMakeFiles/halsim_alg.dir/prefilter.cc.o" "gcc" "src/alg/CMakeFiles/halsim_alg.dir/prefilter.cc.o.d"
  "/root/repo/src/alg/pubkey.cc" "src/alg/CMakeFiles/halsim_alg.dir/pubkey.cc.o" "gcc" "src/alg/CMakeFiles/halsim_alg.dir/pubkey.cc.o.d"
  "/root/repo/src/alg/sha256.cc" "src/alg/CMakeFiles/halsim_alg.dir/sha256.cc.o" "gcc" "src/alg/CMakeFiles/halsim_alg.dir/sha256.cc.o.d"
  "/root/repo/src/alg/zstream.cc" "src/alg/CMakeFiles/halsim_alg.dir/zstream.cc.o" "gcc" "src/alg/CMakeFiles/halsim_alg.dir/zstream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/halsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
