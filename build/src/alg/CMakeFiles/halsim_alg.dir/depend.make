# Empty dependencies file for halsim_alg.
# This may be replaced when dependencies are built.
