file(REMOVE_RECURSE
  "libhalsim_alg.a"
)
