file(REMOVE_RECURSE
  "libhalsim_net.a"
)
