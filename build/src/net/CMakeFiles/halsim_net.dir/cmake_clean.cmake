file(REMOVE_RECURSE
  "CMakeFiles/halsim_net.dir/addr.cc.o"
  "CMakeFiles/halsim_net.dir/addr.cc.o.d"
  "CMakeFiles/halsim_net.dir/checksum.cc.o"
  "CMakeFiles/halsim_net.dir/checksum.cc.o.d"
  "CMakeFiles/halsim_net.dir/link.cc.o"
  "CMakeFiles/halsim_net.dir/link.cc.o.d"
  "CMakeFiles/halsim_net.dir/packet.cc.o"
  "CMakeFiles/halsim_net.dir/packet.cc.o.d"
  "CMakeFiles/halsim_net.dir/pcap.cc.o"
  "CMakeFiles/halsim_net.dir/pcap.cc.o.d"
  "CMakeFiles/halsim_net.dir/traffic.cc.o"
  "CMakeFiles/halsim_net.dir/traffic.cc.o.d"
  "libhalsim_net.a"
  "libhalsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
