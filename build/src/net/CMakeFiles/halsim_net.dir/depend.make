# Empty dependencies file for halsim_net.
# This may be replaced when dependencies are built.
