file(REMOVE_RECURSE
  "CMakeFiles/halsim_core.dir/hlb.cc.o"
  "CMakeFiles/halsim_core.dir/hlb.cc.o.d"
  "CMakeFiles/halsim_core.dir/lbp.cc.o"
  "CMakeFiles/halsim_core.dir/lbp.cc.o.d"
  "CMakeFiles/halsim_core.dir/server.cc.o"
  "CMakeFiles/halsim_core.dir/server.cc.o.d"
  "CMakeFiles/halsim_core.dir/slb.cc.o"
  "CMakeFiles/halsim_core.dir/slb.cc.o.d"
  "libhalsim_core.a"
  "libhalsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
