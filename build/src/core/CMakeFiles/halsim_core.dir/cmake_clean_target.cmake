file(REMOVE_RECURSE
  "libhalsim_core.a"
)
