# Empty compiler generated dependencies file for halsim_core.
# This may be replaced when dependencies are built.
