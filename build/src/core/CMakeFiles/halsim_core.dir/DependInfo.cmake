
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/hlb.cc" "src/core/CMakeFiles/halsim_core.dir/hlb.cc.o" "gcc" "src/core/CMakeFiles/halsim_core.dir/hlb.cc.o.d"
  "/root/repo/src/core/lbp.cc" "src/core/CMakeFiles/halsim_core.dir/lbp.cc.o" "gcc" "src/core/CMakeFiles/halsim_core.dir/lbp.cc.o.d"
  "/root/repo/src/core/server.cc" "src/core/CMakeFiles/halsim_core.dir/server.cc.o" "gcc" "src/core/CMakeFiles/halsim_core.dir/server.cc.o.d"
  "/root/repo/src/core/slb.cc" "src/core/CMakeFiles/halsim_core.dir/slb.cc.o" "gcc" "src/core/CMakeFiles/halsim_core.dir/slb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/halsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/halsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/alg/CMakeFiles/halsim_alg.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/halsim_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/funcs/CMakeFiles/halsim_funcs.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/halsim_proc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
