file(REMOVE_RECURSE
  "CMakeFiles/halsim_coherence.dir/domain.cc.o"
  "CMakeFiles/halsim_coherence.dir/domain.cc.o.d"
  "libhalsim_coherence.a"
  "libhalsim_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halsim_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
