file(REMOVE_RECURSE
  "libhalsim_coherence.a"
)
