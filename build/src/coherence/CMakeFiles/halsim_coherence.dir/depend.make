# Empty dependencies file for halsim_coherence.
# This may be replaced when dependencies are built.
