file(REMOVE_RECURSE
  "libhalsim_proc.a"
)
