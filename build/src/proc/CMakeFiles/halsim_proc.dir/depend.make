# Empty dependencies file for halsim_proc.
# This may be replaced when dependencies are built.
