file(REMOVE_RECURSE
  "CMakeFiles/halsim_proc.dir/processor.cc.o"
  "CMakeFiles/halsim_proc.dir/processor.cc.o.d"
  "libhalsim_proc.a"
  "libhalsim_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halsim_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
