file(REMOVE_RECURSE
  "libhalsim_sim.a"
)
