# Empty dependencies file for halsim_sim.
# This may be replaced when dependencies are built.
