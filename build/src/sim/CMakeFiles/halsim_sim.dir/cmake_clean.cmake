file(REMOVE_RECURSE
  "CMakeFiles/halsim_sim.dir/event_queue.cc.o"
  "CMakeFiles/halsim_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/halsim_sim.dir/report.cc.o"
  "CMakeFiles/halsim_sim.dir/report.cc.o.d"
  "CMakeFiles/halsim_sim.dir/rng.cc.o"
  "CMakeFiles/halsim_sim.dir/rng.cc.o.d"
  "CMakeFiles/halsim_sim.dir/stats.cc.o"
  "CMakeFiles/halsim_sim.dir/stats.cc.o.d"
  "libhalsim_sim.a"
  "libhalsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
