# Empty dependencies file for ids_inline.
# This may be replaced when dependencies are built.
