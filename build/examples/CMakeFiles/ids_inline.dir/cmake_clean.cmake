file(REMOVE_RECURSE
  "CMakeFiles/ids_inline.dir/ids_inline.cpp.o"
  "CMakeFiles/ids_inline.dir/ids_inline.cpp.o.d"
  "ids_inline"
  "ids_inline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_inline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
