# Empty dependencies file for capacity_report.
# This may be replaced when dependencies are built.
