file(REMOVE_RECURSE
  "CMakeFiles/capacity_report.dir/capacity_report.cpp.o"
  "CMakeFiles/capacity_report.dir/capacity_report.cpp.o.d"
  "capacity_report"
  "capacity_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
