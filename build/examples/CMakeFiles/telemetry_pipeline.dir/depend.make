# Empty dependencies file for telemetry_pipeline.
# This may be replaced when dependencies are built.
