file(REMOVE_RECURSE
  "CMakeFiles/halsim_cli.dir/halsim_cli.cpp.o"
  "CMakeFiles/halsim_cli.dir/halsim_cli.cpp.o.d"
  "halsim_cli"
  "halsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
