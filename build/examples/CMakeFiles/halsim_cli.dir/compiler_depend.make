# Empty compiler generated dependencies file for halsim_cli.
# This may be replaced when dependencies are built.
