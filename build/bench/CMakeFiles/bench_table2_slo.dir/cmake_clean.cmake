file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_slo.dir/bench_table2_slo.cc.o"
  "CMakeFiles/bench_table2_slo.dir/bench_table2_slo.cc.o.d"
  "bench_table2_slo"
  "bench_table2_slo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_slo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
