file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_slb.dir/bench_fig5_slb.cc.o"
  "CMakeFiles/bench_fig5_slb.dir/bench_fig5_slb.cc.o.d"
  "bench_fig5_slb"
  "bench_fig5_slb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_slb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
