# Empty compiler generated dependencies file for bench_fig3_power_efficiency.
# This may be replaced when dependencies are built.
