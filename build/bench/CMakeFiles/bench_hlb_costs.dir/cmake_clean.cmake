file(REMOVE_RECURSE
  "CMakeFiles/bench_hlb_costs.dir/bench_hlb_costs.cc.o"
  "CMakeFiles/bench_hlb_costs.dir/bench_hlb_costs.cc.o.d"
  "bench_hlb_costs"
  "bench_hlb_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hlb_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
