# Empty compiler generated dependencies file for bench_hlb_costs.
# This may be replaced when dependencies are built.
