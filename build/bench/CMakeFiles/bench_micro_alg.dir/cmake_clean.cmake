file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_alg.dir/bench_micro_alg.cc.o"
  "CMakeFiles/bench_micro_alg.dir/bench_micro_alg.cc.o.d"
  "bench_micro_alg"
  "bench_micro_alg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_alg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
