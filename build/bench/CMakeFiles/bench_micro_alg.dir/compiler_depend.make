# Empty compiler generated dependencies file for bench_micro_alg.
# This may be replaced when dependencies are built.
