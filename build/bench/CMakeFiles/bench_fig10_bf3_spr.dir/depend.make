# Empty dependencies file for bench_fig10_bf3_spr.
# This may be replaced when dependencies are built.
