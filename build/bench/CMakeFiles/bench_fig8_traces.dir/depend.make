# Empty dependencies file for bench_fig8_traces.
# This may be replaced when dependencies are built.
