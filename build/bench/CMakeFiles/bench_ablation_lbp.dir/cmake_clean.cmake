file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lbp.dir/bench_ablation_lbp.cc.o"
  "CMakeFiles/bench_ablation_lbp.dir/bench_ablation_lbp.cc.o.d"
  "bench_ablation_lbp"
  "bench_ablation_lbp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
