# Empty dependencies file for bench_ablation_lbp.
# This may be replaced when dependencies are built.
