/**
 * @file
 * SHA-256 against FIPS 180-4 published vectors plus structural
 * properties (incremental == one-shot, avalanche).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "alg/sha256.hh"

using halsim::alg::Sha256;
using halsim::alg::Sha256Digest;

namespace {

Sha256Digest
hashStr(const std::string &s)
{
    return Sha256::hash(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t *>(s.data()), s.size()));
}

} // namespace

TEST(Sha256, EmptyString)
{
    EXPECT_EQ(Sha256::toHex(hashStr("")),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(Sha256::toHex(hashStr("abc")),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(Sha256::toHex(hashStr(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                  "nopq")),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
              "19db06c1");
}

TEST(Sha256, MillionA)
{
    // FIPS 180-4 long vector: one million 'a' bytes.
    std::vector<std::uint8_t> data(1000000, 'a');
    EXPECT_EQ(Sha256::toHex(Sha256::hash(data)),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39cc"
              "c7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    std::vector<std::uint8_t> data(100000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 131 + 7);

    const Sha256Digest whole = Sha256::hash(data);

    // Feed in awkward chunk sizes straddling block boundaries.
    Sha256 ctx;
    std::size_t off = 0;
    std::size_t chunk = 1;
    while (off < data.size()) {
        const std::size_t take = std::min(chunk, data.size() - off);
        ctx.update(std::span<const std::uint8_t>(data.data() + off, take));
        off += take;
        chunk = (chunk * 3 + 1) % 200 + 1;
    }
    EXPECT_EQ(ctx.finish(), whole);
}

TEST(Sha256, SingleBitFlipChangesDigest)
{
    std::vector<std::uint8_t> data(256, 0x5a);
    const Sha256Digest base = Sha256::hash(data);
    for (int byte : {0, 63, 64, 255}) {
        auto mutated = data;
        mutated[byte] ^= 1;
        EXPECT_NE(Sha256::hash(mutated), base)
            << "flip at byte " << byte;
    }
}

TEST(Sha256, ResetReusesContext)
{
    Sha256 ctx;
    const std::string a = "first message";
    ctx.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t *>(a.data()), a.size()));
    (void)ctx.finish();

    ctx.reset();
    const std::string b = "abc";
    ctx.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t *>(b.data()), b.size()));
    EXPECT_EQ(Sha256::toHex(ctx.finish()),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
}

/** Lengths straddling the padding boundary (55/56/57, 63/64/65). */
class Sha256PaddingTest : public ::testing::TestWithParam<int>
{
};

TEST_P(Sha256PaddingTest, PaddingBoundaryConsistency)
{
    const int len = GetParam();
    std::vector<std::uint8_t> data(len, 'x');
    const Sha256Digest whole = Sha256::hash(data);

    Sha256 ctx;
    for (int i = 0; i < len; ++i)
        ctx.update(std::span<const std::uint8_t>(&data[i], 1));
    EXPECT_EQ(ctx.finish(), whole) << "len " << len;
}

INSTANTIATE_TEST_SUITE_P(Boundaries, Sha256PaddingTest,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64,
                                           65, 119, 120, 121, 127, 128));
