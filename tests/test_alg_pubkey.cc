/**
 * @file
 * RSA / DSA / DH protocol layer: round trips, signature
 * verification, tamper detection, and algebraic sanity of the DSA
 * group parameters.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "alg/pubkey.hh"

using namespace halsim;
using namespace halsim::alg;

namespace {

std::vector<std::uint8_t>
bytesOf(const std::string &s)
{
    return {s.begin(), s.end()};
}

/** Shared keys: generation is the expensive part, do it once. */
RsaKey &
rsa()
{
    static RsaKey key = [] {
        Rng rng(0x25A);
        return RsaKey::generate(512, rng);
    }();
    return key;
}

DsaKey &
dsa()
{
    static DsaKey key = [] {
        Rng rng(0xD5A);
        return DsaKey::generate(512, 160, rng);
    }();
    return key;
}

} // namespace

TEST(Rsa, EncryptDecryptRoundTrip)
{
    Rng rng(1);
    for (int i = 0; i < 5; ++i) {
        const BigUint m = BigUint::randomBits(200, rng);
        EXPECT_EQ(rsa().decrypt(rsa().encrypt(m)), m);
    }
}

TEST(Rsa, ModulusHasRequestedSize)
{
    EXPECT_NEAR(static_cast<double>(rsa().modulus().bitLength()), 512.0,
                2.0);
    EXPECT_EQ(rsa().publicExponent().toUint64(), 65537u);
}

TEST(Rsa, SignVerify)
{
    const auto msg = bytesOf("attack at dawn");
    const BigUint sig = rsa().sign(msg);
    EXPECT_TRUE(rsa().verify(msg, sig));
}

TEST(Rsa, TamperedMessageFails)
{
    const auto msg = bytesOf("attack at dawn");
    const BigUint sig = rsa().sign(msg);
    EXPECT_FALSE(rsa().verify(bytesOf("attack at dusk"), sig));
    EXPECT_FALSE(rsa().verify(msg, sig + BigUint(1)));
}

TEST(Dsa, GroupParametersAreConsistent)
{
    const DsaKey &key = dsa();
    // q | p-1.
    EXPECT_TRUE(((key.p() - BigUint(1)) % key.q()).isZero());
    // g has order q: g^q == 1 mod p, g != 1.
    EXPECT_EQ(key.g().modexp(key.q(), key.p()), BigUint(1));
    EXPECT_NE(key.g(), BigUint(1));
    EXPECT_GE(key.q().bitLength(), 160u);
}

TEST(Dsa, SignVerify)
{
    Rng rng(2);
    const auto msg = bytesOf("the quick brown fox");
    const auto sig = dsa().sign(msg, rng);
    EXPECT_TRUE(dsa().verify(msg, sig));
}

TEST(Dsa, SignaturesAreRandomizedButAllVerify)
{
    Rng rng(3);
    const auto msg = bytesOf("same message");
    const auto s1 = dsa().sign(msg, rng);
    const auto s2 = dsa().sign(msg, rng);
    EXPECT_NE(s1.r, s2.r) << "fresh nonce per signature";
    EXPECT_TRUE(dsa().verify(msg, s1));
    EXPECT_TRUE(dsa().verify(msg, s2));
}

TEST(Dsa, TamperedFails)
{
    Rng rng(4);
    const auto msg = bytesOf("original");
    auto sig = dsa().sign(msg, rng);
    EXPECT_FALSE(dsa().verify(bytesOf("OriginaL"), sig));
    sig.s = (sig.s + BigUint(1)) % dsa().q();
    EXPECT_FALSE(dsa().verify(msg, sig));
}

TEST(Dsa, RejectsOutOfRangeSignature)
{
    const auto msg = bytesOf("msg");
    DsaKey::Signature bad{BigUint(0), BigUint(1)};
    EXPECT_FALSE(dsa().verify(msg, bad));
    bad = {dsa().q(), BigUint(1)};
    EXPECT_FALSE(dsa().verify(msg, bad));
}

TEST(Dh, SharedSecretAgrees)
{
    Rng rng(5);
    DhParty alice(rng), bob(rng);
    EXPECT_EQ(alice.agree(bob.publicValue()),
              bob.agree(alice.publicValue()));
    EXPECT_NE(alice.publicValue(), bob.publicValue());
}

TEST(Dh, RejectsDegeneratePeer)
{
    Rng rng(6);
    DhParty alice(rng);
    EXPECT_THROW(alice.agree(BigUint(1)), std::invalid_argument);
    EXPECT_THROW(alice.agree(BigUint(0)), std::invalid_argument);
}
