/**
 * @file
 * Network substrate: checksums (full vs incremental), frame codecs,
 * the address-rewrite datapaths HAL relies on, link timing, and the
 * traffic generators' statistical properties (Fig. 8 anchors).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/addr.hh"
#include "net/checksum.hh"
#include "net/client.hh"
#include "net/link.hh"
#include "net/packet.hh"
#include "net/traffic.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace halsim;
using namespace halsim::net;

TEST(Addr, Formatting)
{
    EXPECT_EQ(MacAddr(0xde, 0xad, 0xbe, 0xef, 0x00, 0x01).toString(),
              "de:ad:be:ef:00:01");
    EXPECT_EQ(Ipv4Addr(10, 1, 2, 3).toString(), "10.1.2.3");
    EXPECT_EQ(MacAddr::fromUint(0x112233445566).toUint(),
              0x112233445566u);
}

TEST(Checksum, KnownVector)
{
    // Classic RFC 1071 worked example.
    const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03,
                                 0xf4, 0xf5, 0xf6, 0xf7};
    EXPECT_EQ(onesComplementSum(data, sizeof(data)), 0xddf2);
    EXPECT_EQ(internetChecksum(data, sizeof(data)),
              static_cast<std::uint16_t>(~0xddf2));
}

TEST(Checksum, OddLengthPads)
{
    const std::uint8_t data[] = {0xab, 0xcd, 0xef};
    // 0xabcd + 0xef00 = 0x19acd -> fold -> 0x9ace.
    EXPECT_EQ(onesComplementSum(data, sizeof(data)), 0x9ace);
}

namespace {

/** The original byte-wise RFC 1071 loop, kept as the reference the
 *  word-at-a-time implementation must match bit for bit. */
std::uint16_t
onesComplementSumBytewise(const std::uint8_t *data, std::size_t len)
{
    std::uint32_t sum = 0;
    std::size_t i = 0;
    for (; i + 1 < len; i += 2)
        sum += (std::uint32_t{data[i]} << 8) | data[i + 1];
    if (i < len)
        sum += std::uint32_t{data[i]} << 8;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(sum);
}

} // namespace

TEST(Checksum, WordAtATimeMatchesBytewise)
{
    Rng rng(0xC45);
    for (int round = 0; round < 200; ++round) {
        // Every length 0..64 plus assorted larger odd/even sizes
        // covers all 8/4-byte-block and tail-parity combinations.
        const std::size_t len =
            round < 65 ? static_cast<std::size_t>(round)
                       : 65 + (rng.next() % 1500);
        std::vector<std::uint8_t> buf(len);
        for (auto &b : buf)
            b = static_cast<std::uint8_t>(rng.next());
        ASSERT_EQ(onesComplementSum(buf.data(), len),
                  onesComplementSumBytewise(buf.data(), len))
            << "len=" << len;
    }
    // All-ones input exercises maximal end-around carries.
    std::vector<std::uint8_t> ones(4096, 0xff);
    EXPECT_EQ(onesComplementSum(ones.data(), ones.size()),
              onesComplementSumBytewise(ones.data(), ones.size()));
    EXPECT_EQ(onesComplementSum(ones.data(), 4095),
              onesComplementSumBytewise(ones.data(), 4095));
}

TEST(Checksum, IncrementalMatchesFullRecompute)
{
    Rng rng(1);
    for (int trial = 0; trial < 200; ++trial) {
        std::uint8_t hdr[20];
        for (auto &b : hdr)
            b = static_cast<std::uint8_t>(rng.next());
        // Zero the checksum field, compute, store.
        hdr[10] = hdr[11] = 0;
        const std::uint16_t cks = internetChecksum(hdr, sizeof(hdr));
        hdr[10] = static_cast<std::uint8_t>(cks >> 8);
        hdr[11] = static_cast<std::uint8_t>(cks);

        // Mutate the 32-bit word at offset 16 (destination address).
        const std::uint32_t oldv = load32(hdr + 16);
        const std::uint32_t newv = static_cast<std::uint32_t>(rng.next());
        const std::uint16_t patched = checksumUpdate32(cks, oldv, newv);

        store32(hdr + 16, newv);
        hdr[10] = hdr[11] = 0;
        const std::uint16_t full = internetChecksum(hdr, sizeof(hdr));
        EXPECT_EQ(patched, full) << "trial " << trial;
    }
}

TEST(Packet, BuildAndParse)
{
    const std::vector<std::uint8_t> body = {'p', 'i', 'n', 'g'};
    auto pkt = makeUdpPacket(MacAddr::fromUint(1), MacAddr::fromUint(2),
                             Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2),
                             1111, 2222, body, kMtuFrameBytes);
    EXPECT_EQ(pkt->size(), kMtuFrameBytes);
    EXPECT_EQ(pkt->eth().etherType(), kEtherTypeIpv4);
    EXPECT_EQ(pkt->ip().protocol(), kIpProtoUdp);
    EXPECT_EQ(pkt->ip().src(), Ipv4Addr(10, 0, 0, 1));
    EXPECT_EQ(pkt->ip().dst(), Ipv4Addr(10, 0, 0, 2));
    EXPECT_TRUE(pkt->ip().checksumOk());
    EXPECT_EQ(pkt->udp().srcPort(), 1111);
    EXPECT_EQ(pkt->udp().dstPort(), 2222);
    EXPECT_EQ(std::memcmp(pkt->payload().data(), "ping", 4), 0);
    // Padded payload region extends to the MTU.
    EXPECT_EQ(pkt->payload().size(), kMtuFrameBytes - kFrameHeaderLen);
}

TEST(Packet, RewriteDstKeepsChecksumValid)
{
    auto pkt = makeUdpPacket(MacAddr::fromUint(1), MacAddr::fromUint(2),
                             Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2),
                             1, 2, {}, 128);
    ASSERT_TRUE(pkt->ip().checksumOk());
    pkt->ip().rewriteDst(Ipv4Addr(192, 168, 7, 9));
    EXPECT_EQ(pkt->ip().dst(), Ipv4Addr(192, 168, 7, 9));
    EXPECT_TRUE(pkt->ip().checksumOk())
        << "incremental rewrite must keep the header checksum valid";
}

TEST(Packet, RewriteSrcKeepsChecksumValid)
{
    auto pkt = makeUdpPacket(MacAddr::fromUint(1), MacAddr::fromUint(2),
                             Ipv4Addr(172, 16, 0, 1), Ipv4Addr(10, 0, 0, 2),
                             1, 2, {}, 256);
    pkt->ip().rewriteSrc(Ipv4Addr(10, 9, 8, 7));
    EXPECT_EQ(pkt->ip().src(), Ipv4Addr(10, 9, 8, 7));
    EXPECT_TRUE(pkt->ip().checksumOk());
}

TEST(Packet, ResizePayloadFixesLengths)
{
    const std::vector<std::uint8_t> body = {'a', 'b', 'c'};
    auto pkt = makeUdpPacket(MacAddr::fromUint(1), MacAddr::fromUint(2),
                             Ipv4Addr(1, 2, 3, 4), Ipv4Addr(5, 6, 7, 8),
                             1, 2, body);
    pkt->resizePayload(100);
    EXPECT_EQ(pkt->size(), kFrameHeaderLen + 100);
    EXPECT_EQ(pkt->ip().totalLength(),
              kIpv4HeaderLen + kUdpHeaderLen + 100);
    EXPECT_EQ(pkt->udp().length(), kUdpHeaderLen + 100);
    EXPECT_TRUE(pkt->ip().checksumOk());
}

namespace {

/** Captures delivered packets with their arrival ticks. */
struct CaptureSink : PacketSink
{
    explicit CaptureSink(EventQueue &eq) : eq(eq) {}

    void
    accept(PacketPtr pkt) override
    {
        arrivals.push_back(eq.now());
        packets.push_back(std::move(pkt));
    }

    EventQueue &eq;
    std::vector<Tick> arrivals;
    std::vector<PacketPtr> packets;
};

PacketPtr
testFrame(std::size_t bytes)
{
    return makeUdpPacket(MacAddr::fromUint(1), MacAddr::fromUint(2),
                         Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 1, 2,
                         {}, bytes);
}

} // namespace

TEST(Link, SerializationPlusPropagation)
{
    EventQueue eq;
    CaptureSink sink(eq);
    Link link(eq, {.rate_gbps = 100.0, .propagation = 500 * kNs}, sink);
    link.send(testFrame(1500));
    eq.run();
    ASSERT_EQ(sink.arrivals.size(), 1u);
    // 120 ns serialization + 500 ns propagation.
    EXPECT_EQ(sink.arrivals[0], 620 * kNs);
}

TEST(Link, BackToBackContention)
{
    EventQueue eq;
    CaptureSink sink(eq);
    Link link(eq, {.rate_gbps = 100.0, .propagation = 0}, sink);
    link.send(testFrame(1500));
    link.send(testFrame(1500));
    eq.run();
    ASSERT_EQ(sink.arrivals.size(), 2u);
    EXPECT_EQ(sink.arrivals[0], 120 * kNs);
    EXPECT_EQ(sink.arrivals[1], 240 * kNs)
        << "second frame must wait for the first to serialize";
}

TEST(Link, TailDropsWhenSaturated)
{
    EventQueue eq;
    CaptureSink sink(eq);
    Link link(eq, {.rate_gbps = 1.0, .propagation = 0, .max_queue = 4},
              sink);
    for (int i = 0; i < 10; ++i)
        link.send(testFrame(1500));
    eq.run();
    EXPECT_EQ(sink.arrivals.size(), 4u);
    EXPECT_EQ(link.drops(), 6u);
}

TEST(Traffic, ConstantRateSpacing)
{
    EventQueue eq;
    CaptureSink sink(eq);
    TrafficGenerator::Config cfg;
    cfg.frame_bytes = 1500;
    TrafficGenerator gen(eq, cfg, std::make_unique<ConstantRate>(12.0),
                         sink);
    gen.start(1 * kMs);
    eq.run();
    // 12 Gbps, 1500 B frames -> 1 us apart -> ~1000 frames in 1 ms.
    EXPECT_NEAR(static_cast<double>(gen.sentFrames()), 1000.0, 2.0);
    ASSERT_GE(sink.arrivals.size(), 2u);
    EXPECT_EQ(sink.arrivals[1] - sink.arrivals[0], 1 * kUs);
}

TEST(Traffic, PacketsCarryMetadataAndValidFrames)
{
    EventQueue eq;
    CaptureSink sink(eq);
    TrafficGenerator::Config cfg;
    cfg.frame_bytes = 256;
    TrafficGenerator gen(eq, cfg, std::make_unique<ConstantRate>(10.0),
                         sink);
    gen.setPayloadFn([](Packet &p) { p.payload()[0] = 0x7e; });
    gen.start(100 * kUs);
    eq.run();
    ASSERT_GT(sink.packets.size(), 10u);
    std::uint64_t prev = 0;
    for (auto &p : sink.packets) {
        EXPECT_GT(p->id, prev);
        prev = p->id;
        EXPECT_TRUE(p->ip().checksumOk());
        EXPECT_EQ(p->payload()[0], 0x7e);
    }
}

TEST(Traffic, LognormalTruncatedMeansMatchPaper)
{
    // Fig. 8: web/cache/Hadoop average 1.6 / 5.2 / 10.9 Gbps. Our
    // truncated-at-line-rate processes must reproduce those averages
    // (the generator analytics, not a simulation run).
    const struct
    {
        TraceKind kind;
        double expect;
        double tol;
    } cases[] = {
        {TraceKind::Web, 1.6, 0.5},
        {TraceKind::Cache, 5.2, 1.5},
        {TraceKind::Hadoop, 10.9, 2.5},
    };
    for (const auto &c : cases) {
        auto proc = makeTrace(c.kind);
        EXPECT_NEAR(proc->meanGbps(), c.expect, c.tol)
            << traceName(c.kind);

        // Empirical mean over many samples agrees with the analytic.
        Rng rng(123);
        Accumulator acc;
        for (int i = 0; i < 200000; ++i)
            acc.sample(proc->sample(rng));
        EXPECT_NEAR(acc.mean(), proc->meanGbps(),
                    0.15 * proc->meanGbps() + 0.1)
            << traceName(c.kind);
    }
}

TEST(Traffic, RateResamplingProducesBursts)
{
    EventQueue eq;
    CaptureSink sink(eq);
    TrafficGenerator::Config cfg;
    cfg.resample_epoch = 100 * kUs;
    cfg.seed = 77;
    TrafficGenerator gen(eq, cfg, makeTrace(TraceKind::Hadoop), sink);
    gen.start(20 * kMs);
    eq.run();
    // Hadoop's sigma = 6.56 means epochs alternate between near-idle
    // and line rate; the offered-rate accumulator must show both.
    EXPECT_GT(gen.offeredRate().max(), 50.0);
    EXPECT_LT(gen.offeredRate().min(), 1.0);
}

TEST(Client, MeasuresLatencyAndBreakdown)
{
    EventQueue eq;
    Client client(eq);
    auto deliver = [&](Tick tx, Tick rx, Processor by) {
        eq.scheduleFn(
            [&client, tx, by] {
                auto pkt = testFrame(1500);
                pkt->clientTx = tx;
                pkt->processedBy = by;
                client.accept(std::move(pkt));
            },
            rx);
    };
    deliver(0, 10 * kUs, Processor::SnicCpu);
    deliver(5 * kUs, 25 * kUs, Processor::HostCpu);
    eq.run();
    EXPECT_EQ(client.responses(), 2u);
    EXPECT_EQ(client.responsesFrom(Processor::SnicCpu), 1u);
    EXPECT_EQ(client.responsesFrom(Processor::HostCpu), 1u);
    EXPECT_NEAR(client.meanUs(), 15.0, 0.5);
}
