/**
 * @file
 * halint rule engine tests: every rule gets crafted good/bad fixture
 * snippets with exact diagnostic IDs and line numbers asserted, plus
 * the suppression grammar and the lexer's comment/string stripping.
 * Paths are synthetic — lintSource scopes rules by path prefix, so
 * "src/x.cc" exercises the src/-only rules without touching disk.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "halint.hh"

using halint::analyzeSources;
using halint::Diagnostic;
using halint::lintSource;
using halint::SourceFile;

namespace {

std::vector<Diagnostic>
lint(const std::string &path, const std::string &src)
{
    return lintSource(path, src);
}

/** All diagnostics for one rule, as (line) list, for terse asserts. */
std::vector<int>
linesOf(const std::vector<Diagnostic> &diags, const std::string &rule)
{
    std::vector<int> out;
    for (const Diagnostic &d : diags)
        if (d.rule == rule)
            out.push_back(d.line);
    return out;
}

} // namespace

TEST(Halint, CleanSourceIsClean)
{
    const auto d = lint("src/sim/a.cc",
                        "#include <vector>\n"
                        "int add(int a, int b) { return a + b; }\n");
    EXPECT_TRUE(d.empty());
}

// ---- HAL-W001 ------------------------------------------------------

TEST(HalintW001, FlagsWallClockSources)
{
    const auto d = lint("src/sim/a.cc",
                        "void f() {\n"
                        "    auto t = std::time(nullptr);\n"
                        "    auto c = std::chrono::system_clock::now();\n"
                        "    gettimeofday(&tv, nullptr);\n"
                        "}\n");
    EXPECT_EQ(linesOf(d, halint::kRuleWallClock),
              (std::vector<int>{2, 3, 4}));
}

TEST(HalintW001, AppliesOutsideSrcToo)
{
    const auto d =
        lint("bench/b.cc", "long f() { return time(nullptr); }\n");
    EXPECT_EQ(linesOf(d, halint::kRuleWallClock),
              (std::vector<int>{1}));
}

TEST(HalintW001, MemberAndQualifiedCallsAreNotWallClock)
{
    const auto d = lint("src/sim/a.cc",
                        "void f(Meter &m) {\n"
                        "    m.time(3);\n"
                        "    m->clock(4);\n"
                        "    Meter::time(5);\n"
                        "}\n");
    EXPECT_TRUE(d.empty());
}

TEST(HalintW001, FlagsHostTimeHeaderInclude)
{
    const auto d = lint("src/net/a.cc",
                        "#include <ctime>\n#include <sys/time.h>\n");
    EXPECT_EQ(linesOf(d, halint::kRuleWallClock),
              (std::vector<int>{1, 2}));
}

// ---- HAL-W002 ------------------------------------------------------

TEST(HalintW002, FlagsStdlibRngInSrc)
{
    const auto d = lint("src/sim/a.cc",
                        "int f() {\n"
                        "    std::mt19937 gen{};\n"
                        "    std::srand(42);\n"
                        "    return std::rand();\n"
                        "}\n");
    EXPECT_EQ(linesOf(d, halint::kRuleRng),
              (std::vector<int>{2, 3, 4}));
}

TEST(HalintW002, FlagsRandomDeviceAndRandomHeader)
{
    const auto d = lint("src/net/a.cc",
                        "#include <random>\n"
                        "std::random_device rd;\n");
    EXPECT_EQ(linesOf(d, halint::kRuleRng), (std::vector<int>{1, 2}));
}

TEST(HalintW002, ScopedToSrcOnly)
{
    const auto d =
        lint("bench/b.cc", "int f() { return std::rand(); }\n");
    EXPECT_TRUE(linesOf(d, halint::kRuleRng).empty());
}

TEST(HalintW002, MemberNamedRandIsFine)
{
    const auto d =
        lint("src/sim/a.cc", "int f(Rng &r) { return r.rand(); }\n");
    EXPECT_TRUE(d.empty());
}

// ---- HAL-W003 ------------------------------------------------------

TEST(HalintW003, FlagsUnorderedContainersInSrc)
{
    const auto d = lint("src/core/a.cc",
                        "#include <unordered_map>\n"
                        "std::unordered_map<int, int> m;\n"
                        "std::unordered_set<int> s;\n");
    EXPECT_EQ(linesOf(d, halint::kRuleUnordered),
              (std::vector<int>{1, 2, 3}));
}

TEST(HalintW003, ScopedToSrcAndIgnoresComments)
{
    EXPECT_TRUE(lint("bench/b.cc", "std::unordered_map<int, int> m;\n")
                    .empty());
    EXPECT_TRUE(lint("src/a.cc", "// unlike unordered_map, FixedMap\n"
                                 "int x;\n")
                    .empty());
}

// ---- HAL-W004 ------------------------------------------------------

TEST(HalintW004, FlagsAllocationOnlyInsideAnnotatedFunction)
{
    const auto d = lint("src/sim/a.cc",
                        "void cold() { v.push_back(1); }\n"
                        "// halint: hotpath\n"
                        "void hot() {\n"
                        "    v.push_back(1);\n"
                        "    T *p = new T;\n"
                        "    q->reserve(8);\n"
                        "    auto u = std::make_unique<T>();\n"
                        "}\n"
                        "void cold2() { T *p = new T; }\n");
    EXPECT_EQ(linesOf(d, halint::kRuleHotpathAlloc),
              (std::vector<int>{4, 5, 6, 7}));
}

TEST(HalintW004, PlacementNewAndPopBackAreFine)
{
    const auto d = lint("src/sim/a.cc",
                        "// halint: hotpath\n"
                        "void hot() {\n"
                        "    ::new (storage) T(std::move(x));\n"
                        "    v.pop_back();\n"
                        "    buf.assign(n, 0);\n"
                        "}\n");
    EXPECT_TRUE(d.empty());
}

TEST(HalintW004, AnnotationWithoutBodyIsDiagnosed)
{
    const auto d = lint("src/sim/a.cc", "// halint: hotpath\n");
    EXPECT_EQ(linesOf(d, halint::kRuleDirective),
              (std::vector<int>{1}));
}

// ---- HAL-W005 ------------------------------------------------------

TEST(HalintW005, FlagsMutableLambdaAndStaticLocal)
{
    const auto d = lint("bench/b.cc",
                        "void f() {\n"
                        "    parallelFor(n, t, [&, k](std::size_t i)\n"
                        "        mutable { work(i, k); });\n"
                        "    runSweep(points, [](std::size_t i) {\n"
                        "        static int hits = 0;\n"
                        "        ++hits;\n"
                        "    });\n"
                        "}\n");
    EXPECT_EQ(linesOf(d, halint::kRuleParallelPurity),
              (std::vector<int>{3, 5}));
}

TEST(HalintW005, PureCallbackAndDefinitionAreFine)
{
    const auto d = lint("src/core/sweep.cc",
                        "void parallelFor(std::size_t n, unsigned t,\n"
                        "    const std::function<void(std::size_t)> &f);\n"
                        "void g() {\n"
                        "    parallelFor(n, t, [&](std::size_t i) {\n"
                        "        results[i] = run(points[i]);\n"
                        "    });\n"
                        "}\n"
                        "static int fileScopeStaticIsFine;\n");
    EXPECT_TRUE(d.empty());
}

// ---- HAL-W006 ------------------------------------------------------

TEST(HalintW006, MissingGuardFlaggedAtLineOne)
{
    const auto d = lint("src/net/a.hh", "int f();\n");
    EXPECT_EQ(linesOf(d, halint::kRuleHeaderHygiene),
              (std::vector<int>{1}));
}

TEST(HalintW006, GuardOrPragmaOnceAccepted)
{
    EXPECT_TRUE(lint("src/a.hh",
                     "#ifndef A_HH\n#define A_HH\nint f();\n#endif\n")
                    .empty());
    EXPECT_TRUE(lint("src/a.hh", "#pragma once\nint f();\n").empty());
}

TEST(HalintW006, UsingNamespaceInHeaderFlagged)
{
    const auto d = lint("src/a.hh",
                        "#pragma once\n"
                        "using namespace std;\n");
    EXPECT_EQ(linesOf(d, halint::kRuleHeaderHygiene),
              (std::vector<int>{2}));
    // Fine in a .cc, and `using x = y;` aliases are fine anywhere.
    EXPECT_TRUE(lint("src/a.cc", "using namespace std;\n").empty());
    EXPECT_TRUE(
        lint("src/a.hh", "#pragma once\nusing T = int;\n").empty());
}

// ---- HAL-W007 ------------------------------------------------------

TEST(HalintW007, ThreadPrimitiveInDesCoreFlagged)
{
    const auto d = lint("src/sim/engine.cc",
                        "void f() {\n"
                        "    std::mutex mu;\n"
                        "    std::atomic<int> n{0};\n"
                        "}\n");
    EXPECT_EQ(linesOf(d, halint::kRuleCrossWheel),
              (std::vector<int>{2, 3}));
}

TEST(HalintW007, MailboxBlockCoversPrimitives)
{
    const auto d = lint("src/sim/box.hh",
                        "#pragma once\n"
                        "// halint: mailbox SPSC ring, DESIGN.md §13\n"
                        "class Box {\n"
                        "    std::atomic<std::size_t> head_{0};\n"
                        "    std::atomic<std::size_t> tail_{0};\n"
                        "};\n"
                        "std::mutex outside;\n");
    EXPECT_EQ(linesOf(d, halint::kRuleCrossWheel),
              (std::vector<int>{7}));
}

TEST(HalintW007, OutsideDesCoreNotFlagged)
{
    EXPECT_TRUE(
        lint("src/core/pool.cc", "std::mutex mu;\n").empty());
    EXPECT_TRUE(lint("bench/b.cc", "std::thread t;\n").empty());
}

TEST(HalintW007, MailboxWithNoBlockIsMalformed)
{
    const auto d = lint("src/sim/a.cc",
                        "// halint: mailbox dangling\n"
                        "int x;\n");
    EXPECT_EQ(linesOf(d, halint::kRuleDirective),
              (std::vector<int>{1}));
}

TEST(HalintW007, AllowSuppresses)
{
    const auto d =
        lint("src/sim/pool.cc",
             "// halint: allow(HAL-W007) sweep pool, not the DES core\n"
             "std::thread worker;\n");
    EXPECT_TRUE(d.empty());
}

// ---- suppression grammar ------------------------------------------

TEST(HalintSuppress, TrailingAllowSuppressesSameLine)
{
    const auto d = lint(
        "src/a.cc",
        "int f() { return std::rand(); } "
        "// halint: allow(HAL-W002) seed study needs libc rand\n");
    EXPECT_TRUE(d.empty());
}

TEST(HalintSuppress, PrecedingLineAllowSuppressesNextLine)
{
    const auto d = lint("src/a.cc",
                        "// halint: allow(HAL-W002) calibration only\n"
                        "int f() { return std::rand(); }\n");
    EXPECT_TRUE(d.empty());
}

TEST(HalintSuppress, AllowListCoversMultipleRules)
{
    const auto d = lint(
        "src/a.cc",
        "// halint: allow(HAL-W001, HAL-W002) replaying a host trace\n"
        "long f() { return time(nullptr) ^ std::rand(); }\n");
    EXPECT_TRUE(d.empty());
}

TEST(HalintSuppress, WrongRuleDoesNotSuppress)
{
    const auto d = lint("src/a.cc",
                        "// halint: allow(HAL-W001) wrong rule id\n"
                        "int f() { return std::rand(); }\n");
    EXPECT_EQ(linesOf(d, halint::kRuleRng), (std::vector<int>{2}));
}

TEST(HalintSuppress, AllowDoesNotLeakPastNextLine)
{
    const auto d = lint("src/a.cc",
                        "// halint: allow(HAL-W002) only line 2\n"
                        "int f() { return 0; }\n"
                        "int g() { return std::rand(); }\n");
    EXPECT_EQ(linesOf(d, halint::kRuleRng), (std::vector<int>{3}));
}

TEST(HalintSuppress, ReasonIsMandatory)
{
    const auto d = lint("src/a.cc",
                        "// halint: allow(HAL-W002)\n"
                        "int f() { return std::rand(); }\n");
    EXPECT_EQ(linesOf(d, halint::kRuleDirective),
              (std::vector<int>{1}));
    // The reason-less allow() must not suppress either.
    EXPECT_EQ(linesOf(d, halint::kRuleRng), (std::vector<int>{2}));
}

TEST(HalintSuppress, MalformedDirectivesDiagnosed)
{
    EXPECT_EQ(linesOf(lint("src/a.cc", "// halint: allom(HAL-W002) x\n"),
                      halint::kRuleDirective),
              (std::vector<int>{1}));
    EXPECT_EQ(linesOf(lint("src/a.cc", "// halint: allow(HAL-W9) x\n"),
                      halint::kRuleDirective),
              (std::vector<int>{1}));
}

// ---- lexer hygiene -------------------------------------------------

TEST(HalintLexer, StringsCommentsAndRawStringsAreStripped)
{
    const auto d = lint(
        "src/a.cc",
        "const char *a = \"std::rand() time(nullptr)\";\n"
        "// std::rand() in a comment\n"
        "/* unordered_map<int,int> in a block comment */\n"
        "const char *b = R\"(srand(1); mt19937 g;)\";\n"
        "const char *c = \"escaped \\\" std::rand() quote\";\n");
    EXPECT_TRUE(d.empty());
}

TEST(HalintLexer, DigitSeparatorsAreNotCharLiterals)
{
    // If 1'000'000 were mis-lexed as a char literal the rand() call
    // would vanish into a phantom string.
    const auto d = lint("src/a.cc",
                        "int big = 1'000'000;\n"
                        "int f() { return std::rand(); }\n");
    EXPECT_EQ(linesOf(d, halint::kRuleRng), (std::vector<int>{2}));
}

TEST(HalintLexer, LineNumbersSurviveMultilineConstructs)
{
    const auto d = lint("src/a.cc",
                        "/* block\n"
                        "   comment\n"
                        "   spanning lines */\n"
                        "int f() { return std::rand(); }\n");
    EXPECT_EQ(linesOf(d, halint::kRuleRng), (std::vector<int>{4}));
}

// ---- HAL-W008: transitive hotpath allocation -----------------------

namespace {

/** All diagnostics for one rule in one file. */
std::vector<Diagnostic>
diagsOf(const std::vector<Diagnostic> &diags, const std::string &rule)
{
    std::vector<Diagnostic> out;
    for (const Diagnostic &d : diags)
        if (d.rule == rule)
            out.push_back(d);
    return out;
}

} // namespace

TEST(HalintW008, DepthThreeChainReportedWithWhyChain)
{
    const auto d = analyzeSources({
        {"src/sim/a.cc",
         "void leaf() { buf.push_back(1); }\n"
         "void mid() { leaf(); }\n"
         "void top() { mid(); }\n"
         "// halint: hotpath\n"
         "void drive() { top(); }\n"},
    });
    const auto w = diagsOf(d, halint::kRuleTransitiveAlloc);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0].line, 1);
    // The why-chain names every frame from the root to the allocator.
    EXPECT_NE(w[0].message.find("drive"), std::string::npos);
    EXPECT_NE(w[0].message.find("top"), std::string::npos);
    EXPECT_NE(w[0].message.find("mid"), std::string::npos);
    EXPECT_NE(w[0].message.find("leaf"), std::string::npos);
    EXPECT_NE(w[0].message.find("call chain"), std::string::npos);
}

TEST(HalintW008, ChainCrossesTranslationUnits)
{
    const auto d = analyzeSources({
        {"src/sim/hot.cc",
         "// halint: hotpath\n"
         "void drive() { helper(); }\n"},
        {"src/net/helper.cc", "void helper() { T *p = new T; }\n"},
    });
    const auto w = diagsOf(d, halint::kRuleTransitiveAlloc);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0].file, "src/net/helper.cc");
    EXPECT_EQ(w[0].line, 1);
    EXPECT_NE(w[0].message.find("src/sim/hot.cc"), std::string::npos);
}

TEST(HalintW008, RecursionTerminatesAndReportsOnce)
{
    const auto d = analyzeSources({
        {"src/sim/a.cc",
         "void ping() { pong(); }\n"
         "void pong() { v.push_back(1); ping(); }\n"
         "// halint: hotpath\n"
         "void drive() { ping(); }\n"},
    });
    const auto w = diagsOf(d, halint::kRuleTransitiveAlloc);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0].line, 2);
}

TEST(HalintW008, FunctionPointersDegradeGracefully)
{
    // Calls through a pointer produce no edge (documented limit):
    // the allocation behind fp() stays unreported, and nothing
    // crashes or misattributes.
    const auto d = analyzeSources({
        {"src/sim/a.cc",
         "void target() { v.push_back(1); }\n"
         "// halint: hotpath\n"
         "void drive(void (*fp)()) { fp(); }\n"},
    });
    EXPECT_TRUE(diagsOf(d, halint::kRuleTransitiveAlloc).empty());
}

TEST(HalintW008, RootOwnAllocationsStayW004)
{
    // Depth-0 allocations are the per-file W004 rule's; W008 only
    // adds the transitive ones, so one site never double-reports.
    const auto d = analyzeSources({
        {"src/sim/a.cc",
         "// halint: hotpath\n"
         "void drive() { v.push_back(1); }\n"},
    });
    EXPECT_EQ(diagsOf(d, halint::kRuleHotpathAlloc).size(), 1u);
    EXPECT_TRUE(diagsOf(d, halint::kRuleTransitiveAlloc).empty());
}

TEST(HalintW008, AllowAtAllocationSiteSuppresses)
{
    const auto d = analyzeSources({
        {"src/sim/a.cc",
         "// halint: allow(HAL-W008) warmup-only growth\n"
         "void leaf() { buf.push_back(1); }\n"
         "// halint: hotpath\n"
         "void drive() { leaf(); }\n"},
    });
    EXPECT_TRUE(diagsOf(d, halint::kRuleTransitiveAlloc).empty());
}

TEST(HalintW008, AllowW004AlsoCoversTransitivePass)
{
    // One justification per allocation site: a W004 allow() on a
    // shared helper also silences W008 chains that reach it.
    const auto d = analyzeSources({
        {"src/sim/a.cc",
         "// halint: allow(HAL-W004) bounded by capacity_\n"
         "void leaf() { buf.push_back(1); }\n"
         "// halint: hotpath\n"
         "void drive() { leaf(); }\n"},
    });
    EXPECT_TRUE(diagsOf(d, halint::kRuleTransitiveAlloc).empty());
}

TEST(HalintW008, HotpathCalleeOwnsItsSubtree)
{
    // A callee that is itself a hotpath root reports its own body
    // (W004) and subtree under its own shorter chain, so the outer
    // root does not descend into it.
    const auto d = analyzeSources({
        {"src/sim/a.cc",
         "// halint: hotpath\n"
         "void inner() { v.push_back(1); }\n"
         "// halint: hotpath\n"
         "void outer() { inner(); }\n"},
    });
    EXPECT_EQ(diagsOf(d, halint::kRuleHotpathAlloc).size(), 1u);
    EXPECT_TRUE(diagsOf(d, halint::kRuleTransitiveAlloc).empty());
}

// ---- HAL-W009: wheel-partition escape analysis ---------------------

namespace {

/** A band(snic) class with one mutable field, as one TU. */
const char *kSnicOwner =
    "#pragma once\n"
    "// halint: band(snic) eswitch depth model\n"
    "class Ring {\n"
    "  public:\n"
    "    int depth_ = 0;\n"
    "};\n";

} // namespace

TEST(HalintW009, BareCrossBandWriteFlagged)
{
    const auto d = analyzeSources({
        {"src/net/ring.hh", kSnicOwner},
        {"src/net/client.cc",
         "// halint: band(client) generator side\n"
         "class Gen {\n"
         "  public:\n"
         "    void poke(Ring *r) { r->depth_ = 3; }\n"
         "};\n"},
    });
    const auto w = diagsOf(d, halint::kRuleBandEscape);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0].file, "src/net/client.cc");
    EXPECT_EQ(w[0].line, 4);
    EXPECT_NE(w[0].message.find("write"), std::string::npos);
    EXPECT_NE(w[0].message.find("band(snic)"), std::string::npos);
    EXPECT_NE(w[0].message.find("band(client)"), std::string::npos);
}

TEST(HalintW009, CrossBandReadFlaggedAsRead)
{
    const auto d = analyzeSources({
        {"src/net/ring.hh", kSnicOwner},
        {"src/net/client.cc",
         "// halint: band(client) generator side\n"
         "class Gen {\n"
         "  public:\n"
         "    int peek(Ring *r) { return r->depth_; }\n"
         "};\n"},
    });
    const auto w = diagsOf(d, halint::kRuleBandEscape);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_NE(w[0].message.find("read of"), std::string::npos);
}

TEST(HalintW009, MailboxSectionExemptsAccess)
{
    const auto d = analyzeSources({
        {"src/net/ring.hh", kSnicOwner},
        {"src/net/client.cc",
         "// halint: band(client) generator side\n"
         "class Gen {\n"
         "  public:\n"
         "    // halint: mailbox drained at the window barrier\n"
         "    void poke(Ring *r) { r->depth_ = 3; }\n"
         "};\n"},
    });
    EXPECT_TRUE(diagsOf(d, halint::kRuleBandEscape).empty());
}

TEST(HalintW009, SameBandAndUnbandedAccessFine)
{
    const auto d = analyzeSources({
        {"src/net/ring.hh", kSnicOwner},
        {"src/net/snic.cc",
         "// halint: band(snic) same side\n"
         "class Pump {\n"
         "  public:\n"
         "    void poke(Ring *r) { r->depth_ = 3; }\n"
         "};\n"},
        // Unbanded code has no owner to attribute: out of scope.
        {"src/net/tools.cc",
         "void reset(Ring *r) { r->depth_ = 0; }\n"},
    });
    EXPECT_TRUE(diagsOf(d, halint::kRuleBandEscape).empty());
}

TEST(HalintW009, MethodCallsAreNotFieldEscapes)
{
    const auto d = analyzeSources({
        {"src/net/ring.hh",
         "#pragma once\n"
         "// halint: band(snic) eswitch depth model\n"
         "class Ring {\n"
         "  public:\n"
         "    int depth_ = 0;\n"
         "    int depth() const { return depth_; }\n"
         "};\n"},
        {"src/net/client.cc",
         "// halint: band(client) generator side\n"
         "class Gen {\n"
         "  public:\n"
         "    int peek(Ring *r) { return r->depth(); }\n"
         "};\n"},
    });
    EXPECT_TRUE(diagsOf(d, halint::kRuleBandEscape).empty());
}

TEST(HalintW009, UnknownBandNameIsMalformed)
{
    const auto d = lint("src/net/a.cc",
                        "// halint: band(gpu) no such wheel\n"
                        "class X {};\n");
    EXPECT_EQ(linesOf(d, halint::kRuleDirective),
              (std::vector<int>{1}));
}

// ---- HAL-W010: stats/results/schema drift --------------------------

namespace {

const char *kResultsCc =
    "namespace {\n"
    "struct Field { const char *name; int v; };\n"
    "constexpr Field kFields[] = {\n"
    "    {\"alpha\", 1},\n"
    "    {\"beta\", 2},\n"
    "};\n"
    "}\n";

std::string
schemaWith(const std::string &pointFields, const std::string &paths)
{
    return "{\n"
           "  \"results\": { \"point_fields\": {" + pointFields +
           "} },\n"
           "  \"stats\": { \"required_stat_paths\": [" + paths +
           "] }\n"
           "}\n";
}

} // namespace

TEST(HalintW010, KFieldEntryMissingFromSchemaFlagged)
{
    const auto d = analyzeSources({
        {"src/core/results.cc", kResultsCc},
        {"tools/bench_schema.json",
         schemaWith("\"alpha\": \"uint\"", "")},
    });
    const auto w = diagsOf(d, halint::kRuleSchemaDrift);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0].file, "src/core/results.cc");
    EXPECT_EQ(w[0].line, 5); // the {"beta", ...} entry
    EXPECT_NE(w[0].message.find("beta"), std::string::npos);
}

TEST(HalintW010, StaleSchemaFieldFlaggedAtSchemaLine)
{
    const auto d = analyzeSources({
        {"src/core/results.cc", kResultsCc},
        {"tools/bench_schema.json",
         schemaWith("\"alpha\": \"uint\",\n    \"beta\": \"uint\",\n"
                    "    \"gamma\": \"uint\"",
                    "")},
    });
    const auto w = diagsOf(d, halint::kRuleSchemaDrift);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0].file, "tools/bench_schema.json");
    EXPECT_NE(w[0].message.find("gamma"), std::string::npos);
    EXPECT_NE(w[0].message.find("stale"), std::string::npos);
}

TEST(HalintW010, RequiredPathResolvedByRegistrationLiteral)
{
    const auto d = analyzeSources({
        {"src/core/results.cc", kResultsCc},
        {"src/core/obs.cc",
         "void f(Reg *reg) {\n"
         "    reg->fnCounter(\"server.eq.past_clamps\", [] {\n"
         "        return 0; });\n"
         "}\n"},
        {"tools/bench_schema.json",
         schemaWith("\"alpha\": \"uint\",\n    \"beta\": \"uint\"",
                    "\"server.eq.past_clamps\"")},
    });
    EXPECT_TRUE(diagsOf(d, halint::kRuleSchemaDrift).empty());
}

TEST(HalintW010, UnregisteredRequiredPathFlagged)
{
    // The registration vocabulary is non-empty (one live counter),
    // so a schema path matching nothing is drift. With NO dotted
    // literals at all the pass stays conservative and silent —
    // that's the partial-lint case, not drift.
    const auto d = analyzeSources({
        {"src/core/results.cc", kResultsCc},
        {"src/core/obs.cc",
         "void f(Reg *reg) {\n"
         "    reg->counter(\"server.live.counter\");\n"
         "}\n"},
        {"tools/bench_schema.json",
         schemaWith("\"alpha\": \"uint\",\n    \"beta\": \"uint\"",
                    "\"server.live.counter\", "
                    "\"server.ghost.counter\"")},
    });
    const auto w = diagsOf(d, halint::kRuleSchemaDrift);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0].file, "tools/bench_schema.json");
    EXPECT_NE(w[0].message.find("server.ghost.counter"),
              std::string::npos);
}

TEST(HalintW010, DynamicPathsResolveViaPrefixAndSuffixJoin)
{
    // `"fleet.backend" + std::to_string(i) + ".served"` must cover
    // the schema's "fleet.backend0.served".
    const auto d = analyzeSources({
        {"src/core/results.cc", kResultsCc},
        {"src/fleet/obs.cc",
         "void f(Reg *reg, int i) {\n"
         "    reg->counter(\"fleet.backend\" + std::to_string(i) +\n"
         "                 \".served\");\n"
         "}\n"},
        {"tools/bench_schema.json",
         schemaWith("\"alpha\": \"uint\",\n    \"beta\": \"uint\"",
                    "\"fleet.backend0.served\"")},
    });
    EXPECT_TRUE(diagsOf(d, halint::kRuleSchemaDrift).empty());
}

TEST(HalintW010, UnparseableSchemaIsOneDiagnostic)
{
    const auto d = analyzeSources({
        {"src/core/results.cc", kResultsCc},
        {"tools/bench_schema.json", "{ not json ]"},
    });
    const auto w = diagsOf(d, halint::kRuleSchemaDrift);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_NE(w[0].message.find("not parseable"), std::string::npos);
}

// ---- baseline / ratchet --------------------------------------------

TEST(HalintBaseline, AbsorbsCountedFindingsExactly)
{
    halint::Baseline bl;
    std::string err;
    ASSERT_TRUE(halint::loadBaseline(
        "{\"suppressions\": [{\"rule\": \"HAL-W002\", \"file\": "
        "\"src/a.cc\", \"count\": 1, \"reason\": \"legacy\"}]}",
        bl, err))
        << err;
    std::vector<Diagnostic> diags{
        {"src/a.cc", 3, halint::kRuleRng, "m1"},
        {"src/a.cc", 9, halint::kRuleRng, "m2"},
    };
    const auto out =
        halint::applyBaseline(diags, bl, "tools/halint_baseline.json");
    // count=1 absorbs one finding; the second still fails the build.
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].rule, halint::kRuleRng);
}

TEST(HalintBaseline, StaleEntryRatchetsViaW000)
{
    halint::Baseline bl;
    std::string err;
    ASSERT_TRUE(halint::loadBaseline(
        "{\"suppressions\": [{\"rule\": \"HAL-W002\", \"file\": "
        "\"src/a.cc\", \"count\": 2, \"reason\": \"legacy\"}]}",
        bl, err));
    std::vector<Diagnostic> diags{
        {"src/a.cc", 3, halint::kRuleRng, "m1"},
    };
    const auto out =
        halint::applyBaseline(diags, bl, "tools/halint_baseline.json");
    // The one real finding is absorbed, but the over-counted entry
    // itself becomes a diagnostic: the baseline may only shrink.
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].rule, halint::kRuleDirective);
    EXPECT_EQ(out[0].file, "tools/halint_baseline.json");
    EXPECT_NE(out[0].message.find("stale"), std::string::npos);
}

TEST(HalintBaseline, RejectsReasonlessAndMalformedInput)
{
    halint::Baseline bl;
    std::string err;
    EXPECT_FALSE(halint::loadBaseline("not json", bl, err));
    EXPECT_FALSE(halint::loadBaseline(
        "{\"suppressions\": [{\"rule\": \"HAL-W002\", \"file\": "
        "\"src/a.cc\", \"count\": 1, \"reason\": \"\"}]}",
        bl, err));
    EXPECT_NE(err.find("reason"), std::string::npos);
    EXPECT_FALSE(halint::loadBaseline(
        "{\"suppressions\": [{\"rule\": \"HAL-W002\", \"file\": "
        "\"src/a.cc\", \"count\": 0, \"reason\": \"x\"}]}",
        bl, err));
}

// ---- output formats ------------------------------------------------

TEST(HalintOutput, TextJsonAndSarifCarryTheFinding)
{
    const std::vector<Diagnostic> diags{
        {"src/a.cc", 7, halint::kRuleRng, "msg with \"quotes\""},
    };
    const std::string text = halint::formatText(diags);
    EXPECT_NE(text.find("src/a.cc:7: HAL-W002:"), std::string::npos);

    const std::string json = halint::formatJson(diags);
    EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
    EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
    EXPECT_NE(json.find("\"count\": 1"), std::string::npos);

    const std::string sarif = halint::formatSarif(diags);
    EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"HAL-W002\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
    EXPECT_NE(sarif.find("\"name\": \"halint\""), std::string::npos);
}

TEST(HalintOutput, EmptyReportsAreWellFormed)
{
    EXPECT_EQ(halint::formatText({}), "");
    EXPECT_NE(halint::formatJson({}).find("\"count\": 0"),
              std::string::npos);
    EXPECT_NE(halint::formatSarif({}).find("\"results\": []"),
              std::string::npos);
}
