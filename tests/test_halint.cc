/**
 * @file
 * halint rule engine tests: every rule gets crafted good/bad fixture
 * snippets with exact diagnostic IDs and line numbers asserted, plus
 * the suppression grammar and the lexer's comment/string stripping.
 * Paths are synthetic — lintSource scopes rules by path prefix, so
 * "src/x.cc" exercises the src/-only rules without touching disk.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "halint.hh"

using halint::Diagnostic;
using halint::lintSource;

namespace {

std::vector<Diagnostic>
lint(const std::string &path, const std::string &src)
{
    return lintSource(path, src);
}

/** All diagnostics for one rule, as (line) list, for terse asserts. */
std::vector<int>
linesOf(const std::vector<Diagnostic> &diags, const std::string &rule)
{
    std::vector<int> out;
    for (const Diagnostic &d : diags)
        if (d.rule == rule)
            out.push_back(d.line);
    return out;
}

} // namespace

TEST(Halint, CleanSourceIsClean)
{
    const auto d = lint("src/sim/a.cc",
                        "#include <vector>\n"
                        "int add(int a, int b) { return a + b; }\n");
    EXPECT_TRUE(d.empty());
}

// ---- HAL-W001 ------------------------------------------------------

TEST(HalintW001, FlagsWallClockSources)
{
    const auto d = lint("src/sim/a.cc",
                        "void f() {\n"
                        "    auto t = std::time(nullptr);\n"
                        "    auto c = std::chrono::system_clock::now();\n"
                        "    gettimeofday(&tv, nullptr);\n"
                        "}\n");
    EXPECT_EQ(linesOf(d, halint::kRuleWallClock),
              (std::vector<int>{2, 3, 4}));
}

TEST(HalintW001, AppliesOutsideSrcToo)
{
    const auto d =
        lint("bench/b.cc", "long f() { return time(nullptr); }\n");
    EXPECT_EQ(linesOf(d, halint::kRuleWallClock),
              (std::vector<int>{1}));
}

TEST(HalintW001, MemberAndQualifiedCallsAreNotWallClock)
{
    const auto d = lint("src/sim/a.cc",
                        "void f(Meter &m) {\n"
                        "    m.time(3);\n"
                        "    m->clock(4);\n"
                        "    Meter::time(5);\n"
                        "}\n");
    EXPECT_TRUE(d.empty());
}

TEST(HalintW001, FlagsHostTimeHeaderInclude)
{
    const auto d = lint("src/net/a.cc",
                        "#include <ctime>\n#include <sys/time.h>\n");
    EXPECT_EQ(linesOf(d, halint::kRuleWallClock),
              (std::vector<int>{1, 2}));
}

// ---- HAL-W002 ------------------------------------------------------

TEST(HalintW002, FlagsStdlibRngInSrc)
{
    const auto d = lint("src/sim/a.cc",
                        "int f() {\n"
                        "    std::mt19937 gen{};\n"
                        "    std::srand(42);\n"
                        "    return std::rand();\n"
                        "}\n");
    EXPECT_EQ(linesOf(d, halint::kRuleRng),
              (std::vector<int>{2, 3, 4}));
}

TEST(HalintW002, FlagsRandomDeviceAndRandomHeader)
{
    const auto d = lint("src/net/a.cc",
                        "#include <random>\n"
                        "std::random_device rd;\n");
    EXPECT_EQ(linesOf(d, halint::kRuleRng), (std::vector<int>{1, 2}));
}

TEST(HalintW002, ScopedToSrcOnly)
{
    const auto d =
        lint("bench/b.cc", "int f() { return std::rand(); }\n");
    EXPECT_TRUE(linesOf(d, halint::kRuleRng).empty());
}

TEST(HalintW002, MemberNamedRandIsFine)
{
    const auto d =
        lint("src/sim/a.cc", "int f(Rng &r) { return r.rand(); }\n");
    EXPECT_TRUE(d.empty());
}

// ---- HAL-W003 ------------------------------------------------------

TEST(HalintW003, FlagsUnorderedContainersInSrc)
{
    const auto d = lint("src/core/a.cc",
                        "#include <unordered_map>\n"
                        "std::unordered_map<int, int> m;\n"
                        "std::unordered_set<int> s;\n");
    EXPECT_EQ(linesOf(d, halint::kRuleUnordered),
              (std::vector<int>{1, 2, 3}));
}

TEST(HalintW003, ScopedToSrcAndIgnoresComments)
{
    EXPECT_TRUE(lint("bench/b.cc", "std::unordered_map<int, int> m;\n")
                    .empty());
    EXPECT_TRUE(lint("src/a.cc", "// unlike unordered_map, FixedMap\n"
                                 "int x;\n")
                    .empty());
}

// ---- HAL-W004 ------------------------------------------------------

TEST(HalintW004, FlagsAllocationOnlyInsideAnnotatedFunction)
{
    const auto d = lint("src/sim/a.cc",
                        "void cold() { v.push_back(1); }\n"
                        "// halint: hotpath\n"
                        "void hot() {\n"
                        "    v.push_back(1);\n"
                        "    T *p = new T;\n"
                        "    q->reserve(8);\n"
                        "    auto u = std::make_unique<T>();\n"
                        "}\n"
                        "void cold2() { T *p = new T; }\n");
    EXPECT_EQ(linesOf(d, halint::kRuleHotpathAlloc),
              (std::vector<int>{4, 5, 6, 7}));
}

TEST(HalintW004, PlacementNewAndPopBackAreFine)
{
    const auto d = lint("src/sim/a.cc",
                        "// halint: hotpath\n"
                        "void hot() {\n"
                        "    ::new (storage) T(std::move(x));\n"
                        "    v.pop_back();\n"
                        "    buf.assign(n, 0);\n"
                        "}\n");
    EXPECT_TRUE(d.empty());
}

TEST(HalintW004, AnnotationWithoutBodyIsDiagnosed)
{
    const auto d = lint("src/sim/a.cc", "// halint: hotpath\n");
    EXPECT_EQ(linesOf(d, halint::kRuleDirective),
              (std::vector<int>{1}));
}

// ---- HAL-W005 ------------------------------------------------------

TEST(HalintW005, FlagsMutableLambdaAndStaticLocal)
{
    const auto d = lint("bench/b.cc",
                        "void f() {\n"
                        "    parallelFor(n, t, [&, k](std::size_t i)\n"
                        "        mutable { work(i, k); });\n"
                        "    runSweep(points, [](std::size_t i) {\n"
                        "        static int hits = 0;\n"
                        "        ++hits;\n"
                        "    });\n"
                        "}\n");
    EXPECT_EQ(linesOf(d, halint::kRuleParallelPurity),
              (std::vector<int>{3, 5}));
}

TEST(HalintW005, PureCallbackAndDefinitionAreFine)
{
    const auto d = lint("src/core/sweep.cc",
                        "void parallelFor(std::size_t n, unsigned t,\n"
                        "    const std::function<void(std::size_t)> &f);\n"
                        "void g() {\n"
                        "    parallelFor(n, t, [&](std::size_t i) {\n"
                        "        results[i] = run(points[i]);\n"
                        "    });\n"
                        "}\n"
                        "static int fileScopeStaticIsFine;\n");
    EXPECT_TRUE(d.empty());
}

// ---- HAL-W006 ------------------------------------------------------

TEST(HalintW006, MissingGuardFlaggedAtLineOne)
{
    const auto d = lint("src/net/a.hh", "int f();\n");
    EXPECT_EQ(linesOf(d, halint::kRuleHeaderHygiene),
              (std::vector<int>{1}));
}

TEST(HalintW006, GuardOrPragmaOnceAccepted)
{
    EXPECT_TRUE(lint("src/a.hh",
                     "#ifndef A_HH\n#define A_HH\nint f();\n#endif\n")
                    .empty());
    EXPECT_TRUE(lint("src/a.hh", "#pragma once\nint f();\n").empty());
}

TEST(HalintW006, UsingNamespaceInHeaderFlagged)
{
    const auto d = lint("src/a.hh",
                        "#pragma once\n"
                        "using namespace std;\n");
    EXPECT_EQ(linesOf(d, halint::kRuleHeaderHygiene),
              (std::vector<int>{2}));
    // Fine in a .cc, and `using x = y;` aliases are fine anywhere.
    EXPECT_TRUE(lint("src/a.cc", "using namespace std;\n").empty());
    EXPECT_TRUE(
        lint("src/a.hh", "#pragma once\nusing T = int;\n").empty());
}

// ---- HAL-W007 ------------------------------------------------------

TEST(HalintW007, ThreadPrimitiveInDesCoreFlagged)
{
    const auto d = lint("src/sim/engine.cc",
                        "void f() {\n"
                        "    std::mutex mu;\n"
                        "    std::atomic<int> n{0};\n"
                        "}\n");
    EXPECT_EQ(linesOf(d, halint::kRuleCrossWheel),
              (std::vector<int>{2, 3}));
}

TEST(HalintW007, MailboxBlockCoversPrimitives)
{
    const auto d = lint("src/sim/box.hh",
                        "#pragma once\n"
                        "// halint: mailbox SPSC ring, DESIGN.md §13\n"
                        "class Box {\n"
                        "    std::atomic<std::size_t> head_{0};\n"
                        "    std::atomic<std::size_t> tail_{0};\n"
                        "};\n"
                        "std::mutex outside;\n");
    EXPECT_EQ(linesOf(d, halint::kRuleCrossWheel),
              (std::vector<int>{7}));
}

TEST(HalintW007, OutsideDesCoreNotFlagged)
{
    EXPECT_TRUE(
        lint("src/core/pool.cc", "std::mutex mu;\n").empty());
    EXPECT_TRUE(lint("bench/b.cc", "std::thread t;\n").empty());
}

TEST(HalintW007, MailboxWithNoBlockIsMalformed)
{
    const auto d = lint("src/sim/a.cc",
                        "// halint: mailbox dangling\n"
                        "int x;\n");
    EXPECT_EQ(linesOf(d, halint::kRuleDirective),
              (std::vector<int>{1}));
}

TEST(HalintW007, AllowSuppresses)
{
    const auto d =
        lint("src/sim/pool.cc",
             "// halint: allow(HAL-W007) sweep pool, not the DES core\n"
             "std::thread worker;\n");
    EXPECT_TRUE(d.empty());
}

// ---- suppression grammar ------------------------------------------

TEST(HalintSuppress, TrailingAllowSuppressesSameLine)
{
    const auto d = lint(
        "src/a.cc",
        "int f() { return std::rand(); } "
        "// halint: allow(HAL-W002) seed study needs libc rand\n");
    EXPECT_TRUE(d.empty());
}

TEST(HalintSuppress, PrecedingLineAllowSuppressesNextLine)
{
    const auto d = lint("src/a.cc",
                        "// halint: allow(HAL-W002) calibration only\n"
                        "int f() { return std::rand(); }\n");
    EXPECT_TRUE(d.empty());
}

TEST(HalintSuppress, AllowListCoversMultipleRules)
{
    const auto d = lint(
        "src/a.cc",
        "// halint: allow(HAL-W001, HAL-W002) replaying a host trace\n"
        "long f() { return time(nullptr) ^ std::rand(); }\n");
    EXPECT_TRUE(d.empty());
}

TEST(HalintSuppress, WrongRuleDoesNotSuppress)
{
    const auto d = lint("src/a.cc",
                        "// halint: allow(HAL-W001) wrong rule id\n"
                        "int f() { return std::rand(); }\n");
    EXPECT_EQ(linesOf(d, halint::kRuleRng), (std::vector<int>{2}));
}

TEST(HalintSuppress, AllowDoesNotLeakPastNextLine)
{
    const auto d = lint("src/a.cc",
                        "// halint: allow(HAL-W002) only line 2\n"
                        "int f() { return 0; }\n"
                        "int g() { return std::rand(); }\n");
    EXPECT_EQ(linesOf(d, halint::kRuleRng), (std::vector<int>{3}));
}

TEST(HalintSuppress, ReasonIsMandatory)
{
    const auto d = lint("src/a.cc",
                        "// halint: allow(HAL-W002)\n"
                        "int f() { return std::rand(); }\n");
    EXPECT_EQ(linesOf(d, halint::kRuleDirective),
              (std::vector<int>{1}));
    // The reason-less allow() must not suppress either.
    EXPECT_EQ(linesOf(d, halint::kRuleRng), (std::vector<int>{2}));
}

TEST(HalintSuppress, MalformedDirectivesDiagnosed)
{
    EXPECT_EQ(linesOf(lint("src/a.cc", "// halint: allom(HAL-W002) x\n"),
                      halint::kRuleDirective),
              (std::vector<int>{1}));
    EXPECT_EQ(linesOf(lint("src/a.cc", "// halint: allow(HAL-W9) x\n"),
                      halint::kRuleDirective),
              (std::vector<int>{1}));
}

// ---- lexer hygiene -------------------------------------------------

TEST(HalintLexer, StringsCommentsAndRawStringsAreStripped)
{
    const auto d = lint(
        "src/a.cc",
        "const char *a = \"std::rand() time(nullptr)\";\n"
        "// std::rand() in a comment\n"
        "/* unordered_map<int,int> in a block comment */\n"
        "const char *b = R\"(srand(1); mt19937 g;)\";\n"
        "const char *c = \"escaped \\\" std::rand() quote\";\n");
    EXPECT_TRUE(d.empty());
}

TEST(HalintLexer, DigitSeparatorsAreNotCharLiterals)
{
    // If 1'000'000 were mis-lexed as a char literal the rand() call
    // would vanish into a phantom string.
    const auto d = lint("src/a.cc",
                        "int big = 1'000'000;\n"
                        "int f() { return std::rand(); }\n");
    EXPECT_EQ(linesOf(d, halint::kRuleRng), (std::vector<int>{2}));
}

TEST(HalintLexer, LineNumbersSurviveMultilineConstructs)
{
    const auto d = lint("src/a.cc",
                        "/* block\n"
                        "   comment\n"
                        "   spanning lines */\n"
                        "int f() { return std::rand(); }\n");
    EXPECT_EQ(linesOf(d, halint::kRuleRng), (std::vector<int>{4}));
}
