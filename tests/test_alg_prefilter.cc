/**
 * @file
 * PrefilterMatcher: cross-engine equivalence with AhoCorasick on the
 * REM rulesets and random inputs, prefilter selectivity, and edge
 * cases.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "alg/aho_corasick.hh"
#include "alg/corpus.hh"
#include "alg/prefilter.hh"
#include "sim/rng.hh"

using namespace halsim;
using namespace halsim::alg;

namespace {

std::vector<std::uint8_t>
bytesOf(const std::string &s)
{
    return {s.begin(), s.end()};
}

void
sortMatches(std::vector<Match> &m)
{
    std::sort(m.begin(), m.end(), [](const Match &a, const Match &b) {
        return a.end != b.end ? a.end < b.end : a.pattern < b.pattern;
    });
}

} // namespace

TEST(Prefilter, RejectsShortPatterns)
{
    EXPECT_THROW(PrefilterMatcher({"abc"}), std::invalid_argument);
}

TEST(Prefilter, BasicMatch)
{
    PrefilterMatcher pf({"needle"});
    EXPECT_EQ(pf.countMatches(bytesOf("hayneedlehay")), 1u);
    EXPECT_EQ(pf.countMatches(bytesOf("no match here!")), 0u);
    EXPECT_EQ(pf.countMatches(bytesOf("nee")), 0u)
        << "text shorter than the window";
}

TEST(Prefilter, OverlappingAndRepeated)
{
    PrefilterMatcher pf({"abab"});
    EXPECT_EQ(pf.countMatches(bytesOf("abababab")), 3u);
}

TEST(Prefilter, AgreesWithAhoCorasickOnRulesets)
{
    for (auto kind :
         {RulesetKind::Teakettle, RulesetKind::SnortLiterals}) {
        const auto rules = makeRuleset(kind, 400, 31);
        AhoCorasick ac(rules);
        PrefilterMatcher pf(rules);
        const auto text = makeScanStream(100000, rules, 0.2, 32);
        EXPECT_EQ(pf.countMatches(text), ac.countMatches(text))
            << rulesetName(kind);
    }
}

TEST(Prefilter, FindAllAgreesWithAhoCorasick)
{
    const auto rules = makeRuleset(RulesetKind::Teakettle, 100, 33);
    AhoCorasick ac(rules);
    PrefilterMatcher pf(rules);
    const auto text = makeScanStream(20000, rules, 0.3, 34);
    auto a = ac.findAll(text);
    auto b = pf.findAll(text);
    sortMatches(a);
    sortMatches(b);
    EXPECT_EQ(a, b);
}

TEST(Prefilter, RandomizedSmallAlphabetAgreement)
{
    // Dense overlaps stress the verify stage.
    Rng rng(35);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<std::string> patterns;
        for (int i = 0; i < 6; ++i) {
            std::string p;
            const std::size_t len = 4 + rng.uniformInt(4);
            for (std::size_t j = 0; j < len; ++j)
                p.push_back(static_cast<char>('a' + rng.uniformInt(2)));
            patterns.push_back(std::move(p));
        }
        std::vector<std::uint8_t> text(2000);
        for (auto &c : text)
            c = static_cast<std::uint8_t>('a' + rng.uniformInt(2));
        AhoCorasick ac(patterns);
        PrefilterMatcher pf(patterns);
        EXPECT_EQ(pf.countMatches(text), ac.countMatches(text))
            << "trial " << trial;
    }
}

TEST(Prefilter, SelectiveOnCleanText)
{
    // Snort-style literals cluster on a few protocol prefixes
    // ("cmd=", "../" ...), so their bucket count is tiny but the
    // prefilter is still selective on clean traffic.
    const auto rules = makeRuleset(RulesetKind::SnortLiterals, 500, 36);
    PrefilterMatcher pf(rules);
    const auto clean = makeScanStream(100000, rules, 0.0, 37);
    EXPECT_EQ(pf.countMatches(clean), 0u);
    // The whole point of the prefilter: almost every position skips.
    EXPECT_LT(pf.lastHitRate(), 0.05);
}

TEST(Prefilter, TeakettleRulesSpreadAcrossBuckets)
{
    // Teakettle-style short words have diverse prefixes: the hash
    // table must spread them widely.
    const auto rules = makeRuleset(RulesetKind::Teakettle, 1000, 38);
    PrefilterMatcher pf(rules);
    EXPECT_GT(pf.populatedBuckets(), 300u);
}

TEST(Prefilter, BinarySafe)
{
    PrefilterMatcher pf({std::string("\x00\x01\x02\x03", 4)});
    std::vector<std::uint8_t> text = {0xff, 0x00, 0x01, 0x02,
                                      0x03, 0x00, 0x01};
    EXPECT_EQ(pf.countMatches(text), 1u);
}
