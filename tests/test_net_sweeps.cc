/**
 * @file
 * Parameterized property sweeps over the network substrate: link
 * timing across rates and frame sizes, generator rate accuracy, and
 * histogram quantile accuracy across bin densities.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.hh"
#include "core/sweep.hh"
#include "net/link.hh"
#include "net/traffic.hh"
#include "sim/stats.hh"

using namespace halsim;
using namespace halsim::net;

namespace {

struct CountSink : PacketSink
{
    explicit CountSink(EventQueue &eq) : eq(eq) {}

    void
    accept(PacketPtr pkt) override
    {
        ++frames;
        bytes += pkt->size();
        last_arrival = eq.now();
    }

    EventQueue &eq;
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
    Tick last_arrival = 0;
};

} // namespace

/** Link serialization must equal bytes/rate for any (rate, size). */
class LinkTimingSweep
    : public ::testing::TestWithParam<std::tuple<double, int>>
{
};

TEST_P(LinkTimingSweep, SerializationExact)
{
    const auto [rate, size] = GetParam();
    EventQueue eq;
    CountSink sink(eq);
    Link link(eq, {.rate_gbps = rate, .propagation = 0, .max_queue = 64,
                   .name = "t"},
              sink);
    link.send(makeUdpPacket(MacAddr::fromUint(1), MacAddr::fromUint(2),
                            Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                            1, 2, {}, static_cast<std::size_t>(size)));
    eq.run();
    ASSERT_EQ(sink.frames, 1u);
    EXPECT_EQ(sink.last_arrival,
              transferTicks(static_cast<std::uint64_t>(size), rate));
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndSizes, LinkTimingSweep,
    ::testing::Combine(::testing::Values(1.0, 10.0, 25.0, 100.0, 200.0),
                       ::testing::Values(64, 256, 1500)));

/** The generator must hit its configured rate within 1%. */
class GeneratorRateSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(GeneratorRateSweep, OfferedRateAccurate)
{
    const double rate = GetParam();
    EventQueue eq;
    CountSink sink(eq);
    TrafficGenerator::Config cfg;
    TrafficGenerator gen(eq, cfg, std::make_unique<ConstantRate>(rate),
                         sink);
    const Tick dur = 20 * kMs;
    gen.start(dur);
    eq.run();
    EXPECT_NEAR(gbps(sink.bytes, dur), rate, rate * 0.01 + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Rates, GeneratorRateSweep,
                         ::testing::Values(0.5, 2.0, 10.0, 41.0, 99.0));

/** Quantile error must shrink with bin density. */
class HistogramDensitySweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HistogramDensitySweep, P99WithinBinResolution)
{
    const unsigned bins = GetParam();
    Histogram h(1.0, 1e9, bins);
    Rng rng(bins);
    std::vector<double> all;
    for (int i = 0; i < 20000; ++i) {
        const double v = std::exp(rng.normal(8.0, 2.0));
        h.sample(v);
        all.push_back(v);
    }
    std::sort(all.begin(), all.end());
    const double exact = all[static_cast<std::size_t>(0.99 * 19999)];
    // One bin spans a factor of 10^(1/bins); allow two bins of error.
    const double tolerance = std::pow(10.0, 2.0 / bins);
    EXPECT_LT(h.p99() / exact, tolerance);
    EXPECT_GT(h.p99() / exact, 1.0 / tolerance);
}

INSTANTIATE_TEST_SUITE_P(Densities, HistogramDensitySweep,
                         ::testing::Values(16u, 32u, 64u, 128u));

/** Trace processes never exceed the line rate after truncation. */
class TraceCapSweep : public ::testing::TestWithParam<TraceKind>
{
};

TEST_P(TraceCapSweep, SamplesRespectLineRate)
{
    auto proc = makeTrace(GetParam(), 100.0);
    Rng rng(5);
    for (int i = 0; i < 50000; ++i) {
        const double r = proc->sample(rng);
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, 100.0);
    }
}

INSTANTIATE_TEST_SUITE_P(AllTraces, TraceCapSweep,
                         ::testing::Values(TraceKind::Web,
                                           TraceKind::Cache,
                                           TraceKind::Hadoop));

/**
 * The parallel sweep harness must return per-point results in input
 * order regardless of worker count, and each result must match its
 * point (delivered tracks the offered rate at these easy loads).
 */
class HarnessThreadSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HarnessThreadSweep, ResultsInInputOrder)
{
    const unsigned threads = GetParam();
    const double rates[] = {2.0, 5.0, 10.0, 15.0};
    std::vector<core::SweepPoint> points;
    for (double r : rates) {
        core::SweepPoint p;
        p.cfg.mode = core::Mode::SnicOnly;
        p.rate_gbps = r;
        p.warmup = 2 * kMs;
        p.measure = 10 * kMs;
        points.push_back(std::move(p));
    }
    core::SweepOptions opts;
    opts.threads = threads;
    const auto results = core::runSweep(points, opts);
    ASSERT_EQ(results.size(), points.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_NEAR(results[i].offered_gbps, rates[i],
                    rates[i] * 0.02 + 0.05);
        EXPECT_NEAR(results[i].delivered_gbps, rates[i],
                    rates[i] * 0.05 + 0.1);
    }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, HarnessThreadSweep,
                         ::testing::Values(1u, 2u, 4u));

// ---- parseThreadsValue / parseSweepArgs ---------------------------

TEST(ParseThreads, AcceptsPositiveCountsAndAll)
{
    std::string err;
    EXPECT_EQ(core::parseThreadsValue("1", &err), 1u);
    EXPECT_EQ(core::parseThreadsValue("8", &err), 8u);
    EXPECT_EQ(core::parseThreadsValue("4096", &err), 4096u);
    // "all" maps to the SweepOptions 0 sentinel (all hardware threads).
    EXPECT_EQ(core::parseThreadsValue("all", &err), 0u);
}

TEST(ParseThreads, RejectsMalformedValues)
{
    for (const char *bad : {"", "-3", "-0", "0", "abc", "4x", "x4",
                            "2.5", "8 ", "0x8", "99999999"}) {
        std::string err;
        EXPECT_EQ(core::parseThreadsValue(bad, &err), std::nullopt)
            << "'" << bad << "' should be rejected";
        EXPECT_FALSE(err.empty()) << "'" << bad
                                  << "' should explain the rejection";
    }
}

TEST(ParseThreads, ZeroPointsAtAllSpelling)
{
    std::string err;
    EXPECT_EQ(core::parseThreadsValue("0", &err), std::nullopt);
    EXPECT_NE(err.find("all"), std::string::npos)
        << "error should mention the 'all' spelling: " << err;
}

TEST(ParseSweepArgsDeathTest, MalformedThreadsExitsWithDiagnostic)
{
    const char *cases[][2] = {{"--threads", "-3"},
                              {"--threads", "0"},
                              {"--threads", "fast"}};
    for (const auto &c : cases) {
        char prog[] = "bench";
        char flag[16], val[16];
        std::snprintf(flag, sizeof(flag), "%s", c[0]);
        std::snprintf(val, sizeof(val), "%s", c[1]);
        char *argv[] = {prog, flag, val, nullptr};
        EXPECT_EXIT(core::parseSweepArgs(3, argv, "bench"),
                    ::testing::ExitedWithCode(2), "--threads")
            << "value '" << c[1] << "'";
    }
}

TEST(ParseSweepArgsDeathTest, UnknownFlagPrintsUsage)
{
    char prog[] = "bench";
    char flag[] = "--frobnicate";
    char *argv[] = {prog, flag, nullptr};
    EXPECT_EXIT(core::parseSweepArgs(2, argv, "bench"),
                ::testing::ExitedWithCode(2), "usage");
}

TEST(ParseSweepArgs, WellFormedFlagsParse)
{
    char prog[] = "bench";
    char t[] = "--threads";
    char tv[] = "3";
    char j[] = "--json";
    char jv[] = "/tmp/out.json";
    char *argv[] = {prog, t, tv, j, jv, nullptr};
    const core::SweepOptions opts =
        core::parseSweepArgs(5, argv, "bench_x");
    EXPECT_EQ(opts.threads, 3u);
    EXPECT_EQ(opts.json_path, "/tmp/out.json");
    EXPECT_EQ(opts.bench_name, "bench_x");
}

TEST(ParseSweepArgs, ThreadsAllMeansAllHardwareThreads)
{
    char prog[] = "bench";
    char t[] = "--threads";
    char tv[] = "all";
    char *argv[] = {prog, t, tv, nullptr};
    const core::SweepOptions opts =
        core::parseSweepArgs(3, argv, "bench_x");
    EXPECT_EQ(opts.threads, 0u); // runSweep resolves 0 to all cores
}
