/**
 * @file
 * zlib/gzip framing: checksum vectors (Adler-32, CRC-32 against
 * published values), container round trips, header validation, and
 * corruption detection.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "alg/corpus.hh"
#include "alg/zstream.hh"

using namespace halsim::alg;

namespace {

std::vector<std::uint8_t>
bytesOf(const std::string &s)
{
    return {s.begin(), s.end()};
}

} // namespace

TEST(Adler32, PublishedVectors)
{
    // "Wikipedia" is the classic worked example: 0x11E60398.
    EXPECT_EQ(adler32(bytesOf("Wikipedia")), 0x11E60398u);
    EXPECT_EQ(adler32({}), 1u) << "empty input keeps the seed";
    EXPECT_EQ(adler32(bytesOf("a")), 0x00620062u);
}

TEST(Adler32, DeferredModuloMatchesNaive)
{
    // Large input exercises the NMAX chunking; compare with a naive
    // per-byte implementation.
    const auto data = makeSilesiaLike(100000, 4);
    std::uint32_t a = 1, b = 0;
    for (std::uint8_t byte : data) {
        a = (a + byte) % 65521;
        b = (b + a) % 65521;
    }
    EXPECT_EQ(adler32(data), (b << 16) | a);
}

TEST(Crc32, PublishedVectors)
{
    // The canonical check value for the IEEE polynomial.
    EXPECT_EQ(crc32(bytesOf("123456789")), 0xCBF43926u);
    EXPECT_EQ(crc32({}), 0u);
    EXPECT_EQ(crc32(bytesOf("The quick brown fox jumps over the lazy "
                            "dog")),
              0x414FA339u);
}

TEST(Crc32, Incremental)
{
    const auto whole = bytesOf("hello world");
    const auto first = bytesOf("hello ");
    const auto second = bytesOf("world");
    EXPECT_EQ(crc32(second, crc32(first)), crc32(whole));
}

TEST(Zlib, RoundTrip)
{
    const auto data = makeSilesiaLike(50000, 7);
    const auto z = zlibCompress(data);
    EXPECT_LT(z.size(), data.size());
    EXPECT_EQ(zlibDecompress(z), data);
}

TEST(Zlib, HeaderIsStandard)
{
    const auto z = zlibCompress(bytesOf("abc"));
    EXPECT_EQ(z[0], 0x78) << "CM=8, 32 KiB window";
    EXPECT_EQ(((static_cast<std::uint32_t>(z[0]) << 8) | z[1]) % 31, 0u)
        << "FCHECK";
}

TEST(Zlib, DetectsCorruption)
{
    auto z = zlibCompress(makeSilesiaLike(5000, 8));
    z[z.size() - 1] ^= 0x01;   // trailer
    EXPECT_THROW(zlibDecompress(z), std::runtime_error);

    auto z2 = zlibCompress(bytesOf("payload"));
    z2[0] = 0x79;   // bad CM/CINFO -> header check fails
    EXPECT_THROW(zlibDecompress(z2), std::runtime_error);
}

TEST(Gzip, RoundTrip)
{
    const auto data = makeSilesiaLike(80000, 9);
    const auto g = gzipCompress(data);
    EXPECT_EQ(g[0], 0x1f);
    EXPECT_EQ(g[1], 0x8b);
    EXPECT_EQ(gzipDecompress(g), data);
}

TEST(Gzip, EmptyInput)
{
    const auto g = gzipCompress({});
    EXPECT_EQ(gzipDecompress(g), std::vector<std::uint8_t>{});
}

TEST(Gzip, DetectsCrcMismatch)
{
    auto g = gzipCompress(makeSilesiaLike(3000, 10));
    g[g.size() - 5] ^= 0x80;   // flip a CRC bit
    EXPECT_THROW(gzipDecompress(g), std::runtime_error);
}

TEST(Gzip, DetectsSizeMismatch)
{
    auto g = gzipCompress(bytesOf("twelve bytes"));
    g[g.size() - 1] ^= 0x01;   // ISIZE high byte
    EXPECT_THROW(gzipDecompress(g), std::runtime_error);
}

TEST(Gzip, RejectsForeignMagic)
{
    EXPECT_THROW(gzipDecompress(bytesOf("PK\x03\x04 not a gzip file....")),
                 std::runtime_error);
}
