/**
 * @file
 * The simulator's loss paths in isolation: link tail-drop accounting
 * and fault impairments, DPDK ring overflow and disabled-queue
 * behaviour, eSwitch port blackholing, and the traffic merger's
 * pass-through of non-host frames.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/hlb.hh"
#include "net/link.hh"
#include "nic/dpdk_ring.hh"
#include "nic/eswitch.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace halsim;
using namespace halsim::core;

namespace {

const net::Ipv4Addr kClientIp(10, 0, 0, 1);
const net::Ipv4Addr kSnicIp(10, 0, 0, 2);
const net::Ipv4Addr kHostIp(10, 0, 0, 3);
const net::MacAddr kSnicMac = net::MacAddr::fromUint(0x5A1C);

struct Capture : net::PacketSink
{
    void
    accept(net::PacketPtr pkt) override
    {
        ++frames;
        bytes += pkt->size();
        last = std::move(pkt);
    }

    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
    net::PacketPtr last;
};

net::PacketPtr
packetTo(net::Ipv4Addr dst, net::Ipv4Addr src = kClientIp)
{
    return net::makeUdpPacket(net::MacAddr::fromUint(1), kSnicMac, src,
                              dst, 40000, 9000, {},
                              net::kMtuFrameBytes);
}

} // namespace

// --- Link ------------------------------------------------------------

TEST(LossPaths, LinkTailDropsBeyondQueueBudget)
{
    EventQueue eq;
    Capture sink;
    // 10 Gbps, 8-deep Tx FIFO: of a 20-packet burst at one instant
    // the FIFO holds 8 (the serializing head counts against the
    // budget); the rest must tail-drop.
    net::Link link(eq, {10.0, 1 * kUs, 8, "test"}, sink);
    for (int i = 0; i < 20; ++i)
        link.send(packetTo(kSnicIp));
    eq.run();

    EXPECT_EQ(link.drops(), 20u - 8u);
    EXPECT_EQ(sink.frames, 8u);
    EXPECT_EQ(link.deliveredFrames(), sink.frames);
    EXPECT_EQ(link.deliveredBytes(), sink.bytes);
    EXPECT_EQ(link.faultDrops(), 0u) << "tail drops are not fault drops";
}

TEST(LossPaths, LinkImpairmentLosesAndCorruptsSeparately)
{
    EventQueue eq;
    Capture sink;
    net::Link link(eq, {100.0, 1 * kUs, 4096, "test"}, sink);
    Rng rng(42);

    link.setImpairment(1.0, 0.0, &rng); // lose everything
    for (int i = 0; i < 50; ++i)
        link.send(packetTo(kSnicIp));
    EXPECT_EQ(link.faultLost(), 50u);
    EXPECT_EQ(link.corrupted(), 0u);

    link.setImpairment(0.0, 1.0, &rng); // corrupt everything
    for (int i = 0; i < 30; ++i)
        link.send(packetTo(kSnicIp));
    EXPECT_EQ(link.corrupted(), 30u);
    EXPECT_EQ(link.faultDrops(), 80u);

    link.clearImpairment();
    for (int i = 0; i < 5; ++i)
        link.send(packetTo(kSnicIp));
    eq.run();
    EXPECT_EQ(sink.frames, 5u);
    EXPECT_EQ(link.faultDrops(), 80u) << "healthy frames pass untouched";
    EXPECT_EQ(link.drops(), 0u);
}

// --- DpdkRing ---------------------------------------------------------

TEST(LossPaths, RingOverflowTailDropsAndKeepsFifoOrder)
{
    nic::DpdkRing ring(4);
    for (int i = 0; i < 10; ++i) {
        auto pkt = packetTo(kSnicIp);
        pkt->udp().setSrcPort(static_cast<std::uint16_t>(1000 + i));
        ring.accept(std::move(pkt));
    }
    EXPECT_EQ(ring.occupancy(), 4u);
    EXPECT_EQ(ring.drops(), 6u);

    // Survivors are the first four, in arrival order.
    for (int i = 0; i < 4; ++i) {
        auto pkt = ring.dequeue();
        ASSERT_NE(pkt, nullptr);
        EXPECT_EQ(pkt->udp().srcPort(), 1000 + i);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(LossPaths, DisabledRingDropsArrivalsButDrainsBacklog)
{
    nic::DpdkRing ring(8);
    ring.accept(packetTo(kSnicIp));
    ring.accept(packetTo(kSnicIp));
    ring.setDisabled(true);
    ring.accept(packetTo(kSnicIp));
    EXPECT_EQ(ring.drops(), 1u);
    EXPECT_EQ(ring.occupancy(), 2u) << "backlog stays dequeueable";
    EXPECT_NE(ring.dequeue(), nullptr);
    ring.setDisabled(false);
    ring.accept(packetTo(kSnicIp));
    EXPECT_EQ(ring.occupancy(), 2u);
    EXPECT_EQ(ring.drops(), 1u);
}

// --- eSwitch ----------------------------------------------------------

TEST(LossPaths, ESwitchBlackholesDisabledPort)
{
    nic::ESwitch sw;
    Capture snic, host;
    sw.addRule(kSnicIp, &snic);
    sw.addRule(kHostIp, &host);

    sw.accept(packetTo(kSnicIp));
    sw.accept(packetTo(kHostIp));
    EXPECT_EQ(snic.frames, 1u);
    EXPECT_EQ(host.frames, 1u);

    sw.setPortEnabled(kHostIp, false);
    sw.accept(packetTo(kHostIp));
    sw.accept(packetTo(kSnicIp));
    EXPECT_EQ(host.frames, 1u);
    EXPECT_EQ(snic.frames, 2u);
    EXPECT_EQ(sw.blackholed(), 1u);

    sw.setPortEnabled(kHostIp, true);
    sw.accept(packetTo(kHostIp));
    EXPECT_EQ(host.frames, 2u);
    EXPECT_EQ(sw.blackholed(), 1u);
}

// --- TrafficMerger ----------------------------------------------------

TEST(LossPaths, MergerPassesNonHostFramesUnmodified)
{
    Capture sink;
    TrafficMerger merger({kSnicIp, kHostIp, kSnicMac}, sink);

    // SNIC-sourced response: must pass through untouched.
    merger.accept(packetTo(kClientIp, kSnicIp));
    ASSERT_NE(sink.last, nullptr);
    EXPECT_EQ(sink.last->ip().src(), kSnicIp);
    EXPECT_TRUE(sink.last->ip().checksumOk());

    // Host-sourced response: rewritten to the service identity.
    merger.accept(packetTo(kClientIp, kHostIp));
    EXPECT_EQ(sink.last->ip().src(), kSnicIp);
    EXPECT_TRUE(sink.last->ip().checksumOk());

    EXPECT_EQ(merger.total(), 2u);
    EXPECT_EQ(merger.merged(), 1u);
    EXPECT_LT(merger.merged(), merger.total());
    EXPECT_EQ(sink.frames, 2u) << "the merger never drops";
}
