/**
 * @file
 * HAL components in isolation: traffic monitor rate estimation,
 * traffic director splitting (token bucket and round-robin) with
 * checksum-correct rewrites, traffic merger identity rewriting, LBP
 * (Algorithm 1) threshold adaptation, and the SLB baseline's
 * forwarding bottleneck.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/hlb.hh"
#include "core/lbp.hh"
#include "core/slb.hh"
#include "funcs/registry.hh"
#include "net/traffic.hh"
#include "proc/processor.hh"

using namespace halsim;
using namespace halsim::core;

namespace {

const net::Ipv4Addr kSnicIp(10, 0, 0, 2);
const net::Ipv4Addr kHostIp(10, 0, 0, 3);
const net::MacAddr kSnicMac = net::MacAddr::fromUint(0x5A1C);
const net::MacAddr kHostMac = net::MacAddr::fromUint(0xA057);

struct Capture : net::PacketSink
{
    void
    accept(net::PacketPtr pkt) override
    {
        if (pkt->ip().dst() == kHostIp)
            ++toHost;
        else
            ++toSnic;
        bytesTotal += pkt->size();
        checksumOk = checksumOk && pkt->ip().checksumOk();
        last = std::move(pkt);
    }

    std::uint64_t toSnic = 0;
    std::uint64_t toHost = 0;
    std::uint64_t bytesTotal = 0;
    bool checksumOk = true;
    net::PacketPtr last;
};

net::PacketPtr
requestPacket()
{
    auto pkt = net::makeUdpPacket(net::MacAddr::fromUint(1), kSnicMac,
                                  net::Ipv4Addr(10, 0, 0, 1), kSnicIp,
                                  40000, 9000, {}, net::kMtuFrameBytes);
    pkt->clientMac = net::MacAddr::fromUint(1);
    pkt->clientIp = net::Ipv4Addr(10, 0, 0, 1);
    pkt->clientPort = 40000;
    return pkt;
}

TrafficDirector::Config
directorCfg(SplitMode mode, double fwd_th)
{
    TrafficDirector::Config cfg;
    cfg.snic_ip = kSnicIp;
    cfg.host_ip = kHostIp;
    cfg.host_mac = kHostMac;
    cfg.mode = mode;
    cfg.initial_fwd_th_gbps = fwd_th;
    return cfg;
}

/** Push packets through a director at a constant offered rate. */
void
offer(EventQueue &eq, TrafficDirector &dir, double gbps_rate, Tick dur)
{
    const Tick gap = transferTicks(net::kMtuFrameBytes, gbps_rate);
    for (Tick t = eq.now(); t < eq.now() + dur; t += gap) {
        eq.scheduleFn([&dir] { dir.accept(requestPacket()); }, t);
    }
    eq.run();
}

} // namespace

TEST(TrafficMonitor, EstimatesRatePerEpoch)
{
    EventQueue eq;
    TrafficMonitor mon(eq, {.epoch = 10 * kUs});
    mon.start();
    // 100 MTU frames in 10 us = 120 Gbps... use 10 frames = 12 Gbps.
    for (int i = 0; i < 10; ++i)
        mon.onFrame(1500);
    eq.runUntil(10 * kUs);
    EXPECT_NEAR(mon.rateRxGbps(), 12.0, 0.01);
    // Next epoch with nothing received: rate falls to zero.
    eq.runUntil(20 * kUs);
    EXPECT_EQ(mon.rateRxGbps(), 0.0);
    mon.stop();
}

TEST(TrafficDirector, AllToSnicBelowThreshold)
{
    EventQueue eq;
    Capture out;
    TrafficMonitor mon(eq, {});
    TrafficDirector dir(eq, directorCfg(SplitMode::TokenBucket, 50.0),
                        mon, out);
    offer(eq, dir, 30.0, 5 * kMs);
    EXPECT_GT(out.toSnic, 0u);
    EXPECT_EQ(out.toHost, 0u);
    EXPECT_EQ(dir.toHost(), 0u);
}

TEST(TrafficDirector, SplitsExcessAboveThreshold)
{
    EventQueue eq;
    Capture out;
    TrafficMonitor mon(eq, {});
    TrafficDirector dir(eq, directorCfg(SplitMode::TokenBucket, 30.0),
                        mon, out);
    offer(eq, dir, 80.0, 10 * kMs);
    const double snic_share =
        static_cast<double>(out.toSnic) /
        static_cast<double>(out.toSnic + out.toHost);
    // 30 of 80 Gbps stays on the SNIC.
    EXPECT_NEAR(snic_share, 30.0 / 80.0, 0.03);
    EXPECT_TRUE(out.checksumOk)
        << "dst rewrites must patch the checksum";
}

TEST(TrafficDirector, RoundRobinSplitsExcess)
{
    EventQueue eq;
    Capture out;
    TrafficMonitor mon(eq, {.epoch = 10 * kUs});
    mon.start();
    TrafficDirector dir(eq, directorCfg(SplitMode::RoundRobin, 30.0),
                        mon, out);
    // The monitor self-reschedules forever, so drive by time, not by
    // queue drain.
    const Tick gap = transferTicks(net::kMtuFrameBytes, 80.0);
    for (Tick t = 0; t < 10 * kMs; t += gap)
        eq.scheduleFn([&dir] { dir.accept(requestPacket()); }, t);
    eq.runUntil(10 * kMs + 1);
    mon.stop();
    const double snic_share =
        static_cast<double>(out.toSnic) /
        static_cast<double>(out.toSnic + out.toHost);
    EXPECT_NEAR(snic_share, 30.0 / 80.0, 0.05);
}

TEST(TrafficDirector, FlowAffinityKeepsFlowsTogether)
{
    EventQueue eq;
    Capture out;
    TrafficMonitor mon(eq, {.epoch = 10 * kUs});
    mon.start();
    TrafficDirector dir(eq, directorCfg(SplitMode::FlowAffinity, 30.0),
                        mon, out);
    // Emit packets from 64 distinct flows at 80 Gbps; every packet of
    // a flow must take the same path.
    const Tick gap = transferTicks(net::kMtuFrameBytes, 80.0);
    std::uint32_t flow = 0;
    for (Tick t = 0; t < 10 * kMs; t += gap) {
        const std::uint32_t f = flow++ % 64;
        eq.scheduleFn(
            [&dir, f] {
                auto pkt = requestPacket();
                pkt->flowHash = f * 0x9E3779B9u;
                dir.accept(std::move(pkt));
            },
            t);
    }
    eq.runUntil(10 * kMs + 1);
    mon.stop();
    // The split is a pure function of the flow hash, so whole flows
    // stick to one side while both sides stay in use and the share
    // still approximates the excess fraction.
    EXPECT_GT(out.toSnic, 0u);
    EXPECT_GT(out.toHost, 0u);
    const double share = static_cast<double>(out.toSnic) /
                         static_cast<double>(out.toSnic + out.toHost);
    EXPECT_NEAR(share, 30.0 / 80.0, 0.15)
        << "flow-granular split still approximates the excess";
}

TEST(TrafficDirector, DivertedPacketsAreMarkedAndRetargeted)
{
    EventQueue eq;
    Capture out;
    TrafficMonitor mon(eq, {});
    TrafficDirector dir(eq, directorCfg(SplitMode::TokenBucket, 0.0),
                        mon, out);
    dir.accept(requestPacket());
    eq.run();
    ASSERT_EQ(out.toHost, 1u);
    EXPECT_TRUE(out.last->directedToHost);
    EXPECT_EQ(out.last->eth().dst(), kHostMac);
}

TEST(TrafficDirector, ThresholdUpdateTakesEffect)
{
    EventQueue eq;
    Capture out;
    TrafficMonitor mon(eq, {});
    TrafficDirector dir(eq, directorCfg(SplitMode::TokenBucket, 100.0),
                        mon, out);
    offer(eq, dir, 50.0, 2 * kMs);
    EXPECT_EQ(out.toHost, 0u);
    dir.setFwdTh(10.0);
    EXPECT_NEAR(dir.fwdThGbps(), 10.0, 1e-9);
    const std::uint64_t host_before = out.toHost;
    offer(eq, dir, 50.0, 2 * kMs);
    EXPECT_GT(out.toHost, host_before)
        << "lowering Fwd_Th must start diverting";
}

TEST(TrafficMerger, RewritesHostIdentityOnly)
{
    EventQueue eq;
    Capture out;
    TrafficMerger merger({kSnicIp, kHostIp, kSnicMac}, out);

    // A host-sourced response.
    auto host_resp = requestPacket();
    host_resp->ip().setSrcRaw(kHostIp);
    host_resp->ip().setDstRaw(net::Ipv4Addr(10, 0, 0, 1));
    host_resp->ip().fillChecksum();
    merger.accept(std::move(host_resp));
    EXPECT_EQ(merger.merged(), 1u);
    EXPECT_EQ(out.last->ip().src(), kSnicIp)
        << "clients must see the SNIC identity";
    EXPECT_EQ(out.last->eth().src(), kSnicMac);
    EXPECT_TRUE(out.last->ip().checksumOk());

    // An SNIC-sourced response passes untouched.
    auto snic_resp = requestPacket();
    snic_resp->ip().setSrcRaw(kSnicIp);
    snic_resp->ip().fillChecksum();
    merger.accept(std::move(snic_resp));
    EXPECT_EQ(merger.merged(), 1u);
    EXPECT_EQ(merger.total(), 2u);
}

TEST(Lbp, RaisesThresholdWhenSnicUnderutilized)
{
    // Feed the SNIC below its capacity: occupancy stays low, so the
    // policy walks Fwd_Th upward from its initial value.
    EventQueue eq;
    Capture out;
    auto nat = funcs::makeFunction(funcs::FunctionId::Nat);
    proc::Processor::Config pc;
    pc.platform = funcs::Platform::SnicBf2;
    pc.profile = funcs::profile(funcs::Platform::SnicBf2,
                                funcs::FunctionId::Nat);
    pc.cores = 8;
    pc.service_mac = kSnicMac;
    pc.service_ip = kSnicIp;
    proc::Processor snic(eq, pc, *nat, nullptr, out);

    TrafficMonitor mon(eq, {});
    TrafficDirector dir(eq, directorCfg(SplitMode::TokenBucket, 5.0), mon,
                        snic.input());
    LoadBalancingPolicy::Config lc;
    lc.initial_fwd_gbps = 5.0;
    LoadBalancingPolicy lbp(eq, lc, snic, dir);
    lbp.start();

    net::TrafficGenerator::Config gc;
    net::TrafficGenerator gen(eq, gc,
                              std::make_unique<net::ConstantRate>(20.0),
                              dir);
    gen.start(50 * kMs);
    eq.runUntil(55 * kMs);
    lbp.stop();
    eq.run();
    // SNIC NAT capacity is 41; at 20 offered it should track the
    // offered load closely, well above the initial 5.
    EXPECT_GT(lbp.fwdTh(), 18.0);
    EXPECT_GT(lbp.adjustmentsUp(), 10u);
}

TEST(Lbp, LowersThresholdWhenRingsFill)
{
    // Start just above capacity (Algorithm 1's gate only engages when
    // Fwd_Th is within Delta_TP of the achieved throughput): rings
    // overflow and the policy walks the threshold back down.
    EventQueue eq;
    Capture out;
    auto nat = funcs::makeFunction(funcs::FunctionId::Nat);
    proc::Processor::Config pc;
    pc.platform = funcs::Platform::SnicBf2;
    pc.profile = funcs::profile(funcs::Platform::SnicBf2,
                                funcs::FunctionId::Nat);
    pc.cores = 8;
    pc.service_mac = kSnicMac;
    pc.service_ip = kSnicIp;
    proc::Processor snic(eq, pc, *nat, nullptr, out);

    TrafficMonitor mon(eq, {});
    TrafficDirector dir(eq, directorCfg(SplitMode::TokenBucket, 43.0),
                        mon, snic.input());
    LoadBalancingPolicy::Config lc;
    lc.initial_fwd_gbps = 43.0;   // SNIC NAT capacity is 41
    LoadBalancingPolicy lbp(eq, lc, snic, dir);
    lbp.start();

    net::TrafficGenerator::Config gc;
    net::TrafficGenerator gen(eq, gc,
                              std::make_unique<net::ConstantRate>(80.0),
                              dir);
    gen.start(100 * kMs);
    eq.runUntil(105 * kMs);
    lbp.stop();
    eq.run();
    EXPECT_LT(lbp.fwdTh(), 41.0);
    EXPECT_GT(lbp.adjustmentsDown(), 10u);
}

TEST(Lbp, IdleWhenThresholdFarAboveThroughput)
{
    // Algorithm 1 only acts when Fwd_Th < SNIC_TP + Delta_TP.
    EventQueue eq;
    Capture out;
    auto nat = funcs::makeFunction(funcs::FunctionId::Nat);
    proc::Processor::Config pc;
    pc.platform = funcs::Platform::SnicBf2;
    pc.profile = funcs::profile(funcs::Platform::SnicBf2,
                                funcs::FunctionId::Nat);
    pc.cores = 8;
    pc.service_mac = kSnicMac;
    pc.service_ip = kSnicIp;
    proc::Processor snic(eq, pc, *nat, nullptr, out);
    TrafficMonitor mon(eq, {});
    TrafficDirector dir(eq, directorCfg(SplitMode::TokenBucket, 60.0),
                        mon, snic.input());
    LoadBalancingPolicy::Config lc;
    lc.initial_fwd_gbps = 60.0;
    LoadBalancingPolicy lbp(eq, lc, snic, dir);
    lbp.start();

    net::TrafficGenerator::Config gc;
    net::TrafficGenerator gen(eq, gc,
                              std::make_unique<net::ConstantRate>(5.0),
                              dir);
    gen.start(20 * kMs);
    eq.runUntil(25 * kMs);
    lbp.stop();
    eq.run();
    EXPECT_EQ(lbp.adjustmentsUp() + lbp.adjustmentsDown(), 0u);
    EXPECT_NEAR(lbp.fwdTh(), 60.0, 1e-9);
}

TEST(Slb, SingleCoreDropsMostForwardedTraffic)
{
    // Fig. 5: with one SLB core at 80 Gbps offered and Fwd_Th = 20,
    // the balancer core cannot move 60 Gbps and drops ~58-61%.
    EventQueue eq;
    Capture snic_out, host_out;
    proc::PowerMeter power(eq);
    SoftwareLoadBalancer::Config cfg;
    cfg.slb_cores = 1;
    cfg.fwd_th_gbps = 20.0;
    cfg.fwd_ip = kHostIp;
    cfg.fwd_mac = kHostMac;
    SoftwareLoadBalancer slb(eq, cfg, snic_out, host_out, power);

    net::TrafficGenerator::Config gc;
    net::TrafficGenerator gen(eq, gc,
                              std::make_unique<net::ConstantRate>(80.0),
                              slb.input());
    const Tick dur = 50 * kMs;
    gen.start(dur);
    eq.run();

    const double loss =
        1.0 - static_cast<double>(slb.keptLocal() + slb.forwarded()) /
                  static_cast<double>(gen.sentFrames());
    EXPECT_GT(loss, 0.4) << "one balancer core must drown";
    EXPECT_LT(loss, 0.75);
}

TEST(Slb, FourCoresKeepUp)
{
    EventQueue eq;
    Capture snic_out, host_out;
    proc::PowerMeter power(eq);
    SoftwareLoadBalancer::Config cfg;
    cfg.slb_cores = 4;
    cfg.fwd_th_gbps = 20.0;
    cfg.fwd_ip = kHostIp;
    cfg.fwd_mac = kHostMac;
    SoftwareLoadBalancer slb(eq, cfg, snic_out, host_out, power);

    net::TrafficGenerator::Config gc;
    net::TrafficGenerator gen(eq, gc,
                              std::make_unique<net::ConstantRate>(80.0),
                              slb.input());
    gen.start(50 * kMs);
    eq.run();

    // Four cores provide ~60 Gbps of forwarding capacity — just
    // enough for the 60 Gbps excess, so drops stay under ~10%.
    EXPECT_LT(slb.drops(), gen.sentFrames() / 10)
        << "four balancer cores must roughly keep up";
    // Kept fraction ~ 20/80.
    const double kept = static_cast<double>(slb.keptLocal()) /
                        static_cast<double>(gen.sentFrames());
    EXPECT_NEAR(kept, 0.25, 0.05);
}
