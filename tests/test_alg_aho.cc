/**
 * @file
 * Aho-Corasick automaton: matches vs a naive reference scanner over
 * random texts and the REM rulesets, overlap handling, and automaton
 * shape checks.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "alg/aho_corasick.hh"
#include "alg/corpus.hh"
#include "sim/rng.hh"

using halsim::Rng;
using halsim::alg::AhoCorasick;
using halsim::alg::Match;

namespace {

std::vector<std::uint8_t>
bytesOf(const std::string &s)
{
    return {s.begin(), s.end()};
}

/** Naive O(n*m) reference matcher. */
std::vector<Match>
naiveFindAll(const std::vector<std::string> &patterns,
             const std::vector<std::uint8_t> &text)
{
    std::vector<Match> out;
    for (std::size_t i = 0; i < text.size(); ++i) {
        for (std::uint32_t pi = 0; pi < patterns.size(); ++pi) {
            const std::string &p = patterns[pi];
            if (p.size() > i + 1)
                continue;
            const std::size_t start = i + 1 - p.size();
            if (std::equal(p.begin(), p.end(), text.begin() + start))
                out.push_back(Match{pi, i + 1});
        }
    }
    return out;
}

void
sortMatches(std::vector<Match> &m)
{
    std::sort(m.begin(), m.end(), [](const Match &a, const Match &b) {
        return a.end != b.end ? a.end < b.end : a.pattern < b.pattern;
    });
}

} // namespace

TEST(AhoCorasick, SinglePattern)
{
    AhoCorasick ac({"abc"});
    const auto text = bytesOf("xxabcxxabc");
    EXPECT_EQ(ac.countMatches(text), 2u);
    EXPECT_TRUE(ac.contains(text));
    EXPECT_FALSE(ac.contains(bytesOf("xxabxcx")));
}

TEST(AhoCorasick, OverlappingPatterns)
{
    // "aba" in "ababa" matches at ends 3 and 5.
    AhoCorasick ac({"aba"});
    EXPECT_EQ(ac.countMatches(bytesOf("ababa")), 2u);
}

TEST(AhoCorasick, SuffixPatternsBothReported)
{
    // "she" contains "he": both must fire at the same end position.
    AhoCorasick ac({"she", "he", "hers"});
    auto matches = ac.findAll(bytesOf("ushers"));
    sortMatches(matches);
    ASSERT_EQ(matches.size(), 3u);
    EXPECT_EQ(matches[0].end, 4u);   // "she"
    EXPECT_EQ(matches[1].end, 4u);   // "he"
    EXPECT_EQ(matches[2].end, 6u);   // "hers"
}

TEST(AhoCorasick, PatternIsPrefixOfAnother)
{
    AhoCorasick ac({"ab", "abcd"});
    EXPECT_EQ(ac.countMatches(bytesOf("abcd")), 2u);
}

TEST(AhoCorasick, NoMatchesInCleanText)
{
    AhoCorasick ac({"needle"});
    const auto text = halsim::alg::makeSilesiaLike(10000, 1);
    EXPECT_EQ(ac.countMatches(text),
              naiveFindAll({"needle"}, text).size());
}

TEST(AhoCorasick, MatchesAgainstNaiveRandomized)
{
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        // Small alphabet maximizes overlaps and failure transitions.
        std::vector<std::string> patterns;
        const std::size_t npat = 1 + rng.uniformInt(8);
        for (std::size_t i = 0; i < npat; ++i) {
            std::string p;
            const std::size_t len = 1 + rng.uniformInt(5);
            for (std::size_t j = 0; j < len; ++j)
                p.push_back(static_cast<char>('a' + rng.uniformInt(3)));
            patterns.push_back(std::move(p));
        }
        std::vector<std::uint8_t> text(500);
        for (auto &c : text)
            c = static_cast<std::uint8_t>('a' + rng.uniformInt(3));

        AhoCorasick ac(patterns);
        auto got = ac.findAll(text);
        auto want = naiveFindAll(patterns, text);
        sortMatches(got);
        sortMatches(want);
        ASSERT_EQ(got, want) << "trial " << trial;
        EXPECT_EQ(ac.countMatches(text), want.size());
    }
}

TEST(AhoCorasick, BinaryPatterns)
{
    // Full byte alphabet including NUL.
    std::vector<std::string> patterns = {std::string("\x00\x01", 2),
                                         std::string("\xff\xfe\xfd", 3)};
    AhoCorasick ac(patterns);
    std::vector<std::uint8_t> text = {0xff, 0xfe, 0xfd, 0x00,
                                      0x01, 0x00, 0x01};
    EXPECT_EQ(ac.countMatches(text), 3u);
}

TEST(AhoCorasick, TeakettleRulesetBuilds)
{
    const auto rules =
        halsim::alg::makeRuleset(halsim::alg::RulesetKind::Teakettle, 2500);
    ASSERT_EQ(rules.size(), 2500u);
    AhoCorasick ac(rules);
    EXPECT_GT(ac.stateCount(), 2500u);

    // A scan stream with planted hits must fire; hit-free must be rare.
    const auto hot = halsim::alg::makeScanStream(50000, rules, 0.5, 1);
    EXPECT_GT(ac.countMatches(hot), 0u);
}

TEST(AhoCorasick, SnortRulesetSelective)
{
    const auto rules = halsim::alg::makeRuleset(
        halsim::alg::RulesetKind::SnortLiterals, 500);
    AhoCorasick ac(rules);
    const auto clean = halsim::alg::makeScanStream(50000, rules, 0.0, 2);
    const auto dirty = halsim::alg::makeScanStream(50000, rules, 0.3, 3);
    EXPECT_EQ(ac.countMatches(clean), 0u)
        << "snort-style tokens should not fire on plain text";
    EXPECT_GT(ac.countMatches(dirty), 50u);
}

/** Automaton must agree with naive across ruleset sizes. */
class AhoRulesetSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(AhoRulesetSweep, CountsMatchNaive)
{
    const auto rules = halsim::alg::makeRuleset(
        halsim::alg::RulesetKind::Teakettle, GetParam(), 21);
    const auto text = halsim::alg::makeScanStream(5000, rules, 0.2, 22);
    AhoCorasick ac(rules);
    EXPECT_EQ(ac.countMatches(text), naiveFindAll(rules, text).size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, AhoRulesetSweep,
                         ::testing::Values(1u, 10u, 100u, 500u));
