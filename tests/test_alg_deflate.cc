/**
 * @file
 * DEFLATE codec: round-trip property over many data shapes,
 * compression-ratio expectations, and malformed-stream rejection.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "alg/corpus.hh"
#include "alg/deflate.hh"
#include "sim/rng.hh"

using halsim::Rng;
using halsim::alg::deflateCompress;
using halsim::alg::DeflateConfig;
using halsim::alg::deflateDecompress;

namespace {

std::vector<std::uint8_t>
bytesOf(const std::string &s)
{
    return {s.begin(), s.end()};
}

void
expectRoundTrip(const std::vector<std::uint8_t> &data)
{
    const auto compressed = deflateCompress(data);
    const auto restored = deflateDecompress(compressed);
    ASSERT_EQ(restored, data);
}

} // namespace

TEST(Deflate, EmptyInput)
{
    expectRoundTrip({});
}

TEST(Deflate, SingleByte)
{
    expectRoundTrip({0x42});
}

TEST(Deflate, ShortText)
{
    expectRoundTrip(bytesOf("hello, deflate world"));
}

TEST(Deflate, HighlyRepetitive)
{
    std::vector<std::uint8_t> data(100000, 'a');
    const auto compressed = deflateCompress(data);
    EXPECT_LT(compressed.size(), data.size() / 50)
        << "runs should compress enormously";
    EXPECT_EQ(deflateDecompress(compressed), data);
}

TEST(Deflate, AllByteValues)
{
    std::vector<std::uint8_t> data;
    for (int rep = 0; rep < 10; ++rep)
        for (int b = 0; b < 256; ++b)
            data.push_back(static_cast<std::uint8_t>(b));
    expectRoundTrip(data);
}

TEST(Deflate, IncompressibleFallsBackToStored)
{
    Rng rng(5);
    std::vector<std::uint8_t> data(65536 + 1234);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    const auto compressed = deflateCompress(data);
    // Stored blocks cost 5 bytes per 64 KiB chunk; allow slack for a
    // near-miss fixed encoding.
    EXPECT_LT(compressed.size(), data.size() + 64);
    EXPECT_EQ(deflateDecompress(compressed), data);
}

TEST(Deflate, SilesiaLikeCorpusCompresses)
{
    const auto data = halsim::alg::makeSilesiaLike(200000, 3);
    const auto compressed = deflateCompress(data);
    // The paper's Silesia-mozilla compresses around 2.5-3x with
    // deflate; our synthetic stand-in should land in that regime.
    const double ratio = static_cast<double>(data.size()) /
                         static_cast<double>(compressed.size());
    EXPECT_GT(ratio, 2.0) << "ratio " << ratio;
    EXPECT_EQ(deflateDecompress(compressed), data);
}

TEST(Deflate, OverlappingCopies)
{
    // Distance < length forces the self-overlap copy path.
    std::vector<std::uint8_t> data;
    for (int i = 0; i < 1000; ++i)
        data.push_back(static_cast<std::uint8_t>("ab"[i % 2]));
    expectRoundTrip(data);
}

TEST(Deflate, LongRangeMatchAtWindowEdge)
{
    // Two copies of a block separated by nearly the full window.
    std::vector<std::uint8_t> data;
    const auto block = halsim::alg::makeSilesiaLike(500, 9);
    data.insert(data.end(), block.begin(), block.end());
    std::vector<std::uint8_t> filler = halsim::alg::makeSilesiaLike(32000, 10);
    data.insert(data.end(), filler.begin(), filler.end());
    data.insert(data.end(), block.begin(), block.end());
    expectRoundTrip(data);
}

TEST(Deflate, NoLazyMatchingStillCorrect)
{
    DeflateConfig cfg;
    cfg.lazy_match = false;
    const auto data = halsim::alg::makeSilesiaLike(50000, 12);
    const auto compressed = deflateCompress(data, cfg);
    EXPECT_EQ(deflateDecompress(compressed), data);
}

TEST(Deflate, TruncatedStreamThrows)
{
    const auto compressed =
        deflateCompress(halsim::alg::makeSilesiaLike(5000, 2));
    auto truncated = compressed;
    truncated.resize(truncated.size() / 2);
    EXPECT_THROW(deflateDecompress(truncated), std::runtime_error);
}

TEST(Deflate, MalformedDynamicBlockRejected)
{
    // BFINAL=1, BTYPE=10 (dynamic) followed by a truncated header.
    const std::vector<std::uint8_t> stream = {0x05, 0x00, 0x00};
    EXPECT_THROW(deflateDecompress(stream), std::runtime_error);
}

TEST(Deflate, ReservedBlockTypeRejected)
{
    // BFINAL=1, BTYPE=11 (reserved) => first byte 0b00000111.
    const std::vector<std::uint8_t> stream = {0x07, 0x00, 0x00};
    EXPECT_THROW(deflateDecompress(stream), std::runtime_error);
}

TEST(Deflate, DynamicBeatsFixedOnSkewedData)
{
    // Text over a tiny alphabet: dynamic Huffman should win clearly.
    std::vector<std::uint8_t> data;
    Rng rng(21);
    for (int i = 0; i < 60000; ++i)
        data.push_back(static_cast<std::uint8_t>(
            "eeeeeeettaoinshr"[rng.uniformInt(16)]));

    DeflateConfig dynamic_cfg;
    DeflateConfig fixed_cfg;
    fixed_cfg.allow_dynamic = false;
    const auto dyn = deflateCompress(data, dynamic_cfg);
    const auto fix = deflateCompress(data, fixed_cfg);
    EXPECT_LT(dyn.size(), fix.size() * 0.80)
        << "dynamic tables must exploit the skewed alphabet";
    EXPECT_EQ(deflateDecompress(dyn), data);
    EXPECT_EQ(deflateDecompress(fix), data);
}

TEST(Deflate, FixedOnlyModeStillRoundTrips)
{
    DeflateConfig cfg;
    cfg.allow_dynamic = false;
    const auto data = halsim::alg::makeSilesiaLike(30000, 14);
    EXPECT_EQ(deflateDecompress(deflateCompress(data, cfg)), data);
}

TEST(Deflate, DynamicHandlesAllLiteralData)
{
    // No matches at all: the distance alphabet is empty, which the
    // encoder must still transmit legally.
    std::vector<std::uint8_t> data;
    Rng rng(22);
    for (int i = 0; i < 4000; ++i)
        data.push_back(static_cast<std::uint8_t>(rng.next()));
    DeflateConfig cfg;
    cfg.allow_stored = false;   // force a coded block
    const auto compressed = deflateCompress(data, cfg);
    EXPECT_EQ(deflateDecompress(compressed), data);
}

TEST(Deflate, StoredLenMismatchRejected)
{
    // BFINAL=1 BTYPE=00, then LEN=1 but NLEN not its complement.
    const std::vector<std::uint8_t> stream = {0x01, 0x01, 0x00, 0x00,
                                              0x00, 0xaa};
    EXPECT_THROW(deflateDecompress(stream), std::runtime_error);
}

/** Round-trip sweep across sizes and chain depths. */
class DeflateSweep
    : public ::testing::TestWithParam<std::tuple<int, unsigned>>
{
};

TEST_P(DeflateSweep, RoundTrip)
{
    const auto [size, chain] = GetParam();
    DeflateConfig cfg;
    cfg.max_chain = chain;
    const auto data =
        halsim::alg::makeSilesiaLike(static_cast<std::size_t>(size),
                                     static_cast<std::uint64_t>(size));
    const auto compressed = deflateCompress(data, cfg);
    EXPECT_EQ(deflateDecompress(compressed), data);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndEffort, DeflateSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 100, 1000, 40000,
                                         100000),
                       ::testing::Values(1u, 8u, 128u)));
