/**
 * @file
 * Core-scaling governor unit + integration tests: the pure per-epoch
 * planning functions against an exact reference, the flow-group
 * indirection mechanism, PowerPolicy validation, and full-system runs
 * proving the governor parks/unparks under load swings without
 * breaking the energy ledger.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/server.hh"
#include "net/traffic.hh"
#include "nic/dpdk_ring.hh"
#include "proc/governor.hh"
#include "proc/processor.hh"
#include "sim/event_queue.hh"

using namespace halsim;
using namespace halsim::core;
using namespace halsim::proc;

namespace {

net::PacketPtr
packetWithFlowHash(std::uint32_t flow_hash)
{
    static constexpr std::uint8_t kEmpty[1] = {0};
    const net::FlowEndpoints ep;
    auto pkt = net::makeUdpPacket(ep.src_mac, ep.dst_mac, ep.src_ip,
                                  ep.dst_ip, ep.src_port, ep.dst_port,
                                  std::span<const std::uint8_t>(kEmpty, 0),
                                  net::kMtuFrameBytes);
    pkt->flowHash = flow_hash;
    return pkt;
}

/**
 * Independent reference for planRebalance, written straight from the
 * spec: donor = most-loaded active core, receiver = least-loaded
 * (ascending index on ties); no plan when the gap is within the
 * threshold, the donor owns <= 1 group, or saw no packets; otherwise
 * move heaviest groups first until half the gap is covered, keeping
 * one group on the donor.
 */
std::vector<GroupMove>
referenceRebalance(const GovernorPolicy &cfg,
                   const std::vector<double> &load,
                   const std::vector<bool> &active,
                   const std::vector<std::uint32_t> &group_core,
                   const std::vector<std::uint64_t> &group_pkts)
{
    std::vector<GroupMove> moves;
    int donor = -1, receiver = -1;
    for (std::size_t i = 0; i < load.size(); ++i) {
        if (!active[i])
            continue;
        if (donor < 0 || load[i] > load[static_cast<std::size_t>(donor)])
            donor = static_cast<int>(i);
        if (receiver < 0 ||
            load[i] < load[static_cast<std::size_t>(receiver)])
            receiver = static_cast<int>(i);
    }
    if (donor < 0 || donor == receiver)
        return moves;
    const double gap = load[static_cast<std::size_t>(donor)] -
                       load[static_cast<std::size_t>(receiver)];
    if (gap <= cfg.imbalance_threshold)
        return moves;
    std::vector<std::uint32_t> owned;
    std::uint64_t total_pkts = 0;
    for (std::uint32_t g = 0; g < group_core.size(); ++g) {
        if (group_core[g] == static_cast<std::uint32_t>(donor)) {
            owned.push_back(g);
            total_pkts += group_pkts[g];
        }
    }
    if (owned.size() <= 1 || total_pkts == 0)
        return moves;
    std::stable_sort(owned.begin(), owned.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return group_pkts[a] > group_pkts[b];
                     });
    double moved = 0.0;
    for (std::uint32_t g : owned) {
        if (moved >= gap / 2.0 || moves.size() + 1 >= owned.size())
            break;
        moves.push_back({g, static_cast<std::uint32_t>(donor),
                         static_cast<std::uint32_t>(receiver)});
        moved += load[static_cast<std::size_t>(donor)] *
                 static_cast<double>(group_pkts[g]) /
                 static_cast<double>(total_pkts);
    }
    return moves;
}

void
expectSamePlan(const std::vector<GroupMove> &a,
               const std::vector<GroupMove> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(a[i].group, b[i].group);
        EXPECT_EQ(a[i].from, b[i].from);
        EXPECT_EQ(a[i].to, b[i].to);
    }
}

RunResult
runGoverned(double rate_gbps, bool governed, Tick measure = 40 * kMs)
{
    ServerConfig cfg;
    cfg.mode = Mode::Hal;
    cfg.function = funcs::FunctionId::Nat;
    cfg.power.governor.enabled = governed;
    EventQueue eq;
    ServerSystem sys(eq, cfg);
    return sys.run(std::make_unique<net::ConstantRate>(rate_gbps),
                   10 * kMs, measure);
}

} // namespace

TEST(PowerPolicy, ValidateAcceptsDefaults)
{
    PowerPolicy p;
    EXPECT_TRUE(p.validate().empty());
    p.governor.enabled = true;
    p.snic_dvfs.enabled = true;
    EXPECT_TRUE(p.validate().empty());
}

TEST(PowerPolicy, ValidateReportsEveryViolationInOnePass)
{
    PowerPolicy p;
    p.host_sleep.enabled = true;
    p.host_sleep.shallow_idle_frac = 1.5;    // violation 1
    p.snic_dvfs.enabled = true;
    p.snic_dvfs.min_scale = 0.0;             // violation 2
    p.snic_dvfs.occ_low = 50;
    p.snic_dvfs.occ_high = 10;               // violation 3
    p.governor.enabled = true;
    p.governor.groups = 0;                   // violation 4
    p.governor.busy_low = 0.9;
    p.governor.busy_high = 0.5;              // violation 5
    p.governor.min_active_cores = 0;         // violation 6

    const std::vector<std::string> errors = p.validate();
    EXPECT_EQ(errors.size(), 6u);
    auto contains = [&errors](const std::string &needle) {
        for (const std::string &e : errors)
            if (e.find(needle) != std::string::npos)
                return true;
        return false;
    };
    EXPECT_TRUE(contains("shallow_idle_frac"));
    EXPECT_TRUE(contains("min_scale"));
    EXPECT_TRUE(contains("occ_low"));
    EXPECT_TRUE(contains("governor.groups"));
    EXPECT_TRUE(contains("busy_low"));
    EXPECT_TRUE(contains("min_active_cores"));
}

TEST(PowerPolicy, ServerConfigSplicesPowerErrors)
{
    ServerConfig cfg;
    cfg.power.governor.enabled = true;
    cfg.power.governor.groups = 0;
    const std::vector<std::string> errors = cfg.validate();
    bool found = false;
    for (const std::string &e : errors)
        found = found || e.find("governor.groups") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(FlowGroupTable, HashIsDeterministicAndStriped)
{
    FlowGroupTable a(64, 4), b(64, 4);
    for (std::uint32_t h = 0; h < 1000; ++h)
        EXPECT_EQ(a.groupOf(h), b.groupOf(h));
    // Initial stripe matches RssDistributor's modulo group-wise.
    for (std::uint32_t g = 0; g < a.groupCount(); ++g)
        EXPECT_EQ(a.coreOfGroup(g), g % 4);
}

TEST(FlowGroupTable, AcceptFollowsIndirectionAndCountsPackets)
{
    FlowGroupTable table(16, 2);
    nic::DpdkRing r0(32), r1(32);
    table.addQueue(&r0);
    table.addQueue(&r1);

    const std::uint32_t h = 12345;
    const std::uint32_t g = table.groupOf(h);
    const std::uint32_t before = table.coreOfGroup(g);
    table.accept(packetWithFlowHash(h));
    EXPECT_EQ((before == 0 ? r0 : r1).occupancy(), 1u);
    EXPECT_EQ(table.groupPackets(g), 1u);

    // Steering is an O(1) indirection write: the same flow lands on
    // the other core afterwards.
    const std::uint32_t other = before == 0 ? 1 : 0;
    table.assign(g, other);
    table.accept(packetWithFlowHash(h));
    EXPECT_EQ((other == 0 ? r0 : r1).occupancy(), 1u);
    EXPECT_EQ(table.groupPackets(g), 2u);

    table.resetEpoch();
    EXPECT_EQ(table.groupPackets(g), 0u);
}

TEST(Governor, ConsolidationHysteresis)
{
    GovernorPolicy cfg;
    cfg.min_dwell_epochs = 5;

    // Idle but not yet dwelled: hold.
    EXPECT_EQ(planConsolidation(cfg, 0.1, 0, 8, 8, 4),
              GovernorAction::None);
    // Dwell satisfied: park.
    EXPECT_EQ(planConsolidation(cfg, 0.1, 0, 8, 8, 5),
              GovernorAction::Park);
    // Floor reached: never park below min_active_cores.
    EXPECT_EQ(planConsolidation(cfg, 0.0, 0, 1, 8, 100),
              GovernorAction::None);
    // Between the watermarks: hold regardless of dwell.
    EXPECT_EQ(planConsolidation(cfg, 0.5, 0, 4, 8, 100),
              GovernorAction::None);
    // Hot: unpark one — unless already at full size.
    EXPECT_EQ(planConsolidation(cfg, 0.95, 0, 4, 8, 0),
              GovernorAction::UnparkOne);
    EXPECT_EQ(planConsolidation(cfg, 0.95, 0, 8, 8, 0),
              GovernorAction::None);
    // Occupancy pressure valve beats everything, even mid-dwell idle.
    EXPECT_EQ(planConsolidation(cfg, 0.1, cfg.occ_unpark, 4, 8, 0),
              GovernorAction::UnparkAll);
    EXPECT_EQ(planConsolidation(cfg, 0.1, cfg.occ_unpark, 8, 8, 0),
              GovernorAction::None);
}

TEST(Governor, RebalanceHandFixtures)
{
    GovernorPolicy cfg;   // imbalance_threshold = 0.10

    // 4 cores, 8 groups striped %4; core 0 hot with most load in
    // group 0: one move (group 0 -> core 1) already covers half the
    // 0.8 gap.
    const std::vector<double> load{1.0, 0.2, 0.5, 0.4};
    const std::vector<bool> active{true, true, true, true};
    std::vector<std::uint32_t> group_core;
    for (std::uint32_t g = 0; g < 8; ++g)
        group_core.push_back(g % 4);
    std::vector<std::uint64_t> pkts(8, 5);
    pkts[0] = 30;
    pkts[4] = 10;

    const auto moves =
        planRebalance(cfg, load, active, group_core, pkts);
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(moves[0].group, 0u);
    EXPECT_EQ(moves[0].from, 0u);
    EXPECT_EQ(moves[0].to, 1u);

    // Balanced within the threshold: no plan.
    EXPECT_TRUE(planRebalance(cfg, {0.5, 0.45, 0.48, 0.52}, active,
                              group_core, pkts)
                    .empty());

    // A parked core is never the donor or the receiver.
    const auto parked_moves = planRebalance(
        cfg, {9.0, 0.2, 0.5, 0.0}, {false, true, true, false},
        group_core, pkts);
    for (const GroupMove &m : parked_moves) {
        EXPECT_NE(m.from, 0u);
        EXPECT_NE(m.to, 3u);
    }

    // A single-group donor is left alone (nothing to split).
    std::vector<std::uint32_t> lone(8, 1);
    lone[0] = 0;
    EXPECT_TRUE(
        planRebalance(cfg, load, active, lone, pkts).empty());

    // A donor that saw no packets this epoch yields no estimate.
    EXPECT_TRUE(planRebalance(cfg, load, active, group_core,
                              std::vector<std::uint64_t>(8, 0))
                    .empty());
}

TEST(Governor, RebalanceMatchesExactReference)
{
    // Deterministic pseudo-random battery against the independent
    // reference implementation above.
    GovernorPolicy cfg;
    std::uint64_t state = 0x1234567ull;
    auto next = [&state] {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    };
    for (int iter = 0; iter < 200; ++iter) {
        const std::size_t cores = 2 + next() % 7;
        const std::uint32_t groups =
            static_cast<std::uint32_t>(cores) *
            static_cast<std::uint32_t>(1 + next() % 8);
        std::vector<double> load(cores);
        std::vector<bool> active(cores);
        std::size_t n_active = 0;
        for (std::size_t i = 0; i < cores; ++i) {
            load[i] = static_cast<double>(next() % 2000) / 1000.0;
            active[i] = next() % 4 != 0;
            n_active += active[i] ? 1 : 0;
        }
        if (n_active == 0)
            active[0] = true;
        std::vector<std::uint32_t> group_core(groups);
        std::vector<std::uint64_t> pkts(groups);
        for (std::uint32_t g = 0; g < groups; ++g) {
            group_core[g] =
                static_cast<std::uint32_t>(next() % cores);
            pkts[g] = next() % 50;
        }
        SCOPED_TRACE(iter);
        expectSamePlan(
            planRebalance(cfg, load, active, group_core, pkts),
            referenceRebalance(cfg, load, active, group_core, pkts));
    }
}

TEST(Governor, ParksAtLowLoadWithinBounds)
{
    const RunResult r = runGoverned(4.0, true);
    EXPECT_GT(r.gov_epochs, 0u);
    EXPECT_GT(r.gov_parks, 0u);
    // Both processors (8 cores each) consolidate, but never below
    // min_active_cores = 1 per processor; the RunResult carries the
    // sum of the per-processor extremes.
    EXPECT_GE(r.gov_min_active_cores, 2u);
    EXPECT_LT(r.gov_min_active_cores, 16u);
    EXPECT_LE(r.gov_max_active_cores, 16u);
    EXPECT_GT(r.delivered_gbps, 3.5);
}

TEST(Governor, SavesEnergyAtLowLoadKeepsLedgerConsistent)
{
    const RunResult st = runGoverned(4.0, false);
    const RunResult gov = runGoverned(4.0, true);
    // Parked cores stop burning poll watts: strictly better J/Gb.
    EXPECT_LT(gov.j_per_gb, st.j_per_gb);
    // Per-core attribution must still sum with the other components
    // to the total (the ledger's closed-sum invariant).
    for (const RunResult *r : {&st, &gov}) {
        const double sum = r->energy_snic_cpu_j + r->energy_snic_accel_j +
                           r->energy_host_cpu_j + r->energy_host_accel_j +
                           r->energy_fleet_j + r->energy_extra_j +
                           r->energy_static_j;
        EXPECT_NEAR(sum, r->energy_total_j,
                    1e-9 * std::max(1.0, r->energy_total_j));
    }
}

TEST(Governor, UnparksOnLoadSwing)
{
    // A deterministic day/night swing: the governor must park at the
    // trough and wake cores again for the peak without losing
    // throughput.
    ServerConfig cfg;
    cfg.mode = Mode::Hal;
    cfg.function = funcs::FunctionId::Nat;
    cfg.power.governor.enabled = true;
    EventQueue eq;
    ServerSystem sys(eq, cfg);
    const RunResult r =
        sys.run(std::make_unique<net::DiurnalRate>(2.0, 70.0, 20),
                10 * kMs, 60 * kMs, 1 * kMs);
    EXPECT_GT(r.gov_parks, 0u);
    EXPECT_GT(r.gov_unparks, 0u);
    EXPECT_GT(r.gov_max_active_cores, r.gov_min_active_cores);
    EXPECT_GT(r.delivered_gbps, 0.8 * r.offered_gbps);
}

TEST(Governor, DisabledLeavesFieldsZeroAndBehaviorUnchanged)
{
    const RunResult off = runGoverned(30.0, false, 20 * kMs);
    EXPECT_EQ(off.gov_epochs, 0u);
    EXPECT_EQ(off.gov_rebalances, 0u);
    EXPECT_EQ(off.gov_migrations, 0u);
    EXPECT_EQ(off.gov_parks, 0u);
    EXPECT_EQ(off.gov_unparks, 0u);
    EXPECT_EQ(off.gov_min_active_cores, 0u);
    EXPECT_EQ(off.gov_max_active_cores, 0u);
}

TEST(Governor, ActiveCapacityClampsLbpThreshold)
{
    // LbP co-design: with cores parked, the director's forwarding
    // threshold must not exceed what the shrunken active set can
    // actually serve. At a rate low enough to consolidate the SNIC
    // down to one poll core, scaledTp(1) sits below the static run's
    // converged threshold, so the clamp is directly visible in
    // final_fwd_th_gbps.
    auto finalTh = [](bool governed) {
        ServerConfig cfg;
        cfg.mode = Mode::Hal;
        cfg.function = funcs::FunctionId::Nat;
        cfg.power.governor.enabled = governed;
        EventQueue eq;
        ServerSystem sys(eq, cfg);
        const RunResult r =
            sys.run(std::make_unique<net::ConstantRate>(0.8), 10 * kMs,
                    40 * kMs);
        const double cap = sys.snicProcessor()->config().profile.scaledTp(
            sys.snicProcessor()->governorActiveCores());
        if (governed) {
            // Consolidation converges inside warmup at this rate (the
            // park *events* land pre-reset; ParksAtLowLoadWithinBounds
            // covers the counters) — what matters here is the steady
            // state: a shrunken active set and a threshold below its
            // capacity.
            EXPECT_LT(sys.snicProcessor()->governorActiveCores(),
                      sys.snicProcessor()->coreCount());
            EXPECT_LE(r.final_fwd_th_gbps, cap + 1e-9)
                << "threshold above the active set's capacity";
        }
        return r.final_fwd_th_gbps;
    };
    const double st = finalTh(false);
    const double gov = finalTh(true);
    EXPECT_LT(gov, st)
        << "a consolidated SNIC must advertise reduced capacity";
}
