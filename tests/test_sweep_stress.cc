/**
 * @file
 * Threaded sweep stress: the TSan-clean guarantee behind halint's
 * static HAL-W005 claim. runSweep with 8 workers over a widened
 * (mode, function, rate, fault) grid must (a) exhibit no data races —
 * the CI ThreadSanitizer job runs this binary under
 * `-fsanitize=thread` (ctest label: tsan) — and (b) still return
 * results bit-identical to the serial run, point for point.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/server.hh"
#include "core/sweep.hh"

using namespace halsim;
using namespace halsim::core;

namespace {

/** The widened grid: 3 modes x 2 functions x 3 rates + fault rows. */
std::vector<SweepPoint>
stressGrid()
{
    std::vector<SweepPoint> points;
    for (Mode mode : {Mode::HostOnly, Mode::SnicOnly, Mode::Hal}) {
        for (funcs::FunctionId fn :
             {funcs::FunctionId::Nat, funcs::FunctionId::Count}) {
            for (double rate : {15.0, 45.0, 80.0}) {
                SweepPoint p;
                p.cfg.mode = mode;
                p.cfg.function = fn;
                p.rate_gbps = rate;
                p.warmup = 2 * kMs;
                p.measure = 8 * kMs;
                points.push_back(std::move(p));
            }
        }
    }
    // Two faulted HAL points so watchdog/failover machinery also runs
    // concurrently with everything else.
    for (double rate : {40.0, 70.0}) {
        SweepPoint p;
        p.cfg.mode = Mode::Hal;
        p.cfg.function = funcs::FunctionId::Nat;
        p.cfg.faults.processorFailure(fault::FaultTarget::Host,
                                      3 * kMs, 2 * kMs);
        p.rate_gbps = rate;
        p.warmup = 2 * kMs;
        p.measure = 8 * kMs;
        points.push_back(std::move(p));
    }
    return points;
}

void
expectBitEqual(double a, double b, const char *field, std::size_t i)
{
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a),
              std::bit_cast<std::uint64_t>(b))
        << "point " << i << " " << field << ": " << a << " vs " << b;
}

} // namespace

TEST(SweepStress, EightWorkersRaceFreeAndBitIdenticalToSerial)
{
    const std::vector<SweepPoint> points = stressGrid();

    SweepOptions serial, wide;
    serial.threads = 1;
    wide.threads = 8;
    const std::vector<RunResult> rs = runSweep(points, serial);
    const std::vector<RunResult> rw = runSweep(points, wide);

    ASSERT_EQ(rs.size(), points.size());
    ASSERT_EQ(rw.size(), points.size());
    for (std::size_t i = 0; i < rs.size(); ++i) {
        expectBitEqual(rs[i].delivered_gbps, rw[i].delivered_gbps,
                       "delivered_gbps", i);
        expectBitEqual(rs[i].p99_us, rw[i].p99_us, "p99_us", i);
        expectBitEqual(rs[i].system_power_w, rw[i].system_power_w,
                       "system_power_w", i);
        expectBitEqual(rs[i].energy_eff, rw[i].energy_eff,
                       "energy_eff", i);
        EXPECT_EQ(rs[i].sent, rw[i].sent) << "point " << i;
        EXPECT_EQ(rs[i].drops, rw[i].drops) << "point " << i;
        EXPECT_EQ(rs[i].snic_frames, rw[i].snic_frames) << "point " << i;
        EXPECT_EQ(rs[i].host_frames, rw[i].host_frames) << "point " << i;
        EXPECT_EQ(rs[i].faults_injected, rw[i].faults_injected)
            << "point " << i;
        EXPECT_EQ(rs[i].failovers, rw[i].failovers) << "point " << i;
    }
}

TEST(SweepStress, RepeatedWideRunsIdentical)
{
    std::vector<SweepPoint> points = stressGrid();
    points.resize(6); // a slice is enough for the repeat check
    SweepOptions wide;
    wide.threads = 8;
    const std::vector<RunResult> a = runSweep(points, wide);
    const std::vector<RunResult> b = runSweep(points, wide);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        expectBitEqual(a[i].delivered_gbps, b[i].delivered_gbps,
                       "delivered_gbps", i);
        expectBitEqual(a[i].p99_us, b[i].p99_us, "p99_us", i);
        EXPECT_EQ(a[i].sent, b[i].sent) << "point " << i;
    }
}
