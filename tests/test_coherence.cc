/**
 * @file
 * Coherence domain: MSI state machine latencies, single-writer
 * invariant under random access streams, and the StateContext
 * accounting stateful functions rely on.
 */

#include <gtest/gtest.h>

#include "coherence/domain.hh"
#include "sim/rng.hh"

using namespace halsim;
using namespace halsim::coherence;

namespace {

CoherenceDomain::Config
testCfg()
{
    CoherenceDomain::Config cfg;
    cfg.local_hit = 10;
    cfg.memory_fetch = 100;
    cfg.remote_transfer = 1000;
    cfg.line_bytes = 64;
    return cfg;
}

} // namespace

TEST(Coherence, ColdReadFetchesFromMemory)
{
    CoherenceDomain d(testCfg());
    EXPECT_EQ(d.access(0x1000, NodeId::Snic, false), 100u);
    EXPECT_EQ(d.stats().memoryFetches, 1u);
}

TEST(Coherence, RepeatReadHitsLocally)
{
    CoherenceDomain d(testCfg());
    d.access(0x1000, NodeId::Snic, false);
    EXPECT_EQ(d.access(0x1000, NodeId::Snic, false), 10u);
    EXPECT_EQ(d.access(0x1040, NodeId::Snic, false), 100u)
        << "adjacent line is a separate fetch";
    EXPECT_EQ(d.access(0x1008, NodeId::Snic, false), 10u)
        << "same 64-byte line hits";
}

TEST(Coherence, WriteAfterWriteIsLocal)
{
    CoherenceDomain d(testCfg());
    EXPECT_EQ(d.access(0x2000, NodeId::Host, true), 100u);
    EXPECT_EQ(d.access(0x2000, NodeId::Host, true), 10u);
}

TEST(Coherence, RemoteDirtyReadTransfers)
{
    CoherenceDomain d(testCfg());
    d.access(0x3000, NodeId::Snic, true);   // SNIC owns dirty
    EXPECT_EQ(d.access(0x3000, NodeId::Host, false), 1000u)
        << "dirty line must cross the UPI/CXL interconnect";
    // Now shared: both read locally.
    EXPECT_EQ(d.access(0x3000, NodeId::Host, false), 10u);
    EXPECT_EQ(d.access(0x3000, NodeId::Snic, false), 10u);
}

TEST(Coherence, WriteInvalidatesRemoteSharer)
{
    CoherenceDomain d(testCfg());
    d.access(0x4000, NodeId::Snic, false);
    d.access(0x4000, NodeId::Host, false);
    EXPECT_EQ(d.access(0x4000, NodeId::Host, true), 1000u)
        << "upgrading with a remote sharer costs an invalidation";
    EXPECT_EQ(d.stats().invalidations, 1u);
    // The SNIC's copy is gone: its next read transfers the dirty line.
    EXPECT_EQ(d.access(0x4000, NodeId::Snic, false), 1000u);
}

TEST(Coherence, LocalUpgradeFromSharedIsCheap)
{
    CoherenceDomain d(testCfg());
    d.access(0x5000, NodeId::Snic, false);
    EXPECT_EQ(d.access(0x5000, NodeId::Snic, true), 10u)
        << "S->M with no remote sharer is a local operation";
}

TEST(Coherence, PingPongWritesAlwaysTransfer)
{
    // The pathological stateful pattern: both nodes writing the same
    // counter. Every write after the first must cross the link.
    CoherenceDomain d(testCfg());
    d.access(0x6000, NodeId::Snic, true);
    for (int i = 0; i < 10; ++i) {
        const NodeId n = i % 2 ? NodeId::Snic : NodeId::Host;
        EXPECT_EQ(d.access(0x6000, n, true), 1000u) << "round " << i;
    }
    EXPECT_EQ(d.stats().remoteTransfers, 10u);
}

TEST(Coherence, SingleWriterInvariantUnderRandomChurn)
{
    CoherenceDomain d(testCfg());
    Rng rng(42);
    for (int i = 0; i < 100000; ++i) {
        const std::uint64_t addr = rng.uniformInt(64) * 64;
        const NodeId node = rng.chance(0.5) ? NodeId::Snic : NodeId::Host;
        d.access(addr, node, rng.chance(0.3));
    }
    EXPECT_TRUE(d.checkSingleWriterInvariant());
    EXPECT_EQ(d.stats().accesses, 100000u);
    EXPECT_EQ(d.stats().localHits + d.stats().memoryFetches +
                  d.stats().remoteTransfers,
              100000u)
        << "every access is exactly one of hit/fetch/transfer";
}

TEST(StateContext, ExposedLatencyIsMaxPlusResidual)
{
    CoherenceDomain d(testCfg());
    StateContext ctx(&d, NodeId::Snic);
    ctx.touch(0x100, true);    // memory fetch: 100
    ctx.touch(0x100, true);    // local: 10
    // Out-of-order overlap: longest access (100) + 15% of the rest.
    EXPECT_EQ(ctx.latency(),
              100u + static_cast<Tick>(0.15 * 10.0));
    EXPECT_EQ(ctx.accesses(), 2u);
    EXPECT_TRUE(ctx.coherent());
}

TEST(StateContext, NullDomainIsFree)
{
    StateContext ctx(nullptr, NodeId::Host);
    for (int i = 0; i < 100; ++i)
        ctx.touch(static_cast<std::uint64_t>(i), true);
    EXPECT_EQ(ctx.latency(), 0u);
    EXPECT_EQ(ctx.accesses(), 100u);
    EXPECT_FALSE(ctx.coherent());
}

TEST(Coherence, SkewedSharingIsMostlyLocal)
{
    // HAL's common case: the SNIC handles the low-rate steady state,
    // the host only bursts. With key-partitioned access the remote
    // traffic should stay a small fraction.
    CoherenceDomain d(testCfg());
    Rng rng(7);
    for (int i = 0; i < 50000; ++i) {
        // 95% of accesses from the SNIC.
        const NodeId node =
            rng.chance(0.95) ? NodeId::Snic : NodeId::Host;
        const std::uint64_t addr = rng.uniformInt(1024) * 64;
        d.access(addr, node, true);
    }
    const auto &s = d.stats();
    EXPECT_LT(static_cast<double>(s.remoteTransfers) /
                  static_cast<double>(s.accesses),
              0.15);
}
