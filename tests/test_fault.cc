/**
 * @file
 * Fault injection and graceful degradation: config validation, the
 * director's device-boundary clamp and failover override, and
 * end-to-end drills — host crash under HAL (the acceptance
 * scenario), SNIC crash, control-channel loss, LBP stall,
 * accelerator failure, link loss bursts, and core stalls — all
 * checked for recovery and for bit-identical reproducibility.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/server.hh"
#include "fault/fault.hh"

using namespace halsim;
using namespace halsim::core;

namespace {

ServerConfig
cfgFor(Mode mode, funcs::FunctionId fn = funcs::FunctionId::Nat)
{
    ServerConfig cfg;
    cfg.mode = mode;
    cfg.function = fn;
    return cfg;
}

RunResult
runConstant(ServerSystem &sys, double rate_gbps, Tick warmup = 20 * kMs,
            Tick measure = 60 * kMs)
{
    return sys.run(std::make_unique<net::ConstantRate>(rate_gbps), warmup,
                   measure);
}

} // namespace

// --- satellite: configuration validation -----------------------------

TEST(FaultConfig, RejectsZeroCores)
{
    EventQueue eq;
    auto cfg = cfgFor(Mode::Hal);
    cfg.host_cores = 0;
    EXPECT_THROW(ServerSystem(eq, cfg), std::invalid_argument);
    cfg = cfgFor(Mode::Hal);
    cfg.snic_cores = 0;
    EXPECT_THROW(ServerSystem(eq, cfg), std::invalid_argument);
}

TEST(FaultConfig, ZeroHostCoresFineWhenHostUnused)
{
    EventQueue eq;
    auto cfg = cfgFor(Mode::SnicOnly);
    cfg.host_cores = 0;
    EXPECT_NO_THROW(ServerSystem(eq, cfg));
}

TEST(FaultConfig, RejectsBadRingDescriptors)
{
    EventQueue eq;
    auto cfg = cfgFor(Mode::Hal);
    cfg.ring_descriptors = 500; // not a power of two
    EXPECT_THROW(ServerSystem(eq, cfg), std::invalid_argument);
    cfg.ring_descriptors = 0;
    EXPECT_THROW(ServerSystem(eq, cfg), std::invalid_argument);
    cfg.ring_descriptors = 32; // below wm_high = 48
    EXPECT_THROW(ServerSystem(eq, cfg), std::invalid_argument);
}

TEST(FaultConfig, RejectsInvertedThresholds)
{
    EventQueue eq;
    auto cfg = cfgFor(Mode::Hal);
    cfg.lbp.initial_fwd_gbps = 0.1; // below min_fwd = 0.5
    EXPECT_THROW(ServerSystem(eq, cfg), std::invalid_argument);
    cfg = cfgFor(Mode::Hal);
    cfg.lbp.initial_fwd_gbps = 200.0; // above max_fwd = 100
    EXPECT_THROW(ServerSystem(eq, cfg), std::invalid_argument);
}

TEST(FaultConfig, ValidationMessageNamesField)
{
    EventQueue eq;
    auto cfg = cfgFor(Mode::Hal);
    cfg.ring_descriptors = 100;
    try {
        ServerSystem sys(eq, cfg);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("ring_descriptors"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FaultConfig, RejectsNonPositiveSloEpochEvenWhenUnarmed)
{
    // slo.epoch is validated unconditionally: a run can arm the SLO
    // monitor later (--slo-p99), so an unarmed config must not smuggle
    // a zero epoch past validation.
    EventQueue eq;
    auto cfg = cfgFor(Mode::Hal);
    cfg.slo.target_p99_us = 0.0; // monitor unarmed
    cfg.slo.epoch = 0;
    try {
        ServerSystem sys(eq, cfg);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("slo.epoch"),
                  std::string::npos)
            << e.what();
    }
}

// --- satellite: director clamps at the device boundary ---------------

TEST(FaultDirector, ClampsThresholdAtDeviceBoundary)
{
    EventQueue eq;
    auto cfg = cfgFor(Mode::Hal);
    ServerSystem sys(eq, cfg);
    auto *dir = sys.director();
    ASSERT_NE(dir, nullptr);

    dir->setFwdTh(-5.0);
    EXPECT_DOUBLE_EQ(dir->fwdThGbps(), 0.0);
    dir->setFwdTh(1e9);
    EXPECT_DOUBLE_EQ(dir->fwdThGbps(), kMaxFwdThGbps);
    dir->setFwdTh(25.0);
    EXPECT_DOUBLE_EQ(dir->fwdThGbps(), 25.0);
    dir->setFwdTh(std::nan(""));
    EXPECT_DOUBLE_EQ(dir->fwdThGbps(), 25.0) << "NaN must be rejected";
}

TEST(FaultDirector, FailoverPinsThresholdAndRestoresLastGood)
{
    EventQueue eq;
    ServerSystem sys(eq, cfgFor(Mode::Hal));
    auto *dir = sys.director();
    ASSERT_NE(dir, nullptr);

    dir->setFwdTh(12.0);
    dir->enterFailover(kMaxFwdThGbps);
    EXPECT_TRUE(dir->inFailover());
    EXPECT_DOUBLE_EQ(dir->fwdThGbps(), kMaxFwdThGbps);

    // LBP updates during failover are recorded, not applied.
    dir->setFwdTh(17.0);
    EXPECT_DOUBLE_EQ(dir->fwdThGbps(), kMaxFwdThGbps);

    dir->exitFailover();
    EXPECT_FALSE(dir->inFailover());
    EXPECT_DOUBLE_EQ(dir->fwdThGbps(), 17.0)
        << "recovery resumes from the last-known-good threshold";
}

// --- tentpole acceptance: host crash under HAL -----------------------

TEST(FaultDrill, HostCrashKeepsSnicServing)
{
    // HAL at 60 Gbps splits across both processors. At t = 60 ms
    // (40 ms into the measurement window) the host fail-stops; the
    // watchdog must clamp Fwd_Th so everything stays on the SNIC,
    // and delivered throughput must recover to >= 90% of the SNIC's
    // ceiling. Under HAL one SNIC core runs the LBP, so that ceiling
    // is 7/8 of the standalone 41 Gbps NAT anchor (Table II).
    EventQueue eq;
    auto cfg = cfgFor(Mode::Hal);
    cfg.faults.processorFailure(fault::FaultTarget::Host, 60 * kMs);
    ServerSystem sys(eq, cfg);

    // Sample SNIC bytes over a post-fault window, leaving 2 ms after
    // the crash for detection (watchdog epoch 200 us) + drain.
    std::uint64_t bytes_at_62 = 0, bytes_at_80 = 0;
    eq.scheduleFn(
        [&] { bytes_at_62 = sys.snicProcessor()->processedBytes(); },
        62 * kMs);
    eq.scheduleFn(
        [&] { bytes_at_80 = sys.snicProcessor()->processedBytes(); },
        80 * kMs);

    const auto r = runConstant(sys, 60.0);

    EXPECT_EQ(r.faults_injected, 1u);
    EXPECT_GE(r.failovers, 1u);
    EXPECT_EQ(sys.watchdog()->state(), HealthState::HostDown);
    EXPECT_TRUE(sys.director()->inFailover());
    EXPECT_DOUBLE_EQ(sys.director()->fwdThGbps(), kMaxFwdThGbps);

    const double snic_ceiling = 41.0 * 7.0 / 8.0;
    const double post_fault_gbps =
        gbps(bytes_at_80 - bytes_at_62, 18 * kMs);
    EXPECT_GE(post_fault_gbps, 0.9 * snic_ceiling)
        << "SNIC must keep serving at its ceiling";

    // The host is a black hole after the crash; only packets already
    // diverted before the clamp landed can be lost.
    EXPECT_GT(r.responses, 0u);
    EXPECT_GT(r.snic_frames, r.host_frames);
}

TEST(FaultDrill, SameSeedAndPlanReproduceIdenticalCounters)
{
    auto make = [] {
        auto cfg = cfgFor(Mode::Hal);
        cfg.seed = 7;
        cfg.faults.setSeed(7);
        cfg.faults.processorFailure(fault::FaultTarget::Host, 60 * kMs);
        cfg.faults.linkLossBurst(fault::FaultTarget::ClientLink, 0.3,
                                 30 * kMs, 10 * kMs);
        return cfg;
    };
    EventQueue eq1, eq2;
    ServerSystem a(eq1, make()), b(eq2, make());
    const auto ra = runConstant(a, 60.0);
    const auto rb = runConstant(b, 60.0);

    EXPECT_EQ(ra.sent, rb.sent);
    EXPECT_EQ(ra.responses, rb.responses);
    EXPECT_EQ(ra.drops, rb.drops);
    EXPECT_EQ(ra.snic_frames, rb.snic_frames);
    EXPECT_EQ(ra.host_frames, rb.host_frames);
    EXPECT_EQ(ra.faults_injected, rb.faults_injected);
    EXPECT_EQ(ra.faults_reverted, rb.faults_reverted);
    EXPECT_EQ(ra.failovers, rb.failovers);
    EXPECT_EQ(ra.recoveries, rb.recoveries);
    EXPECT_EQ(ra.failover_drops, rb.failover_drops);
    EXPECT_EQ(ra.ctrl_updates_dropped, rb.ctrl_updates_dropped);
    EXPECT_DOUBLE_EQ(ra.delivered_gbps, rb.delivered_gbps);
    EXPECT_DOUBLE_EQ(ra.p99_us, rb.p99_us);
    EXPECT_DOUBLE_EQ(ra.final_fwd_th_gbps, rb.final_fwd_th_gbps);
}

// --- SNIC crash: divert to host with forced wake ---------------------

TEST(FaultDrill, SnicCrashDivertsEverythingToHost)
{
    // At 20 Gbps HAL keeps the whole load on the SNIC and the host
    // sleeps. When the SNIC fail-stops the watchdog must pin Fwd_Th
    // to zero and wake the host cores; the host (80 Gbps NAT
    // ceiling) then absorbs the full offered rate.
    EventQueue eq;
    auto cfg = cfgFor(Mode::Hal);
    cfg.faults.processorFailure(fault::FaultTarget::Snic, 50 * kMs);
    ServerSystem sys(eq, cfg);

    std::uint64_t host_at_52 = 0, host_at_70 = 0;
    eq.scheduleFn(
        [&] { host_at_52 = sys.hostProcessor()->processedBytes(); },
        52 * kMs);
    eq.scheduleFn(
        [&] { host_at_70 = sys.hostProcessor()->processedBytes(); },
        70 * kMs);

    const auto r = runConstant(sys, 20.0);

    EXPECT_EQ(r.faults_injected, 1u);
    EXPECT_GE(r.failovers, 1u);
    EXPECT_EQ(sys.watchdog()->state(), HealthState::SnicDown);
    EXPECT_DOUBLE_EQ(sys.director()->fwdThGbps(), 0.0);

    const double host_gbps = gbps(host_at_70 - host_at_52, 18 * kMs);
    EXPECT_NEAR(host_gbps, 20.0, 2.0)
        << "host must absorb the diverted stream";
}

// --- control-channel faults ------------------------------------------

TEST(FaultDrill, ControlLossTriggersFailsafeThenRecovers)
{
    // Total LBP->FPGA loss for 10 ms: no updates, no heartbeats. The
    // staleness bound (1 ms) trips, the director falls back to the
    // failsafe threshold, and once the channel heals the heartbeats
    // bring the watchdog back to Normal.
    EventQueue eq;
    auto cfg = cfgFor(Mode::Hal);
    cfg.faults.controlLoss(1.0, 40 * kMs, 10 * kMs);
    ServerSystem sys(eq, cfg);
    const auto r = runConstant(sys, 30.0);

    EXPECT_EQ(r.faults_injected, 1u);
    EXPECT_EQ(r.faults_reverted, 1u);
    EXPECT_GE(r.failovers, 1u);
    EXPECT_GE(r.recoveries, 1u);
    EXPECT_GT(r.ctrl_updates_dropped, 0u);
    EXPECT_EQ(sys.watchdog()->state(), HealthState::Normal);
    EXPECT_GT(r.time_to_recover_us, 0.0);
    EXPECT_GT(r.degraded_us, 0.0);
}

TEST(FaultDrill, LbpStallDetectedAndRecovered)
{
    EventQueue eq;
    auto cfg = cfgFor(Mode::Hal);
    cfg.faults.lbpStall(40 * kMs, 20 * kMs);
    ServerSystem sys(eq, cfg);
    const auto r = runConstant(sys, 30.0);

    EXPECT_EQ(r.faults_injected, 1u);
    EXPECT_GE(r.failovers, 1u);
    EXPECT_GE(r.recoveries, 1u);
    EXPECT_EQ(sys.watchdog()->state(), HealthState::Normal);
    // Degraded for roughly the stall minus the staleness bound.
    EXPECT_GT(r.degraded_us, 10e3);
}

TEST(FaultDrill, ControlDelayAloneStaysHealthy)
{
    // Updates arrive 300 us late — stale but within the staleness
    // bound, so no failover and no lost traffic.
    EventQueue eq;
    auto cfg = cfgFor(Mode::Hal);
    cfg.faults.controlDelay(300 * kUs, 30 * kMs, 40 * kMs);
    ServerSystem sys(eq, cfg);
    const auto r = runConstant(sys, 30.0);

    EXPECT_EQ(r.faults_injected, 1u);
    EXPECT_EQ(r.failovers, 0u);
    EXPECT_EQ(r.drops, 0u);
}

// --- accelerator failure: software fallback --------------------------

TEST(FaultDrill, AccelFailureFallsBackToSoftware)
{
    // Compression runs on the SNIC's accelerator (~45 Gbps on BF-2).
    // When it dies the feed cores take over in software at a small
    // fraction of that, so delivered throughput collapses but the
    // system keeps answering.
    EventQueue eq1, eq2;
    auto healthy_cfg = cfgFor(Mode::SnicOnly, funcs::FunctionId::Compress);
    auto faulty_cfg = healthy_cfg;
    faulty_cfg.faults.accelFailure(fault::FaultTarget::Snic, 30 * kMs);

    ServerSystem healthy(eq1, healthy_cfg), faulty(eq2, faulty_cfg);
    const auto rh = runConstant(healthy, 30.0, 20 * kMs, 40 * kMs);

    // The run-end cleanup repairs even permanent faults, so sample
    // the degraded flag while the fault is live.
    bool degraded_at_50 = false;
    eq2.scheduleFn(
        [&] { degraded_at_50 = faulty.snicProcessor()->accelDegraded(); },
        50 * kMs);
    const auto rf = runConstant(faulty, 30.0, 20 * kMs, 40 * kMs);

    EXPECT_EQ(rf.faults_injected, 1u);
    EXPECT_TRUE(degraded_at_50);
    EXPECT_GT(rf.responses, 0u) << "software fallback keeps serving";
    EXPECT_LT(rf.delivered_gbps, 0.6 * rh.delivered_gbps);
    // The dead accelerator block draws no power.
    EXPECT_LT(rf.dynamic_power_w, rh.dynamic_power_w);
}

TEST(FaultDrill, AccelFaultSkippedOnCpuFunction)
{
    // NAT runs on the SNIC CPU cores; an accelerator-failure event
    // has no target and must be counted as skipped, not applied.
    EventQueue eq;
    auto cfg = cfgFor(Mode::SnicOnly, funcs::FunctionId::Nat);
    cfg.faults.accelFailure(fault::FaultTarget::Snic, 30 * kMs);
    ServerSystem sys(eq, cfg);
    const auto r = runConstant(sys, 20.0);
    EXPECT_EQ(r.faults_injected, 0u);
    EXPECT_EQ(r.drops, 0u);
}

// --- link faults ------------------------------------------------------

TEST(FaultDrill, LinkLossBurstIsAccounted)
{
    EventQueue eq;
    auto cfg = cfgFor(Mode::HostOnly);
    cfg.faults.linkLossBurst(fault::FaultTarget::ClientLink, 0.5,
                             30 * kMs, 20 * kMs);
    ServerSystem sys(eq, cfg);
    const auto r = runConstant(sys, 20.0);

    EXPECT_EQ(r.faults_injected, 1u);
    EXPECT_EQ(r.faults_reverted, 1u);
    EXPECT_GT(sys.clientLink()->faultLost(), 0u);
    EXPECT_EQ(sys.clientLink()->corrupted(), 0u);
    EXPECT_GT(r.drops, 0u) << "fault losses must appear in drops";
    EXPECT_LT(r.responses, r.sent);
    // Roughly half of 20 ms of traffic at 20 Gbps is lost.
    const double loss = r.lossFraction();
    EXPECT_GT(loss, 0.05);
    EXPECT_LT(loss, 0.25);
}

TEST(FaultDrill, ReturnLinkCorruptionDropsResponses)
{
    EventQueue eq;
    auto cfg = cfgFor(Mode::HostOnly);
    cfg.faults.linkCorruption(fault::FaultTarget::ReturnLink, 0.25,
                              30 * kMs, 20 * kMs);
    ServerSystem sys(eq, cfg);
    const auto r = runConstant(sys, 20.0);

    EXPECT_EQ(r.faults_injected, 1u);
    EXPECT_GT(sys.returnLink()->corrupted(), 0u);
    EXPECT_LT(r.responses, r.sent);
}

// --- core-level faults ------------------------------------------------

TEST(FaultDrill, CoreStallBacksUpThenDrains)
{
    // All SNIC cores hang for 5 ms at a rate the ring cannot absorb:
    // tail-drops during the stall, full-rate service after it.
    EventQueue eq;
    auto cfg = cfgFor(Mode::SnicOnly);
    cfg.faults.coreStall(fault::FaultTarget::Snic, fault::kAllCores,
                         40 * kMs, 5 * kMs);
    ServerSystem sys(eq, cfg);
    const auto r = runConstant(sys, 20.0);

    EXPECT_EQ(r.faults_injected, 1u);
    EXPECT_EQ(r.faults_reverted, 1u);
    EXPECT_EQ(sys.snicProcessor()->aliveCores(),
              sys.snicProcessor()->config().cores);
    EXPECT_GT(r.drops, 0u) << "stalled rings must tail-drop";
    EXPECT_GT(r.responses, 0u) << "service resumes after the stall";
}

TEST(FaultDrill, SingleCoreStallDegradesButServes)
{
    EventQueue eq;
    auto cfg = cfgFor(Mode::SnicOnly);
    cfg.faults.coreStall(fault::FaultTarget::Snic, 0, 30 * kMs);
    ServerSystem sys(eq, cfg);

    unsigned alive_at_50 = 0;
    eq.scheduleFn(
        [&] { alive_at_50 = sys.snicProcessor()->aliveCores(); },
        50 * kMs);
    const auto r = runConstant(sys, 10.0);

    EXPECT_EQ(r.faults_injected, 1u);
    EXPECT_EQ(alive_at_50, sys.snicProcessor()->config().cores - 1);
    EXPECT_GT(r.responses, 0u);
}

TEST(FaultDrill, SlowdownThrottlesThroughput)
{
    EventQueue eq1, eq2;
    auto healthy_cfg = cfgFor(Mode::SnicOnly);
    auto slow_cfg = healthy_cfg;
    slow_cfg.faults.coreSlowdown(fault::FaultTarget::Snic, 0.25,
                                 20 * kMs);
    ServerSystem healthy(eq1, healthy_cfg), slow(eq2, slow_cfg);
    const auto rh = runConstant(healthy, 38.0);
    const auto rs = runConstant(slow, 38.0);

    EXPECT_EQ(rs.faults_injected, 1u);
    EXPECT_LT(rs.delivered_gbps, 0.5 * rh.delivered_gbps)
        << "quarter-speed cores cannot sustain the near-ceiling rate";
}

// --- transient host blip: full failover round trip --------------------

TEST(FaultDrill, TransientHostBlipRecoversWithinWatchdogWindow)
{
    EventQueue eq;
    auto cfg = cfgFor(Mode::Hal);
    cfg.faults.processorFailure(fault::FaultTarget::Host, 40 * kMs,
                                15 * kMs);
    ServerSystem sys(eq, cfg);
    const auto r = runConstant(sys, 60.0);

    EXPECT_EQ(r.faults_injected, 1u);
    EXPECT_EQ(r.faults_reverted, 1u);
    EXPECT_GE(r.failovers, 1u);
    EXPECT_GE(r.recoveries, 1u);
    EXPECT_EQ(sys.watchdog()->state(), HealthState::Normal);
    // Detection + recovery both bounded by a few watchdog epochs.
    EXPECT_LE(r.time_to_recover_us, 16e3);
    EXPECT_GT(r.host_frames, 0u)
        << "host serves again after the blip";
}

// --- satellite: same-tick fault events fire in plan order -------------

TEST(FaultInjector, SameTickEventsFireInPlanOrder)
{
    EventQueue eq;
    std::vector<std::string> log;
    fault::FaultHooks fh;
    fh.control_impair = [&log](double loss, Tick, Rng *) {
        log.push_back("impair " + std::to_string(loss).substr(0, 4));
    };
    fh.control_restore = [&log] { log.push_back("restore"); };

    // Three events colliding at t = 2 ms: the first event's revert
    // plus two applies. The contract is plan order — the order the
    // plan lists them, each event's apply before its own revert — not
    // whatever the event heap does with same-tick ties.
    fault::FaultPlan plan;
    plan.controlLoss(0.25, 1 * kMs, 1 * kMs); // reverts at 2 ms
    plan.controlLoss(0.50, 2 * kMs, 1 * kMs); // applies at 2 ms
    plan.controlLoss(0.75, 2 * kMs, 2 * kMs); // applies at 2 ms

    fault::FaultInjector inj(eq, plan, std::move(fh));
    inj.start(eq.now());
    eq.runUntil(10 * kMs);

    ASSERT_EQ(log.size(), 6u);
    EXPECT_EQ(log[0], "impair 0.25"); // t = 1 ms
    EXPECT_EQ(log[1], "restore");     // t = 2 ms: revert of event 0...
    EXPECT_EQ(log[2], "impair 0.50"); // ...then applies in plan order
    EXPECT_EQ(log[3], "impair 0.75");
    EXPECT_EQ(log[4], "restore");     // t = 3 ms
    EXPECT_EQ(log[5], "restore");     // t = 4 ms
    EXPECT_EQ(inj.injected(), 3u);
    EXPECT_EQ(inj.reverted(), 3u);
    EXPECT_EQ(inj.active(), 0u);
}

TEST(FaultInjector, SameTickOrderSurvivesReversedPlanInsertion)
{
    // The same two colliding applies inserted in the opposite order
    // must fire in the opposite order: the plan is the contract.
    for (const bool reversed : {false, true}) {
        EventQueue eq;
        std::vector<double> fired;
        fault::FaultHooks fh;
        fh.control_impair = [&fired](double loss, Tick, Rng *) {
            fired.push_back(loss);
        };
        fh.control_restore = [] {};

        fault::FaultPlan plan;
        if (reversed) {
            plan.controlLoss(0.75, 5 * kMs, 1 * kMs);
            plan.controlLoss(0.25, 5 * kMs, 1 * kMs);
        } else {
            plan.controlLoss(0.25, 5 * kMs, 1 * kMs);
            plan.controlLoss(0.75, 5 * kMs, 1 * kMs);
        }

        fault::FaultInjector inj(eq, plan, std::move(fh));
        inj.start(eq.now());
        eq.runUntil(10 * kMs);

        ASSERT_EQ(fired.size(), 2u);
        EXPECT_EQ(fired[0], reversed ? 0.75 : 0.25);
        EXPECT_EQ(fired[1], reversed ? 0.25 : 0.75);
    }
}

TEST(FaultInjector, FleetKindsSkippedWithoutFleetHooks)
{
    // A fleet plan running against a single-server hook set counts as
    // skipped, not an error — same contract as absent processors.
    EventQueue eq;
    fault::FaultPlan plan;
    plan.backendCrash(0, 1 * kMs);
    plan.backendStall(1, 1 * kMs, 1 * kMs);
    plan.probeLoss(0.5, 1 * kMs, 1 * kMs);
    fault::FaultInjector inj(eq, plan, fault::FaultHooks{});
    inj.start(eq.now());
    eq.runUntil(5 * kMs);
    EXPECT_EQ(inj.injected(), 0u);
    EXPECT_EQ(inj.skipped(), 3u);
}
