/**
 * @file
 * FixedMap: behaviour against std::unordered_map as a reference model
 * under randomized churn, plus growth and deletion-cluster cases.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>

#include "alg/fixed_map.hh"
#include "sim/rng.hh"

using halsim::Rng;
using halsim::alg::FixedMap;

TEST(FixedMap, PutFindErase)
{
    FixedMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.put(5, 50));
    EXPECT_FALSE(m.put(5, 55)) << "overwrite is not an insert";
    ASSERT_NE(m.find(5), nullptr);
    EXPECT_EQ(*m.find(5), 55);
    EXPECT_EQ(m.find(6), nullptr);
    EXPECT_TRUE(m.erase(5));
    EXPECT_FALSE(m.erase(5));
    EXPECT_TRUE(m.empty());
}

TEST(FixedMap, GrowthPreservesEntries)
{
    FixedMap<std::uint64_t, std::uint64_t> m(16);
    for (std::uint64_t i = 0; i < 10000; ++i)
        m.put(i, i * 3);
    EXPECT_EQ(m.size(), 10000u);
    for (std::uint64_t i = 0; i < 10000; ++i) {
        ASSERT_NE(m.find(i), nullptr) << i;
        EXPECT_EQ(*m.find(i), i * 3);
    }
}

TEST(FixedMap, StringKeys)
{
    FixedMap<std::string, int> m;
    m.put("alpha", 1);
    m.put("beta", 2);
    EXPECT_EQ(*m.find("alpha"), 1);
    EXPECT_TRUE(m.erase("alpha"));
    EXPECT_EQ(m.find("alpha"), nullptr);
    EXPECT_EQ(*m.find("beta"), 2);
}

TEST(FixedMap, BackwardShiftDeletionKeepsClusterReachable)
{
    // Build a collision cluster, delete from the middle, and verify
    // the rest are still reachable (would fail with naive deletion).
    FixedMap<std::uint64_t, int> m(64);
    for (std::uint64_t i = 0; i < 40; ++i)
        m.put(i, static_cast<int>(i));
    for (std::uint64_t i = 0; i < 40; i += 3)
        EXPECT_TRUE(m.erase(i));
    for (std::uint64_t i = 0; i < 40; ++i) {
        if (i % 3 == 0) {
            EXPECT_EQ(m.find(i), nullptr) << i;
        } else {
            ASSERT_NE(m.find(i), nullptr) << i;
            EXPECT_EQ(*m.find(i), static_cast<int>(i));
        }
    }
}

TEST(FixedMap, RandomChurnAgainstReference)
{
    Rng rng(17);
    FixedMap<std::uint32_t, std::uint32_t> m;
    std::unordered_map<std::uint32_t, std::uint32_t> ref;
    for (int op = 0; op < 200000; ++op) {
        const auto key = static_cast<std::uint32_t>(rng.uniformInt(5000));
        const double action = rng.uniform();
        if (action < 0.5) {
            const auto val = static_cast<std::uint32_t>(rng.next());
            m.put(key, val);
            ref[key] = val;
        } else if (action < 0.8) {
            const auto *got = m.find(key);
            const auto it = ref.find(key);
            if (it == ref.end()) {
                EXPECT_EQ(got, nullptr);
            } else {
                ASSERT_NE(got, nullptr);
                EXPECT_EQ(*got, it->second);
            }
        } else {
            EXPECT_EQ(m.erase(key), ref.erase(key) > 0);
        }
    }
    EXPECT_EQ(m.size(), ref.size());
    std::size_t visited = 0;
    m.forEach([&](const std::uint32_t &k, std::uint32_t &v) {
        ++visited;
        auto it = ref.find(k);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(v, it->second);
    });
    EXPECT_EQ(visited, ref.size());
}

TEST(FixedMap, ClearEmptiesEverything)
{
    FixedMap<int, int> m;
    for (int i = 0; i < 100; ++i)
        m.put(i, i);
    m.clear();
    EXPECT_TRUE(m.empty());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(m.find(i), nullptr);
}
