/**
 * @file
 * Unit coverage for the batched hot-path primitives and the
 * time-parallel building blocks: PacketBatch (SoA burst container),
 * SpscMailbox (cross-wheel edge buffer), scheduleBatch coalescing,
 * reserved-key ordering, and WheelRunner's window-barrier protocol on
 * a synthetic two-wheel system. The end-to-end bit-identity bars live
 * in test_determinism; these pin down the pieces in isolation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.hh"
#include "net/packet_batch.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/mailbox.hh"
#include "sim/wheels.hh"

using namespace halsim;

namespace {

net::PacketPtr
mkPkt(std::size_t bytes, std::uint8_t tag = 0)
{
    std::vector<std::uint8_t> frame(bytes, tag);
    return net::PacketPtr(new net::Packet(std::move(frame)));
}

} // namespace

// ---- PacketBatch ---------------------------------------------------

TEST(PacketBatch, AppendTakeFrontPreservesOrder)
{
    net::PacketBatch b;
    for (std::uint8_t i = 0; i < 8; ++i)
        b.append(mkPkt(64 + i, i));
    EXPECT_EQ(b.size(), 8u);
    EXPECT_EQ(b.totalBytes(), 8u * 64 + (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
    for (std::uint8_t i = 0; i < 8; ++i) {
        auto p = b.takeFront();
        EXPECT_EQ(p->size(), 64u + i);
        EXPECT_EQ(p->data()[0], i);
    }
    EXPECT_TRUE(b.empty());
}

TEST(PacketBatch, TakeFrontThenAppendKeepsSizesAligned)
{
    // The head cursor means entry i lives at slot head_+i; sizeOf and
    // operator[] must stay in step after front drains.
    net::PacketBatch b;
    for (std::uint8_t i = 0; i < 4; ++i)
        b.append(mkPkt(100 + i, i));
    (void)b.takeFront();
    (void)b.takeFront();
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b.sizeOf(0), 102u);
    EXPECT_EQ(b.sizeOf(1), 103u);
    EXPECT_EQ(b[0]->data()[0], 2);
    EXPECT_EQ(b.sizes().size(), 2u);
    EXPECT_EQ(b.packets()[1]->data()[0], 3);
}

TEST(PacketBatch, SplitKeepsOrderOnBothSides)
{
    net::PacketBatch b;
    for (std::uint8_t i = 0; i < 6; ++i)
        b.append(mkPkt(64, i));
    net::PacketBatch rest = b.split(2);
    ASSERT_EQ(b.size(), 2u);
    ASSERT_EQ(rest.size(), 4u);
    EXPECT_EQ(b[0]->data()[0], 0);
    EXPECT_EQ(b[1]->data()[0], 1);
    for (std::uint8_t i = 0; i < 4; ++i)
        EXPECT_EQ(rest[i]->data()[0], 2 + i);
}

TEST(PacketBatch, MergeAppendsAndEmptiesSource)
{
    net::PacketBatch a, b;
    a.append(mkPkt(64, 1));
    b.append(mkPkt(64, 2));
    b.append(mkPkt(64, 3));
    a.merge(std::move(b));
    EXPECT_TRUE(b.empty());
    ASSERT_EQ(a.size(), 3u);
    for (std::uint8_t i = 0; i < 3; ++i)
        EXPECT_EQ(a[i]->data()[0], 1 + i);
}

TEST(PacketBatch, MoveTransfersOwnership)
{
    net::PacketBatch a;
    a.append(mkPkt(128, 9));
    net::PacketBatch b(std::move(a));
    EXPECT_TRUE(a.empty());
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b.sizeOf(0), 128u);
}

// ---- SpscMailbox ---------------------------------------------------

TEST(SpscMailbox, FifoOrderAndWraparound)
{
    // Capacity 4, but push/pop interleaved far past it: the ring
    // indices must wrap cleanly.
    SpscMailbox<int, 4> box;
    EXPECT_TRUE(box.empty());
    int out = 0;
    EXPECT_FALSE(box.pop(out));
    for (int i = 0; i < 100; ++i) {
        box.push(2 * i);
        box.push(2 * i + 1);
        EXPECT_EQ(box.size(), 2u);
        ASSERT_TRUE(box.pop(out));
        EXPECT_EQ(out, 2 * i);
        ASSERT_TRUE(box.pop(out));
        EXPECT_EQ(out, 2 * i + 1);
    }
    EXPECT_TRUE(box.empty());
}

TEST(SpscMailbox, PeekPopFrontMatchesPop)
{
    SpscMailbox<std::string, 8> box;
    box.push("a");
    box.push("b");
    ASSERT_NE(box.peek(), nullptr);
    EXPECT_EQ(*box.peek(), "a");
    box.popFront();
    ASSERT_NE(box.peek(), nullptr);
    EXPECT_EQ(*box.peek(), "b");
    box.popFront();
    EXPECT_EQ(box.peek(), nullptr);
    EXPECT_TRUE(box.empty());
}

// ---- scheduleBatch / reserved keys ---------------------------------

TEST(EventQueueBatch, CoalescedCallablesRunInSubmissionOrder)
{
    for (bool batching : {true, false}) {
        EventQueue eq;
        eq.setBatchingEnabled(batching);
        std::vector<int> order;
        // More than one batch's worth at one tick, plus a later tick
        // interleaved in submission order.
        for (int i = 0; i < 100; ++i)
            eq.scheduleBatch([&order, i] { order.push_back(i); }, 10);
        eq.scheduleBatch([&order] { order.push_back(1000); }, 20);
        for (int i = 100; i < 120; ++i)
            eq.scheduleBatch([&order, i] { order.push_back(i); }, 10);
        eq.run();
        ASSERT_EQ(order.size(), 121u) << "batching=" << batching;
        for (int i = 0; i < 120; ++i)
            EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
        EXPECT_EQ(order.back(), 1000);
        EXPECT_EQ(eq.now(), Tick{20});
    }
}

TEST(EventQueueBatch, ReservedKeyKeepsReservationOrder)
{
    // A key reserved early but scheduled late must still run where
    // the reservation point dictates among same-tick events.
    EventQueue eq;
    std::vector<int> order;
    const std::uint64_t early = eq.reserveKey();
    eq.scheduleFn([&order] { order.push_back(2); }, 50);
    CallbackEvent first([&order] { order.push_back(1); });
    eq.scheduleKeyed(&first, 50, early);
    eq.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

TEST(EventQueueBatch, RunUntilClampsTimeOnDrain)
{
    // Wheel clocks must never lag the window edge even when a wheel
    // has nothing to do — the barrier protocol depends on it.
    EventQueue eq;
    eq.scheduleFn([] {}, 10);
    EXPECT_EQ(eq.runUntil(100), 1u);
    EXPECT_EQ(eq.now(), Tick{100});
    EXPECT_EQ(eq.runUntil(250), 0u);
    EXPECT_EQ(eq.now(), Tick{250});
}

// ---- WheelRunner ---------------------------------------------------

namespace {

/**
 * Synthetic two-wheel system: wheel 0 emits one message per period
 * into an SPSC mailbox; wheel 1 ingests and executes them with a
 * fixed edge latency. Mirrors the WheelEdge mechanics without packets.
 */
struct TwoWheels
{
    static constexpr Tick kLat = 40;

    struct Msg
    {
        Tick when = 0;
        std::uint64_t key = 0;
        int value = 0;
    };

    EventQueue a, b;
    SpscMailbox<Msg, 256> box;
    std::vector<std::pair<Tick, int>> got; // (tick, value) on wheel 1

    TwoWheels()
    {
        a.setBand(1);
        b.setBand(2);
    }

    /** Sender-side plan: one message per period, values 0..n-1. */
    void
    emit(int n, Tick period)
    {
        for (int i = 0; i < n; ++i)
            a.scheduleFn(
                [this, i] {
                    box.push({a.now() + kLat, a.reserveKey(), i});
                },
                period * (i + 1));
    }

    std::vector<WheelRunner::Wheel>
    wheels()
    {
        std::vector<WheelRunner::Wheel> ws(2);
        ws[0].eq = &a;
        ws[1].eq = &b;
        ws[1].ingest = [this](Tick before) {
            while (const Msg *m = box.peek()) {
                if (m->when >= before)
                    break;
                const Msg msg = *m;
                box.popFront();
                rx_.push_back(
                    std::make_unique<CallbackEvent>([this, msg] {
                        got.emplace_back(b.now(), msg.value);
                    }));
                b.scheduleKeyed(rx_.back().get(), msg.when, msg.key);
            }
        };
        ws[1].pendingTick = [this]() -> Tick {
            const Msg *m = box.peek();
            return m != nullptr ? m->when : kTickNever;
        };
        return ws;
    }

  private:
    // Receiver-side events live as long as the harness; the queue
    // does not own externally scheduled events.
    std::vector<std::unique_ptr<CallbackEvent>> rx_;
};

} // namespace

TEST(WheelRunner, DeliversAcrossEdgeDeterministically)
{
    auto runIt = [](unsigned threads) {
        TwoWheels tw;
        tw.emit(20, 25);
        WheelRunner runner(tw.wheels(), TwoWheels::kLat, threads);
        EXPECT_EQ(runner.threaded(), threads >= 2);
        runner.runUntil(5000);
        EXPECT_EQ(tw.a.now(), Tick{5000});
        EXPECT_EQ(tw.b.now(), Tick{5000});
        return tw.got;
    };
    const auto serial = runIt(1);
    const auto threaded = runIt(2);
    ASSERT_EQ(serial.size(), 20u);
    // Emission i fires at 25*(i+1) and lands kLat later.
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].first,
                  Tick{25 * (i + 1) + TwoWheels::kLat});
        EXPECT_EQ(serial[i].second, static_cast<int>(i));
    }
    EXPECT_EQ(serial, threaded);
}

TEST(WheelRunner, GlobalCallbackFiresBetweenWindows)
{
    for (unsigned threads : {1u, 3u}) {
        TwoWheels tw;
        tw.emit(10, 30);
        WheelRunner runner(tw.wheels(), TwoWheels::kLat, threads);
        std::vector<Tick> fired;
        Tick next = 100;
        runner.setGlobalCallback(next, [&]() -> Tick {
            // Runs while both wheels are quiesced: neither clock may
            // have passed the fire tick yet.
            fired.push_back(next);
            EXPECT_LE(tw.a.now(), next);
            EXPECT_LE(tw.b.now(), next);
            next += 100;
            return next <= 400 ? next : kTickNever;
        });
        runner.runUntil(1000);
        EXPECT_EQ(fired, (std::vector<Tick>{100, 200, 300, 400}))
            << "threads=" << threads;
        EXPECT_EQ(tw.a.now(), Tick{1000});
        EXPECT_EQ(tw.b.now(), Tick{1000});
    }
}

TEST(WheelRunner, RunUntilCountsExecutedEvents)
{
    TwoWheels tw;
    tw.emit(5, 50);
    WheelRunner runner(tw.wheels(), TwoWheels::kLat, 1);
    const std::uint64_t n = runner.runUntil(2000);
    // 5 sender events + 5 receiver events.
    EXPECT_EQ(n, 10u);
    EXPECT_EQ(tw.got.size(), 5u);
}
