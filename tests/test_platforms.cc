/**
 * @file
 * Platform variants and cross-cutting system properties: BF-3 vs
 * Sapphire Rapids (Fig. 10 shapes), small-packet behaviour (§III-A),
 * run determinism, and the REM ruleset asymmetry end to end.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/server.hh"

using namespace halsim;
using namespace halsim::core;

namespace {

RunResult
runConstant(ServerConfig cfg, double rate, Tick measure = 60 * kMs)
{
    EventQueue eq;
    ServerSystem sys(eq, cfg);
    return sys.run(std::make_unique<net::ConstantRate>(rate), 10 * kMs,
                   measure);
}

} // namespace

TEST(Platforms, Bf3StillLosesToSprOnHeavyFunctions)
{
    // Fig. 10: BF-3 doubles BF-2's resources but SPR scales too; the
    // gap persists for the compute-heavy software functions.
    ServerConfig bf3;
    bf3.mode = Mode::SnicOnly;
    bf3.function = funcs::FunctionId::Knn;
    bf3.snic_platform = funcs::Platform::SnicBf3;
    bf3.snic_cores = 16;

    ServerConfig spr;
    spr.mode = Mode::HostOnly;
    spr.function = funcs::FunctionId::Knn;
    spr.host_platform = funcs::Platform::HostSpr;
    spr.host_cores = 16;

    const auto rb = runConstant(bf3, 100.0);
    const auto rs = runConstant(spr, 100.0);
    EXPECT_LT(rb.delivered_gbps, rs.delivered_gbps * 0.6)
        << "BF-3 KNN must stay far below SPR";
}

TEST(Platforms, LightFunctionsCappedByClientLink)
{
    // Fig. 10's caveat: Count/NAT look similar across BF-3 and SPR
    // only because the 100 Gbps client saturates first.
    ServerConfig bf3;
    bf3.mode = Mode::SnicOnly;
    bf3.function = funcs::FunctionId::Count;
    bf3.snic_platform = funcs::Platform::SnicBf3;
    bf3.snic_cores = 16;
    const auto rb = runConstant(bf3, 100.0);
    EXPECT_GT(rb.delivered_gbps, 90.0)
        << "BF-3 Count reaches the client cap";
}

TEST(Platforms, SmallPacketsCollapseSnicForwarding)
{
    // §III-A: 8 SNIC cores forward at line rate with MTU frames but
    // only ~40 Gbps with 64 B frames.
    ServerConfig cfg;
    cfg.mode = Mode::SnicOnly;
    cfg.function = funcs::FunctionId::DpdkFwd;

    cfg.frame_bytes = net::kMtuFrameBytes;
    const auto mtu = runConstant(cfg, 95.0);
    EXPECT_GT(mtu.delivered_gbps, 90.0);

    cfg.frame_bytes = net::kSmallFrameBytes;
    const auto small = runConstant(cfg, 95.0);
    EXPECT_NEAR(small.delivered_gbps, 40.0, 4.0);
}

TEST(Platforms, RemRulesetAsymmetryEndToEnd)
{
    // §III-A: host wins on teakettle, SNIC accel wins 19x on
    // snort_literals.
    ServerConfig host;
    host.mode = Mode::HostOnly;
    host.function = funcs::FunctionId::Rem;
    ServerConfig snic = host;
    snic.mode = Mode::SnicOnly;

    host.rem_ruleset = snic.rem_ruleset = alg::RulesetKind::Teakettle;
    EXPECT_GT(runConstant(host, 100.0).delivered_gbps,
              runConstant(snic, 100.0).delivered_gbps * 1.5);

    host.rem_ruleset = snic.rem_ruleset = alg::RulesetKind::SnortLiterals;
    const auto h = runConstant(host, 100.0);
    const auto s = runConstant(snic, 100.0);
    EXPECT_GT(s.delivered_gbps, h.delivered_gbps * 10.0);
}

TEST(Platforms, RunsAreDeterministic)
{
    // Identical configuration + seed => bit-identical metrics.
    auto once = [] {
        ServerConfig cfg;
        cfg.mode = Mode::Hal;
        cfg.function = funcs::FunctionId::Nat;
        cfg.seed = 99;
        EventQueue eq;
        ServerSystem sys(eq, cfg);
        return sys.run(net::makeTrace(net::TraceKind::Cache), 10 * kMs,
                       100 * kMs, 1 * kMs);
    };
    const auto a = once();
    const auto b = once();
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.responses, b.responses);
    EXPECT_EQ(a.snic_frames, b.snic_frames);
    EXPECT_EQ(a.host_frames, b.host_frames);
    EXPECT_DOUBLE_EQ(a.delivered_gbps, b.delivered_gbps);
    EXPECT_DOUBLE_EQ(a.p99_us, b.p99_us);
    EXPECT_DOUBLE_EQ(a.system_power_w, b.system_power_w);
}

TEST(Platforms, SeedChangesTraceRealization)
{
    auto once = [](std::uint64_t seed) {
        ServerConfig cfg;
        cfg.mode = Mode::Hal;
        cfg.function = funcs::FunctionId::Nat;
        cfg.seed = seed;
        EventQueue eq;
        ServerSystem sys(eq, cfg);
        return sys.run(net::makeTrace(net::TraceKind::Cache), 10 * kMs,
                       60 * kMs, 1 * kMs);
    };
    EXPECT_NE(once(1).sent, once(2).sent);
}

TEST(Platforms, AdaptiveStepConvergesAtLeastAsFast)
{
    // §V-B: the adaptive Step_Th extension should reach the SNIC's
    // sustainable threshold no slower than the fixed step.
    auto settle = [](bool adaptive) {
        ServerConfig cfg;
        cfg.mode = Mode::Hal;
        cfg.function = funcs::FunctionId::Nat;
        cfg.lbp.adaptive_step = adaptive;
        cfg.lbp.initial_fwd_gbps = 2.0;
        EventQueue eq;
        ServerSystem sys(eq, cfg);
        // Short run from a cold threshold: how much SNIC work got
        // done is a proxy for convergence speed.
        const auto r = sys.run(std::make_unique<net::ConstantRate>(60.0),
                               0, 30 * kMs);
        return r.snic_frames;
    };
    EXPECT_GE(static_cast<double>(settle(true)),
              static_cast<double>(settle(false)) * 0.9);
}

TEST(Platforms, FlowAffinityEndToEndConsistency)
{
    // Under flow-affinity splitting, every packet of a flow is
    // processed by the same processor — the property that keeps
    // stateful per-flow lookups local.
    ServerConfig cfg;
    cfg.mode = Mode::Hal;
    cfg.function = funcs::FunctionId::Count;
    cfg.split_mode = SplitMode::FlowAffinity;
    EventQueue eq;
    ServerSystem sys(eq, cfg);
    const auto r = runConstant(cfg, 70.0);
    EXPECT_GT(r.snic_frames, 0u);
    EXPECT_GT(r.host_frames, 0u);
}

TEST(Platforms, DvfsSavesIdlePowerWithoutLosingThroughput)
{
    // §VIII: DVFS trims the SNIC's dynamic watts at low rates but the
    // system-level saving is small (the SNIC is 0.5-2% of system
    // power), and the LBP keeps working.
    ServerConfig cfg;
    cfg.mode = Mode::Hal;
    cfg.function = funcs::FunctionId::Nat;

    cfg.power.snic_dvfs.enabled = false;
    const auto off = runConstant(cfg, 10.0);
    cfg.power.snic_dvfs.enabled = true;
    const auto on = runConstant(cfg, 10.0);

    EXPECT_NEAR(on.delivered_gbps, off.delivered_gbps, 0.5);
    EXPECT_LT(on.system_power_w, off.system_power_w);
    EXPECT_GT(on.system_power_w, off.system_power_w * 0.95)
        << "the saving must stay in the paper's ~2% regime";
}

TEST(Platforms, DvfsScalesUpUnderLoad)
{
    ServerConfig cfg;
    cfg.mode = Mode::SnicOnly;
    cfg.function = funcs::FunctionId::Nat;
    cfg.power.snic_dvfs.enabled = true;
    EventQueue eq;
    ServerSystem sys(eq, cfg);
    // Saturate: the governor must raise the frequency scale; sample
    // it mid-run via an event.
    double mid_scale = 0.0;
    eq.scheduleFn(
        [&] { mid_scale = sys.snicProcessor()->dvfsScale(); },
        60 * kMs);
    (void)sys.run(std::make_unique<net::ConstantRate>(80.0), 10 * kMs,
                  80 * kMs);
    EXPECT_GT(mid_scale, 0.9)
        << "saturated rings must drive the governor to full speed";
}

TEST(Platforms, DirectorBucketBoundsBurstIntoSnic)
{
    // After an idle stretch the token bucket may hold at most
    // bucket_depth_us worth of Fwd_Th; a line-rate burst must still
    // divert most packets instead of drowning the SNIC.
    ServerConfig cfg;
    cfg.mode = Mode::Hal;
    cfg.function = funcs::FunctionId::Nat;
    cfg.lbp.initial_fwd_gbps = 20.0;
    EventQueue eq;
    ServerSystem sys(eq, cfg);
    const auto r = sys.run(std::make_unique<net::ConstantRate>(100.0),
                           5 * kMs, 50 * kMs);
    EXPECT_GT(r.host_frames, r.snic_frames)
        << "at 100 Gbps most packets must go to the host";
    EXPECT_EQ(r.drops, 0u);
}
