/**
 * @file
 * Synthetic corpora and rulesets: determinism, size contracts, and
 * the statistical properties the REM/compression functions rely on.
 */

#include <gtest/gtest.h>

#include <set>

#include "alg/aho_corasick.hh"
#include "alg/corpus.hh"
#include "alg/deflate.hh"

using namespace halsim::alg;

TEST(Corpus, DeterministicForSeed)
{
    EXPECT_EQ(makeSilesiaLike(10000, 7), makeSilesiaLike(10000, 7));
    EXPECT_NE(makeSilesiaLike(10000, 7), makeSilesiaLike(10000, 8));
    EXPECT_EQ(makeRuleset(RulesetKind::Teakettle, 100, 3),
              makeRuleset(RulesetKind::Teakettle, 100, 3));
}

TEST(Corpus, ExactSizes)
{
    for (std::size_t n : {0u, 1u, 100u, 65536u})
        EXPECT_EQ(makeSilesiaLike(n, 1).size(), n);
    EXPECT_EQ(makeRuleset(RulesetKind::Teakettle, 2500).size(), 2500u);
    EXPECT_EQ(makeRuleset(RulesetKind::SnortLiterals, 500).size(), 500u);
}

TEST(Corpus, RulesetShapesDiffer)
{
    const auto tea = makeRuleset(RulesetKind::Teakettle, 200);
    const auto lite = makeRuleset(RulesetKind::SnortLiterals, 200);
    double tea_len = 0, lite_len = 0;
    for (const auto &r : tea)
        tea_len += static_cast<double>(r.size());
    for (const auto &r : lite)
        lite_len += static_cast<double>(r.size());
    // snort-style literals are substantially longer on average.
    EXPECT_GT(lite_len / 200.0, tea_len / 200.0 + 4.0);
}

TEST(Corpus, ScanStreamHitRateScales)
{
    const auto rules = makeRuleset(RulesetKind::SnortLiterals, 100);
    AhoCorasick ac(rules);
    const auto low = makeScanStream(1 << 17, rules, 0.01, 4);
    const auto high = makeScanStream(1 << 17, rules, 0.5, 4);
    EXPECT_GT(ac.countMatches(high), 5 * ac.countMatches(low));
}

TEST(Corpus, CompressibilityIsStableAcrossSeeds)
{
    // The compression function's service calibration presumes the
    // corpus compresses consistently; verify the ratio varies little.
    double min_ratio = 1e9, max_ratio = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto data = makeSilesiaLike(100000, seed);
        const auto comp = deflateCompress(data);
        const double ratio = static_cast<double>(data.size()) /
                             static_cast<double>(comp.size());
        min_ratio = std::min(min_ratio, ratio);
        max_ratio = std::max(max_ratio, ratio);
    }
    EXPECT_GT(min_ratio, 2.0);
    EXPECT_LT(max_ratio / min_ratio, 1.2);
}

TEST(Corpus, RulesetsAreMostlyDistinct)
{
    const auto rules = makeRuleset(RulesetKind::Teakettle, 2500);
    std::set<std::string> uniq(rules.begin(), rules.end());
    EXPECT_GT(uniq.size(), rules.size() * 9 / 10);
}
