/**
 * @file
 * Observability subsystem tests: stats-registry naming and lifecycle,
 * probe sampling, histogram quantile accuracy against an exact
 * reference, trace-ring overflow semantics, serialization smoke
 * checks, and an end-to-end Hal-mode integration run.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/server.hh"
#include "net/traffic.hh"
#include "obs/obs.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

using namespace halsim;
using namespace halsim::obs;

// --- registry naming ---------------------------------------------------

TEST(StatsRegistry, RegistersAndResolvesDottedPaths)
{
    StatsRegistry reg;
    Counter *c = reg.counter("server.snic.frames");
    Gauge *g = reg.gauge("server.hlb.fwd_th");
    ASSERT_NE(c, nullptr);
    ASSERT_NE(g, nullptr);

    c->inc(41);
    c->inc();
    g->set(35.5);

    EXPECT_EQ(reg.counterValue("server.snic.frames"), 42u);
    ASSERT_NE(reg.findGauge("server.hlb.fwd_th"), nullptr);
    EXPECT_DOUBLE_EQ(reg.findGauge("server.hlb.fwd_th")->value(), 35.5);
    EXPECT_EQ(reg.findCounter("no.such.path"), nullptr);
    EXPECT_EQ(reg.counterValue("no.such.path"), 0u);
}

TEST(StatsRegistry, RejectsInvalidPaths)
{
    StatsRegistry reg;
    EXPECT_THROW(reg.counter(""), std::invalid_argument);
    EXPECT_THROW(reg.counter("Server.frames"), std::invalid_argument);
    EXPECT_THROW(reg.counter("server..frames"), std::invalid_argument);
    EXPECT_THROW(reg.counter(".server"), std::invalid_argument);
    EXPECT_THROW(reg.counter("server."), std::invalid_argument);
    EXPECT_THROW(reg.counter("server.fra mes"), std::invalid_argument);
}

TEST(StatsRegistry, RejectsDuplicatePaths)
{
    StatsRegistry reg;
    reg.counter("a.b");
    EXPECT_THROW(reg.counter("a.b"), std::invalid_argument);
    EXPECT_THROW(reg.gauge("a.b"), std::invalid_argument);
    EXPECT_THROW(reg.probe("a.b", [] { return 0.0; }),
                 std::invalid_argument);
}

TEST(StatsRegistry, FnCounterReadsLazily)
{
    StatsRegistry reg;
    std::uint64_t live = 7;
    reg.fnCounter("live.value", [&live] { return live; });
    EXPECT_EQ(reg.counterValue("live.value"), 7u);
    live = 1000;
    EXPECT_EQ(reg.counterValue("live.value"), 1000u);
}

// --- probes and sampling ----------------------------------------------

TEST(StatsRegistry, ProbeSamplesIntoSummaryAndHistogram)
{
    StatsRegistry reg;
    double signal = 0.0;
    StatsRegistry::ProbeOptions opt;
    opt.series = true;
    opt.hist_lo = 0.1;
    opt.hist_hi = 100.0;
    reg.probe("sig", [&signal] { return signal; }, opt);

    for (int i = 1; i <= 4; ++i) {
        signal = static_cast<double>(i);
        reg.sampleProbes(static_cast<Tick>(i) * kMs);
    }

    const Accumulator *sum = reg.probeSummary("sig");
    ASSERT_NE(sum, nullptr);
    EXPECT_EQ(sum->count(), 4u);
    EXPECT_DOUBLE_EQ(sum->mean(), 2.5);
    EXPECT_DOUBLE_EQ(sum->min(), 1.0);
    EXPECT_DOUBLE_EQ(sum->max(), 4.0);

    const Histogram *hist = reg.probeHistogram("sig");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count(), 4u);
    EXPECT_EQ(reg.sampleEpochs(), 4u);

    // The opted-in series shows up in JSON as [tick, value] pairs.
    std::ostringstream os;
    reg.writeJson(os);
    const std::string want =
        "\"series\":[[" + std::to_string(1 * kMs) + ",1]";
    EXPECT_NE(os.str().find(want), std::string::npos) << os.str();
}

TEST(StatsRegistry, ResetAllZeroesOwnedStatsButNotFnCounters)
{
    StatsRegistry reg;
    Counter *c = reg.counter("c");
    std::uint64_t live = 5;
    reg.fnCounter("live", [&live] { return live; });
    double sig = 3.0;
    reg.probe("sig", [&sig] { return sig; });

    c->inc(10);
    reg.sampleProbes(1 * kMs);
    reg.resetAll();

    EXPECT_EQ(reg.counterValue("c"), 0u);
    EXPECT_EQ(reg.probeSummary("sig")->count(), 0u);
    EXPECT_EQ(reg.sampleEpochs(), 0u);
    EXPECT_EQ(reg.counterValue("live"), 5u);
}

// --- merge --------------------------------------------------------------

TEST(StatsRegistry, MergeFoldsSameShapeRegistries)
{
    StatsRegistry a, b;
    a.counter("n")->inc(3);
    b.counter("n")->inc(4);
    a.accumulator("acc")->sample(1.0);
    b.accumulator("acc")->sample(3.0);
    a.histogram("h", 1.0, 1e3, 32)->sample(10.0);
    b.histogram("h", 1.0, 1e3, 32)->sample(20.0);
    b.gauge("g")->set(9.0);
    a.gauge("g");

    a.merge(b);
    EXPECT_EQ(a.counterValue("n"), 7u);
    EXPECT_EQ(a.findAccumulator("acc")->count(), 2u);
    EXPECT_DOUBLE_EQ(a.findAccumulator("acc")->mean(), 2.0);
    EXPECT_EQ(a.findHistogram("h")->count(), 2u);
    EXPECT_DOUBLE_EQ(a.findGauge("g")->value(), 9.0);
}

TEST(StatsRegistry, MergeRejectsShapeMismatch)
{
    StatsRegistry a, b, c;
    a.counter("n");
    b.counter("m");
    EXPECT_THROW(a.merge(b), std::invalid_argument);
    c.gauge("n");
    EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Histogram, MergeRejectsBinningMismatch)
{
    Histogram a(1.0, 1e3, 32);
    Histogram b(1.0, 1e4, 32);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// --- histogram quantiles vs exact reference ---------------------------

TEST(Histogram, QuantilesTrackExactReference)
{
    // Deterministic skewed sample set: i^1.5 over three decades.
    std::vector<double> vals;
    Histogram h(1.0, 1e6, 64);
    for (int i = 1; i <= 2000; ++i) {
        const double v =
            static_cast<double>(i) * std::sqrt(static_cast<double>(i));
        vals.push_back(v);
        h.sample(v);
    }
    // vals is already sorted ascending.
    for (double q : {0.10, 0.50, 0.90, 0.99}) {
        const std::size_t idx = static_cast<std::size_t>(
            q * static_cast<double>(vals.size() - 1));
        const double exact = vals[idx];
        const double est = h.quantile(q);
        // 64 bins/decade => adjacent edges differ by ~3.7%; allow a
        // little extra for interpolation at the winning bin.
        EXPECT_NEAR(est, exact, exact * 0.06)
            << "q=" << q << " exact=" << exact << " est=" << est;
    }
    EXPECT_DOUBLE_EQ(h.quantile(0.0), h.minSample());
}

// --- deterministic number formatting -----------------------------------

TEST(JsonNumber, ShortestRoundTrip)
{
    EXPECT_EQ(jsonNumber(0.1), "0.1");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(0.0), "0");
    const double v = 1.0 / 3.0;
    EXPECT_EQ(std::strtod(jsonNumber(v).c_str(), nullptr), v);
}

// --- trace ring ---------------------------------------------------------

TEST(PacketTracer, RingOverflowKeepsNewestRecords)
{
    PacketTracer t(PacketTracer::Config{8, 1});
    for (std::uint64_t i = 0; i < 20; ++i)
        t.record(static_cast<Tick>(i) * kUs, i, TracePoint::Ingress, 0);

    EXPECT_EQ(t.recorded(), 20u);
    EXPECT_EQ(t.overwritten(), 12u);
    EXPECT_EQ(t.size(), 8u);
    EXPECT_EQ(t.capacity(), 8u);
    // Oldest retained record is #12, newest #19.
    EXPECT_EQ(t.at(0).pkt, 12u);
    EXPECT_EQ(t.at(7).pkt, 19u);
}

TEST(PacketTracer, SamplingFiltersByPacketId)
{
    PacketTracer t(PacketTracer::Config{16, 64});
    EXPECT_TRUE(t.wants(0));
    EXPECT_FALSE(t.wants(1));
    EXPECT_TRUE(t.wants(128));
    EXPECT_FALSE(t.wants(129));
}

TEST(PacketTracer, ChromeJsonSmoke)
{
    PacketTracer t(PacketTracer::Config{16, 1});
    t.setLaneName(2, "snic_ring");
    t.record(1500, 64, TracePoint::RingEnqueue, 2, 3);
    t.record(2 * kUs, 64, TracePoint::ServiceEnd, 3);

    std::ostringstream os;
    t.writeChromeJson(os, 7);
    const std::string doc = os.str();
    EXPECT_EQ(doc.find("{\"traceEvents\":["), 0u) << doc;
    EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(doc.find("\"snic_ring\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(doc.find("\"pid\":7"), std::string::npos);
    // 1500 ticks are a 0.0015 us sub-microsecond remainder (kUs ticks
    // per us), and whole-us ticks print without a fraction.
    EXPECT_NE(doc.find("\"ts\":0.001500"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"ts\":2,"), std::string::npos) << doc;
}

TEST(PacketTracer, TextOutputIsDeterministic)
{
    auto fill = [](PacketTracer &t) {
        t.record(10, 0, TracePoint::Ingress, 0);
        t.record(20, 0, TracePoint::RingEnqueue, 2, 5);
        t.record(30, 0, TracePoint::Drop, 4, 1);
    };
    PacketTracer a(PacketTracer::Config{8, 1});
    PacketTracer b(PacketTracer::Config{8, 1});
    fill(a);
    fill(b);
    std::ostringstream oa, ob;
    a.writeText(oa);
    b.writeText(ob);
    EXPECT_EQ(oa.str(), ob.str());
    EXPECT_NE(oa.str().find("ring_enqueue"), std::string::npos);
}

// --- end-to-end: Hal mode with obs on ----------------------------------

TEST(ObsIntegration, HalRunEmitsStatsTreeAndTrace)
{
    core::ServerConfig cfg = core::ServerConfig::halDefault();
    cfg.obs.stats = true;
    cfg.obs.trace = true;
    cfg.obs.trace_sample_every = 16;

    EventQueue eq;
    core::ServerSystem sys(eq, cfg);
    const core::RunResult r = sys.run(
        std::make_unique<net::ConstantRate>(60.0), 5 * kMs, 30 * kMs);
    EXPECT_GT(r.responses, 0u);

    ASSERT_NE(sys.obs(), nullptr);
    const StatsRegistry &reg = sys.obs()->registry();

    // Per-core busy fractions and per-ring occupancy histograms made
    // it into the tree and were sampled.
    const Accumulator *busy =
        reg.probeSummary("server.snic.core0.busy_frac");
    ASSERT_NE(busy, nullptr);
    EXPECT_GT(busy->count(), 0u);
    EXPECT_GT(busy->max(), 0.0);
    ASSERT_NE(reg.probeHistogram("server.snic.ring0.occupancy"),
              nullptr);
    ASSERT_NE(reg.probeSummary("server.hlb.director.fwd_th_gbps"),
              nullptr);

    // Component counters resolve through the registry.
    EXPECT_EQ(reg.counterValue("server.snic.frames"), r.snic_frames);
    EXPECT_GT(reg.counterValue("server.hlb.merger.total"), 0u);

    // The tracer captured sampled packet lifecycles.
    ASSERT_NE(sys.obs()->tracer(), nullptr);
    EXPECT_GT(sys.obs()->tracer()->recorded(), 0u);

    // Serialized forms are non-trivial.
    std::ostringstream json, text;
    sys.obs()->writeStatsJson(json);
    sys.obs()->writeStatsText(text);
    EXPECT_NE(json.str().find("\"busy_frac\""), std::string::npos);
    EXPECT_NE(text.str().find("server.snic.core0.busy_frac"),
              std::string::npos);
}
