/**
 * @file
 * Observability subsystem tests: stats-registry naming and lifecycle,
 * probe sampling, histogram quantile accuracy against an exact
 * reference, trace-ring overflow semantics, serialization smoke
 * checks, and an end-to-end Hal-mode integration run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/server.hh"
#include "net/traffic.hh"
#include "obs/energy.hh"
#include "obs/obs.hh"
#include "obs/registry.hh"
#include "obs/slo.hh"
#include "obs/trace.hh"
#include "proc/processor.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

using namespace halsim;
using namespace halsim::obs;

// --- registry naming ---------------------------------------------------

TEST(StatsRegistry, RegistersAndResolvesDottedPaths)
{
    StatsRegistry reg;
    Counter *c = reg.counter("server.snic.frames");
    Gauge *g = reg.gauge("server.hlb.fwd_th");
    ASSERT_NE(c, nullptr);
    ASSERT_NE(g, nullptr);

    c->inc(41);
    c->inc();
    g->set(35.5);

    EXPECT_EQ(reg.counterValue("server.snic.frames"), 42u);
    ASSERT_NE(reg.findGauge("server.hlb.fwd_th"), nullptr);
    EXPECT_DOUBLE_EQ(reg.findGauge("server.hlb.fwd_th")->value(), 35.5);
    EXPECT_EQ(reg.findCounter("no.such.path"), nullptr);
    EXPECT_EQ(reg.counterValue("no.such.path"), 0u);
}

TEST(StatsRegistry, RejectsInvalidPaths)
{
    StatsRegistry reg;
    EXPECT_THROW(reg.counter(""), std::invalid_argument);
    EXPECT_THROW(reg.counter("Server.frames"), std::invalid_argument);
    EXPECT_THROW(reg.counter("server..frames"), std::invalid_argument);
    EXPECT_THROW(reg.counter(".server"), std::invalid_argument);
    EXPECT_THROW(reg.counter("server."), std::invalid_argument);
    EXPECT_THROW(reg.counter("server.fra mes"), std::invalid_argument);
}

TEST(StatsRegistry, RejectsDuplicatePaths)
{
    StatsRegistry reg;
    reg.counter("a.b");
    EXPECT_THROW(reg.counter("a.b"), std::invalid_argument);
    EXPECT_THROW(reg.gauge("a.b"), std::invalid_argument);
    EXPECT_THROW(reg.probe("a.b", [] { return 0.0; }),
                 std::invalid_argument);
}

TEST(StatsRegistry, FnCounterReadsLazily)
{
    StatsRegistry reg;
    std::uint64_t live = 7;
    reg.fnCounter("live.value", [&live] { return live; });
    EXPECT_EQ(reg.counterValue("live.value"), 7u);
    live = 1000;
    EXPECT_EQ(reg.counterValue("live.value"), 1000u);
}

TEST(StatsRegistry, FnGaugeReadsLazily)
{
    StatsRegistry reg;
    double live = 1.5;
    reg.fnGauge("live.gauge", [&live] { return live; });
    EXPECT_DOUBLE_EQ(reg.gaugeValue("live.gauge"), 1.5);
    live = -7.25;
    EXPECT_DOUBLE_EQ(reg.gaugeValue("live.gauge"), -7.25);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("no.such.path"), 0.0);

    std::ostringstream os;
    reg.writeJson(os);
    EXPECT_NE(os.str().find("\"gauge\":-7.25"), std::string::npos)
        << os.str();
}

TEST(StatsRegistry, FnGaugeRejectsNullAndDuplicates)
{
    StatsRegistry reg;
    EXPECT_THROW(reg.fnGauge("g", nullptr), std::invalid_argument);
    reg.fnGauge("g", [] { return 0.0; });
    EXPECT_THROW(reg.fnGauge("g", [] { return 1.0; }),
                 std::invalid_argument);
}

TEST(StatsRegistry, GaugeValueResolvesPlainGaugesToo)
{
    StatsRegistry reg;
    reg.gauge("plain")->set(3.5);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("plain"), 3.5);
}

// --- probes and sampling ----------------------------------------------

TEST(StatsRegistry, ProbeSamplesIntoSummaryAndHistogram)
{
    StatsRegistry reg;
    double signal = 0.0;
    StatsRegistry::ProbeOptions opt;
    opt.series = true;
    opt.hist_lo = 0.1;
    opt.hist_hi = 100.0;
    reg.probe("sig", [&signal] { return signal; }, opt);

    for (int i = 1; i <= 4; ++i) {
        signal = static_cast<double>(i);
        reg.sampleProbes(static_cast<Tick>(i) * kMs);
    }

    const Accumulator *sum = reg.probeSummary("sig");
    ASSERT_NE(sum, nullptr);
    EXPECT_EQ(sum->count(), 4u);
    EXPECT_DOUBLE_EQ(sum->mean(), 2.5);
    EXPECT_DOUBLE_EQ(sum->min(), 1.0);
    EXPECT_DOUBLE_EQ(sum->max(), 4.0);

    const Histogram *hist = reg.probeHistogram("sig");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count(), 4u);
    EXPECT_EQ(reg.sampleEpochs(), 4u);

    // The opted-in series shows up in JSON as [tick, value] pairs.
    std::ostringstream os;
    reg.writeJson(os);
    const std::string want =
        "\"series\":[[" + std::to_string(1 * kMs) + ",1]";
    EXPECT_NE(os.str().find(want), std::string::npos) << os.str();
}

TEST(StatsRegistry, ResetAllZeroesOwnedStatsButNotFnCounters)
{
    StatsRegistry reg;
    Counter *c = reg.counter("c");
    std::uint64_t live = 5;
    reg.fnCounter("live", [&live] { return live; });
    double sig = 3.0;
    reg.probe("sig", [&sig] { return sig; });

    c->inc(10);
    reg.sampleProbes(1 * kMs);
    reg.resetAll();

    EXPECT_EQ(reg.counterValue("c"), 0u);
    EXPECT_EQ(reg.probeSummary("sig")->count(), 0u);
    EXPECT_EQ(reg.sampleEpochs(), 0u);
    EXPECT_EQ(reg.counterValue("live"), 5u);
}

// --- merge --------------------------------------------------------------

TEST(StatsRegistry, MergeFoldsSameShapeRegistries)
{
    StatsRegistry a, b;
    a.counter("n")->inc(3);
    b.counter("n")->inc(4);
    a.accumulator("acc")->sample(1.0);
    b.accumulator("acc")->sample(3.0);
    a.histogram("h", 1.0, 1e3, 32)->sample(10.0);
    b.histogram("h", 1.0, 1e3, 32)->sample(20.0);
    b.gauge("g")->set(9.0);
    a.gauge("g");

    a.merge(b);
    EXPECT_EQ(a.counterValue("n"), 7u);
    EXPECT_EQ(a.findAccumulator("acc")->count(), 2u);
    EXPECT_DOUBLE_EQ(a.findAccumulator("acc")->mean(), 2.0);
    EXPECT_EQ(a.findHistogram("h")->count(), 2u);
    EXPECT_DOUBLE_EQ(a.findGauge("g")->value(), 9.0);
}

TEST(StatsRegistry, MergeRejectsShapeMismatch)
{
    StatsRegistry a, b, c;
    a.counter("n");
    b.counter("m");
    EXPECT_THROW(a.merge(b), std::invalid_argument);
    c.gauge("n");
    EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Histogram, MergeRejectsBinningMismatch)
{
    Histogram a(1.0, 1e3, 32);
    Histogram b(1.0, 1e4, 32);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// --- histogram quantiles vs exact reference ---------------------------

TEST(Histogram, QuantilesTrackExactReference)
{
    // Deterministic skewed sample set: i^1.5 over three decades.
    std::vector<double> vals;
    Histogram h(1.0, 1e6, 64);
    for (int i = 1; i <= 2000; ++i) {
        const double v =
            static_cast<double>(i) * std::sqrt(static_cast<double>(i));
        vals.push_back(v);
        h.sample(v);
    }
    // vals is already sorted ascending.
    for (double q : {0.10, 0.50, 0.90, 0.99}) {
        const std::size_t idx = static_cast<std::size_t>(
            q * static_cast<double>(vals.size() - 1));
        const double exact = vals[idx];
        const double est = h.quantile(q);
        // 64 bins/decade => adjacent edges differ by ~3.7%; allow a
        // little extra for interpolation at the winning bin.
        EXPECT_NEAR(est, exact, exact * 0.06)
            << "q=" << q << " exact=" << exact << " est=" << est;
    }
    EXPECT_DOUBLE_EQ(h.quantile(0.0), h.minSample());
}

// --- deterministic number formatting -----------------------------------

TEST(JsonNumber, ShortestRoundTrip)
{
    EXPECT_EQ(jsonNumber(0.1), "0.1");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(0.0), "0");
    const double v = 1.0 / 3.0;
    EXPECT_EQ(std::strtod(jsonNumber(v).c_str(), nullptr), v);
}

// --- trace ring ---------------------------------------------------------

TEST(PacketTracer, RingOverflowKeepsNewestRecords)
{
    PacketTracer t(PacketTracer::Config{8, 1});
    for (std::uint64_t i = 0; i < 20; ++i)
        t.record(static_cast<Tick>(i) * kUs, i, TracePoint::Ingress, 0);

    EXPECT_EQ(t.recorded(), 20u);
    EXPECT_EQ(t.overwritten(), 12u);
    EXPECT_EQ(t.size(), 8u);
    EXPECT_EQ(t.capacity(), 8u);
    // Oldest retained record is #12, newest #19.
    EXPECT_EQ(t.at(0).pkt, 12u);
    EXPECT_EQ(t.at(7).pkt, 19u);
}

TEST(PacketTracer, SamplingFiltersByPacketId)
{
    PacketTracer t(PacketTracer::Config{16, 64});
    EXPECT_TRUE(t.wants(0));
    EXPECT_FALSE(t.wants(1));
    EXPECT_TRUE(t.wants(128));
    EXPECT_FALSE(t.wants(129));
}

TEST(PacketTracer, ChromeJsonSmoke)
{
    PacketTracer t(PacketTracer::Config{16, 1});
    t.setLaneName(2, "snic_ring");
    t.record(1500, 64, TracePoint::RingEnqueue, 2, 3);
    t.record(2 * kUs, 64, TracePoint::ServiceEnd, 3);

    std::ostringstream os;
    t.writeChromeJson(os, 7);
    const std::string doc = os.str();
    EXPECT_EQ(doc.find("{\"traceEvents\":["), 0u) << doc;
    EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(doc.find("\"snic_ring\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(doc.find("\"pid\":7"), std::string::npos);
    // 1500 ticks are a 0.0015 us sub-microsecond remainder (kUs ticks
    // per us), and whole-us ticks print without a fraction.
    EXPECT_NE(doc.find("\"ts\":0.001500"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"ts\":2,"), std::string::npos) << doc;
}

TEST(PacketTracer, TextOutputIsDeterministic)
{
    auto fill = [](PacketTracer &t) {
        t.record(10, 0, TracePoint::Ingress, 0);
        t.record(20, 0, TracePoint::RingEnqueue, 2, 5);
        t.record(30, 0, TracePoint::Drop, 4, 1);
    };
    PacketTracer a(PacketTracer::Config{8, 1});
    PacketTracer b(PacketTracer::Config{8, 1});
    fill(a);
    fill(b);
    std::ostringstream oa, ob;
    a.writeText(oa);
    b.writeText(ob);
    EXPECT_EQ(oa.str(), ob.str());
    EXPECT_NE(oa.str().find("ring_enqueue"), std::string::npos);
}

// --- end-to-end: Hal mode with obs on ----------------------------------

TEST(ObsIntegration, HalRunEmitsStatsTreeAndTrace)
{
    core::ServerConfig cfg = core::ServerConfig::halDefault();
    cfg.obs.stats = true;
    cfg.obs.trace = true;
    cfg.obs.trace_sample_every = 16;

    EventQueue eq;
    core::ServerSystem sys(eq, cfg);
    const core::RunResult r = sys.run(
        std::make_unique<net::ConstantRate>(60.0), 5 * kMs, 30 * kMs);
    EXPECT_GT(r.responses, 0u);

    ASSERT_NE(sys.obs(), nullptr);
    const StatsRegistry &reg = sys.obs()->registry();

    // Per-core busy fractions and per-ring occupancy histograms made
    // it into the tree and were sampled.
    const Accumulator *busy =
        reg.probeSummary("server.snic.core0.busy_frac");
    ASSERT_NE(busy, nullptr);
    EXPECT_GT(busy->count(), 0u);
    EXPECT_GT(busy->max(), 0.0);
    ASSERT_NE(reg.probeHistogram("server.snic.ring0.occupancy"),
              nullptr);
    ASSERT_NE(reg.probeSummary("server.hlb.director.fwd_th_gbps"),
              nullptr);

    // Component counters resolve through the registry.
    EXPECT_EQ(reg.counterValue("server.snic.frames"), r.snic_frames);
    EXPECT_GT(reg.counterValue("server.hlb.merger.total"), 0u);

    // The tracer captured sampled packet lifecycles.
    ASSERT_NE(sys.obs()->tracer(), nullptr);
    EXPECT_GT(sys.obs()->tracer()->recorded(), 0u);

    // Serialized forms are non-trivial.
    std::ostringstream json, text;
    sys.obs()->writeStatsJson(json);
    sys.obs()->writeStatsText(text);
    EXPECT_NE(json.str().find("\"busy_frac\""), std::string::npos);
    EXPECT_NE(text.str().find("server.snic.core0.busy_frac"),
              std::string::npos);
}

// --- power meter window edges ------------------------------------------

TEST(PowerMeter, AverageAndJoulesRespectResetBoundary)
{
    EventQueue eq;
    proc::PowerMeter pm(eq);

    // A contribution added and removed entirely before the reset must
    // not leak into the post-reset average or integral.
    pm.add(10.0);
    eq.runUntil(1 * kSec);
    pm.add(-10.0);
    pm.reset();
    eq.runUntil(2 * kSec);
    EXPECT_DOUBLE_EQ(pm.averageW(), 0.0);
    EXPECT_DOUBLE_EQ(pm.joules(), 0.0);

    // A level held across the reset persists (reset zeroes the
    // integral, not the current draw).
    pm.add(5.0);
    pm.reset();
    eq.runUntil(4 * kSec);
    EXPECT_DOUBLE_EQ(pm.currentW(), 5.0);
    EXPECT_DOUBLE_EQ(pm.averageW(), 5.0);
    EXPECT_DOUBLE_EQ(pm.joules(), 10.0);
}

TEST(PowerMeter, AverageIsTimeWeightedNotSampleWeighted)
{
    EventQueue eq;
    proc::PowerMeter pm(eq);
    pm.add(2.0);
    eq.runUntil(3 * kSec);   // 2 W for 3 s
    pm.add(6.0);
    eq.runUntil(4 * kSec);   // 8 W for 1 s
    EXPECT_DOUBLE_EQ(pm.joules(), 14.0);
    EXPECT_DOUBLE_EQ(pm.averageW(), 3.5);
}

// --- energy ledger ------------------------------------------------------

TEST(EnergyLedger, WindowsBySnapshotDifferencing)
{
    // Synthetic monotone integrator standing in for a power meter.
    double j = 5.0;
    EnergyLedger ledger;
    ledger.addDynamic(
        "dyn", [&j] { return j; }, [] { return 2.0; });
    ledger.addStatic("base", 10.0);

    ledger.beginWindow(1 * kSec);
    j = 9.0;   // 4 J accumulated inside the window
    ledger.endWindow(3 * kSec);

    EXPECT_DOUBLE_EQ(ledger.windowSeconds(), 2.0);
    EXPECT_DOUBLE_EQ(ledger.joules("dyn"), 4.0);
    EXPECT_DOUBLE_EQ(ledger.joules("base"), 20.0);
    EXPECT_DOUBLE_EQ(ledger.joules("nope"), 0.0);
    EXPECT_DOUBLE_EQ(ledger.totalJ(), 24.0);

    // Re-windowing snapshots afresh: pre-window joules never leak.
    ledger.beginWindow(3 * kSec);
    j = 10.0;
    ledger.endWindow(4 * kSec);
    EXPECT_DOUBLE_EQ(ledger.joules("dyn"), 1.0);
    EXPECT_DOUBLE_EQ(ledger.joules("base"), 10.0);
}

TEST(EnergyLedger, RejectsMissingReaders)
{
    EnergyLedger ledger;
    EXPECT_THROW(
        ledger.addDynamic("a", nullptr, [] { return 0.0; }),
        std::invalid_argument);
    EXPECT_THROW(
        ledger.addDynamic("a", [] { return 0.0; }, nullptr),
        std::invalid_argument);
}

TEST(EnergyLedger, AttachObsExposesGaugesAndProbes)
{
    double j = 0.0;
    double w = 3.0;
    EnergyLedger ledger;
    ledger.addDynamic(
        "dyn", [&j] { return j; }, [&w] { return w; });
    ledger.addStatic("base", 194.0);

    StatsRegistry reg;
    ledger.attachObs(&reg, "server.energy", false);

    ledger.beginWindow(0);
    j = 6.0;
    ledger.endWindow(2 * kSec);

    EXPECT_DOUBLE_EQ(reg.gaugeValue("server.energy.dyn.joules"), 6.0);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("server.energy.base.joules"),
                     388.0);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("server.energy.base.power_w"),
                     194.0);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("server.energy.total_j"), 394.0);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("server.energy.window_seconds"),
                     2.0);

    // Dynamic power is an epoch-sampled probe, not a gauge.
    reg.sampleProbes(1 * kMs);
    const Accumulator *p = reg.probeSummary("server.energy.dyn.power_w");
    ASSERT_NE(p, nullptr);
    EXPECT_DOUBLE_EQ(p->mean(), 3.0);
}

// --- SLO monitor --------------------------------------------------------

TEST(SloMonitor, MatchesExactReferencePerEpoch)
{
    SloConfig cfg;
    cfg.target_p99_us = 100.0;
    cfg.epoch = 1 * kMs;
    SloMonitor mon(cfg);
    mon.beginWindow(0, 10 * kMs);

    // Epochs 0-4: 50 us latencies (compliant); epochs 5-9: 200 us
    // (violating). Identically-binned reference histograms give the
    // exact per-epoch p99 the monitor must reproduce.
    Histogram ref_low, ref_high;
    for (int e = 0; e < 10; ++e) {
        const Tick lat = (e < 5 ? 50 : 200) * kUs;
        for (int i = 0; i < 20; ++i) {
            const Tick now = static_cast<Tick>(e) * kMs +
                             static_cast<Tick>(i) * 40 * kUs;
            mon.record(now, lat);
            (e < 5 ? ref_low : ref_high)
                .sample(static_cast<double>(lat));
        }
    }
    mon.finishWindow();

    EXPECT_EQ(mon.epochs(), 10u);
    EXPECT_EQ(mon.violationEpochs(), 5u);
    // Each violating epoch saw the same 20 samples as 1/5th of
    // ref_high; quantiles of identical multisets are identical.
    Histogram one_epoch;
    for (int i = 0; i < 20; ++i)
        one_epoch.sample(static_cast<double>(200 * kUs));
    EXPECT_DOUBLE_EQ(mon.worstEpochP99Us(),
                     one_epoch.p99() / static_cast<double>(kUs));
    EXPECT_GT(mon.worstEpochP99Us(), cfg.target_p99_us);
}

TEST(SloMonitor, CountsEmptyEpochsAndClampsOutsideWindow)
{
    SloConfig cfg;
    cfg.target_p99_us = 10.0;
    cfg.epoch = 1 * kMs;
    SloMonitor mon(cfg);
    mon.beginWindow(2 * kMs, 7 * kMs);

    // Before the window and at/after its end: ignored.
    mon.record(1 * kMs, 500 * kUs);
    mon.record(7 * kMs, 500 * kUs);
    mon.record(9 * kMs, 500 * kUs);
    mon.finishWindow();

    EXPECT_EQ(mon.epochs(), 5u);   // silent epochs still count
    EXPECT_EQ(mon.violationEpochs(), 0u);
    EXPECT_DOUBLE_EQ(mon.worstEpochP99Us(), 0.0);
}

TEST(SloMonitor, PartialTrailingEpochIsClosed)
{
    SloConfig cfg;
    cfg.target_p99_us = 10.0;
    cfg.epoch = 2 * kMs;
    SloMonitor mon(cfg);
    mon.beginWindow(0, 5 * kMs);   // 2.5 epochs
    mon.record(4500 * kUs, 50 * kUs);
    mon.finishWindow();
    EXPECT_EQ(mon.epochs(), 3u);   // ceil(5 / 2)
    EXPECT_EQ(mon.violationEpochs(), 1u);
}

// --- tail attribution ---------------------------------------------------

TEST(SloAttribution, PicksSlowestStagePerPacket)
{
    PacketTracer t(PacketTracer::Config{64, 1});
    const Tick target = 100 * kUs;

    // pkt 1: 300 us span dominated by queue wait.
    t.record(0, 1, TracePoint::Ingress, 0);
    t.record(10 * kUs, 1, TracePoint::RingEnqueue, 1);
    t.record(260 * kUs, 1, TracePoint::ServiceStart, 2);
    t.record(280 * kUs, 1, TracePoint::ServiceEnd, 2);
    t.record(300 * kUs, 1, TracePoint::Egress, 3);

    // pkt 2: 250 us span dominated by service time.
    t.record(0, 2, TracePoint::Ingress, 0);
    t.record(10 * kUs, 2, TracePoint::RingEnqueue, 1);
    t.record(20 * kUs, 2, TracePoint::ServiceStart, 2);
    t.record(240 * kUs, 2, TracePoint::ServiceEnd, 2);
    t.record(250 * kUs, 2, TracePoint::Egress, 3);

    // pkt 3: fast packet, inside the target.
    t.record(0, 3, TracePoint::Ingress, 0);
    t.record(1 * kUs, 3, TracePoint::RingEnqueue, 1);
    t.record(2 * kUs, 3, TracePoint::ServiceStart, 2);
    t.record(3 * kUs, 3, TracePoint::ServiceEnd, 2);
    t.record(4 * kUs, 3, TracePoint::Egress, 3);

    // pkt 4: incomplete span (no egress) — skipped.
    t.record(0, 4, TracePoint::Ingress, 0);
    t.record(10 * kUs, 4, TracePoint::RingEnqueue, 1);

    const SloAttribution a = attributeTail(t, target);
    EXPECT_EQ(a.attributed, 2u);
    EXPECT_EQ(a.queue_wait, 1u);
    EXPECT_EQ(a.service, 1u);
    EXPECT_EQ(a.dispatch, 0u);
    EXPECT_EQ(a.egress, 0u);
}

// --- end-to-end: energy conservation and SLO accounting -----------------

TEST(ObsIntegration, EnergyComponentsSumAndConserve)
{
    core::ServerConfig cfg = core::ServerConfig::halDefault();
    EventQueue eq;
    core::ServerSystem sys(eq, cfg);
    const Tick measure = 40 * kMs;
    const core::RunResult r = sys.run(
        std::make_unique<net::ConstantRate>(60.0), 5 * kMs, measure);

    ASSERT_GT(r.responses, 0u);
    ASSERT_GT(r.energy_total_j, 0.0);

    // The total is the literal sum of the components.
    const double sum = r.energy_snic_cpu_j + r.energy_snic_accel_j +
                       r.energy_host_cpu_j + r.energy_host_accel_j +
                       r.energy_extra_j + r.energy_static_j;
    EXPECT_DOUBLE_EQ(sum, r.energy_total_j);

    // Conservation: the ledger's per-component integrals agree with
    // the independently averaged system power x window length. Both
    // derive from the same piecewise-constant levels, so only
    // floating-point association error separates them.
    const double secs =
        static_cast<double>(measure) / static_cast<double>(kSec);
    const double via_power = r.system_power_w * secs;
    EXPECT_NEAR(r.energy_total_j, via_power,
                1e-9 * std::max(r.energy_total_j, 1.0));

    // Paper anchors: the static baseline dominates, the SNIC's share
    // of system power is small (0.5-2 %), and per-request energy is
    // total over responses.
    EXPECT_GT(r.energy_static_j, 0.5 * r.energy_total_j);
    EXPECT_GT(r.energy_snic_cpu_j, 0.0);
    EXPECT_LT(r.energy_snic_cpu_j, 0.1 * r.energy_total_j);
    EXPECT_DOUBLE_EQ(
        r.j_per_request,
        r.energy_total_j / static_cast<double>(r.responses));
    EXPECT_GT(r.j_per_gb, 0.0);
}

TEST(ObsIntegration, SloEpochAndViolationAccounting)
{
    // A 1 us target no real run can meet: every epoch violates.
    core::ServerConfig cfg = core::ServerConfig::halDefault();
    cfg.slo.target_p99_us = 1.0;
    {
        EventQueue eq;
        core::ServerSystem sys(eq, cfg);
        const core::RunResult r = sys.run(
            std::make_unique<net::ConstantRate>(60.0), 5 * kMs,
            30 * kMs);
        EXPECT_EQ(r.slo_epochs, 6u);   // 30 ms / 5 ms default epoch
        EXPECT_EQ(r.slo_violation_epochs, r.slo_epochs);
        EXPECT_DOUBLE_EQ(r.slo_target_p99_us, 1.0);
        EXPECT_GT(r.slo_worst_p99_us, 1.0);
    }
    // A 1 s target nothing violates.
    cfg.slo.target_p99_us = 1e6;
    {
        EventQueue eq;
        core::ServerSystem sys(eq, cfg);
        const core::RunResult r = sys.run(
            std::make_unique<net::ConstantRate>(60.0), 5 * kMs,
            30 * kMs);
        EXPECT_EQ(r.slo_epochs, 6u);
        EXPECT_EQ(r.slo_violation_epochs, 0u);
    }
    // Monitoring off: fields stay zero.
    cfg.slo.target_p99_us = 0.0;
    {
        EventQueue eq;
        core::ServerSystem sys(eq, cfg);
        const core::RunResult r = sys.run(
            std::make_unique<net::ConstantRate>(60.0), 5 * kMs,
            30 * kMs);
        EXPECT_EQ(r.slo_epochs, 0u);
        EXPECT_DOUBLE_EQ(r.slo_target_p99_us, 0.0);
    }
}

TEST(ObsIntegration, SloStatsTreeAndTailAttribution)
{
    core::ServerConfig cfg = core::ServerConfig::halDefault();
    cfg.obs.stats = true;
    cfg.obs.trace = true;
    cfg.obs.trace_sample_every = 4;
    cfg.slo.target_p99_us = 40.0;

    EventQueue eq;
    core::ServerSystem sys(eq, cfg);
    const core::RunResult r = sys.run(
        std::make_unique<net::ConstantRate>(70.0), 5 * kMs, 30 * kMs);
    ASSERT_GT(r.responses, 0u);

    const StatsRegistry &reg = sys.obs()->registry();
    EXPECT_EQ(reg.counterValue("server.slo.epochs"), r.slo_epochs);
    EXPECT_EQ(reg.counterValue("server.slo.violation_epochs"),
              r.slo_violation_epochs);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("server.slo.target_p99_us"), 40.0);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("server.slo.worst_epoch_p99_us"),
                     r.slo_worst_p99_us);

    // Energy appears in the same tree, and its lazy total matches the
    // RunResult field exactly.
    EXPECT_DOUBLE_EQ(reg.gaugeValue("server.energy.total_j"),
                     r.energy_total_j);

    // Tail attribution: every attributed packet lands in exactly one
    // stage bucket.
    const std::uint64_t attributed =
        reg.counterValue("server.slo.tail_attributed");
    EXPECT_EQ(reg.counterValue("server.slo.tail_dispatch") +
                  reg.counterValue("server.slo.tail_queue_wait") +
                  reg.counterValue("server.slo.tail_service") +
                  reg.counterValue("server.slo.tail_egress"),
              attributed);
}
