/**
 * @file
 * BigUint arithmetic: identities against 64-bit reference math,
 * modular exponentiation (Fermat, RSA round-trip), inverses, and
 * Miller-Rabin sanity.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "alg/bignum.hh"
#include "sim/rng.hh"

using halsim::Rng;
using halsim::alg::BigUint;

TEST(BigUint, BasicConstruction)
{
    EXPECT_TRUE(BigUint().isZero());
    EXPECT_TRUE(BigUint(0).isZero());
    EXPECT_EQ(BigUint(1).toUint64(), 1u);
    EXPECT_EQ(BigUint(0xffffffffffffffffull).toUint64(),
              0xffffffffffffffffull);
    EXPECT_EQ(BigUint(0x123456789abcdef0ull).toHex(), "123456789abcdef0");
}

TEST(BigUint, HexRoundTrip)
{
    const std::string h = "deadbeefcafebabe0123456789abcdef55aa";
    EXPECT_EQ(BigUint::fromHex(h).toHex(), h);
}

TEST(BigUint, BytesRoundTrip)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        const BigUint a = BigUint::randomBits(
            static_cast<unsigned>(1 + rng.uniformInt(300)), rng);
        EXPECT_EQ(BigUint::fromBytes(a.toBytes()), a);
    }
}

TEST(BigUint, AddSubAgainstUint64)
{
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t a = rng.next() >> 2;
        const std::uint64_t b = rng.next() >> 2;
        EXPECT_EQ((BigUint(a) + BigUint(b)).toUint64(), a + b);
        const std::uint64_t hi = std::max(a, b), lo = std::min(a, b);
        EXPECT_EQ((BigUint(hi) - BigUint(lo)).toUint64(), hi - lo);
    }
}

TEST(BigUint, MulAgainstUint64)
{
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t a = rng.next() >> 33;
        const std::uint64_t b = rng.next() >> 33;
        EXPECT_EQ((BigUint(a) * BigUint(b)).toUint64(), a * b);
    }
}

TEST(BigUint, DivModAgainstUint64)
{
    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t a = rng.next();
        const std::uint64_t b = (rng.next() >> (rng.uniformInt(60))) | 1;
        const auto dm = BigUint(a).divmod(BigUint(b));
        EXPECT_EQ(dm.quotient.toUint64(), a / b);
        EXPECT_EQ(dm.remainder.toUint64(), a % b);
    }
}

TEST(BigUint, DivModIdentityLarge)
{
    // a == q*d + r with r < d, at several hundred bits.
    Rng rng(17);
    for (int i = 0; i < 40; ++i) {
        const BigUint a = BigUint::randomBits(
            static_cast<unsigned>(100 + rng.uniformInt(400)), rng);
        const BigUint d = BigUint::randomBits(
            static_cast<unsigned>(10 + rng.uniformInt(200)), rng);
        const auto dm = a.divmod(d);
        EXPECT_TRUE(dm.remainder < d);
        EXPECT_EQ(dm.quotient * d + dm.remainder, a);
    }
}

TEST(BigUint, ShiftsAreMulDivByPowersOfTwo)
{
    Rng rng(19);
    for (int i = 0; i < 60; ++i) {
        const BigUint a = BigUint::randomBits(200, rng);
        const unsigned s = static_cast<unsigned>(rng.uniformInt(130));
        EXPECT_EQ(a << s, a * (BigUint(1) << s));
        EXPECT_EQ(a >> s, a / (BigUint(1) << s));
    }
}

TEST(BigUint, BitLength)
{
    EXPECT_EQ(BigUint(0).bitLength(), 0u);
    EXPECT_EQ(BigUint(1).bitLength(), 1u);
    EXPECT_EQ(BigUint(0xff).bitLength(), 8u);
    EXPECT_EQ((BigUint(1) << 512).bitLength(), 513u);
}

TEST(BigUint, ModexpSmallNumbers)
{
    // 3^7 mod 11 = 2187 mod 11 = 9
    EXPECT_EQ(BigUint(3).modexp(BigUint(7), BigUint(11)).toUint64(), 9u);
    // Anything^0 = 1.
    EXPECT_EQ(BigUint(5).modexp(BigUint(0), BigUint(7)).toUint64(), 1u);
    // Base larger than modulus reduces first.
    EXPECT_EQ(BigUint(100).modexp(BigUint(3), BigUint(7)).toUint64(),
              (100ull % 7) * (100 % 7) % 7 * (100 % 7) % 7);
}

TEST(BigUint, ModexpAgainstNaive64)
{
    Rng rng(23);
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t base = rng.uniformInt(1, 1000);
        const std::uint64_t exp = rng.uniformInt(0, 40);
        const std::uint64_t mod = rng.uniformInt(2, 100000) | 1;
        std::uint64_t expect = 1;
        for (std::uint64_t k = 0; k < exp; ++k)
            expect = expect * base % mod;
        EXPECT_EQ(BigUint(base)
                      .modexp(BigUint(exp), BigUint(mod))
                      .toUint64(),
                  expect)
            << base << "^" << exp << " mod " << mod;
    }
}

TEST(BigUint, ModexpEvenModulus)
{
    // The Montgomery path requires odd moduli; even moduli take the
    // plain path. 3^5 mod 16 = 243 mod 16 = 3.
    EXPECT_EQ(BigUint(3).modexp(BigUint(5), BigUint(16)).toUint64(), 3u);
}

TEST(BigUint, FermatLittleTheorem)
{
    // a^(p-1) = 1 mod p for prime p, gcd(a, p) = 1.
    const BigUint p = halsim::alg::groups::prime512();
    Rng rng(29);
    for (int i = 0; i < 5; ++i) {
        const BigUint a = BigUint::randomBelow(p, rng);
        EXPECT_EQ(a.modexp(p - BigUint(1), p), BigUint(1));
    }
}

TEST(BigUint, RsaStyleRoundTrip)
{
    // Tiny RSA: p = 61, q = 53, n = 3233, e = 17, d = 413.
    const BigUint n(3233), e(17), d(413);
    for (std::uint64_t msg : {1ull, 42ull, 1234ull, 3000ull}) {
        const BigUint c = BigUint(msg).modexp(e, n);
        EXPECT_EQ(BigUint(msg), c.modexp(d, n));
    }
}

TEST(BigUint, DiffieHellmanSharedSecret)
{
    const BigUint p = halsim::alg::groups::oakley768();
    const BigUint g(2);
    Rng rng(31);
    const BigUint a = BigUint::randomBits(160, rng);
    const BigUint b = BigUint::randomBits(160, rng);
    const BigUint ga = g.modexp(a, p);
    const BigUint gb = g.modexp(b, p);
    EXPECT_EQ(gb.modexp(a, p), ga.modexp(b, p));
}

TEST(BigUint, ModInverse)
{
    Rng rng(37);
    const BigUint p = halsim::alg::groups::prime512();
    for (int i = 0; i < 10; ++i) {
        const BigUint a = BigUint::randomBelow(p, rng);
        const BigUint inv = a.modinv(p);
        ASSERT_FALSE(inv.isZero());
        EXPECT_EQ((a * inv) % p, BigUint(1));
    }
    // Non-invertible case: gcd != 1.
    EXPECT_TRUE(BigUint(6).modinv(BigUint(9)).isZero());
}

TEST(BigUint, Gcd)
{
    EXPECT_EQ(BigUint::gcd(BigUint(48), BigUint(36)).toUint64(), 12u);
    EXPECT_EQ(BigUint::gcd(BigUint(17), BigUint(13)).toUint64(), 1u);
    EXPECT_EQ(BigUint::gcd(BigUint(0), BigUint(5)).toUint64(), 5u);
}

TEST(BigUint, MillerRabinKnownPrimesAndComposites)
{
    Rng rng(41);
    for (std::uint64_t p : {2ull, 3ull, 5ull, 104729ull, 1000003ull})
        EXPECT_TRUE(BigUint(p).isProbablePrime(rng, 12)) << p;
    for (std::uint64_t c :
         {1ull, 4ull, 561ull /* Carmichael */, 104730ull, 1000001ull})
        EXPECT_FALSE(BigUint(c).isProbablePrime(rng, 12)) << c;
}

TEST(BigUint, Oakley768IsPrime)
{
    Rng rng(43);
    EXPECT_TRUE(
        halsim::alg::groups::oakley768().isProbablePrime(rng, 4));
}
