/**
 * @file
 * ReportTable rendering (text/CSV/JSON-lines) and pcap round trips,
 * including a PcapTap on a live simulated edge.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "net/pcap.hh"
#include "net/traffic.hh"
#include "sim/report.hh"

using namespace halsim;
using namespace halsim::net;

namespace {

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

} // namespace

TEST(ReportTable, TextAlignsColumns)
{
    ReportTable t({"name", "gbps", "count"});
    t.row().add("nat").add(41.0).add(std::int64_t{7});
    t.row().add("count").add(58.4).add(std::int64_t{12345});
    std::ostringstream os;
    t.writeText(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("58.4"), std::string::npos);
    EXPECT_NE(s.find("12345"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.columns(), 3u);
}

TEST(ReportTable, CsvEscapesSpecials)
{
    ReportTable t({"label", "value"});
    t.row().add("with,comma").add(1.5);
    t.row().add("with\"quote").add(2.5);
    std::ostringstream os;
    t.writeCsv(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(s.find("\"with\"\"quote\""), std::string::npos);
    EXPECT_EQ(s.find('\n'), s.find("label,value") + 11);
}

TEST(ReportTable, JsonLinesParseable)
{
    ReportTable t({"mode", "tp"});
    t.row().add("hal").add(80.0);
    std::ostringstream os;
    t.writeJsonLines(os);
    EXPECT_EQ(os.str(), "{\"mode\":\"hal\",\"tp\":80}\n");
}

TEST(ReportTable, CellAccessor)
{
    ReportTable t({"a"});
    t.row().add(std::int64_t{42});
    EXPECT_EQ(std::get<std::int64_t>(t.at(0, 0)), 42);
}

TEST(Pcap, WriteReadRoundTrip)
{
    const std::string path = tmpPath("roundtrip.pcap");
    {
        PcapWriter w(path);
        for (int i = 0; i < 5; ++i) {
            auto pkt = makeUdpPacket(
                MacAddr::fromUint(1), MacAddr::fromUint(2),
                Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1000,
                2000, {}, 64 + static_cast<std::size_t>(i) * 100);
            w.record(*pkt, static_cast<Tick>(i) * 123 * kUs);
        }
        EXPECT_EQ(w.frames(), 5u);
    }
    const auto records = readPcap(path);
    ASSERT_EQ(records.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(records[i].bytes.size(),
                  64u + static_cast<std::size_t>(i) * 100);
        EXPECT_EQ(records[i].timestamp,
                  static_cast<Tick>(i) * 123 * kUs);
        // Frames must still parse as the packets we wrote.
        Packet parsed(records[i].bytes);
        EXPECT_EQ(parsed.ip().src(), Ipv4Addr(10, 0, 0, 1));
        EXPECT_TRUE(parsed.ip().checksumOk());
    }
    std::remove(path.c_str());
}

TEST(Pcap, RejectsGarbage)
{
    const std::string path = tmpPath("garbage.pcap");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a capture file";
    }
    EXPECT_THROW(readPcap(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(Pcap, TapRecordsLiveTraffic)
{
    const std::string path = tmpPath("tap.pcap");
    EventQueue eq;

    struct Null : PacketSink
    {
        void accept(PacketPtr) override {}
    } sink;

    {
        PcapTap tap(eq, path, sink);
        TrafficGenerator::Config gc;
        gc.frame_bytes = 256;
        TrafficGenerator gen(eq, gc,
                             std::make_unique<ConstantRate>(10.0), tap);
        gen.start(1 * kMs);
        eq.run();
        EXPECT_GT(tap.writer().frames(), 40u);
    }
    const auto records = readPcap(path);
    EXPECT_GT(records.size(), 40u);
    // Timestamps must be monotone.
    for (std::size_t i = 1; i < records.size(); ++i)
        EXPECT_GE(records[i].timestamp, records[i - 1].timestamp);
    std::remove(path.c_str());
}
