/**
 * @file
 * Cross-rate monotonicity and accounting invariants of the full
 * system — the properties any reviewer would spot-check first:
 * delivered throughput is monotone in offered load up to saturation
 * and flat after; power is monotone; the director's counters account
 * for every packet; HAL never does worse than the better of its two
 * processors on throughput.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/server.hh"

using namespace halsim;
using namespace halsim::core;

namespace {

RunResult
runPoint(Mode mode, funcs::FunctionId fn, double rate)
{
    ServerConfig cfg;
    cfg.mode = mode;
    cfg.function = fn;
    EventQueue eq;
    ServerSystem sys(eq, cfg);
    return sys.run(std::make_unique<net::ConstantRate>(rate), 10 * kMs,
                   50 * kMs);
}

} // namespace

TEST(Invariants, DeliveredMonotoneThenFlatSnicOnly)
{
    std::vector<double> delivered;
    for (double rate : {10.0, 25.0, 40.0, 55.0, 70.0})
        delivered.push_back(
            runPoint(Mode::SnicOnly, funcs::FunctionId::Nat, rate)
                .delivered_gbps);
    // Monotone non-decreasing within tolerance...
    for (std::size_t i = 1; i < delivered.size(); ++i)
        EXPECT_GE(delivered[i], delivered[i - 1] - 0.5) << i;
    // ...and flat at the 41 Gbps plateau beyond the knee.
    EXPECT_NEAR(delivered[3], 41.0, 1.5);
    EXPECT_NEAR(delivered[4], 41.0, 1.5);
}

TEST(Invariants, HalAtLeastMaxOfBothProcessors)
{
    for (double rate : {20.0, 50.0, 90.0}) {
        const auto host =
            runPoint(Mode::HostOnly, funcs::FunctionId::Knn, rate);
        const auto snic =
            runPoint(Mode::SnicOnly, funcs::FunctionId::Knn, rate);
        const auto hal = runPoint(Mode::Hal, funcs::FunctionId::Knn, rate);
        EXPECT_GE(hal.delivered_gbps,
                  std::max(host.delivered_gbps, snic.delivered_gbps) -
                      1.0)
            << "rate " << rate;
    }
}

TEST(Invariants, PowerMonotoneInRateUnderHal)
{
    double prev = 0.0;
    for (double rate : {5.0, 30.0, 60.0, 90.0}) {
        const auto r = runPoint(Mode::Hal, funcs::FunctionId::Nat, rate);
        EXPECT_GE(r.system_power_w, prev - 1.0) << "rate " << rate;
        prev = r.system_power_w;
    }
}

TEST(Invariants, DirectorAccountsForEveryPacket)
{
    ServerConfig cfg;
    cfg.mode = Mode::Hal;
    cfg.function = funcs::FunctionId::Nat;
    EventQueue eq;
    ServerSystem sys(eq, cfg);
    const auto r = sys.run(std::make_unique<net::ConstantRate>(70.0),
                           10 * kMs, 50 * kMs);
    const auto *dir = sys.director();
    // Every generated packet passed the director exactly once.
    EXPECT_NEAR(static_cast<double>(dir->toSnic() + dir->toHost()),
                static_cast<double>(r.sent), 8.0);
}

TEST(Invariants, EnergyEfficiencyIsThroughputOverPower)
{
    const auto r = runPoint(Mode::Hal, funcs::FunctionId::Count, 40.0);
    EXPECT_NEAR(r.energy_eff, r.delivered_gbps / r.system_power_w,
                1e-12);
    EXPECT_NEAR(r.system_power_w,
                funcs::kServerBasePowerW + r.dynamic_power_w, 1e-9);
}

TEST(Invariants, ResponsesNeverExceedRequests)
{
    for (Mode m : {Mode::HostOnly, Mode::SnicOnly, Mode::Hal, Mode::Slb}) {
        const auto r = runPoint(m, funcs::FunctionId::Nat, 60.0);
        // At most one response per request. The slack covers packets
        // that were in flight (queued in rings) across the
        // warmup/measure boundary — bounded by the ring capacities.
        EXPECT_LE(r.responses, r.sent + 8 * 512) << modeName(m);
    }
}

TEST(Invariants, FrameSizeSweepPreservesConservation)
{
    for (std::size_t frame : {64u, 256u, 512u, 1500u}) {
        ServerConfig cfg;
        cfg.mode = Mode::Hal;
        cfg.function = funcs::FunctionId::DpdkFwd;
        cfg.frame_bytes = frame;
        EventQueue eq;
        ServerSystem sys(eq, cfg);
        const auto r = sys.run(std::make_unique<net::ConstantRate>(20.0),
                               10 * kMs, 30 * kMs);
        EXPECT_NEAR(static_cast<double>(r.responses + r.drops) /
                        static_cast<double>(r.sent),
                    1.0, 0.02)
            << "frame " << frame;
    }
}
