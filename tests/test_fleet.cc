/**
 * @file
 * Fleet resilience layer: consistent-hash ring properties, retry
 * backoff, health-check hysteresis flap bounds, backend admission
 * control and crash semantics, FleetConfig validation, and the
 * end-to-end drills the issue's acceptance gates name — a crash
 * drill whose attempt ledger reconciles exactly, and a retry storm
 * where shedding holds the tail while the no-shed ablation collapses.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/fleet.hh"
#include "obs/span.hh"
#include "net/client.hh"
#include "net/packet.hh"
#include "net/traffic.hh"

using namespace halsim;
using namespace halsim::fleet;

namespace {

class NullSink : public net::PacketSink
{
  public:
    void accept(net::PacketPtr) override { ++received; }
    std::uint64_t received = 0;
};

net::PacketPtr
testPacket(std::size_t frame_bytes = net::kMtuFrameBytes)
{
    static const std::vector<std::uint8_t> payload(32, 0xAB);
    return net::makeUdpPacket(net::MacAddr::fromUint(0x020000000001),
                              net::MacAddr::fromUint(0x020000000002),
                              net::Ipv4Addr(10, 0, 9, 1),
                              net::Ipv4Addr(10, 0, 9, 2), 40000, 9000,
                              payload, frame_bytes);
}

core::RunResult
runFleet(FleetConfig cfg, double rate_gbps, Tick warmup, Tick measure)
{
    EventQueue eq;
    FleetSystem sys(eq, std::move(cfg));
    return sys.run(std::make_unique<net::ConstantRate>(rate_gbps),
                   warmup, measure);
}

} // namespace

// --- consistent-hash ring --------------------------------------------

TEST(HashRing, DeterministicAndCoversAllBackends)
{
    const unsigned n = 8;
    HashRing a(n, 64);
    HashRing b(n, 64);
    ASSERT_EQ(a.points(), std::size_t{8 * 64});

    std::vector<std::uint64_t> hits(n, 0);
    for (std::uint64_t k = 0; k < 10000; ++k) {
        const auto oa = a.lookup(mix64(k));
        const auto ob = b.lookup(mix64(k));
        ASSERT_TRUE(oa.has_value());
        EXPECT_EQ(oa, ob); // pure function of (backends, vnodes, key)
        ++hits[*oa];
    }
    for (unsigned i = 0; i < n; ++i)
        EXPECT_GT(hits[i], 0u) << "backend " << i << " owns no keys";
}

TEST(HashRing, FailureOnlyRemapsTheDeadBackendsKeys)
{
    const unsigned n = 8, dead = 3;
    HashRing ring(n, 64);

    std::vector<unsigned> before(10000);
    std::vector<unsigned> expectedSuccessor(10000);
    for (std::uint64_t k = 0; k < before.size(); ++k) {
        const std::uint64_t key = mix64(k);
        before[k] = *ring.lookup(key);
        expectedSuccessor[k] = *ring.successor(key, dead);
    }

    ring.setUp(dead, false);
    EXPECT_EQ(ring.upCount(), n - 1);
    for (std::uint64_t k = 0; k < before.size(); ++k) {
        const auto now = ring.lookup(mix64(k));
        ASSERT_TRUE(now.has_value());
        if (before[k] != dead) {
            // Minimal disruption: surviving backends keep their keys.
            EXPECT_EQ(*now, before[k]);
        } else {
            // The dead backend's keys land exactly on the successor
            // the hash would have chosen had it never existed.
            EXPECT_EQ(*now, expectedSuccessor[k]);
        }
    }

    ring.setUp(dead, true);
    for (std::uint64_t k = 0; k < before.size(); ++k)
        EXPECT_EQ(*ring.lookup(mix64(k)), before[k]);
}

TEST(HashRing, AllDownYieldsNoOwner)
{
    HashRing ring(3, 16);
    for (unsigned i = 0; i < 3; ++i)
        ring.setUp(i, false);
    EXPECT_EQ(ring.upCount(), 0u);
    EXPECT_EQ(ring.lookup(12345), std::nullopt);

    ring.setUp(1, true);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_EQ(ring.lookup(mix64(k)), std::optional<unsigned>{1});
}

// --- retry policy -----------------------------------------------------

TEST(RetryPolicy, BackoffDoublesThenSaturates)
{
    net::RetryPolicy p; // 500 us base, 8 ms cap
    EXPECT_TRUE(p.enabled());
    EXPECT_EQ(p.backoffFor(0), 500 * kUs);
    EXPECT_EQ(p.backoffFor(1), 1 * kMs);
    EXPECT_EQ(p.backoffFor(2), 2 * kMs);
    EXPECT_EQ(p.backoffFor(3), 4 * kMs);
    EXPECT_EQ(p.backoffFor(4), 8 * kMs);
    EXPECT_EQ(p.backoffFor(5), 8 * kMs); // capped
    EXPECT_EQ(p.backoffFor(60), 8 * kMs);

    p.timeout = 0;
    EXPECT_FALSE(p.enabled());
}

// --- health-check hysteresis -----------------------------------------

namespace {

Backend::Config
lightBackend()
{
    Backend::Config bc;
    bc.cores = 1;
    bc.core_rate_gbps = 10.0;
    return bc;
}

} // namespace

TEST(HealthChecker, FlapShorterThanFallIsAbsorbed)
{
    EventQueue eq;
    NullSink out;
    Backend b(eq, lightBackend(), out);
    HealthChecker h(eq, {1 * kMs, 3, 2}, {&b});

    // Stall for 2 probe epochs out of every 4: consecutive failures
    // never reach fall=3, so the verdict must never change.
    for (Tick t = 0; t < 40 * kMs; t += 4 * kMs) {
        eq.scheduleFn([&b] { b.setStalled(true); }, t + 500 * kUs);
        eq.scheduleFn([&b] { b.setStalled(false); }, t + 2500 * kUs);
    }

    h.start(40 * kMs);
    eq.runUntil(41 * kMs);

    EXPECT_GT(h.probesFailed(), 0u);
    EXPECT_EQ(h.downTransitions(), 0u);
    EXPECT_EQ(h.upTransitions(), 0u);
    EXPECT_TRUE(h.healthy(0));
}

TEST(HealthChecker, TransitionRateBoundedByHysteresis)
{
    EventQueue eq;
    NullSink out;
    Backend b(eq, lightBackend(), out);
    const HealthChecker::Config hc{1 * kMs, 3, 2};
    HealthChecker h(eq, hc, {&b});

    // Worst-case flap for fall=3/rise=2: down exactly long enough to
    // trip the fall threshold, up exactly long enough to rise. Each
    // 5 ms cycle costs one down + one up transition — the maximum the
    // hysteresis permits.
    const Tick horizon = 50 * kMs;
    for (Tick t = 0; t < horizon; t += 5 * kMs) {
        eq.scheduleFn([&b] { b.setStalled(true); }, t + 500 * kUs);
        eq.scheduleFn([&b] { b.setStalled(false); }, t + 3500 * kUs);
    }

    h.start(horizon);
    eq.runUntil(horizon + 1 * kMs);

    const std::uint64_t probes = h.probesSent();
    ASSERT_EQ(probes, 50u);
    // The documented bound: at most 1 transition (each way) per
    // (fall + rise) probe epochs.
    const std::uint64_t bound = probes / (hc.fall + hc.rise);
    EXPECT_EQ(h.downTransitions(), bound);
    EXPECT_EQ(h.upTransitions(), bound);
    EXPECT_LE(h.downTransitions() + h.upTransitions(), 2 * bound);
}

// --- backend admission control and crash semantics -------------------

TEST(Backend, ShedsAtWatermarkInsteadOfFillingRing)
{
    EventQueue eq;
    NullSink out;
    Backend::Config bc = lightBackend();
    bc.ring_capacity = 128;
    bc.shed_watermark = 16;
    Backend b(eq, bc, out);

    for (int i = 0; i < 200; ++i)
        b.accept(testPacket());

    // One request went straight to the single core; the ring then
    // filled to the watermark; everything else was shed early.
    EXPECT_EQ(b.occupancy(), 16u);
    EXPECT_EQ(b.sheds(), 200u - 17u);
    EXPECT_EQ(b.ringDrops(), 0u);

    eq.run();
    EXPECT_EQ(b.served(), 17u);
    EXPECT_EQ(out.received, 17u);
    EXPECT_EQ(b.losses(), b.sheds());
}

TEST(Backend, ZeroWatermarkDisablesSheddingAndTailDrops)
{
    EventQueue eq;
    NullSink out;
    Backend::Config bc = lightBackend();
    bc.ring_capacity = 32;
    bc.shed_watermark = 0; // the no-shedding ablation
    Backend b(eq, bc, out);

    for (int i = 0; i < 100; ++i)
        b.accept(testPacket());

    EXPECT_EQ(b.sheds(), 0u);
    EXPECT_EQ(b.occupancy(), 32u);
    EXPECT_EQ(b.ringDrops(), 100u - 33u);
}

TEST(Backend, CrashLosesInFlightAndBlackholesUntilRestore)
{
    EventQueue eq;
    NullSink out;
    Backend b(eq, lightBackend(), out);

    for (int i = 0; i < 10; ++i)
        b.accept(testPacket());
    EXPECT_EQ(b.occupancy(), 9u); // one in service on the single core

    b.crash();
    EXPECT_EQ(b.crashLost(), 10u); // queued + in-service all lost
    EXPECT_EQ(b.occupancy(), 0u);
    EXPECT_FALSE(b.probeOk());
    EXPECT_NEAR(b.currentW(), 0.0, 1e-12);

    b.accept(testPacket()); // arrivals while down blackhole
    EXPECT_EQ(b.crashLost(), 11u);

    // Completions scheduled before the crash land in a dead world:
    // the request was already written off, so nothing resurrects.
    eq.run();
    EXPECT_EQ(b.served(), 0u);
    EXPECT_EQ(out.received, 0u);

    b.restore();
    EXPECT_TRUE(b.probeOk());
    b.accept(testPacket());
    eq.run();
    EXPECT_EQ(b.served(), 1u);
    EXPECT_EQ(out.received, 1u);
}

TEST(Backend, StallHoldsQueueAndDrawsFullPower)
{
    EventQueue eq;
    NullSink out;
    Backend::Config bc = lightBackend();
    bc.cores = 2;
    Backend b(eq, bc, out);

    b.setStalled(true);
    for (int i = 0; i < 5; ++i)
        b.accept(testPacket());
    EXPECT_FALSE(b.probeOk());
    EXPECT_EQ(b.occupancy(), 5u); // nothing dispatched while hung
    EXPECT_NEAR(b.currentW(), bc.cores * bc.core_active_w, 1e-12);

    eq.run();
    EXPECT_EQ(b.served(), 0u);

    b.setStalled(false);
    eq.run();
    EXPECT_EQ(b.served(), 5u); // held requests drain after resume
    EXPECT_EQ(b.crashLost(), 0u);
}

// --- configuration validation ----------------------------------------

TEST(FleetConfig, ValidReportsNoErrors)
{
    FleetConfig cfg;
    EXPECT_TRUE(cfg.validate().empty());
}

TEST(FleetConfig, ValidateNamesEveryOffendingField)
{
    FleetConfig cfg;
    cfg.backends = 0;
    cfg.frontend.vnodes = 0;
    cfg.backend.ring_capacity = 0;
    cfg.health.epoch = 0;
    cfg.client.flows = 0;
    const auto errors = cfg.validate();
    ASSERT_EQ(errors.size(), 5u);
    auto contains = [&errors](const std::string &needle) {
        for (const auto &e : errors)
            if (e.find(needle) != std::string::npos)
                return true;
        return false;
    };
    EXPECT_TRUE(contains("backends"));
    EXPECT_TRUE(contains("frontend.vnodes"));
    EXPECT_TRUE(contains("backend.ring_capacity"));
    EXPECT_TRUE(contains("health.epoch"));
    EXPECT_TRUE(contains("client.flows"));
}

TEST(FleetConfig, RetryBudgetRequiresTimeout)
{
    FleetConfig cfg;
    cfg.client.retry.timeout = 0;
    cfg.client.retry.max_retries = 3;
    const auto errors = cfg.validate();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("retry budget"), std::string::npos);

    cfg.client.retry.max_retries = 0; // retry machinery off: fine
    EXPECT_TRUE(cfg.validate().empty());
}

TEST(FleetConfig, RejectsWatermarkAboveRingCapacity)
{
    FleetConfig cfg;
    cfg.backend.ring_capacity = 64;
    cfg.backend.shed_watermark = 65;
    const auto errors = cfg.validate();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("shed_watermark"), std::string::npos);

    cfg.backend.shed_watermark = 64;
    EXPECT_TRUE(cfg.validate().empty());
}

TEST(FleetConfig, ConstructorThrowsJoiningAllErrors)
{
    EventQueue eq;
    FleetConfig cfg;
    cfg.backends = 200;
    cfg.slo.epoch = 0;
    try {
        FleetSystem sys(eq, cfg);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("FleetConfig:"), std::string::npos) << what;
        EXPECT_NE(what.find("backends"), std::string::npos) << what;
        EXPECT_NE(what.find("slo.epoch"), std::string::npos) << what;
    }
}

// --- end-to-end drills ------------------------------------------------

namespace {

FleetConfig
drillConfig()
{
    FleetConfig cfg;
    cfg.backends = 4;
    return cfg;
}

} // namespace

TEST(FleetDrill, HealthyRunBalancesAndAccountsEnergy)
{
    auto cfg = drillConfig();
    const auto r = runFleet(cfg, 8.0, 10 * kMs, 40 * kMs);

    EXPECT_GT(r.responses, 0u);
    EXPECT_EQ(r.fleet_backends, 4u);
    EXPECT_EQ(r.fleet_requests_failed, 0u);
    EXPECT_EQ(r.fleet_failovers, 0u);
    EXPECT_EQ(r.drops, 0u);
    EXPECT_NEAR(r.delivered_gbps, 8.0, 1.0);

    // Consistent hashing splits load unevenly but never starves a
    // backend at this flow population.
    EXPECT_GT(r.fleet_backend_served_min, 0u);
    EXPECT_GE(r.fleet_backend_served_max, r.fleet_backend_served_min);

    // Energy components must sum exactly: per-backend dynamic
    // accounts + the static baseline + the frontend's own draw.
    EXPECT_GT(r.energy_fleet_j, 0.0);
    EXPECT_NEAR(r.energy_fleet_j + r.energy_static_j + r.energy_extra_j,
                r.energy_total_j, 1e-9 * r.energy_total_j);
    EXPECT_NEAR(r.energy_static_j,
                4 * 194.0 * 0.040, 1e-6); // 4 backends, 40 ms window
}

TEST(FleetDrill, CrashDrillLedgerReconcilesExactly)
{
    auto cfg = drillConfig();
    cfg.client.retry.max_retries = 5;
    cfg.faults.backendCrash(1, 15 * kMs); // permanent, mid-window
    // warmup 0 so the window opens with zero requests in flight: the
    // attempt ledger then closes exactly after the drain.
    const auto r = runFleet(cfg, 8.0, 0, 40 * kMs);

    ASSERT_GT(r.faults_injected, 0u);
    EXPECT_EQ(r.sent,
              r.responses + r.fleet_duplicates + r.drops)
        << "sends must reconcile: " << r.sent << " sent vs "
        << r.responses << " + " << r.fleet_duplicates << " dup + "
        << r.drops << " lost";

    // The retry budget outlives the detection window (fall=3 epochs
    // of 2 ms), so no request is abandoned.
    EXPECT_EQ(r.fleet_requests_failed, 0u);
    EXPECT_GT(r.fleet_retries, 0u);
    EXPECT_GT(r.fleet_timeouts, 0u);
    EXPECT_EQ(r.fleet_failovers, 1u);
    EXPECT_GT(r.fleet_flows_migrated, 0u);
    EXPECT_GT(r.drops, 0u); // the crash stranded real requests
}

TEST(FleetDrill, CrashTriggersOneFlightRecorderDumpWithDownSpan)
{
    auto cfg = drillConfig();
    cfg.client.retry.max_retries = 5;
    cfg.faults.backendCrash(1, 15 * kMs); // permanent, mid-window
    cfg.obs.flightrec = true;
    cfg.obs.fr_armed = obs::frTriggerBit(obs::FrTrigger::Fault);
    // The health checker needs fall=3 probe epochs of 2 ms to declare
    // the crashed backend down; a 10 ms post-trigger window captures
    // that transition inside the dump. The window is snapshot at
    // flush time, so the ring must hold >= the full window's records
    // (~11 records/us at this rate) for the transition to survive.
    cfg.obs.fr_post = 10 * kMs;
    cfg.obs.fr_capacity = 1u << 18;

    EventQueue eq;
    FleetSystem sys(eq, std::move(cfg));
    const auto r = sys.run(std::make_unique<net::ConstantRate>(8.0), 0,
                           40 * kMs);

    // Exactly one armed trigger fired, producing exactly one dump.
    ASSERT_GT(r.faults_injected, 0u);
    EXPECT_EQ(r.fr_trigger_fault, 1u);
    EXPECT_EQ(r.fr_dumps, 1u);
    EXPECT_EQ(r.fr_trigger_slo + r.fr_trigger_shed + r.fr_trigger_gov,
              0u);

    // The captured window must hold the backend-down transition the
    // crash caused: the health checker's down mark lands ~6 ms after
    // the trigger, well inside the post window.
    ASSERT_NE(sys.obs(), nullptr);
    const obs::FlightRecorder *fr = sys.obs()->flightRecorder();
    ASSERT_NE(fr, nullptr);
    std::ostringstream text, json;
    fr->writeText(text);
    fr->writeJson(json);
    EXPECT_NE(text.str().find("health_down"), std::string::npos)
        << text.str();
    EXPECT_NE(json.str().find("\"health_down\""), std::string::npos);

    // Determinism: a second identical run reproduces the dump byte
    // for byte.
    {
        auto cfg2 = drillConfig();
        cfg2.client.retry.max_retries = 5;
        cfg2.faults.backendCrash(1, 15 * kMs);
        cfg2.obs.flightrec = true;
        cfg2.obs.fr_armed = obs::frTriggerBit(obs::FrTrigger::Fault);
        cfg2.obs.fr_post = 10 * kMs;
        cfg2.obs.fr_capacity = 1u << 18;
        EventQueue eq2;
        FleetSystem sys2(eq2, std::move(cfg2));
        const auto r2 = sys2.run(
            std::make_unique<net::ConstantRate>(8.0), 0, 40 * kMs);
        EXPECT_EQ(r2.fr_dumps, 1u);
        std::ostringstream json2;
        sys2.obs()->flightRecorder()->writeJson(json2);
        EXPECT_EQ(json.str(), json2.str());
    }
}

TEST(FleetDrill, AllBackendsDownFailsRequestsButStillReconciles)
{
    auto cfg = drillConfig();
    for (unsigned i = 0; i < 4; ++i)
        cfg.faults.backendCrash(i, 10 * kMs);
    const auto r = runFleet(cfg, 4.0, 0, 30 * kMs);

    EXPECT_EQ(r.faults_injected, 4u);
    EXPECT_EQ(r.fleet_failovers, 4u);
    EXPECT_GT(r.fleet_requests_failed, 0u); // retry budgets exhaust
    EXPECT_EQ(r.sent, r.responses + r.fleet_duplicates + r.drops);
}

TEST(FleetDrill, ProbeLossFlapsAreAbsorbedByHysteresis)
{
    auto cfg = drillConfig();
    // 10% probe loss for most of the window: individual probes fail,
    // but three consecutive losses on one backend are rare and the
    // run is seed-deterministic either way.
    cfg.faults.probeLoss(0.10, 2 * kMs, 30 * kMs);
    const auto r = runFleet(cfg, 8.0, 5 * kMs, 35 * kMs);

    EXPECT_GT(r.fleet_probes_failed, 0u);
    EXPECT_EQ(r.fleet_requests_failed, 0u);
    EXPECT_GT(r.responses, 0u);
}

TEST(FleetDrill, SheddingHoldsTailUnderRetryStorm)
{
    // 4 weak backends (2 cores x 2 Gbps) give ~16 Gbps of fleet
    // capacity; 40 Gbps offered plus retries is a sustained storm.
    auto storm = drillConfig();
    storm.backend.cores = 2;
    storm.backend.core_rate_gbps = 2.0;
    storm.backend.ring_capacity = 4096;
    storm.client.retry.timeout = 1 * kMs;
    storm.client.retry.backoff_base = 250 * kUs;
    storm.client.retry.backoff_cap = 2 * kMs;

    auto shed = storm;
    shed.backend.shed_watermark = 64;
    auto noshed = storm; // watermark 0: requests queue to the brim

    const auto rs = runFleet(shed, 40.0, 10 * kMs, 30 * kMs);
    const auto rn = runFleet(noshed, 40.0, 10 * kMs, 30 * kMs);

    EXPECT_GT(rs.fleet_sheds, 0u);
    EXPECT_EQ(rn.fleet_sheds, 0u);

    // Admission control bounds the ring at the watermark, so an
    // *admitted* attempt answers inside the timeout (64 requests at
    // ~4 us apiece): the fleet keeps serving near capacity and the
    // completed-request tail is the bounded shed-retry ladder. The
    // ablation queues to the brim instead — ~16 ms of ring delay, so
    // every response outlives the whole retry budget: goodput
    // collapses, requests fail wholesale, and the late responses all
    // arrive as suppressed duplicates.
    EXPECT_GT(rs.delivered_gbps, 8.0);
    EXPECT_LT(rn.delivered_gbps, 1.0);
    EXPECT_GT(rs.responses, 100 * (rn.responses + 1));
    EXPECT_GT(rs.p99_us, 0.0);
    EXPECT_LT(rs.p99_us, 20000.0);
    EXPECT_GT(rn.fleet_requests_failed, rs.fleet_requests_failed);
    EXPECT_GT(rn.fleet_timeouts, rs.fleet_timeouts);
    EXPECT_GT(rn.fleet_duplicates, rs.fleet_duplicates);
}
