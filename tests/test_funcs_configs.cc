/**
 * @file
 * The paper's per-function configurations (Table IV lists two per
 * function: batch sizes 4/8, NAT 1 K/10 K entries, BM25 2 K/4 K
 * terms, KNN set sizes 8/16, Bayes 128/256 features, REM tea/lite).
 * Parameterized sweeps verify each function behaves correctly in
 * both published configurations.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "coherence/domain.hh"
#include "core/server.hh"
#include "fleet/fleet.hh"
#include "funcs/analytics.hh"
#include "funcs/content.hh"
#include "funcs/nat.hh"
#include "funcs/stateful.hh"
#include "net/bytes.hh"
#include "sim/rng.hh"

using namespace halsim;
using namespace halsim::funcs;
using coherence::StateContext;

namespace {

net::PacketPtr
blankPacket()
{
    return net::makeUdpPacket(net::MacAddr::fromUint(1),
                              net::MacAddr::fromUint(2),
                              net::Ipv4Addr(10, 0, 0, 1),
                              net::Ipv4Addr(10, 0, 0, 2), 40000, 9000,
                              {}, net::kMtuFrameBytes);
}

StateContext
nullState()
{
    return StateContext(nullptr, coherence::NodeId::Snic);
}

} // namespace

// --- Count / EMA batch sizes (Table IV: 4 and 8) ----------------------

class CountBatchTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CountBatchTest, ConservationHoldsForBatchSize)
{
    CountFunction count(CountFunction::Config{GetParam(), 1024});
    auto st = nullState();
    Rng rng(GetParam());
    std::uint64_t keys = 0;
    for (int i = 0; i < 300; ++i) {
        auto pkt = blankPacket();
        count.makeRequest(*pkt, rng);
        EXPECT_EQ(pkt->payload()[0], GetParam());
        keys += pkt->payload()[0];
        count.process(*pkt, st);
    }
    EXPECT_EQ(count.totalCounted(), keys);
    EXPECT_EQ(st.accesses(), keys)
        << "one coherent access per counted key";
}

INSTANTIATE_TEST_SUITE_P(PaperBatches, CountBatchTest,
                         ::testing::Values(4u, 8u));

class EmaBatchTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EmaBatchTest, ConvergesForBatchSize)
{
    EmaFunction ema(EmaFunction::Config{GetParam(), 8, 125});
    auto st = nullState();
    // Feed the same key a constant sample through full batches.
    for (int round = 0; round < 400; ++round) {
        auto pkt = blankPacket();
        auto p = pkt->payload();
        p[0] = static_cast<std::uint8_t>(GetParam());
        for (unsigned i = 0; i < GetParam(); ++i) {
            net::store64(p.data() + 1 + 16 * i, 3);
            net::store64(p.data() + 9 + 16 * i, 777000);
        }
        ema.process(*pkt, st);
    }
    EXPECT_NEAR(static_cast<double>(ema.emaOf(3)), 777000.0, 7800.0);
}

INSTANTIATE_TEST_SUITE_P(PaperBatches, EmaBatchTest,
                         ::testing::Values(4u, 8u));

// --- NAT table sizes (Table IV: 1 K and 10 K entries) -----------------

class NatEntriesTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(NatEntriesTest, AllGeneratedFlowsTranslate)
{
    NatFunction nat(
        NatFunction::Config{GetParam(), net::Ipv4Addr(192, 168, 0, 0)});
    auto st = nullState();
    Rng rng(GetParam());
    for (int i = 0; i < 3000; ++i) {
        auto pkt = blankPacket();
        nat.makeRequest(*pkt, rng);
        nat.process(*pkt, st);
        EXPECT_TRUE(pkt->ip().checksumOk());
    }
    EXPECT_EQ(nat.misses(), 0u);
}

TEST_P(NatEntriesTest, DistinctFlowsGetDistinctMappings)
{
    NatFunction nat(
        NatFunction::Config{GetParam(), net::Ipv4Addr(192, 168, 0, 0)});
    const auto *a = nat.lookup(net::Ipv4Addr(10, 0, 0, 1).value, 1024);
    const auto *b = nat.lookup(net::Ipv4Addr(10, 0, 0, 1).value, 1025);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(a->ip == b->ip && a->port == b->port);
}

INSTANTIATE_TEST_SUITE_P(PaperTables, NatEntriesTest,
                         ::testing::Values(1000u, 10000u));

// --- BM25 vocabulary sizes (Table IV: 2 K and 4 K terms) --------------

class Bm25VocabTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(Bm25VocabTest, WinnerIsOptimalAmongSampledDocs)
{
    Bm25Function::Config cfg;
    cfg.vocabulary = GetParam();
    Bm25Function bm25(cfg);
    auto st = nullState();
    Rng rng(GetParam());
    for (int trial = 0; trial < 8; ++trial) {
        auto pkt = blankPacket();
        bm25.makeRequest(*pkt, rng);
        std::vector<std::uint16_t> terms;
        for (unsigned i = 0; i < pkt->payload()[0]; ++i)
            terms.push_back(
                net::load16(pkt->payload().data() + 1 + 2 * i));
        bm25.process(*pkt, st);
        const std::uint32_t winner = net::load32(pkt->payload().data());
        const double best = bm25.score(winner, terms);
        for (std::uint32_t d = 0; d < 1024; d += 61)
            EXPECT_LE(bm25.score(d, terms), best + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(PaperVocabs, Bm25VocabTest,
                         ::testing::Values(2048u, 4096u));

// --- KNN set sizes (Table IV: 8 and 16) -------------------------------

class KnnSetTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(KnnSetTest, CentroidsClassifyToThemselves)
{
    KnnFunction::Config cfg;
    cfg.set_size = GetParam();
    KnnFunction knn(cfg);
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(knn.classify(knn.centroid(c)), c)
            << "set size " << GetParam();
}

TEST_P(KnnSetTest, NoisyQueriesMostlyRecoverTheirClass)
{
    KnnFunction::Config cfg;
    cfg.set_size = GetParam();
    KnnFunction knn(cfg);
    Rng rng(GetParam() * 7);
    int correct = 0;
    const int trials = 300;
    for (int i = 0; i < trials; ++i) {
        const unsigned c = static_cast<unsigned>(rng.uniformInt(4));
        std::uint8_t q[KnnFunction::kDims];
        for (unsigned d = 0; d < KnnFunction::kDims; ++d) {
            const int v = knn.centroid(c)[d] +
                          static_cast<int>(rng.normal(0.0, 5.0));
            q[d] = static_cast<std::uint8_t>(std::clamp(v, 0, 255));
        }
        correct += knn.classify(q) == c;
    }
    EXPECT_GT(correct, trials * 8 / 10) << "set size " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PaperSets, KnnSetTest,
                         ::testing::Values(8u, 16u));

// --- Bayes feature counts (Table IV: 128 and 256) ---------------------

class BayesFeatureTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BayesFeatureTest, DeterministicAndUsesAllClasses)
{
    BayesFunction::Config cfg;
    cfg.features = GetParam();
    BayesFunction bayes(cfg);
    auto st = nullState();
    Rng rng(GetParam() * 3);
    std::array<int, 4> hist{};
    for (int i = 0; i < 300; ++i) {
        auto pkt = blankPacket();
        bayes.makeRequest(*pkt, rng);
        std::uint8_t bits[32];
        std::memcpy(bits, pkt->payload().data(), (GetParam() + 7) / 8);
        bayes.process(*pkt, st);
        EXPECT_EQ(pkt->payload()[0], bayes.classify(bits));
        ++hist[pkt->payload()[0] % 4];
    }
    for (int c = 0; c < 4; ++c)
        EXPECT_GT(hist[c], 20) << "features " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PaperFeatures, BayesFeatureTest,
                         ::testing::Values(128u, 256u));

// --- REM rulesets (Table IV: teakettle / snort_literals) --------------

class RemRulesetTest : public ::testing::TestWithParam<alg::RulesetKind>
{
};

TEST_P(RemRulesetTest, CountsMatchStandaloneAutomaton)
{
    RemFunction::Config cfg;
    cfg.ruleset = GetParam();
    cfg.rules = GetParam() == alg::RulesetKind::Teakettle ? 2500 : 500;
    cfg.hit_rate = 0.3;
    RemFunction rem(cfg);
    auto st = nullState();
    Rng rng(17);
    std::uint64_t reported = 0;
    std::uint64_t recomputed = 0;
    for (int i = 0; i < 40; ++i) {
        auto pkt = blankPacket();
        rem.makeRequest(*pkt, rng);
        std::vector<std::uint8_t> payload(pkt->payload().begin(),
                                          pkt->payload().end());
        rem.process(*pkt, st);
        reported += net::load64(pkt->payload().data());
        recomputed += rem.automaton().countMatches(payload);
    }
    EXPECT_EQ(reported, recomputed);
}

INSTANTIATE_TEST_SUITE_P(PaperRulesets, RemRulesetTest,
                         ::testing::Values(alg::RulesetKind::Teakettle,
                                           alg::RulesetKind::SnortLiterals));

// --- KVS operation mix -------------------------------------------------

class KvsMixTest
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(KvsMixTest, MixObeysConfiguredFractions)
{
    KvsFunction::Config cfg;
    cfg.get_fraction = GetParam().first;
    cfg.put_fraction = GetParam().second;
    cfg.key_space = 500;
    KvsFunction kvs(cfg);
    auto st = nullState();
    Rng rng(23);
    int gets = 0, puts = 0, inserts = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        auto pkt = blankPacket();
        kvs.makeRequest(*pkt, rng);
        switch (pkt->payload()[0]) {
          case 0: ++gets; break;
          case 1: ++puts; break;
          default: ++inserts; break;
        }
        kvs.process(*pkt, st);
    }
    EXPECT_NEAR(static_cast<double>(gets) / n, GetParam().first, 0.03);
    EXPECT_NEAR(static_cast<double>(puts) / n, GetParam().second, 0.03);
    EXPECT_GT(kvs.storeSize(), 0u);
    EXPECT_LE(kvs.storeSize(), 500u);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, KvsMixTest,
    ::testing::Values(std::pair{0.5, 0.3}, std::pair{0.9, 0.05},
                      std::pair{0.1, 0.8}));

// --- Config validation (degenerate SLO / fleet settings) --------------
//
// validate() collects every violation in one pass; the system ctors
// throw std::invalid_argument joining them, so a degenerate config
// dies loudly instead of silently misbehaving.

namespace {

bool
mentions(const std::vector<std::string> &errors, const std::string &what)
{
    for (const auto &e : errors)
        if (e.find(what) != std::string::npos)
            return true;
    return false;
}

} // namespace

TEST(ConfigValidation, DefaultServerConfigIsValid)
{
    EXPECT_TRUE(core::ServerConfig{}.validate().empty());
}

TEST(ConfigValidation, ServerRejectsNonPositiveSloEpoch)
{
    core::ServerConfig cfg;
    cfg.slo.epoch = 0;
    const auto errors = cfg.validate();
    ASSERT_FALSE(errors.empty());
    EXPECT_TRUE(mentions(errors, "slo.epoch"));

    EventQueue eq;
    EXPECT_THROW(core::ServerSystem(eq, cfg), std::invalid_argument);
}

TEST(ConfigValidation, DefaultFleetConfigIsValid)
{
    EXPECT_TRUE(fleet::FleetConfig{}.validate().empty());
}

TEST(ConfigValidation, FleetRejectsZeroBackends)
{
    fleet::FleetConfig cfg;
    cfg.backends = 0;
    EXPECT_TRUE(mentions(cfg.validate(), "backends"));

    EventQueue eq;
    EXPECT_THROW(fleet::FleetSystem(eq, cfg), std::invalid_argument);
}

TEST(ConfigValidation, FleetRejectsRetryBudgetWithZeroTimeout)
{
    fleet::FleetConfig cfg;
    cfg.client.retry.timeout = 0;
    cfg.client.retry.max_retries = 3;
    EXPECT_TRUE(mentions(cfg.validate(), "retry budget"));
}

TEST(ConfigValidation, FleetRejectsNonPositiveSloEpoch)
{
    fleet::FleetConfig cfg;
    cfg.slo.epoch = 0;
    EXPECT_TRUE(mentions(cfg.validate(), "slo.epoch"));
}
