/**
 * @file
 * Processor models: rings, RSS, poll cores (throughput saturation at
 * the calibrated rate, sleep power, wake penalty), accelerators
 * (pipeline rate, fixed latency, drops), and the Processor facade.
 */

#include <gtest/gtest.h>

#include <vector>

#include "funcs/content.hh"
#include "funcs/registry.hh"
#include "net/traffic.hh"
#include "nic/dpdk_ring.hh"
#include "nic/eswitch.hh"
#include "proc/processor.hh"

using namespace halsim;
using namespace halsim::proc;

namespace {

/** Collects finished responses. */
struct Collector : net::PacketSink
{
    explicit Collector(EventQueue &eq) : eq(eq) {}

    void
    accept(net::PacketPtr pkt) override
    {
        latencies.push_back(eq.now() - pkt->clientTx);
        count++;
        bytes += pkt->size();
        last = std::move(pkt);
    }

    EventQueue &eq;
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    std::vector<Tick> latencies;
    net::PacketPtr last;
};

net::PacketPtr
mtuPacket(Tick now, std::uint32_t hash = 0)
{
    auto pkt = net::makeUdpPacket(
        net::MacAddr::fromUint(0xC11E47), net::MacAddr::fromUint(2),
        net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2), 40000,
        9000, {}, net::kMtuFrameBytes);
    pkt->clientTx = now;
    pkt->flowHash = hash;
    pkt->clientMac = net::MacAddr::fromUint(0xC11E47);
    pkt->clientIp = net::Ipv4Addr(10, 0, 0, 1);
    pkt->clientPort = 40000;
    return pkt;
}

Processor::Config
natConfig(funcs::Platform platform, unsigned cores)
{
    Processor::Config cfg;
    cfg.platform = platform;
    cfg.profile = funcs::profile(platform, funcs::FunctionId::Nat);
    cfg.cores = cores;
    cfg.service_mac = net::MacAddr::fromUint(0x5E),
    cfg.service_ip = net::Ipv4Addr(10, 0, 0, 2);
    return cfg;
}

} // namespace

TEST(DpdkRing, FifoAndDrops)
{
    EventQueue eq;
    nic::DpdkRing ring(4);
    int notified = 0;
    ring.setNotify([&] { ++notified; });
    for (std::uint32_t i = 0; i < 6; ++i) {
        auto pkt = mtuPacket(0);
        pkt->id = i;
        ring.accept(std::move(pkt));
    }
    EXPECT_EQ(notified, 1) << "notify only on empty->nonempty";
    EXPECT_EQ(ring.occupancy(), 4u);
    EXPECT_EQ(ring.drops(), 2u);
    EXPECT_EQ(ring.dequeue()->id, 0u);
    EXPECT_EQ(ring.dequeue()->id, 1u);
}

TEST(ESwitch, RoutesByDestinationIp)
{
    EventQueue eq;
    nic::DpdkRing a(16), b(16);
    nic::ESwitch sw;
    sw.addRule(net::Ipv4Addr(10, 0, 0, 2), &a);
    sw.addRule(net::Ipv4Addr(10, 0, 0, 3), &b);

    auto p1 = mtuPacket(0);
    sw.accept(std::move(p1));   // dst 10.0.0.2
    auto p2 = mtuPacket(0);
    p2->ip().rewriteDst(net::Ipv4Addr(10, 0, 0, 3));
    sw.accept(std::move(p2));
    auto p3 = mtuPacket(0);
    p3->ip().rewriteDst(net::Ipv4Addr(9, 9, 9, 9));
    sw.accept(std::move(p3));

    EXPECT_EQ(a.occupancy(), 1u);
    EXPECT_EQ(b.occupancy(), 1u);
    EXPECT_EQ(sw.unrouted(), 1u);
}

TEST(Rss, SpreadsByFlowHash)
{
    nic::DpdkRing q0(64), q1(64), q2(64);
    nic::RssDistributor rss;
    rss.addQueue(&q0);
    rss.addQueue(&q1);
    rss.addQueue(&q2);
    for (std::uint32_t h = 0; h < 30; ++h)
        rss.accept(mtuPacket(0, h));
    EXPECT_EQ(q0.occupancy(), 10u);
    EXPECT_EQ(q1.occupancy(), 10u);
    EXPECT_EQ(q2.occupancy(), 10u);
}

TEST(FixedDelay, DelaysExactly)
{
    EventQueue eq;
    Collector out(eq);
    nic::FixedDelay d(eq, 777, out);
    d.accept(mtuPacket(0));
    eq.run();
    EXPECT_EQ(out.count, 1u);
    EXPECT_EQ(eq.now(), 777u);
}

TEST(Processor, SaturatesAtCalibratedThroughput)
{
    // Offer 80 Gbps of NAT to the 8-core BF-2 model: it must deliver
    // ~41 Gbps (Table II) and drop the rest.
    EventQueue eq;
    Collector out(eq);
    auto nat = funcs::makeFunction(funcs::FunctionId::Nat);
    Processor proc(eq, natConfig(funcs::Platform::SnicBf2, 8), *nat,
                   nullptr, out);

    net::TrafficGenerator::Config gc;
    net::TrafficGenerator gen(eq, gc,
                              std::make_unique<net::ConstantRate>(80.0),
                              proc.input());
    const Tick dur = 100 * kMs;
    gen.start(dur);
    eq.run();

    const double tp = gbps(out.bytes, dur);
    EXPECT_NEAR(tp, 41.0, 1.5);
    EXPECT_GT(proc.drops(), 0u);
}

TEST(Processor, DeliversOfferedLoadBelowCapacity)
{
    EventQueue eq;
    Collector out(eq);
    auto nat = funcs::makeFunction(funcs::FunctionId::Nat);
    Processor proc(eq, natConfig(funcs::Platform::HostSkylake, 8), *nat,
                   nullptr, out);

    net::TrafficGenerator::Config gc;
    net::TrafficGenerator gen(eq, gc,
                              std::make_unique<net::ConstantRate>(40.0),
                              proc.input());
    gen.start(50 * kMs);
    eq.run();
    EXPECT_NEAR(gbps(out.bytes, 50 * kMs), 40.0, 1.0);
    EXPECT_EQ(proc.drops(), 0u);
    EXPECT_EQ(out.count, gen.sentFrames());
}

TEST(Processor, ResponsesCarryServiceIdentity)
{
    EventQueue eq;
    Collector out(eq);
    auto nat = funcs::makeFunction(funcs::FunctionId::Nat);
    Processor proc(eq, natConfig(funcs::Platform::SnicBf2, 2), *nat,
                   nullptr, out);
    proc.input().accept(mtuPacket(0));
    eq.run();
    ASSERT_EQ(out.count, 1u);
    EXPECT_TRUE(out.last->isResponse);
    EXPECT_EQ(out.last->processedBy, net::Processor::SnicCpu);
    EXPECT_EQ(out.last->ip().src(), net::Ipv4Addr(10, 0, 0, 2));
    EXPECT_EQ(out.last->ip().dst(), net::Ipv4Addr(10, 0, 0, 1));
    EXPECT_TRUE(out.last->ip().checksumOk());
    EXPECT_EQ(out.last->eth().dst().toUint(), 0xC11E47u);
}

TEST(Processor, PollingBurnsPowerWhenIdle)
{
    // §III-B: DPDK busy-polling keeps cores hot. Without sleep, the
    // dynamic power is cores * active watts even with zero traffic.
    EventQueue eq;
    Collector out(eq);
    auto nat = funcs::makeFunction(funcs::FunctionId::Nat);
    auto cfg = natConfig(funcs::Platform::HostSkylake, 8);
    Processor proc(eq, cfg, *nat, nullptr, out);
    eq.scheduleFn([] {}, 10 * kMs);
    eq.run();
    EXPECT_NEAR(proc.averageDynamicW(), 8 * cfg.profile.core_active_w,
                0.01);
}

TEST(Processor, SleepCutsIdlePower)
{
    EventQueue eq;
    Collector out(eq);
    auto nat = funcs::makeFunction(funcs::FunctionId::Nat);
    auto cfg = natConfig(funcs::Platform::HostSkylake, 8);
    cfg.sleep = SleepPolicy{true, 1 * kMs, 5 * kUs};
    Processor proc(eq, cfg, *nat, nullptr, out);
    eq.scheduleFn([] {}, 100 * kMs);
    eq.run();
    // Awake for the first ms, asleep for the other 99.
    EXPECT_LT(proc.averageDynamicW(), 8 * cfg.profile.core_active_w * 0.05);
}

TEST(Processor, WakePenaltyDelaysFirstPacket)
{
    EventQueue eq;
    Collector out(eq);
    auto nat = funcs::makeFunction(funcs::FunctionId::Nat);
    auto cfg = natConfig(funcs::Platform::HostSkylake, 1);
    cfg.sleep = SleepPolicy{true, 1 * kMs, 50 * kUs};
    Processor proc(eq, cfg, *nat, nullptr, out);

    // Let the core fall deeply asleep, deliver one packet, then a
    // second one 50 us after the first — before the core can sleep
    // again (sleep_after is 1 ms).
    eq.scheduleFn(
        [&] { proc.input().accept(mtuPacket(eq.now())); }, 10 * kMs);
    eq.scheduleFn(
        [&] { proc.input().accept(mtuPacket(eq.now())); },
        10 * kMs + 100 * kUs);
    eq.run();
    ASSERT_EQ(out.count, 2u);
    EXPECT_GE(out.latencies[0], 50 * kUs)
        << "the wake-up penalty must show up in latency";
    EXPECT_LT(out.latencies[1], out.latencies[0] - 40 * kUs)
        << "an awake core must not pay the penalty";
}

TEST(Accelerator, PipelineRateAndLatency)
{
    // BF-2 REM accel: 47 Gbps pipeline, 20 us fixed latency.
    EventQueue eq;
    Collector out(eq);
    auto rem = funcs::makeFunction(funcs::FunctionId::Rem);
    Processor::Config cfg;
    cfg.platform = funcs::Platform::SnicBf2;
    cfg.profile = funcs::profile(funcs::Platform::SnicBf2,
                                 funcs::FunctionId::Rem);
    cfg.service_mac = net::MacAddr::fromUint(0x5E);
    cfg.service_ip = net::Ipv4Addr(10, 0, 0, 2);
    Processor proc(eq, cfg, *rem, nullptr, out);
    EXPECT_TRUE(proc.usesAccel());

    // Single packet: latency = serialization + pipeline latency.
    proc.input().accept(mtuPacket(0));
    eq.run();
    ASSERT_EQ(out.count, 1u);
    const Tick ser = transferTicks(1500, 47.0);
    EXPECT_EQ(out.latencies[0], ser + 20 * kUs);
    EXPECT_EQ(out.last->processedBy, net::Processor::SnicAccel);
}

TEST(Accelerator, SaturatesAndDrops)
{
    EventQueue eq;
    Collector out(eq);
    auto rem = funcs::makeFunction(funcs::FunctionId::Rem);
    Processor::Config cfg;
    cfg.platform = funcs::Platform::SnicBf2;
    cfg.profile = funcs::profile(funcs::Platform::SnicBf2,
                                 funcs::FunctionId::Rem);
    cfg.service_mac = net::MacAddr::fromUint(0x5E);
    cfg.service_ip = net::Ipv4Addr(10, 0, 0, 2);
    Processor proc(eq, cfg, *rem, nullptr, out);

    net::TrafficGenerator::Config gc;
    net::TrafficGenerator gen(eq, gc,
                              std::make_unique<net::ConstantRate>(90.0),
                              proc.input());
    const Tick dur = 50 * kMs;
    gen.start(dur);
    eq.run();
    EXPECT_NEAR(gbps(out.bytes, dur), 47.0, 1.5)
        << "REM accelerator tops out below the 50 Gbps cap";
    EXPECT_GT(proc.drops(), 0u);
}

TEST(Processor, ScalesWithCoreCount)
{
    // 4 cores deliver half the 8-core rate.
    EventQueue eq;
    Collector out(eq);
    auto nat = funcs::makeFunction(funcs::FunctionId::Nat);
    Processor proc(eq, natConfig(funcs::Platform::SnicBf2, 4), *nat,
                   nullptr, out);
    net::TrafficGenerator::Config gc;
    net::TrafficGenerator gen(eq, gc,
                              std::make_unique<net::ConstantRate>(80.0),
                              proc.input());
    const Tick dur = 50 * kMs;
    gen.start(dur);
    eq.run();
    EXPECT_NEAR(gbps(out.bytes, dur), 41.0 / 2, 1.0);
}

TEST(Processor, StatefulFunctionPaysCoherence)
{
    // The same Count workload processed with and without a coherence
    // domain: the coherent run must be slower (state access latency).
    auto run = [](coherence::CoherenceDomain *domain) {
        EventQueue eq;
        Collector out(eq);
        auto count = funcs::makeFunction(funcs::FunctionId::Count);
        Processor proc(eq,
                       natConfig(funcs::Platform::SnicBf2, 1), *count,
                       domain, out);
        Rng rng(3);
        for (int i = 0; i < 50; ++i) {
            auto pkt = mtuPacket(0);
            count->makeRequest(*pkt, rng);
            proc.input().accept(std::move(pkt));
        }
        eq.run();
        return eq.now();
    };
    coherence::CoherenceDomain domain;
    EXPECT_GT(run(&domain), run(nullptr));
}
