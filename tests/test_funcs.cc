/**
 * @file
 * Semantic correctness of the ten network functions: each parses its
 * request, computes a real answer, and writes a well-formed response.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "alg/sha256.hh"
#include "coherence/domain.hh"
#include "funcs/analytics.hh"
#include "funcs/content.hh"
#include "funcs/nat.hh"
#include "funcs/pipeline.hh"
#include "funcs/registry.hh"
#include "funcs/calibration.hh"
#include "funcs/stateful.hh"
#include "net/bytes.hh"
#include "sim/rng.hh"

using namespace halsim;
using namespace halsim::funcs;
using coherence::StateContext;
using net::load64;
using net::store16;
using net::store64;

namespace {

net::PacketPtr
blankPacket(std::size_t frame = net::kMtuFrameBytes)
{
    return net::makeUdpPacket(net::MacAddr::fromUint(1),
                              net::MacAddr::fromUint(2),
                              net::Ipv4Addr(10, 0, 0, 1),
                              net::Ipv4Addr(10, 0, 0, 2), 40000, 9000,
                              {}, frame);
}

StateContext
nullState()
{
    return StateContext(nullptr, coherence::NodeId::Snic);
}

} // namespace

TEST(Registry, NamesAndFactory)
{
    for (FunctionId id : allFunctions()) {
        auto fn = makeFunction(id);
        ASSERT_NE(fn, nullptr);
        EXPECT_EQ(fn->id(), id);
        EXPECT_STRNE(fn->name(), "?");
    }
    EXPECT_EQ(allFunctions().size(), 10u);
    EXPECT_EQ(tableVFunctions().size(), 6u);
    EXPECT_EQ(tableVPipelines().size(), 4u);
}

TEST(Registry, StatefulFlagsMatchTableIV)
{
    // Table IV marks KVS, Count, EMA (and compression's file stream)
    // as stateful.
    EXPECT_TRUE(makeFunction(FunctionId::Kvs)->stateful());
    EXPECT_TRUE(makeFunction(FunctionId::Count)->stateful());
    EXPECT_TRUE(makeFunction(FunctionId::Ema)->stateful());
    EXPECT_TRUE(makeFunction(FunctionId::Compress)->stateful());
    EXPECT_FALSE(makeFunction(FunctionId::Nat)->stateful());
    EXPECT_FALSE(makeFunction(FunctionId::Rem)->stateful());
    EXPECT_FALSE(makeFunction(FunctionId::Crypto)->stateful());
    EXPECT_FALSE(makeFunction(FunctionId::Knn)->stateful());
}

TEST(Kvs, PutThenGet)
{
    KvsFunction kvs;
    auto st = nullState();

    auto put = blankPacket();
    auto p = put->payload();
    p[0] = 1;   // PUT
    store64(p.data() + 1, 42);
    for (int i = 0; i < 32; ++i)
        p[9 + i] = static_cast<std::uint8_t>(i);
    kvs.process(*put, st);
    EXPECT_EQ(put->payload()[0], 0);

    auto get = blankPacket();
    p = get->payload();
    p[0] = 0;   // GET
    store64(p.data() + 1, 42);
    kvs.process(*get, st);
    EXPECT_EQ(get->payload()[0], 0);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(get->payload()[1 + i], i);
}

TEST(Kvs, GetMissingAndDoubleInsert)
{
    KvsFunction kvs;
    auto st = nullState();

    auto get = blankPacket();
    get->payload()[0] = 0;
    store64(get->payload().data() + 1, 999);
    kvs.process(*get, st);
    EXPECT_EQ(get->payload()[0], 1) << "missing key -> not found";

    auto ins = blankPacket();
    ins->payload()[0] = 2;
    store64(ins->payload().data() + 1, 7);
    kvs.process(*ins, st);
    EXPECT_EQ(ins->payload()[0], 0);

    auto ins2 = blankPacket();
    ins2->payload()[0] = 2;
    store64(ins2->payload().data() + 1, 7);
    kvs.process(*ins2, st);
    EXPECT_EQ(ins2->payload()[0], 2) << "second insert must fail";
}

TEST(Kvs, GeneratedRequestsGrowStore)
{
    KvsFunction kvs;
    auto st = nullState();
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        auto pkt = blankPacket();
        kvs.makeRequest(*pkt, rng);
        kvs.process(*pkt, st);
    }
    EXPECT_GT(kvs.storeSize(), 100u);
}

TEST(Count, CountsAreConserved)
{
    CountFunction count;
    auto st = nullState();
    Rng rng(2);
    std::uint64_t keys_sent = 0;
    for (int i = 0; i < 500; ++i) {
        auto pkt = blankPacket();
        count.makeRequest(*pkt, rng);
        keys_sent += pkt->payload()[0];
        count.process(*pkt, st);
    }
    EXPECT_EQ(count.totalCounted(), keys_sent)
        << "every submitted key must be counted exactly once";
}

TEST(Count, ResponseCarriesRunningCount)
{
    CountFunction count(CountFunction::Config{4, 16});
    auto st = nullState();
    auto pkt = blankPacket();
    auto p = pkt->payload();
    p[0] = 4;
    for (int i = 0; i < 4; ++i)
        store64(p.data() + 1 + 8 * i, 5);   // same key four times
    count.process(*pkt, st);
    // In-batch updates accumulate: counts 1, 2, 3, 4.
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(load64(pkt->payload().data() + 1 + 8 * i), i + 1);
    EXPECT_EQ(count.countOf(5), 4u);
}

TEST(Ema, ConvergesTowardConstantInput)
{
    EmaFunction ema(EmaFunction::Config{1, 4, 125});
    auto st = nullState();
    for (int i = 0; i < 200; ++i) {
        auto pkt = blankPacket();
        auto p = pkt->payload();
        p[0] = 1;
        store64(p.data() + 1, 9);          // key
        store64(p.data() + 9, 1000);       // constant sample
        ema.process(*pkt, st);
    }
    EXPECT_NEAR(static_cast<double>(ema.emaOf(9)), 1000.0, 20.0);
}

TEST(Ema, FirstSampleInitializes)
{
    EmaFunction ema;
    auto st = nullState();
    auto pkt = blankPacket();
    auto p = pkt->payload();
    p[0] = 1;
    store64(p.data() + 1, 77);
    store64(p.data() + 9, 5000);
    ema.process(*pkt, st);
    EXPECT_EQ(ema.emaOf(77), 5000);
}

TEST(Nat, TranslatesKnownFlowAndPatchesChecksum)
{
    NatFunction nat(NatFunction::Config{1000, net::Ipv4Addr(192, 168, 0, 0)});
    auto pkt = blankPacket();
    // Flow 5 from the preloaded table.
    pkt->ip().rewriteSrc(net::Ipv4Addr(10, 0, 0, 1));
    pkt->udp().setSrcPort(1024 + 5);
    const auto *m = nat.lookup(net::Ipv4Addr(10, 0, 0, 1).value, 1024 + 5);
    ASSERT_NE(m, nullptr);

    auto st = nullState();
    nat.process(*pkt, st);
    EXPECT_EQ(pkt->ip().dst(), m->ip);
    EXPECT_EQ(pkt->udp().dstPort(), m->port);
    EXPECT_TRUE(pkt->ip().checksumOk())
        << "NAT must keep the IP checksum valid via incremental update";
    EXPECT_EQ(pkt->payload()[0], 1);
    EXPECT_EQ(nat.misses(), 0u);
}

TEST(Nat, UnknownFlowCountsMiss)
{
    NatFunction nat(NatFunction::Config{100, net::Ipv4Addr(192, 168, 0, 0)});
    auto pkt = blankPacket();
    pkt->udp().setSrcPort(9);   // below the table's port base
    auto st = nullState();
    nat.process(*pkt, st);
    EXPECT_EQ(nat.misses(), 1u);
    EXPECT_EQ(pkt->payload()[0], 0);
}

TEST(Nat, GeneratedRequestsAlwaysHit)
{
    NatFunction nat;
    auto st = nullState();
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        auto pkt = blankPacket();
        nat.makeRequest(*pkt, rng);
        nat.process(*pkt, st);
    }
    EXPECT_EQ(nat.misses(), 0u)
        << "the workload generator must stay inside the NAT table";
}

TEST(Bm25, PicksHighestScoringDocument)
{
    Bm25Function bm25;
    auto st = nullState();
    Rng rng(4);
    for (int trial = 0; trial < 20; ++trial) {
        auto pkt = blankPacket();
        bm25.makeRequest(*pkt, rng);
        std::vector<std::uint16_t> terms;
        const unsigned n = pkt->payload()[0];
        for (unsigned i = 0; i < n; ++i)
            terms.push_back(
                net::load16(pkt->payload().data() + 1 + 2 * i));
        bm25.process(*pkt, st);
        const std::uint32_t winner =
            net::load32(pkt->payload().data());
        const double wscore = bm25.score(winner, terms);
        // Spot-check: no sampled doc may beat the winner.
        for (std::uint32_t d = 0; d < 1024; d += 97)
            EXPECT_LE(bm25.score(d, terms), wscore + 1e-9)
                << "doc " << d << " trial " << trial;
    }
}

TEST(Knn, ClassifiesCentroidsCorrectly)
{
    KnnFunction knn;
    // A query exactly at a class centroid must classify to it.
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(knn.classify(knn.centroid(c)), c);
}

TEST(Knn, GeneratedQueriesMostlyClassifyStably)
{
    KnnFunction knn;
    auto st = nullState();
    Rng rng(5);
    int agreements = 0;
    const int trials = 500;
    for (int i = 0; i < trials; ++i) {
        auto pkt = blankPacket();
        knn.makeRequest(*pkt, rng);
        std::uint8_t q[KnnFunction::kDims];
        std::memcpy(q, pkt->payload().data(), sizeof(q));
        knn.process(*pkt, st);
        agreements += pkt->payload()[0] == knn.classify(q);
    }
    EXPECT_EQ(agreements, trials)
        << "process() must agree with classify()";
}

TEST(Bayes, SelfConsistentAndBetterThanChance)
{
    BayesFunction bayes;
    auto st = nullState();
    Rng rng(6);
    // Queries are generated from a known class's Bernoulli model;
    // with 256 features the classifier should recover it nearly
    // always. We can't see the generating class directly, so check
    // determinism + spread instead.
    std::array<int, 4> histogram{};
    for (int i = 0; i < 400; ++i) {
        auto pkt = blankPacket();
        bayes.makeRequest(*pkt, rng);
        std::uint8_t bits[32];
        std::memcpy(bits, pkt->payload().data(), 32);
        bayes.process(*pkt, st);
        EXPECT_EQ(pkt->payload()[0], bayes.classify(bits));
        ++histogram[pkt->payload()[0] % 4];
    }
    // All four classes must appear (generator draws uniformly).
    for (int c = 0; c < 4; ++c)
        EXPECT_GT(histogram[c], 40) << "class " << c;
}

TEST(Rem, CountsPlantedMatches)
{
    RemFunction rem(RemFunction::Config{alg::RulesetKind::Teakettle, 500,
                                        0.8, 5});
    auto st = nullState();
    Rng rng(7);
    std::uint64_t matches = 0;
    for (int i = 0; i < 50; ++i) {
        auto pkt = blankPacket();
        rem.makeRequest(*pkt, rng);
        rem.process(*pkt, st);
        matches += load64(pkt->payload().data());
    }
    EXPECT_GT(matches, 0u);
    EXPECT_EQ(matches, rem.totalMatches());
}

TEST(Rem, SnortRulesetCleanTrafficHasNoMatches)
{
    RemFunction rem(RemFunction::Config{alg::RulesetKind::SnortLiterals,
                                        300, 0.0, 9});
    auto st = nullState();
    Rng rng(8);
    for (int i = 0; i < 30; ++i) {
        auto pkt = blankPacket();
        rem.makeRequest(*pkt, rng);
        rem.process(*pkt, st);
        EXPECT_EQ(load64(pkt->payload().data()), 0u);
    }
}

TEST(Crypto, DeterministicPerMessageAndOpDependent)
{
    CryptoFunction crypto;
    auto st = nullState();

    auto make = [&](std::uint8_t op) {
        auto pkt = blankPacket();
        auto p = pkt->payload();
        p[0] = op;
        for (int i = 1; i < 64; ++i)
            p[i] = static_cast<std::uint8_t>(i * 3);
        return pkt;
    };

    auto a1 = make(0), a2 = make(0), b = make(1), c = make(2);
    crypto.process(*a1, st);
    crypto.process(*a2, st);
    crypto.process(*b, st);
    crypto.process(*c, st);

    EXPECT_EQ(std::memcmp(a1->payload().data(), a2->payload().data(), 65),
              0)
        << "same op + message -> same signature";
    EXPECT_NE(std::memcmp(a1->payload().data() + 1,
                          b->payload().data() + 1, 64),
              0);
    EXPECT_NE(std::memcmp(b->payload().data() + 1,
                          c->payload().data() + 1, 64),
              0);
}

TEST(Crypto, RsaResultVerifiable)
{
    // The op-0 path computes digest^e mod n; recompute independently.
    CryptoFunction crypto;
    auto st = nullState();
    auto pkt = blankPacket(200);
    auto p = pkt->payload();
    p[0] = 0;
    for (std::size_t i = 1; i < p.size(); ++i)
        p[i] = static_cast<std::uint8_t>(i);

    std::vector<std::uint8_t> request(p.begin(), p.end());
    const auto digest = alg::Sha256::hash(request);
    const auto m = alg::BigUint::fromBytes(
        std::span<const std::uint8_t>(digest.data(), digest.size()));
    const auto expect = m.modexp(alg::BigUint(65537), crypto.modulus());

    crypto.process(*pkt, st);
    const auto bytes = expect.toBytes();
    EXPECT_EQ(std::memcmp(pkt->payload().data() + 1, bytes.data(),
                          std::min<std::size_t>(bytes.size(), 64)),
              0);
}

TEST(Compress, TracksRatioOnCompressibleTraffic)
{
    CompressFunction comp;
    auto st = nullState();
    Rng rng(10);
    for (int i = 0; i < 50; ++i) {
        auto pkt = blankPacket();
        comp.makeRequest(*pkt, rng);
        comp.process(*pkt, st);
    }
    ASSERT_GT(comp.bytesIn(), 0u);
    const double ratio = static_cast<double>(comp.bytesIn()) /
                         static_cast<double>(comp.bytesOut());
    EXPECT_GT(ratio, 1.5) << "Silesia-like payloads must compress";
}

TEST(Compress, ResponseHeaderIsConsistent)
{
    CompressFunction comp;
    auto st = nullState();
    Rng rng(11);
    auto pkt = blankPacket();
    comp.makeRequest(*pkt, rng);
    const std::size_t payload = pkt->payload().size();
    comp.process(*pkt, st);
    EXPECT_EQ(net::load32(pkt->payload().data()), payload);
    EXPECT_EQ(net::load32(pkt->payload().data() + 4), comp.bytesOut());
}

TEST(Pipeline, RunsBothStagesInOrder)
{
    // NAT + REM: NAT translates the header, REM scans the payload.
    auto pipe = makePipeline(FunctionId::Nat, FunctionId::Rem);
    EXPECT_FALSE(pipe->stateful());

    auto st = nullState();
    Rng rng(12);
    auto pkt = blankPacket();
    pipe->makeRequest(*pkt, rng);
    pipe->process(*pkt, st);
    // REM is last: payload leads with a match count (possibly 0),
    // and NAT ran: destination was rewritten into the internal range.
    EXPECT_EQ(pkt->ip().dst().value & 0xffff0000,
              net::Ipv4Addr(192, 168, 0, 0).value);
    EXPECT_TRUE(pkt->ip().checksumOk());
}

TEST(Pipeline, StatefulnessPropagates)
{
    EXPECT_TRUE(
        makePipeline(FunctionId::Count, FunctionId::Rem)->stateful());
    EXPECT_TRUE(
        makePipeline(FunctionId::Nat, FunctionId::Ema)->stateful());
}

TEST(Calibration, ProfilesMatchPaperAnchors)
{
    using enum FunctionId;
    // Table V / Table II anchors.
    EXPECT_NEAR(profile(Platform::SnicBf2, Nat).max_tp_gbps, 41.0, 0.01);
    EXPECT_NEAR(profile(Platform::HostSkylake, Nat).max_tp_gbps, 89.2,
                0.01);
    EXPECT_NEAR(profile(Platform::SnicBf2, Count).max_tp_gbps, 58.4, 0.01);
    EXPECT_NEAR(profile(Platform::SnicBf2, Kvs).max_tp_gbps, 3.0, 0.01);
    EXPECT_NEAR(profile(Platform::SnicBf2, Bayes).max_tp_gbps, 0.1, 0.001);
    // REM accel capped at 50 Gbps (§III-A).
    EXPECT_EQ(profile(Platform::SnicBf2, Rem).unit, ExecUnit::Accel);
    EXPECT_NEAR(profile(Platform::SnicBf2, Rem).cap_gbps, 50.0, 0.01);
    // Host crypto/compression ride QAT (Table I).
    EXPECT_EQ(profile(Platform::HostSkylake, Crypto).unit,
              ExecUnit::Accel);
    EXPECT_EQ(profile(Platform::HostSkylake, Compress).unit,
              ExecUnit::Accel);
}

TEST(Calibration, ServiceTimeReproducesMaxThroughput)
{
    // 8 cores at the per-core MTU service time must hit max_tp.
    for (Platform p : {Platform::HostSkylake, Platform::SnicBf2}) {
        for (FunctionId f : allFunctions()) {
            const auto &prof = profile(p, f);
            if (prof.unit != ExecUnit::Cpu)
                continue;
            const Tick per_pkt = prof.serviceTicks(1500);
            const double tp =
                gbps(1500, per_pkt) * prof.ref_cores;
            EXPECT_NEAR(tp, prof.max_tp_gbps, prof.max_tp_gbps * 0.01)
                << platformName(p) << "/" << functionName(f);
        }
    }
}

TEST(Calibration, SmallPacketsCostRelativelyMore)
{
    // §III-A: the SNIC reaches line rate at MTU but only 40 Gbps at
    // 64 B. Per-byte cost must rise as frames shrink.
    const auto &fwd = profile(Platform::SnicBf2, FunctionId::DpdkFwd);
    const double tp64 = gbps(64, fwd.serviceTicks(64)) * fwd.ref_cores;
    const double tp1500 =
        gbps(1500, fwd.serviceTicks(1500)) * fwd.ref_cores;
    EXPECT_NEAR(tp1500, 100.0, 1.0);
    EXPECT_NEAR(tp64, 40.0, 4.0);
}

TEST(Calibration, RemRulesetVariants)
{
    // §III-A: host wins on teakettle, loses 19x on snort_literals.
    const auto &tea =
        remProfile(Platform::HostSkylake, alg::RulesetKind::Teakettle);
    const auto &lite = remProfile(Platform::HostSkylake,
                                  alg::RulesetKind::SnortLiterals);
    const auto &snic =
        remProfile(Platform::SnicBf2, alg::RulesetKind::SnortLiterals);
    EXPECT_GT(tea.max_tp_gbps, snic.max_tp_gbps);
    EXPECT_NEAR(snic.max_tp_gbps / lite.max_tp_gbps, 19.0, 3.0);
}

TEST(Calibration, PkaRatiosInPaperRange)
{
    std::size_t n = 0;
    const auto *rows = pkaCalib(&n);
    ASSERT_EQ(n, 3u);
    for (std::size_t i = 0; i < n; ++i) {
        const double ratio = rows[i].host_ops_per_s /
                             rows[i].snic_ops_per_s;
        EXPECT_GE(ratio, 24.0) << rows[i].op;
        EXPECT_LE(ratio, 115.0 + 1e-9) << rows[i].op;
        const double lat_cut = 1.0 - static_cast<double>(
            rows[i].host_latency) / rows[i].snic_latency;
        EXPECT_GE(lat_cut, 0.95) << rows[i].op;
        EXPECT_LE(lat_cut, 0.99) << rows[i].op;
    }
}
