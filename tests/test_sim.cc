/**
 * @file
 * Event queue ordering/determinism, statistics primitives, and RNG
 * distribution sanity.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/parallel.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

using namespace halsim;

TEST(Types, TransferTicks)
{
    // 1500 B at 100 Gbps = 120 ns.
    EXPECT_EQ(transferTicks(1500, 100.0), 120 * kNs);
    // 64 B at 100 Gbps = 5.12 ns = 5120 ps.
    EXPECT_EQ(transferTicks(64, 100.0), 5120u);
    EXPECT_EQ(transferTicks(0, 100.0), 0u);
    // Sub-tick transfers round up to 1 so time advances.
    EXPECT_GE(transferTicks(1, 1e9), 1u);
}

TEST(Types, GbpsInverse)
{
    const Tick t = transferTicks(123456, 73.5);
    EXPECT_NEAR(gbps(123456, t), 73.5, 0.01);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleFn([&] { order.push_back(3); }, 300);
    eq.scheduleFn([&] { order.push_back(1); }, 100);
    eq.scheduleFn([&] { order.push_back(2); }, 200);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.scheduleFn([&order, i] { order.push_back(i); }, 500);
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunUntilStopsAndClampsTime)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleFn([&] { ++fired; }, 100);
    eq.scheduleFn([&] { ++fired; }, 900);
    const auto n = eq.runUntil(500);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 500u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            eq.scheduleFnIn(recurse, 10);
    };
    eq.scheduleFn(recurse, 0);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, DescheduleCancels)
{
    EventQueue eq;
    bool fired = false;
    CallbackEvent ev([&] { fired = true; });
    eq.schedule(&ev, 100);
    EXPECT_TRUE(ev.scheduled());
    eq.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RescheduleMoves)
{
    EventQueue eq;
    Tick firedAt = 0;
    CallbackEvent ev([&] { firedAt = eq.now(); });
    eq.schedule(&ev, 100);
    eq.reschedule(&ev, 250);
    eq.run();
    EXPECT_EQ(firedAt, 250u);
}

TEST(UniqueFn, SmallCapturesAreInline)
{
    // The datapath one-shots capture a packet pointer plus a couple
    // of component pointers; all of them must avoid the heap.
    struct LinkHop
    {
        void *self;
        void *raw;
        void operator()() {}
    };
    struct FinishHop
    {
        void *self;
        std::unique_ptr<int> owned;
        void operator()() {}
    };
    static_assert(UniqueFn::inlined<LinkHop>());
    static_assert(UniqueFn::inlined<FinishHop>());

    // And an inline callable still runs (and moves) correctly.
    int hits = 0;
    UniqueFn fn([&hits] { ++hits; });
    UniqueFn moved(std::move(fn));
    moved();
    EXPECT_EQ(hits, 1);
}

TEST(UniqueFn, LargeCapturesFallBackToHeap)
{
    struct Big
    {
        char blob[128];
        int *counter;
        void operator()() { ++*counter; }
    };
    static_assert(!UniqueFn::inlined<Big>());
    int hits = 0;
    Big big{};
    big.counter = &hits;
    UniqueFn fn(big);
    UniqueFn moved(std::move(fn));
    moved();
    EXPECT_EQ(hits, 1);
}

TEST(EventQueue, OneShotWrappersAreRecycled)
{
    EventQueue eq;
    int fired = 0;
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 10; ++i)
            eq.scheduleFnIn([&fired] { ++fired; }, i + 1);
        eq.run();
    }
    EXPECT_EQ(fired, 30);
    // Steady state: at most as many wrappers exist as were ever
    // simultaneously pending, and they all sit idle in the pool now.
    EXPECT_LE(eq.poolSize(), 10u);
    EXPECT_GE(eq.poolSize(), 1u);

    eq.setPoolingEnabled(false);
    EXPECT_EQ(eq.poolSize(), 0u);
    eq.scheduleFnIn([&fired] { ++fired; }, 1);
    eq.run();
    EXPECT_EQ(fired, 31);
}

TEST(EventQueue, HeapCompactionBoundsTombstones)
{
    // A rate-limiter retimer pattern: events that constantly
    // reschedule leave one tombstone per move. Without compaction
    // heap_ grows without bound; with it, slots stay within a small
    // multiple of the live count.
    EventQueue eq;
    constexpr int kEvents = 32;
    std::vector<std::unique_ptr<CallbackEvent>> evs;
    Rng rng(3);
    for (int i = 0; i < kEvents; ++i)
        evs.push_back(std::make_unique<CallbackEvent>());

    std::uint64_t moves = 0;
    CallbackEvent churn;
    churn.setCallback([&] {
        for (auto &ev : evs)
            eq.reschedule(ev.get(),
                          eq.now() + 1000 + (rng.next() & 255));
        if (++moves < 2000)
            eq.scheduleIn(&churn, 10);
        else
            for (auto &ev : evs)
                eq.deschedule(ev.get());
    });
    for (auto &ev : evs)
        eq.scheduleIn(ev.get(), 1000);
    eq.scheduleIn(&churn, 1);
    eq.run();

    // 2000 churn rounds x 32 reschedules = 64k tombstones created;
    // the heap must stay within a constant factor of the live set.
    EXPECT_LE(eq.heapSlots(), 4u * kEvents + 64u);
}

TEST(ParallelFor, CoversAllIndicesOnceAnyThreadCount)
{
    for (unsigned threads : {0u, 1u, 2u, 5u}) {
        std::vector<int> hits(997, 0);
        parallelFor(hits.size(), threads,
                    [&](std::size_t i) { hits[i]++; });
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i], 1) << "i=" << i << " threads=" << threads;
    }
}

TEST(ParallelFor, PropagatesFirstException)
{
    EXPECT_THROW(
        parallelFor(64, 4,
                    [](std::size_t i) {
                        if (i == 13)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);
}

TEST(EventQueue, RecurringEventReschedulesItself)
{
    EventQueue eq;
    int count = 0;
    CallbackEvent tick;
    tick.setCallback([&] {
        if (++count < 4)
            eq.scheduleIn(&tick, 1000);
    });
    eq.scheduleIn(&tick, 1000);
    eq.run();
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.now(), 4000u);
}

TEST(EventQueue, NextTickSeesThroughTombstones)
{
    EventQueue eq;
    CallbackEvent a([] {});
    eq.schedule(&a, 10);
    eq.scheduleFn([] {}, 20);
    eq.deschedule(&a);
    EXPECT_EQ(eq.nextTick(), 20u);
}

TEST(Accumulator, Moments)
{
    Accumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.sample(v);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Accumulator, MergeEqualsCombined)
{
    Rng rng(1);
    Accumulator a, b, whole;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.normal(10.0, 3.0);
        whole.sample(v);
        (i % 2 ? a : b).sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
}

TEST(Histogram, QuantileAgainstExactSort)
{
    Rng rng(2);
    Histogram h;
    std::vector<double> all;
    for (int i = 0; i < 50000; ++i) {
        // Latency-like heavy-tail values between 1 us and ~10 ms.
        const double v = static_cast<double>(kUs) *
                         std::exp(rng.normal(1.0, 1.2));
        h.sample(v);
        all.push_back(v);
    }
    std::sort(all.begin(), all.end());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        const double exact = all[static_cast<std::size_t>(
            q * static_cast<double>(all.size() - 1))];
        const double est = h.quantile(q);
        // Geometric bins (64/decade) bound relative error to a few %.
        EXPECT_NEAR(est / exact, 1.0, 0.05)
            << "q=" << q << " exact=" << exact << " est=" << est;
    }
}

TEST(Histogram, EdgeCases)
{
    Histogram h;
    EXPECT_EQ(h.quantile(0.99), 0.0);
    h.sample(5.0 * static_cast<double>(kUs));
    EXPECT_DOUBLE_EQ(h.p99(), 5.0 * static_cast<double>(kUs));
    EXPECT_EQ(h.count(), 1u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(1e3, 1e6, 16);
    h.sample(1.0);      // below range
    h.sample(1e9);      // above range
    EXPECT_EQ(h.count(), 2u);
    EXPECT_GT(h.quantile(0.99), 0.0);
}

TEST(TimeWeighted, IntegratesPiecewiseConstant)
{
    TimeWeighted tw(100.0);
    tw.set(200.0, 10);          // 100 for [0,10)
    tw.set(50.0, 30);           // 200 for [10,30)
    // Integral to 40: 100*10 + 200*20 + 50*10 = 5500.
    EXPECT_DOUBLE_EQ(tw.integral(40), 5500.0);
    EXPECT_DOUBLE_EQ(tw.average(40), 137.5);
}

TEST(TimeWeighted, ResetStartsNewWindow)
{
    TimeWeighted tw(10.0);
    tw.set(20.0, 100);
    tw.resetAt(100);
    EXPECT_DOUBLE_EQ(tw.average(200), 20.0);
}

TEST(RateMeter, ReportsGbps)
{
    RateMeter m;
    m.resetAt(0);
    m.add(1500);
    // 1500 B over 120 ns = 100 Gbps.
    EXPECT_NEAR(m.gbpsAt(120 * kNs), 100.0, 1e-9);
}

TEST(Rng, Deterministic)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformBounds)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        EXPECT_LT(rng.uniformInt(7), 7u);
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(6);
    Accumulator acc;
    for (int i = 0; i < 200000; ++i)
        acc.sample(rng.normal(3.0, 2.0));
    EXPECT_NEAR(acc.mean(), 3.0, 0.02);
    EXPECT_NEAR(acc.stddev(), 2.0, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(7);
    Accumulator acc;
    for (int i = 0; i < 200000; ++i)
        acc.sample(rng.exponential(5.0));
    EXPECT_NEAR(acc.mean(), 5.0, 0.1);
}

TEST(Rng, LognormalMedian)
{
    // Median of lognormal(mu, sigma) is exp(mu).
    Rng rng(8);
    std::vector<double> v;
    for (int i = 0; i < 100001; ++i)
        v.push_back(rng.lognormal(1.5, 0.8));
    std::nth_element(v.begin(), v.begin() + 50000, v.end());
    EXPECT_NEAR(v[50000], std::exp(1.5), 0.1);
}

TEST(Rng, ForkDiverges)
{
    Rng a(9);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}
