/**
 * @file
 * Bit-exact determinism of the simulator under the hot-path
 * machinery: the same seed must yield byte-identical RunResults
 * (every field, including latency quantiles and fault counters)
 * regardless of
 *
 *  - event/packet pooling on vs. off (pure recycling optimisations
 *    must be observationally invisible),
 *  - sweep worker count 1 vs. N (each point owns a private
 *    EventQueue, so parallelism must not perturb anything), and
 *  - observability on vs. off (stats probes and the packet tracer
 *    are read-only observers; §DESIGN.md 10's neutrality contract).
 *
 * The obs artifacts themselves (stats trees, trace text) must also be
 * byte-identical across sweep thread counts.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/server.hh"
#include "core/sweep.hh"
#include "fleet/fleet.hh"
#include "net/packet_pool.hh"
#include "net/traffic.hh"
#include "obs/obs.hh"
#include "sim/event_queue.hh"

using namespace halsim;
using namespace halsim::core;

namespace {

/** Exact bit equality for doubles (EXPECT_EQ would accept -0 == 0). */
void
expectBitEqual(double a, double b, const char *field)
{
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a),
              std::bit_cast<std::uint64_t>(b))
        << field << ": " << a << " vs " << b;
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    expectBitEqual(a.offered_gbps, b.offered_gbps, "offered_gbps");
    expectBitEqual(a.delivered_gbps, b.delivered_gbps, "delivered_gbps");
    expectBitEqual(a.max_window_gbps, b.max_window_gbps,
                   "max_window_gbps");
    expectBitEqual(a.p99_us, b.p99_us, "p99_us");
    expectBitEqual(a.mean_us, b.mean_us, "mean_us");
    expectBitEqual(a.system_power_w, b.system_power_w, "system_power_w");
    expectBitEqual(a.dynamic_power_w, b.dynamic_power_w,
                   "dynamic_power_w");
    expectBitEqual(a.energy_eff, b.energy_eff, "energy_eff");
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.responses, b.responses);
    EXPECT_EQ(a.drops, b.drops);
    EXPECT_EQ(a.in_flight_at_window_end, b.in_flight_at_window_end);
    EXPECT_EQ(a.snic_frames, b.snic_frames);
    EXPECT_EQ(a.host_frames, b.host_frames);
    EXPECT_EQ(a.slb_kept, b.slb_kept);
    EXPECT_EQ(a.slb_forwarded, b.slb_forwarded);
    expectBitEqual(a.final_fwd_th_gbps, b.final_fwd_th_gbps,
                   "final_fwd_th_gbps");
    EXPECT_EQ(a.faults_injected, b.faults_injected);
    EXPECT_EQ(a.faults_reverted, b.faults_reverted);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.recoveries, b.recoveries);
    expectBitEqual(a.degraded_us, b.degraded_us, "degraded_us");
    expectBitEqual(a.time_to_recover_us, b.time_to_recover_us,
                   "time_to_recover_us");
    EXPECT_EQ(a.failover_drops, b.failover_drops);
    EXPECT_EQ(a.ctrl_updates_dropped, b.ctrl_updates_dropped);
    expectBitEqual(a.energy_snic_cpu_j, b.energy_snic_cpu_j,
                   "energy_snic_cpu_j");
    expectBitEqual(a.energy_snic_accel_j, b.energy_snic_accel_j,
                   "energy_snic_accel_j");
    expectBitEqual(a.energy_host_cpu_j, b.energy_host_cpu_j,
                   "energy_host_cpu_j");
    expectBitEqual(a.energy_host_accel_j, b.energy_host_accel_j,
                   "energy_host_accel_j");
    expectBitEqual(a.energy_extra_j, b.energy_extra_j, "energy_extra_j");
    expectBitEqual(a.energy_static_j, b.energy_static_j,
                   "energy_static_j");
    expectBitEqual(a.energy_total_j, b.energy_total_j, "energy_total_j");
    expectBitEqual(a.j_per_request, b.j_per_request, "j_per_request");
    expectBitEqual(a.j_per_gb, b.j_per_gb, "j_per_gb");
    expectBitEqual(a.slo_target_p99_us, b.slo_target_p99_us,
                   "slo_target_p99_us");
    expectBitEqual(a.slo_worst_p99_us, b.slo_worst_p99_us,
                   "slo_worst_p99_us");
    EXPECT_EQ(a.slo_epochs, b.slo_epochs);
    EXPECT_EQ(a.slo_violation_epochs, b.slo_violation_epochs);
    EXPECT_EQ(a.fleet_backends, b.fleet_backends);
    EXPECT_EQ(a.fleet_retries, b.fleet_retries);
    EXPECT_EQ(a.fleet_timeouts, b.fleet_timeouts);
    EXPECT_EQ(a.fleet_duplicates, b.fleet_duplicates);
    EXPECT_EQ(a.fleet_sheds, b.fleet_sheds);
    EXPECT_EQ(a.fleet_requests_failed, b.fleet_requests_failed);
    EXPECT_EQ(a.fleet_failovers, b.fleet_failovers);
    EXPECT_EQ(a.fleet_flows_migrated, b.fleet_flows_migrated);
    EXPECT_EQ(a.fleet_drain_timeouts, b.fleet_drain_timeouts);
    EXPECT_EQ(a.fleet_probes_failed, b.fleet_probes_failed);
    EXPECT_EQ(a.fleet_backend_served_min, b.fleet_backend_served_min);
    EXPECT_EQ(a.fleet_backend_served_max, b.fleet_backend_served_max);
    expectBitEqual(a.energy_fleet_j, b.energy_fleet_j, "energy_fleet_j");
    EXPECT_EQ(a.gov_epochs, b.gov_epochs);
    EXPECT_EQ(a.gov_rebalances, b.gov_rebalances);
    EXPECT_EQ(a.gov_migrations, b.gov_migrations);
    EXPECT_EQ(a.gov_parks, b.gov_parks);
    EXPECT_EQ(a.gov_unparks, b.gov_unparks);
    EXPECT_EQ(a.gov_min_active_cores, b.gov_min_active_cores);
    EXPECT_EQ(a.gov_max_active_cores, b.gov_max_active_cores);
    EXPECT_EQ(a.past_clamps, b.past_clamps);
    EXPECT_EQ(a.trace_spans, b.trace_spans);
    EXPECT_EQ(a.fr_dumps, b.fr_dumps);
    EXPECT_EQ(a.fr_trigger_fault, b.fr_trigger_fault);
    EXPECT_EQ(a.fr_trigger_slo, b.fr_trigger_slo);
    EXPECT_EQ(a.fr_trigger_shed, b.fr_trigger_shed);
    EXPECT_EQ(a.fr_trigger_gov, b.fr_trigger_gov);
}

/** A HAL point with a transient fault so that every fault/watchdog
 *  counter is actually exercised, not trivially zero. */
ServerConfig
faultedHalConfig()
{
    ServerConfig cfg;
    cfg.mode = Mode::Hal;
    cfg.function = funcs::FunctionId::Nat;
    cfg.faults.processorFailure(fault::FaultTarget::Host, 15 * kMs,
                                8 * kMs);
    // Arm the SLO monitor so its epoch/violation counters are part of
    // every identity check below, not trivially zero.
    cfg.slo.target_p99_us = 200.0;
    return cfg;
}

RunResult
runOnce(const ServerConfig &cfg, double rate_gbps, bool pooling)
{
    net::PacketPool::local().setEnabled(pooling);
    net::PacketPool::local().clear();
    EventQueue eq;
    eq.setPoolingEnabled(pooling);
    ServerSystem sys(eq, cfg);
    RunResult r =
        sys.run(std::make_unique<net::ConstantRate>(rate_gbps), 5 * kMs,
                30 * kMs);
    // A release-mode schedule-into-past clamp is a silent causality
    // bug (debug builds assert); every run in this suite must be
    // clamp-free.
    EXPECT_EQ(r.past_clamps, 0u);
    net::PacketPool::local().setEnabled(true);
    return r;
}

/** A HAL point eligible for the partitioned (time-parallel) engine:
 *  stateless function, no faults, watchdog off, obs off. */
ServerConfig
partitionableHalConfig(unsigned run_threads)
{
    ServerConfig cfg;
    cfg.mode = Mode::Hal;
    cfg.function = funcs::FunctionId::DpdkFwd;
    cfg.watchdog.enabled = false;
    cfg.slo.target_p99_us = 200.0;
    cfg.run_threads = run_threads;
    return cfg;
}

RunResult
runPartitioned(const ServerConfig &cfg, double rate_gbps,
               bool expect_partitioned, bool batching = true)
{
    EventQueue eq;
    eq.setBatchingEnabled(batching);
    ServerSystem sys(eq, cfg);
    EXPECT_EQ(sys.partitioned(), expect_partitioned);
    return sys.run(std::make_unique<net::ConstantRate>(rate_gbps),
                   5 * kMs, 30 * kMs);
}

} // namespace

TEST(Determinism, PoolingOnVsOffIdentical)
{
    const ServerConfig cfg = faultedHalConfig();
    const RunResult pooled = runOnce(cfg, 60.0, true);
    const RunResult bare = runOnce(cfg, 60.0, false);
    // The fault plan must have fired for this test to mean anything.
    ASSERT_GT(pooled.faults_injected, 0u);
    ASSERT_GT(pooled.failovers, 0u);
    expectIdentical(pooled, bare);
}

TEST(Determinism, RepeatedRunsIdentical)
{
    const ServerConfig cfg = faultedHalConfig();
    const RunResult a = runOnce(cfg, 60.0, true);
    const RunResult b = runOnce(cfg, 60.0, true);
    expectIdentical(a, b);
}

TEST(Determinism, ObsOnVsOffIdentical)
{
    ServerConfig off = faultedHalConfig();
    ServerConfig on = faultedHalConfig();
    on.obs.stats = true;
    on.obs.trace = true;
    on.obs.series = true;
    on.obs.trace_sample_every = 8;

    const RunResult r_off = runOnce(off, 60.0, true);
    const RunResult r_on = runOnce(on, 60.0, true);
    ASSERT_GT(r_on.faults_injected, 0u);
    // Energy and SLO accounting run whether or not obs is enabled, so
    // they must agree too (and actually measure something).
    ASSERT_GT(r_on.energy_total_j, 0.0);
    ASSERT_GT(r_on.slo_epochs, 0u);
    expectIdentical(r_off, r_on);

    // The serialized form must match byte for byte too.
    std::ostringstream ja, jb;
    r_off.toJson(ja);
    r_on.toJson(jb);
    EXPECT_EQ(ja.str(), jb.str());
}

TEST(Determinism, ObsArtifactsIdenticalAcrossSweepThreads)
{
    std::vector<SweepPoint> points;
    for (double rate : {40.0, 80.0}) {
        SweepPoint p;
        p.cfg = faultedHalConfig();
        p.rate_gbps = rate;
        p.warmup = 5 * kMs;
        p.measure = 20 * kMs;
        p.label = "hal" + std::to_string(static_cast<int>(rate));
        points.push_back(std::move(p));
    }
    {
        SweepPoint p;
        p.cfg = ServerConfig::slbBaseline();
        p.rate_gbps = 60.0;
        p.warmup = 5 * kMs;
        p.measure = 20 * kMs;
        p.label = "slb";
        points.push_back(std::move(p));
    }

    auto artifacts = [&points](unsigned threads) {
        const std::string base = ::testing::TempDir() + "det_obs_t" +
                                 std::to_string(threads);
        SweepOptions opts;
        opts.threads = threads;
        opts.json_path = base + ".json";
        opts.stats_path = base + "_stats.json";
        opts.trace_path = base + "_trace.json";
        runSweep(points, opts);
        auto slurp = [](const std::string &path) {
            std::ifstream in(path, std::ios::binary);
            std::ostringstream os;
            os << in.rdbuf();
            return os.str();
        };
        return std::vector<std::string>{slurp(opts.json_path),
                                        slurp(opts.stats_path),
                                        slurp(opts.trace_path)};
    };

    const auto serial = artifacts(1);
    const auto parallel = artifacts(4);
    ASSERT_FALSE(serial[0].empty());
    ASSERT_FALSE(serial[1].empty());
    ASSERT_FALSE(serial[2].empty());
    // The results header records the worker count used, which is the
    // one field that legitimately differs; everything from the point
    // rows onward must match byte for byte.
    const auto fromPoints = [](const std::string &s) {
        const std::size_t pos = s.find("\"points\"");
        EXPECT_NE(pos, std::string::npos);
        return s.substr(pos == std::string::npos ? 0 : pos);
    };
    EXPECT_EQ(fromPoints(serial[0]), fromPoints(parallel[0]));
    EXPECT_EQ(serial[1], parallel[1]);   // stats trees
    EXPECT_EQ(serial[2], parallel[2]);   // Chrome trace
}

TEST(Determinism, FleetSweepThreads1VsNIdentical)
{
    // Fleet runs with faults armed must be bit-identical across sweep
    // worker counts, artifacts included — same contract as the
    // single-server sweep.
    std::vector<fleet::FleetSweepPoint> points;
    for (double rate : {20.0, 45.0}) {
        fleet::FleetSweepPoint p;
        p.cfg.backends = 3;
        p.cfg.slo.target_p99_us = 500.0;
        p.cfg.faults.backendCrash(1, 8 * kMs); // permanent, mid-window
        p.cfg.faults.probeLoss(0.2, 2 * kMs, 4 * kMs);
        p.rate_gbps = rate;
        p.warmup = 5 * kMs;
        p.measure = 20 * kMs;
        p.label = "fleet" + std::to_string(static_cast<int>(rate));
        points.push_back(std::move(p));
    }

    auto artifacts = [&points](unsigned threads) {
        const std::string base = ::testing::TempDir() + "det_fleet_t" +
                                 std::to_string(threads);
        SweepOptions opts;
        opts.threads = threads;
        opts.json_path = base + ".json";
        opts.stats_path = base + "_stats.json";
        const auto results = fleet::runFleetSweep(points, opts);
        auto slurp = [](const std::string &path) {
            std::ifstream in(path, std::ios::binary);
            std::ostringstream os;
            os << in.rdbuf();
            return os.str();
        };
        return std::make_pair(
            results, std::vector<std::string>{slurp(opts.json_path),
                                              slurp(opts.stats_path)});
    };

    const auto [rs, as] = artifacts(1);
    const auto [rp, ap] = artifacts(4);
    ASSERT_EQ(rs.size(), points.size());
    // The crash must actually have fired and been failed over.
    ASSERT_GT(rs[0].faults_injected, 0u);
    ASSERT_GT(rs[0].fleet_failovers, 0u);
    for (std::size_t i = 0; i < rs.size(); ++i) {
        SCOPED_TRACE(i);
        expectIdentical(rs[i], rp[i]);
    }
    ASSERT_FALSE(as[0].empty());
    ASSERT_FALSE(as[1].empty());
    const auto fromPoints = [](const std::string &s) {
        const std::size_t pos = s.find("\"points\"");
        EXPECT_NE(pos, std::string::npos);
        return s.substr(pos == std::string::npos ? 0 : pos);
    };
    EXPECT_EQ(fromPoints(as[0]), fromPoints(ap[0]));
    EXPECT_EQ(as[1], ap[1]); // stats trees
}

TEST(Determinism, SpanArtifactsIdenticalAcrossSweepThreads)
{
    // Span + flight-recorder artifacts from a faulted fleet sweep must
    // be byte-identical across sweep worker counts: each point's rings
    // live inside its own FleetSystem, and the reports serialize in
    // input order.
    std::vector<fleet::FleetSweepPoint> points;
    for (double rate : {20.0, 45.0}) {
        fleet::FleetSweepPoint p;
        p.cfg.backends = 3;
        p.cfg.slo.target_p99_us = 500.0;
        p.cfg.faults.backendCrash(1, 8 * kMs); // permanent, mid-window
        p.rate_gbps = rate;
        p.warmup = 5 * kMs;
        p.measure = 20 * kMs;
        p.label = "span" + std::to_string(static_cast<int>(rate));
        points.push_back(std::move(p));
    }

    auto artifacts = [&points](unsigned threads) {
        const std::string base = ::testing::TempDir() + "det_span_t" +
                                 std::to_string(threads);
        SweepOptions opts;
        opts.threads = threads;
        opts.span_path = base + "_spans.json";
        opts.flightrec_path = base + "_fr.json";
        const auto results = fleet::runFleetSweep(points, opts);
        auto slurp = [](const std::string &path) {
            std::ifstream in(path, std::ios::binary);
            std::ostringstream os;
            os << in.rdbuf();
            return os.str();
        };
        return std::make_pair(
            results,
            std::vector<std::string>{slurp(opts.span_path),
                                     slurp(opts.flightrec_path)});
    };

    const auto [rs, as] = artifacts(1);
    const auto [rp, ap] = artifacts(4);
    ASSERT_EQ(rs.size(), points.size());
    // The artifact flags force spans + flight recorder on, the crash
    // must have fired a trigger, and spans must have been recorded.
    ASSERT_GT(rs[0].trace_spans, 0u);
    ASSERT_GT(rs[0].fr_trigger_fault, 0u);
    for (std::size_t i = 0; i < rs.size(); ++i) {
        SCOPED_TRACE(i);
        expectIdentical(rs[i], rp[i]);
    }
    ASSERT_FALSE(as[0].empty());
    ASSERT_FALSE(as[1].empty());
    EXPECT_EQ(as[0], ap[0]); // span trace
    EXPECT_EQ(as[1], ap[1]); // flight-recorder dumps
}

TEST(Determinism, SpanArtifactsIdenticalAcrossRunThreads)
{
    // Enabling spans/flight recorder makes a point obs-enabled, which
    // disqualifies it from the partitioned single-run engine — a
    // run_threads 3 request must fall back to the monolithic engine
    // and reproduce the run_threads 0 artifacts byte for byte.
    std::vector<SweepPoint> points;
    for (unsigned run_threads : {0u, 3u}) {
        SweepPoint p;
        p.cfg = faultedHalConfig();
        p.cfg.run_threads = run_threads;
        // Server-side spans come from the packet-stage bridge, so the
        // packet tracer must be live too.
        p.cfg.obs.trace = true;
        p.rate_gbps = 60.0;
        p.warmup = 5 * kMs;
        p.measure = 20 * kMs;
        p.label = "rt"; // same label: rows must serialize identically
        points.push_back(std::move(p));
    }

    auto artifacts = [&points](std::size_t which) {
        const std::string base = ::testing::TempDir() + "det_span_rt" +
                                 std::to_string(which);
        SweepOptions opts;
        opts.threads = 1;
        opts.span_path = base + "_spans.json";
        opts.flightrec_path = base + "_fr.json";
        std::vector<SweepPoint> one{points[which]};
        const auto results = runSweep(one, opts);
        auto slurp = [](const std::string &path) {
            std::ifstream in(path, std::ios::binary);
            std::ostringstream os;
            os << in.rdbuf();
            return os.str();
        };
        return std::make_pair(
            results[0],
            std::vector<std::string>{slurp(opts.span_path),
                                     slurp(opts.flightrec_path)});
    };

    const auto [r0, a0] = artifacts(0);
    const auto [r3, a3] = artifacts(1);
    ASSERT_GT(r0.trace_spans, 0u);
    ASSERT_GT(r0.fr_trigger_fault, 0u);
    expectIdentical(r0, r3);
    ASSERT_FALSE(a0[0].empty());
    ASSERT_FALSE(a0[1].empty());
    EXPECT_EQ(a0[0], a3[0]); // span trace
    EXPECT_EQ(a0[1], a3[1]); // flight-recorder dumps
}

TEST(Determinism, BatchOnVsOffIdentical)
{
    // Event batching (burst coalescing + channel inline drains) is a
    // pure dispatch optimisation; turning it off must be
    // observationally invisible — RunResult, serialized form, and the
    // full stats tree, faults and all.
    ServerConfig cfg = faultedHalConfig();
    cfg.obs.stats = true;
    net::PacketPool::local().clear();
    EventQueue eqOn, eqOff;
    eqOff.setBatchingEnabled(false);
    ServerSystem sysOn(eqOn, cfg);
    const RunResult on = sysOn.run(
        std::make_unique<net::ConstantRate>(60.0), 5 * kMs, 30 * kMs);
    std::ostringstream statsOn;
    ASSERT_NE(sysOn.obs(), nullptr);
    sysOn.obs()->writeStatsJson(statsOn);
    ServerSystem sysOff(eqOff, cfg);
    const RunResult off = sysOff.run(
        std::make_unique<net::ConstantRate>(60.0), 5 * kMs, 30 * kMs);
    std::ostringstream statsOff;
    ASSERT_NE(sysOff.obs(), nullptr);
    sysOff.obs()->writeStatsJson(statsOff);
    ASSERT_GT(on.faults_injected, 0u);
    expectIdentical(on, off);
    std::ostringstream ja, jb;
    on.toJson(ja);
    off.toJson(jb);
    EXPECT_EQ(ja.str(), jb.str());
    ASSERT_FALSE(statsOn.str().empty());
    EXPECT_EQ(statsOn.str(), statsOff.str());
}

TEST(Determinism, RunThreadsPartitionedIdentical)
{
    // The time-parallel engine must be bit-identical across its own
    // thread counts (same window sequence, (tick, band, seq) merge
    // order) AND against the monolithic single-queue run.
    const RunResult mono =
        runPartitioned(partitionableHalConfig(0), 60.0, false);
    const RunResult part1 =
        runPartitioned(partitionableHalConfig(1), 60.0, true);
    const RunResult part3 =
        runPartitioned(partitionableHalConfig(3), 60.0, true);
    ASSERT_GT(part1.responses, 0u);
    ASSERT_GT(part1.slo_epochs, 0u);
    expectIdentical(part1, part3);
    expectIdentical(mono, part1);
}

TEST(Determinism, PartitionedIdenticalWithBatchingOff)
{
    // Orthogonality: wheels x batching. Same answer in every cell.
    const RunResult a =
        runPartitioned(partitionableHalConfig(3), 80.0, true, true);
    const RunResult b =
        runPartitioned(partitionableHalConfig(3), 80.0, true, false);
    ASSERT_GT(a.responses, 0u);
    expectIdentical(a, b);
}

TEST(Determinism, UnsupportedConfigFallsBackToMonolithic)
{
    // run_threads on a config the partitioned engine cannot take
    // (faults armed, watchdog on) must coerce to the monolithic loop
    // and change nothing.
    ServerConfig threaded = faultedHalConfig();
    threaded.run_threads = 3;
    net::PacketPool::local().clear();
    EventQueue eqA, eqB;
    ServerSystem sysA(eqA, threaded);
    EXPECT_FALSE(sysA.partitioned());
    const RunResult a = sysA.run(
        std::make_unique<net::ConstantRate>(60.0), 5 * kMs, 30 * kMs);
    const RunResult b = runOnce(faultedHalConfig(), 60.0, true);
    ASSERT_GT(a.faults_injected, 0u);
    expectIdentical(a, b);
}

TEST(Determinism, GovernorSweepThreads1VsNIdentical)
{
    // Governor-armed points: the epoch tick, flow-group migrations,
    // and park/unpark decisions all live on the owning processor's
    // wheel, so sweep-level parallelism must stay bit-invisible.
    std::vector<SweepPoint> points;
    for (double rate : {4.0, 30.0, 70.0}) {
        SweepPoint p;
        p.cfg.mode = Mode::Hal;
        p.cfg.function = funcs::FunctionId::Nat;
        p.cfg.power.governor.enabled = true;
        p.rate_gbps = rate;
        p.warmup = 5 * kMs;
        p.measure = 30 * kMs;
        points.push_back(std::move(p));
    }

    SweepOptions serial, parallel;
    serial.threads = 1;
    parallel.threads = 4;
    const auto rs = runSweep(points, serial);
    const auto rp = runSweep(points, parallel);
    ASSERT_EQ(rs.size(), points.size());
    // The low-rate point must actually exercise the consolidation
    // machinery for this identity to mean anything.
    ASSERT_GT(rs[0].gov_epochs, 0u);
    ASSERT_GT(rs[0].gov_parks, 0u);
    for (std::size_t i = 0; i < rs.size(); ++i) {
        SCOPED_TRACE(i);
        expectIdentical(rs[i], rp[i]);
    }
}

TEST(Determinism, GovernorPartitionedIdentical)
{
    // The governor does not leave the owning processor's wheel, so a
    // governor-armed config keeps its partitioned-engine eligibility
    // and the time-parallel run stays bit-identical to the monolithic
    // one across engine thread counts.
    auto governed = [](unsigned run_threads) {
        ServerConfig cfg = partitionableHalConfig(run_threads);
        cfg.power.governor.enabled = true;
        return cfg;
    };
    const RunResult mono = runPartitioned(governed(0), 20.0, false);
    const RunResult part1 = runPartitioned(governed(1), 20.0, true);
    const RunResult part3 = runPartitioned(governed(3), 20.0, true);
    ASSERT_GT(part1.responses, 0u);
    ASSERT_GT(part1.gov_epochs, 0u);
    expectIdentical(part1, part3);
    expectIdentical(mono, part1);
}

TEST(Determinism, SweepThreads1VsNIdentical)
{
    std::vector<SweepPoint> points;
    for (double rate : {20.0, 60.0, 90.0}) {
        SweepPoint p;
        p.cfg = faultedHalConfig();
        p.rate_gbps = rate;
        p.warmup = 5 * kMs;
        p.measure = 30 * kMs;
        points.push_back(std::move(p));
    }
    {
        SweepPoint p;
        p.cfg.mode = Mode::SnicOnly;
        p.cfg.function = funcs::FunctionId::Rem;
        p.rate_gbps = 30.0;
        p.warmup = 5 * kMs;
        p.measure = 30 * kMs;
        points.push_back(std::move(p));
    }

    SweepOptions serial, parallel;
    serial.threads = 1;
    parallel.threads = 4;
    const auto rs = runSweep(points, serial);
    const auto rp = runSweep(points, parallel);
    ASSERT_EQ(rs.size(), points.size());
    ASSERT_EQ(rp.size(), points.size());
    for (std::size_t i = 0; i < rs.size(); ++i) {
        SCOPED_TRACE(i);
        expectIdentical(rs[i], rp[i]);
    }
}
