/**
 * @file
 * End-to-end ServerSystem integration: packet conservation, the
 * paper's headline behaviours (SNIC saturation, HAL's cooperative
 * throughput/energy/latency), merger identity, coherent stateful
 * processing, and the SLB baseline penalty.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/server.hh"

using namespace halsim;
using namespace halsim::core;

namespace {

RunResult
runConstant(ServerSystem &sys, double rate_gbps, Tick warmup = 20 * kMs,
            Tick measure = 100 * kMs)
{
    return sys.run(std::make_unique<net::ConstantRate>(rate_gbps), warmup,
                   measure);
}

ServerConfig
cfgFor(Mode mode, funcs::FunctionId fn)
{
    ServerConfig cfg;
    cfg.mode = mode;
    cfg.function = fn;
    return cfg;
}

} // namespace

TEST(System, PacketConservationHostOnly)
{
    EventQueue eq;
    ServerSystem sys(eq, cfgFor(Mode::HostOnly, funcs::FunctionId::Nat));
    const auto r = runConstant(sys, 40.0);
    // Below capacity: nothing drops; every request returns, modulo
    // the handful in flight across the warmup/measure boundaries.
    EXPECT_EQ(r.drops, 0u);
    EXPECT_NEAR(static_cast<double>(r.responses),
                static_cast<double>(r.sent), 32.0);
}

TEST(System, PacketConservationUnderOverload)
{
    EventQueue eq;
    ServerSystem sys(eq, cfgFor(Mode::SnicOnly, funcs::FunctionId::Nat));
    const auto r = runConstant(sys, 80.0);
    // Overloaded: responses + drops must account for (almost) all
    // sent packets (a ring's worth may be in flight at the end).
    const double accounted =
        static_cast<double>(r.responses + r.drops);
    EXPECT_NEAR(accounted / static_cast<double>(r.sent), 1.0, 0.02);
    EXPECT_GT(r.drops, 0u);
}

TEST(System, SnicSaturatesAtCalibratedNatRate)
{
    EventQueue eq;
    ServerSystem sys(eq, cfgFor(Mode::SnicOnly, funcs::FunctionId::Nat));
    const auto r = runConstant(sys, 80.0);
    EXPECT_NEAR(r.delivered_gbps, 41.0, 1.5) << "Table II SLO anchor";
    EXPECT_GT(r.p99_us, 300.0) << "saturated rings blow up the tail";
}

TEST(System, HostAbsorbsHighRate)
{
    EventQueue eq;
    ServerSystem sys(eq, cfgFor(Mode::HostOnly, funcs::FunctionId::Nat));
    const auto r = runConstant(sys, 80.0);
    EXPECT_NEAR(r.delivered_gbps, 80.0, 1.5);
    EXPECT_LT(r.p99_us, 100.0);
}

TEST(System, HalMatchesHostThroughputWithLowerPower)
{
    EventQueue eq1, eq2;
    ServerSystem host(eq1, cfgFor(Mode::HostOnly, funcs::FunctionId::Nat));
    ServerSystem hal(eq2, cfgFor(Mode::Hal, funcs::FunctionId::Nat));
    const auto rh = runConstant(host, 80.0);
    const auto ra = runConstant(hal, 80.0);
    EXPECT_NEAR(ra.delivered_gbps, rh.delivered_gbps, 2.0);
    EXPECT_LT(ra.system_power_w, rh.system_power_w)
        << "HAL keeps part of the load on the efficient SNIC";
    EXPECT_EQ(ra.drops, 0u);
    EXPECT_GT(ra.snic_frames, 0u);
    EXPECT_GT(ra.host_frames, 0u);
}

TEST(System, HalBeatsSnicLatencyAboveItsKnee)
{
    EventQueue eq1, eq2;
    ServerSystem snic(eq1, cfgFor(Mode::SnicOnly, funcs::FunctionId::Nat));
    ServerSystem hal(eq2, cfgFor(Mode::Hal, funcs::FunctionId::Nat));
    const auto rs = runConstant(snic, 60.0);
    const auto ra = runConstant(hal, 60.0);
    EXPECT_LT(ra.p99_us, rs.p99_us / 5.0)
        << "above the SNIC knee HAL must divert and keep the tail low";
    EXPECT_GT(ra.delivered_gbps, rs.delivered_gbps + 10.0);
}

TEST(System, HalEnergyEfficiencyGainAtLowRate)
{
    // The headline: at low rates HAL rides the SNIC and the host
    // sleeps, so HAL's system-wide EE beats host-only by ~25-40%.
    EventQueue eq1, eq2;
    ServerSystem host(eq1, cfgFor(Mode::HostOnly, funcs::FunctionId::Nat));
    ServerSystem hal(eq2, cfgFor(Mode::Hal, funcs::FunctionId::Nat));
    const auto rh = runConstant(host, 15.0);
    const auto ra = runConstant(hal, 15.0);
    EXPECT_NEAR(ra.delivered_gbps, rh.delivered_gbps, 1.0);
    const double gain = ra.energy_eff / rh.energy_eff - 1.0;
    EXPECT_GT(gain, 0.20) << "EE gain " << gain;
    EXPECT_LT(gain, 0.60);
    EXPECT_EQ(ra.host_frames, 0u)
        << "below Fwd_Th nothing should reach the host";
}

TEST(System, HalAddsOnlySmallLatencyBelowKnee)
{
    EventQueue eq1, eq2;
    ServerSystem snic(eq1, cfgFor(Mode::SnicOnly, funcs::FunctionId::Nat));
    ServerSystem hal(eq2, cfgFor(Mode::Hal, funcs::FunctionId::Nat));
    const auto rs = runConstant(snic, 10.0);
    const auto ra = runConstant(hal, 10.0);
    // §VII-A: ~3% plus the HLB's 800 ns; we allow the extra slack of
    // running one fewer SNIC core (the LBP core).
    EXPECT_LT(ra.p99_us, rs.p99_us * 1.6 + 2.0);
}

TEST(System, MergerHidesHostIdentity)
{
    EventQueue eq;
    ServerSystem sys(eq, cfgFor(Mode::Hal, funcs::FunctionId::Nat));
    const auto r = runConstant(sys, 70.0);
    ASSERT_GT(r.host_frames, 0u);
    EXPECT_GE(sys.merger()->merged(), r.host_frames)
        << "every host response must be rewritten to the SNIC identity";
    // Responses in flight across the warmup boundary make the two
    // counters differ by a handful of packets.
    EXPECT_NEAR(static_cast<double>(
                    sys.client().responsesFrom(net::Processor::HostCpu)),
                static_cast<double>(r.host_frames), 16.0);
}

TEST(System, StatefulFunctionSharesCoherentState)
{
    EventQueue eq;
    auto cfg = cfgFor(Mode::Hal, funcs::FunctionId::Count);
    ServerSystem sys(eq, cfg);
    ASSERT_NE(sys.domain(), nullptr)
        << "stateful + HAL => CXL-SNIC emulation with coherence";
    const auto r = runConstant(sys, 70.0);
    EXPECT_GT(r.host_frames, 0u);
    const auto &st = sys.domain()->stats();
    EXPECT_GT(st.accesses, 0u);
    EXPECT_GT(st.remoteTransfers, 0u)
        << "cooperative stateful processing causes coherence traffic";
    EXPECT_TRUE(sys.domain()->checkSingleWriterInvariant());
}

TEST(System, StatelessHalHasNoCoherenceDomain)
{
    EventQueue eq;
    ServerSystem sys(eq, cfgFor(Mode::Hal, funcs::FunctionId::Nat));
    EXPECT_EQ(sys.domain(), nullptr);
}

TEST(System, CoherenceOverheadIsSmall)
{
    // §VII-B methodology check: running the stateful function with
    // coherence vs "like a stateless one" changes throughput by well
    // under 5% and p99 modestly.
    auto cfg = cfgFor(Mode::Hal, funcs::FunctionId::Count);
    EventQueue eq1;
    ServerSystem with(eq1, cfg);
    cfg.coherent_state = false;
    EventQueue eq2;
    ServerSystem without(eq2, cfg);
    const auto rw = runConstant(with, 60.0);
    const auto ro = runConstant(without, 60.0);
    EXPECT_NEAR(rw.delivered_gbps / ro.delivered_gbps, 1.0, 0.05);
    EXPECT_LT(rw.p99_us, ro.p99_us * 2.0 + 5.0);
}

TEST(System, SlbWorseThanHal)
{
    // §IV: SLB either drops (few cores) or inflates latency; HAL
    // dominates it at the same offered load.
    auto slb_cfg = cfgFor(Mode::Slb, funcs::FunctionId::Nat);
    slb_cfg.slb_cores = 4;
    slb_cfg.slb_fwd_th_gbps = 20.0;
    EventQueue eq1, eq2;
    ServerSystem slb(eq1, slb_cfg);
    ServerSystem hal(eq2, cfgFor(Mode::Hal, funcs::FunctionId::Nat));
    const auto rs = runConstant(slb, 80.0);
    const auto ra = runConstant(hal, 80.0);
    EXPECT_GT(ra.delivered_gbps, rs.delivered_gbps - 1.0);
    EXPECT_GT(rs.p99_us, ra.p99_us)
        << "the software forwarding path must cost latency";
}

TEST(System, HostSlbAlwaysHotAndSlower)
{
    // §IV's host-side SLB alternative: works at high rates, but the
    // host burns power at every rate and the double DPDK pass (plus
    // two PCIe crossings) inflates the below-threshold latency
    // relative to HAL.
    auto hal_cfg = cfgFor(Mode::Hal, funcs::FunctionId::DpdkFwd);
    auto hslb_cfg = cfgFor(Mode::HostSlb, funcs::FunctionId::DpdkFwd);
    hslb_cfg.slb_fwd_th_gbps = 35.0;
    EventQueue eq1, eq2;
    ServerSystem hal(eq1, hal_cfg);
    ServerSystem hslb(eq2, hslb_cfg);
    const auto ra = runConstant(hal, 20.0);
    const auto rs = runConstant(hslb, 20.0);
    EXPECT_NEAR(rs.delivered_gbps, ra.delivered_gbps, 1.0);
    EXPECT_GT(rs.p99_us, ra.p99_us * 1.5)
        << "the paper measures 2.3x HAL's p99 for MTU DPDK packets";
    EXPECT_GT(rs.system_power_w, ra.system_power_w + 20.0)
        << "the host never sleeps when it runs the balancer";
    EXPECT_GT(rs.snic_frames, 0u)
        << "below Fwd_Th the SNIC does the processing";
}

TEST(System, PipelineEndToEnd)
{
    EventQueue eq;
    auto cfg = cfgFor(Mode::Hal, funcs::FunctionId::Nat);
    cfg.pipeline_second = funcs::FunctionId::Rem;
    ServerSystem sys(eq, cfg);
    const auto r = runConstant(sys, 50.0, 20 * kMs, 60 * kMs);
    EXPECT_GT(r.delivered_gbps, 45.0);
    EXPECT_GT(r.host_frames, 0u)
        << "the combined stage rate is below 50, so HAL must divert";
}

TEST(System, RemAccelConstantTailWhenSaturated)
{
    // Fig. 4 note: the REM accelerator drops beyond its rate and the
    // measured latency (of surviving packets) stays bounded.
    EventQueue eq;
    auto cfg = cfgFor(Mode::SnicOnly, funcs::FunctionId::Rem);
    ServerSystem sys(eq, cfg);
    const auto r60 = runConstant(sys, 60.0, 10 * kMs, 60 * kMs);
    const auto r90 = runConstant(sys, 90.0, 10 * kMs, 60 * kMs);
    EXPECT_NEAR(r60.delivered_gbps, r90.delivered_gbps, 2.0);
    EXPECT_NEAR(r90.p99_us / r60.p99_us, 1.0, 0.35);
}

TEST(System, WindowedMaxAtLeastAverage)
{
    EventQueue eq;
    ServerSystem sys(eq, cfgFor(Mode::Hal, funcs::FunctionId::Nat));
    const auto r = sys.run(net::makeTrace(net::TraceKind::Hadoop),
                           20 * kMs, 200 * kMs, 2 * kMs);
    EXPECT_GE(r.max_window_gbps, r.delivered_gbps);
    EXPECT_GT(r.max_window_gbps, 2.0 * r.delivered_gbps)
        << "hadoop's bursts should show up in the windowed max";
}

TEST(System, PowerAnchorsMatchTableV)
{
    // Table V: SNIC-only ~200 W; host-only NAT ~268 W (web row).
    EventQueue eq1, eq2;
    ServerSystem snic(eq1, cfgFor(Mode::SnicOnly, funcs::FunctionId::Nat));
    ServerSystem host(eq2, cfgFor(Mode::HostOnly, funcs::FunctionId::Nat));
    const auto rs = runConstant(snic, 20.0);
    const auto rh = runConstant(host, 20.0);
    EXPECT_NEAR(rs.system_power_w, 200.0, 2.0);
    EXPECT_NEAR(rh.system_power_w, 268.0, 3.0);
}

TEST(System, DirectorSplitModesAgreeOnShares)
{
    for (SplitMode mode : {SplitMode::TokenBucket, SplitMode::RoundRobin}) {
        EventQueue eq;
        auto cfg = cfgFor(Mode::Hal, funcs::FunctionId::Nat);
        cfg.split_mode = mode;
        ServerSystem sys(eq, cfg);
        const auto r = runConstant(sys, 80.0, 20 * kMs, 80 * kMs);
        EXPECT_NEAR(r.delivered_gbps, 80.0, 2.5)
            << "mode " << static_cast<int>(mode);
        const double snic_share =
            static_cast<double>(r.snic_frames) /
            static_cast<double>(r.snic_frames + r.host_frames);
        EXPECT_NEAR(snic_share, 35.0 / 80.0, 0.08)
            << "mode " << static_cast<int>(mode);
    }
}
