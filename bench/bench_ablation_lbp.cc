/**
 * @file
 * Ablation: sensitivity of HAL to the LBP constants of Algorithm 1 —
 * Step_Th, the watermark band, the policy epoch, and the adaptive-
 * step extension (§V-B). Run on NAT under the cache trace (bursty)
 * and at a fixed 60 Gbps (steady overload).
 *
 * What to look for: larger steps/epochs react faster but overshoot
 * (worse p99); wider watermark bands squeeze more SNIC throughput at
 * the cost of queueing delay; the adaptive step recovers most of the
 * fast-reaction benefit without the overshoot.
 *
 * All (variant, workload) points are independent and run through the
 * parallel sweep harness: `--threads all`, `--json PATH`,
 * `--stats-out PATH`, `--trace PATH`.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

namespace {

struct Variant
{
    const char *name;
    double step;
    Tick epoch;
    std::uint32_t wm_low, wm_high;
    bool adaptive;
};

const Variant kVariants[] = {
    {"default", 1.0, 100 * kUs, 4, 48, false},
    {"step0.25", 0.25, 100 * kUs, 4, 48, false},
    {"step4", 4.0, 100 * kUs, 4, 48, false},
    {"epoch20us", 1.0, 20 * kUs, 4, 48, false},
    {"epoch1ms", 1.0, 1 * kMs, 4, 48, false},
    {"band8-256", 1.0, 100 * kUs, 8, 256, false},
    {"band2-16", 1.0, 100 * kUs, 2, 16, false},
    {"adaptive", 1.0, 100 * kUs, 4, 48, true},
};

SweepPoint
variantPoint(const Variant &v, bool trace)
{
    ServerConfig cfg = ServerConfig::halDefault();
    cfg.lbp.step_gbps = v.step;
    cfg.lbp.epoch = v.epoch;
    cfg.lbp.wm_low = v.wm_low;
    cfg.lbp.wm_high = v.wm_high;
    cfg.lbp.adaptive_step = v.adaptive;

    SweepPoint p;
    p.cfg = std::move(cfg);
    p.warmup = 20 * kMs;
    p.label = std::string(trace ? "cache:" : "const60:") + v.name;
    if (trace) {
        p.trace = net::TraceKind::Cache;
        p.measure = 300 * kMs;
        p.resample = 2 * kMs;
    } else {
        p.rate_gbps = 60.0;
        p.measure = 100 * kMs;
    }
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    const SweepOptions opts = parseSweepArgs(argc, argv, "ablation_lbp");

    std::vector<SweepPoint> points;
    for (bool trace : {false, true})
        for (const Variant &v : kVariants)
            points.push_back(variantPoint(v, trace));

    const std::vector<RunResult> results = runSweep(points, opts);

    std::size_t i = 0;
    for (bool trace : {false, true}) {
        banner(std::string("LBP ablation: NAT, ") +
               (trace ? "cache trace" : "60 Gbps constant"));
        std::printf("%-10s | %7s %9s %7s %8s %7s\n", "variant", "tp",
                    "p99us", "avgW", "snic%", "fwdTh");
        for (const Variant &v : kVariants) {
            const RunResult &r = results[i++];
            const double snic_share =
                100.0 * static_cast<double>(r.snic_frames) /
                static_cast<double>(r.snic_frames + r.host_frames);
            std::printf("%-10s | %7.1f %9.1f %7.1f %7.1f%% %7.1f\n",
                        v.name, r.delivered_gbps, r.p99_us,
                        r.system_power_w, snic_share,
                        r.final_fwd_th_gbps);
        }
    }
    return 0;
}
