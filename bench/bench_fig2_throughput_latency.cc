/**
 * @file
 * Fig. 2 reproduction: maximum throughput and p99 latency of the ten
 * functions on the SNIC processor, normalized to the host processor
 * (MTU frames). The cryptography bars additionally report the PKA
 * micro-operation comparison the paper measures (RSA/DH/DSA ops on
 * QAT vs the BF-2 PKA), and REM reports both rulesets.
 *
 * Paper anchors: host crypto accel 24-115x SNIC; compression host at
 * 46-72% of SNIC; REM tea host +93% TP / -81% p99, REM lite SNIC 19x
 * TP / -94% p99; software functions: SNIC 24-69% lower TP, 1.1-27x
 * higher p99.
 */

#include <cstdio>

#include "bench_common.hh"
#include "funcs/calibration.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

namespace {

struct Row
{
    const char *name;
    double snic_tp, host_tp;
    double snic_p99, host_p99;
};

Row
measure(funcs::FunctionId fn, alg::RulesetKind ruleset)
{
    Row row{funcs::functionName(fn), 0, 0, 0, 0};

    for (Mode mode : {Mode::SnicOnly, Mode::HostOnly}) {
        ServerConfig cfg;
        cfg.mode = mode;
        cfg.function = fn;
        cfg.rem_ruleset = ruleset;

        // Saturate to find max throughput.
        const auto sat = runPoint(cfg, 100.0, 10 * kMs, 60 * kMs);
        // p99 at the maximum sustainable point (95% of max, like the
        // paper's "packet rate achieving the maximum throughput").
        const auto lat =
            runPoint(cfg, sat.delivered_gbps * 0.95, 10 * kMs, 60 * kMs);
        if (mode == Mode::SnicOnly) {
            row.snic_tp = sat.delivered_gbps;
            row.snic_p99 = lat.p99_us;
        } else {
            row.host_tp = sat.delivered_gbps;
            row.host_p99 = lat.p99_us;
        }
    }
    return row;
}

void
print(const Row &r, const char *label = nullptr)
{
    std::printf("%-10s %8.2f %8.2f %8.3f | %9.1f %9.1f %8.2f\n",
                label != nullptr ? label : r.name, r.snic_tp, r.host_tp,
                r.snic_tp / r.host_tp, r.snic_p99, r.host_p99,
                r.snic_p99 / r.host_p99);
}

} // namespace

int
main()
{
    banner("Fig. 2: max throughput and p99 latency, SNIC vs host (MTU)");
    std::printf("%-10s %8s %8s %8s | %9s %9s %8s\n", "function",
                "snicGbps", "hostGbps", "tpRatio", "snicP99us",
                "hostP99us", "p99Ratio");

    for (funcs::FunctionId fn : funcs::allFunctions()) {
        if (fn == funcs::FunctionId::Rem)
            continue;   // printed per ruleset below
        print(measure(fn, alg::RulesetKind::Teakettle));
    }
    print(measure(funcs::FunctionId::Rem, alg::RulesetKind::Teakettle),
          "rem-tea");
    print(measure(funcs::FunctionId::Rem, alg::RulesetKind::SnortLiterals),
          "rem-lite");

    banner("Fig. 2 inset: PKA micro-operations (QAT vs BF-2 PKA)");
    std::printf("%-10s %10s %10s %8s | %9s %9s %8s\n", "op", "host_ops",
                "snic_ops", "tpRatio", "hostLatUs", "snicLatUs",
                "latCut%");
    std::size_t n = 0;
    const auto *rows = funcs::pkaCalib(&n);
    for (std::size_t i = 0; i < n; ++i) {
        std::printf("%-10s %10.0f %10.0f %8.1f | %9.0f %9.0f %8.1f\n",
                    rows[i].op, rows[i].host_ops_per_s,
                    rows[i].snic_ops_per_s,
                    rows[i].host_ops_per_s / rows[i].snic_ops_per_s,
                    ticksToUs(rows[i].host_latency),
                    ticksToUs(rows[i].snic_latency),
                    100.0 * (1.0 - static_cast<double>(
                                       rows[i].host_latency) /
                                       rows[i].snic_latency));
    }
    return 0;
}
