/**
 * @file
 * Fig. 2 reproduction: maximum throughput and p99 latency of the ten
 * functions on the SNIC processor, normalized to the host processor
 * (MTU frames). The cryptography bars additionally report the PKA
 * micro-operation comparison the paper measures (RSA/DH/DSA ops on
 * QAT vs the BF-2 PKA), and REM reports both rulesets.
 *
 * Paper anchors: host crypto accel 24-115x SNIC; compression host at
 * 46-72% of SNIC; REM tea host +93% TP / -81% p99, REM lite SNIC 19x
 * TP / -94% p99; software functions: SNIC 24-69% lower TP, 1.1-27x
 * higher p99.
 *
 * Runs as two sweeps through the parallel harness (`--threads`,
 * `--json`, `--stats-out`, `--trace`): a saturation pass whose
 * delivered rate is the "max TP" column, then the latency pass at 95%
 * of it (the paper's "packet rate achieving the maximum throughput");
 * artifacts are written for the latency pass only.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "funcs/calibration.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

namespace {

struct RowSpec
{
    funcs::FunctionId fn;
    alg::RulesetKind ruleset;
    std::string label;
};

ServerConfig
configFor(const RowSpec &spec, Mode mode)
{
    ServerConfig cfg = mode == Mode::SnicOnly
                           ? ServerConfig::snicBaseline(spec.fn)
                           : ServerConfig::hostBaseline(spec.fn);
    cfg.rem_ruleset = spec.ruleset;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const SweepOptions opts =
        parseSweepArgs(argc, argv, "fig2_throughput_latency");

    std::vector<RowSpec> rows;
    for (funcs::FunctionId fn : funcs::allFunctions()) {
        if (fn == funcs::FunctionId::Rem)
            continue;   // printed per ruleset below
        rows.push_back({fn, alg::RulesetKind::Teakettle,
                        funcs::functionName(fn)});
    }
    rows.push_back(
        {funcs::FunctionId::Rem, alg::RulesetKind::Teakettle, "rem-tea"});
    rows.push_back({funcs::FunctionId::Rem, alg::RulesetKind::SnortLiterals,
                    "rem-lite"});

    // Phase 1: saturate to find each platform's max throughput.
    std::vector<SweepPoint> sat_points;
    for (const RowSpec &spec : rows) {
        sat_points.push_back(point(configFor(spec, Mode::SnicOnly), 100.0,
                                   10 * kMs, 60 * kMs,
                                   "sat:snic:" + spec.label));
        sat_points.push_back(point(configFor(spec, Mode::HostOnly), 100.0,
                                   10 * kMs, 60 * kMs,
                                   "sat:host:" + spec.label));
    }
    SweepOptions sat_opts;
    sat_opts.threads = opts.threads;
    sat_opts.bench_name = opts.bench_name + "_saturate";
    const std::vector<RunResult> sat = runSweep(sat_points, sat_opts);

    // Phase 2: p99 at 95% of each max; writes the requested artifacts.
    std::vector<SweepPoint> lat_points;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        lat_points.push_back(point(configFor(rows[i], Mode::SnicOnly),
                                   sat[2 * i].delivered_gbps * 0.95,
                                   10 * kMs, 60 * kMs,
                                   "snic:" + rows[i].label));
        lat_points.push_back(point(configFor(rows[i], Mode::HostOnly),
                                   sat[2 * i + 1].delivered_gbps * 0.95,
                                   10 * kMs, 60 * kMs,
                                   "host:" + rows[i].label));
    }
    const std::vector<RunResult> lat = runSweep(lat_points, opts);

    banner("Fig. 2: max throughput and p99 latency, SNIC vs host (MTU)");
    std::printf("%-10s %8s %8s %8s | %9s %9s %8s\n", "function",
                "snicGbps", "hostGbps", "tpRatio", "snicP99us",
                "hostP99us", "p99Ratio");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const double snic_tp = sat[2 * i].delivered_gbps;
        const double host_tp = sat[2 * i + 1].delivered_gbps;
        const double snic_p99 = lat[2 * i].p99_us;
        const double host_p99 = lat[2 * i + 1].p99_us;
        std::printf("%-10s %8.2f %8.2f %8.3f | %9.1f %9.1f %8.2f\n",
                    rows[i].label.c_str(), snic_tp, host_tp,
                    snic_tp / host_tp, snic_p99, host_p99,
                    snic_p99 / host_p99);
    }

    banner("Fig. 2 inset: PKA micro-operations (QAT vs BF-2 PKA)");
    std::printf("%-10s %10s %10s %8s | %9s %9s %8s\n", "op", "host_ops",
                "snic_ops", "tpRatio", "hostLatUs", "snicLatUs",
                "latCut%");
    std::size_t n = 0;
    const auto *pka = funcs::pkaCalib(&n);
    for (std::size_t i = 0; i < n; ++i) {
        std::printf("%-10s %10.0f %10.0f %8.1f | %9.0f %9.0f %8.1f\n",
                    pka[i].op, pka[i].host_ops_per_s,
                    pka[i].snic_ops_per_s,
                    pka[i].host_ops_per_s / pka[i].snic_ops_per_s,
                    ticksToUs(pka[i].host_latency),
                    ticksToUs(pka[i].snic_latency),
                    100.0 * (1.0 - static_cast<double>(
                                       pka[i].host_latency) /
                                       pka[i].snic_latency));
    }
    return 0;
}
