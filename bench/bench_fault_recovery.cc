/**
 * @file
 * Fault drill matrix: HAL (and baselines where noted) under injected
 * faults — processor crashes, transient blips, control-channel loss,
 * link loss bursts, accelerator failure, core slowdown — reporting
 * delivered throughput, tail latency, loss, failover counts, time
 * degraded, and detect->recover latency for each scenario.
 *
 * The healthy row is the reference: graceful degradation means every
 * faulted row still delivers its surviving capacity, and transient
 * rows recover within a few watchdog epochs.
 *
 * Every drill is an independent operating point, so the whole matrix
 * runs through the parallel sweep harness (`--threads`, `--json`).
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::core;
using halsim::fault::FaultTarget;

namespace {

struct Scenario
{
    std::string name;
    Mode mode = Mode::Hal;
    double rate_gbps = 60.0;
    std::function<void(ServerConfig &)> plan;
};

SweepPoint
toPoint(const Scenario &s)
{
    ServerConfig cfg;
    cfg.mode = s.mode;
    cfg.function = funcs::FunctionId::Nat;
    if (s.plan)
        s.plan(cfg);
    return bench::point(cfg, s.rate_gbps, bench::kWarmup,
                        bench::kMeasure, s.name);
}

void
row(const Scenario &s, const RunResult &r)
{
    std::printf("%-14s %8.1f %10.1f %9.1f %7.2f%% %6llu %6llu %10.1f "
                "%9.1f\n",
                s.name.c_str(), s.rate_gbps, r.delivered_gbps, r.p99_us,
                100.0 * r.lossFraction(),
                static_cast<unsigned long long>(r.failovers),
                static_cast<unsigned long long>(r.recoveries),
                r.degraded_us / 1e3, r.time_to_recover_us / 1e3);
}

} // namespace

int
main(int argc, char **argv)
{
    const SweepOptions opts =
        parseSweepArgs(argc, argv, "fault_recovery");

    const std::vector<Scenario> scenarios = {
        {"healthy", Mode::Hal, 60.0, nullptr},
        {"host-crash", Mode::Hal, 60.0,
         [](ServerConfig &c) {
             c.faults.processorFailure(FaultTarget::Host, 60 * kMs);
         }},
        {"host-blip", Mode::Hal, 60.0,
         [](ServerConfig &c) {
             c.faults.processorFailure(FaultTarget::Host, 50 * kMs,
                                       20 * kMs);
         }},
        {"snic-crash", Mode::Hal, 20.0,
         [](ServerConfig &c) {
             c.faults.processorFailure(FaultTarget::Snic, 60 * kMs);
         }},
        {"ctrl-loss", Mode::Hal, 60.0,
         [](ServerConfig &c) {
             c.faults.controlLoss(1.0, 50 * kMs, 30 * kMs);
         }},
        {"lbp-stall", Mode::Hal, 60.0,
         [](ServerConfig &c) { c.faults.lbpStall(50 * kMs, 30 * kMs); }},
        {"link-burst", Mode::Hal, 60.0,
         [](ServerConfig &c) {
             c.faults.linkLossBurst(FaultTarget::ClientLink, 0.3,
                                    50 * kMs, 20 * kMs);
         }},
        {"snic-slow", Mode::Hal, 60.0,
         [](ServerConfig &c) {
             c.faults.coreSlowdown(FaultTarget::Snic, 0.5, 50 * kMs,
                                   30 * kMs);
         }},
        {"core-stall", Mode::Hal, 60.0,
         [](ServerConfig &c) {
             c.faults.coreStall(FaultTarget::Snic, fault::kAllCores,
                                50 * kMs, 10 * kMs);
         }},
    };

    // The accelerator-fallback pair rides in the same sweep after the
    // drill matrix.
    std::vector<SweepPoint> points;
    points.reserve(scenarios.size() + 2);
    for (const auto &s : scenarios)
        points.push_back(toPoint(s));
    for (const bool faulty : {false, true}) {
        ServerConfig cfg;
        cfg.mode = Mode::SnicOnly;
        cfg.function = funcs::FunctionId::Compress;
        if (faulty)
            cfg.faults.accelFailure(FaultTarget::Snic, 40 * kMs);
        points.push_back(bench::point(cfg, 30.0, bench::kWarmup,
                                      bench::kMeasure,
                                      faulty ? "accel-dead" : "accel-ok"));
    }

    const std::vector<RunResult> results = runSweep(points, opts);

    bench::banner("Fault injection / graceful degradation drills "
                  "(NAT, 100 ms measure)");
    std::printf("%-14s %8s %10s %9s %8s %6s %6s %10s %9s\n", "scenario",
                "offered", "delivered", "p99us", "loss", "fails", "recov",
                "degr_ms", "ttr_ms");
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        row(scenarios[i], results[i]);

    bench::banner("Accelerator failure -> software fallback "
                  "(Compress, SNIC-only)");
    std::printf("%-14s %8s %10s %9s %8s\n", "scenario", "offered",
                "delivered", "p99us", "loss");
    for (std::size_t i = scenarios.size(); i < points.size(); ++i) {
        const RunResult &r = results[i];
        std::printf("%-14s %8.1f %10.1f %9.1f %7.2f%%\n",
                    points[i].label.c_str(), 30.0, r.delivered_gbps,
                    r.p99_us, 100.0 * r.lossFraction());
    }
    return 0;
}
