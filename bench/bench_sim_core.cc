/**
 * @file
 * Simulator-core microbenchmark: the machine-readable perf baseline
 * every hot-path PR is measured against.
 *
 * Metrics, all wall-clock:
 *  - events/sec (headline): burst-scheduled one-shot callables
 *    coalesced through scheduleBatch — the post-batching hot path;
 *    events_unbatched_per_sec is the identical workload with
 *    batching disabled, so their ratio isolates the coalescing win;
 *  - events_chain/sec: the legacy chain + retimer churn workload kept
 *    for continuity with the pre/post_overhaul baselines;
 *  - packets/sec: full traffic-generation fast path — makeUdpPacket,
 *    link serialization, packet teardown — at line rate;
 *  - checksum MB/s: RFC 1071 one's-complement sum over MTU frames;
 *  - single_run_events_per_sec_*: one full HAL ServerSystem run
 *    (DpdkFwd, watchdog off) on the monolithic engine with batching
 *    on/off and on the partitioned engine with 1 and 3 threads.
 *
 * `--json PATH` writes the metrics as a BENCH_simcore.json-style
 * artifact for CI trend tracking; `--quick` shrinks the workloads for
 * smoke runs. `--batch on|off` and `--run-threads N` restrict the
 * matrix to one cell for manual A/B runs (the restricted artifact
 * then carries only the measured fields).
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/server.hh"
#include "core/sweep.hh"
#include "net/checksum.hh"
#include "net/link.hh"
#include "net/traffic.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace halsim;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/**
 * A self-perpetuating one-shot chain: every firing re-enters
 * scheduleFnIn with a fresh capture, exactly like the link-delivery
 * and processor-finish paths.
 */
struct Chain
{
    EventQueue *eq;
    std::uint64_t *budget;
    Rng *rng;
    std::uint64_t pad = 0;   //!< sizes the capture like a PacketPtr hop

    void
    operator()()
    {
        if (*budget == 0)
            return;
        --*budget;
        eq->scheduleFnIn(Chain{*this}, 1 + (rng->next() & 255));
    }
};

/** Intrusive events that retime each other, leaving tombstones. */
struct Retimer
{
    CallbackEvent self;
    CallbackEvent *partner = nullptr;
    EventQueue *eq = nullptr;
    std::uint64_t *budget = nullptr;
    Rng *rng = nullptr;

    void
    fire()
    {
        if (*budget == 0)
            return;
        --*budget;
        // Retime the partner (deschedule + schedule: one tombstone),
        // then rearm ourselves.
        eq->reschedule(partner, eq->now() + 64 + (rng->next() & 127));
        eq->scheduleIn(&self, 32 + (rng->next() & 63));
    }
};

/**
 * Burst producer: each firing schedules a same-tick burst of trivial
 * callables through scheduleBatch (the eswitch/link fan-out shape),
 * then re-arms itself. With batching on, each burst coalesces into
 * one heap entry; off, every callable pays its own heap round-trip —
 * same event count either way.
 */
struct BurstProducer
{
    EventQueue *eq;
    std::uint64_t *budget;
    Rng *rng;

    void
    operator()()
    {
        if (*budget == 0)
            return;
        const std::size_t n =
            *budget < EventQueue::kBatchCapacity
                ? static_cast<std::size_t>(*budget)
                : EventQueue::kBatchCapacity;
        *budget -= n;
        const Tick at = eq->now() + 1 + (rng->next() & 255);
        for (std::size_t i = 0; i < n; ++i)
            eq->scheduleBatch([] {}, at);
        eq->scheduleFnIn(BurstProducer{*this}, 1 + (rng->next() & 255));
    }
};

double
benchEventsBurst(std::uint64_t target, bool batched)
{
    EventQueue eq;
    eq.setBatchingEnabled(batched);
    Rng rng(42);
    std::uint64_t budget = target;

    constexpr int kProducers = 16;
    for (int i = 0; i < kProducers; ++i)
        eq.scheduleFn(BurstProducer{&eq, &budget, &rng},
                      1 + (rng.next() & 255));

    const auto t0 = std::chrono::steady_clock::now();
    eq.run();
    const double dt = secondsSince(t0);
    return static_cast<double>(eq.executed()) / dt;
}

/**
 * One full HAL run (DpdkFwd, watchdog off — the partitioned engine's
 * supported surface) timed end to end; events/s over every queue the
 * engine used. run_threads 0 is the monolithic loop.
 */
double
benchSingleRun(unsigned run_threads, bool batched, Tick measure)
{
    core::ServerConfig cfg;
    cfg.mode = core::Mode::Hal;
    cfg.function = funcs::FunctionId::DpdkFwd;
    cfg.watchdog.enabled = false;
    cfg.run_threads = run_threads;

    EventQueue eq;
    eq.setBatchingEnabled(batched);
    core::ServerSystem sys(eq, cfg);
    const auto t0 = std::chrono::steady_clock::now();
    sys.run(std::make_unique<net::ConstantRate>(90.0), 5 * kMs, measure);
    const double dt = secondsSince(t0);
    return static_cast<double>(sys.eventsExecuted()) / dt;
}

double
benchEvents(std::uint64_t target)
{
    EventQueue eq;
    Rng rng(42);
    std::uint64_t budget = target;

    constexpr int kChains = 64;
    for (int i = 0; i < kChains; ++i)
        eq.scheduleFn(Chain{&eq, &budget, &rng, 0},
                      1 + (rng.next() & 255));

    constexpr int kRetimers = 16;
    Retimer retimers[kRetimers];
    for (int i = 0; i < kRetimers; ++i) {
        Retimer &r = retimers[i];
        r.partner = &retimers[(i + 1) % kRetimers].self;
        r.eq = &eq;
        r.budget = &budget;
        r.rng = &rng;
        r.self.setCallback([&r] { r.fire(); });
    }
    for (int i = 0; i < kRetimers; ++i)
        eq.scheduleIn(&retimers[i].self, 16 + (rng.next() & 15));

    const auto t0 = std::chrono::steady_clock::now();
    eq.run();
    const double dt = secondsSince(t0);
    for (Retimer &r : retimers)
        if (r.self.scheduled())
            eq.deschedule(&r.self);
    return static_cast<double>(eq.executed()) / dt;
}

struct NullSink : net::PacketSink
{
    std::uint64_t frames = 0;

    void
    accept(net::PacketPtr pkt) override
    {
        ++frames;
        (void)pkt;   // destroyed here: the teardown half of the pool
    }
};

double
benchPackets(Tick sim_duration)
{
    EventQueue eq;
    NullSink sink;
    net::Link link(eq,
                   {.rate_gbps = 100.0, .propagation = 500 * kNs,
                    .max_queue = 4096, .name = "bench"},
                   sink);
    net::TrafficGenerator::Config gc;
    gc.frame_bytes = net::kMtuFrameBytes;
    net::TrafficGenerator gen(eq, gc,
                              std::make_unique<net::ConstantRate>(100.0),
                              link);

    const auto t0 = std::chrono::steady_clock::now();
    gen.start(sim_duration);
    eq.run();
    const double dt = secondsSince(t0);
    return static_cast<double>(sink.frames) / dt;
}

double
benchChecksum(std::uint64_t iters)
{
    std::uint8_t frame[net::kMtuFrameBytes];
    Rng rng(7);
    for (auto &b : frame)
        b = static_cast<std::uint8_t>(rng.next());

    volatile std::uint16_t guard = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        frame[0] = static_cast<std::uint8_t>(i);
        guard = static_cast<std::uint16_t>(
            guard ^ net::internetChecksum(frame, sizeof(frame)));
    }
    const double dt = secondsSince(t0);
    (void)guard;
    return static_cast<double>(iters) * sizeof(frame) / 1e6 / dt;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::uint64_t event_target = 4'000'000;
    Tick pkt_sim = 60 * kMs;
    Tick run_measure = 40 * kMs;
    std::uint64_t cksum_iters = 400'000;
    int only_batch = -1;       // -1 = both, 0 = off, 1 = on
    int only_threads = -1;     // -1 = full matrix, else exactly N
    core::ArgRegistrar reg(argv[0],
                           "Simulator-core microbenchmark (wall-clock "
                           "perf baseline).");
    reg.value("--json", "PATH", "write the metrics artifact here",
              [&](const std::string &v) -> std::string {
                  json_path = v;
                  return {};
              });
    reg.flag("--quick", "CI-sized workloads", [&] {
        event_target /= 10;
        pkt_sim /= 10;
        run_measure /= 4;
        cksum_iters /= 10;
    });
    reg.value("--batch", "on|off",
              "restrict the matrix to batched or unbatched cells",
              [&](const std::string &v) -> std::string {
                  if (v == "on")
                      only_batch = 1;
                  else if (v == "off")
                      only_batch = 0;
                  else
                      return "needs on or off, got '" + v + "'";
                  return {};
              });
    reg.value("--run-threads", "N",
              "restrict single-run cells to this engine thread count",
              [&](const std::string &v) -> std::string {
                  char *end = nullptr;
                  const long n = std::strtol(v.c_str(), &end, 10);
                  if (end == nullptr || *end != '\0' || n < 0)
                      return "needs a non-negative count, got '" + v +
                             "'";
                  only_threads = static_cast<int>(n);
                  return {};
              });
    reg.parse(argc, argv);

    // (name, value) in emission order; restriction flags simply leave
    // cells out.
    std::vector<std::pair<std::string, double>> metrics;
    const bool want_on = only_batch != 0;
    const bool want_off = only_batch != 1;

    if (want_on)
        metrics.emplace_back("events_per_sec",
                             benchEventsBurst(event_target, true));
    if (want_off)
        metrics.emplace_back("events_unbatched_per_sec",
                             benchEventsBurst(event_target, false));
    if (want_on)
        metrics.emplace_back("events_chain_per_sec",
                             benchEvents(event_target));
    metrics.emplace_back("sim_packets_per_sec", benchPackets(pkt_sim));
    metrics.emplace_back("checksum_mb_per_sec",
                         benchChecksum(cksum_iters));

    struct Cell
    {
        const char *name;
        unsigned threads;
        bool batched;
    };
    static constexpr Cell kCells[] = {
        {"single_run_events_per_sec_mono", 0, true},
        {"single_run_events_per_sec_mono_nobatch", 0, false},
        {"single_run_events_per_sec_part1", 1, true},
        {"single_run_events_per_sec_part3", 3, true},
    };
    for (const Cell &c : kCells) {
        if (only_threads >= 0 &&
            c.threads != static_cast<unsigned>(only_threads))
            continue;
        if ((only_batch == 1 && !c.batched) ||
            (only_batch == 0 && c.batched))
            continue;
        metrics.emplace_back(c.name,
                             benchSingleRun(c.threads, c.batched,
                                            run_measure));
    }

    std::printf("bench_sim_core\n");
    for (const auto &[name, value] : metrics)
        std::printf("  %-40s %14.0f\n", name.c_str(), value);

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n"
                        "  \"bench\": \"sim_core\",\n"
                        "  \"metrics\": {\n");
        for (std::size_t i = 0; i < metrics.size(); ++i)
            std::fprintf(f, "    \"%s\": %.0f%s\n",
                         metrics[i].first.c_str(), metrics[i].second,
                         i + 1 < metrics.size() ? "," : "");
        std::fprintf(f,
                     "  },\n"
                     "  \"workload\": {\n"
                     "    \"event_target\": %" PRIu64 ",\n"
                     "    \"packet_sim_ms\": %" PRIu64 ",\n"
                     "    \"single_run_measure_ms\": %" PRIu64 ",\n"
                     "    \"checksum_iters\": %" PRIu64 "\n"
                     "  }\n"
                     "}\n",
                     event_target,
                     static_cast<std::uint64_t>(pkt_sim / kMs),
                     static_cast<std::uint64_t>(run_measure / kMs),
                     cksum_iters);
        std::fclose(f);
    }
    return 0;
}
