/**
 * @file
 * Simulator-core microbenchmark: the machine-readable perf baseline
 * every hot-path PR is measured against.
 *
 * Three metrics, all wall-clock:
 *  - events/sec: one-shot scheduleFn chains plus intrusive-event
 *    reschedule churn (the rate-limiter retimer pattern that creates
 *    heap tombstones);
 *  - packets/sec: full traffic-generation fast path — makeUdpPacket,
 *    link serialization, packet teardown — at line rate;
 *  - checksum MB/s: RFC 1071 one's-complement sum over MTU frames.
 *
 * `--json PATH` writes the metrics as a BENCH_simcore.json-style
 * artifact for CI trend tracking; `--quick` shrinks the workloads for
 * smoke runs.
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "net/checksum.hh"
#include "net/link.hh"
#include "net/traffic.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace halsim;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/**
 * A self-perpetuating one-shot chain: every firing re-enters
 * scheduleFnIn with a fresh capture, exactly like the link-delivery
 * and processor-finish paths.
 */
struct Chain
{
    EventQueue *eq;
    std::uint64_t *budget;
    Rng *rng;
    std::uint64_t pad = 0;   //!< sizes the capture like a PacketPtr hop

    void
    operator()()
    {
        if (*budget == 0)
            return;
        --*budget;
        eq->scheduleFnIn(Chain{*this}, 1 + (rng->next() & 255));
    }
};

/** Intrusive events that retime each other, leaving tombstones. */
struct Retimer
{
    CallbackEvent self;
    CallbackEvent *partner = nullptr;
    EventQueue *eq = nullptr;
    std::uint64_t *budget = nullptr;
    Rng *rng = nullptr;

    void
    fire()
    {
        if (*budget == 0)
            return;
        --*budget;
        // Retime the partner (deschedule + schedule: one tombstone),
        // then rearm ourselves.
        eq->reschedule(partner, eq->now() + 64 + (rng->next() & 127));
        eq->scheduleIn(&self, 32 + (rng->next() & 63));
    }
};

double
benchEvents(std::uint64_t target)
{
    EventQueue eq;
    Rng rng(42);
    std::uint64_t budget = target;

    constexpr int kChains = 64;
    for (int i = 0; i < kChains; ++i)
        eq.scheduleFn(Chain{&eq, &budget, &rng, 0},
                      1 + (rng.next() & 255));

    constexpr int kRetimers = 16;
    Retimer retimers[kRetimers];
    for (int i = 0; i < kRetimers; ++i) {
        Retimer &r = retimers[i];
        r.partner = &retimers[(i + 1) % kRetimers].self;
        r.eq = &eq;
        r.budget = &budget;
        r.rng = &rng;
        r.self.setCallback([&r] { r.fire(); });
    }
    for (int i = 0; i < kRetimers; ++i)
        eq.scheduleIn(&retimers[i].self, 16 + (rng.next() & 15));

    const auto t0 = std::chrono::steady_clock::now();
    eq.run();
    const double dt = secondsSince(t0);
    for (Retimer &r : retimers)
        if (r.self.scheduled())
            eq.deschedule(&r.self);
    return static_cast<double>(eq.executed()) / dt;
}

struct NullSink : net::PacketSink
{
    std::uint64_t frames = 0;

    void
    accept(net::PacketPtr pkt) override
    {
        ++frames;
        (void)pkt;   // destroyed here: the teardown half of the pool
    }
};

double
benchPackets(Tick sim_duration)
{
    EventQueue eq;
    NullSink sink;
    net::Link link(eq,
                   {.rate_gbps = 100.0, .propagation = 500 * kNs,
                    .max_queue = 4096, .name = "bench"},
                   sink);
    net::TrafficGenerator::Config gc;
    gc.frame_bytes = net::kMtuFrameBytes;
    net::TrafficGenerator gen(eq, gc,
                              std::make_unique<net::ConstantRate>(100.0),
                              link);

    const auto t0 = std::chrono::steady_clock::now();
    gen.start(sim_duration);
    eq.run();
    const double dt = secondsSince(t0);
    return static_cast<double>(sink.frames) / dt;
}

double
benchChecksum(std::uint64_t iters)
{
    std::uint8_t frame[net::kMtuFrameBytes];
    Rng rng(7);
    for (auto &b : frame)
        b = static_cast<std::uint8_t>(rng.next());

    volatile std::uint16_t guard = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        frame[0] = static_cast<std::uint8_t>(i);
        guard = static_cast<std::uint16_t>(
            guard ^ net::internetChecksum(frame, sizeof(frame)));
    }
    const double dt = secondsSince(t0);
    (void)guard;
    return static_cast<double>(iters) * sizeof(frame) / 1e6 / dt;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::uint64_t event_target = 4'000'000;
    Tick pkt_sim = 60 * kMs;
    std::uint64_t cksum_iters = 400'000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            event_target /= 10;
            pkt_sim /= 10;
            cksum_iters /= 10;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--json PATH]\n", argv[0]);
            return 2;
        }
    }

    const double ev_s = benchEvents(event_target);
    const double pkt_s = benchPackets(pkt_sim);
    const double ck_mb_s = benchChecksum(cksum_iters);

    std::printf("bench_sim_core\n");
    std::printf("  events/sec            %12.0f\n", ev_s);
    std::printf("  sim-packets/sec       %12.0f\n", pkt_s);
    std::printf("  checksum MB/s         %12.0f\n", ck_mb_s);

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"sim_core\",\n"
                     "  \"metrics\": {\n"
                     "    \"events_per_sec\": %.0f,\n"
                     "    \"sim_packets_per_sec\": %.0f,\n"
                     "    \"checksum_mb_per_sec\": %.0f\n"
                     "  },\n"
                     "  \"workload\": {\n"
                     "    \"event_target\": %" PRIu64 ",\n"
                     "    \"packet_sim_ms\": %" PRIu64 ",\n"
                     "    \"checksum_iters\": %" PRIu64 "\n"
                     "  }\n"
                     "}\n",
                     ev_s, pkt_s, ck_mb_s, event_target,
                     static_cast<std::uint64_t>(pkt_sim / kMs),
                     cksum_iters);
        std::fclose(f);
    }
    return 0;
}
