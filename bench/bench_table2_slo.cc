/**
 * @file
 * Table II reproduction: the SLO throughput of the SNIC processor
 * (max rate it sustains without inflating p99) and the system-wide
 * energy efficiency of the SNIC processor at that point, normalized
 * to the host processor at the same rate.
 *
 * Paper anchors (SLO Gbps / EE ratio): KVS 3/1.19, Count 58/1.41,
 * EMA 6/1.17, NAT 41/1.31, BM25 1/1.18, KNN 7/1.17, Bayes 0.1/1.14,
 * REM 30/1.38, Crypto 28/1.33, Comp 43/1.55.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

namespace {

/** p99 at a given rate on the SNIC. */
double
p99At(funcs::FunctionId fn, double rate)
{
    return runPoint(ServerConfig::snicBaseline(fn), rate, 10 * kMs,
                    50 * kMs)
        .p99_us;
}

} // namespace

int
main()
{
    banner("Table II: SNIC SLO throughput and normalized EE");
    std::printf("%-8s %10s %10s | %8s %8s %8s\n", "function", "sloGbps",
                "paperSLO", "snicEE", "hostEE", "EEratio");

    const struct
    {
        funcs::FunctionId fn;
        double paper_slo;
        double paper_ee;
    } paper[] = {
        {funcs::FunctionId::Kvs, 3.0, 1.19},
        {funcs::FunctionId::Count, 58.0, 1.41},
        {funcs::FunctionId::Ema, 6.0, 1.17},
        {funcs::FunctionId::Nat, 41.0, 1.31},
        {funcs::FunctionId::Bm25, 1.0, 1.18},
        {funcs::FunctionId::Knn, 7.0, 1.17},
        {funcs::FunctionId::Bayes, 0.1, 1.14},
        {funcs::FunctionId::Rem, 30.0, 1.38},
        {funcs::FunctionId::Crypto, 28.0, 1.33},
        {funcs::FunctionId::Compress, 43.0, 1.55},
    };

    for (const auto &row : paper) {
        // Find the SNIC's max sustainable rate, then walk down until
        // p99 stops inflating: the knee of the latency curve.
        const ServerConfig snic_cfg = ServerConfig::snicBaseline(row.fn);
        const auto sat = runPoint(snic_cfg, 100.0, 10 * kMs, 50 * kMs);
        const double max_tp = sat.delivered_gbps;

        // Baseline p99 at 30% load; SLO = highest rate with p99 under
        // 3x that baseline (bisection).
        const double base_p99 =
            std::max(p99At(row.fn, std::max(0.03, max_tp * 0.3)), 1.0);
        double lo = max_tp * 0.3, hi = std::min(max_tp * 1.05, 100.0);
        for (int it = 0; it < 7; ++it) {
            const double mid = 0.5 * (lo + hi);
            if (p99At(row.fn, mid) <= 3.0 * base_p99)
                lo = mid;
            else
                hi = mid;
        }
        const double slo = lo;

        // EE of both processors at the SLO point.
        const auto snic = runPoint(snic_cfg, slo, 10 * kMs, 50 * kMs);
        const auto host = runPoint(ServerConfig::hostBaseline(row.fn),
                                   slo, 10 * kMs, 50 * kMs);

        std::printf("%-8s %10.2f %10.2f | %8.4f %8.4f %8.2f   "
                    "(paper %.2f)\n",
                    funcs::functionName(row.fn), slo, row.paper_slo,
                    snic.energy_eff, host.energy_eff,
                    snic.energy_eff / host.energy_eff, row.paper_ee);
    }
    return 0;
}
