/**
 * @file
 * Fig. 3 reproduction: average system power and energy efficiency
 * (throughput / system power) of a server using the SNIC processor,
 * normalized to a server using the host processor, each at its own
 * maximum sustainable throughput point.
 *
 * Paper anchors: server idle 194 W, SNIC 29 W idle / 30-37 W loaded;
 * SNIC contributes 0.5-2% of system power; host gives 73% higher EE
 * on average for the software functions (throughput dominates EE).
 *
 * Runs as two sweeps through the parallel harness (`--threads`,
 * `--json`, `--stats-out`, `--trace`): a saturation pass to find each
 * platform's max throughput, then the measured pass at 95% of it —
 * artifacts are written for the measured pass only. `--quick`
 * restricts to three representative functions (one software, one
 * stateful, one accelerated) for the CI regression gate.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

namespace {

constexpr funcs::FunctionId kQuickFns[] = {funcs::FunctionId::DpdkFwd,
                                           funcs::FunctionId::Nat,
                                           funcs::FunctionId::Crypto};

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    SweepOptions opts = parseBenchArgs(
        argc, argv, "fig3_power_efficiency", &quick,
        "Fig. 3: SNIC vs host power and energy efficiency at max TP.");
    if (quick)
        opts.bench_name += "_quick";

    std::vector<funcs::FunctionId> fns;
    if (quick)
        fns.assign(std::begin(kQuickFns), std::end(kQuickFns));
    else
        for (funcs::FunctionId fn : funcs::allFunctions())
            fns.push_back(fn);

    // Phase 1: saturate both platforms to find each one's max
    // sustainable throughput (no artifacts for this pass).
    std::vector<SweepPoint> sat_points;
    for (funcs::FunctionId fn : fns) {
        sat_points.push_back(point(ServerConfig::snicBaseline(fn), 100.0,
                                   10 * kMs, 60 * kMs,
                                   std::string("sat:snic:") +
                                       funcs::functionName(fn)));
        sat_points.push_back(point(ServerConfig::hostBaseline(fn), 100.0,
                                   10 * kMs, 60 * kMs,
                                   std::string("sat:host:") +
                                       funcs::functionName(fn)));
    }
    SweepOptions sat_opts;
    sat_opts.threads = opts.threads;
    sat_opts.bench_name = opts.bench_name + "_saturate";
    const std::vector<RunResult> sat = runSweep(sat_points, sat_opts);

    // Phase 2: measure power/EE at 95% of each max (the paper's
    // operating point); this pass writes the requested artifacts.
    std::vector<SweepPoint> points;
    for (std::size_t i = 0; i < fns.size(); ++i) {
        const funcs::FunctionId fn = fns[i];
        points.push_back(point(
            ServerConfig::snicBaseline(fn),
            sat[2 * i].delivered_gbps * 0.95, 10 * kMs, 60 * kMs,
            std::string("snic:") + funcs::functionName(fn)));
        points.push_back(point(
            ServerConfig::hostBaseline(fn),
            sat[2 * i + 1].delivered_gbps * 0.95, 10 * kMs, 60 * kMs,
            std::string("host:") + funcs::functionName(fn)));
    }
    const std::vector<RunResult> results = runSweep(points, opts);

    banner("Fig. 3: system power and energy efficiency at max TP "
           "(SNIC/host normalized)");
    std::printf("%-8s %8s %8s %8s | %9s %9s %8s\n", "function", "snicW",
                "hostW", "powRatio", "snicEE", "hostEE", "eeRatio");

    double geo = 1.0;
    for (std::size_t i = 0; i < fns.size(); ++i) {
        const RunResult &snic = results[2 * i];
        const RunResult &host = results[2 * i + 1];
        std::printf("%-8s %8.1f %8.1f %8.3f | %9.4f %9.4f %8.3f\n",
                    funcs::functionName(fns[i]), snic.system_power_w,
                    host.system_power_w,
                    snic.system_power_w / host.system_power_w,
                    snic.energy_eff, host.energy_eff,
                    snic.energy_eff / host.energy_eff);
        geo *= host.energy_eff / snic.energy_eff;
    }
    std::printf("\nhost EE advantage (geomean over functions): %.1f%%\n",
                100.0 * (std::pow(geo, 1.0 / static_cast<double>(
                                           fns.size())) -
                         1.0));
    std::printf("paper: host ~73%% higher EE on average for "
                "software-only functions\n");
    return 0;
}
