/**
 * @file
 * Fig. 3 reproduction: average system power and energy efficiency
 * (throughput / system power) of a server using the SNIC processor,
 * normalized to a server using the host processor, each at its own
 * maximum sustainable throughput point.
 *
 * Paper anchors: server idle 194 W, SNIC 29 W idle / 30-37 W loaded;
 * SNIC contributes 0.5-2% of system power; host gives 73% higher EE
 * on average for the software functions (throughput dominates EE).
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

int
main()
{
    banner("Fig. 3: system power and energy efficiency at max TP "
           "(SNIC/host normalized)");
    std::printf("%-8s %8s %8s %8s | %9s %9s %8s\n", "function", "snicW",
                "hostW", "powRatio", "snicEE", "hostEE", "eeRatio");

    double geo = 1.0;
    int count = 0;
    for (funcs::FunctionId fn : funcs::allFunctions()) {
        ServerConfig snic_cfg, host_cfg;
        snic_cfg.mode = Mode::SnicOnly;
        host_cfg.mode = Mode::HostOnly;
        snic_cfg.function = host_cfg.function = fn;

        // Each platform measured at its own max throughput point.
        const auto snic_sat = runPoint(snic_cfg, 100.0, 10 * kMs,
                                       60 * kMs);
        const auto host_sat = runPoint(host_cfg, 100.0, 10 * kMs,
                                       60 * kMs);
        const auto snic =
            runPoint(snic_cfg, snic_sat.delivered_gbps * 0.95, 10 * kMs,
                     60 * kMs);
        const auto host =
            runPoint(host_cfg, host_sat.delivered_gbps * 0.95, 10 * kMs,
                     60 * kMs);

        std::printf("%-8s %8.1f %8.1f %8.3f | %9.4f %9.4f %8.3f\n",
                    funcs::functionName(fn), snic.system_power_w,
                    host.system_power_w,
                    snic.system_power_w / host.system_power_w,
                    snic.energy_eff, host.energy_eff,
                    snic.energy_eff / host.energy_eff);
        geo *= host.energy_eff / snic.energy_eff;
        ++count;
    }
    std::printf("\nhost EE advantage (geomean over functions): %.1f%%\n",
                100.0 * (std::pow(geo, 1.0 / count) - 1.0));
    std::printf("paper: host ~73%% higher EE on average for "
                "software-only functions\n");
    return 0;
}
