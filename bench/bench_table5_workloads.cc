/**
 * @file
 * Table V reproduction: max/avg throughput, p99 latency, and average
 * system power of SNIC-only, Host-only, and HAL across the three
 * datacenter traces, for the six single functions (KNN, NAT, Count,
 * EMA, REM, crypto) and the four two-stage pipelines.
 *
 * The stateful functions (Count, EMA) run on the CXL-SNIC emulation
 * with coherent shared state (§V-C). Pass --coherence-check to also
 * run the §VII-B methodology comparison (coherent vs
 * ignore-correctness stateless-style run).
 *
 * Paper headline: HAL gives ~8-13% higher max throughput than the
 * host, 64-94% lower p99 than the SNIC, and 24-35% higher energy
 * efficiency than the host, across traces.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

namespace {

struct Entry
{
    std::string label;
    funcs::FunctionId first;
    std::optional<funcs::FunctionId> second;
};

std::vector<Entry>
tableVEntries()
{
    std::vector<Entry> entries;
    for (funcs::FunctionId fn : funcs::tableVFunctions())
        entries.push_back({funcs::functionName(fn), fn, std::nullopt});
    for (const auto &[a, b] : funcs::tableVPipelines()) {
        entries.push_back({std::string(funcs::functionName(a)) + "+" +
                               funcs::functionName(b),
                           a, b});
    }
    return entries;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool coherence_check =
        argc > 1 && std::strcmp(argv[1], "--coherence-check") == 0;

    const net::TraceKind traces[] = {net::TraceKind::Web,
                                     net::TraceKind::Cache,
                                     net::TraceKind::Hadoop};

    for (net::TraceKind trace : traces) {
        banner(std::string("Table V: workload ") + net::traceName(trace));
        std::printf("%-14s |", "function");
        for (const char *m : {"snic", "host", "hal"})
            std::printf(" %s: %5s(%5s) %8s %6s |", m, "max", "avg",
                        "p99us", "avgW");
        std::printf("\n");

        // Aggregates for the headline ratios.
        double ee_gain = 1.0, p99_cut = 1.0, max_gain = 1.0;
        int rows = 0;

        for (const Entry &e : tableVEntries()) {
            std::printf("%-14s |", e.label.c_str());
            RunResult res[3];
            int i = 0;
            for (Mode mode : {Mode::SnicOnly, Mode::HostOnly, Mode::Hal}) {
                ServerConfig cfg;
                cfg.mode = mode;
                cfg.function = e.first;
                cfg.pipeline_second = e.second;
                const auto r = runTrace(cfg, trace);
                res[i++] = r;
                std::printf(" %11.1f(%5.1f) %8.1f %6.1f |",
                            r.max_window_gbps, r.delivered_gbps, r.p99_us,
                            r.system_power_w);
            }
            std::printf("\n");
            const auto &snic = res[0];
            const auto &host = res[1];
            const auto &hal = res[2];
            ee_gain *= hal.energy_eff / host.energy_eff;
            p99_cut *= hal.p99_us / snic.p99_us;
            max_gain *= hal.max_window_gbps / host.max_window_gbps;
            ++rows;
        }

        std::printf(
            "\n[%s] HAL vs host: max TP %+.1f%%, EE %+.1f%%; "
            "HAL vs snic: p99 %+.1f%% (geomeans)\n",
            net::traceName(trace),
            100.0 * (std::pow(max_gain, 1.0 / rows) - 1.0),
            100.0 * (std::pow(ee_gain, 1.0 / rows) - 1.0),
            100.0 * (std::pow(p99_cut, 1.0 / rows) - 1.0));
    }

    if (coherence_check) {
        banner("§VII-B methodology: coherent vs stateless-style run "
               "(Count/EMA on hadoop)");
        for (funcs::FunctionId fn :
             {funcs::FunctionId::Count, funcs::FunctionId::Ema}) {
            ServerConfig cfg;
            cfg.mode = Mode::Hal;
            cfg.function = fn;
            cfg.coherent_state = true;
            const auto with = runTrace(cfg, net::TraceKind::Hadoop);
            cfg.coherent_state = false;
            const auto without = runTrace(cfg, net::TraceKind::Hadoop);
            std::printf("%-6s coherent: tp %5.1f p99 %7.1f | stateless: "
                        "tp %5.1f p99 %7.1f | dTP %+.2f%% dP99 %+.2f%%\n",
                        funcs::functionName(fn), with.delivered_gbps,
                        with.p99_us, without.delivered_gbps,
                        without.p99_us,
                        100.0 * (with.delivered_gbps /
                                     without.delivered_gbps -
                                 1.0),
                        100.0 * (with.p99_us / without.p99_us - 1.0));
        }
        std::printf("paper: 0.3-0.4%% lower max TP, 1.7-3.4%% higher "
                    "p99 with coherence\n");
    }
    std::printf("\npaper headline: HAL +31%% EE, +10%% TP vs host; p99 "
                "64-94%% below SNIC\n");
    return 0;
}
