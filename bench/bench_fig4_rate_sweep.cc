/**
 * @file
 * Fig. 4 reproduction: throughput, p99 latency (top) and system
 * power, energy efficiency (bottom) versus packet rate, for REM
 * (left) and NAT (right) on the host processor and SNIC processor.
 *
 * Paper anchors: the SNIC processor improves system EE below
 * ~30 Gbps (REM) / ~41 Gbps (NAT) without hurting p99; above, it
 * drops packets and its tail explodes (REM's accelerator tail stays
 * flat because only surviving packets are measured).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

int
main()
{
    for (funcs::FunctionId fn :
         {funcs::FunctionId::Rem, funcs::FunctionId::Nat}) {
        banner(std::string("Fig. 4: rate sweep for ") +
               funcs::functionName(fn));
        std::printf("%5s | %8s %9s %8s %8s | %8s %9s %8s %8s\n", "Gbps",
                    "hostTP", "hostP99us", "hostW", "hostEE", "snicTP",
                    "snicP99us", "snicW", "snicEE");
        for (double rate : {5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0,
                            70.0, 80.0, 90.0, 100.0}) {
            ServerConfig host_cfg, snic_cfg;
            host_cfg.mode = Mode::HostOnly;
            snic_cfg.mode = Mode::SnicOnly;
            host_cfg.function = snic_cfg.function = fn;
            const auto h = runPoint(host_cfg, rate, 10 * kMs, 60 * kMs);
            const auto s = runPoint(snic_cfg, rate, 10 * kMs, 60 * kMs);
            std::printf(
                "%5.0f | %8.1f %9.1f %8.1f %8.4f | %8.1f %9.1f %8.1f "
                "%8.4f%s\n",
                rate, h.delivered_gbps, h.p99_us, h.system_power_w,
                h.energy_eff, s.delivered_gbps, s.p99_us,
                s.system_power_w, s.energy_eff,
                s.drops > 0 ? "  (snic dropping)" : "");
        }
    }
    std::printf("\npaper: SNIC EE advantage holds below 30 Gbps (REM) / "
                "41 Gbps (NAT); beyond, drops + tail blow-up\n");
    return 0;
}
