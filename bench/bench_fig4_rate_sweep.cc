/**
 * @file
 * Fig. 4 reproduction: throughput, p99 latency (top) and system
 * power, energy efficiency (bottom) versus packet rate, for REM
 * (left) and NAT (right) on the host processor and SNIC processor.
 *
 * Paper anchors: the SNIC processor improves system EE below
 * ~30 Gbps (REM) / ~41 Gbps (NAT) without hurting p99; above, it
 * drops packets and its tail explodes (REM's accelerator tail stays
 * flat because only surviving packets are measured).
 *
 * All (function, rate, processor) points are independent, so they run
 * through the parallel sweep harness: `--threads all` uses every
 * core, `--json PATH` writes the machine-readable artifact.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

namespace {

constexpr double kRates[] = {5.0,  10.0, 20.0, 30.0, 40.0, 50.0,
                             60.0, 70.0, 80.0, 90.0, 100.0};
constexpr funcs::FunctionId kFns[] = {funcs::FunctionId::Rem,
                                      funcs::FunctionId::Nat};

} // namespace

int
main(int argc, char **argv)
{
    const SweepOptions opts =
        parseSweepArgs(argc, argv, "fig4_rate_sweep");

    // Host and SNIC points interleave per rate: index 2k is the host
    // run, 2k+1 the SNIC run, in function-major order.
    std::vector<SweepPoint> points;
    for (funcs::FunctionId fn : kFns) {
        for (double rate : kRates) {
            ServerConfig host_cfg = ServerConfig::hostBaseline(fn);
            ServerConfig snic_cfg = ServerConfig::snicBaseline(fn);
            const std::string tag =
                std::string(funcs::functionName(fn)) + "@" +
                std::to_string(static_cast<int>(rate));
            points.push_back(point(host_cfg, rate, 10 * kMs, 60 * kMs,
                                   "host:" + tag));
            points.push_back(point(snic_cfg, rate, 10 * kMs, 60 * kMs,
                                   "snic:" + tag));
        }
    }

    const std::vector<RunResult> results = runSweep(points, opts);

    std::size_t i = 0;
    for (funcs::FunctionId fn : kFns) {
        banner(std::string("Fig. 4: rate sweep for ") +
               funcs::functionName(fn));
        std::printf("%5s | %8s %9s %8s %8s | %8s %9s %8s %8s\n", "Gbps",
                    "hostTP", "hostP99us", "hostW", "hostEE", "snicTP",
                    "snicP99us", "snicW", "snicEE");
        for (double rate : kRates) {
            const RunResult &h = results[i++];
            const RunResult &s = results[i++];
            std::printf(
                "%5.0f | %8.1f %9.1f %8.1f %8.4f | %8.1f %9.1f %8.1f "
                "%8.4f%s\n",
                rate, h.delivered_gbps, h.p99_us, h.system_power_w,
                h.energy_eff, s.delivered_gbps, s.p99_us,
                s.system_power_w, s.energy_eff,
                s.drops > 0 ? "  (snic dropping)" : "");
        }
    }
    std::printf("\npaper: SNIC EE advantage holds below 30 Gbps (REM) / "
                "41 Gbps (NAT); beyond, drops + tail blow-up\n");
    return 0;
}
