/**
 * @file
 * Table I reproduction: which BlueField-2 functions are also
 * supported by Intel ISA extensions and/or QAT on the host — the
 * capability matrix motivating the host-accelerator comparison.
 * Static data transcribed from the paper, plus the execution-unit
 * mapping our calibration tables actually use.
 */

#include <cstdio>

#include "funcs/calibration.hh"
#include "funcs/registry.hh"

using namespace halsim;
using namespace halsim::funcs;

int
main()
{
    std::printf("=== Table I: host acceleration support for BF-2 "
                "functions ===\n");
    std::printf("%-10s %4s %4s\n", "function", "ISA", "QAT");
    const struct
    {
        const char *name;
        bool isa, qat;
    } rows[] = {
        {"SHA", true, true},      {"RSA", true, true},
        {"EC-DH", true, true},    {"AES", true, true},
        {"DSA", true, true},      {"EC-DSA", true, true},
        {"Deflate", true, true},  {"RAND", true, true},
        {"GHASH", true, false},   {"HMAC", true, true},
        {"MD5", true, false},     {"DES-EDE3", true, false},
        {"Whirlpool", true, false}, {"RMD160", true, false},
        {"DES-CBC", true, false}, {"Camellia", true, false},
        {"RC2-CBC", true, false}, {"RC4", true, false},
        {"Blowfish", true, false}, {"SEED-CBC", true, false},
        {"CAST-CBC", true, false}, {"EdDSA", true, false},
        {"MD4", true, false},
    };
    for (const auto &r : rows)
        std::printf("%-10s %4s %4s\n", r.name, r.isa ? "y" : "-",
                    r.qat ? "y" : "-");

    std::printf("\n=== execution-unit mapping used by the model ===\n");
    std::printf("%-8s %-14s %-14s\n", "function", "on host", "on BF-2");
    for (FunctionId fn : allFunctions()) {
        const auto &h = profile(Platform::HostSkylake, fn);
        const auto &s = profile(Platform::SnicBf2, fn);
        std::printf("%-8s %-14s %-14s\n", functionName(fn),
                    h.unit == ExecUnit::Accel ? "QAT accel" : "CPU (ISA)",
                    s.unit == ExecUnit::Accel ? "BF-2 accel" : "Arm CPU");
    }
    return 0;
}
