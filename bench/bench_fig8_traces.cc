/**
 * @file
 * Fig. 8 reproduction: the web / cache / Hadoop datacenter traffic
 * traces — log-normal rate processes with the paper's (mu, sigma),
 * truncated at the 100 Gbps line rate. Prints the distribution
 * parameters, analytic and empirical means, and a rate snapshot.
 *
 * Paper anchors: (mu, sigma) = web -1.37/1.97, cache -9/7.55,
 * hadoop -4.18/6.56; average rates 1.6 / 5.2 / 10.9 Gbps.
 */

#include <cstdio>

#include "net/traffic.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace halsim;
using namespace halsim::net;

int
main()
{
    std::printf("=== Fig. 8: datacenter traffic traces ===\n");
    std::printf("%-8s %8s %8s | %9s %9s %9s | %6s\n", "trace", "mu",
                "sigma", "analytic", "empirical", "paperAvg", "p(cap)");

    const struct
    {
        TraceKind kind;
        double paper_avg;
    } rows[] = {
        {TraceKind::Web, 1.6},
        {TraceKind::Cache, 5.2},
        {TraceKind::Hadoop, 10.9},
    };

    for (const auto &row : rows) {
        auto proc = makeTrace(row.kind);
        auto *ln = dynamic_cast<LognormalRate *>(proc.get());
        Rng rng(2024);
        Accumulator acc;
        std::uint64_t at_cap = 0;
        const int n = 500000;
        for (int i = 0; i < n; ++i) {
            const double r = proc->sample(rng);
            acc.sample(r);
            at_cap += r >= 99.999;
        }
        std::printf("%-8s %8.2f %8.2f | %9.2f %9.2f %9.2f | %5.1f%%\n",
                    traceName(row.kind), ln->mu(), ln->sigma(),
                    proc->meanGbps(), acc.mean(), row.paper_avg,
                    100.0 * at_cap / n);
    }

    // 100-epoch snapshot like the figure's time series.
    std::printf("\nrate snapshots (Gbps per epoch):\n");
    for (const auto &row : rows) {
        auto proc = makeTrace(row.kind);
        Rng rng(7);
        std::printf("%-8s:", traceName(row.kind));
        for (int i = 0; i < 16; ++i)
            std::printf(" %6.2f", proc->sample(rng));
        std::printf("\n");
    }
    return 0;
}
