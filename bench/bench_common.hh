/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: run a
 * ServerSystem operating point (or a parallel sweep of them) and
 * print paper-style rows.
 *
 * Sweep-style benches accept `--threads N` (0 = all cores; also the
 * HALSIM_THREADS env var) and `--json PATH` via
 * core::parseSweepArgs(); points run concurrently but results are
 * always reported in input order and are identical to a serial run.
 */

#ifndef HALSIM_BENCH_COMMON_HH
#define HALSIM_BENCH_COMMON_HH

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/server.hh"
#include "core/sweep.hh"

namespace halsim::bench {

/** Default measurement windows (simulated time). */
inline constexpr Tick kWarmup = 20 * kMs;
inline constexpr Tick kMeasure = 100 * kMs;

/** One constant-rate operating point. */
inline core::RunResult
runPoint(core::ServerConfig cfg, double rate_gbps, Tick warmup = kWarmup,
         Tick measure = kMeasure)
{
    EventQueue eq;
    core::ServerSystem sys(eq, cfg);
    return sys.run(std::make_unique<net::ConstantRate>(rate_gbps), warmup,
                   measure);
}

/** One datacenter-trace operating point (§VI traces, compressed). */
inline core::RunResult
runTrace(core::ServerConfig cfg, net::TraceKind trace,
         Tick measure = 600 * kMs, Tick resample = 1 * kMs)
{
    EventQueue eq;
    core::ServerSystem sys(eq, cfg);
    return sys.run(net::makeTrace(trace), kWarmup, measure, resample);
}

/**
 * Find the maximum sustainable throughput of a configuration by
 * offering well above any profile and reading the delivered rate.
 */
inline core::RunResult
runSaturated(core::ServerConfig cfg, double line_rate = 100.0)
{
    return runPoint(std::move(cfg), line_rate);
}

/** Build a constant-rate sweep point with bench-default windows. */
inline core::SweepPoint
point(core::ServerConfig cfg, double rate_gbps, Tick warmup = kWarmup,
      Tick measure = kMeasure, std::string label = {})
{
    core::SweepPoint p;
    p.cfg = std::move(cfg);
    p.rate_gbps = rate_gbps;
    p.warmup = warmup;
    p.measure = measure;
    p.label = std::move(label);
    return p;
}

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/**
 * The standard bench command line: the shared sweep flag set
 * (--threads/--json/--stats-out/--trace/--slo-p99/--governor/
 * --gov-epoch) plus the ubiquitous `--quick` switch, all through the
 * one ArgRegistrar so every bench shares help text and the strict
 * exit-2 contract. @p extra, when given, registers bench-specific
 * flags before parsing.
 */
inline core::SweepOptions
parseBenchArgs(int argc, char **argv, std::string bench_name,
               bool *quick, const std::string &description = "",
               const std::function<void(core::ArgRegistrar &)> &extra = {})
{
    core::SweepOptions opts;
    opts.bench_name = std::move(bench_name);
    opts.threads = core::envDefaultThreads(opts.threads);
    core::ArgRegistrar reg(argv[0], description);
    core::registerSweepFlags(reg, opts);
    if (quick != nullptr) {
        reg.flag("--quick", "CI-sized run (shorter windows, fewer points)",
                 [quick] { *quick = true; });
    }
    if (extra)
        extra(reg);
    reg.parse(argc, argv);
    return opts;
}

} // namespace halsim::bench

#endif // HALSIM_BENCH_COMMON_HH
