/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: run a
 * ServerSystem operating point and print paper-style rows.
 */

#ifndef HALSIM_BENCH_COMMON_HH
#define HALSIM_BENCH_COMMON_HH

#include <cstdio>
#include <memory>
#include <string>

#include "core/server.hh"

namespace halsim::bench {

/** Default measurement windows (simulated time). */
inline constexpr Tick kWarmup = 20 * kMs;
inline constexpr Tick kMeasure = 100 * kMs;

/** One constant-rate operating point. */
inline core::RunResult
runPoint(core::ServerConfig cfg, double rate_gbps, Tick warmup = kWarmup,
         Tick measure = kMeasure)
{
    EventQueue eq;
    core::ServerSystem sys(eq, cfg);
    return sys.run(std::make_unique<net::ConstantRate>(rate_gbps), warmup,
                   measure);
}

/** One datacenter-trace operating point (§VI traces, compressed). */
inline core::RunResult
runTrace(core::ServerConfig cfg, net::TraceKind trace,
         Tick measure = 600 * kMs, Tick resample = 1 * kMs)
{
    EventQueue eq;
    core::ServerSystem sys(eq, cfg);
    return sys.run(net::makeTrace(trace), kWarmup, measure, resample);
}

/**
 * Find the maximum sustainable throughput of a configuration by
 * offering well above any profile and reading the delivered rate.
 */
inline core::RunResult
runSaturated(core::ServerConfig cfg, double line_rate = 100.0)
{
    return runPoint(std::move(cfg), line_rate);
}

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace halsim::bench

#endif // HALSIM_BENCH_COMMON_HH
