/**
 * @file
 * Core-scaling governor evaluation (ROADMAP item 3): diurnal / burst
 * / trough / peak workloads run twice — static core count vs. the
 * RSS++/COREIDLE governor — and compared on energy per bit and tail
 * latency.
 *
 * The paper's platform has a 194 W static floor, so total J/Gb at a
 * 4 Gbps trough is dominated by idle watts no governor can touch; the
 * headline gate is therefore on *dynamic* J/Gb (total minus the
 * static base), where parking poll cores shows up directly. Total
 * J/Gb must still strictly improve, and the governor must not cost
 * tail latency at peak load.
 *
 * Gates (exit 1 on violation; skipped when `--governor` forces both
 * variants to the same setting):
 *  - trough + diurnal: governor total J/Gb < static total J/Gb;
 *  - trough: dynamic J/Gb saving >= 15%;
 *  - trough: the governor actually parked cores;
 *  - peak: governor p99 <= 500 us (the Table-2 SLO band).
 *
 * Deterministic: both rate processes are phase-stepped (no RNG), so
 * `--quick --json` reproduces bench/BENCH_governor_quick.json
 * bit-for-bit and CI gates on drift.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

namespace {

/** Peak-load tail-latency budget (Table 2's SLO band). */
constexpr double kPeakSloUs = 500.0;

/** Required dynamic-energy saving at the trough. */
constexpr double kMinDynSaving = 0.15;

struct Workload
{
    const char *name;
    std::function<std::unique_ptr<net::RateProcess>()> make_rate;
};

/** Dynamic (non-static) energy per bit: what the governor can move. */
double
dynJPerGb(const RunResult &r)
{
    if (r.energy_total_j <= 0.0)
        return 0.0;
    return r.j_per_gb * (1.0 - r.energy_static_j / r.energy_total_j);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    SweepOptions opts = parseBenchArgs(
        argc, argv, "governor", &quick,
        "Core-scaling governor vs. static cores: diurnal/burst sweep.");
    if (quick)
        opts.bench_name += "_quick";

    const Tick warmup = quick ? 10 * kMs : 20 * kMs;
    const Tick measure = quick ? 60 * kMs : 240 * kMs;
    const Tick resample = 1 * kMs;

    // Phase-stepped deterministic workloads (resampled every 1 ms):
    // a 4 Gbps trough, a 40 ms-period day/night swing, a 20%-duty
    // burst train, and a saturating peak.
    const std::vector<Workload> workloads = {
        {"trough",
         [] { return std::make_unique<net::ConstantRate>(4.0); }},
        {"diurnal",
         [] { return std::make_unique<net::DiurnalRate>(4.0, 70.0, 40); }},
        {"burst",
         [] { return std::make_unique<net::BurstRate>(6.0, 80.0, 20, 4); }},
        {"peak",
         [] { return std::make_unique<net::ConstantRate>(80.0); }},
    };

    std::vector<SweepPoint> points;
    for (const Workload &w : workloads) {
        for (const bool governed : {false, true}) {
            SweepPoint p;
            p.cfg = ServerConfig{};
            p.cfg.power.governor.enabled = governed;
            p.make_rate = w.make_rate;
            p.warmup = warmup;
            p.measure = measure;
            p.resample = resample;
            p.label = std::string(governed ? "gov:" : "static:") + w.name;
            points.push_back(std::move(p));
        }
    }

    const std::vector<RunResult> results = runSweep(points, opts);

    banner("Core-scaling governor vs. static cores (HAL, NAT)");
    std::printf("%-8s | %8s %8s | %8s %8s %7s | %8s %8s %7s | %6s %9s\n",
                "workload", "tp", "p99us", "J/Gb", "J/Gb", "save%",
                "dynJ/Gb", "dynJ/Gb", "save%", "parks", "active");
    std::printf("%-8s | %8s %8s | %8s %8s %7s | %8s %8s %7s | %6s %9s\n",
                "", "gov", "gov", "static", "gov", "", "static", "gov",
                "", "gov", "min..max");

    bool ok = true;
    auto gate = [&ok](bool pass, const char *what) {
        if (!pass) {
            ok = false;
            std::printf("GATE FAILED: %s\n", what);
        }
    };

    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const RunResult &st = results[2 * i];
        const RunResult &gov = results[2 * i + 1];
        const double save =
            st.j_per_gb > 0.0 ? 1.0 - gov.j_per_gb / st.j_per_gb : 0.0;
        const double dyn_st = dynJPerGb(st);
        const double dyn_gov = dynJPerGb(gov);
        const double dyn_save =
            dyn_st > 0.0 ? 1.0 - dyn_gov / dyn_st : 0.0;
        std::printf("%-8s | %8.2f %8.1f | %8.3f %8.3f %6.1f%% | "
                    "%8.4f %8.4f %6.1f%% | %6llu %4llu..%-4llu\n",
                    workloads[i].name, gov.delivered_gbps, gov.p99_us,
                    st.j_per_gb, gov.j_per_gb, 100.0 * save, dyn_st,
                    dyn_gov, 100.0 * dyn_save,
                    static_cast<unsigned long long>(gov.gov_parks),
                    static_cast<unsigned long long>(
                        gov.gov_min_active_cores),
                    static_cast<unsigned long long>(
                        gov.gov_max_active_cores));
    }

    if (opts.governor) {
        std::printf("\n--governor override active: comparison gates "
                    "skipped\n");
        return 0;
    }

    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const std::string name = workloads[i].name;
        const RunResult &st = results[2 * i];
        const RunResult &gov = results[2 * i + 1];
        if (name == "trough" || name == "diurnal") {
            gate(gov.j_per_gb < st.j_per_gb,
                 (name + ": governor must strictly improve total J/Gb")
                     .c_str());
        }
        if (name == "trough") {
            const double dyn_st = dynJPerGb(st);
            const double dyn_gov = dynJPerGb(gov);
            gate(dyn_st > 0.0 &&
                     dyn_gov <= (1.0 - kMinDynSaving) * dyn_st,
                 "trough: dynamic J/Gb saving must be >= 15%");
            gate(gov.gov_parks > 0,
                 "trough: governor must actually park cores");
        }
        if (name == "peak") {
            gate(gov.p99_us <= kPeakSloUs,
                 "peak: governor p99 must stay within the 500 us SLO");
        }
    }

    std::printf("\n%s\n", ok ? "all governor gates passed"
                             : "governor gates FAILED");
    return ok ? 0 : 1;
}
