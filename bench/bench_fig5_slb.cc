/**
 * @file
 * Fig. 5 reproduction: throughput and p99 latency of NAT behind the
 * software load balancer (SLB), varying the number of SLB cores
 * (1 vs 4) and Fwd_Th from 20 to 60 Gbps, with the client offering
 * 80 Gbps.
 *
 * Paper anchors: one SLB core drops 58-61% of packets across the
 * Fwd_Th range; four cores reach ~80 Gbps at Fwd_Th = 20 but with
 * p99 above even the SNIC-only baseline; throughput decays toward
 * ~53 Gbps as Fwd_Th rises to 60 (the SNIC cores can't process it).
 *
 * All points are independent, so they run through the parallel sweep
 * harness: `--threads all`, `--json PATH`, `--stats-out PATH`,
 * `--trace PATH`.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

namespace {

constexpr unsigned kSlbCores[] = {1u, 4u};
constexpr double kFwdThs[] = {20.0, 30.0, 40.0, 50.0, 60.0};
constexpr Mode kRefModes[] = {Mode::SnicOnly, Mode::HostOnly, Mode::Hal,
                              Mode::HostSlb};

} // namespace

int
main(int argc, char **argv)
{
    const SweepOptions opts = parseSweepArgs(argc, argv, "fig5_slb");

    std::vector<SweepPoint> points;
    for (unsigned cores : kSlbCores) {
        for (double fwd : kFwdThs) {
            ServerConfig cfg = ServerConfig::slbBaseline();
            cfg.slb_cores = cores;
            cfg.slb_fwd_th_gbps = fwd;
            points.push_back(point(
                std::move(cfg), 80.0, kWarmup, kMeasure,
                "slb:c" + std::to_string(cores) + ":fwd" +
                    std::to_string(static_cast<int>(fwd))));
        }
    }
    // Reference points the paper compares against, including §IV's
    // host-side SLB alternative (host always hot, 2x DPDK work).
    for (Mode m : kRefModes) {
        ServerConfig cfg;
        cfg.mode = m;
        cfg.function = funcs::FunctionId::Nat;
        cfg.slb_fwd_th_gbps = 35.0;   // host-SLB threshold: SNIC share
        points.push_back(point(std::move(cfg), 80.0, kWarmup, kMeasure,
                               std::string("ref:") + modeName(m)));
    }
    // Host-side SLB vs HAL at low rate (the always-hot-host cost).
    for (Mode m : {Mode::Hal, Mode::HostSlb}) {
        ServerConfig cfg;
        cfg.mode = m;
        cfg.function = funcs::FunctionId::DpdkFwd;
        cfg.slb_fwd_th_gbps = 35.0;
        points.push_back(point(std::move(cfg), 20.0, kWarmup, kMeasure,
                               std::string("lowrate:") + modeName(m)));
    }

    const std::vector<RunResult> results = runSweep(points, opts);

    std::size_t i = 0;
    banner("Fig. 5: NAT with SLB at 80 Gbps offered");
    std::printf("%8s %6s | %8s %9s %7s | %10s %10s\n", "slbCores",
                "fwdTh", "tpGbps", "p99us", "loss%", "keptLocal",
                "forwarded");
    for (unsigned cores : kSlbCores) {
        for (double fwd : kFwdThs) {
            const RunResult &r = results[i++];
            std::printf("%8u %6.0f | %8.1f %9.1f %7.1f | %10llu %10llu\n",
                        cores, fwd, r.delivered_gbps, r.p99_us,
                        100.0 * r.lossFraction(),
                        static_cast<unsigned long long>(r.slb_kept),
                        static_cast<unsigned long long>(r.slb_forwarded));
        }
    }

    banner("references at 80 Gbps offered");
    for (Mode m : kRefModes) {
        const RunResult &r = results[i++];
        std::printf("%-8s tp=%6.1f Gbps  p99=%8.1f us  loss=%4.1f%%  "
                    "power=%6.1f W\n",
                    modeName(m), r.delivered_gbps, r.p99_us,
                    100.0 * r.lossFraction(), r.system_power_w);
    }

    banner("host-side SLB vs HAL at low rate (the always-hot-host cost)");
    for (Mode m : {Mode::Hal, Mode::HostSlb}) {
        const RunResult &r = results[i++];
        std::printf("%-8s tp=%6.1f Gbps  p99=%8.1f us  ee=%6.4f  "
                    "power=%6.1f W\n",
                    modeName(m), r.delivered_gbps, r.p99_us,
                    r.energy_eff, r.system_power_w);
    }
    std::printf("\npaper: 1 core drops 58-61%%; 4 cores ~80 Gbps at "
                "FwdTh=20 but p99 above SNIC-only; decays to ~53 Gbps "
                "at FwdTh=60; host-side SLB burns the host at all "
                "rates and pays 2x DPDK (2.3x HAL's p99 for MTU "
                "forwarding)\n");
    return 0;
}
