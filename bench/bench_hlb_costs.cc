/**
 * @file
 * §VII-C reproduction: HLB hardware, latency, power, and bandwidth
 * costs.
 *
 * Paper anchors: 13,861 LUTs (1.1% of a U280, 16.7% of a Corundum
 * NIC); +800 ns DPDK round-trip (8.3%), 365 ns of it from the
 * transceiver+MAC; <0.1 W; negligible LBP->FPGA control bandwidth.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

int
main()
{
    banner("§VII-C: HLB cost accounting");

    // Latency cost: DPDK forwarding round trip with and without HAL
    // in the path, at a low rate where queueing is negligible.
    ServerConfig base;
    base.function = funcs::FunctionId::DpdkFwd;
    base.mode = Mode::SnicOnly;
    const auto without = runPoint(base, 5.0, 10 * kMs, 50 * kMs);
    base.mode = Mode::Hal;
    const auto with = runPoint(base, 5.0, 10 * kMs, 50 * kMs);

    const double added_us = with.mean_us - without.mean_us;
    std::printf("DPDK RTT without HLB: %7.2f us (mean), %7.2f us (p99)\n",
                without.mean_us, without.p99_us);
    std::printf("DPDK RTT with    HLB: %7.2f us (mean), %7.2f us (p99)\n",
                with.mean_us, with.p99_us);
    std::printf("added latency: %.0f ns (%.1f%%)   [paper: 800 ns, "
                "8.3%%, 365 ns of it transceiver+MAC]\n",
                added_us * 1000.0,
                100.0 * added_us / without.mean_us);

    // Power cost.
    std::printf("\nHLB power: %.2f W   [paper: <0.1 W from Vivado; an "
                "ASIC would be ~14x lower still]\n",
                kHlbPowerW);

    // Hardware cost (static, from the paper's Vivado report).
    std::printf("HLB area:  13861 LUTs = 1.1%% of U280, 16.7%% of a "
                "Corundum NIC (paper report)\n");

    // Control-plane bandwidth: LBP -> FPGA threshold updates.
    ServerConfig hal;
    hal.mode = Mode::Hal;
    hal.function = funcs::FunctionId::Nat;
    EventQueue eq;
    ServerSystem sys(eq, hal);
    const auto r = sys.run(net::makeTrace(net::TraceKind::Hadoop),
                           20 * kMs, 400 * kMs, 2 * kMs);
    const auto *policy = sys.lbp();
    const double updates_per_s =
        static_cast<double>(policy->adjustmentsUp() +
                            policy->adjustmentsDown()) /
        ticksToSeconds(400 * kMs);
    // Each update is one small control frame (~64 B).
    std::printf("\nLBP control traffic under hadoop: %.0f updates/s = "
                "%.1f kbit/s of the 100 Gbps link (%.6f%%)\n",
                updates_per_s, updates_per_s * 64 * 8 / 1000.0,
                updates_per_s * 64 * 8 / 100e9 * 100.0);
    std::printf("(delivered %.1f Gbps with final FwdTh %.1f)\n",
                r.delivered_gbps, r.final_fwd_th_gbps);
    return 0;
}
