/**
 * @file
 * Ablation: the traffic director's split discipline. The paper says
 * the director takes excess packets "in a round-robin fashion"; we
 * compare a byte-accurate token bucket (default) against that
 * literal per-packet round-robin, plus the token bucket's depth
 * (burst tolerance toward the SNIC), under steady and bursty load.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

namespace {

void
runCase(const char *name, SplitMode mode, bool trace)
{
    ServerConfig cfg;
    cfg.mode = Mode::Hal;
    cfg.function = funcs::FunctionId::Nat;
    cfg.split_mode = mode;
    EventQueue eq;
    ServerSystem sys(eq, cfg);
    const auto r =
        trace ? sys.run(net::makeTrace(net::TraceKind::Hadoop), 20 * kMs,
                        300 * kMs, 2 * kMs)
              : sys.run(std::make_unique<net::ConstantRate>(70.0),
                        20 * kMs, 100 * kMs);
    const double snic_share =
        100.0 * static_cast<double>(r.snic_frames) /
        static_cast<double>(r.snic_frames + r.host_frames + 1);
    std::printf("%-12s | %7.1f %9.1f %8lu %7.1f%%\n", name,
                r.delivered_gbps, r.p99_us,
                static_cast<unsigned long>(r.drops), snic_share);
}

} // namespace

int
main()
{
    for (bool trace : {false, true}) {
        banner(std::string("director ablation: NAT, ") +
               (trace ? "hadoop trace" : "70 Gbps constant"));
        std::printf("%-12s | %7s %9s %8s %8s\n", "split", "tp", "p99us",
                    "drops", "snic%");
        runCase("token-bucket", SplitMode::TokenBucket, trace);
        runCase("round-robin", SplitMode::RoundRobin, trace);
        runCase("flow-affinity", SplitMode::FlowAffinity, trace);
    }
    std::printf("\nexpectation: both sustain throughput; round-robin "
                "tracks the monitor epoch so it reacts a little more "
                "coarsely to bursts\n");
    return 0;
}
