/**
 * @file
 * Ablation: the traffic director's split discipline. The paper says
 * the director takes excess packets "in a round-robin fashion"; we
 * compare a byte-accurate token bucket (default) against that
 * literal per-packet round-robin, plus the token bucket's depth
 * (burst tolerance toward the SNIC), under steady and bursty load.
 *
 * All (split, workload) points are independent and run through the
 * parallel sweep harness: `--threads all`, `--json PATH`,
 * `--stats-out PATH`, `--trace PATH`.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

namespace {

const struct
{
    const char *name;
    SplitMode mode;
} kSplits[] = {
    {"token-bucket", SplitMode::TokenBucket},
    {"round-robin", SplitMode::RoundRobin},
    {"flow-affinity", SplitMode::FlowAffinity},
};

SweepPoint
splitPoint(const char *name, SplitMode mode, bool trace)
{
    ServerConfig cfg = ServerConfig::halDefault();
    cfg.split_mode = mode;

    SweepPoint p;
    p.cfg = std::move(cfg);
    p.warmup = 20 * kMs;
    p.label = std::string(trace ? "hadoop:" : "const70:") + name;
    if (trace) {
        p.trace = net::TraceKind::Hadoop;
        p.measure = 300 * kMs;
        p.resample = 2 * kMs;
    } else {
        p.rate_gbps = 70.0;
        p.measure = 100 * kMs;
    }
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    const SweepOptions opts =
        parseSweepArgs(argc, argv, "ablation_director");

    std::vector<SweepPoint> points;
    for (bool trace : {false, true})
        for (const auto &s : kSplits)
            points.push_back(splitPoint(s.name, s.mode, trace));

    const std::vector<RunResult> results = runSweep(points, opts);

    std::size_t i = 0;
    for (bool trace : {false, true}) {
        banner(std::string("director ablation: NAT, ") +
               (trace ? "hadoop trace" : "70 Gbps constant"));
        std::printf("%-12s | %7s %9s %8s %8s\n", "split", "tp", "p99us",
                    "drops", "snic%");
        for (const auto &s : kSplits) {
            const RunResult &r = results[i++];
            const double snic_share =
                100.0 * static_cast<double>(r.snic_frames) /
                static_cast<double>(r.snic_frames + r.host_frames + 1);
            std::printf("%-12s | %7.1f %9.1f %8llu %7.1f%%\n", s.name,
                        r.delivered_gbps, r.p99_us,
                        static_cast<unsigned long long>(r.drops),
                        snic_share);
        }
    }
    std::printf("\nexpectation: both sustain throughput; round-robin "
                "tracks the monitor epoch so it reacts a little more "
                "coarsely to bursts\n");
    return 0;
}
