/**
 * @file
 * Fleet resilience drill: the health-checked L4 frontend, retrying
 * client, failover, and admission-control shedding exercised across
 * the failure scenarios the fleet layer exists for — a healthy
 * baseline, permanent and transient backend crashes, a backend
 * stall, probe-loss flapping, and a sustained retry storm run both
 * with shedding and as the no-shed ablation.
 *
 * Runs through the parallel sweep harness (`--threads`, `--json`,
 * `--stats-out`); rows carry mode "fleet" and the fleet_* RunResult
 * columns. `--quick` shortens the windows for the CI drift gate
 * against bench/BENCH_fleet_quick.json — the simulation is
 * bit-deterministic, so those numbers must reproduce exactly.
 */

#include <cstdio>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "fleet/fleet.hh"
#include "net/traffic.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;
using namespace halsim::fleet;

namespace {

FleetConfig
baseConfig()
{
    FleetConfig cfg;
    cfg.backends = 4;
    // Survive a full detection window (fall=3 epochs of 2 ms) plus
    // failover without exhausting any request's budget.
    cfg.client.retry.max_retries = 5;
    return cfg;
}

/** Weak backends (2 cores x 2 Gbps: ~16 Gbps fleet capacity) so a
 *  40 Gbps offered load plus retries is a sustained storm. */
FleetConfig
stormConfig(std::uint32_t shed_watermark)
{
    FleetConfig cfg;
    cfg.backends = 4;
    cfg.backend.cores = 2;
    cfg.backend.core_rate_gbps = 2.0;
    cfg.backend.ring_capacity = 4096;
    cfg.backend.shed_watermark = shed_watermark;
    cfg.client.retry.timeout = 1 * kMs;
    cfg.client.retry.backoff_base = 250 * kUs;
    cfg.client.retry.backoff_cap = 2 * kMs;
    return cfg;
}

FleetSweepPoint
drill(FleetConfig cfg, double rate_gbps, Tick warmup, Tick measure,
      std::string label)
{
    FleetSweepPoint p;
    p.cfg = std::move(cfg);
    p.rate_gbps = rate_gbps;
    p.warmup = warmup;
    p.measure = measure;
    p.label = std::move(label);
    return p;
}

/**
 * Attempt-ledger reconciliation: re-run the permanent-crash drill
 * with warmup 0 and stats on, so the monotone per-request attempts
 * histogram, its registry-owned `fleet.client.attempts` mirror, and
 * the windowed sent/responses/duplicates/drops counters all describe
 * the same drained run and must agree *exactly*. Returns false (and
 * prints why) on any mismatch.
 */
bool
reconcileAttempts(double rate_gbps, Tick measure)
{
    FleetConfig cfg = baseConfig();
    cfg.faults.backendCrash(1, measure / 2); // permanent
    cfg.obs.stats = true;
    cfg.obs.spans = true;

    EventQueue eq;
    FleetSystem fs(eq, std::move(cfg));
    RunResult r = fs.run(
        std::make_unique<net::ConstantRate>(rate_gbps), 0, measure);

    bool ok = true;
    const auto check = [&ok](const char *what, std::uint64_t got,
                             std::uint64_t want) {
        if (got == want)
            return;
        std::fprintf(stderr,
                     "attempt-ledger mismatch: %s = %llu, want %llu\n",
                     what, static_cast<unsigned long long>(got),
                     static_cast<unsigned long long>(want));
        ok = false;
    };

    // Drained to quiescence, every attempt is accounted: the per-
    // request attempts histogram sums back to the wire sends, and
    // every send either completed, was suppressed as a duplicate, or
    // died inside the fleet.
    const auto sum = [](const Histogram &h) {
        return static_cast<std::uint64_t>(h.sum());
    };
    check("attempts.sum()", sum(fs.client().attempts()),
          fs.client().sends());
    check("sent", r.sent,
          r.responses + r.fleet_duplicates + r.drops);

    const Histogram *reg =
        fs.obs()->registry().findHistogram("fleet.client.attempts");
    if (reg == nullptr) {
        std::fprintf(stderr, "attempt-ledger mismatch: "
                             "fleet.client.attempts not registered\n");
        ok = false;
    } else {
        // Window-scoped mirror; with warmup 0 the window is the run.
        check("registry fleet.client.attempts sum", sum(*reg), r.sent);
    }
    if (ok)
        std::printf("\nattempt ledger reconciles: %llu attempts = "
                    "%llu responses + %llu duplicates + %llu drops\n",
                    static_cast<unsigned long long>(r.sent),
                    static_cast<unsigned long long>(r.responses),
                    static_cast<unsigned long long>(
                        r.fleet_duplicates),
                    static_cast<unsigned long long>(r.drops));
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    SweepOptions opts = parseBenchArgs(
        argc, argv, "fleet_drill", &quick,
        "Fleet resilience drill: crash/stall/flap/storm scenarios.");
    if (quick)
        opts.bench_name += "_quick";

    const Tick warmup = quick ? 5 * kMs : 10 * kMs;
    const Tick measure = quick ? 25 * kMs : 60 * kMs;
    const double rate = 24.0;

    std::vector<FleetSweepPoint> points;
    points.push_back(
        drill(baseConfig(), rate, warmup, measure, "healthy"));

    {
        auto cfg = baseConfig();
        cfg.faults.backendCrash(1, measure / 2); // permanent
        points.push_back(
            drill(std::move(cfg), rate, warmup, measure, "crash-1"));
    }
    {
        auto cfg = baseConfig();
        // Down long enough to be detected (fall=3 epochs of 2 ms),
        // then back: the rise hysteresis re-admits it.
        cfg.faults.backendCrash(2, measure / 4, 12 * kMs);
        points.push_back(
            drill(std::move(cfg), rate, warmup, measure, "crash-blip"));
    }
    {
        auto cfg = baseConfig();
        cfg.faults.backendStall(1, measure / 4, 10 * kMs);
        points.push_back(
            drill(std::move(cfg), rate, warmup, measure, "stall-1"));
    }
    {
        auto cfg = baseConfig();
        // Probes dropped at 15%: individual failures, but three in a
        // row on one backend stay rare — hysteresis absorbs the flap.
        cfg.faults.probeLoss(0.15, 5 * kMs, measure);
        points.push_back(
            drill(std::move(cfg), rate, warmup, measure, "probe-flap"));
    }
    points.push_back(
        drill(stormConfig(64), 40.0, warmup, measure, "storm-shed"));
    points.push_back(
        drill(stormConfig(0), 40.0, warmup, measure, "storm-noshed"));

    const std::vector<RunResult> results = runFleetSweep(points, opts);

    banner("Fleet resilience drill (4 backends behind the L4 "
           "frontend)");
    std::printf("%-12s %8s %8s %9s | %5s %7s %8s %7s %7s\n", "scenario",
                "offGbps", "delGbps", "p99_us", "fails", "retries",
                "sheds", "failov", "drops");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const RunResult &r = results[i];
        std::printf("%-12s %8.2f %8.2f %9.1f | %5llu %7llu %8llu "
                    "%7llu %7llu\n",
                    points[i].label.c_str(), r.offered_gbps,
                    r.delivered_gbps, r.p99_us,
                    static_cast<unsigned long long>(
                        r.fleet_requests_failed),
                    static_cast<unsigned long long>(r.fleet_retries),
                    static_cast<unsigned long long>(r.fleet_sheds),
                    static_cast<unsigned long long>(r.fleet_failovers),
                    static_cast<unsigned long long>(r.drops));
    }
    std::printf("\nshedding under the storm: p99 %.1f us at %.2f Gbps "
                "goodput vs the no-shed ablation's %.1f us at %.2f "
                "Gbps\n",
                results[points.size() - 2].p99_us,
                results[points.size() - 2].delivered_gbps,
                results[points.size() - 1].p99_us,
                results[points.size() - 1].delivered_gbps);

    if (!reconcileAttempts(rate, measure))
        return 1;
    return 0;
}
