/**
 * @file
 * Google-benchmark micro-benchmarks for the algorithm substrates and
 * hot simulator paths: Aho-Corasick scan rate, DEFLATE compression,
 * SHA-256, modexp, internet checksum (full vs incremental), event
 * queue throughput, and the coherence directory.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "alg/aho_corasick.hh"
#include "alg/bignum.hh"
#include "alg/corpus.hh"
#include "alg/deflate.hh"
#include "alg/fixed_map.hh"
#include "alg/prefilter.hh"
#include "alg/sha256.hh"
#include "coherence/domain.hh"
#include "net/checksum.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace halsim;

namespace {

void
BM_AhoCorasickScan(benchmark::State &state)
{
    const auto rules = alg::makeRuleset(alg::RulesetKind::Teakettle,
                                        static_cast<std::size_t>(
                                            state.range(0)));
    alg::AhoCorasick ac(rules);
    const auto text = alg::makeScanStream(1 << 16, rules, 0.05, 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(ac.countMatches(text));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_AhoCorasickScan)->Arg(100)->Arg(2500);

void
BM_PrefilterScan(benchmark::State &state)
{
    // The host-style (Hyperscan/FDR-like) literal engine, on the
    // same inputs as BM_AhoCorasickScan for comparison.
    const auto rules = alg::makeRuleset(alg::RulesetKind::Teakettle,
                                        static_cast<std::size_t>(
                                            state.range(0)));
    alg::PrefilterMatcher pf(rules);
    const auto text = alg::makeScanStream(1 << 16, rules, 0.05, 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(pf.countMatches(text));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_PrefilterScan)->Arg(100)->Arg(2500);

void
BM_DeflateCompress(benchmark::State &state)
{
    const auto data =
        alg::makeSilesiaLike(static_cast<std::size_t>(state.range(0)), 5);
    alg::DeflateConfig cfg;
    cfg.max_chain = 16;
    for (auto _ : state)
        benchmark::DoNotOptimize(alg::deflateCompress(data, cfg));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_DeflateCompress)->Arg(1458)->Arg(65536);

void
BM_DeflateRoundTrip(benchmark::State &state)
{
    const auto data = alg::makeSilesiaLike(16384, 6);
    for (auto _ : state) {
        const auto c = alg::deflateCompress(data);
        benchmark::DoNotOptimize(alg::deflateDecompress(c));
    }
}
BENCHMARK(BM_DeflateRoundTrip);

void
BM_Sha256(benchmark::State &state)
{
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(state.range(0)), 0xA5);
    for (auto _ : state)
        benchmark::DoNotOptimize(alg::Sha256::hash(data));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1458)->Arg(65536);

void
BM_Modexp512(benchmark::State &state)
{
    Rng rng(9);
    const auto p = alg::groups::prime512();
    const auto base = alg::BigUint::randomBelow(p, rng);
    const auto exp = alg::BigUint::randomBits(
        static_cast<unsigned>(state.range(0)), rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(base.modexp(exp, p));
}
BENCHMARK(BM_Modexp512)->Arg(32)->Arg(512);

void
BM_ChecksumFull(benchmark::State &state)
{
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(state.range(0)), 0x3C);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            net::internetChecksum(data.data(), data.size()));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_ChecksumFull)->Arg(20)->Arg(1458);

void
BM_ChecksumIncremental(benchmark::State &state)
{
    std::uint16_t hc = 0x1234;
    std::uint32_t v = 1;
    for (auto _ : state) {
        hc = net::checksumUpdate32(hc, v, v + 1);
        ++v;
        benchmark::DoNotOptimize(hc);
    }
}
BENCHMARK(BM_ChecksumIncremental);

void
BM_EventQueueChurn(benchmark::State &state)
{
    // Schedule/execute cycles measuring raw kernel throughput.
    for (auto _ : state) {
        EventQueue eq;
        int fired = 0;
        for (int i = 0; i < 1000; ++i)
            eq.scheduleFn([&fired] { ++fired; },
                          static_cast<Tick>(i * 13 % 997));
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueueChurn);

void
BM_CoherenceAccess(benchmark::State &state)
{
    coherence::CoherenceDomain dom;
    Rng rng(11);
    for (auto _ : state) {
        const auto addr = rng.uniformInt(4096) * 64;
        const auto node = rng.chance(0.5) ? coherence::NodeId::Snic
                                          : coherence::NodeId::Host;
        benchmark::DoNotOptimize(dom.access(addr, node, rng.chance(0.3)));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoherenceAccess);

void
BM_FixedMapLookup(benchmark::State &state)
{
    alg::FixedMap<std::uint64_t, std::uint64_t> map;
    Rng rng(12);
    for (std::uint64_t i = 0; i < 10000; ++i)
        map.put(i, i * 7);
    std::uint64_t k = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.find(k));
        k = (k + 37) % 20000;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FixedMapLookup);

} // namespace

BENCHMARK_MAIN();
