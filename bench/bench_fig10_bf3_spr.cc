/**
 * @file
 * Fig. 10 reproduction: BlueField-3 CPU vs Sapphire Rapids CPU for
 * the software-only functions at 200 Gbps — max throughput, p99
 * latency (top), average power and energy efficiency (bottom).
 *
 * Paper anchors: BF-3 up to 80% lower throughput and up to 61x
 * higher p99 than SPR; SPR up to ~80% higher system EE; lightweight
 * functions (Count, NAT) look similar only because the 100 Gbps
 * client saturates first — we keep that cap to match the setup.
 *
 * Two chained parallel sweeps: first saturate every (function,
 * processor) point, then measure latency/EE at 95% of the saturated
 * rate. `--json PATH` writes both sweeps' rows in one artifact;
 * `--stats-out`/`--trace` cover the reported (latency) sweep.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

namespace {

constexpr funcs::FunctionId kSwFuncs[] = {
    funcs::FunctionId::Kvs, funcs::FunctionId::Count,
    funcs::FunctionId::Ema, funcs::FunctionId::Nat,
    funcs::FunctionId::Bm25, funcs::FunctionId::Knn,
    funcs::FunctionId::Bayes,
};

ServerConfig
platformConfig(funcs::FunctionId fn, Mode mode)
{
    ServerConfig cfg;
    cfg.mode = mode;
    cfg.function = fn;
    cfg.snic_platform = funcs::Platform::SnicBf3;
    cfg.host_platform = funcs::Platform::HostSpr;
    cfg.snic_cores = 16;
    cfg.host_cores = 16;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const SweepOptions opts = parseSweepArgs(argc, argv, "fig10_bf3_spr");

    std::vector<SweepPoint> sat_points;
    for (funcs::FunctionId fn : kSwFuncs) {
        for (Mode mode : {Mode::SnicOnly, Mode::HostOnly}) {
            const char *cpu = mode == Mode::SnicOnly ? "bf3" : "spr";
            sat_points.push_back(
                point(platformConfig(fn, mode), 100.0, 10 * kMs,
                      60 * kMs,
                      std::string("sat:") + cpu + ":" +
                          funcs::functionName(fn)));
        }
    }
    SweepOptions sat_opts = opts;
    sat_opts.json_path.clear();
    sat_opts.stats_path.clear();
    sat_opts.trace_path.clear();
    const std::vector<RunResult> sat = runSweep(sat_points, sat_opts);

    // The reported latency/EE point sits just under each processor's
    // saturated rate.
    std::vector<SweepPoint> lat_points;
    for (std::size_t i = 0; i < sat_points.size(); ++i) {
        SweepPoint p = sat_points[i];
        p.rate_gbps = sat[i].delivered_gbps * 0.95;
        p.label = "lat:" + p.label.substr(4);
        lat_points.push_back(std::move(p));
    }
    SweepOptions lat_opts = opts;
    lat_opts.json_path.clear();
    const std::vector<RunResult> lat = runSweep(lat_points, lat_opts);

    if (!opts.json_path.empty()) {
        std::vector<SweepPoint> all_points = sat_points;
        all_points.insert(all_points.end(), lat_points.begin(),
                          lat_points.end());
        std::vector<RunResult> all_results = sat;
        all_results.insert(all_results.end(), lat.begin(), lat.end());
        writeSweepJson(opts.json_path, opts.bench_name, all_points,
                       all_results, opts.threads);
    }

    banner("Fig. 10: BF-3 CPU vs Sapphire Rapids CPU (software "
           "functions, 100 Gbps client cap)");
    std::printf("%-8s %9s %9s %7s | %9s %9s %7s | %7s %7s %7s\n",
                "function", "bf3Gbps", "sprGbps", "tpRatio", "bf3P99",
                "sprP99", "p99x", "bf3EE", "sprEE", "eeRatio");
    std::size_t i = 0;
    for (funcs::FunctionId fn : kSwFuncs) {
        const RunResult &bf3_sat = sat[i];
        const RunResult &bf3_lat = lat[i];
        ++i;
        const RunResult &spr_sat = sat[i];
        const RunResult &spr_lat = lat[i];
        ++i;
        std::printf("%-8s %9.2f %9.2f %7.2f | %9.1f %9.1f %7.1f | "
                    "%7.4f %7.4f %7.2f\n",
                    funcs::functionName(fn), bf3_sat.delivered_gbps,
                    spr_sat.delivered_gbps,
                    bf3_sat.delivered_gbps / spr_sat.delivered_gbps,
                    bf3_lat.p99_us, spr_lat.p99_us,
                    bf3_lat.p99_us / spr_lat.p99_us, bf3_lat.energy_eff,
                    spr_lat.energy_eff,
                    spr_lat.energy_eff / bf3_lat.energy_eff);
    }
    std::printf("\npaper: BF-3 up to 80%% lower TP, up to 61x higher "
                "p99; SPR up to ~80%% higher EE; Count/NAT capped by "
                "the 100 Gbps client\n");
    return 0;
}
