/**
 * @file
 * Fig. 10 reproduction: BlueField-3 CPU vs Sapphire Rapids CPU for
 * the software-only functions at 200 Gbps — max throughput, p99
 * latency (top), average power and energy efficiency (bottom).
 *
 * Paper anchors: BF-3 up to 80% lower throughput and up to 61x
 * higher p99 than SPR; SPR up to ~80% higher system EE; lightweight
 * functions (Count, NAT) look similar only because the 100 Gbps
 * client saturates first — we keep that cap to match the setup.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

int
main()
{
    banner("Fig. 10: BF-3 CPU vs Sapphire Rapids CPU (software "
           "functions, 100 Gbps client cap)");
    std::printf("%-8s %9s %9s %7s | %9s %9s %7s | %7s %7s %7s\n",
                "function", "bf3Gbps", "sprGbps", "tpRatio", "bf3P99",
                "sprP99", "p99x", "bf3EE", "sprEE", "eeRatio");

    const funcs::FunctionId sw_funcs[] = {
        funcs::FunctionId::Kvs, funcs::FunctionId::Count,
        funcs::FunctionId::Ema, funcs::FunctionId::Nat,
        funcs::FunctionId::Bm25, funcs::FunctionId::Knn,
        funcs::FunctionId::Bayes,
    };

    for (funcs::FunctionId fn : sw_funcs) {
        RunResult res[2];
        int i = 0;
        for (auto [mode, platform] :
             {std::pair{Mode::SnicOnly, funcs::Platform::SnicBf3},
              std::pair{Mode::HostOnly, funcs::Platform::HostSpr}}) {
            ServerConfig cfg;
            cfg.mode = mode;
            cfg.function = fn;
            cfg.snic_platform = funcs::Platform::SnicBf3;
            cfg.host_platform = funcs::Platform::HostSpr;
            cfg.snic_cores = 16;
            cfg.host_cores = 16;
            const auto sat = runPoint(cfg, 100.0, 10 * kMs, 60 * kMs);
            const auto lat = runPoint(cfg, sat.delivered_gbps * 0.95,
                                      10 * kMs, 60 * kMs);
            res[i] = sat;
            res[i].p99_us = lat.p99_us;
            res[i].energy_eff = lat.energy_eff;
            ++i;
        }
        const auto &bf3 = res[0];
        const auto &spr = res[1];
        std::printf("%-8s %9.2f %9.2f %7.2f | %9.1f %9.1f %7.1f | "
                    "%7.4f %7.4f %7.2f\n",
                    funcs::functionName(fn), bf3.delivered_gbps,
                    spr.delivered_gbps,
                    bf3.delivered_gbps / spr.delivered_gbps, bf3.p99_us,
                    spr.p99_us, bf3.p99_us / spr.p99_us, bf3.energy_eff,
                    spr.energy_eff, spr.energy_eff / bf3.energy_eff);
    }
    std::printf("\npaper: BF-3 up to 80%% lower TP, up to 61x higher "
                "p99; SPR up to ~80%% higher EE; Count/NAT capped by "
                "the 100 Gbps client\n");
    return 0;
}
