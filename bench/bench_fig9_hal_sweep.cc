/**
 * @file
 * Fig. 9 reproduction: throughput, p99 latency, and power consumption
 * across packet rates for NAT and REM under Host-only, SNIC-only, and
 * HAL.
 *
 * Paper anchors: the SNIC drops beyond 41 Gbps (NAT) / ~42-50 Gbps
 * (REM accel) with 56-120x tail blow-up at 80 Gbps; HAL tracks the
 * SNIC's latency within ~3% below the knee and scales linearly above
 * it; HAL's power sits 11-27% below host-only at high rates. Power
 * here is dynamic (above the 194 W server base), matching the
 * paper's 32-139 W host-CPU numbers.
 *
 * All 66 (function, rate, mode) points run through the parallel
 * sweep harness (`--threads`, `--json`).
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

namespace {

constexpr double kRates[] = {5.0,  10.0, 20.0, 30.0, 40.0, 50.0,
                             60.0, 70.0, 80.0, 90.0, 100.0};
constexpr funcs::FunctionId kFns[] = {funcs::FunctionId::Nat,
                                      funcs::FunctionId::Rem};
constexpr Mode kModes[] = {Mode::HostOnly, Mode::SnicOnly, Mode::Hal};

} // namespace

int
main(int argc, char **argv)
{
    const SweepOptions opts = parseSweepArgs(argc, argv, "fig9_hal_sweep");

    std::vector<SweepPoint> points;
    for (funcs::FunctionId fn : kFns) {
        for (double rate : kRates) {
            for (Mode mode : kModes) {
                ServerConfig cfg;
                cfg.mode = mode;
                cfg.function = fn;
                points.push_back(point(
                    cfg, rate, 15 * kMs, 80 * kMs,
                    std::string(modeName(mode)) + ":" +
                        funcs::functionName(fn) + "@" +
                        std::to_string(static_cast<int>(rate))));
            }
        }
    }

    const std::vector<RunResult> results = runSweep(points, opts);

    std::size_t i = 0;
    for (funcs::FunctionId fn : kFns) {
        banner(std::string("Fig. 9: ") + funcs::functionName(fn) +
               " under host / snic / hal");
        std::printf("%5s |", "Gbps");
        for (const char *m : {"host", "snic", "hal"})
            std::printf("  %s: %7s %9s %7s |", m, "tp", "p99us", "dynW");
        std::printf("\n");

        for (double rate : kRates) {
            std::printf("%5.0f |", rate);
            for (std::size_t m = 0; m < std::size(kModes); ++m) {
                const RunResult &r = results[i++];
                std::printf("  %13.1f %9.1f %7.1f |", r.delivered_gbps,
                            r.p99_us, r.dynamic_power_w);
            }
            std::printf("\n");
        }
    }
    std::printf("\npaper: SNIC knees at 41 (NAT) / ~42 (REM); HAL "
                "linear to line rate, power 11-27%% below host\n");
    return 0;
}
