/**
 * @file
 * §VIII reproduction: impact of SNIC-processor DVFS on LBP
 * effectiveness and on system power. The paper argues (a) the LBP
 * still works because the Rx-queue occupancy signal reflects the
 * V/F-dependent processing capability, and (b) the system-wide power
 * saving is bounded by ~2% because the SNIC is a sliver of system
 * power.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"

using namespace halsim;
using namespace halsim::bench;
using namespace halsim::core;

namespace {

RunResult
runDvfs(Mode mode, double rate, bool dvfs, double *scale_out)
{
    ServerConfig cfg;
    cfg.mode = mode;
    cfg.function = funcs::FunctionId::Nat;
    cfg.power.snic_dvfs.enabled = dvfs;
    EventQueue eq;
    ServerSystem sys(eq, cfg);
    const auto r = sys.run(std::make_unique<net::ConstantRate>(rate),
                           20 * kMs, 100 * kMs);
    if (scale_out != nullptr && sys.snicProcessor() != nullptr)
        *scale_out = sys.snicProcessor()->dvfsScale();
    return r;
}

} // namespace

int
main()
{
    banner("§VIII: SNIC DVFS ablation (NAT)");
    std::printf("%5s %5s | %8s %9s %8s %8s | %9s\n", "Gbps", "dvfs",
                "tp", "p99us", "sysW", "ee", "fscaleEnd");
    for (double rate : {5.0, 15.0, 30.0, 60.0, 90.0}) {
        for (bool dvfs : {false, true}) {
            double scale = 1.0;
            const auto r = runDvfs(Mode::Hal, rate, dvfs, &scale);
            std::printf("%5.0f %5s | %8.1f %9.1f %8.1f %8.4f | %9.2f\n",
                        rate, dvfs ? "on" : "off", r.delivered_gbps,
                        r.p99_us, r.system_power_w, r.energy_eff, scale);
        }
    }
    std::printf("\npaper: LBP remains effective under DVFS; system "
                "power saving bounded by ~2%% (SNIC is 0.5-2%% of "
                "system power)\n");
    return 0;
}
