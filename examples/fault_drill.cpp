/**
 * @file
 * Fault drill: crash the host processor in the middle of a HAL run
 * and watch the watchdog fail over to the SNIC, then heal the host
 * and watch it hand traffic back.
 *
 *   $ ./fault_drill
 *
 * Demonstrates the fault-injection API:
 *   1. build a FaultPlan (times relative to run() start),
 *   2. attach it to the ServerConfig,
 *   3. run() as usual — injection and recovery happen in-simulation,
 *   4. read the failover counters from the RunResult.
 */

#include <cstdio>
#include <memory>

#include "core/server.hh"

using namespace halsim;
using namespace halsim::core;

int
main()
{
    // 1. HAL serving NAT at 60 Gbps: the SNIC takes what it can
    //    (~36 Gbps with 7 data cores) and the host absorbs the rest.
    ServerConfig cfg;
    cfg.mode = Mode::Hal;
    cfg.function = funcs::FunctionId::Nat;

    // 2. The drill: the host fail-stops 60 ms in and comes back at
    //    100 ms. While it is down the director must keep every packet
    //    on the SNIC — a crashed processor is a black hole.
    cfg.faults.processorFailure(fault::FaultTarget::Host, 60 * kMs,
                                40 * kMs);

    EventQueue eq;
    ServerSystem server(eq, cfg);

    // Observe the degraded-mode state machine while it acts.
    for (Tick t = 55 * kMs; t <= 110 * kMs; t += 5 * kMs) {
        eq.scheduleFn(
            [&server, &eq] {
                std::printf("  t=%3lld ms  state=%-10s Fwd_Th=%5.1f "
                            "Gbps  host %s\n",
                            static_cast<long long>(eq.now() / kMs),
                            healthStateName(server.watchdog()->state()),
                            server.director()->fwdThGbps(),
                            server.hostProcessor()->alive() ? "up"
                                                            : "DOWN");
            },
            t);
    }

    std::printf("HAL + NAT at 60 Gbps; host crashes at 60 ms, heals at "
                "100 ms\n");
    RunResult r = server.run(std::make_unique<net::ConstantRate>(60.0),
                             20 * kMs, 120 * kMs);

    // 4. The incident, as the counters tell it.
    std::printf("\nRun summary\n");
    std::printf("  delivered:       %6.2f Gbps (of %.2f offered)\n",
                r.delivered_gbps, r.offered_gbps);
    std::printf("  p99 latency:     %6.1f us\n", r.p99_us);
    std::printf("  faults:          %llu injected, %llu healed\n",
                static_cast<unsigned long long>(r.faults_injected),
                static_cast<unsigned long long>(r.faults_reverted));
    std::printf("  failovers:       %llu (recoveries: %llu)\n",
                static_cast<unsigned long long>(r.failovers),
                static_cast<unsigned long long>(r.recoveries));
    std::printf("  time degraded:   %6.1f ms\n", r.degraded_us / 1e3);
    std::printf("  detect->recover: %6.1f ms\n",
                r.time_to_recover_us / 1e3);
    std::printf("  lost in flight:  %llu packets (%.3f%% of %llu "
                "sent)\n",
                static_cast<unsigned long long>(r.drops),
                100.0 * r.lossFraction(),
                static_cast<unsigned long long>(r.sent));
    std::printf("  split:           %llu SNIC / %llu host frames\n",
                static_cast<unsigned long long>(r.snic_frames),
                static_cast<unsigned long long>(r.host_frames));
    return 0;
}
