/**
 * @file
 * Scenario: inline intrusion detection (REM over the snort-style
 * literal ruleset) on the SNIC's RXP-like accelerator, with HAL
 * spilling to the host when bursts exceed the accelerator's rate.
 * Shows the functional side too: the same Aho-Corasick automaton the
 * simulation executes per packet, the planted-attack hit counts, and
 * why the host CPU alone cannot run this ruleset (19x slower,
 * §III-A).
 */

#include <cstdio>
#include <memory>

#include "alg/aho_corasick.hh"
#include "alg/corpus.hh"
#include "core/server.hh"
#include "funcs/content.hh"

using namespace halsim;
using namespace halsim::core;

int
main()
{
    // --- The detection substrate itself -----------------------------
    const auto rules = alg::makeRuleset(
        alg::RulesetKind::SnortLiterals, 500);
    alg::AhoCorasick automaton(rules);
    std::printf("IDS ruleset: %zu literals -> %zu automaton states\n",
                rules.size(), automaton.stateCount());

    const auto clean = alg::makeScanStream(1 << 16, rules, 0.0, 1);
    const auto hostile = alg::makeScanStream(1 << 16, rules, 0.02, 2);
    std::printf("64 KiB clean traffic:   %llu hits\n",
                static_cast<unsigned long long>(
                    automaton.countMatches(clean)));
    std::printf("64 KiB hostile traffic: %llu hits\n\n",
                static_cast<unsigned long long>(
                    automaton.countMatches(hostile)));

    // --- Deployment comparison under a bursty trace ------------------
    std::printf("inline IDS under the hadoop trace (avg ~10.9 Gbps, "
                "bursts to line rate):\n");
    std::printf("%-10s %8s %10s %8s %8s %10s\n", "mode", "tpGbps",
                "p99us", "power", "Gbps/W", "loss%");
    for (Mode mode : {Mode::HostOnly, Mode::SnicOnly, Mode::Hal}) {
        ServerConfig cfg;
        cfg.mode = mode;
        cfg.function = funcs::FunctionId::Rem;
        cfg.rem_ruleset = alg::RulesetKind::SnortLiterals;
        EventQueue eq;
        ServerSystem sys(eq, cfg);
        const auto r = sys.run(net::makeTrace(net::TraceKind::Hadoop),
                               20 * kMs, 300 * kMs, 2 * kMs);
        std::printf("%-10s %8.2f %10.1f %8.1f %8.4f %9.1f%%\n",
                    modeName(mode), r.delivered_gbps, r.p99_us,
                    r.system_power_w, r.energy_eff,
                    100.0 * r.lossFraction());
    }
    std::printf(
        "\nwith the complex ruleset the host CPU is the weak side "
        "(19x slower than the RXP accelerator), so HAL's diverted\n"
        "packets are expensive — but still better than dropping them "
        "on the saturated accelerator.\n");
    return 0;
}
