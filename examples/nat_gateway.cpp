/**
 * @file
 * Scenario: a 100 Gbps NAT gateway at the edge of a rack, deciding
 * between three deployments — host-only (classic DPDK on the server
 * CPU), SNIC-only (offload everything to the BlueField), and HAL
 * (cooperative). Sweeps the offered rate the way a capacity planner
 * would and prints where each deployment breaks.
 */

#include <cstdio>
#include <memory>

#include "core/server.hh"

using namespace halsim;
using namespace halsim::core;

namespace {

RunResult
run(Mode mode, double rate_gbps)
{
    ServerConfig cfg;
    cfg.mode = mode;
    cfg.function = funcs::FunctionId::Nat;
    // A production gateway: the 10 K-entry translation table.
    EventQueue eq;
    ServerSystem sys(eq, cfg);
    return sys.run(std::make_unique<net::ConstantRate>(rate_gbps),
                   20 * kMs, 100 * kMs);
}

} // namespace

int
main()
{
    std::printf("NAT gateway deployment study (MTU frames)\n");
    std::printf("%5s |", "Gbps");
    for (const char *m : {"host-only", "snic-only", "hal"})
        std::printf(" %9s: %6s %9s %7s %7s |", m, "tp", "p99us", "W",
                    "loss%");
    std::printf("\n");

    for (double rate : {10.0, 25.0, 40.0, 55.0, 70.0, 85.0, 100.0}) {
        std::printf("%5.0f |", rate);
        for (Mode mode : {Mode::HostOnly, Mode::SnicOnly, Mode::Hal}) {
            const auto r = run(mode, rate);
            std::printf(" %17.1f %9.1f %7.1f %6.1f%% |",
                        r.delivered_gbps, r.p99_us, r.system_power_w,
                        100.0 * r.lossFraction());
        }
        std::printf("\n");
    }

    std::printf(
        "\nreading the table:\n"
        " - host-only is safe at every rate but burns ~70 W of CPU "
        "around the clock;\n"
        " - snic-only is the cheapest below ~41 Gbps and useless "
        "beyond it (drops, ms-scale tails);\n"
        " - HAL gives snic-only's power at low rates and host-only's "
        "capacity at high rates.\n");
    return 0;
}
