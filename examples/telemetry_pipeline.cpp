/**
 * @file
 * Scenario: a stateful telemetry pipeline — frequency counting (Count)
 * feeding public-key signing (Crypto) — processed cooperatively by
 * the SNIC and the host over the CXL-SNIC emulation (§V-C). Shows
 * the coherence traffic the shared counters generate and the §VII-B
 * methodology check (coherent vs "ignore correctness").
 */

#include <cstdio>
#include <memory>

#include "core/server.hh"

using namespace halsim;
using namespace halsim::core;

namespace {

RunResult
runOnce(bool coherent, coherence::CoherenceDomain::Stats *stats_out)
{
    ServerConfig cfg;
    cfg.mode = Mode::Hal;
    cfg.function = funcs::FunctionId::Count;
    cfg.pipeline_second = funcs::FunctionId::Crypto;
    cfg.coherent_state = coherent;
    EventQueue eq;
    ServerSystem sys(eq, cfg);
    const auto r = sys.run(net::makeTrace(net::TraceKind::Cache),
                           20 * kMs, 300 * kMs, 2 * kMs);
    if (stats_out != nullptr && sys.domain() != nullptr)
        *stats_out = sys.domain()->stats();
    return r;
}

} // namespace

int
main()
{
    std::printf("telemetry pipeline: count + crypto under the cache "
                "trace, HAL with CXL-SNIC emulation\n\n");

    coherence::CoherenceDomain::Stats st{};
    const auto coherent = runOnce(true, &st);
    std::printf("coherent shared state:\n");
    std::printf("  delivered %.2f Gbps, p99 %.1f us, %.1f W, "
                "%.4f Gbps/W\n",
                coherent.delivered_gbps, coherent.p99_us,
                coherent.system_power_w, coherent.energy_eff);
    std::printf("  split: %lu snic / %lu host packets\n",
                static_cast<unsigned long>(coherent.snic_frames),
                static_cast<unsigned long>(coherent.host_frames));
    std::printf("  coherence: %llu accesses = %llu local hits + %llu "
                "memory fetches + %llu UPI/CXL transfers (%llu "
                "invalidations)\n",
                static_cast<unsigned long long>(st.accesses),
                static_cast<unsigned long long>(st.localHits),
                static_cast<unsigned long long>(st.memoryFetches),
                static_cast<unsigned long long>(st.remoteTransfers),
                static_cast<unsigned long long>(st.invalidations));

    const auto stateless = runOnce(false, nullptr);
    std::printf("\n\"ignore correctness\" run (§VII-B methodology "
                "check):\n");
    std::printf("  delivered %.2f Gbps, p99 %.1f us\n",
                stateless.delivered_gbps, stateless.p99_us);
    std::printf("  coherence cost: %+.2f%% throughput, %+.2f%% p99   "
                "(paper: -0.3..-0.4%% TP, +1.7..+3.4%% p99)\n",
                100.0 * (coherent.delivered_gbps /
                             stateless.delivered_gbps -
                         1.0),
                100.0 * (coherent.p99_us / stateless.p99_us - 1.0));
    return 0;
}
