/**
 * @file
 * Command-line driver: run any mode/function/traffic combination and
 * print the metrics, without writing code. The Swiss-army knife for
 * exploring the model.
 *
 *   halsim_cli [--mode host|snic|hal|slb] [--function NAME]
 *              [--second NAME]            two-stage pipeline
 *              [--rate GBPS | --trace web|cache|hadoop]
 *              [--frame BYTES] [--measure MS] [--warmup MS]
 *              [--seed N] [--split token|rr|flow] [--dvfs]
 *              [--no-coherence] [--slb-cores N] [--slb-th GBPS]
 *              [--ruleset tea|lite]
 *              [--slo-p99 US] [--stats-out PATH]
 *              [--run-threads N]           time-parallel engine
 *
 * Examples:
 *   halsim_cli --mode hal --function nat --rate 80
 *   halsim_cli --mode snic --function rem --ruleset lite --trace hadoop
 *   halsim_cli --mode hal --function count --second crypto --trace cache
 *   halsim_cli --mode hal --function nat --rate 60 --slo-p99 300 \
 *              --stats-out stats.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "core/server.hh"

using namespace halsim;
using namespace halsim::core;

namespace {

std::optional<funcs::FunctionId>
parseFunction(const std::string &name)
{
    for (int i = 0; i < static_cast<int>(funcs::kFunctionCount); ++i) {
        const auto id = static_cast<funcs::FunctionId>(i);
        if (name == funcs::functionName(id))
            return id;
    }
    return std::nullopt;
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--mode host|snic|hal|slb|slb-host] [--function "
                 "fwd|kvs|count|ema|nat|bm25|knn|bayes|rem|crypto|comp]\n"
                 "  [--second NAME] [--rate GBPS | --trace "
                 "web|cache|hadoop] [--frame BYTES]\n"
                 "  [--measure MS] [--warmup MS] [--seed N]\n"
                 "  [--split token|rr|flow] [--dvfs] [--no-coherence]\n"
                 "  [--slb-cores N] [--slb-th GBPS] [--ruleset tea|lite]\n"
                 "  [--slo-p99 US] [--stats-out PATH] [--run-threads N]\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    ServerConfig cfg;
    double rate = 40.0;
    std::optional<net::TraceKind> trace;
    Tick measure = 200 * kMs;
    Tick warmup = 20 * kMs;
    std::string stats_out;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage(argv[0]);
            return argv[i];
        };
        if (arg == "--mode") {
            const std::string m = next();
            if (m == "host")
                cfg.mode = Mode::HostOnly;
            else if (m == "snic")
                cfg.mode = Mode::SnicOnly;
            else if (m == "hal")
                cfg.mode = Mode::Hal;
            else if (m == "slb")
                cfg.mode = Mode::Slb;
            else if (m == "slb-host")
                cfg.mode = Mode::HostSlb;
            else
                usage(argv[0]);
        } else if (arg == "--function") {
            const auto f = parseFunction(next());
            if (!f)
                usage(argv[0]);
            cfg.function = *f;
        } else if (arg == "--second") {
            const auto f = parseFunction(next());
            if (!f)
                usage(argv[0]);
            cfg.pipeline_second = *f;
        } else if (arg == "--rate") {
            rate = std::atof(next().c_str());
        } else if (arg == "--trace") {
            const std::string t = next();
            if (t == "web")
                trace = net::TraceKind::Web;
            else if (t == "cache")
                trace = net::TraceKind::Cache;
            else if (t == "hadoop")
                trace = net::TraceKind::Hadoop;
            else
                usage(argv[0]);
        } else if (arg == "--frame") {
            cfg.frame_bytes =
                static_cast<std::size_t>(std::atoi(next().c_str()));
        } else if (arg == "--measure") {
            measure = static_cast<Tick>(std::atoi(next().c_str())) * kMs;
        } else if (arg == "--warmup") {
            warmup = static_cast<Tick>(std::atoi(next().c_str())) * kMs;
        } else if (arg == "--seed") {
            cfg.seed = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        } else if (arg == "--split") {
            const std::string s = next();
            if (s == "token")
                cfg.split_mode = SplitMode::TokenBucket;
            else if (s == "rr")
                cfg.split_mode = SplitMode::RoundRobin;
            else if (s == "flow")
                cfg.split_mode = SplitMode::FlowAffinity;
            else
                usage(argv[0]);
        } else if (arg == "--dvfs") {
            cfg.snic_dvfs = true;
        } else if (arg == "--no-coherence") {
            cfg.coherent_state = false;
        } else if (arg == "--slb-cores") {
            cfg.slb_cores =
                static_cast<unsigned>(std::atoi(next().c_str()));
        } else if (arg == "--slb-th") {
            cfg.slb_fwd_th_gbps = std::atof(next().c_str());
        } else if (arg == "--slo-p99") {
            cfg.slo.target_p99_us = std::atof(next().c_str());
            if (cfg.slo.target_p99_us <= 0.0)
                usage(argv[0]);
        } else if (arg == "--run-threads") {
            cfg.run_threads =
                static_cast<unsigned>(std::atoi(next().c_str()));
            // The partitioned engine excludes the watchdog's
            // cross-wheel probes; drop it so plain hal runs qualify.
            cfg.watchdog.enabled = false;
        } else if (arg == "--stats-out") {
            stats_out = next();
            cfg.obs.stats = true;
        } else if (arg == "--ruleset") {
            const std::string r = next();
            if (r == "tea")
                cfg.rem_ruleset = alg::RulesetKind::Teakettle;
            else if (r == "lite")
                cfg.rem_ruleset = alg::RulesetKind::SnortLiterals;
            else
                usage(argv[0]);
        } else {
            usage(argv[0]);
        }
    }

    EventQueue eq;
    ServerSystem sys(eq, cfg);
    const RunResult r =
        trace ? sys.run(net::makeTrace(*trace), warmup, measure, 2 * kMs)
              : sys.run(std::make_unique<net::ConstantRate>(rate), warmup,
                        measure);

    std::printf("mode=%s function=%s%s%s traffic=%s\n",
                modeName(cfg.mode), funcs::functionName(cfg.function),
                cfg.pipeline_second ? "+" : "",
                cfg.pipeline_second
                    ? funcs::functionName(*cfg.pipeline_second)
                    : "",
                trace ? net::traceName(*trace) : "constant");
    if (cfg.run_threads > 0)
        std::printf("engine       %s\n",
                    sys.partitioned()
                        ? (cfg.run_threads >= 2
                               ? "partitioned (3 wheels, threaded)"
                               : "partitioned (3 wheels, sequential)")
                        : "monolithic (config not partitionable)");
    std::printf("offered      %8.2f Gbps\n", r.offered_gbps);
    std::printf("delivered    %8.2f Gbps (max window %.2f)\n",
                r.delivered_gbps, r.max_window_gbps);
    std::printf("p99 latency  %8.1f us (mean %.1f)\n", r.p99_us,
                r.mean_us);
    std::printf("system power %8.1f W (dynamic %.1f)\n",
                r.system_power_w, r.dynamic_power_w);
    std::printf("energy eff.  %8.4f Gbps/W\n", r.energy_eff);
    std::printf("loss         %8.2f %%\n", 100.0 * r.lossFraction());
    std::printf("split        %llu snic / %llu host\n",
                static_cast<unsigned long long>(r.snic_frames),
                static_cast<unsigned long long>(r.host_frames));
    if (cfg.mode == Mode::Hal)
        std::printf("final FwdTh  %8.1f Gbps\n", r.final_fwd_th_gbps);

    // --- per-component energy breakdown (measurement window) ---------
    {
        struct Row
        {
            const char *name;
            double j;
        };
        const Row rows[] = {
            {"snic cpu", r.energy_snic_cpu_j},
            {"snic accel", r.energy_snic_accel_j},
            {"host cpu", r.energy_host_cpu_j},
            {"host accel", r.energy_host_accel_j},
            {"hlb/lbp/slb", r.energy_extra_j},
            {"static base", r.energy_static_j},
        };
        std::printf("energy breakdown (window):\n");
        for (const Row &row : rows) {
            if (row.j == 0.0)
                continue;
            std::printf("  %-12s %10.3f J  (%5.1f %%)\n", row.name,
                        row.j,
                        r.energy_total_j > 0.0
                            ? 100.0 * row.j / r.energy_total_j
                            : 0.0);
        }
        std::printf("  %-12s %10.3f J  (%.3e J/req, %.3f J/Gb)\n",
                    "total", r.energy_total_j, r.j_per_request,
                    r.j_per_gb);
    }

    if (cfg.slo.enabled()) {
        std::printf("slo          %llu/%llu epochs violated "
                    "(target p99 %.1f us, worst %.1f us)\n",
                    static_cast<unsigned long long>(
                        r.slo_violation_epochs),
                    static_cast<unsigned long long>(r.slo_epochs),
                    r.slo_target_p99_us, r.slo_worst_p99_us);
    }

    if (!stats_out.empty() && sys.obs() != nullptr) {
        std::ofstream os(stats_out);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n",
                         stats_out.c_str());
            return 1;
        }
        sys.obs()->writeStatsJson(os);
        os << "\n";
        std::printf("stats written to %s\n", stats_out.c_str());
    }
    return 0;
}
