/**
 * @file
 * Command-line driver: run any mode/function/traffic combination and
 * print the metrics, without writing code. The Swiss-army knife for
 * exploring the model.
 *
 * All flags are declared through core::ArgRegistrar (DESIGN.md §15),
 * so `--help` lists everything and malformed values exit 2 with a
 * diagnostic, same as every bench binary.
 *
 * Examples:
 *   halsim_cli --mode hal --function nat --rate 80
 *   halsim_cli --mode snic --function rem --ruleset lite --trace hadoop
 *   halsim_cli --mode hal --function count --second crypto --trace cache
 *   halsim_cli --mode hal --function nat --rate 8 --governor on
 *   halsim_cli --mode hal --function nat --rate 60 --slo-p99 300 \
 *              --stats-out stats.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "core/server.hh"
#include "core/sweep.hh"

using namespace halsim;
using namespace halsim::core;

namespace {

std::optional<funcs::FunctionId>
parseFunction(const std::string &name)
{
    for (int i = 0; i < static_cast<int>(funcs::kFunctionCount); ++i) {
        const auto id = static_cast<funcs::FunctionId>(i);
        if (name == funcs::functionName(id))
            return id;
    }
    return std::nullopt;
}

/** Strict positive-number parse: "bad value" beats silent atof(0). */
std::optional<double>
parseNumber(const std::string &v)
{
    char *end = nullptr;
    const double x = std::strtod(v.c_str(), &end);
    if (end == nullptr || *end != '\0' || v.empty())
        return std::nullopt;
    return x;
}

} // namespace

int
main(int argc, char **argv)
{
    ServerConfig cfg;
    double rate = 40.0;
    std::optional<net::TraceKind> trace;
    Tick measure = 200 * kMs;
    Tick warmup = 20 * kMs;
    std::string stats_out;
    SweepOptions power;

    ArgRegistrar reg(argv[0],
                     "Run one server operating point and print the "
                     "paper's metrics.");
    reg.value("--mode", "host|snic|hal|slb|slb-host", "server mode",
              [&](const std::string &m) -> std::string {
                  if (m == "host")
                      cfg.mode = Mode::HostOnly;
                  else if (m == "snic")
                      cfg.mode = Mode::SnicOnly;
                  else if (m == "hal")
                      cfg.mode = Mode::Hal;
                  else if (m == "slb")
                      cfg.mode = Mode::Slb;
                  else if (m == "slb-host")
                      cfg.mode = Mode::HostSlb;
                  else
                      return "unknown mode '" + m + "'";
                  return {};
              });
    reg.value("--function", "NAME",
              "network function (fwd|kvs|count|ema|nat|bm25|knn|bayes|"
              "rem|crypto|comp)",
              [&](const std::string &v) -> std::string {
                  const auto f = parseFunction(v);
                  if (!f)
                      return "unknown function '" + v + "'";
                  cfg.function = *f;
                  return {};
              });
    reg.value("--second", "NAME", "second pipeline stage",
              [&](const std::string &v) -> std::string {
                  const auto f = parseFunction(v);
                  if (!f)
                      return "unknown function '" + v + "'";
                  cfg.pipeline_second = *f;
                  return {};
              });
    reg.value("--rate", "GBPS", "constant offered rate",
              [&](const std::string &v) -> std::string {
                  const auto x = parseNumber(v);
                  if (!x || *x <= 0.0)
                      return "needs a positive rate, got '" + v + "'";
                  rate = *x;
                  return {};
              });
    reg.value("--trace", "web|cache|hadoop",
              "datacenter-trace workload instead of a constant rate",
              [&](const std::string &t) -> std::string {
                  if (t == "web")
                      trace = net::TraceKind::Web;
                  else if (t == "cache")
                      trace = net::TraceKind::Cache;
                  else if (t == "hadoop")
                      trace = net::TraceKind::Hadoop;
                  else
                      return "unknown trace '" + t + "'";
                  return {};
              });
    reg.value("--frame", "BYTES", "frame size",
              [&](const std::string &v) -> std::string {
                  const auto x = parseNumber(v);
                  if (!x || *x < 64.0)
                      return "needs a frame size >= 64, got '" + v + "'";
                  cfg.frame_bytes = static_cast<std::size_t>(*x);
                  return {};
              });
    reg.value("--measure", "MS", "measurement window (milliseconds)",
              [&](const std::string &v) -> std::string {
                  const auto x = parseNumber(v);
                  if (!x || *x <= 0.0)
                      return "needs a positive window, got '" + v + "'";
                  measure = static_cast<Tick>(*x * kMs);
                  return {};
              });
    reg.value("--warmup", "MS", "warmup window (milliseconds)",
              [&](const std::string &v) -> std::string {
                  const auto x = parseNumber(v);
                  if (!x || *x < 0.0)
                      return "needs a non-negative window, got '" + v +
                             "'";
                  warmup = static_cast<Tick>(*x * kMs);
                  return {};
              });
    reg.value("--seed", "N", "traffic RNG seed",
              [&](const std::string &v) -> std::string {
                  const auto x = parseNumber(v);
                  if (!x || *x < 0.0)
                      return "needs a non-negative seed, got '" + v + "'";
                  cfg.seed = static_cast<std::uint64_t>(*x);
                  return {};
              });
    reg.value("--split", "token|rr|flow", "HLB splitter discipline",
              [&](const std::string &s) -> std::string {
                  if (s == "token")
                      cfg.split_mode = SplitMode::TokenBucket;
                  else if (s == "rr")
                      cfg.split_mode = SplitMode::RoundRobin;
                  else if (s == "flow")
                      cfg.split_mode = SplitMode::FlowAffinity;
                  else
                      return "unknown split '" + s + "'";
                  return {};
              });
    reg.flag("--dvfs", "enable SNIC DVFS",
             [&] { cfg.power.snic_dvfs.enabled = true; });
    reg.flag("--no-coherence", "disable cross-processor state coherence",
             [&] { cfg.coherent_state = false; });
    reg.value("--slb-cores", "N", "cores reserved for the software LB",
              [&](const std::string &v) -> std::string {
                  const auto x = parseNumber(v);
                  if (!x || *x < 1.0)
                      return "needs a core count >= 1, got '" + v + "'";
                  cfg.slb_cores = static_cast<unsigned>(*x);
                  return {};
              });
    reg.value("--slb-th", "GBPS", "software-LB forwarding threshold",
              [&](const std::string &v) -> std::string {
                  const auto x = parseNumber(v);
                  if (!x || *x <= 0.0)
                      return "needs a positive threshold, got '" + v +
                             "'";
                  cfg.slb_fwd_th_gbps = *x;
                  return {};
              });
    reg.value("--ruleset", "tea|lite", "REM pattern ruleset",
              [&](const std::string &r) -> std::string {
                  if (r == "tea")
                      cfg.rem_ruleset = alg::RulesetKind::Teakettle;
                  else if (r == "lite")
                      cfg.rem_ruleset = alg::RulesetKind::SnortLiterals;
                  else
                      return "unknown ruleset '" + r + "'";
                  return {};
              });
    reg.value("--slo-p99", "US", "arm the SLO monitor at this p99 target",
              [&](const std::string &v) -> std::string {
                  const auto x = parseNumber(v);
                  if (!x || *x <= 0.0)
                      return "needs a positive target, got '" + v + "'";
                  cfg.slo.target_p99_us = *x;
                  return {};
              });
    reg.value("--run-threads", "N",
              "time-parallel engine worker threads (0 = monolithic)",
              [&](const std::string &v) -> std::string {
                  const auto x = parseNumber(v);
                  if (!x || *x < 0.0)
                      return "needs a non-negative count, got '" + v +
                             "'";
                  cfg.run_threads = static_cast<unsigned>(*x);
                  // The partitioned engine excludes the watchdog's
                  // cross-wheel probes; drop it so plain hal runs
                  // qualify.
                  cfg.watchdog.enabled = false;
                  return {};
              });
    reg.value("--stats-out", "PATH", "write the stats tree here",
              [&](const std::string &v) -> std::string {
                  stats_out = v;
                  cfg.obs.stats = true;
                  return {};
              });
    registerPowerFlags(reg, power);
    reg.parse(argc, argv);
    applyPowerFlags(power, cfg);

    EventQueue eq;
    ServerSystem sys(eq, cfg);
    const RunResult r =
        trace ? sys.run(net::makeTrace(*trace), warmup, measure, 2 * kMs)
              : sys.run(std::make_unique<net::ConstantRate>(rate), warmup,
                        measure);

    std::printf("mode=%s function=%s%s%s traffic=%s\n",
                modeName(cfg.mode), funcs::functionName(cfg.function),
                cfg.pipeline_second ? "+" : "",
                cfg.pipeline_second
                    ? funcs::functionName(*cfg.pipeline_second)
                    : "",
                trace ? net::traceName(*trace) : "constant");
    if (cfg.run_threads > 0)
        std::printf("engine       %s\n",
                    sys.partitioned()
                        ? (cfg.run_threads >= 2
                               ? "partitioned (3 wheels, threaded)"
                               : "partitioned (3 wheels, sequential)")
                        : "monolithic (config not partitionable)");
    std::printf("offered      %8.2f Gbps\n", r.offered_gbps);
    std::printf("delivered    %8.2f Gbps (max window %.2f)\n",
                r.delivered_gbps, r.max_window_gbps);
    std::printf("p99 latency  %8.1f us (mean %.1f)\n", r.p99_us,
                r.mean_us);
    std::printf("system power %8.1f W (dynamic %.1f)\n",
                r.system_power_w, r.dynamic_power_w);
    std::printf("energy eff.  %8.4f Gbps/W\n", r.energy_eff);
    std::printf("loss         %8.2f %%\n", 100.0 * r.lossFraction());
    std::printf("split        %llu snic / %llu host\n",
                static_cast<unsigned long long>(r.snic_frames),
                static_cast<unsigned long long>(r.host_frames));
    if (cfg.mode == Mode::Hal)
        std::printf("final FwdTh  %8.1f Gbps\n", r.final_fwd_th_gbps);
    if (cfg.power.governor.enabled) {
        std::printf("governor     %llu epochs, %llu rebalances "
                    "(%llu migrations), %llu parks / %llu unparks, "
                    "active cores %llu..%llu\n",
                    static_cast<unsigned long long>(r.gov_epochs),
                    static_cast<unsigned long long>(r.gov_rebalances),
                    static_cast<unsigned long long>(r.gov_migrations),
                    static_cast<unsigned long long>(r.gov_parks),
                    static_cast<unsigned long long>(r.gov_unparks),
                    static_cast<unsigned long long>(
                        r.gov_min_active_cores),
                    static_cast<unsigned long long>(
                        r.gov_max_active_cores));
    }

    // --- per-component energy breakdown (measurement window) ---------
    {
        struct Row
        {
            const char *name;
            double j;
        };
        const Row rows[] = {
            {"snic cpu", r.energy_snic_cpu_j},
            {"snic accel", r.energy_snic_accel_j},
            {"host cpu", r.energy_host_cpu_j},
            {"host accel", r.energy_host_accel_j},
            {"hlb/lbp/slb", r.energy_extra_j},
            {"static base", r.energy_static_j},
        };
        std::printf("energy breakdown (window):\n");
        for (const Row &row : rows) {
            if (row.j == 0.0)
                continue;
            std::printf("  %-12s %10.3f J  (%5.1f %%)\n", row.name,
                        row.j,
                        r.energy_total_j > 0.0
                            ? 100.0 * row.j / r.energy_total_j
                            : 0.0);
        }
        std::printf("  %-12s %10.3f J  (%.3e J/req, %.3f J/Gb)\n",
                    "total", r.energy_total_j, r.j_per_request,
                    r.j_per_gb);
    }

    if (cfg.slo.enabled()) {
        std::printf("slo          %llu/%llu epochs violated "
                    "(target p99 %.1f us, worst %.1f us)\n",
                    static_cast<unsigned long long>(
                        r.slo_violation_epochs),
                    static_cast<unsigned long long>(r.slo_epochs),
                    r.slo_target_p99_us, r.slo_worst_p99_us);
    }

    if (!stats_out.empty() && sys.obs() != nullptr) {
        std::ofstream os(stats_out);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n",
                         stats_out.c_str());
            return 1;
        }
        sys.obs()->writeStatsJson(os);
        os << "\n";
        std::printf("stats written to %s\n", stats_out.c_str());
    }
    return 0;
}
