/**
 * @file
 * Quickstart: build a HAL-enabled server, drive it with the paper's
 * "web" datacenter trace, and print the headline metrics.
 *
 *   $ ./quickstart
 *
 * This is the smallest end-to-end use of the public API:
 *   1. pick a ServerConfig (mode, function),
 *   2. construct a ServerSystem on an event queue,
 *   3. run() a traffic process through it,
 *   4. read the RunResult.
 */

#include <cstdio>
#include <memory>

#include "core/server.hh"

using namespace halsim;
using namespace halsim::core;

int
main()
{
    // 1. Configure: HAL mode (hardware load balancer + LBP), running
    //    the NAT function, BF-2 SNIC + Skylake host (the defaults).
    ServerConfig cfg;
    cfg.mode = Mode::Hal;
    cfg.function = funcs::FunctionId::Nat;

    // 2. Assemble the simulated machine.
    EventQueue eq;
    ServerSystem server(eq, cfg);

    // 3. Offer the paper's bursty "web" trace for 400 ms of simulated
    //    time (20 ms warmup), re-drawing the offered rate every 2 ms.
    RunResult r = server.run(net::makeTrace(net::TraceKind::Web),
                             20 * kMs, 400 * kMs, 2 * kMs);

    // 4. Read out the metrics the paper reports.
    std::printf("HAL + NAT under the web trace\n");
    std::printf("  offered:        %6.2f Gbps (avg)\n", r.offered_gbps);
    std::printf("  delivered:      %6.2f Gbps (avg), %6.2f Gbps "
                "(10 ms max)\n",
                r.delivered_gbps, r.max_window_gbps);
    std::printf("  p99 latency:    %6.1f us\n", r.p99_us);
    std::printf("  system power:   %6.1f W (%.1f W dynamic)\n",
                r.system_power_w, r.dynamic_power_w);
    std::printf("  energy eff.:    %6.4f Gbps/W\n", r.energy_eff);
    std::printf("  split:          %lu packets on the SNIC, %lu on the "
                "host\n",
                static_cast<unsigned long>(r.snic_frames),
                static_cast<unsigned long>(r.host_frames));
    std::printf("  final Fwd_Th:   %6.1f Gbps (decided by LBP)\n",
                r.final_fwd_th_gbps);

    // Compare against the host processing everything.
    cfg.mode = Mode::HostOnly;
    EventQueue eq2;
    ServerSystem host(eq2, cfg);
    RunResult h = host.run(net::makeTrace(net::TraceKind::Web), 20 * kMs,
                           400 * kMs, 2 * kMs);
    std::printf("\nhost-only reference: %.4f Gbps/W at %.1f W\n",
                h.energy_eff, h.system_power_w);
    std::printf("HAL energy-efficiency gain: %+.1f%%  (paper: ~+28%% "
                "for web)\n",
                100.0 * (r.energy_eff / h.energy_eff - 1.0));
    return 0;
}
