/**
 * @file
 * Scenario: produce a machine-readable capacity report — sweep the
 * offered rate across all four deployments and emit CSV (stdout) via
 * the ReportTable API, ready for a spreadsheet or plotting pipeline.
 *
 *   ./capacity_report > capacity.csv
 */

#include <iostream>
#include <memory>

#include "core/server.hh"
#include "sim/report.hh"

using namespace halsim;
using namespace halsim::core;

int
main()
{
    ReportTable table({"mode", "function", "offered_gbps",
                       "delivered_gbps", "p99_us", "mean_us",
                       "system_w", "energy_gbps_per_w", "loss_pct",
                       "snic_frames", "host_frames"});

    for (funcs::FunctionId fn :
         {funcs::FunctionId::Nat, funcs::FunctionId::Rem}) {
        for (Mode mode :
             {Mode::HostOnly, Mode::SnicOnly, Mode::Hal, Mode::Slb}) {
            for (double rate : {10.0, 30.0, 50.0, 70.0, 90.0}) {
                ServerConfig cfg;
                cfg.mode = mode;
                cfg.function = fn;
                EventQueue eq;
                ServerSystem sys(eq, cfg);
                const RunResult r = sys.run(
                    std::make_unique<net::ConstantRate>(rate), 15 * kMs,
                    60 * kMs);
                table.row()
                    .add(modeName(mode))
                    .add(funcs::functionName(fn))
                    .add(rate)
                    .add(r.delivered_gbps)
                    .add(r.p99_us)
                    .add(r.mean_us)
                    .add(r.system_power_w)
                    .add(r.energy_eff)
                    .add(100.0 * r.lossFraction())
                    .add(r.snic_frames)
                    .add(r.host_frames);
            }
        }
    }

    table.writeCsv(std::cout);
    return 0;
}
