/**
 * @file
 * The SNIC embedded switch (eSwitch, §II-A): forwards frames to the
 * SNIC processor or the host processor according to OvS-style rules
 * keyed on the destination IP, exactly the mechanism HAL's traffic
 * director relies on (it rewrites the destination and lets the
 * eSwitch route). Also small helper sinks for fixed path delays and
 * RSS spreading.
 */

#ifndef HALSIM_NIC_ESWITCH_HH
#define HALSIM_NIC_ESWITCH_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "net/packet.hh"
#include "net/packet_batch.hh"
#include "net/timed_channel.hh"
#include "obs/hooks.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace halsim::nic {

/**
 * Destination-IP forwarding switch. Rules are exact-match on the
 * IPv4 destination; unmatched frames go to the default port (or are
 * dropped when none is set).
 */
class ESwitch : public net::PacketSink
{
  public:
    /** Add/replace the rule dst_ip -> port. */
    void
    addRule(net::Ipv4Addr dst_ip, net::PacketSink *port)
    {
        for (auto &r : rules_) {
            if (r.ip == dst_ip) {
                r.port = port;
                r.enabled = true;
                return;
            }
        }
        rules_.push_back(Rule{dst_ip, port, true});
    }

    void setDefault(net::PacketSink *port) { default_ = port; }

    /**
     * Fault hook: a downed port keeps its rule but blackholes the
     * frames that match it (the PF/VF behind the eSwitch went away).
     */
    void
    setPortEnabled(net::Ipv4Addr dst_ip, bool enabled)
    {
        for (auto &r : rules_) {
            if (r.ip == dst_ip)
                r.enabled = enabled;
        }
    }

    /** Attach the packet tracer (@p eq supplies timestamps): matches
     *  record EswitchVerdict with the rule index as arg; blackholed
     *  and unrouted frames record Drop. */
    void
    setTrace(obs::PacketTracer *t, std::uint8_t lane,
             const EventQueue *eq)
    {
        trace_ = t;
        traceLane_ = lane;
        traceEq_ = eq;
    }

    // halint: hotpath
    void
    accept(net::PacketPtr pkt) override
    {
        const net::Ipv4Addr dst = pkt->ip().dst();
        for (std::size_t i = 0; i < rules_.size(); ++i) {
            const Rule &r = rules_[i];
            if (r.ip == dst) {
                if (!r.enabled) {
                    ++blackholed_;
                    obs::tracePacket(
                        trace_,
                        traceEq_ != nullptr ? traceEq_->now() : 0,
                        pkt->id, obs::TracePoint::Drop, traceLane_,
                        static_cast<std::uint32_t>(i));
                    return;
                }
                ++matched_;
                obs::tracePacket(
                    trace_, traceEq_ != nullptr ? traceEq_->now() : 0,
                    pkt->id, obs::TracePoint::EswitchVerdict,
                    traceLane_, static_cast<std::uint32_t>(i));
                r.port->accept(std::move(pkt));
                return;
            }
        }
        if (default_ != nullptr) {
            default_->accept(std::move(pkt));
            return;
        }
        ++unrouted_;
        obs::tracePacket(trace_,
                         traceEq_ != nullptr ? traceEq_->now() : 0,
                         pkt->id, obs::TracePoint::Drop, traceLane_);
    }

    /** Burst classification: the per-packet verdict logic in a
     *  devirtualized loop (one dispatch per burst, not per frame). */
    // halint: hotpath
    void
    acceptBatch(net::PacketBatch &&batch) override
    {
        while (!batch.empty())
            ESwitch::accept(batch.takeFront());
    }

    std::uint64_t matched() const { return matched_; }
    std::uint64_t unrouted() const { return unrouted_; }

    /** Frames dropped at a downed port. */
    std::uint64_t blackholed() const { return blackholed_; }

  private:
    struct Rule
    {
        net::Ipv4Addr ip;
        net::PacketSink *port;
        bool enabled;
    };

    /** Tiny rule count (2-3); linear scan beats a map. */
    std::vector<Rule> rules_;
    net::PacketSink *default_ = nullptr;
    std::uint64_t matched_ = 0;
    std::uint64_t unrouted_ = 0;
    std::uint64_t blackholed_ = 0;

    // Observability (null/inert unless attached).
    obs::PacketTracer *trace_ = nullptr;
    std::uint8_t traceLane_ = 0;
    const EventQueue *traceEq_ = nullptr;
};

/**
 * Fixed-latency forwarding element for the intra-server hops the
 * paper quantifies (§III-A): eSwitch -> SNIC rings, the extra PCIe
 * hop to the host, and the extra UPI/CXL hop to a remote socket.
 */
class FixedDelay : public net::PacketSink,
                   private net::TimedChannel::Receiver
{
  public:
    FixedDelay(EventQueue &eq, Tick delay, net::PacketSink &next)
        : eq_(eq), delay_(delay), next_(next),
          chan_(eq, *this, "fixed-delay")
    {}

    // halint: hotpath
    void
    accept(net::PacketPtr pkt) override
    {
        const Tick when = eq_.now() + delay_;
        if (edge_ != nullptr) {
            edge_->send(when, std::move(pkt));
            return;
        }
        chan_.push(when, std::move(pkt));
    }

    Tick delay() const { return delay_; }

    /** Time-parallel mode: @p next lives on another wheel; hand the
     *  delayed packet to the cross-wheel edge instead. */
    void setEgressEdge(net::DeliveryEdge *edge) { edge_ = edge; }

  private:
    void
    channelDeliver(net::PacketPtr pkt) override
    {
        next_.accept(std::move(pkt));
    }

    EventQueue &eq_;
    Tick delay_;
    net::PacketSink &next_;
    net::TimedChannel chan_;
    net::DeliveryEdge *edge_ = nullptr;
};

/**
 * Receive-side scaling: spreads frames over N rings by flow hash,
 * one ring per polling core, as DPDK configures the (S)NIC.
 */
class RssDistributor : public net::PacketSink
{
  public:
    void addQueue(net::PacketSink *q) { queues_.push_back(q); }

    // halint: hotpath
    void
    accept(net::PacketPtr pkt) override
    {
        if (queues_.empty())
            return;
        const std::size_t i = pkt->flowHash % queues_.size();
        queues_[i]->accept(std::move(pkt));
    }

    std::size_t queueCount() const { return queues_.size(); }

  private:
    std::vector<net::PacketSink *> queues_;
};

} // namespace halsim::nic

#endif // HALSIM_NIC_ESWITCH_HH
