/**
 * @file
 * DPDK-style receive descriptor ring. Bounded FIFO of packets with
 * the two APIs the paper's LBP algorithm uses: burst dequeue
 * (rte_eth_rx_burst) and occupancy query (rte_eth_rx_queue_count).
 * Enqueue beyond the descriptor count tail-drops, which is exactly
 * how a NIC behaves when software cannot keep up — the source of the
 * paper's saturation latency/drop behaviour.
 */

#ifndef HALSIM_NIC_DPDK_RING_HH
#define HALSIM_NIC_DPDK_RING_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.hh"
#include "net/packet_batch.hh"
#include "obs/hooks.hh"
#include "sim/event_queue.hh"

namespace halsim::nic {

/**
 * Bounded packet FIFO with an enqueue notification hook (the poll
 * core uses it to wake from idle without simulating spin loops).
 *
 * Like the hardware it models, the descriptor array is allocated
 * once at ring setup: `slots_` is sized to the descriptor count in
 * the constructor and enqueue/dequeue are pure index arithmetic, so
 * the steady-state hot path never touches the allocator.
 */
class DpdkRing : public net::PacketSink
{
  public:
    explicit DpdkRing(std::uint32_t descriptors = 512)
        : capacity_(descriptors),
          slots_(descriptors > 0 ? descriptors : 1)
    {}

    /** Hook invoked after a successful enqueue into an empty ring. */
    void setNotify(std::function<void()> fn) { notify_ = std::move(fn); }

    /** Attach the packet tracer (@p eq supplies timestamps):
     *  enqueues record RingEnqueue with the post-enqueue occupancy
     *  as arg, tail-drops record Drop. */
    void
    setTrace(obs::PacketTracer *t, std::uint8_t lane,
             const EventQueue *eq)
    {
        trace_ = t;
        traceLane_ = lane;
        traceEq_ = eq;
    }

    // halint: hotpath
    void
    accept(net::PacketPtr pkt) override
    {
        if (disabled_ || count_ >= capacity_) {
            ++drops_;
            obs::tracePacket(trace_,
                             traceEq_ != nullptr ? traceEq_->now() : 0,
                             pkt->id, obs::TracePoint::Drop, traceLane_,
                             occupancy());
            return;
        }
        const bool was_empty = count_ == 0;
        bytesIn_ += pkt->size();
        obs::tracePacket(trace_,
                         traceEq_ != nullptr ? traceEq_->now() : 0,
                         pkt->id, obs::TracePoint::RingEnqueue,
                         traceLane_, occupancy() + 1);
        slots_[slot(count_)] = std::move(pkt);
        ++count_;
        if (was_empty && notify_)
            notify_();
    }

    /** Burst enqueue (rte_eth_tx_burst): identical per-packet
     *  semantics — tail-drop per frame, the empty->nonempty notify
     *  fires at most once — without a virtual dispatch per frame. */
    // halint: hotpath
    void
    acceptBatch(net::PacketBatch &&batch) override
    {
        while (!batch.empty())
            DpdkRing::accept(batch.takeFront());
    }

    /** rte_eth_rx_burst(1): take the head packet, or null. */
    net::PacketPtr
    dequeue()
    {
        if (count_ == 0)
            return nullptr;
        net::PacketPtr pkt = std::move(slots_[head_]);
        head_ = next(head_);
        --count_;
        return pkt;
    }

    /**
     * rte_eth_rx_burst(n): drain up to @p max head packets into a
     * batch, preserving FIFO order.
     */
    net::PacketBatch
    dequeueBurst(std::size_t max = net::PacketBatch::kCapacity)
    {
        net::PacketBatch b;
        while (count_ > 0 && b.size() < max && !b.full()) {
            b.append(std::move(slots_[head_]));
            head_ = next(head_);
            --count_;
        }
        return b;
    }

    /** rte_eth_rx_queue_count analog. */
    std::uint32_t occupancy() const { return count_; }

    bool empty() const { return count_ == 0; }
    std::uint32_t capacity() const { return capacity_; }
    std::uint64_t drops() const { return drops_; }
    std::uint64_t bytesIn() const { return bytesIn_; }

    /**
     * Fault hook: a disabled ring models a dead receive queue (DMA
     * stopped, descriptors never replenished) — every arrival is
     * dropped and counted. Already-queued packets stay dequeueable.
     */
    void setDisabled(bool disabled) { disabled_ = disabled; }

    bool disabled() const { return disabled_; }

  private:
    /** Slot index of logical position @p i behind the head. */
    std::uint32_t
    slot(std::uint32_t i) const
    {
        const std::uint32_t s = head_ + i;
        const std::uint32_t n =
            static_cast<std::uint32_t>(slots_.size());
        return s >= n ? s - n : s;
    }

    std::uint32_t
    next(std::uint32_t i) const
    {
        const std::uint32_t n =
            static_cast<std::uint32_t>(slots_.size());
        return i + 1 >= n ? 0 : i + 1;
    }

    std::uint32_t capacity_;
    /** Preallocated descriptor slots; never resized after setup. */
    std::vector<net::PacketPtr> slots_;
    std::uint32_t head_ = 0;   //!< oldest occupied slot
    std::uint32_t count_ = 0;  //!< occupied slots
    std::function<void()> notify_;
    std::uint64_t drops_ = 0;
    std::uint64_t bytesIn_ = 0;
    bool disabled_ = false;

    // Observability (null/inert unless attached).
    obs::PacketTracer *trace_ = nullptr;
    std::uint8_t traceLane_ = 0;
    const EventQueue *traceEq_ = nullptr;
};

} // namespace halsim::nic

#endif // HALSIM_NIC_DPDK_RING_HH
