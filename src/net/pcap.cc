#include "net/pcap.hh"

#include <cstring>
#include <stdexcept>

namespace halsim::net {

namespace {

constexpr std::uint32_t kMagic = 0xa1b2c3d4;   //!< microsecond pcap
constexpr std::uint16_t kVersionMajor = 2;
constexpr std::uint16_t kVersionMinor = 4;
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::uint32_t kSnapLen = 65535;

void
put32(std::ofstream &out, std::uint32_t v)
{
    // Host byte order, per the format (the magic disambiguates).
    out.write(reinterpret_cast<const char *>(&v), 4);
}

void
put16(std::ofstream &out, std::uint16_t v)
{
    out.write(reinterpret_cast<const char *>(&v), 2);
}

std::uint32_t
get32(std::ifstream &in)
{
    std::uint32_t v = 0;
    in.read(reinterpret_cast<char *>(&v), 4);
    if (!in)
        throw std::runtime_error("pcap: truncated file");
    return v;
}

} // namespace

PcapWriter::PcapWriter(const std::string &path)
    : out_(path, std::ios::binary)
{
    if (!out_)
        throw std::runtime_error("pcap: cannot open " + path);
    put32(out_, kMagic);
    put16(out_, kVersionMajor);
    put16(out_, kVersionMinor);
    put32(out_, 0);   // thiszone
    put32(out_, 0);   // sigfigs
    put32(out_, kSnapLen);
    put32(out_, kLinkTypeEthernet);
}

void
PcapWriter::record(const Packet &pkt, Tick now)
{
    const std::uint64_t usec_total = now / kUs;
    put32(out_, static_cast<std::uint32_t>(usec_total / 1000000));
    put32(out_, static_cast<std::uint32_t>(usec_total % 1000000));
    const auto len = static_cast<std::uint32_t>(pkt.size());
    put32(out_, len);   // captured
    put32(out_, len);   // on the wire
    out_.write(reinterpret_cast<const char *>(pkt.data()),
               static_cast<std::streamsize>(pkt.size()));
    ++frames_;
}

void
PcapWriter::close()
{
    if (out_.is_open())
        out_.close();
}

PcapWriter::~PcapWriter()
{
    close();
}

std::vector<PcapRecord>
readPcap(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("pcap: cannot open " + path);

    if (get32(in) != kMagic)
        throw std::runtime_error("pcap: bad magic (not usec classic)");
    std::uint32_t tmp = 0;
    in.read(reinterpret_cast<char *>(&tmp), 4);   // versions
    (void)get32(in);                              // thiszone
    (void)get32(in);                              // sigfigs
    (void)get32(in);                              // snaplen
    if (get32(in) != kLinkTypeEthernet)
        throw std::runtime_error("pcap: not an Ethernet capture");

    std::vector<PcapRecord> records;
    for (;;) {
        std::uint32_t sec = 0;
        in.read(reinterpret_cast<char *>(&sec), 4);
        if (!in)
            break;   // clean EOF
        const std::uint32_t usec = get32(in);
        const std::uint32_t caplen = get32(in);
        const std::uint32_t origlen = get32(in);
        if (caplen > kSnapLen || caplen > origlen)
            throw std::runtime_error("pcap: corrupt record header");
        PcapRecord rec;
        rec.timestamp =
            (static_cast<Tick>(sec) * 1000000 + usec) * kUs;
        rec.bytes.resize(caplen);
        in.read(reinterpret_cast<char *>(rec.bytes.data()), caplen);
        if (!in)
            throw std::runtime_error("pcap: truncated record");
        records.push_back(std::move(rec));
    }
    return records;
}

} // namespace halsim::net
