#include "net/checksum.hh"

namespace halsim::net {

std::uint16_t
onesComplementSum(const std::uint8_t *data, std::size_t len)
{
    std::uint32_t sum = 0;
    std::size_t i = 0;
    for (; i + 1 < len; i += 2)
        sum += (std::uint32_t{data[i]} << 8) | data[i + 1];
    if (i < len)
        sum += std::uint32_t{data[i]} << 8;   // pad odd byte with zero
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(sum);
}

std::uint16_t
internetChecksum(const std::uint8_t *data, std::size_t len)
{
    return static_cast<std::uint16_t>(~onesComplementSum(data, len));
}

std::uint16_t
checksumUpdate16(std::uint16_t hc, std::uint16_t old_word,
                 std::uint16_t new_word)
{
    // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m'), all in one's complement.
    std::uint32_t sum = static_cast<std::uint16_t>(~hc);
    sum += static_cast<std::uint16_t>(~old_word);
    sum += new_word;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum);
}

std::uint16_t
checksumUpdate32(std::uint16_t hc, std::uint32_t old_val,
                 std::uint32_t new_val)
{
    hc = checksumUpdate16(hc, static_cast<std::uint16_t>(old_val >> 16),
                          static_cast<std::uint16_t>(new_val >> 16));
    hc = checksumUpdate16(hc, static_cast<std::uint16_t>(old_val & 0xffff),
                          static_cast<std::uint16_t>(new_val & 0xffff));
    return hc;
}

} // namespace halsim::net
