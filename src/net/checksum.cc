#include "net/checksum.hh"

#include <bit>
#include <cstring>

namespace halsim::net {

// halint: hotpath
std::uint16_t
onesComplementSum(const std::uint8_t *data, std::size_t len)
{
    // Word-at-a-time accumulation (RFC 1071 §2B): one's-complement
    // addition is commutative and byte-order independent, so we add
    // native-endian 32-bit half-words into wide binary accumulators
    // (the deferred carries survive in the upper bits), fold to 16
    // bits, and byte-swap once at the end on little-endian hosts.
    // Two independent accumulators break the loop-carried dependency
    // so the compiler can vectorize; each grows by < 2^33 per step,
    // overflow-safe far beyond any frame size.
    std::uint64_t acc0 = 0, acc1 = 0;
    std::size_t i = 0;
    for (; i + 16 <= len; i += 16) {
        std::uint64_t w0, w1;
        std::memcpy(&w0, data + i, 8);
        std::memcpy(&w1, data + i + 8, 8);
        acc0 += (w0 & 0xffffffffu) + (w0 >> 32);
        acc1 += (w1 & 0xffffffffu) + (w1 >> 32);
    }
    std::uint64_t sum = acc0 + acc1;
    if (i + 8 <= len) {
        std::uint64_t w;
        std::memcpy(&w, data + i, 8);
        sum += (w & 0xffffffffu) + (w >> 32);
        i += 8;
    }
    if (i + 4 <= len) {
        std::uint32_t w;
        std::memcpy(&w, data + i, 4);
        sum += w;
        i += 4;
    }
    // Fold 64 -> 32 -> 16 with end-around carries.
    sum = (sum & 0xffffffffu) + (sum >> 32);
    sum = (sum & 0xffffffffu) + (sum >> 32);
    sum = (sum & 0xffff) + (sum >> 16);
    sum = (sum & 0xffff) + (sum >> 16);
    std::uint32_t folded = static_cast<std::uint32_t>(sum);
    if constexpr (std::endian::native == std::endian::little)
        folded = ((folded & 0xff) << 8) | (folded >> 8);

    // Tail (< 4 bytes) in big-endian convention; the vector loop
    // consumed a multiple of 4 bytes, so 16-bit word parity holds.
    for (; i + 1 < len; i += 2)
        folded += (std::uint32_t{data[i]} << 8) | data[i + 1];
    if (i < len)
        folded += std::uint32_t{data[i]} << 8;   // pad odd byte
    while (folded >> 16)
        folded = (folded & 0xffff) + (folded >> 16);
    return static_cast<std::uint16_t>(folded);
}

// halint: hotpath
std::uint16_t
internetChecksum(const std::uint8_t *data, std::size_t len)
{
    return static_cast<std::uint16_t>(~onesComplementSum(data, len));
}

// halint: hotpath
std::uint16_t
checksumUpdate16(std::uint16_t hc, std::uint16_t old_word,
                 std::uint16_t new_word)
{
    // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m'), all in one's complement.
    std::uint32_t sum = static_cast<std::uint16_t>(~hc);
    sum += static_cast<std::uint16_t>(~old_word);
    sum += new_word;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum);
}

std::uint16_t
checksumUpdate32(std::uint16_t hc, std::uint32_t old_val,
                 std::uint32_t new_val)
{
    hc = checksumUpdate16(hc, static_cast<std::uint16_t>(old_val >> 16),
                          static_cast<std::uint16_t>(new_val >> 16));
    hc = checksumUpdate16(hc, static_cast<std::uint16_t>(old_val & 0xffff),
                          static_cast<std::uint16_t>(new_val & 0xffff));
    return hc;
}

} // namespace halsim::net
