/**
 * @file
 * Client-side traffic generation: constant-rate sweeps and the
 * paper's log-normal rate-modulated datacenter traces (Fig. 8).
 */

#ifndef HALSIM_NET_TRAFFIC_HH
#define HALSIM_NET_TRAFFIC_HH

#include <functional>
#include <memory>
#include <string>

#include "net/packet.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace halsim::net {

/** Addressing for one request flow. */
struct FlowEndpoints
{
    MacAddr src_mac = MacAddr::fromUint(0x020000000001);
    MacAddr dst_mac = MacAddr::fromUint(0x020000000002);
    Ipv4Addr src_ip = Ipv4Addr(10, 0, 0, 1);
    Ipv4Addr dst_ip = Ipv4Addr(10, 0, 0, 2);
    std::uint16_t src_port = 40000;
    std::uint16_t dst_port = 9000;
};

/**
 * A stochastic offered-rate process, sampled once per resample
 * epoch. Implementations must be deterministic given the Rng.
 */
class RateProcess
{
  public:
    virtual ~RateProcess() = default;

    /** Draw the offered rate (Gbps) for the next epoch. */
    virtual double sample(Rng &rng) = 0;

    /** Long-run mean rate, for reporting. */
    virtual double meanGbps() const = 0;

    virtual std::string name() const = 0;
};

/** Fixed offered rate, for the rate sweeps of Figs. 2/4/5/9. */
class ConstantRate : public RateProcess
{
  public:
    explicit ConstantRate(double gbps) : gbps_(gbps) {}

    double sample(Rng &) override { return gbps_; }
    double meanGbps() const override { return gbps_; }
    std::string name() const override { return "constant"; }

  private:
    double gbps_;
};

/**
 * Log-normal rate with truncation at the line rate, matching the
 * paper's Fig. 8 trace construction: rate ~ min(exp(N(mu, sigma)),
 * line_rate). The paper's (mu, sigma) pairs produce the reported
 * 1.6 / 5.2 / 10.9 Gbps averages only because of the truncation —
 * cache's sigma = 7.55 would otherwise explode.
 */
class LognormalRate : public RateProcess
{
  public:
    LognormalRate(double mu, double sigma, double cap_gbps,
                  std::string label);

    double sample(Rng &rng) override;
    double meanGbps() const override { return mean_; }
    std::string name() const override { return label_; }

    double mu() const { return mu_; }
    double sigma() const { return sigma_; }

  private:
    double mu_, sigma_, cap_;
    double mean_;   //!< numerically integrated truncated mean
    std::string label_;
};

/**
 * Deterministic diurnal load: a phase-stepped raised cosine between
 * @p trough_gbps and @p peak_gbps over @p period_samples rate draws.
 * No randomness at all — every sample() advances the phase by one
 * step — so governor sweeps over it are exactly reproducible and the
 * committed bench artifact is bit-stable. Models the day/night swing
 * a core-scaling governor exists to exploit.
 */
class DiurnalRate : public RateProcess
{
  public:
    DiurnalRate(double trough_gbps, double peak_gbps,
                std::uint32_t period_samples);

    double sample(Rng &rng) override;
    double meanGbps() const override { return mean_; }
    std::string name() const override { return "diurnal"; }

  private:
    double trough_, peak_;
    std::uint32_t period_, phase_ = 0;
    double mean_;
};

/**
 * Deterministic burst train: @p base_gbps background with a
 * @p burst_gbps plateau of @p burst_samples draws every
 * @p period_samples. Exercises the governor's emergency unpark path
 * (occupancy pressure valve) and the p99-at-peak acceptance gate.
 */
class BurstRate : public RateProcess
{
  public:
    BurstRate(double base_gbps, double burst_gbps,
              std::uint32_t period_samples, std::uint32_t burst_samples);

    double sample(Rng &rng) override;
    double meanGbps() const override { return mean_; }
    std::string name() const override { return "burst"; }

  private:
    double base_, burst_;
    std::uint32_t period_, burstLen_, phase_ = 0;
    double mean_;
};

/** The three Meta datacenter workloads of Fig. 8. */
enum class TraceKind
{
    Web,     //!< mu -1.37, sigma 1.97, avg 1.6 Gbps
    Cache,   //!< mu -9.00, sigma 7.55, avg 5.2 Gbps
    Hadoop,  //!< mu -4.18, sigma 6.56, avg 10.9 Gbps
};

const char *traceName(TraceKind k);

/** Factory for the paper's trace processes at a given line rate. */
std::unique_ptr<RateProcess> makeTrace(TraceKind kind,
                                       double line_rate_gbps = 100.0);

/**
 * The client-side packet source. Emits real UDP frames into a sink
 * at the rate dictated by a RateProcess, re-sampled every epoch.
 * Within an epoch packets are evenly spaced (the burstiness comes
 * from rate modulation across epochs, as in the paper's traces).
 */
// halint: band(client) generator state advances on the client wheel
class TrafficGenerator
{
  public:
    /** Fills a freshly built packet's payload with a request. */
    using PayloadFn = std::function<void(Packet &)>;

    struct Config
    {
        FlowEndpoints endpoints;
        std::size_t frame_bytes = kMtuFrameBytes;
        Tick resample_epoch = 1 * kMs;  //!< rate re-draw period
        double min_rate_gbps = 0.01;    //!< progress floor
        std::uint64_t seed = 1;
    };

    TrafficGenerator(EventQueue &eq, Config cfg,
                     std::unique_ptr<RateProcess> rate, PacketSink &sink);
    ~TrafficGenerator();

    /** Install the request-payload writer (may be empty). */
    void setPayloadFn(PayloadFn fn) { payloadFn_ = std::move(fn); }

    /** Begin emitting at the current simulated time until @p until. */
    void start(Tick until);

    /** Stop emitting immediately. */
    void stop();

    std::uint64_t sentFrames() const { return sentFrames_; }
    std::uint64_t sentBytes() const { return sentBytes_; }

    /** Offered-rate samples drawn so far (for Fig. 8 reporting). */
    const Accumulator &offeredRate() const { return offered_; }

    /** Current epoch's offered rate (Gbps). */
    double currentRate() const { return rateGbps_; }

  private:
    void emitOne();
    void resample();

    EventQueue &eq_;
    Config cfg_;
    std::unique_ptr<RateProcess> rate_;
    PacketSink &sink_;
    PayloadFn payloadFn_;
    Rng rng_;

    CallbackEvent emitEvent_;
    CallbackEvent resampleEvent_;

    Tick until_ = 0;
    double rateGbps_ = 0.0;
    std::uint64_t nextId_ = 1;
    std::uint64_t sentFrames_ = 0;
    std::uint64_t sentBytes_ = 0;
    Accumulator offered_;
};

} // namespace halsim::net

#endif // HALSIM_NET_TRAFFIC_HH
