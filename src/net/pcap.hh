/**
 * @file
 * Classic pcap (libpcap 2.4) capture files: write simulated traffic
 * to disk in the standard format (openable with tcpdump/wireshark)
 * and read it back. Used to audit what the HLB datapath actually
 * did to the frames, and as a debugging tap on any PacketSink edge.
 */

#ifndef HALSIM_NET_PCAP_HH
#define HALSIM_NET_PCAP_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "net/packet.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace halsim::net {

/**
 * Streaming pcap writer. Timestamps are the simulated clock
 * (microsecond resolution, the classic format's limit).
 */
class PcapWriter
{
  public:
    /**
     * Open @p path and emit the global header.
     * @throws std::runtime_error when the file cannot be opened
     */
    explicit PcapWriter(const std::string &path);

    /** Record @p pkt at simulated time @p now. */
    void record(const Packet &pkt, Tick now);

    /** Frames written so far. */
    std::uint64_t frames() const { return frames_; }

    /** Flush and close; implicit in the destructor. */
    void close();

    ~PcapWriter();

  private:
    std::ofstream out_;
    std::uint64_t frames_ = 0;
};

/** One frame read back from a capture. */
struct PcapRecord
{
    Tick timestamp;
    std::vector<std::uint8_t> bytes;
};

/**
 * Load an entire pcap file (classic format, any snaplen).
 * @throws std::runtime_error on malformed input
 */
std::vector<PcapRecord> readPcap(const std::string &path);

/**
 * Pass-through sink that records everything it forwards — a
 * wire tap to insert on any edge of the simulated topology.
 */
class PcapTap : public PacketSink
{
  public:
    PcapTap(EventQueue &eq, const std::string &path, PacketSink &next)
        : eq_(eq), writer_(path), next_(next)
    {}

    void
    accept(PacketPtr pkt) override
    {
        writer_.record(*pkt, eq_.now());
        next_.accept(std::move(pkt));
    }

    PcapWriter &writer() { return writer_; }

  private:
    EventQueue &eq_;
    PcapWriter writer_;
    PacketSink &next_;
};

} // namespace halsim::net

#endif // HALSIM_NET_PCAP_HH
