/**
 * @file
 * Link- and network-layer address types (Ethernet MAC, IPv4).
 */

#ifndef HALSIM_NET_ADDR_HH
#define HALSIM_NET_ADDR_HH

#include <array>
#include <cstdint>
#include <string>

namespace halsim::net {

/**
 * 48-bit Ethernet MAC address, stored in wire (big-endian) order.
 */
struct MacAddr
{
    std::array<std::uint8_t, 6> bytes{};

    constexpr MacAddr() = default;

    constexpr
    MacAddr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
            std::uint8_t d, std::uint8_t e, std::uint8_t f)
        : bytes{a, b, c, d, e, f}
    {}

    /** Build from the low 48 bits of @p v (useful for tests). */
    static constexpr MacAddr
    fromUint(std::uint64_t v)
    {
        return MacAddr(static_cast<std::uint8_t>(v >> 40),
                       static_cast<std::uint8_t>(v >> 32),
                       static_cast<std::uint8_t>(v >> 24),
                       static_cast<std::uint8_t>(v >> 16),
                       static_cast<std::uint8_t>(v >> 8),
                       static_cast<std::uint8_t>(v));
    }

    constexpr std::uint64_t
    toUint() const
    {
        std::uint64_t v = 0;
        for (auto b : bytes)
            v = (v << 8) | b;
        return v;
    }

    constexpr bool
    operator==(const MacAddr &o) const
    {
        return bytes == o.bytes;
    }

    /** "aa:bb:cc:dd:ee:ff" rendering. */
    std::string toString() const;

    static constexpr MacAddr
    broadcast()
    {
        return MacAddr(0xff, 0xff, 0xff, 0xff, 0xff, 0xff);
    }
};

/**
 * IPv4 address held as a host-order 32-bit integer; serialization to
 * wire order happens in the header codec.
 */
struct Ipv4Addr
{
    std::uint32_t value = 0;

    constexpr Ipv4Addr() = default;
    constexpr explicit Ipv4Addr(std::uint32_t v) : value(v) {}

    constexpr
    Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
        : value((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                (std::uint32_t{c} << 8) | d)
    {}

    constexpr bool
    operator==(const Ipv4Addr &o) const
    {
        return value == o.value;
    }

    /** Dotted-quad rendering. */
    std::string toString() const;
};

} // namespace halsim::net

#endif // HALSIM_NET_ADDR_HH
