/**
 * @file
 * Big-endian (network byte order) load/store helpers.
 */

#ifndef HALSIM_NET_BYTES_HH
#define HALSIM_NET_BYTES_HH

#include <cstdint>

namespace halsim::net {

inline std::uint16_t
load16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}

inline std::uint32_t
load32(const std::uint8_t *p)
{
    return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
           (std::uint32_t{p[2]} << 8) | p[3];
}

inline std::uint64_t
load64(const std::uint8_t *p)
{
    return (std::uint64_t{load32(p)} << 32) | load32(p + 4);
}

inline void
store16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v);
}

inline void
store32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

inline void
store64(std::uint8_t *p, std::uint64_t v)
{
    store32(p, static_cast<std::uint32_t>(v >> 32));
    store32(p + 4, static_cast<std::uint32_t>(v));
}

} // namespace halsim::net

#endif // HALSIM_NET_BYTES_HH
