#include "net/traffic.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace halsim::net {

namespace {

/**
 * Mean of min(exp(N(mu, sigma)), cap) by direct integration on a
 * fine grid of the standard normal. Used only for reporting, so the
 * simple midpoint rule over +-10 sigma is plenty.
 */
double
truncatedLognormalMean(double mu, double sigma, double cap)
{
    const int n = 20000;
    const double lo = -10.0, hi = 10.0;
    const double dz = (hi - lo) / n;
    double mean = 0.0;
    for (int i = 0; i < n; ++i) {
        const double z = lo + (i + 0.5) * dz;
        const double pdf =
            std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
        const double v = std::min(std::exp(mu + sigma * z), cap);
        mean += v * pdf * dz;
    }
    return mean;
}

} // namespace

LognormalRate::LognormalRate(double mu, double sigma, double cap_gbps,
                             std::string label)
    : mu_(mu), sigma_(sigma), cap_(cap_gbps),
      mean_(truncatedLognormalMean(mu, sigma, cap_gbps)),
      label_(std::move(label))
{}

double
LognormalRate::sample(Rng &rng)
{
    return std::min(rng.lognormal(mu_, sigma_), cap_);
}

DiurnalRate::DiurnalRate(double trough_gbps, double peak_gbps,
                         std::uint32_t period_samples)
    : trough_(trough_gbps), peak_(peak_gbps),
      period_(period_samples > 0 ? period_samples : 1),
      mean_(0.5 * (trough_gbps + peak_gbps))
{}

double
DiurnalRate::sample(Rng &)
{
    // Raised cosine starting at the trough: phase 0 is "night",
    // phase period/2 is "midday". The mean of the raised cosine over
    // a full period is exactly (trough + peak) / 2.
    const double theta =
        2.0 * M_PI * static_cast<double>(phase_) / period_;
    phase_ = phase_ + 1 == period_ ? 0 : phase_ + 1;
    const double depth = 0.5 * (1.0 - std::cos(theta));
    return trough_ + (peak_ - trough_) * depth;
}

BurstRate::BurstRate(double base_gbps, double burst_gbps,
                     std::uint32_t period_samples,
                     std::uint32_t burst_samples)
    : base_(base_gbps), burst_(burst_gbps),
      period_(period_samples > 0 ? period_samples : 1),
      burstLen_(std::min(burst_samples, period_)),
      mean_(base_gbps +
            (burst_gbps - base_gbps) * static_cast<double>(burstLen_) /
                period_)
{}

double
BurstRate::sample(Rng &)
{
    const bool bursting = phase_ < burstLen_;
    phase_ = phase_ + 1 == period_ ? 0 : phase_ + 1;
    return bursting ? burst_ : base_;
}

const char *
traceName(TraceKind k)
{
    switch (k) {
      case TraceKind::Web: return "web";
      case TraceKind::Cache: return "cache";
      case TraceKind::Hadoop: return "hadoop";
    }
    return "?";
}

std::unique_ptr<RateProcess>
makeTrace(TraceKind kind, double line_rate_gbps)
{
    // (mu, sigma) from Fig. 8 of the paper.
    switch (kind) {
      case TraceKind::Web:
        return std::make_unique<LognormalRate>(-1.37, 1.97, line_rate_gbps,
                                               "web");
      case TraceKind::Cache:
        return std::make_unique<LognormalRate>(-9.0, 7.55, line_rate_gbps,
                                               "cache");
      case TraceKind::Hadoop:
        return std::make_unique<LognormalRate>(-4.18, 6.56, line_rate_gbps,
                                               "hadoop");
    }
    return nullptr;
}

TrafficGenerator::TrafficGenerator(EventQueue &eq, Config cfg,
                                   std::unique_ptr<RateProcess> rate,
                                   PacketSink &sink)
    : eq_(eq), cfg_(std::move(cfg)), rate_(std::move(rate)), sink_(sink),
      rng_(cfg_.seed)
{
    assert(rate_ != nullptr);
    assert(cfg_.frame_bytes >= kFrameHeaderLen);
    emitEvent_.setCallback([this] { emitOne(); });
    resampleEvent_.setCallback([this] { resample(); });
}

TrafficGenerator::~TrafficGenerator()
{
    stop();
}

void
TrafficGenerator::start(Tick until)
{
    until_ = until;
    resample();
    if (!emitEvent_.scheduled())
        eq_.scheduleIn(&emitEvent_, 0);
}

void
TrafficGenerator::stop()
{
    if (emitEvent_.scheduled())
        eq_.deschedule(&emitEvent_);
    if (resampleEvent_.scheduled())
        eq_.deschedule(&resampleEvent_);
}

void
TrafficGenerator::resample()
{
    rateGbps_ = std::max(rate_->sample(rng_), cfg_.min_rate_gbps);
    offered_.sample(rateGbps_);
    if (eq_.now() + cfg_.resample_epoch <= until_)
        eq_.scheduleIn(&resampleEvent_, cfg_.resample_epoch);
}

void
TrafficGenerator::emitOne()
{
    const Tick now = eq_.now();
    if (now >= until_)
        return;

    static constexpr std::uint8_t kEmpty[1] = {0};
    auto pkt = makeUdpPacket(cfg_.endpoints.src_mac, cfg_.endpoints.dst_mac,
                             cfg_.endpoints.src_ip, cfg_.endpoints.dst_ip,
                             cfg_.endpoints.src_port, cfg_.endpoints.dst_port,
                             std::span<const std::uint8_t>(kEmpty, 0),
                             cfg_.frame_bytes);
    pkt->id = nextId_++;
    pkt->clientTx = now;
    pkt->flowHash = static_cast<std::uint32_t>(rng_.next());
    pkt->clientMac = cfg_.endpoints.src_mac;
    pkt->clientIp = cfg_.endpoints.src_ip;
    pkt->clientPort = cfg_.endpoints.src_port;
    if (payloadFn_)
        payloadFn_(*pkt);

    sentBytes_ += pkt->size();
    ++sentFrames_;
    sink_.accept(std::move(pkt));

    const Tick gap = transferTicks(cfg_.frame_bytes, rateGbps_);
    const Tick next = now + std::max<Tick>(gap, 1);
    if (next < until_)
        eq_.schedule(&emitEvent_, next);
}

} // namespace halsim::net
