/**
 * @file
 * Cross-wheel packet edge for time-parallel runs (DESIGN.md §13).
 *
 * A WheelEdge replaces the local TimedChannel delivery of one
 * directed component-to-component hop when sender and receiver live
 * on different event wheels. The sender reserves the key on its own
 * queue at the send point — exactly where the local path would have —
 * so merged same-tick work keeps the fixed (tick, band, seq) order
 * that makes --run-threads 1 and N bit-identical. Entries ride an
 * SPSC mailbox to the receiving wheel, which drains them into an
 * ordinary TimedChannel during the window-barrier ingest step.
 */

#ifndef HALSIM_NET_WHEEL_EDGE_HH
#define HALSIM_NET_WHEEL_EDGE_HH

#include <cstdint>

#include "net/packet.hh"
#include "net/timed_channel.hh"
#include "sim/event_queue.hh"
#include "sim/mailbox.hh"
#include "sim/types.hh"

namespace halsim::net {

class WheelEdge : public DeliveryEdge, private TimedChannel::Receiver
{
  public:
    /**
     * @param sender_eq the sending wheel's queue (keys + band).
     * @param rx_eq     the receiving wheel's queue.
     * @param sink      delivery target on the receiving wheel.
     */
    WheelEdge(EventQueue &sender_eq, EventQueue &rx_eq,
              PacketSink &sink, const char *name)
        : senderEq_(sender_eq), sink_(sink), chan_(rx_eq, *this, name)
    {}

    ~WheelEdge() override
    {
        Slot s;
        while (box_.pop(s))
            delete s.pkt;
    }

    /** Sender side (sender's thread, inside a window). */
    void
    send(Tick when, PacketPtr pkt) override
    {
        // halint: mailbox
        box_.push(Slot{when, senderEq_.reserveKey(), pkt.release()});
    }

    /**
     * Receiver side (between windows): move everything scheduled to
     * arrive before @p before into the receiving wheel's channel.
     */
    void
    ingest(Tick before)
    {
        // halint: mailbox
        for (;;) {
            const Slot *head = box_.peek();
            if (head == nullptr || head->when >= before)
                return;
            Slot s;
            box_.pop(s);
            chan_.pushKeyed(s.when, s.key, PacketPtr(s.pkt));
        }
    }

    /** Earliest un-ingested arrival, or kTickNever (receiver side). */
    Tick
    pendingTick() const
    {
        // halint: mailbox
        const Slot *head = box_.peek();
        return head != nullptr ? head->when : kTickNever;
    }

  private:
    struct Slot
    {
        Tick when = 0;
        std::uint64_t key = 0;
        Packet *pkt = nullptr;
    };

    void
    channelDeliver(PacketPtr pkt) override
    {
        sink_.accept(std::move(pkt));
    }

    EventQueue &senderEq_;
    PacketSink &sink_;
    TimedChannel chan_;
    SpscMailbox<Slot> box_;
};

} // namespace halsim::net

#endif // HALSIM_NET_WHEEL_EDGE_HH
