/**
 * @file
 * TimedChannel: a keyed FIFO of timed packet deliveries that keeps
 * only its head in the event heap.
 *
 * The hot pipeline stages (link propagation, fixed path delays) all
 * schedule deliveries in nondecreasing time order. Before this
 * existed, each delivery was its own one-shot heap entry; now a stage
 * pushes into its channel, the channel holds one intrusive event for
 * the head, and each entry re-arms the next on execution.
 *
 * Order is preserved *exactly*: push() reserves the queue's next key
 * at the call site, so every entry occupies the same slot in the
 * (tick, key) total order it would have had as an individual
 * schedule() — results are bit-identical to the per-event engine.
 * When batching is enabled the channel additionally drains successor
 * entries in place while they provably precede the earliest heap
 * entry (EventQueue::canRunInline re-checked after every delivery),
 * skipping their heap round-trips entirely.
 */

#ifndef HALSIM_NET_TIMED_CHANNEL_HH
#define HALSIM_NET_TIMED_CHANNEL_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "net/packet.hh"
#include "sim/event_queue.hh"

namespace halsim::net {

/**
 * Egress interface for the time-parallel mode: a pipeline stage whose
 * successor lives on another event wheel hands (delivery tick, packet)
 * to an edge instead of its local channel. Implemented by WheelEdge.
 */
class DeliveryEdge
{
  public:
    virtual ~DeliveryEdge() = default;

    /** Queue @p pkt for delivery at @p when on the far wheel. */
    virtual void send(Tick when, PacketPtr pkt) = 0;
};

class TimedChannel : public Event
{
  public:
    /** Delivery target; kept separate from PacketSink so a stage can
     *  run bookkeeping (queue counters) before forwarding. */
    class Receiver
    {
      public:
        virtual void channelDeliver(PacketPtr pkt) = 0;

      protected:
        ~Receiver() = default;
    };

    TimedChannel(EventQueue &eq, Receiver &rx, const char *name = "chan")
        : Event(name), eq_(eq), rx_(rx)
    {}

    ~TimedChannel() override
    {
        if (scheduled())
            eq_.deschedule(this);
        while (count_ != 0)
            delete popFront().pkt;
    }

    /** Append a delivery at @p when, reserving its order slot now.
     *  @pre when >= eq.now() and nondecreasing per channel. */
    // halint: hotpath
    void
    push(Tick when, PacketPtr pkt)
    {
        pushKeyed(when, eq_.reserveKey(), std::move(pkt));
    }

    /** Append a delivery under an externally reserved key (cross-
     *  wheel ingest keeps the sender's reservation). */
    // halint: hotpath
    void
    pushKeyed(Tick when, std::uint64_t key, PacketPtr pkt)
    {
        assert(when >= eq_.now() && "channel delivery in the past");
        assert((count_ == 0 || back().when <= when) &&
               "channel pushes must be time-ordered");
        const bool arm = count_ == 0 && !draining_;
        append(Slot{when, key, pkt.release()});
        if (arm)
            eq_.scheduleKeyed(this, when, key);
    }

    /** Entries waiting for delivery (including the armed head). */
    std::size_t pending() const { return count_; }

    // halint: hotpath
    void
    execute() override
    {
        // The popped head executes under the heap's clock; successors
        // run inline only while (when, key) provably precedes every
        // heap entry, re-checked after each delivery because a
        // delivery may schedule new events.
        draining_ = true;
        Slot s = popFront();
        for (;;) {
            rx_.channelDeliver(PacketPtr(s.pkt));
            if (count_ == 0) {
                draining_ = false;
                return;
            }
            const Slot next = front();
            if (!eq_.canRunInline(next.when, next.key))
                break;
            eq_.advanceInline(next.when);
            s = popFront();
        }
        draining_ = false;
        const Slot head = front();
        eq_.scheduleKeyed(this, head.when, head.key);
    }

  private:
    struct Slot
    {
        Tick when;
        std::uint64_t key;
        Packet *pkt;
    };

    Slot &at(std::size_t i) { return ring_[(head_ + i) & mask()]; }
    std::size_t mask() const { return ring_.size() - 1; }
    Slot front() { return ring_[head_]; }
    Slot back() { return at(count_ - 1); }

    // halint: hotpath
    void
    append(Slot s)
    {
        if (count_ == ring_.size())
            grow();
        at(count_) = s;
        ++count_;
    }

    // halint: hotpath
    Slot
    popFront()
    {
        Slot s = ring_[head_];
        head_ = (head_ + 1) & mask();
        --count_;
        return s;
    }

    void
    grow()
    {
        // halint: allow(HAL-W004) doubling cold path; capacity
        // settles after warmup like the heap's
        const std::size_t cap = ring_.empty() ? 8 : ring_.size() * 2;
        std::vector<Slot> next(cap);
        for (std::size_t i = 0; i < count_; ++i)
            next[i] = at(i);
        ring_ = std::move(next);
        head_ = 0;
    }

    EventQueue &eq_;
    Receiver &rx_;
    std::vector<Slot> ring_;   //!< power-of-two circular buffer
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    bool draining_ = false;
};

} // namespace halsim::net

#endif // HALSIM_NET_TIMED_CHANNEL_HH
