/**
 * @file
 * The Packet: a real Ethernet/IPv4/UDP frame plus simulation metadata.
 *
 * Every packet in the simulator carries genuine wire bytes. The HAL
 * datapath (traffic director/merger) rewrites addresses and fixes
 * checksums on those bytes exactly as the FPGA would, and the network
 * functions parse their requests out of the UDP payload, so packet
 * handling is functionally real even though timing is modeled.
 */

#ifndef HALSIM_NET_PACKET_HH
#define HALSIM_NET_PACKET_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/addr.hh"
#include "net/bytes.hh"
#include "net/checksum.hh"
#include "sim/types.hh"

namespace halsim::net {

/** Fixed header sizes for the frame layout we use everywhere. */
inline constexpr std::size_t kEthHeaderLen = 14;
inline constexpr std::size_t kIpv4HeaderLen = 20;   //!< no options
inline constexpr std::size_t kUdpHeaderLen = 8;
inline constexpr std::size_t kFrameHeaderLen =
    kEthHeaderLen + kIpv4HeaderLen + kUdpHeaderLen;

/** EtherType for IPv4. */
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
/** IPv4 protocol number for UDP. */
inline constexpr std::uint8_t kIpProtoUdp = 17;

/** Dominant datacenter packet sizes used throughout the paper. */
inline constexpr std::size_t kMtuFrameBytes = 1500;
inline constexpr std::size_t kSmallFrameBytes = 64;

/** Where a packet was ultimately processed (for stats breakdowns). */
enum class Processor : std::uint8_t
{
    None,
    SnicCpu,
    SnicAccel,
    HostCpu,
    HostAccel,
};

/** Human-readable processor name. */
const char *processorName(Processor p);

/**
 * Mutable view over the Ethernet header of a frame buffer.
 */
class EthView
{
  public:
    explicit EthView(std::uint8_t *base) : b_(base) {}

    MacAddr
    dst() const
    {
        MacAddr m;
        for (int i = 0; i < 6; ++i)
            m.bytes[i] = b_[i];
        return m;
    }

    MacAddr
    src() const
    {
        MacAddr m;
        for (int i = 0; i < 6; ++i)
            m.bytes[i] = b_[6 + i];
        return m;
    }

    std::uint16_t etherType() const { return load16(b_ + 12); }

    void
    setDst(const MacAddr &m)
    {
        for (int i = 0; i < 6; ++i)
            b_[i] = m.bytes[i];
    }

    void
    setSrc(const MacAddr &m)
    {
        for (int i = 0; i < 6; ++i)
            b_[6 + i] = m.bytes[i];
    }

    void setEtherType(std::uint16_t t) { store16(b_ + 12, t); }

  private:
    std::uint8_t *b_;
};

/**
 * Mutable view over a 20-byte (option-less) IPv4 header.
 */
class Ipv4View
{
  public:
    explicit Ipv4View(std::uint8_t *base) : b_(base) {}

    std::uint8_t versionIhl() const { return b_[0]; }
    std::uint16_t totalLength() const { return load16(b_ + 2); }
    std::uint8_t ttl() const { return b_[8]; }
    std::uint8_t protocol() const { return b_[9]; }
    std::uint16_t headerChecksum() const { return load16(b_ + 10); }
    Ipv4Addr src() const { return Ipv4Addr(load32(b_ + 12)); }
    Ipv4Addr dst() const { return Ipv4Addr(load32(b_ + 16)); }

    void setVersionIhl(std::uint8_t v) { b_[0] = v; }
    void setTotalLength(std::uint16_t v) { store16(b_ + 2, v); }
    void setTtl(std::uint8_t v) { b_[8] = v; }
    void setProtocol(std::uint8_t v) { b_[9] = v; }
    void setHeaderChecksum(std::uint16_t v) { store16(b_ + 10, v); }
    void setSrcRaw(Ipv4Addr a) { store32(b_ + 12, a.value); }
    void setDstRaw(Ipv4Addr a) { store32(b_ + 16, a.value); }

    /** Recompute and store the header checksum from scratch. */
    void
    fillChecksum()
    {
        setHeaderChecksum(0);
        setHeaderChecksum(internetChecksum(b_, kIpv4HeaderLen));
    }

    /** True when the stored checksum verifies (sum == 0xffff). */
    bool
    checksumOk() const
    {
        return onesComplementSum(b_, kIpv4HeaderLen) == 0xffff;
    }

    /**
     * Rewrite the source address, patching the checksum
     * incrementally per RFC 1624 — the traffic-merger datapath.
     */
    void
    rewriteSrc(Ipv4Addr a)
    {
        setHeaderChecksum(
            checksumUpdate32(headerChecksum(), src().value, a.value));
        setSrcRaw(a);
    }

    /**
     * Rewrite the destination address with an incremental checksum
     * patch — the traffic-director datapath.
     */
    void
    rewriteDst(Ipv4Addr a)
    {
        setHeaderChecksum(
            checksumUpdate32(headerChecksum(), dst().value, a.value));
        setDstRaw(a);
    }

  private:
    std::uint8_t *b_;
};

/**
 * Mutable view over a UDP header.
 */
class UdpView
{
  public:
    explicit UdpView(std::uint8_t *base) : b_(base) {}

    std::uint16_t srcPort() const { return load16(b_); }
    std::uint16_t dstPort() const { return load16(b_ + 2); }
    std::uint16_t length() const { return load16(b_ + 4); }
    std::uint16_t checksum() const { return load16(b_ + 6); }

    void setSrcPort(std::uint16_t v) { store16(b_, v); }
    void setDstPort(std::uint16_t v) { store16(b_ + 2, v); }
    void setLength(std::uint16_t v) { store16(b_ + 4, v); }
    void setChecksum(std::uint16_t v) { store16(b_ + 6, v); }

  private:
    std::uint8_t *b_;
};

/**
 * A frame in flight, with the metadata the measurement harness needs.
 */
class Packet
{
  public:
    /** Construct from raw frame bytes (takes ownership). */
    explicit Packet(std::vector<std::uint8_t> frame)
        : data_(std::move(frame))
    {}

    /** Teardown retires the frame buffer to this thread's pool. */
    ~Packet();

    Packet(const Packet &) = delete;
    Packet &operator=(const Packet &) = delete;

    std::size_t size() const { return data_.size(); }
    std::uint8_t *data() { return data_.data(); }
    const std::uint8_t *data() const { return data_.data(); }

    EthView eth() { return EthView(data_.data()); }
    Ipv4View ip() { return Ipv4View(data_.data() + kEthHeaderLen); }

    UdpView
    udp()
    {
        return UdpView(data_.data() + kEthHeaderLen + kIpv4HeaderLen);
    }

    /** UDP payload bytes (request/response body). */
    std::span<std::uint8_t>
    payload()
    {
        return {data_.data() + kFrameHeaderLen,
                data_.size() - kFrameHeaderLen};
    }

    std::span<const std::uint8_t>
    payload() const
    {
        return {data_.data() + kFrameHeaderLen,
                data_.size() - kFrameHeaderLen};
    }

    /**
     * Replace the payload, adjusting IP/UDP lengths and the IP
     * checksum. Used when a function's response differs in size from
     * the request.
     */
    void resizePayload(std::size_t n);

    // --- Simulation metadata (not wire bytes) -------------------------

    std::uint64_t id = 0;            //!< unique per generated request
    Tick clientTx = 0;               //!< when the client sent it
    Tick serverRx = 0;               //!< when the server NIC got it
    Processor processedBy = Processor::None;
    bool isResponse = false;
    bool directedToHost = false;     //!< HLB rewrote this one
    std::uint32_t flowHash = 0;      //!< RSS queue selection input

    /** Reply-to addressing recorded at generation time, so response
     *  construction does not depend on how a function mangled the
     *  request headers. */
    MacAddr clientMac;
    Ipv4Addr clientIp;
    std::uint16_t clientPort = 0;

  private:
    std::vector<std::uint8_t> data_;
};

using PacketPtr = std::unique_ptr<Packet>;

/**
 * Build a UDP frame with the given addressing and payload, all
 * checksums filled in. @p frame_bytes pads/truncates the final frame
 * to the requested wire size (>= headers + payload is padded with
 * zeros; smaller is an error).
 */
PacketPtr makeUdpPacket(const MacAddr &src_mac, const MacAddr &dst_mac,
                        Ipv4Addr src_ip, Ipv4Addr dst_ip,
                        std::uint16_t src_port, std::uint16_t dst_port,
                        std::span<const std::uint8_t> payload,
                        std::size_t frame_bytes = 0);

class PacketBatch;

/**
 * One-stop receiver interface: anything that can accept a packet at
 * the current simulated time (switch ports, queues, sinks).
 */
class PacketSink
{
  public:
    virtual ~PacketSink() = default;

    /** Deliver @p pkt; implementations may drop (and count) it. */
    virtual void accept(PacketPtr pkt) = 0;

    /**
     * Deliver a burst. The default forwards front-to-back through
     * accept(), so every sink handles batches; hot stages override it
     * to run their per-packet logic in a devirtualized loop. Any
     * override must be observably identical to the per-packet path —
     * batching amortizes dispatch, it never reorders or merges
     * side effects (see DESIGN.md §13).
     */
    virtual void acceptBatch(PacketBatch &&batch);
};

} // namespace halsim::net

#endif // HALSIM_NET_PACKET_HH
