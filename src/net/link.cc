#include "net/link.hh"

#include <algorithm>
#include <utility>

#include "sim/rng.hh"

namespace halsim::net {

// halint: hotpath
void
Link::send(PacketPtr pkt)
{
    const Tick now = eq_.now();
    if (edge_ != nullptr) {
        // Cross-wheel egress: deliveries happen on the far wheel, so
        // reap every slot whose delivery tick has passed before the
        // tail-drop decision below — queued_ is then exactly what the
        // local delivery path would report at this tick.
        while (!pendingDeliver_.empty() &&
               pendingDeliver_.front() <= now) {
            pendingDeliver_.pop_front();
            --queued_;
        }
    }
    if (faultRng_ != nullptr) {
        // Injected impairment: the frame enters the wire but never
        // reaches the far end (burst loss) or arrives mangled and is
        // discarded by the receiver's CRC check. Either way the
        // sender's Tx FIFO accounting is untouched.
        if (lossProb_ > 0.0 && faultRng_->chance(lossProb_)) {
            ++faultLost_;
            obs::tracePacket(trace_, now, pkt->id,
                             obs::TracePoint::Drop, traceLane_);
            return;
        }
        if (corruptProb_ > 0.0 && faultRng_->chance(corruptProb_)) {
            ++corrupted_;
            obs::tracePacket(trace_, now, pkt->id,
                             obs::TracePoint::Drop, traceLane_);
            return;
        }
    }
    if (queued_ >= cfg_.max_queue) {
        ++drops_;
        obs::tracePacket(trace_, now, pkt->id, obs::TracePoint::Drop,
                         traceLane_, queued_);
        return;
    }

    const Tick start = std::max(busyUntil_, now);
    const Tick ser = transferTicks(pkt->size(), cfg_.rate_gbps);
    busyUntil_ = start + ser;
    const Tick deliver = busyUntil_ + cfg_.propagation;

    ++queued_;
    deliveredBytes_ += pkt->size();
    ++deliveredFrames_;
    obs::tracePacket(trace_, now, pkt->id, tracePoint_, traceLane_);

    // Hand ownership to the delivery channel (or, in time-parallel
    // mode, to the cross-wheel edge).
    if (edge_ != nullptr) {
        // halint: allow(HAL-W004) cross-wheel mode only; deque chunk
        pendingDeliver_.push_back(deliver); // allocs amortize away
        edge_->send(deliver, std::move(pkt));
        return;
    }
    chan_.push(deliver, std::move(pkt));
}

} // namespace halsim::net
