/**
 * @file
 * Internet checksum (RFC 1071) and incremental update (RFC 1624).
 *
 * The HAL traffic director and merger rewrite IP addresses in flight
 * and must fix the IPv4 header checksum without touching the rest of
 * the packet; RFC 1624's HC' = ~(~HC + ~m + m') is exactly what the
 * FPGA datapath does, so we implement and test it against a full
 * recompute.
 */

#ifndef HALSIM_NET_CHECKSUM_HH
#define HALSIM_NET_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace halsim::net {

/**
 * One's-complement sum of 16-bit big-endian words over @p len bytes.
 * An odd trailing byte is padded with zero, per RFC 1071.
 * @return the folded 16-bit sum (not complemented).
 */
std::uint16_t onesComplementSum(const std::uint8_t *data, std::size_t len);

/**
 * Full internet checksum: complement of the one's-complement sum.
 */
std::uint16_t internetChecksum(const std::uint8_t *data, std::size_t len);

/**
 * Incrementally update checksum @p hc when a 16-bit field changes
 * from @p old_word to @p new_word (RFC 1624 equation 3).
 */
std::uint16_t checksumUpdate16(std::uint16_t hc, std::uint16_t old_word,
                               std::uint16_t new_word);

/**
 * Incrementally update checksum @p hc for a 32-bit field change
 * (e.g. an IPv4 address rewrite), applying RFC 1624 per half.
 */
std::uint16_t checksumUpdate32(std::uint16_t hc, std::uint32_t old_val,
                               std::uint32_t new_val);

} // namespace halsim::net

#endif // HALSIM_NET_CHECKSUM_HH
