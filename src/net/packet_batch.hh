/**
 * @file
 * PacketBatch: a fixed-capacity burst of packets moved through the
 * pipeline as one unit (the fastclick batchelement model).
 *
 * Layout is SoA: the packet pointers and their wire sizes live in
 * separate parallel arrays, so batch-level accounting (byte sums,
 * size histograms) touches one dense array instead of chasing every
 * Packet. Entries occupy [head, tail) of the arrays; draining from
 * the front advances the head cursor, so a stage consuming a batch
 * in order pays O(1) per packet. Ownership is strict: a batch owns
 * what it holds, entries leave via take()/takeFront()/split(), and
 * whatever remains is freed on destruction.
 */

#ifndef HALSIM_NET_PACKET_BATCH_HH
#define HALSIM_NET_PACKET_BATCH_HH

#include <cassert>
#include <cstdint>
#include <span>

#include "net/packet.hh"

namespace halsim::net {

class PacketBatch
{
  public:
    static constexpr std::size_t kCapacity = 64;

    PacketBatch() = default;

    ~PacketBatch()
    {
        for (std::size_t i = head_; i < tail_; ++i)
            delete pkts_[i];
    }

    PacketBatch(PacketBatch &&o) noexcept { steal(o); }

    PacketBatch &
    operator=(PacketBatch &&o) noexcept
    {
        if (this != &o) {
            for (std::size_t i = head_; i < tail_; ++i)
                delete pkts_[i];
            steal(o);
        }
        return *this;
    }

    PacketBatch(const PacketBatch &) = delete;
    PacketBatch &operator=(const PacketBatch &) = delete;

    std::size_t size() const { return tail_ - head_; }
    bool empty() const { return head_ == tail_; }
    bool full() const { return tail_ == kCapacity; }

    /** Append; the batch takes ownership. @pre !full() */
    void
    append(PacketPtr pkt)
    {
        assert(!full());
        sizes_[tail_] = static_cast<std::uint32_t>(pkt->size());
        pkts_[tail_] = pkt.release();
        ++tail_;
    }

    /** Borrow entry @p i (still owned by the batch). */
    Packet *
    operator[](std::size_t i) const
    {
        assert(i < size());
        return pkts_[head_ + i];
    }

    /** Wire size of entry @p i without touching the Packet. */
    std::uint32_t
    sizeOf(std::size_t i) const
    {
        assert(i < size());
        return sizes_[head_ + i];
    }

    /** Sum of wire sizes (one dense-array pass — the SoA payoff). */
    std::uint64_t
    totalBytes() const
    {
        std::uint64_t sum = 0;
        for (std::size_t i = head_; i < tail_; ++i)
            sum += sizes_[i];
        return sum;
    }

    /** Remove and return the first entry, preserving order; O(1). */
    PacketPtr
    takeFront()
    {
        assert(!empty());
        return PacketPtr(pkts_[head_++]);
    }

    /**
     * Remove and return entry @p i, swapping the last entry into its
     * slot (order-preserving only at the ends).
     */
    PacketPtr
    take(std::size_t i)
    {
        assert(i < size());
        Packet *p = pkts_[head_ + i];
        --tail_;
        pkts_[head_ + i] = pkts_[tail_];
        sizes_[head_ + i] = sizes_[tail_];
        return PacketPtr(p);
    }

    /**
     * Split off the tail [at, size()) into a new batch, keeping
     * [0, at) here; order is preserved on both sides.
     */
    PacketBatch
    split(std::size_t at)
    {
        assert(at <= size());
        PacketBatch rest;
        for (std::size_t i = head_ + at; i < tail_; ++i) {
            rest.pkts_[rest.tail_] = pkts_[i];
            rest.sizes_[rest.tail_] = sizes_[i];
            ++rest.tail_;
        }
        tail_ = head_ + at;
        return rest;
    }

    /**
     * Append all of @p other (emptied) after this batch's entries.
     * @pre size() + other.size() <= remaining capacity
     */
    void
    merge(PacketBatch &&other)
    {
        assert(tail_ + other.size() <= kCapacity);
        for (std::size_t i = other.head_; i < other.tail_; ++i) {
            pkts_[tail_] = other.pkts_[i];
            sizes_[tail_] = other.sizes_[i];
            ++tail_;
        }
        other.head_ = other.tail_ = 0;
    }

    /** SoA views over the live entries, for vectorizable passes. */
    std::span<Packet *const>
    packets() const
    {
        return {pkts_ + head_, size()};
    }

    std::span<const std::uint32_t>
    sizes() const
    {
        return {sizes_ + head_, size()};
    }

  private:
    void
    steal(PacketBatch &o) noexcept
    {
        head_ = o.head_;
        tail_ = o.tail_;
        for (std::size_t i = head_; i < tail_; ++i) {
            pkts_[i] = o.pkts_[i];
            sizes_[i] = o.sizes_[i];
        }
        o.head_ = o.tail_ = 0;
    }

    Packet *pkts_[kCapacity];
    std::uint32_t sizes_[kCapacity];
    std::size_t head_ = 0;
    std::size_t tail_ = 0;
};

} // namespace halsim::net

#endif // HALSIM_NET_PACKET_BATCH_HH
