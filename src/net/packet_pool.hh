/**
 * @file
 * Thread-local recycling pool for packet frame buffers.
 *
 * Steady-state traffic generation churns through millions of frames;
 * without recycling, every makeUdpPacket() heap-allocates a frame
 * buffer and every packet teardown frees one. The pool keeps retired
 * buffers (capacity intact) and hands them back zeroed, so the fast
 * path settles into zero frame allocations.
 *
 * The pool is thread-local: each sweep worker owns a private
 * freelist, so parallel operating points never contend or share
 * buffers. Recycling reuses whole std::vector objects — never raw
 * memory — so ASan/UBSan observe ordinary container semantics and
 * need no annotations. Pooling is observationally pure: a recycled
 * buffer is indistinguishable from a fresh zeroed one, which
 * test_determinism verifies by bit-comparing runs with the pool on
 * and off.
 */

#ifndef HALSIM_NET_PACKET_POOL_HH
#define HALSIM_NET_PACKET_POOL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace halsim::net {

class PacketPool
{
  public:
    /** This thread's pool (created on first use). */
    static PacketPool &local();

    /** A zero-filled buffer of exactly @p n bytes. */
    std::vector<std::uint8_t> acquire(std::size_t n);

    /** Retire a frame buffer, keeping its capacity for reuse. */
    void release(std::vector<std::uint8_t> buf);

    /**
     * Toggle recycling (for determinism A/B tests). Disabling drops
     * all pooled buffers; acquire/release degrade to plain
     * allocate/free.
     */
    void setEnabled(bool on);

    bool enabled() const { return enabled_; }

    /** Buffers currently held for reuse. */
    std::size_t pooled() const { return free_.size(); }

    /** acquire() calls served from the freelist. */
    std::uint64_t hits() const { return hits_; }

    /** acquire() calls that had to allocate. */
    std::uint64_t misses() const { return misses_; }

    /** Drop every pooled buffer (stats are kept). */
    void clear();

  private:
    /** Don't hoard more than this many retired buffers... */
    static constexpr std::size_t kMaxPooled = 8192;
    /** ...or buffers grown beyond this capacity (jumbo outliers). */
    static constexpr std::size_t kMaxKeepCapacity = 64 * 1024;

    std::vector<std::vector<std::uint8_t>> free_;
    bool enabled_ = true;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace halsim::net

#endif // HALSIM_NET_PACKET_POOL_HH
