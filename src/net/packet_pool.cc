#include "net/packet_pool.hh"

namespace halsim::net {

PacketPool &
PacketPool::local()
{
    thread_local PacketPool pool;
    return pool;
}

// halint: hotpath
std::vector<std::uint8_t>
PacketPool::acquire(std::size_t n)
{
    if (enabled_ && !free_.empty()) {
        std::vector<std::uint8_t> buf = std::move(free_.back());
        free_.pop_back();
        ++hits_;
        // assign() zero-fills without reallocating while n fits the
        // retained capacity, making a recycled buffer bit-identical
        // to a fresh vector(n, 0).
        buf.assign(n, 0);
        return buf;
    }
    ++misses_;
    return std::vector<std::uint8_t>(n, 0);
}

// halint: hotpath
void
PacketPool::release(std::vector<std::uint8_t> buf)
{
    if (!enabled_ || free_.size() >= kMaxPooled ||
        buf.capacity() == 0 || buf.capacity() > kMaxKeepCapacity) {
        return;   // let it free normally
    }
    // halint: allow(HAL-W004) freelist push, bounded by kMaxPooled;
    free_.push_back(std::move(buf)); // reuses capacity after warmup
}

void
PacketPool::setEnabled(bool on)
{
    enabled_ = on;
    if (!enabled_)
        clear();
}

void
PacketPool::clear()
{
    free_.clear();
    free_.shrink_to_fit();
}

} // namespace halsim::net
