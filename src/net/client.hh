/**
 * @file
 * Client endpoint: terminates response packets and measures
 * end-to-end latency and delivered throughput, like the paper's
 * ConnectX-6 Dx load-generator machine.
 */

#ifndef HALSIM_NET_CLIENT_HH
#define HALSIM_NET_CLIENT_HH

#include <array>
#include <cstdint>

#include "net/packet.hh"
#include "obs/slo.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace halsim::net {

/**
 * Client-side hardening knobs: per-attempt response timeout, bounded
 * retries, and capped exponential backoff. Shared by any client that
 * retransmits (the fleet client today); kept next to Client so the
 * request/response contract lives in one header.
 *
 * A retried request keeps its original id, so a late original and
 * the retried copy are recognized as duplicates by the receiver and
 * never double-counted.
 */
struct RetryPolicy
{
    /** Per-attempt response timeout; 0 disables retry machinery. */
    Tick timeout = 2 * kMs;
    /** Retransmissions allowed after the first attempt. */
    unsigned max_retries = 3;
    /** Delay before the first retransmission. */
    Tick backoff_base = 500 * kUs;
    /** Exponential backoff saturates here. */
    Tick backoff_cap = 8 * kMs;

    bool enabled() const { return timeout > 0; }

    /** Backoff before retransmission number @p retry (0-based):
     *  base * 2^retry, capped. */
    Tick
    backoffFor(unsigned retry) const
    {
        Tick d = backoff_base;
        for (unsigned i = 0; i < retry && d < backoff_cap; ++i)
            d *= 2;
        return d < backoff_cap ? d : backoff_cap;
    }
};

/**
 * Receives response frames, attributing latency against the request
 * timestamp carried in packet metadata. Statistics can be reset at a
 * warmup boundary so measurements exclude cold-start transients.
 */
// halint: band(client) client wheel owns latency/throughput tallies
class Client : public PacketSink
{
  public:
    explicit Client(EventQueue &eq) : eq_(eq) {}

    void
    accept(PacketPtr pkt) override
    {
        const Tick now = eq_.now();
        const Tick lat = now - pkt->clientTx;
        latency_.sample(static_cast<double>(lat));
        obs::sloRecord(slo_, now, lat);
        delivered_.add(pkt->size());
        byProcessor_[static_cast<std::size_t>(pkt->processedBy)]++;
    }

    /** Attach (or detach with nullptr) the per-run SLO monitor; the
     *  client feeds it every measured end-to-end latency. */
    void setSlo(obs::SloMonitor *m) { slo_ = m; }

    /** Drop all measurements and restart the throughput window. */
    void
    resetStats()
    {
        latency_.reset();
        delivered_.resetAt(eq_.now());
        byProcessor_.fill(0);
    }

    /** End-to-end latency distribution (ticks). */
    const Histogram &latency() const { return latency_; }

    /** p99 end-to-end latency in microseconds. */
    double p99Us() const { return ticksToUs(
        static_cast<Tick>(latency_.p99())); }

    /** Mean end-to-end latency in microseconds. */
    double meanUs() const { return latency_.mean() /
        static_cast<double>(kUs); }

    /** Delivered (response) throughput since the last reset, Gbps. */
    double deliveredGbps() const { return delivered_.gbpsAt(eq_.now()); }

    std::uint64_t responses() const { return latency_.count(); }

    /** Responses broken down by which processor handled them. */
    std::uint64_t
    responsesFrom(Processor p) const
    {
        return byProcessor_[static_cast<std::size_t>(p)];
    }

  private:
    EventQueue &eq_;
    obs::SloMonitor *slo_ = nullptr;
    Histogram latency_;
    RateMeter delivered_;
    std::array<std::uint64_t, 5> byProcessor_{};
};

} // namespace halsim::net

#endif // HALSIM_NET_CLIENT_HH
