/**
 * @file
 * Point-to-point link model: serialization at line rate, fixed
 * propagation delay, FIFO contention, bounded transmit queue.
 *
 * Used for the client<->server Ethernet cable, the FPGA<->SNIC cable,
 * and (with different constants) the PCIe and UPI hops inside the
 * server.
 */

#ifndef HALSIM_NET_LINK_HH
#define HALSIM_NET_LINK_HH

#include <cstdint>
#include <string>

#include "net/packet.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace halsim::net {

/**
 * Unidirectional link. Packets serialize back-to-back at the line
 * rate; each is delivered to the sink after serialization plus
 * propagation. When the backlog waiting to serialize exceeds the
 * configured budget the link tail-drops, modeling a bounded Tx FIFO.
 */
class Link : public PacketSink
{
  public:
    struct Config
    {
        double rate_gbps = 100.0;       //!< serialization rate
        Tick propagation = 500 * kNs;   //!< cable/interconnect latency
        std::uint32_t max_queue = 4096; //!< max packets queued for Tx
        std::string name = "link";
    };

    Link(EventQueue &eq, Config cfg, PacketSink &sink)
        : eq_(eq), cfg_(std::move(cfg)), sink_(sink)
    {}

    /** Offer a packet to the link; may tail-drop. */
    void send(PacketPtr pkt);

    /** PacketSink interface: same as send(). */
    void accept(PacketPtr pkt) override { send(std::move(pkt)); }

    /** Packets dropped at the Tx FIFO. */
    std::uint64_t drops() const { return drops_; }

    /** Bytes successfully delivered to the far end. */
    std::uint64_t deliveredBytes() const { return deliveredBytes_; }

    /** Frames successfully delivered to the far end. */
    std::uint64_t deliveredFrames() const { return deliveredFrames_; }

    const Config &config() const { return cfg_; }

  private:
    EventQueue &eq_;
    Config cfg_;
    PacketSink &sink_;
    Tick busyUntil_ = 0;
    std::uint32_t queued_ = 0;
    std::uint64_t drops_ = 0;
    std::uint64_t deliveredBytes_ = 0;
    std::uint64_t deliveredFrames_ = 0;
};

} // namespace halsim::net

#endif // HALSIM_NET_LINK_HH
