/**
 * @file
 * Point-to-point link model: serialization at line rate, fixed
 * propagation delay, FIFO contention, bounded transmit queue.
 *
 * Used for the client<->server Ethernet cable, the FPGA<->SNIC cable,
 * and (with different constants) the PCIe and UPI hops inside the
 * server.
 */

#ifndef HALSIM_NET_LINK_HH
#define HALSIM_NET_LINK_HH

#include <cstdint>
#include <deque>
#include <string>

#include "net/packet.hh"
#include "net/packet_batch.hh"
#include "net/timed_channel.hh"
#include "obs/hooks.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace halsim {
class Rng;
}

namespace halsim::net {

/**
 * Unidirectional link. Packets serialize back-to-back at the line
 * rate; each is delivered to the sink after serialization plus
 * propagation. When the backlog waiting to serialize exceeds the
 * configured budget the link tail-drops, modeling a bounded Tx FIFO.
 */
class Link : public PacketSink, private TimedChannel::Receiver
{
  public:
    struct Config
    {
        double rate_gbps = 100.0;       //!< serialization rate
        Tick propagation = 500 * kNs;   //!< cable/interconnect latency
        std::uint32_t max_queue = 4096; //!< max packets queued for Tx
        std::string name = "link";
    };

    Link(EventQueue &eq, Config cfg, PacketSink &sink)
        : eq_(eq), cfg_(std::move(cfg)), sink_(sink),
          chan_(eq, *this, "link-deliver")
    {}

    /** Offer a packet to the link; may tail-drop. */
    void send(PacketPtr pkt);

    /** PacketSink interface: same as send(). */
    void accept(PacketPtr pkt) override { send(std::move(pkt)); }

    /** Burst transmit: per-frame serialization/drop logic in a
     *  devirtualized loop (one dispatch per burst, not per frame). */
    // halint: hotpath
    void
    acceptBatch(PacketBatch &&batch) override
    {
        while (!batch.empty())
            send(batch.takeFront());
    }

    /** Packets dropped at the Tx FIFO. */
    std::uint64_t drops() const { return drops_; }

    /**
     * Fault injection: until cleared, each offered frame is lost with
     * probability @p loss_prob or corrupted with probability
     * @p corrupt_prob (corrupted frames fail CRC at the receiver and
     * never reach the sink). @p rng must outlive the impairment.
     */
    void
    setImpairment(double loss_prob, double corrupt_prob, Rng *rng)
    {
        lossProb_ = loss_prob;
        corruptProb_ = corrupt_prob;
        faultRng_ = rng;
    }

    /** Restore the link to nominal behaviour. */
    void
    clearImpairment()
    {
        lossProb_ = 0.0;
        corruptProb_ = 0.0;
        faultRng_ = nullptr;
    }

    /** Frames lost to an injected loss burst. */
    std::uint64_t faultLost() const { return faultLost_; }

    /** Frames corrupted in flight (dropped by the receiver's CRC). */
    std::uint64_t corrupted() const { return corrupted_; }

    /** All impairment-induced losses (lost + corrupted). */
    std::uint64_t faultDrops() const { return faultLost_ + corrupted_; }

    /** Bytes successfully delivered to the far end. */
    std::uint64_t deliveredBytes() const { return deliveredBytes_; }

    /** Frames successfully delivered to the far end. */
    std::uint64_t deliveredFrames() const { return deliveredFrames_; }

    const Config &config() const { return cfg_; }

    /**
     * Time-parallel mode: route deliveries to @p edge (the sink lives
     * on another event wheel). Tx-FIFO occupancy is then accounted on
     * the sender by reaping past delivery ticks at each send — exact
     * at every tail-drop decision point. Pass nullptr to restore
     * local delivery.
     */
    void setEgressEdge(DeliveryEdge *edge) { edge_ = edge; }

    /**
     * Attach the packet tracer. @p point is what a successful
     * traversal records (Ingress for the client link, Egress for the
     * return link); losses record TracePoint::Drop on the same lane.
     */
    void
    setTrace(obs::PacketTracer *t, std::uint8_t lane,
             obs::TracePoint point)
    {
        trace_ = t;
        traceLane_ = lane;
        tracePoint_ = point;
    }

  private:
    /** Arrival at the far end: retire the Tx slot, forward. */
    void
    channelDeliver(PacketPtr pkt) override
    {
        --queued_;
        sink_.accept(std::move(pkt));
    }

    EventQueue &eq_;
    Config cfg_;
    PacketSink &sink_;
    TimedChannel chan_;
    DeliveryEdge *edge_ = nullptr;
    /** Cross-wheel mode: delivery ticks not yet reaped (sender-side
     *  stand-in for the in-flight count channelDeliver maintains). */
    std::deque<Tick> pendingDeliver_;
    Tick busyUntil_ = 0;
    std::uint32_t queued_ = 0;
    std::uint64_t drops_ = 0;
    std::uint64_t deliveredBytes_ = 0;
    std::uint64_t deliveredFrames_ = 0;

    // Fault-injection state.
    double lossProb_ = 0.0;
    double corruptProb_ = 0.0;
    Rng *faultRng_ = nullptr;
    std::uint64_t faultLost_ = 0;
    std::uint64_t corrupted_ = 0;

    // Observability (null/inert unless attached).
    obs::PacketTracer *trace_ = nullptr;
    std::uint8_t traceLane_ = 0;
    obs::TracePoint tracePoint_ = obs::TracePoint::Ingress;
};

} // namespace halsim::net

#endif // HALSIM_NET_LINK_HH
