#include "net/packet.hh"

#include <cassert>
#include <cstring>

#include "net/packet_batch.hh"
#include "net/packet_pool.hh"

namespace halsim::net {

Packet::~Packet()
{
    PacketPool::local().release(std::move(data_));
}

const char *
processorName(Processor p)
{
    switch (p) {
      case Processor::None: return "none";
      case Processor::SnicCpu: return "snic-cpu";
      case Processor::SnicAccel: return "snic-accel";
      case Processor::HostCpu: return "host-cpu";
      case Processor::HostAccel: return "host-accel";
    }
    return "?";
}

void
Packet::resizePayload(std::size_t n)
{
    data_.resize(kFrameHeaderLen + n);
    const auto ip_len =
        static_cast<std::uint16_t>(kIpv4HeaderLen + kUdpHeaderLen + n);
    ip().setTotalLength(ip_len);
    ip().fillChecksum();
    udp().setLength(static_cast<std::uint16_t>(kUdpHeaderLen + n));
}

PacketPtr
makeUdpPacket(const MacAddr &src_mac, const MacAddr &dst_mac,
              Ipv4Addr src_ip, Ipv4Addr dst_ip,
              std::uint16_t src_port, std::uint16_t dst_port,
              std::span<const std::uint8_t> payload,
              std::size_t frame_bytes)
{
    std::size_t total = kFrameHeaderLen + payload.size();
    if (frame_bytes > total)
        total = frame_bytes;          // zero-pad to the wire size
    assert(frame_bytes == 0 || frame_bytes >= kFrameHeaderLen);

    // Exact final size up front — a recycled buffer with enough
    // capacity makes this allocation-free.
    std::vector<std::uint8_t> frame = PacketPool::local().acquire(total);
    if (!payload.empty())
        std::memcpy(frame.data() + kFrameHeaderLen, payload.data(),
                    payload.size());

    auto pkt = std::make_unique<Packet>(std::move(frame));

    EthView eth = pkt->eth();
    eth.setDst(dst_mac);
    eth.setSrc(src_mac);
    eth.setEtherType(kEtherTypeIpv4);

    const std::size_t ip_payload = total - kEthHeaderLen;
    Ipv4View ip = pkt->ip();
    ip.setVersionIhl(0x45);
    ip.setTotalLength(static_cast<std::uint16_t>(ip_payload));
    ip.setTtl(64);
    ip.setProtocol(kIpProtoUdp);
    ip.setSrcRaw(src_ip);
    ip.setDstRaw(dst_ip);
    ip.fillChecksum();

    UdpView udp = pkt->udp();
    udp.setSrcPort(src_port);
    udp.setDstPort(dst_port);
    udp.setLength(static_cast<std::uint16_t>(ip_payload - kIpv4HeaderLen));
    udp.setChecksum(0);   // optional in IPv4; the paper's NAT skips it too

    return pkt;
}

void
PacketSink::acceptBatch(PacketBatch &&batch)
{
    while (!batch.empty())
        accept(batch.takeFront());
}

} // namespace halsim::net
