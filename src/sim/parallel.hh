/**
 * @file
 * Minimal work-stealing-free parallel-for over an index range.
 *
 * The simulator is single-threaded by design — determinism comes from
 * one event queue executing a totally ordered stream — but paper
 * figures are sweeps of *independent* operating points, each with its
 * own queue. parallelFor runs those points wide: workers pull indices
 * from a shared atomic counter, every invocation touches only its own
 * point's state, and results land in caller-owned slots indexed by
 * point, so the output is deterministic regardless of thread count or
 * scheduling.
 *
 * The callback purity contract is machine-checked: halint HAL-W005
 * rejects mutable-capture lambdas and function-local statics at
 * parallelFor/runSweep call sites, and the CI ThreadSanitizer job
 * re-validates the claim dynamically (DESIGN.md §9).
 */

#ifndef HALSIM_SIM_PARALLEL_HH
#define HALSIM_SIM_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace halsim {

/**
 * Invoke @p fn(i) for every i in [0, n), using up to @p threads
 * worker threads (1 or 0 workers, or n <= 1, degrades to a plain
 * serial loop on the calling thread). @p fn must not touch shared
 * mutable state. The first exception thrown by any invocation is
 * rethrown on the caller after all workers join.
 */
void parallelFor(std::size_t n, unsigned threads,
                 const std::function<void(std::size_t)> &fn);

/**
 * Worker count for "use all cores": std::thread::hardware_concurrency
 * with a floor of 1.
 */
unsigned hardwareThreads();

} // namespace halsim

#endif // HALSIM_SIM_PARALLEL_HH
