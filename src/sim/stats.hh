/**
 * @file
 * Statistics primitives: counters, accumulators, quantile histograms,
 * and time-weighted averages (used for power integration).
 */

#ifndef HALSIM_SIM_STATS_HH
#define HALSIM_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace halsim {

/**
 * Running scalar summary: count, sum, min, max, mean, and variance
 * (Welford's online algorithm, numerically stable).
 */
class Accumulator
{
  public:
    void sample(double v);

    /** Merge another accumulator into this one. */
    void merge(const Accumulator &o);

    /** Discard all samples. */
    void reset() { *this = Accumulator{}; }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Sample variance (n-1 denominator); 0 with <2 samples. */
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Geometric-binned histogram for latency quantiles.
 *
 * Bins are spaced uniformly in log space between configurable bounds;
 * with the default 64 bins/decade over [1 ns, 100 s], adjacent bin
 * edges differ by ~3.7%, bounding the relative error of any quantile
 * estimate by the same factor. Values outside the range clamp to the
 * first/last bin. quantile() interpolates within the winning bin in
 * log space.
 *
 * Latencies are recorded in ticks but any positive quantity works.
 */
class Histogram
{
  public:
    /**
     * @param lo        lower edge of the first bin (> 0)
     * @param hi        upper edge of the last bin (> lo)
     * @param bins_per_decade bin density
     */
    explicit Histogram(double lo = static_cast<double>(kNs),
                       double hi = 100.0 * static_cast<double>(kSec),
                       unsigned bins_per_decade = 64);

    void sample(double v);

    /** Remove all samples, keeping the binning. */
    void reset();

    /**
     * Fold another histogram's samples into this one. Both must use
     * identical binning (same lo/hi/bins_per_decade); a mismatch
     * throws std::invalid_argument.
     */
    void merge(const Histogram &o);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minSample() const { return count_ ? min_ : 0.0; }
    double maxSample() const { return count_ ? max_ : 0.0; }

    /**
     * Estimate the @p q quantile (0 <= q <= 1). Returns 0 with no
     * samples. q=0.99 is the paper's p99 metric.
     */
    double quantile(double q) const;

    /** Convenience: the paper's headline tail metric. */
    double p99() const { return quantile(0.99); }

  private:
    std::size_t binIndex(double v) const;
    double binLowerEdge(std::size_t i) const;
    double binUpperEdge(std::size_t i) const;

    double logLo_, logHi_;
    double binsPerLog_;       //!< bins per unit of log10
    std::vector<std::uint64_t> bins_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Time-weighted average of a piecewise-constant signal, e.g. the
 * instantaneous power draw of a component. set() records a new level
 * starting at the given tick; average() integrates up to a tick.
 */
class TimeWeighted
{
  public:
    explicit TimeWeighted(double initial = 0.0) : value_(initial) {}

    /** Change the signal level at time @p now. */
    void set(double v, Tick now);

    /** Current level. */
    double value() const { return value_; }

    /** Integral of the signal over [start, now]. */
    double integral(Tick now) const;

    /** Time average over [resetTick, now]. */
    double average(Tick now) const;

    /** Restart integration at @p now, keeping the current level. */
    void resetAt(Tick now);

  private:
    double value_ = 0.0;
    double integral_ = 0.0;
    Tick lastChange_ = 0;
    Tick start_ = 0;
};

/**
 * Windowed byte-rate meter: feeds of (bytes) against the clock,
 * reporting achieved Gbps over the observation window.
 */
class RateMeter
{
  public:
    void
    add(std::uint64_t bytes)
    {
        bytes_ += bytes;
        ++frames_;
    }

    void
    resetAt(Tick now)
    {
        bytes_ = 0;
        frames_ = 0;
        start_ = now;
    }

    std::uint64_t bytes() const { return bytes_; }
    std::uint64_t frames() const { return frames_; }
    Tick start() const { return start_; }

    /** Achieved Gbps between the last reset and @p now. */
    double
    gbpsAt(Tick now) const
    {
        return now > start_ ? gbps(bytes_, now - start_) : 0.0;
    }

  private:
    std::uint64_t bytes_ = 0;
    std::uint64_t frames_ = 0;
    Tick start_ = 0;
};

} // namespace halsim

#endif // HALSIM_SIM_STATS_HH
