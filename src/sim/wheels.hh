/**
 * @file
 * Conservative time-parallel execution of one simulation split across
 * several event wheels (DESIGN.md §13).
 *
 * Each wheel owns an EventQueue plus the components bound to it;
 * wheels exchange packets only through cross-wheel edges backed by
 * SPSC mailboxes. Every edge has a fixed minimum latency, and the
 * smallest of them is the run's lookahead L: an event executed at
 * tick t can influence another wheel no earlier than t + L. The
 * runner exploits that with a window-barrier protocol — all wheels
 * run [T, stop] rounds concurrently, where T is the global minimum
 * pending tick and stop < T + L, so anything a wheel sends during a
 * round lands strictly after the round and cross-wheel inputs are
 * always fully known before a window opens.
 *
 * Determinism: merged cross-wheel entries carry the sender's reserved
 * key, whose top byte is the sender's wheel band, so all same-tick
 * work has the fixed total order (tick, band, seq) regardless of
 * thread interleaving. The single-threaded path executes the exact
 * same window sequence, which is what makes --run-threads 1 and
 * --run-threads N bit-identical (test_determinism holds the bar).
 */

#ifndef HALSIM_SIM_WHEELS_HH
#define HALSIM_SIM_WHEELS_HH

#include <barrier>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace halsim {

/**
 * Wheel-band registry: who owns which slice of the partitioned
 * simulation. The value is the top byte of every reserved event key
 * (EventQueue::setBand), so same-tick cross-wheel work always orders
 * (tick, band, seq) — client before SNIC before host. halint's
 * `// halint: band(client|snic|host)` annotations name these bands,
 * and its HAL-W009 escape analysis flags state crossing them outside
 * a mailbox (DESIGN.md §13, §14).
 */
enum class WheelBand : std::uint8_t {
    Mono = 0,   //!< single-wheel run, no partition
    Client = 1, //!< load generators
    Snic = 2,   //!< SNIC datapath (eswitch, rings, accelerators)
    Host = 3,   //!< host cores and software stack
};

/** Stable lowercase name for a band (the halint directive spelling). */
constexpr const char *
wheelBandName(WheelBand b)
{
    switch (b) {
    case WheelBand::Mono: return "mono";
    case WheelBand::Client: return "client";
    case WheelBand::Snic: return "snic";
    case WheelBand::Host: return "host";
    }
    return "?";
}

/**
 * Drives N wheels through lookahead-bounded windows, sequentially or
 * with one thread per wheel. The caller's thread acts as the
 * coordinator and always runs wheel 0.
 */
// halint: mailbox window-barrier coordinator (DESIGN.md §13)
class WheelRunner
{
  public:
    /** One wheel: its queue plus the hooks that surface cross-wheel
     *  input waiting in this wheel's incoming mailboxes. */
    struct Wheel
    {
        EventQueue *eq = nullptr;
        /** Move mailbox entries with tick < @p before into the wheel
         *  (null when the wheel has no incoming edges). */
        std::function<void(Tick before)> ingest;
        /** Earliest tick still waiting in an incoming mailbox, or
         *  kTickNever (null means no incoming edges). */
        std::function<Tick()> pendingTick;
    };

    /**
     * @param wheels   the partition; wheel 0 runs on the caller.
     * @param lookahead  minimum cross-wheel edge latency (ticks > 0).
     * @param threads  <=1 runs every window on the calling thread;
     *                 >=2 runs one persistent thread per extra wheel.
     */
    WheelRunner(std::vector<Wheel> wheels, Tick lookahead,
                unsigned threads);

    ~WheelRunner();

    WheelRunner(const WheelRunner &) = delete;
    WheelRunner &operator=(const WheelRunner &) = delete;

    /**
     * Register a coordinator-side callback fired between windows the
     * first time global time reaches @p first; it returns the next
     * fire tick (or kTickNever to stop). Runs while every wheel is
     * quiesced, so it may read any wheel's state — the partitioned
     * run's stand-in for a global sampler event.
     */
    void
    setGlobalCallback(Tick first, std::function<Tick()> fire)
    {
        globalNext_ = first;
        globalFire_ = std::move(fire);
    }

    /**
     * Advance every wheel to @p until (inclusive), honoring lookahead
     * windows and the global callback.
     * @return events executed across all wheels.
     */
    std::uint64_t runUntil(Tick until);

    Tick lookahead() const { return lookahead_; }
    bool threaded() const { return threaded_; }
    std::size_t wheelCount() const { return wheels_.size(); }

  private:
    /** Window parameters the coordinator publishes to the workers. */
    struct Round
    {
        Tick stop = 0;
        bool fire = false;
        bool done = false;
    };

    void startWorkers();
    void workerLoop(std::size_t wheel);
    void runWheel(std::size_t wheel);

    std::vector<Wheel> wheels_;
    Tick lookahead_;
    bool threaded_;

    Tick globalNext_ = kTickNever;
    std::function<Tick()> globalFire_;

    // Threaded mode. The coordinator publishes round_ before the
    // start barrier and reads wheel state only after the finish
    // barrier; workers touch shared state only between the two.
    Round round_;
    bool exit_ = false;
    std::barrier<> start_;
    std::barrier<> finish_;
    std::vector<std::thread> workers_;
};

} // namespace halsim

#endif // HALSIM_SIM_WHEELS_HH
