/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * We avoid std::mt19937 + std:: distributions because their output is
 * not guaranteed identical across standard-library implementations;
 * benchmark results must be bit-reproducible anywhere. The generator
 * is xoshiro256++ seeded via splitmix64, with hand-rolled uniform,
 * exponential, normal, and log-normal transforms.
 */

#ifndef HALSIM_SIM_RNG_HH
#define HALSIM_SIM_RNG_HH

#include <array>
#include <cstdint>

namespace halsim {

/**
 * xoshiro256++ PRNG with distribution helpers.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion so any 64-bit seed is usable. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n); @p n must be > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + uniformInt(hi - lo + 1);
    }

    /** Bernoulli trial with probability @p p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Exponential variate with mean @p mean. */
    double exponential(double mean);

    /** Standard normal variate (Box-Muller with caching). */
    double normal();

    /** Normal variate with given mean and standard deviation. */
    double
    normal(double mean, double sigma)
    {
        return mean + sigma * normal();
    }

    /** Log-normal variate: exp(N(mu, sigma)). */
    double lognormal(double mu, double sigma);

    /** Fork an independent stream (distinct but reproducible). */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> s_;
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace halsim

#endif // HALSIM_SIM_RNG_HH
