#include "sim/rng.hh"

#include <cassert>
#include <cmath>

namespace halsim {

namespace {

/** splitmix64 step, used only for seed expansion. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &w : s_)
        w = splitmix64(x);
    // All-zero state is a fixed point of xoshiro; splitmix64 output
    // cannot produce four zeros from any seed, but guard anyway.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    assert(n > 0);
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

double
Rng::exponential(double mean)
{
    assert(mean > 0.0);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box-Muller: two uniforms -> two independent normals.
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(mu + sigma * normal());
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xA5A5A5A55A5A5A5Aull);
}

} // namespace halsim
