#include "sim/event_queue.hh"

#include <algorithm>
#include <cassert>

namespace halsim {

Event::~Event()
{
    // A scheduled event must be descheduled before destruction;
    // otherwise the queue would fire a dangling pointer later.
    assert(!scheduled_ && "destroying a scheduled Event");
}

/**
 * One-shot wrapper used by scheduleFn(). Fired wrappers return to the
 * queue's freelist, so steady-state one-shot scheduling allocates
 * nothing: the wrapper is recycled and small captures live in the
 * UniqueFn's inline storage.
 */
class EventQueue::OneShot : public Event
{
  public:
    explicit OneShot(EventQueue &q) : Event("oneshot"), q_(q) {}

    void arm(UniqueFn fn) { fn_ = std::move(fn); }

    void
    execute() override
    {
        // Release the wrapper before running the callable so a
        // nested scheduleFn can reuse it immediately; the callable
        // itself is already safe on the stack.
        UniqueFn fn = std::move(fn_);
        q_.releaseOneShot(this);
        fn();
    }

  private:
    EventQueue &q_;
    UniqueFn fn_;
};

/**
 * Coalesced same-tick batch for scheduleBatch(). One heap entry
 * carries up to kBatchCapacity callables that run back-to-back in
 * submission order, amortizing the heap round-trip; each callable
 * still counts as one executed event.
 */
class EventQueue::Batch : public Event
{
  public:
    explicit Batch(EventQueue &q) : Event("batch"), q_(q) {}

    bool full() const { return n_ == kBatchCapacity; }

    void add(UniqueFn fn) { fns_[n_++] = std::move(fn); }

    void
    execute() override
    {
        // Close the coalescing window first: a nested scheduleBatch
        // at the same tick must open a fresh batch (which then sorts
        // after every already-scheduled same-tick event, exactly as a
        // fresh schedule() would).
        if (q_.openBatch_ == this)
            q_.openBatch_ = nullptr;
        const std::size_t n = n_;
        q_.executed_ += n - 1;   // step() already counted one
        for (std::size_t i = 0; i < n; ++i) {
            UniqueFn fn = std::move(fns_[i]);
            fn();
        }
        n_ = 0;
        q_.releaseBatch(this);
    }

  private:
    EventQueue &q_;
    UniqueFn fns_[kBatchCapacity];
    std::size_t n_ = 0;
};

EventQueue::~EventQueue()
{
    // Drop tombstones and orphan any still-scheduled events so their
    // destructors don't assert; delete owned one-shot and batch
    // wrappers.
    for (Entry &e : heap_) {
        if (e.ev != nullptr) {
            e.ev->scheduled_ = false;
            if (dynamic_cast<OneShot *>(e.ev) != nullptr ||
                dynamic_cast<Batch *>(e.ev) != nullptr)
                delete e.ev;
        }
    }
    for (OneShot *os : pool_)
        delete os;
    for (Batch *b : batchPool_)
        delete b;
}

// halint: hotpath
void
EventQueue::schedule(Event *ev, Tick when)
{
    assert(ev != nullptr);
    assert(!ev->scheduled_ && "event already scheduled");
    assert(when >= now_ && "scheduling into the past");
    if (when < now_) {
        // Release builds clamp instead of time-traveling: the event
        // runs immediately-next and the counter records the bug.
        ++pastClamps_;
        when = now_;
    }

    ev->when_ = when;
    ev->seq_ = bandBits_ | ++seq_;
    ev->scheduled_ = true;
    heapPush(Entry{when, ev->seq_, ev});
    ++live_;
}

// halint: hotpath
void
EventQueue::scheduleKeyed(Event *ev, Tick when, std::uint64_t key)
{
    assert(ev != nullptr);
    assert(!ev->scheduled_ && "event already scheduled");
    assert(when >= now_ && "scheduling into the past");
    if (when < now_) {
        ++pastClamps_;
        when = now_;
    }

    ev->when_ = when;
    ev->seq_ = key;
    ev->scheduled_ = true;
    heapPush(Entry{when, key, ev});
    ++live_;
}

void
EventQueue::deschedule(Event *ev)
{
    assert(ev != nullptr);
    if (!ev->scheduled_)
        return;
    // Lazy removal in O(1): the event knows its heap slot, so
    // tombstone it in place and let pops (or compaction) reclaim it.
    const std::size_t idx = ev->heapIndex_;
    assert(idx < heap_.size() && heap_[idx].ev == ev &&
           heap_[idx].seq == ev->seq_ && "heap index out of sync");
    heap_[idx].ev = nullptr;
    ev->scheduled_ = false;
    --live_;
    ++dead_;
    maybeCompact();
}

void
EventQueue::maybeCompact()
{
    // Rebuilding costs O(n); triggering only when tombstones exceed
    // live entries keeps the amortized cost per deschedule constant
    // and the heap within 2x of its live size.
    constexpr std::size_t kMinSlots = 64;
    if (dead_ <= live_ || heap_.size() < kMinSlots)
        return;
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                               [](const Entry &e) {
                                   return e.ev == nullptr;
                               }),
                heap_.end());
    // Pop order is fully determined by the (when, seq) total order,
    // so rebuilding the heap cannot change execution order.
    std::make_heap(heap_.begin(), heap_.end(),
                   [](const Entry &a, const Entry &b) { return a > b; });
    for (std::size_t i = 0; i < heap_.size(); ++i)
        setIndex(i);
    dead_ = 0;
}

void
EventQueue::setPoolingEnabled(bool on)
{
    pooling_ = on;
    if (!pooling_) {
        for (OneShot *os : pool_)
            delete os;
        pool_.clear();
        for (Batch *b : batchPool_)
            delete b;
        batchPool_.clear();
    }
}

// halint: hotpath
void
EventQueue::releaseOneShot(OneShot *os)
{
    if (pooling_)
        // halint: allow(HAL-W004) freelist push reuses retained
        pool_.push_back(os); // capacity after warmup (DESIGN.md §8)
    else
        delete os;
}

// halint: hotpath
void
EventQueue::scheduleFn(UniqueFn fn, Tick when)
{
    OneShot *os;
    if (!pool_.empty()) {
        os = pool_.back();
        pool_.pop_back();
    } else {
        // halint: allow(HAL-W004) pool-miss cold path; steady state
        os = new OneShot(*this); // is served from the freelist
    }
    os->arm(std::move(fn));
    schedule(os, when);
}

// halint: hotpath
void
EventQueue::releaseBatch(Batch *b)
{
    if (pooling_)
        // halint: allow(HAL-W004) freelist push reuses retained
        batchPool_.push_back(b); // capacity after warmup
    else
        delete b;
}

// halint: hotpath
void
EventQueue::scheduleBatch(UniqueFn fn, Tick when)
{
    if (!batching_) {
        scheduleFn(std::move(fn), when);
        return;
    }
    if (openBatch_ != nullptr && openBatchWhen_ == when &&
        !openBatch_->full()) {
        openBatch_->add(std::move(fn));
        return;
    }
    Batch *b;
    if (!batchPool_.empty()) {
        b = batchPool_.back();
        batchPool_.pop_back();
    } else {
        // halint: allow(HAL-W004) pool-miss cold path; steady state
        b = new Batch(*this); // is served from the freelist
    }
    b->add(std::move(fn));
    schedule(b, when);
    openBatch_ = b;
    openBatchWhen_ = when;
}

Tick
EventQueue::nextTick() const
{
    if (live_ == 0)
        return kTickNever;
    // Fast path: the heap root is live and therefore the minimum.
    if (!heap_.empty() && heap_.front().ev != nullptr)
        return heap_.front().when;
    // The root is a tombstone; the heap property only partially
    // orders the rest, so scan live entries for the true minimum.
    Tick best = kTickNever;
    for (const Entry &e : heap_)
        if (e.ev != nullptr && e.when < best)
            best = e.when;
    return best;
}

// halint: hotpath
bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Entry top = heapPop();
        if (top.ev == nullptr) {
            --dead_;
            continue;   // tombstone
        }
        assert(top.when >= now_);
        now_ = top.when;
        Event *ev = top.ev;
        ev->scheduled_ = false;
        --live_;
        ++executed_;
        ev->execute();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    // Bound inline drains to this call's window (restored on exit so
    // nested runUntil calls compose).
    const Tick prev_limit = limit_;
    limit_ = until;
    const std::uint64_t before = executed_;
    while (!heap_.empty()) {
        // Peek past tombstones.
        while (!heap_.empty() && heap_.front().ev == nullptr) {
            heapPop();
            --dead_;
        }
        if (heap_.empty())
            break;
        if (heap_.front().when > until) {
            if (until != kTickNever)
                now_ = until;
            limit_ = prev_limit;
            return executed_ - before;
        }
        step();
    }
    if (until != kTickNever && until > now_)
        now_ = until;
    limit_ = prev_limit;
    return executed_ - before;
}

// halint: hotpath
void
EventQueue::heapPush(Entry e)
{
    // halint: allow(HAL-W004) amortized heap growth; compaction keeps
    heap_.push_back(e); // slots within 2x of live so capacity settles
    siftUp(heap_.size() - 1);
}

// halint: hotpath
EventQueue::Entry
EventQueue::heapPop()
{
    Entry top = heap_.front();
    Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        setIndex(0);
        siftDown(0);
    }
    return top;
}

void
EventQueue::siftUp(std::size_t i)
{
    Entry e = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!(heap_[parent] > e))
            break;
        heap_[i] = heap_[parent];
        setIndex(i);
        i = parent;
    }
    heap_[i] = e;
    setIndex(i);
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    Entry e = heap_[i];
    for (;;) {
        std::size_t c = 2 * i + 1;
        if (c >= n)
            break;
        if (c + 1 < n && heap_[c] > heap_[c + 1])
            ++c;   // right child is earlier
        if (!(e > heap_[c]))
            break;
        heap_[i] = heap_[c];
        setIndex(i);
        i = c;
    }
    heap_[i] = e;
    setIndex(i);
}

} // namespace halsim
