#include "sim/event_queue.hh"

#include <algorithm>
#include <cassert>

namespace halsim {

Event::~Event()
{
    // A scheduled event must be descheduled before destruction;
    // otherwise the queue would fire a dangling pointer later.
    assert(!scheduled_ && "destroying a scheduled Event");
}

/**
 * One-shot wrapper used by scheduleFn(); deletes itself after firing.
 */
class EventQueue::OneShot : public Event
{
  public:
    explicit OneShot(UniqueFn fn) : Event("oneshot"), fn_(std::move(fn))
    {}

    void
    execute() override
    {
        fn_();
        delete this;
    }

  private:
    UniqueFn fn_;
};

EventQueue::~EventQueue()
{
    // Drop tombstones and orphan any still-scheduled events so their
    // destructors don't assert; delete owned one-shot wrappers.
    for (Entry &e : heap_) {
        if (e.ev != nullptr) {
            e.ev->scheduled_ = false;
            if (dynamic_cast<OneShot *>(e.ev) != nullptr)
                delete e.ev;
        }
    }
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    assert(ev != nullptr);
    assert(!ev->scheduled_ && "event already scheduled");
    assert(when >= now_ && "scheduling into the past");

    ev->when_ = when;
    ev->seq_ = ++seq_;
    ev->scheduled_ = true;
    heapPush(Entry{when, ev->seq_, ev});
    ++live_;
}

void
EventQueue::deschedule(Event *ev)
{
    assert(ev != nullptr);
    if (!ev->scheduled_)
        return;
    // Lazy removal: find the live entry and tombstone it. The entry
    // is identified by the (when, seq) stamped on the event.
    for (Entry &e : heap_) {
        if (e.ev == ev && e.seq == ev->seq_) {
            e.ev = nullptr;
            break;
        }
    }
    ev->scheduled_ = false;
    --live_;
}

void
EventQueue::scheduleFn(UniqueFn fn, Tick when)
{
    schedule(new OneShot(std::move(fn)), when);
}

Tick
EventQueue::nextTick() const
{
    if (live_ == 0)
        return kTickNever;
    // Fast path: the heap root is live and therefore the minimum.
    if (!heap_.empty() && heap_.front().ev != nullptr)
        return heap_.front().when;
    // The root is a tombstone; the heap property only partially
    // orders the rest, so scan live entries for the true minimum.
    Tick best = kTickNever;
    for (const Entry &e : heap_)
        if (e.ev != nullptr && e.when < best)
            best = e.when;
    return best;
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Entry top = heapPop();
        if (top.ev == nullptr)
            continue;   // tombstone
        assert(top.when >= now_);
        now_ = top.when;
        Event *ev = top.ev;
        ev->scheduled_ = false;
        --live_;
        ++executed_;
        ev->execute();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t n = 0;
    while (!heap_.empty()) {
        // Peek past tombstones.
        while (!heap_.empty() && heap_.front().ev == nullptr)
            heapPop();
        if (heap_.empty())
            break;
        if (heap_.front().when > until) {
            if (until != kTickNever)
                now_ = until;
            return n;
        }
        if (step())
            ++n;
    }
    if (until != kTickNever && until > now_)
        now_ = until;
    return n;
}

void
EventQueue::heapPush(Entry e)
{
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(),
                   [](const Entry &a, const Entry &b) { return a > b; });
}

EventQueue::Entry
EventQueue::heapPop()
{
    std::pop_heap(heap_.begin(), heap_.end(),
                  [](const Entry &a, const Entry &b) { return a > b; });
    Entry e = heap_.back();
    heap_.pop_back();
    return e;
}

} // namespace halsim
