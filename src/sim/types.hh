/**
 * @file
 * Fundamental simulation types: ticks, durations, and rate conversions.
 *
 * The simulator counts time in integer picoseconds. At 100 Gbps one
 * byte serializes in 80 ps, so picosecond resolution keeps per-byte
 * wire timing exact for every packet size the paper uses (64 B to
 * 1500 B MTU). A 64-bit tick counter covers ~213 days of simulated
 * time, far beyond the longest experiment window.
 */

#ifndef HALSIM_SIM_TYPES_HH
#define HALSIM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace halsim {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Signed tick difference, for intervals that may be negative. */
using TickDelta = std::int64_t;

/** Sentinel for "never" / unscheduled. */
inline constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/** One nanosecond in ticks. */
inline constexpr Tick kNs = 1000;
/** One microsecond in ticks. */
inline constexpr Tick kUs = 1000 * kNs;
/** One millisecond in ticks. */
inline constexpr Tick kMs = 1000 * kUs;
/** One second in ticks. */
inline constexpr Tick kSec = 1000 * kMs;

/** Convert ticks to (fractional) seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSec);
}

/** Convert ticks to (fractional) microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kUs);
}

/** Convert fractional seconds to ticks (rounded to nearest). */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kSec) + 0.5);
}

/** Convert fractional microseconds to ticks (rounded to nearest). */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kUs) + 0.5);
}

/**
 * Serialization time of @p bytes at @p gbps gigabits per second.
 *
 * Used for wire, PCIe, and service-rate conversions throughout the
 * model. Returns at least 1 tick for any non-zero payload so events
 * always make forward progress.
 */
constexpr Tick
transferTicks(std::uint64_t bytes, double gbps)
{
    if (bytes == 0 || gbps <= 0.0)
        return 0;
    // bits / (Gbit/s) = ns; scale to ticks.
    const double ns = static_cast<double>(bytes * 8) / gbps;
    const Tick t = static_cast<Tick>(ns * static_cast<double>(kNs) + 0.5);
    return t > 0 ? t : 1;
}

/**
 * Achieved rate in Gbps given @p bytes moved over @p ticks.
 */
constexpr double
gbps(std::uint64_t bytes, Tick ticks)
{
    if (ticks == 0)
        return 0.0;
    return static_cast<double>(bytes * 8) /
           static_cast<double>(ticks) * 1000.0;
}

} // namespace halsim

#endif // HALSIM_SIM_TYPES_HH
