#include "sim/parallel.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace halsim {

unsigned
hardwareThreads()
{
    // halint: allow(HAL-W007) sweep harness, not the DES core
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

void
parallelFor(std::size_t n, unsigned threads,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(
            threads == 0 ? hardwareThreads() : threads, n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // The sweep harness owns its threads; points are disjoint
    // simulations, not wheels of one run.
    // halint: allow(HAL-W007) sweep pool, not the DES core
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    // halint: allow(HAL-W007) error funnel for the sweep pool
    std::mutex error_mu;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                // halint: allow(HAL-W007) sweep pool error funnel
                std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
                return;
            }
        }
    };

    // halint: allow(HAL-W007) sweep pool, not the DES core
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    // halint: allow(HAL-W007) sweep pool, not the DES core
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace halsim
