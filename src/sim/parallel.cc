#include "sim/parallel.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace halsim {

unsigned
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

void
parallelFor(std::size_t n, unsigned threads,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(
            threads == 0 ? hardwareThreads() : threads, n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mu;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace halsim
