#include "sim/report.hh"

#include <cassert>
#include <cstdio>
#include <iomanip>

namespace halsim {

ReportTable::ReportTable(std::vector<std::string> columns)
    : columns_(std::move(columns))
{
    assert(!columns_.empty());
}

ReportTable &
ReportTable::row()
{
    assert(cells_.empty() || cells_.back().size() == columns_.size());
    cells_.emplace_back();
    cells_.back().reserve(columns_.size());
    return *this;
}

ReportTable &
ReportTable::add(const std::string &v)
{
    assert(!cells_.empty() && cells_.back().size() < columns_.size());
    cells_.back().emplace_back(v);
    return *this;
}

ReportTable &
ReportTable::add(const char *v)
{
    return add(std::string(v));
}

ReportTable &
ReportTable::add(double v)
{
    assert(!cells_.empty() && cells_.back().size() < columns_.size());
    cells_.back().emplace_back(v);
    return *this;
}

ReportTable &
ReportTable::add(std::int64_t v)
{
    assert(!cells_.empty() && cells_.back().size() < columns_.size());
    cells_.back().emplace_back(v);
    return *this;
}

ReportTable &
ReportTable::add(std::uint64_t v)
{
    return add(static_cast<std::int64_t>(v));
}

const ReportTable::Cell &
ReportTable::at(std::size_t r, std::size_t c) const
{
    return cells_.at(r).at(c);
}

std::string
ReportTable::render(const Cell &cell)
{
    if (const auto *s = std::get_if<std::string>(&cell))
        return *s;
    if (const auto *d = std::get_if<double>(&cell)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4g", *d);
        return buf;
    }
    return std::to_string(std::get<std::int64_t>(cell));
}

void
ReportTable::writeText(std::ostream &os) const
{
    // Column widths from headers and rendered cells.
    std::vector<std::size_t> width(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c)
        width[c] = columns_[c].size();
    for (const auto &row : cells_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], render(row[c]).size());

    for (std::size_t c = 0; c < columns_.size(); ++c) {
        os << std::setw(static_cast<int>(width[c])) << columns_[c]
           << (c + 1 < columns_.size() ? "  " : "");
    }
    os << '\n';
    for (const auto &row : cells_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::setw(static_cast<int>(width[c])) << render(row[c])
               << (c + 1 < row.size() ? "  " : "");
        }
        os << '\n';
    }
}

std::string
ReportTable::escapeCsv(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char ch : s) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

void
ReportTable::writeCsv(std::ostream &os) const
{
    for (std::size_t c = 0; c < columns_.size(); ++c)
        os << escapeCsv(columns_[c]) << (c + 1 < columns_.size() ? "," : "");
    os << '\n';
    for (const auto &row : cells_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << escapeCsv(render(row[c]))
               << (c + 1 < row.size() ? "," : "");
        os << '\n';
    }
}

std::string
ReportTable::escapeJson(const std::string &s)
{
    std::string out;
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += ch;
        }
    }
    return out;
}

void
ReportTable::writeJsonLines(std::ostream &os) const
{
    for (const auto &row : cells_) {
        os << '{';
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << '"' << escapeJson(columns_[c]) << "\":";
            if (const auto *s = std::get_if<std::string>(&row[c]))
                os << '"' << escapeJson(*s) << '"';
            else
                os << render(row[c]);
            if (c + 1 < row.size())
                os << ',';
        }
        os << "}\n";
    }
}

} // namespace halsim
