#include "sim/wheels.hh"

#include <algorithm>
#include <cassert>

namespace halsim {

WheelRunner::WheelRunner(std::vector<Wheel> wheels, Tick lookahead,
                         unsigned threads)
    : wheels_(std::move(wheels)), lookahead_(lookahead),
      threaded_(threads >= 2 && wheels_.size() > 1),
      start_(threaded_ ? static_cast<std::ptrdiff_t>(wheels_.size()) : 1),
      finish_(threaded_ ? static_cast<std::ptrdiff_t>(wheels_.size()) : 1)
{
    assert(!wheels_.empty());
    assert(lookahead_ > 0 && "zero lookahead cannot window");
    if (threaded_)
        startWorkers();
}

WheelRunner::~WheelRunner()
{
    if (!threaded_)
        return;
    // Workers are parked at the start barrier between rounds; release
    // them once more with the exit flag raised.
    exit_ = true;
    start_.arrive_and_wait();
    for (auto &t : workers_)
        t.join();
}

void
WheelRunner::startWorkers()
{
    workers_.reserve(wheels_.size() - 1);
    for (std::size_t i = 1; i < wheels_.size(); ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

void
WheelRunner::workerLoop(std::size_t wheel)
{
    for (;;) {
        start_.arrive_and_wait();
        if (exit_)
            return;
        runWheel(wheel);
        finish_.arrive_and_wait();
    }
}

void
WheelRunner::runWheel(std::size_t wheel)
{
    // round_ was published before the start barrier; the barrier's
    // synchronization makes it (and all pre-round wheel state)
    // visible here.
    const Round r = round_;
    Wheel &w = wheels_[wheel];
    if (w.ingest) {
        const Tick before =
            r.stop == kTickNever ? kTickNever : r.stop + 1;
        w.ingest(before);
    }
    w.eq->runUntil(r.stop);
}

std::uint64_t
WheelRunner::runUntil(Tick until)
{
    std::uint64_t before = 0;
    for (const Wheel &w : wheels_)
        before += w.eq->executed();

    for (;;) {
        // All wheels are quiesced here (initially, or parked at the
        // barriers), so reading every queue and mailbox is safe.
        Tick horizon = kTickNever;
        for (const Wheel &w : wheels_) {
            horizon = std::min(horizon, w.eq->nextTick());
            if (w.pendingTick)
                horizon = std::min(horizon, w.pendingTick());
        }
        const Tick g = globalNext_;

        Round r;
        if (horizon > until && g > until) {
            // Nothing left inside the run: one clamp round advances
            // every wheel's clock to the end time.
            r.stop = until;
            r.done = true;
        } else {
            // Anything sent during [horizon, stop] lands at or after
            // horizon + lookahead > stop, so every cross-wheel input
            // for this window is already in a mailbox.
            Tick stop = until;
            if (horizon < until && horizon + lookahead_ - 1 < until)
                stop = horizon + lookahead_ - 1;
            if (g <= stop) {
                r.stop = g;
                r.fire = true;
            } else {
                r.stop = stop;
            }
        }

        round_ = r;
        if (threaded_) {
            start_.arrive_and_wait();
            runWheel(0);
            finish_.arrive_and_wait();
        } else {
            for (std::size_t i = 0; i < wheels_.size(); ++i)
                runWheel(i);
        }

        if (r.fire)
            globalNext_ = globalFire_ ? globalFire_() : kTickNever;
        if (r.done)
            break;
    }

    std::uint64_t after = 0;
    for (const Wheel &w : wheels_)
        after += w.eq->executed();
    return after - before;
}

} // namespace halsim
