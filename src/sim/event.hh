/**
 * @file
 * Intrusive event base class and a lambda-wrapping convenience event.
 *
 * Components that fire periodically (traffic monitors, pollers, LBP
 * epochs) derive from Event and re-schedule themselves; one-shot work
 * uses EventQueue::schedule() with a callable.
 */

#ifndef HALSIM_SIM_EVENT_HH
#define HALSIM_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "sim/types.hh"

namespace halsim {

class EventQueue;

/**
 * An occurrence scheduled to execute at a simulated time.
 *
 * Events are intrusive: the queue stores a pointer and the scheduling
 * bookkeeping lives in the event itself, so (de)scheduling is cheap
 * and a component can ask whether its event is pending. An Event must
 * outlive its presence in the queue; components normally own their
 * events by value.
 */
class Event
{
  public:
    explicit Event(std::string name = "event") : name_(std::move(name)) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the queue when simulated time reaches when(). */
    virtual void execute() = 0;

    /** Scheduled execution tick; meaningless unless scheduled(). */
    Tick when() const { return when_; }

    /** True while the event sits in a queue. */
    bool scheduled() const { return scheduled_; }

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

  private:
    friend class EventQueue;

    std::string name_;
    Tick when_ = kTickNever;
    std::uint64_t seq_ = 0;   //!< tie-break for same-tick ordering
    std::size_t heapIndex_ = 0;   //!< position in the owning queue's heap
    bool scheduled_ = false;
};

/**
 * Event wrapping an arbitrary callable. Useful for component-owned
 * recurring timers without a dedicated subclass per call site.
 */
class CallbackEvent : public Event
{
  public:
    CallbackEvent() : Event("callback") {}

    explicit CallbackEvent(std::function<void()> fn,
                           std::string name = "callback")
        : Event(std::move(name)), fn_(std::move(fn))
    {}

    /** Replace the callable (only while not scheduled). */
    void
    setCallback(std::function<void()> fn)
    {
        fn_ = std::move(fn);
    }

    void
    execute() override
    {
        fn_();
    }

  private:
    std::function<void()> fn_;
};

} // namespace halsim

#endif // HALSIM_SIM_EVENT_HH
