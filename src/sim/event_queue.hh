/**
 * @file
 * The discrete-event queue driving all simulated components.
 */

#ifndef HALSIM_SIM_EVENT_QUEUE_HH
#define HALSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event.hh"
#include "sim/types.hh"

namespace halsim {

/**
 * Move-only type-erased callable for one-shot events. Unlike
 * std::function it accepts non-copyable captures (PacketPtr,
 * unique_ptr state), so a pending event owns what it captured and
 * queue teardown releases it — nothing in flight can leak.
 */
class UniqueFn
{
  public:
    UniqueFn() = default;

    template <typename F>
    UniqueFn(F fn) : impl_(std::make_unique<Impl<F>>(std::move(fn)))
    {}

    void operator()() { impl_->call(); }

    explicit operator bool() const { return impl_ != nullptr; }

  private:
    struct Base
    {
        virtual ~Base() = default;
        virtual void call() = 0;
    };

    template <typename F>
    struct Impl : Base
    {
        explicit Impl(F f) : fn(std::move(f)) {}
        void call() override { fn(); }
        F fn;
    };

    std::unique_ptr<Base> impl_;
};

/**
 * Binary-heap event queue with deterministic same-tick ordering.
 *
 * Events scheduled at the same tick execute in schedule order (FIFO),
 * which keeps runs bit-reproducible regardless of heap internals.
 * Descheduling is lazy: a descheduled event stays in the heap but is
 * skipped on pop, which keeps deschedule O(1) at the cost of a little
 * heap slack — the right trade for rate-limiter retimers that
 * reschedule often.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p ev to execute at absolute tick @p when.
     * @pre !ev->scheduled() and when >= now().
     */
    void schedule(Event *ev, Tick when);

    /** Schedule @p ev @p delta ticks from now. */
    void
    scheduleIn(Event *ev, Tick delta)
    {
        schedule(ev, now_ + delta);
    }

    /** Remove a pending event; no-op if not scheduled. */
    void deschedule(Event *ev);

    /** Deschedule if pending, then schedule at @p when. */
    void
    reschedule(Event *ev, Tick when)
    {
        if (ev->scheduled())
            deschedule(ev);
        schedule(ev, when);
    }

    /**
     * Schedule a one-shot callable at absolute tick @p when. The
     * wrapper event is owned by the queue and freed after it fires
     * (or at queue teardown, releasing anything it captured).
     */
    void scheduleFn(UniqueFn fn, Tick when);

    /** Schedule a one-shot callable @p delta ticks from now. */
    void
    scheduleFnIn(UniqueFn fn, Tick delta)
    {
        scheduleFn(std::move(fn), now_ + delta);
    }

    /** True when no executable events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (scheduled) events. */
    std::size_t size() const { return live_; }

    /** Tick of the next live event, or kTickNever when empty. */
    Tick nextTick() const;

    /**
     * Execute the single next event, advancing time to it.
     * @retval true an event was executed
     * @retval false the queue was empty
     */
    bool step();

    /**
     * Run until the queue drains or simulated time would pass
     * @p until. Events at exactly @p until still execute; time ends
     * clamped to @p until when the queue still has later events.
     * @return number of events executed
     */
    std::uint64_t runUntil(Tick until);

    /** Run until the queue is empty. @return events executed. */
    std::uint64_t run() { return runUntil(kTickNever); }

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    /** One-shot heap-allocated wrapper for scheduleFn(). */
    class OneShot;

    void heapPush(Entry e);
    Entry heapPop();

    std::vector<Entry> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::size_t live_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace halsim

#endif // HALSIM_SIM_EVENT_QUEUE_HH
