/**
 * @file
 * The discrete-event queue driving all simulated components.
 */

#ifndef HALSIM_SIM_EVENT_QUEUE_HH
#define HALSIM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event.hh"
#include "sim/types.hh"

namespace halsim {

/**
 * Move-only type-erased callable for one-shot events. Unlike
 * std::function it accepts non-copyable captures (PacketPtr,
 * unique_ptr state), so a pending event owns what it captured and
 * queue teardown releases it — nothing in flight can leak.
 *
 * Small captures live in inline storage: every one-shot on the
 * simulator fast path (a packet pointer plus a component pointer or
 * two) fits in the buffer, so scheduling it never heap-allocates.
 * Larger or over-aligned callables fall back to the heap
 * transparently.
 */
class UniqueFn
{
  public:
    /** Inline capture capacity; sized for the datapath lambdas. */
    static constexpr std::size_t kInlineSize = 48;
    static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

    /** True when callable type @p F runs from inline storage. */
    template <typename F>
    static constexpr bool
    inlined()
    {
        return sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
               std::is_nothrow_move_constructible_v<F>;
    }

    UniqueFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, UniqueFn>>>
    UniqueFn(F fn)
    {
        using Fn = std::remove_cvref_t<F>;
        if constexpr (inlined<Fn>()) {
            ::new (storage_) Fn(std::move(fn));
            vt_ = &Ops<Fn, true>::vt;
        } else {
            Fn *p = new Fn(std::move(fn));
            std::memcpy(storage_, &p, sizeof(p));
            vt_ = &Ops<Fn, false>::vt;
        }
    }

    UniqueFn(UniqueFn &&o) noexcept : vt_(o.vt_)
    {
        if (vt_ != nullptr) {
            vt_->relocate(o.storage_, storage_);
            o.vt_ = nullptr;
        }
    }

    UniqueFn &
    operator=(UniqueFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            vt_ = o.vt_;
            if (vt_ != nullptr) {
                vt_->relocate(o.storage_, storage_);
                o.vt_ = nullptr;
            }
        }
        return *this;
    }

    UniqueFn(const UniqueFn &) = delete;
    UniqueFn &operator=(const UniqueFn &) = delete;

    ~UniqueFn() { reset(); }

    void operator()() { vt_->call(storage_); }

    explicit operator bool() const { return vt_ != nullptr; }

    /** Destroy the held callable (and any captures), if any. */
    void
    reset()
    {
        if (vt_ != nullptr) {
            vt_->destroy(storage_);
            vt_ = nullptr;
        }
    }

  private:
    struct VTable
    {
        void (*call)(void *storage);
        /** Move into @p dst's storage and destroy the source. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *storage) noexcept;
    };

    template <typename F, bool Inline>
    struct Ops;

    template <typename F>
    struct Ops<F, true>
    {
        static F *
        get(void *s)
        {
            return std::launder(reinterpret_cast<F *>(s));
        }

        static void call(void *s) { (*get(s))(); }

        static void
        relocate(void *src, void *dst) noexcept
        {
            ::new (dst) F(std::move(*get(src)));
            get(src)->~F();
        }

        static void destroy(void *s) noexcept { get(s)->~F(); }

        static constexpr VTable vt{&call, &relocate, &destroy};
    };

    template <typename F>
    struct Ops<F, false>
    {
        static F *
        get(void *s)
        {
            F *p;
            std::memcpy(&p, s, sizeof(p));
            return p;
        }

        static void call(void *s) { (*get(s))(); }

        static void
        relocate(void *src, void *dst) noexcept
        {
            std::memcpy(dst, src, sizeof(F *));
        }

        static void destroy(void *s) noexcept { delete get(s); }

        static constexpr VTable vt{&call, &relocate, &destroy};
    };

    alignas(kInlineAlign) unsigned char storage_[kInlineSize];
    const VTable *vt_ = nullptr;
};

/**
 * Binary-heap event queue with deterministic same-tick ordering.
 *
 * Events scheduled at the same tick execute in schedule order (FIFO),
 * which keeps runs bit-reproducible regardless of heap internals.
 * Descheduling is lazy: a descheduled event stays in the heap but is
 * skipped on pop, which keeps deschedule O(1) at the cost of a little
 * heap slack — the right trade for rate-limiter retimers that
 * reschedule often.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p ev to execute at absolute tick @p when.
     * @pre !ev->scheduled() and when >= now().
     */
    void schedule(Event *ev, Tick when);

    /** Schedule @p ev @p delta ticks from now. */
    void
    scheduleIn(Event *ev, Tick delta)
    {
        schedule(ev, now_ + delta);
    }

    /** Remove a pending event; no-op if not scheduled. */
    void deschedule(Event *ev);

    /** Deschedule if pending, then schedule at @p when. */
    void
    reschedule(Event *ev, Tick when)
    {
        if (ev->scheduled())
            deschedule(ev);
        schedule(ev, when);
    }

    /**
     * Schedule a one-shot callable at absolute tick @p when. The
     * wrapper event is owned by the queue and freed after it fires
     * (or at queue teardown, releasing anything it captured).
     */
    void scheduleFn(UniqueFn fn, Tick when);

    /** Schedule a one-shot callable @p delta ticks from now. */
    void
    scheduleFnIn(UniqueFn fn, Tick delta)
    {
        scheduleFn(std::move(fn), now_ + delta);
    }

    /** True when no executable events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (scheduled) events. */
    std::size_t size() const { return live_; }

    /** Tick of the next live event, or kTickNever when empty. */
    Tick nextTick() const;

    /**
     * Execute the single next event, advancing time to it.
     * @retval true an event was executed
     * @retval false the queue was empty
     */
    bool step();

    /**
     * Run until the queue drains or simulated time would pass
     * @p until. Events at exactly @p until still execute; time ends
     * clamped to @p until when the queue still has later events.
     * @return number of events executed
     */
    std::uint64_t runUntil(Tick until);

    /** Run until the queue is empty. @return events executed. */
    std::uint64_t run() { return runUntil(kTickNever); }

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    // --- pooling / compaction controls (perf + A/B testing) ----------

    /**
     * Toggle recycling of one-shot wrapper events. Disabling reverts
     * scheduleFn to plain new/delete; simulation results must be
     * identical either way (see test_determinism).
     */
    void setPoolingEnabled(bool on);

    bool poolingEnabled() const { return pooling_; }

    /** Idle one-shot wrappers currently held for reuse. */
    std::size_t poolSize() const { return pool_.size(); }

    /** Heap slots including tombstones (for compaction tests). */
    std::size_t heapSlots() const { return heap_.size(); }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    /** One-shot wrapper for scheduleFn(), recycled via pool_. */
    class OneShot;
    friend class OneShot;

    void heapPush(Entry e);
    Entry heapPop();
    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    /** Record entry @p i's position in its event (tombstones skip). */
    void
    setIndex(std::size_t i)
    {
        if (heap_[i].ev != nullptr)
            heap_[i].ev->heapIndex_ = i;
    }

    /** Return a fired wrapper to the pool (or free it). */
    void releaseOneShot(OneShot *os);

    /**
     * Rebuild the heap without tombstones once dead entries outnumber
     * live ones; amortized O(1) per deschedule, and it bounds heap
     * growth under retimer churn that would otherwise accumulate
     * tombstones without limit.
     */
    void maybeCompact();

    std::vector<Entry> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::size_t live_ = 0;
    std::size_t dead_ = 0;   //!< tombstones still in heap_
    std::uint64_t executed_ = 0;
    bool pooling_ = true;
    std::vector<OneShot *> pool_;
};

} // namespace halsim

#endif // HALSIM_SIM_EVENT_QUEUE_HH
