/**
 * @file
 * The discrete-event queue driving all simulated components.
 */

#ifndef HALSIM_SIM_EVENT_QUEUE_HH
#define HALSIM_SIM_EVENT_QUEUE_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event.hh"
#include "sim/types.hh"

namespace halsim {

/**
 * Move-only type-erased callable for one-shot events. Unlike
 * std::function it accepts non-copyable captures (PacketPtr,
 * unique_ptr state), so a pending event owns what it captured and
 * queue teardown releases it — nothing in flight can leak.
 *
 * Small captures live in inline storage: every one-shot on the
 * simulator fast path (a packet pointer plus a component pointer or
 * two) fits in the buffer, so scheduling it never heap-allocates.
 * Larger or over-aligned callables fall back to the heap
 * transparently.
 */
class UniqueFn
{
  public:
    /** Inline capture capacity; sized for the datapath lambdas. */
    static constexpr std::size_t kInlineSize = 48;
    static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

    /** True when callable type @p F runs from inline storage. */
    template <typename F>
    static constexpr bool
    inlined()
    {
        return sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
               std::is_nothrow_move_constructible_v<F>;
    }

    UniqueFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, UniqueFn>>>
    UniqueFn(F fn)
    {
        using Fn = std::remove_cvref_t<F>;
        if constexpr (inlined<Fn>()) {
            ::new (storage_) Fn(std::move(fn));
            vt_ = &Ops<Fn, true>::vt;
        } else {
            Fn *p = new Fn(std::move(fn));
            std::memcpy(storage_, &p, sizeof(p));
            vt_ = &Ops<Fn, false>::vt;
        }
    }

    UniqueFn(UniqueFn &&o) noexcept : vt_(o.vt_)
    {
        if (vt_ != nullptr) {
            vt_->relocate(o.storage_, storage_);
            o.vt_ = nullptr;
        }
    }

    UniqueFn &
    operator=(UniqueFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            vt_ = o.vt_;
            if (vt_ != nullptr) {
                vt_->relocate(o.storage_, storage_);
                o.vt_ = nullptr;
            }
        }
        return *this;
    }

    UniqueFn(const UniqueFn &) = delete;
    UniqueFn &operator=(const UniqueFn &) = delete;

    ~UniqueFn() { reset(); }

    void operator()() { vt_->call(storage_); }

    explicit operator bool() const { return vt_ != nullptr; }

    /** Destroy the held callable (and any captures), if any. */
    void
    reset()
    {
        if (vt_ != nullptr) {
            vt_->destroy(storage_);
            vt_ = nullptr;
        }
    }

  private:
    struct VTable
    {
        void (*call)(void *storage);
        /** Move into @p dst's storage and destroy the source. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *storage) noexcept;
    };

    template <typename F, bool Inline>
    struct Ops;

    template <typename F>
    struct Ops<F, true>
    {
        static F *
        get(void *s)
        {
            return std::launder(reinterpret_cast<F *>(s));
        }

        static void call(void *s) { (*get(s))(); }

        static void
        relocate(void *src, void *dst) noexcept
        {
            ::new (dst) F(std::move(*get(src)));
            get(src)->~F();
        }

        static void destroy(void *s) noexcept { get(s)->~F(); }

        static constexpr VTable vt{&call, &relocate, &destroy};
    };

    template <typename F>
    struct Ops<F, false>
    {
        static F *
        get(void *s)
        {
            F *p;
            std::memcpy(&p, s, sizeof(p));
            return p;
        }

        static void call(void *s) { (*get(s))(); }

        static void
        relocate(void *src, void *dst) noexcept
        {
            std::memcpy(dst, src, sizeof(F *));
        }

        static void destroy(void *s) noexcept { delete get(s); }

        static constexpr VTable vt{&call, &relocate, &destroy};
    };

    alignas(kInlineAlign) unsigned char storage_[kInlineSize];
    const VTable *vt_ = nullptr;
};

/**
 * Binary-heap event queue with deterministic same-tick ordering.
 *
 * Events scheduled at the same tick execute in schedule order (FIFO),
 * which keeps runs bit-reproducible regardless of heap internals.
 * Descheduling is lazy: a descheduled event stays in the heap but is
 * skipped on pop, which keeps deschedule O(1) at the cost of a little
 * heap slack — the right trade for rate-limiter retimers that
 * reschedule often.
 *
 * Ordering is the total order (when, key) where a key is reserved at
 * schedule time. Keys can also be reserved up front (reserveKey) and
 * attached later (scheduleKeyed): a component holding a FIFO of
 * timed work keeps only its head in the heap yet preserves exactly
 * the order it would have had with one heap entry per item — the
 * contract TimedChannel builds on. The top byte of every key is the
 * queue's band (setBand), so entries merged across queues in the
 * time-parallel mode still have a fixed same-tick order.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p ev to execute at absolute tick @p when.
     * @pre !ev->scheduled() and when >= now().
     */
    void schedule(Event *ev, Tick when);

    /**
     * Reserve the next position in the same-tick total order without
     * scheduling anything. Pass the key to scheduleKeyed() later; the
     * event then executes exactly where a schedule() issued at the
     * reservation point would have.
     */
    std::uint64_t reserveKey() { return bandBits_ | ++seq_; }

    /**
     * Schedule @p ev at @p when under a previously reserved @p key
     * (or one carried over from another queue's reservation in the
     * time-parallel mode).
     */
    void scheduleKeyed(Event *ev, Tick when, std::uint64_t key);

    /** Schedule @p ev @p delta ticks from now. */
    void
    scheduleIn(Event *ev, Tick delta)
    {
        schedule(ev, now_ + delta);
    }

    /** Remove a pending event; no-op if not scheduled. */
    void deschedule(Event *ev);

    /** Deschedule if pending, then schedule at @p when. */
    void
    reschedule(Event *ev, Tick when)
    {
        if (ev->scheduled())
            deschedule(ev);
        schedule(ev, when);
    }

    /**
     * Schedule a one-shot callable at absolute tick @p when. The
     * wrapper event is owned by the queue and freed after it fires
     * (or at queue teardown, releasing anything it captured).
     */
    void scheduleFn(UniqueFn fn, Tick when);

    /** Schedule a one-shot callable @p delta ticks from now. */
    void
    scheduleFnIn(UniqueFn fn, Tick delta)
    {
        scheduleFn(std::move(fn), now_ + delta);
    }

    /**
     * Schedule a one-shot callable at @p when, coalescing it with the
     * most recently opened same-tick batch: up to kBatchCapacity
     * callables scheduled back-to-back for the same tick share one
     * heap entry and run in submission order when it fires. Relative
     * order against *other* events at the same tick follows the
     * batch's key (reserved when the batch opened), so callers must
     * treat intra-tick interleaving as unspecified — the price of the
     * amortization. With batching disabled this is exactly
     * scheduleFn().
     */
    void scheduleBatch(UniqueFn fn, Tick when);

    /** scheduleBatch() @p delta ticks from now. */
    void
    scheduleBatchIn(UniqueFn fn, Tick delta)
    {
        scheduleBatch(std::move(fn), now_ + delta);
    }

    /** Callables one coalesced batch can hold. */
    static constexpr std::size_t kBatchCapacity = 64;

    /** True when no executable events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (scheduled) events. */
    std::size_t size() const { return live_; }

    /** Tick of the next live event, or kTickNever when empty. */
    Tick nextTick() const;

    /**
     * Execute the single next event, advancing time to it.
     * @retval true an event was executed
     * @retval false the queue was empty
     */
    bool step();

    /**
     * Run until the queue drains or simulated time would pass
     * @p until. Events at exactly @p until still execute; time ends
     * clamped to @p until when the queue still has later events.
     * @return number of events executed
     */
    std::uint64_t runUntil(Tick until);

    /** Run until the queue is empty. @return events executed. */
    std::uint64_t run() { return runUntil(kTickNever); }

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    // --- batched same-tick drains (TimedChannel fast path) -----------

    /**
     * True when an event at (when, key) may run right now, in place,
     * without a heap round-trip: batching is on, @p when does not
     * pass the enclosing runUntil() bound, and (when, key) precedes
     * the earliest heap entry. A tombstoned heap root answers false
     * (conservative: the true minimum is unknown without a scan).
     */
    bool
    canRunInline(Tick when, std::uint64_t key) const
    {
        if (!batching_ || when > limit_)
            return false;
        if (heap_.empty())
            return true;
        const Entry &top = heap_.front();
        if (top.ev == nullptr)
            return false;
        return when < top.when || (when == top.when && key < top.seq);
    }

    /** Advance time to an inline-executed event (see canRunInline). */
    void
    advanceInline(Tick when)
    {
        assert(when >= now_ && "inline drain moved time backwards");
        now_ = when;
        ++executed_;
    }

    /**
     * Toggle same-tick drains and scheduleBatch coalescing. Disabled,
     * every item takes its own heap round-trip; results must be
     * bit-identical either way (see test_determinism).
     */
    void setBatchingEnabled(bool on) { batching_ = on; }

    bool batchingEnabled() const { return batching_; }

    /**
     * Events clamped to now() by the release-mode guard in
     * schedule(); nonzero means a component computed a past tick.
     */
    std::uint64_t pastClamps() const { return pastClamps_; }

    // --- time-parallel mode (WheelRunner) ----------------------------

    /**
     * Tag this queue's reserved keys with a wheel band (top byte), so
     * same-tick entries merged across wheels keep one global order:
     * (tick, band, seq).
     */
    void
    setBand(std::uint8_t band)
    {
        bandBits_ = static_cast<std::uint64_t>(band) << kBandShift;
    }

    std::uint8_t
    band() const
    {
        return static_cast<std::uint8_t>(bandBits_ >> kBandShift);
    }

    // --- pooling / compaction controls (perf + A/B testing) ----------

    /**
     * Toggle recycling of one-shot wrapper events. Disabling reverts
     * scheduleFn to plain new/delete; simulation results must be
     * identical either way (see test_determinism).
     */
    void setPoolingEnabled(bool on);

    bool poolingEnabled() const { return pooling_; }

    /** Idle one-shot wrappers currently held for reuse. */
    std::size_t poolSize() const { return pool_.size(); }

    /** Heap slots including tombstones (for compaction tests). */
    std::size_t heapSlots() const { return heap_.size(); }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    /** One-shot wrapper for scheduleFn(), recycled via pool_. */
    class OneShot;
    friend class OneShot;

    /** Coalesced same-tick batch for scheduleBatch(). */
    class Batch;
    friend class Batch;

    void heapPush(Entry e);
    Entry heapPop();
    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    /** Record entry @p i's position in its event (tombstones skip). */
    void
    setIndex(std::size_t i)
    {
        if (heap_[i].ev != nullptr)
            heap_[i].ev->heapIndex_ = i;
    }

    /** Return a fired wrapper to the pool (or free it). */
    void releaseOneShot(OneShot *os);

    /** Return a fired batch to the pool (or free it). */
    void releaseBatch(Batch *b);

    static constexpr unsigned kBandShift = 56;

    /**
     * Rebuild the heap without tombstones once dead entries outnumber
     * live ones; amortized O(1) per deschedule, and it bounds heap
     * growth under retimer churn that would otherwise accumulate
     * tombstones without limit.
     */
    void maybeCompact();

    std::vector<Entry> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t bandBits_ = 0;
    std::size_t live_ = 0;
    std::size_t dead_ = 0;   //!< tombstones still in heap_
    std::uint64_t executed_ = 0;
    std::uint64_t pastClamps_ = 0;
    /** Bound of the innermost runUntil(); inline drains stop here. */
    Tick limit_ = kTickNever;
    bool pooling_ = true;
    bool batching_ = true;
    std::vector<OneShot *> pool_;
    std::vector<Batch *> batchPool_;
    /** Most recently opened coalescing batch (null once it fires). */
    Batch *openBatch_ = nullptr;
    Tick openBatchWhen_ = 0;
};

} // namespace halsim

#endif // HALSIM_SIM_EVENT_QUEUE_HH
