/**
 * @file
 * Bounded single-producer/single-consumer mailbox for cross-wheel
 * event traffic in time-parallel runs (DESIGN.md §13).
 *
 * One wheel thread pushes, exactly one other wheel thread pops; the
 * window-barrier protocol guarantees the producer only writes while
 * the consumer is parked at a barrier (and vice versa), so the
 * acquire/release pair below is all the synchronization the data
 * needs. Capacity is fixed; the producer asserts on overflow because
 * a full mailbox means the lookahead window admitted more in-flight
 * messages than the edge can carry — a protocol bug, not load.
 */

#ifndef HALSIM_SIM_MAILBOX_HH
#define HALSIM_SIM_MAILBOX_HH

#include <atomic>
#include <cassert>
#include <cstddef>

namespace halsim {

// halint: mailbox
template <typename T, std::size_t Cap = 4096>
class SpscMailbox
{
  public:
    static constexpr std::size_t kCapacity = Cap;

    /** Producer side. @pre not full. */
    void
    push(T v)
    {
        const std::size_t t = tail_.load(std::memory_order_relaxed);
        assert(t - head_.load(std::memory_order_acquire) < Cap &&
               "mailbox overflow: lookahead window too wide");
        slots_[t % Cap] = std::move(v);
        tail_.store(t + 1, std::memory_order_release);
    }

    /** Consumer side: pop into @p out; false when empty. */
    bool
    pop(T &out)
    {
        const std::size_t h = head_.load(std::memory_order_relaxed);
        if (h == tail_.load(std::memory_order_acquire))
            return false;
        out = std::move(slots_[h % Cap]);
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side: peek at the head without consuming. */
    const T *
    peek() const
    {
        const std::size_t h = head_.load(std::memory_order_relaxed);
        if (h == tail_.load(std::memory_order_acquire))
            return nullptr;
        return &slots_[h % Cap];
    }

    /** Consumer side: drop the head after a successful peek(). */
    void
    popFront()
    {
        const std::size_t h = head_.load(std::memory_order_relaxed);
        assert(h != tail_.load(std::memory_order_acquire));
        slots_[h % Cap] = T{};
        head_.store(h + 1, std::memory_order_release);
    }

    bool
    empty() const
    {
        return head_.load(std::memory_order_relaxed) ==
               tail_.load(std::memory_order_acquire);
    }

    std::size_t
    size() const
    {
        return tail_.load(std::memory_order_acquire) -
               head_.load(std::memory_order_relaxed);
    }

  private:
    T slots_[Cap] = {};
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
};

} // namespace halsim

#endif // HALSIM_SIM_MAILBOX_HH
