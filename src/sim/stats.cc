#include "sim/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace halsim {

void
Accumulator::sample(double v)
{
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
}

void
Accumulator::merge(const Accumulator &o)
{
    if (o.count_ == 0)
        return;
    if (count_ == 0) {
        *this = o;
        return;
    }
    // Chan et al. parallel variance combination.
    const double delta = o.mean_ - mean_;
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(o.count_);
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += o.m2_ + delta * delta * na * nb / n;
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
}

double
Accumulator::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, unsigned bins_per_decade)
{
    assert(lo > 0.0 && hi > lo && bins_per_decade > 0);
    logLo_ = std::log10(lo);
    logHi_ = std::log10(hi);
    binsPerLog_ = static_cast<double>(bins_per_decade);
    const auto nbins = static_cast<std::size_t>(
        std::ceil((logHi_ - logLo_) * binsPerLog_));
    bins_.assign(std::max<std::size_t>(nbins, 1), 0);
}

std::size_t
Histogram::binIndex(double v) const
{
    if (v <= 0.0)
        return 0;
    const double pos = (std::log10(v) - logLo_) * binsPerLog_;
    if (pos < 0.0)
        return 0;
    const auto i = static_cast<std::size_t>(pos);
    return std::min(i, bins_.size() - 1);
}

double
Histogram::binLowerEdge(std::size_t i) const
{
    return std::pow(10.0, logLo_ + static_cast<double>(i) / binsPerLog_);
}

double
Histogram::binUpperEdge(std::size_t i) const
{
    return std::pow(10.0, logLo_ + static_cast<double>(i + 1) / binsPerLog_);
}

void
Histogram::sample(double v)
{
    ++bins_[binIndex(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = max_ = 0.0;
}

void
Histogram::merge(const Histogram &o)
{
    if (logLo_ != o.logLo_ || logHi_ != o.logHi_ ||
        binsPerLog_ != o.binsPerLog_ || bins_.size() != o.bins_.size()) {
        throw std::invalid_argument(
            "Histogram::merge: binning mismatch");
    }
    if (o.count_ == 0)
        return;
    for (std::size_t i = 0; i < bins_.size(); ++i)
        bins_[i] += o.bins_[i];
    if (count_ == 0) {
        min_ = o.min_;
        max_ = o.max_;
    } else {
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }
    count_ += o.count_;
    sum_ += o.sum_;
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count_);
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue;
        const double before = static_cast<double>(running);
        running += bins_[i];
        if (static_cast<double>(running) >= target) {
            // Interpolate within the bin in log space, clamped to the
            // observed extremes so tiny sample counts stay sane.
            const double frac =
                bins_[i] ? (target - before) / static_cast<double>(bins_[i])
                         : 0.0;
            const double lo = std::log10(binLowerEdge(i));
            const double hi = std::log10(binUpperEdge(i));
            const double v = std::pow(10.0, lo + (hi - lo) *
                                                std::clamp(frac, 0.0, 1.0));
            return std::clamp(v, min_, max_);
        }
    }
    return max_;
}

void
TimeWeighted::set(double v, Tick now)
{
    assert(now >= lastChange_);
    integral_ += value_ * static_cast<double>(now - lastChange_);
    lastChange_ = now;
    value_ = v;
}

double
TimeWeighted::integral(Tick now) const
{
    assert(now >= lastChange_);
    return integral_ + value_ * static_cast<double>(now - lastChange_);
}

double
TimeWeighted::average(Tick now) const
{
    if (now <= start_)
        return value_;
    return integral(now) / static_cast<double>(now - start_);
}

void
TimeWeighted::resetAt(Tick now)
{
    assert(now >= lastChange_);
    integral_ = 0.0;
    lastChange_ = now;
    start_ = now;
}

} // namespace halsim
