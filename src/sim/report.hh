/**
 * @file
 * Tabular result reporting: collect named rows of metrics and render
 * them as an aligned text table, CSV, or JSON lines. The bench
 * binaries print paper-style tables; this gives downstream users a
 * machine-readable path for the same data.
 */

#ifndef HALSIM_SIM_REPORT_HH
#define HALSIM_SIM_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace halsim {

/**
 * A rectangular table of metrics with typed cells.
 */
class ReportTable
{
  public:
    using Cell = std::variant<std::string, double, std::int64_t>;

    /** @param columns header names, fixed for the table's lifetime */
    explicit ReportTable(std::vector<std::string> columns);

    /** Begin a new row; subsequent add() calls fill it in order. */
    ReportTable &row();

    ReportTable &add(const std::string &v);
    ReportTable &add(const char *v);
    ReportTable &add(double v);
    ReportTable &add(std::int64_t v);
    ReportTable &add(std::uint64_t v);

    std::size_t rows() const { return cells_.size(); }
    std::size_t columns() const { return columns_.size(); }

    /** Cell accessor for tests (row, column). */
    const Cell &at(std::size_t r, std::size_t c) const;

    /** Aligned human-readable table. */
    void writeText(std::ostream &os) const;

    /** RFC 4180-ish CSV with a header row. */
    void writeCsv(std::ostream &os) const;

    /** One JSON object per row (JSON lines). */
    void writeJsonLines(std::ostream &os) const;

  private:
    static std::string render(const Cell &cell);
    static std::string escapeCsv(const std::string &s);
    static std::string escapeJson(const std::string &s);

    std::vector<std::string> columns_;
    std::vector<std::vector<Cell>> cells_;
};

} // namespace halsim

#endif // HALSIM_SIM_REPORT_HH
