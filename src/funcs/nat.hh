/**
 * @file
 * Network address translation over a preloaded translation table
 * (1 K or 10 K entries, Table IV). NAT operates on the real packet
 * headers: it looks up the flow by (source IP, source UDP port),
 * rewrites the destination address/port to the mapped internal
 * server, and patches the IPv4 header checksum incrementally — the
 * same datapath a hardware NAT performs.
 */

#ifndef HALSIM_FUNCS_NAT_HH
#define HALSIM_FUNCS_NAT_HH

#include <cstdint>

#include "alg/fixed_map.hh"
#include "funcs/function.hh"

namespace halsim::funcs {

/**
 * Stateless-table NAT (the table is fixed at setup, so cooperative
 * processing needs no coherence — the paper classifies NAT as
 * stateless).
 */
class NatFunction : public NetworkFunction
{
  public:
    struct Config
    {
        std::uint32_t entries = 10000;   //!< 1 K or 10 K in the paper
        net::Ipv4Addr internal_base{192, 168, 0, 0};
    };

    NatFunction() : NatFunction(Config{}) {}
    explicit NatFunction(Config cfg);

    FunctionId id() const override { return FunctionId::Nat; }
    bool stateful() const override { return false; }
    void process(net::Packet &pkt,
                 coherence::StateContext &state) override;
    void makeRequest(net::Packet &pkt, Rng &rng) override;

    /** Number of packets that missed the table (dropped by NAT). */
    std::uint64_t misses() const { return misses_; }

    /** Translation for a flow key (test hook). */
    struct Mapping
    {
        net::Ipv4Addr ip;
        std::uint16_t port;
    };
    const Mapping *lookup(std::uint32_t src_ip,
                          std::uint16_t src_port) const;

  private:
    static std::uint64_t
    flowKey(std::uint32_t ip, std::uint16_t port)
    {
        return (std::uint64_t{ip} << 16) | port;
    }

    Config cfg_;
    alg::FixedMap<std::uint64_t, Mapping> table_;
    std::uint64_t misses_ = 0;
};

} // namespace halsim::funcs

#endif // HALSIM_FUNCS_NAT_HH
