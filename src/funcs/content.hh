/**
 * @file
 * The content-processing functions: plain DPDK forwarding, REM
 * (literal multi-pattern matching over the payload via Aho-Corasick,
 * with teakettle/snort rulesets), public-key cryptography (RSA / DH /
 * DSA over real bignum modexp), and Deflate compression.
 */

#ifndef HALSIM_FUNCS_CONTENT_HH
#define HALSIM_FUNCS_CONTENT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "alg/aho_corasick.hh"
#include "alg/bignum.hh"
#include "alg/corpus.hh"
#include "funcs/function.hh"

namespace halsim::funcs {

/**
 * Baseline DPDK packet processing: receive, touch the header, echo.
 * The paper uses this to characterize raw SNIC/host packet rates.
 */
class DpdkFwdFunction : public NetworkFunction
{
  public:
    FunctionId id() const override { return FunctionId::DpdkFwd; }
    bool stateful() const override { return false; }
    void process(net::Packet &pkt,
                 coherence::StateContext &state) override;
    void makeRequest(net::Packet &pkt, Rng &rng) override;
};

/**
 * Regular-expression matching (Hyperscan-style literal rulesets run
 * through an Aho-Corasick automaton).
 *
 * Request payload: scan text (whole payload)
 * Response payload: [match_count:8]
 */
class RemFunction : public NetworkFunction
{
  public:
    struct Config
    {
        alg::RulesetKind ruleset = alg::RulesetKind::Teakettle;
        std::size_t rules = 2500;
        /** Fraction of generated payload windows with a planted hit. */
        double hit_rate = 0.05;
        std::uint64_t seed = 5;
    };

    RemFunction() : RemFunction(Config{}) {}
    explicit RemFunction(Config cfg);

    FunctionId id() const override { return FunctionId::Rem; }
    bool stateful() const override { return false; }
    void process(net::Packet &pkt,
                 coherence::StateContext &state) override;
    void makeRequest(net::Packet &pkt, Rng &rng) override;

    const alg::AhoCorasick &automaton() const { return *ac_; }
    std::uint64_t totalMatches() const { return totalMatches_; }

  private:
    Config cfg_;
    std::vector<std::string> rules_;
    std::unique_ptr<alg::AhoCorasick> ac_;
    /** Pre-generated scan corpus sliced into payloads. */
    std::vector<std::uint8_t> corpus_;
    std::uint64_t totalMatches_ = 0;
};

/**
 * Public-key cryptography: signs the packet digest with one of
 * RSA / DH / DSA-style modular exponentiations over a 512-bit group.
 *
 * Request payload: [op:1][message...]
 *   op 0 = RSA-style (digest^e mod n, e = 65537)
 *   op 1 = DH-style  (g^x mod p, x from digest)
 *   op 2 = DSA-style (g^k mod p combined with digest)
 * Response payload: [op:1][result bytes:64]
 */
class CryptoFunction : public NetworkFunction
{
  public:
    struct Config
    {
        /** Exponent bits used for the DH/DSA ephemeral exponents;
         *  kept modest so a real modexp per packet stays cheap. */
        unsigned exponent_bits = 16;
        /** Bytes of payload covered by the signature digest (real
         *  protocols sign a digest of the session material, not the
         *  bulk payload). */
        std::size_t digest_bytes = 256;
    };

    CryptoFunction() : CryptoFunction(Config{}) {}
    explicit CryptoFunction(Config cfg);

    FunctionId id() const override { return FunctionId::Crypto; }
    bool stateful() const override { return false; }
    void process(net::Packet &pkt,
                 coherence::StateContext &state) override;
    void makeRequest(net::Packet &pkt, Rng &rng) override;

    const alg::BigUint &modulus() const { return n_; }

  private:
    Config cfg_;
    alg::BigUint n_;   //!< 512-bit prime modulus
    alg::BigUint g_;   //!< generator
    alg::BigUint e_;   //!< RSA-style public exponent
};

/**
 * Deflate compression of the payload (Silesia-like content).
 *
 * Request payload: raw data (whole payload)
 * Response payload: [orig_len:4][comp_len:4][compressed prefix...]
 */
class CompressFunction : public NetworkFunction
{
  public:
    struct Config
    {
        unsigned max_chain = 16;   //!< per-packet effort
        std::uint64_t seed = 6;
    };

    CompressFunction() : CompressFunction(Config{}) {}
    explicit CompressFunction(Config cfg);

    FunctionId id() const override { return FunctionId::Compress; }
    /**
     * The paper treats compression as stateful (it processes a file
     * stream) and excludes it from cooperative processing; we keep
     * the flag so the harness can do the same.
     */
    bool stateful() const override { return true; }
    void process(net::Packet &pkt,
                 coherence::StateContext &state) override;
    void makeRequest(net::Packet &pkt, Rng &rng) override;

    std::uint64_t bytesIn() const { return bytesIn_; }
    std::uint64_t bytesOut() const { return bytesOut_; }

  private:
    Config cfg_;
    std::vector<std::uint8_t> corpus_;
    std::uint64_t bytesIn_ = 0;
    std::uint64_t bytesOut_ = 0;
};

} // namespace halsim::funcs

#endif // HALSIM_FUNCS_CONTENT_HH
