#include "funcs/nat.hh"

namespace halsim::funcs {

NatFunction::NatFunction(Config cfg) : cfg_(cfg), table_(cfg.entries * 2)
{
    // Preload the translation table: flows are (client base IP,
    // one of `entries` source ports) -> distinct internal servers.
    for (std::uint32_t i = 0; i < cfg_.entries; ++i) {
        const auto port = static_cast<std::uint16_t>(1024 + i % 60000);
        const std::uint32_t ip =
            net::Ipv4Addr(10, 0, 0, 1).value + i / 60000;
        Mapping m;
        m.ip = net::Ipv4Addr(cfg_.internal_base.value + 1 + i % 65534);
        m.port = static_cast<std::uint16_t>(2000 + i % 50000);
        table_.put(flowKey(ip, port), m);
    }
}

void
NatFunction::process(net::Packet &pkt, coherence::StateContext &)
{
    const std::uint32_t src_ip = pkt.ip().src().value;
    const std::uint16_t src_port = pkt.udp().srcPort();
    const Mapping *m = table_.find(flowKey(src_ip, src_port));
    auto p = pkt.payload();
    if (m == nullptr) {
        ++misses_;
        if (!p.empty())
            p[0] = 0;   // mark untranslated
        return;
    }
    // DNAT: rewrite the destination to the mapped internal server,
    // fixing the IP header checksum incrementally (RFC 1624) just as
    // the hardware datapath would.
    pkt.ip().rewriteDst(m->ip);
    pkt.udp().setDstPort(m->port);
    if (!p.empty())
        p[0] = 1;   // mark translated
}

void
NatFunction::makeRequest(net::Packet &pkt, Rng &rng)
{
    // Spread requests across the configured flow table: vary the
    // source port (and IP beyond 60 K entries) like the paper's
    // packet generator does.
    const std::uint32_t i =
        static_cast<std::uint32_t>(rng.uniformInt(cfg_.entries));
    pkt.ip().rewriteSrc(
        net::Ipv4Addr(net::Ipv4Addr(10, 0, 0, 1).value + i / 60000));
    pkt.udp().setSrcPort(static_cast<std::uint16_t>(1024 + i % 60000));
}

const NatFunction::Mapping *
NatFunction::lookup(std::uint32_t src_ip, std::uint16_t src_port) const
{
    return table_.find(flowKey(src_ip, src_port));
}

} // namespace halsim::funcs
