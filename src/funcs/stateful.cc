#include "funcs/stateful.hh"

#include <algorithm>
#include <cstring>

#include "net/bytes.hh"

namespace halsim::funcs {

using net::load64;
using net::store64;

void
KvsFunction::process(net::Packet &pkt, coherence::StateContext &state)
{
    auto p = pkt.payload();
    if (p.size() < 41) {
        p[0] = 0xff;   // malformed
        return;
    }
    const std::uint8_t op = p[0];
    const std::uint64_t key = load64(p.data() + 1);

    Value value{};
    std::memcpy(value.data(), p.data() + 9, value.size());

    std::uint8_t status = 0;
    Value out{};
    switch (op) {
      case 0: {   // GET
        state.touch(stateLineAddr(key), false);
        const Value *v = store_.find(key);
        if (v != nullptr)
            out = *v;
        else
            status = 1;
        break;
      }
      case 1:   // PUT
        state.touch(stateLineAddr(key), true);
        store_.put(key, value);
        out = value;
        break;
      case 2:   // INSERT
        state.touch(stateLineAddr(key), false);
        if (store_.contains(key)) {
            status = 2;
        } else {
            state.touch(stateLineAddr(key), true);
            store_.put(key, value);
            out = value;
        }
        break;
      default:
        status = 0xff;
        break;
    }
    p[0] = status;
    std::memcpy(p.data() + 1, out.data(), out.size());
}

void
KvsFunction::makeRequest(net::Packet &pkt, Rng &rng)
{
    auto p = pkt.payload();
    const double pick = rng.uniform();
    std::uint8_t op;
    if (pick < cfg_.get_fraction)
        op = 0;
    else if (pick < cfg_.get_fraction + cfg_.put_fraction)
        op = 1;
    else
        op = 2;
    p[0] = op;
    store64(p.data() + 1, rng.uniformInt(cfg_.key_space));
    for (int i = 0; i < 32; ++i)
        p[9 + i] = static_cast<std::uint8_t>(rng.next());
}

void
CountFunction::process(net::Packet &pkt, coherence::StateContext &state)
{
    auto p = pkt.payload();
    const unsigned batch =
        std::min<unsigned>(p[0], static_cast<unsigned>((p.size() - 1) / 8));
    for (unsigned i = 0; i < batch; ++i) {
        const std::uint64_t key = load64(p.data() + 1 + 8 * i);
        state.touch(stateLineAddr(key), true);   // read-modify-write of the counter
        std::uint64_t *c = counts_.find(key);
        std::uint64_t now;
        if (c != nullptr) {
            now = ++*c;
        } else {
            counts_.put(key, 1);
            now = 1;
        }
        store64(p.data() + 1 + 8 * i, now);
    }
}

void
CountFunction::makeRequest(net::Packet &pkt, Rng &rng)
{
    auto p = pkt.payload();
    p[0] = static_cast<std::uint8_t>(cfg_.batch);
    for (unsigned i = 0; i < cfg_.batch; ++i)
        store64(p.data() + 1 + 8 * i, rng.uniformInt(cfg_.key_space));
}

std::uint64_t
CountFunction::countOf(std::uint64_t key) const
{
    const std::uint64_t *c = counts_.find(key);
    return c != nullptr ? *c : 0;
}

std::uint64_t
CountFunction::totalCounted() const
{
    std::uint64_t total = 0;
    counts_.forEach(
        [&](const std::uint64_t &, const std::uint64_t &v) { total += v; });
    return total;
}

void
EmaFunction::process(net::Packet &pkt, coherence::StateContext &state)
{
    auto p = pkt.payload();
    const unsigned batch =
        std::min<unsigned>(p[0], static_cast<unsigned>((p.size() - 1) / 16));
    const std::int64_t alpha = cfg_.alpha_milli;
    for (unsigned i = 0; i < batch; ++i) {
        const std::uint64_t key = load64(p.data() + 1 + 16 * i);
        const auto sample =
            static_cast<std::int64_t>(load64(p.data() + 9 + 16 * i));
        state.touch(stateLineAddr(key), true);
        std::int64_t *cur = ema_.find(key);
        std::int64_t next;
        if (cur != nullptr) {
            next = (alpha * sample + (1000 - alpha) * *cur) / 1000;
            *cur = next;
        } else {
            next = sample;
            ema_.put(key, next);
        }
        store64(p.data() + 1 + 8 * i, static_cast<std::uint64_t>(next));
    }
}

void
EmaFunction::makeRequest(net::Packet &pkt, Rng &rng)
{
    auto p = pkt.payload();
    p[0] = static_cast<std::uint8_t>(cfg_.batch);
    for (unsigned i = 0; i < cfg_.batch; ++i) {
        store64(p.data() + 1 + 16 * i, rng.uniformInt(cfg_.key_space));
        store64(p.data() + 9 + 16 * i, rng.uniformInt(1000000));
    }
}

std::int64_t
EmaFunction::emaOf(std::uint64_t key) const
{
    const std::int64_t *v = ema_.find(key);
    return v != nullptr ? *v : 0;
}

} // namespace halsim::funcs
