/**
 * @file
 * The analytics functions of Table IV: BM25 search ranking (2 K/4 K
 * terms), k-nearest-neighbour classification (set sizes 8/16), and a
 * naive Bayes classifier (128/256 features). All three build real
 * models at construction and compute real answers per request.
 */

#ifndef HALSIM_FUNCS_ANALYTICS_HH
#define HALSIM_FUNCS_ANALYTICS_HH

#include <cstdint>
#include <vector>

#include "funcs/function.hh"

namespace halsim::funcs {

/**
 * BM25 ranking over a synthetic inverted index.
 *
 * Request payload: [nterms:1][term_id:2] x nterms
 * Response payload: [doc_id:4][score_milli:8]
 */
class Bm25Function : public NetworkFunction
{
  public:
    struct Config
    {
        std::uint32_t vocabulary = 4096;   //!< 2 K or 4 K in the paper
        std::uint32_t documents = 1024;
        std::uint32_t avg_postings = 24;   //!< docs per term
        unsigned query_terms = 8;
        std::uint64_t seed = 1;
    };

    Bm25Function() : Bm25Function(Config{}) {}
    explicit Bm25Function(Config cfg);

    FunctionId id() const override { return FunctionId::Bm25; }
    bool stateful() const override { return false; }
    void process(net::Packet &pkt,
                 coherence::StateContext &state) override;
    void makeRequest(net::Packet &pkt, Rng &rng) override;

    /** BM25 score of @p doc for the given terms (test hook). */
    double score(std::uint32_t doc,
                 const std::vector<std::uint16_t> &terms) const;

  private:
    struct Posting
    {
        std::uint32_t doc;
        std::uint16_t tf;   //!< term frequency in the document
    };

    Config cfg_;
    std::vector<std::vector<Posting>> postings_;  //!< per term
    std::vector<std::uint16_t> docLength_;
    double avgDocLength_ = 0.0;
    std::vector<double> idf_;
};

/**
 * k-NN classifier: L2 distance over 16 byte-features against a
 * per-class reference set, majority vote of the k nearest.
 *
 * Request payload: [features:16]
 * Response payload: [class:1]
 */
class KnnFunction : public NetworkFunction
{
  public:
    static constexpr unsigned kDims = 16;

    struct Config
    {
        unsigned classes = 4;
        unsigned set_size = 16;   //!< reference points per class (8/16)
        unsigned k = 3;
        std::uint64_t seed = 2;
    };

    KnnFunction() : KnnFunction(Config{}) {}
    explicit KnnFunction(Config cfg);

    FunctionId id() const override { return FunctionId::Knn; }
    bool stateful() const override { return false; }
    void process(net::Packet &pkt,
                 coherence::StateContext &state) override;
    void makeRequest(net::Packet &pkt, Rng &rng) override;

    /** Classify a raw feature vector (test hook). */
    unsigned classify(const std::uint8_t *features) const;

    /** Cluster centre of @p cls (test hook for separability checks). */
    const std::uint8_t *centroid(unsigned cls) const;

  private:
    struct RefPoint
    {
        std::uint8_t features[kDims];
        std::uint8_t label;
    };

    Config cfg_;
    std::vector<RefPoint> refs_;
    std::vector<std::array<std::uint8_t, kDims>> centroids_;
};

/**
 * Naive Bayes over binary features with integer log-likelihoods
 * (milli-nats, so the wire answer is platform-independent).
 *
 * Request payload: [feature bitset: n_features/8 bytes]
 * Response payload: [class:1]
 */
class BayesFunction : public NetworkFunction
{
  public:
    struct Config
    {
        unsigned classes = 4;
        unsigned features = 256;   //!< 128 or 256 in the paper
        std::uint64_t seed = 3;
    };

    BayesFunction() : BayesFunction(Config{}) {}
    explicit BayesFunction(Config cfg);

    FunctionId id() const override { return FunctionId::Bayes; }
    bool stateful() const override { return false; }
    void process(net::Packet &pkt,
                 coherence::StateContext &state) override;
    void makeRequest(net::Packet &pkt, Rng &rng) override;

    /** Classify a feature bitset (test hook). */
    unsigned classify(const std::uint8_t *bits) const;

  private:
    Config cfg_;
    /** logLik_[cls][feature][bit] in milli-nats. */
    std::vector<std::vector<std::array<std::int32_t, 2>>> logLik_;
    std::vector<std::int32_t> prior_;
    /** Per-class generative feature probabilities, for makeRequest. */
    std::vector<std::vector<double>> genProb_;
};

} // namespace halsim::funcs

#endif // HALSIM_FUNCS_ANALYTICS_HH
