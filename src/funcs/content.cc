#include "funcs/content.hh"

#include <algorithm>
#include <cstring>

#include "alg/deflate.hh"
#include "alg/sha256.hh"
#include "net/bytes.hh"

namespace halsim::funcs {

using net::store32;
using net::store64;

void
DpdkFwdFunction::process(net::Packet &pkt, coherence::StateContext &)
{
    // Touch the header the way l2fwd does: swap Ethernet addresses.
    auto eth = pkt.eth();
    const net::MacAddr d = eth.dst();
    eth.setDst(eth.src());
    eth.setSrc(d);
}

void
DpdkFwdFunction::makeRequest(net::Packet &, Rng &)
{
}

RemFunction::RemFunction(Config cfg)
    : cfg_(cfg),
      rules_(alg::makeRuleset(cfg.ruleset, cfg.rules, cfg.seed)),
      ac_(std::make_unique<alg::AhoCorasick>(rules_)),
      corpus_(alg::makeScanStream(1 << 20, rules_, cfg.hit_rate,
                                  cfg.seed ^ 0xC0))
{}

void
RemFunction::process(net::Packet &pkt, coherence::StateContext &)
{
    auto p = pkt.payload();
    const std::uint64_t matches = ac_->countMatches(p);
    totalMatches_ += matches;
    store64(p.data(), matches);
}

void
RemFunction::makeRequest(net::Packet &pkt, Rng &rng)
{
    // Slice a window out of the pre-generated scan corpus; cheaper
    // than generating text per packet and statistically identical.
    auto p = pkt.payload();
    const std::size_t off =
        rng.uniformInt(corpus_.size() - std::min(p.size(), corpus_.size()));
    const std::size_t n = std::min(p.size(), corpus_.size());
    std::memcpy(p.data(), corpus_.data() + off, n);
}

CryptoFunction::CryptoFunction(Config cfg)
    : cfg_(cfg), n_(alg::groups::prime512()), g_(2), e_(65537)
{}

void
CryptoFunction::process(net::Packet &pkt, coherence::StateContext &)
{
    auto p = pkt.payload();
    const std::uint8_t op = p.empty() ? 0 : p[0] % 3;

    // Digest the signed prefix; all three ops key off it.
    const alg::Sha256Digest digest = alg::Sha256::hash(
        p.subspan(0, std::min(p.size(), cfg_.digest_bytes)));
    const alg::BigUint m = alg::BigUint::fromBytes(
        std::span<const std::uint8_t>(digest.data(), digest.size()));

    alg::BigUint result;
    switch (op) {
      case 0:
        // RSA-style: digest^e mod n.
        result = m.modexp(e_, n_);
        break;
      case 1: {
        // DH-style: g^x mod p with an ephemeral exponent derived
        // from the digest (truncated to the configured bits).
        const alg::BigUint x =
            m % (alg::BigUint(1) << cfg_.exponent_bits);
        result = g_.modexp(x + alg::BigUint(1), n_);
        break;
      }
      default: {
        // DSA-style: r = (g^k mod p) and fold in the digest.
        const alg::BigUint k =
            (m >> 128) % (alg::BigUint(1) << cfg_.exponent_bits);
        const alg::BigUint r = g_.modexp(k + alg::BigUint(2), n_);
        result = (r * m) % n_;
        break;
      }
    }

    const std::vector<std::uint8_t> bytes = result.toBytes();
    const std::size_t out = std::min<std::size_t>(bytes.size(), 64);
    if (p.size() >= 1 + out) {
        p[0] = op;
        std::memcpy(p.data() + 1, bytes.data(), out);
    }
}

void
CryptoFunction::makeRequest(net::Packet &pkt, Rng &rng)
{
    auto p = pkt.payload();
    if (p.empty())
        return;
    p[0] = static_cast<std::uint8_t>(rng.uniformInt(3));
    // Message body: random session material.
    for (std::size_t i = 1; i < std::min<std::size_t>(p.size(), 128); ++i)
        p[i] = static_cast<std::uint8_t>(rng.next());
}

CompressFunction::CompressFunction(Config cfg)
    : cfg_(cfg), corpus_(alg::makeSilesiaLike(1 << 20, cfg.seed))
{}

void
CompressFunction::process(net::Packet &pkt, coherence::StateContext &)
{
    auto p = pkt.payload();
    alg::DeflateConfig dc;
    dc.max_chain = cfg_.max_chain;
    // Per-packet accelerator path: static tables, like the hardware
    // Deflate engines the paper drives (dynamic-table construction
    // per 1.5 KB packet costs more than it saves).
    dc.allow_dynamic = false;
    const std::vector<std::uint8_t> compressed = deflateCompress(p, dc);
    bytesIn_ += p.size();
    bytesOut_ += compressed.size();

    store32(p.data(), static_cast<std::uint32_t>(p.size()));
    store32(p.data() + 4, static_cast<std::uint32_t>(compressed.size()));
    const std::size_t keep =
        std::min(compressed.size(), p.size() > 8 ? p.size() - 8 : 0);
    std::memcpy(p.data() + 8, compressed.data(), keep);
}

void
CompressFunction::makeRequest(net::Packet &pkt, Rng &rng)
{
    auto p = pkt.payload();
    const std::size_t n = std::min(p.size(), corpus_.size());
    const std::size_t off = rng.uniformInt(corpus_.size() - n + 1);
    std::memcpy(p.data(), corpus_.data() + off, n);
}

} // namespace halsim::funcs
