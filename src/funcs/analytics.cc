#include "funcs/analytics.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "net/bytes.hh"

namespace halsim::funcs {

using net::load16;
using net::store16;
using net::store32;
using net::store64;

Bm25Function::Bm25Function(Config cfg) : cfg_(cfg)
{
    Rng rng(cfg_.seed ^ 0xB25);
    postings_.resize(cfg_.vocabulary);
    docLength_.resize(cfg_.documents);

    // Document lengths around 200 +- 80 terms.
    std::uint64_t total_len = 0;
    for (auto &dl : docLength_) {
        dl = static_cast<std::uint16_t>(
            std::max(20.0, rng.normal(200.0, 80.0)));
        total_len += dl;
    }
    avgDocLength_ =
        static_cast<double>(total_len) / static_cast<double>(cfg_.documents);

    // Zipf-ish postings: low term ids are common, high ids rare.
    for (std::uint32_t t = 0; t < cfg_.vocabulary; ++t) {
        const double rarity =
            1.0 - static_cast<double>(t) / cfg_.vocabulary;
        const auto n = static_cast<std::uint32_t>(
            1 + cfg_.avg_postings * rarity * 2.0 * rng.uniform());
        auto &list = postings_[t];
        for (std::uint32_t i = 0; i < n; ++i) {
            Posting p;
            p.doc = static_cast<std::uint32_t>(
                rng.uniformInt(cfg_.documents));
            p.tf = static_cast<std::uint16_t>(1 + rng.uniformInt(8));
            list.push_back(p);
        }
        std::sort(list.begin(), list.end(),
                  [](const Posting &a, const Posting &b) {
                      return a.doc < b.doc;
                  });
        // idf = ln((N - df + 0.5) / (df + 0.5) + 1)  (BM25+ style)
        const double df = static_cast<double>(list.size());
        idf_.push_back(std::log(
            (static_cast<double>(cfg_.documents) - df + 0.5) /
                (df + 0.5) +
            1.0));
    }
}

double
Bm25Function::score(std::uint32_t doc,
                    const std::vector<std::uint16_t> &terms) const
{
    constexpr double k1 = 1.2, b = 0.75;
    double s = 0.0;
    for (std::uint16_t t : terms) {
        if (t >= cfg_.vocabulary)
            continue;
        for (const Posting &p : postings_[t]) {
            if (p.doc != doc)
                continue;
            const double tf = p.tf;
            const double norm =
                k1 * (1.0 - b + b * docLength_[doc] / avgDocLength_);
            s += idf_[t] * tf * (k1 + 1.0) / (tf + norm);
        }
    }
    return s;
}

void
Bm25Function::process(net::Packet &pkt, coherence::StateContext &)
{
    auto p = pkt.payload();
    const unsigned nterms = std::min<unsigned>(
        p[0], static_cast<unsigned>((p.size() - 1) / 2));

    // Accumulate BM25 contributions per document across the query's
    // posting lists, tracking the argmax.
    constexpr double k1 = 1.2, b = 0.75;
    // Small dense accumulator: documents is ~1K.
    thread_local std::vector<double> acc;
    acc.assign(cfg_.documents, 0.0);
    for (unsigned i = 0; i < nterms; ++i) {
        const std::uint16_t t = load16(p.data() + 1 + 2 * i);
        if (t >= cfg_.vocabulary)
            continue;
        const double idf = idf_[t];
        for (const Posting &post : postings_[t]) {
            const double tf = post.tf;
            const double norm =
                k1 * (1.0 - b +
                      b * docLength_[post.doc] / avgDocLength_);
            acc[post.doc] += idf * tf * (k1 + 1.0) / (tf + norm);
        }
    }
    std::uint32_t best_doc = 0;
    double best = -1.0;
    for (std::uint32_t d = 0; d < cfg_.documents; ++d) {
        if (acc[d] > best) {
            best = acc[d];
            best_doc = d;
        }
    }
    store32(p.data(), best_doc);
    store64(p.data() + 4,
            static_cast<std::uint64_t>(std::max(0.0, best) * 1000.0));
}

void
Bm25Function::makeRequest(net::Packet &pkt, Rng &rng)
{
    auto p = pkt.payload();
    p[0] = static_cast<std::uint8_t>(cfg_.query_terms);
    for (unsigned i = 0; i < cfg_.query_terms; ++i) {
        // Bias queries toward common (low-id) terms.
        const double u = rng.uniform();
        const auto t = static_cast<std::uint16_t>(
            u * u * static_cast<double>(cfg_.vocabulary - 1));
        store16(p.data() + 1 + 2 * i, t);
    }
}

KnnFunction::KnnFunction(Config cfg) : cfg_(cfg)
{
    Rng rng(cfg_.seed ^ 0x4A4);
    // Well-separated class centroids, reference points near them.
    centroids_.resize(cfg_.classes);
    for (unsigned c = 0; c < cfg_.classes; ++c) {
        for (unsigned d = 0; d < kDims; ++d)
            centroids_[c][d] = static_cast<std::uint8_t>(
                rng.uniformInt(40) + 10 + (200 / cfg_.classes) * c);
    }
    for (unsigned c = 0; c < cfg_.classes; ++c) {
        for (unsigned i = 0; i < cfg_.set_size; ++i) {
            RefPoint r;
            r.label = static_cast<std::uint8_t>(c);
            for (unsigned d = 0; d < kDims; ++d) {
                const int v = centroids_[c][d] +
                              static_cast<int>(rng.normal(0.0, 6.0));
                r.features[d] =
                    static_cast<std::uint8_t>(std::clamp(v, 0, 255));
            }
            refs_.push_back(r);
        }
    }
}

unsigned
KnnFunction::classify(const std::uint8_t *features) const
{
    struct Neighbour
    {
        std::uint32_t dist;
        std::uint8_t label;
    };
    // Insertion sort into a tiny k-array (k is 3).
    std::vector<Neighbour> best(cfg_.k,
                                {0xffffffffu, 0});
    for (const RefPoint &r : refs_) {
        std::uint32_t d2 = 0;
        for (unsigned d = 0; d < kDims; ++d) {
            const int diff = static_cast<int>(features[d]) - r.features[d];
            d2 += static_cast<std::uint32_t>(diff * diff);
        }
        if (d2 < best.back().dist) {
            best.back() = {d2, r.label};
            for (std::size_t i = best.size() - 1;
                 i > 0 && best[i].dist < best[i - 1].dist; --i)
                std::swap(best[i], best[i - 1]);
        }
    }
    // Majority vote; ties resolve to the nearest.
    std::vector<unsigned> votes(cfg_.classes, 0);
    for (const auto &n : best)
        if (n.dist != 0xffffffffu)
            ++votes[n.label];
    unsigned win = best[0].label;
    for (unsigned c = 0; c < cfg_.classes; ++c)
        if (votes[c] > votes[win])
            win = c;
    return win;
}

const std::uint8_t *
KnnFunction::centroid(unsigned cls) const
{
    return centroids_[cls].data();
}

void
KnnFunction::process(net::Packet &pkt, coherence::StateContext &)
{
    auto p = pkt.payload();
    p[0] = static_cast<std::uint8_t>(classify(p.data()));
}

void
KnnFunction::makeRequest(net::Packet &pkt, Rng &rng)
{
    auto p = pkt.payload();
    // Query near a random class centroid, with noise.
    const unsigned c = static_cast<unsigned>(rng.uniformInt(cfg_.classes));
    for (unsigned d = 0; d < kDims; ++d) {
        const int v = centroids_[c][d] +
                      static_cast<int>(rng.normal(0.0, 10.0));
        p[d] = static_cast<std::uint8_t>(std::clamp(v, 0, 255));
    }
}

BayesFunction::BayesFunction(Config cfg) : cfg_(cfg)
{
    Rng rng(cfg_.seed ^ 0xBA7E5);
    logLik_.resize(cfg_.classes);
    genProb_.resize(cfg_.classes);
    prior_.assign(cfg_.classes, 0);
    for (unsigned c = 0; c < cfg_.classes; ++c) {
        logLik_[c].resize(cfg_.features);
        genProb_[c].resize(cfg_.features);
        for (unsigned f = 0; f < cfg_.features; ++f) {
            // Class-dependent Bernoulli parameter in [0.05, 0.95].
            const double p1 = 0.05 + 0.9 * rng.uniform();
            genProb_[c][f] = p1;
            logLik_[c][f][1] =
                static_cast<std::int32_t>(std::log(p1) * 1000.0);
            logLik_[c][f][0] =
                static_cast<std::int32_t>(std::log(1.0 - p1) * 1000.0);
        }
        prior_[c] = static_cast<std::int32_t>(
            std::log(1.0 / cfg_.classes) * 1000.0);
    }
}

unsigned
BayesFunction::classify(const std::uint8_t *bits) const
{
    unsigned best_cls = 0;
    std::int64_t best = INT64_MIN;
    for (unsigned c = 0; c < cfg_.classes; ++c) {
        std::int64_t score = prior_[c];
        for (unsigned f = 0; f < cfg_.features; ++f) {
            const int bit = (bits[f / 8] >> (f % 8)) & 1;
            score += logLik_[c][f][bit];
        }
        if (score > best) {
            best = score;
            best_cls = c;
        }
    }
    return best_cls;
}

void
BayesFunction::process(net::Packet &pkt, coherence::StateContext &)
{
    auto p = pkt.payload();
    p[0] = static_cast<std::uint8_t>(classify(p.data()));
}

void
BayesFunction::makeRequest(net::Packet &pkt, Rng &rng)
{
    auto p = pkt.payload();
    const unsigned c = static_cast<unsigned>(rng.uniformInt(cfg_.classes));
    std::memset(p.data(), 0, (cfg_.features + 7) / 8);
    for (unsigned f = 0; f < cfg_.features; ++f)
        if (rng.chance(genProb_[c][f]))
            p[f / 8] |= static_cast<std::uint8_t>(1u << (f % 8));
}

} // namespace halsim::funcs
