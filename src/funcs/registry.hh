/**
 * @file
 * Factory for the benchmark functions and their paper configurations.
 */

#ifndef HALSIM_FUNCS_REGISTRY_HH
#define HALSIM_FUNCS_REGISTRY_HH

#include <vector>

#include "funcs/function.hh"

namespace halsim::funcs {

/** Instantiate a function with its default (paper) configuration. */
FunctionPtr makeFunction(FunctionId id);

/**
 * Instantiate a two-stage pipeline (§VII-B), e.g.
 * makePipeline(FunctionId::Nat, FunctionId::Rem) for "NAT + REM".
 */
FunctionPtr makePipeline(FunctionId first, FunctionId second);

/** All ten Table IV functions (excludes DpdkFwd). */
std::vector<FunctionId> allFunctions();

/** The six functions evaluated under traces in Table V. */
std::vector<FunctionId> tableVFunctions();

/** The four pipelines of Table V. */
std::vector<std::pair<FunctionId, FunctionId>> tableVPipelines();

} // namespace halsim::funcs

#endif // HALSIM_FUNCS_REGISTRY_HH
