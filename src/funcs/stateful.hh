/**
 * @file
 * The stateful functions of Table IV: KVS (read/write/insert on a
 * key-value store), Count (frequency counting, batch 4/8), and EMA
 * (exponential moving average, batch 4/8). Each keeps real state and
 * routes every state access through the coherence domain.
 */

#ifndef HALSIM_FUNCS_STATEFUL_HH
#define HALSIM_FUNCS_STATEFUL_HH

#include <array>
#include <cstdint>

#include "alg/fixed_map.hh"
#include "funcs/function.hh"

namespace halsim::funcs {

/**
 * Key-value store with read, write, and insert operations (SILT-like
 * usage, Table IV). Values are fixed 32-byte blobs.
 *
 * Request payload: [op:1][key:8][value:32]
 *   op 0 = GET, 1 = PUT (overwrite), 2 = INSERT (fail if present)
 * Response payload: [status:1][value:32]
 *   status 0 = ok, 1 = not found, 2 = already exists
 */
class KvsFunction : public NetworkFunction
{
  public:
    struct Config
    {
        std::uint64_t key_space = 100000;  //!< distinct keys generated
        double get_fraction = 0.5;
        double put_fraction = 0.3;         //!< remainder are inserts
    };

    KvsFunction() : KvsFunction(Config{}) {}
    explicit KvsFunction(Config cfg) : cfg_(cfg) {}

    FunctionId id() const override { return FunctionId::Kvs; }
    bool stateful() const override { return true; }
    void process(net::Packet &pkt,
                 coherence::StateContext &state) override;
    void makeRequest(net::Packet &pkt, Rng &rng) override;

    std::size_t storeSize() const { return store_.size(); }

  private:
    using Value = std::array<std::uint8_t, 32>;

    Config cfg_;
    alg::FixedMap<std::uint64_t, Value> store_{1 << 12};
};

/**
 * Frequency counting over keys carried in batches (Metron-style NFV
 * counter, Table IV).
 *
 * Request payload: [batch:1][key:8] x batch   (batch 4 or 8)
 * Response payload: [batch:1][count:8] x batch (counts after update)
 */
class CountFunction : public NetworkFunction
{
  public:
    struct Config
    {
        unsigned batch = 8;                //!< keys per request (4 or 8)
        std::uint64_t key_space = 65536;
    };

    CountFunction() : CountFunction(Config{}) {}
    explicit CountFunction(Config cfg) : cfg_(cfg) {}

    FunctionId id() const override { return FunctionId::Count; }
    bool stateful() const override { return true; }
    void process(net::Packet &pkt,
                 coherence::StateContext &state) override;
    void makeRequest(net::Packet &pkt, Rng &rng) override;

    /** Current count for @p key (test hook; no coherence charge). */
    std::uint64_t countOf(std::uint64_t key) const;

    /** Sum of all counters (conservation check). */
    std::uint64_t totalCounted() const;

  private:
    Config cfg_;
    alg::FixedMap<std::uint64_t, std::uint64_t> counts_{1 << 12};
};

/**
 * Per-key exponential moving average over batched samples.
 *
 * Request payload: [batch:1]([key:8][value_milli:8]) x batch
 * Values are fixed-point milli-units to keep the wire format
 * architecture-independent.
 * Response payload: [batch:1][ema_milli:8] x batch
 */
class EmaFunction : public NetworkFunction
{
  public:
    struct Config
    {
        unsigned batch = 8;
        std::uint64_t key_space = 4096;
        /** Smoothing factor numerator over 1000 (alpha = 0.125). */
        std::uint32_t alpha_milli = 125;
    };

    EmaFunction() : EmaFunction(Config{}) {}
    explicit EmaFunction(Config cfg) : cfg_(cfg) {}

    FunctionId id() const override { return FunctionId::Ema; }
    bool stateful() const override { return true; }
    void process(net::Packet &pkt,
                 coherence::StateContext &state) override;
    void makeRequest(net::Packet &pkt, Rng &rng) override;

    /** Current EMA (milli-units) for @p key; 0 when never seen. */
    std::int64_t emaOf(std::uint64_t key) const;

  private:
    Config cfg_;
    alg::FixedMap<std::uint64_t, std::int64_t> ema_{1 << 12};
};

} // namespace halsim::funcs

#endif // HALSIM_FUNCS_STATEFUL_HH
