#include "funcs/calibration.hh"

#include <array>
#include <cassert>

namespace halsim::funcs {

const char *
platformName(Platform p)
{
    switch (p) {
      case Platform::HostSkylake: return "host-skylake";
      case Platform::SnicBf2: return "snic-bf2";
      case Platform::HostSpr: return "host-spr";
      case Platform::SnicBf3: return "snic-bf3";
    }
    return "?";
}

const PlatformSpec &
platformSpec(Platform p)
{
    // Core counts: the paper runs functions on 8 host cores to match
    // the BF-2's 8 Arm cores (§VI); BF-3 doubles the cores and the
    // SPR comparison scales the host likewise (§VIII).
    static const PlatformSpec specs[] = {
        /* HostSkylake */ {8, 100.0, 4.0},
        /* SnicBf2     */ {8, 100.0, 0.5},
        /* HostSpr     */ {16, 200.0, 4.5},
        /* SnicBf3     */ {16, 200.0, 0.55},
    };
    return specs[static_cast<std::size_t>(p)];
}

Tick
FunctionProfile::serviceTicks(std::size_t frame_bytes) const
{
    // Per-core MTU service time that makes ref_cores deliver
    // max_tp_gbps exactly at 1500-byte frames.
    const double per_core_gbps = max_tp_gbps / ref_cores;
    const double mtu_ticks =
        static_cast<double>(transferTicks(1500, per_core_gbps));
    const double fixed = fixed_frac * mtu_ticks;
    const double stream_per_byte = (1.0 - fixed_frac) * mtu_ticks / 1500.0;
    const double t = fixed + stream_per_byte *
                                 static_cast<double>(frame_bytes);
    return static_cast<Tick>(t + 0.5);
}

double
FunctionProfile::scaledTp(unsigned cores) const
{
    return max_tp_gbps * static_cast<double>(cores) / ref_cores;
}

namespace {

using FP = FunctionProfile;

/**
 * Host (Skylake + QAT) profiles, MTU frames, 8 cores.
 *
 * Anchors: Table V host "Max" columns (NAT 89.2, Count 95.3, EMA
 * 56.9, REM 93.2, Crypto 83-93, KNN 30.3); Fig. 3 host power
 * (Table V host average power column, minus the 194 W base, spread
 * over 8 polling cores); KVS/BM25/Bayes back-derived from §III-A
 * "the SNIC CPU offers 24-69% lower maximum throughput".
 * Crypto/compression run on QAT (Table I); deflate host rate from
 * §III-A "46-72% of the SNIC accelerator's throughput".
 */
constexpr std::array<FP, kFunctionCount> kHostSkylake = {{
    // unit, max_tp, fixed_frac, cap, accel_lat, core_w, accel_w, cores
    /* fwd   */ {ExecUnit::Cpu, 180.0, 0.067, 0, 0, 7.0, 0, 8},
    /* kvs   */ {ExecUnit::Cpu, 9.5, 0.10, 0, 0, 6.5, 0, 8},
    /* count */ {ExecUnit::Cpu, 95.3, 0.10, 0, 0, 7.9, 0, 8},
    /* ema   */ {ExecUnit::Cpu, 56.9, 0.10, 0, 0, 6.4, 0, 8},
    /* nat   */ {ExecUnit::Cpu, 89.2, 0.10, 0, 0, 9.2, 0, 8},
    /* bm25  */ {ExecUnit::Cpu, 3.2, 0.10, 0, 0, 6.5, 0, 8},
    /* knn   */ {ExecUnit::Cpu, 30.3, 0.10, 0, 0, 6.2, 0, 8},
    /* bayes */ {ExecUnit::Cpu, 0.4, 0.10, 0, 0, 6.5, 0, 8},
    /* rem   */ {ExecUnit::Cpu, 93.2, 0.10, 0, 0, 6.8, 0, 8},
    /* cryp  */ {ExecUnit::Accel, 88.0, 0.10, 0, 10 * kUs, 4.5, 30.0, 8},
    /* comp  */ {ExecUnit::Accel, 28.0, 0.10, 0, 40 * kUs, 3.0, 25.0, 8},
}};

/**
 * BF-2 profiles, MTU frames, 8 Arm cores.
 *
 * Anchors: Table II SLO throughputs / Table V SNIC "Max" columns
 * (KVS 3, Count 58, EMA 11.6, NAT 41, BM25 1, KNN 15, Bayes 0.1);
 * REM/crypto/compression on the BF-2 accelerators (§II-A), REM
 * hard-capped at 50 Gbps (§III-A); fwd fixed_frac solved from
 * "40 Gbps at 64 B, line rate at MTU with 8 cores" (§III-A).
 * Power: SNIC loaded 30-37 W vs idle 29 W (§III-B) => single-digit
 * dynamic watts spread over cores/accelerators.
 */
constexpr std::array<FP, kFunctionCount> kSnicBf2 = {{
    /* fwd   */ {ExecUnit::Cpu, 100.0, 0.067, 0, 0, 0.75, 0, 8},
    /* kvs   */ {ExecUnit::Cpu, 3.0, 0.10, 0, 0, 0.75, 0, 8},
    /* count */ {ExecUnit::Cpu, 58.4, 0.10, 0, 0, 0.75, 0, 8},
    /* ema   */ {ExecUnit::Cpu, 11.6, 0.10, 0, 0, 0.75, 0, 8},
    /* nat   */ {ExecUnit::Cpu, 41.0, 0.10, 0, 0, 0.80, 0, 8},
    /* bm25  */ {ExecUnit::Cpu, 1.0, 0.10, 0, 0, 0.75, 0, 8},
    /* knn   */ {ExecUnit::Cpu, 15.0, 0.10, 0, 0, 0.75, 0, 8},
    /* bayes */ {ExecUnit::Cpu, 0.1, 0.10, 0, 0, 0.75, 0, 8},
    /* rem   */ {ExecUnit::Accel, 47.0, 0.10, 50.0, 20 * kUs, 0.4, 1.5, 8},
    /* cryp  */ {ExecUnit::Accel, 42.0, 0.10, 0, 30 * kUs, 0.4, 1.5, 8},
    /* comp  */ {ExecUnit::Accel, 45.0, 0.10, 0, 15 * kUs, 0.3, 2.0, 8},
}};

/**
 * Sapphire Rapids host (Fig. 10): ~2.2x Skylake software throughput
 * with 16 cores and more accelerators, 200 Gbps fabric.
 */
constexpr std::array<FP, kFunctionCount> kHostSpr = {{
    /* fwd   */ {ExecUnit::Cpu, 396.0, 0.067, 0, 0, 7.5, 0, 16},
    /* kvs   */ {ExecUnit::Cpu, 20.9, 0.10, 0, 0, 7.0, 0, 16},
    /* count */ {ExecUnit::Cpu, 209.7, 0.10, 0, 0, 8.4, 0, 16},
    /* ema   */ {ExecUnit::Cpu, 125.2, 0.10, 0, 0, 7.0, 0, 16},
    /* nat   */ {ExecUnit::Cpu, 196.2, 0.10, 0, 0, 9.8, 0, 16},
    /* bm25  */ {ExecUnit::Cpu, 7.0, 0.10, 0, 0, 7.0, 0, 16},
    /* knn   */ {ExecUnit::Cpu, 66.7, 0.10, 0, 0, 6.8, 0, 16},
    /* bayes */ {ExecUnit::Cpu, 0.9, 0.10, 0, 0, 7.0, 0, 16},
    /* rem   */ {ExecUnit::Cpu, 205.0, 0.10, 0, 0, 7.2, 0, 16},
    /* cryp  */ {ExecUnit::Accel, 194.0, 0.10, 0, 8 * kUs, 5.0, 35.0, 16},
    /* comp  */ {ExecUnit::Accel, 62.0, 0.10, 0, 30 * kUs, 3.5, 30.0, 16},
}};

/**
 * BlueField-3 (Fig. 10): 2x cores, 3.5x memory bandwidth, 200 Gbps.
 * Software functions roughly double BF-2 rates (16 cores), leaving
 * the BF-3 CPU up to ~80% below the SPR CPU, matching Fig. 10.
 */
constexpr std::array<FP, kFunctionCount> kSnicBf3 = {{
    /* fwd   */ {ExecUnit::Cpu, 200.0, 0.067, 0, 0, 0.8, 0, 16},
    /* kvs   */ {ExecUnit::Cpu, 6.6, 0.10, 0, 0, 0.8, 0, 16},
    /* count */ {ExecUnit::Cpu, 128.5, 0.10, 0, 0, 0.8, 0, 16},
    /* ema   */ {ExecUnit::Cpu, 25.5, 0.10, 0, 0, 0.8, 0, 16},
    /* nat   */ {ExecUnit::Cpu, 90.2, 0.10, 0, 0, 0.85, 0, 16},
    /* bm25  */ {ExecUnit::Cpu, 2.2, 0.10, 0, 0, 0.8, 0, 16},
    /* knn   */ {ExecUnit::Cpu, 33.0, 0.10, 0, 0, 0.8, 0, 16},
    /* bayes */ {ExecUnit::Cpu, 0.22, 0.10, 0, 0, 0.8, 0, 16},
    /* rem   */ {ExecUnit::Accel, 94.0, 0.10, 100.0, 15 * kUs, 0.45, 2.0,
                 16},
    /* cryp  */ {ExecUnit::Accel, 84.0, 0.10, 0, 25 * kUs, 0.45, 2.0, 16},
    /* comp  */ {ExecUnit::Accel, 90.0, 0.10, 0, 12 * kUs, 0.35, 2.5, 16},
}};

/**
 * Host REM on the complex snort_literals ruleset: the SNIC
 * accelerator outperforms the host CPU by 19x (§III-A), so the host
 * manages only ~2.5 Gbps there. The SNIC accelerator profile is
 * ruleset-insensitive.
 */
constexpr FP kHostSkylakeRemLite = {ExecUnit::Cpu, 2.5, 0.10, 0, 0,
                                    7.5, 0, 8};
constexpr FP kHostSprRemLite = {ExecUnit::Cpu, 5.5, 0.10, 0, 0,
                                7.8, 0, 16};

const std::array<FP, kFunctionCount> &
table(Platform p)
{
    switch (p) {
      case Platform::HostSkylake: return kHostSkylake;
      case Platform::SnicBf2: return kSnicBf2;
      case Platform::HostSpr: return kHostSpr;
      case Platform::SnicBf3: return kSnicBf3;
    }
    return kHostSkylake;
}

} // namespace

const FunctionProfile &
profile(Platform p, FunctionId f)
{
    return table(p)[static_cast<std::size_t>(f)];
}

const FunctionProfile &
remProfile(Platform p, alg::RulesetKind ruleset)
{
    if (ruleset == alg::RulesetKind::SnortLiterals) {
        if (p == Platform::HostSkylake)
            return kHostSkylakeRemLite;
        if (p == Platform::HostSpr)
            return kHostSprRemLite;
    }
    return profile(p, FunctionId::Rem);
}

const PkaOpCalib *
pkaCalib(std::size_t *count)
{
    // Fig. 2: the host accelerator (QAT) delivers 24-115x the SNIC
    // PKA throughput with 95-99% lower p99 latency for RSA/DH/DSA.
    static const PkaOpCalib rows[] = {
        {"rsa", 103500.0, 900.0, 300 * kUs, 11500 * kUs},
        {"dh", 48000.0, 800.0, 350 * kUs, 9000 * kUs},
        {"dsa", 26400.0, 1100.0, 250 * kUs, 6000 * kUs},
    };
    *count = std::size(rows);
    return rows;
}

const PathLatencies &
pathLatencies()
{
    static const PathLatencies p;
    return p;
}

} // namespace halsim::funcs
