/**
 * @file
 * Two-stage pipelined function composition (§VII-B "Two Pipelined
 * Functions"): the first function takes the packet from DPDK
 * processing and its output feeds the second (e.g. NAT + REM).
 */

#ifndef HALSIM_FUNCS_PIPELINE_HH
#define HALSIM_FUNCS_PIPELINE_HH

#include <utility>

#include "funcs/function.hh"

namespace halsim::funcs {

/**
 * Composition of two functions run back-to-back on each packet.
 *
 * Request generation composes both stages' generators, second stage
 * first: header-level generators (NAT's flow spreading) and
 * payload-level generators coexist, and the first stage's request
 * format wins where they overlap — its output is what the second
 * stage actually consumes.
 */
class PipelineFunction : public NetworkFunction
{
  public:
    PipelineFunction(FunctionPtr first, FunctionPtr second)
        : first_(std::move(first)), second_(std::move(second))
    {}

    /** Pipelines are identified by their first stage for tables. */
    FunctionId id() const override { return first_->id(); }

    bool
    stateful() const override
    {
        return first_->stateful() || second_->stateful();
    }

    void
    process(net::Packet &pkt, coherence::StateContext &state) override
    {
        first_->process(pkt, state);
        second_->process(pkt, state);
    }

    void
    makeRequest(net::Packet &pkt, Rng &rng) override
    {
        second_->makeRequest(pkt, rng);
        first_->makeRequest(pkt, rng);
    }

    const NetworkFunction &first() const { return *first_; }
    const NetworkFunction &second() const { return *second_; }

  private:
    FunctionPtr first_;
    FunctionPtr second_;
};

} // namespace halsim::funcs

#endif // HALSIM_FUNCS_PIPELINE_HH
