#include "funcs/registry.hh"

#include "funcs/analytics.hh"
#include "funcs/content.hh"
#include "funcs/nat.hh"
#include "funcs/pipeline.hh"
#include "funcs/stateful.hh"

namespace halsim::funcs {

const char *
functionName(FunctionId id)
{
    switch (id) {
      case FunctionId::DpdkFwd: return "fwd";
      case FunctionId::Kvs: return "kvs";
      case FunctionId::Count: return "count";
      case FunctionId::Ema: return "ema";
      case FunctionId::Nat: return "nat";
      case FunctionId::Bm25: return "bm25";
      case FunctionId::Knn: return "knn";
      case FunctionId::Bayes: return "bayes";
      case FunctionId::Rem: return "rem";
      case FunctionId::Crypto: return "crypto";
      case FunctionId::Compress: return "comp";
    }
    return "?";
}

FunctionPtr
makeFunction(FunctionId id)
{
    switch (id) {
      case FunctionId::DpdkFwd:
        return std::make_unique<DpdkFwdFunction>();
      case FunctionId::Kvs:
        return std::make_unique<KvsFunction>();
      case FunctionId::Count:
        return std::make_unique<CountFunction>();
      case FunctionId::Ema:
        return std::make_unique<EmaFunction>();
      case FunctionId::Nat:
        return std::make_unique<NatFunction>();
      case FunctionId::Bm25:
        return std::make_unique<Bm25Function>();
      case FunctionId::Knn:
        return std::make_unique<KnnFunction>();
      case FunctionId::Bayes:
        return std::make_unique<BayesFunction>();
      case FunctionId::Rem:
        return std::make_unique<RemFunction>();
      case FunctionId::Crypto:
        return std::make_unique<CryptoFunction>();
      case FunctionId::Compress:
        return std::make_unique<CompressFunction>();
    }
    return nullptr;
}

FunctionPtr
makePipeline(FunctionId first, FunctionId second)
{
    return std::make_unique<PipelineFunction>(makeFunction(first),
                                              makeFunction(second));
}

std::vector<FunctionId>
allFunctions()
{
    return {FunctionId::Kvs,   FunctionId::Count, FunctionId::Ema,
            FunctionId::Nat,   FunctionId::Bm25,  FunctionId::Knn,
            FunctionId::Bayes, FunctionId::Rem,   FunctionId::Crypto,
            FunctionId::Compress};
}

std::vector<FunctionId>
tableVFunctions()
{
    // §VII-B: KNN, NAT, Count, EMA, crypto, and REM. (Bayes, BM25,
    // KVS are excluded for very low SNIC throughput; compression is
    // excluded as a non-cooperative stateful accelerator function.)
    return {FunctionId::Knn, FunctionId::Nat,    FunctionId::Count,
            FunctionId::Ema, FunctionId::Crypto, FunctionId::Rem};
}

std::vector<std::pair<FunctionId, FunctionId>>
tableVPipelines()
{
    return {{FunctionId::Nat, FunctionId::Rem},
            {FunctionId::Nat, FunctionId::Crypto},
            {FunctionId::Count, FunctionId::Rem},
            {FunctionId::Count, FunctionId::Crypto}};
}

} // namespace halsim::funcs
