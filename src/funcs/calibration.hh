/**
 * @file
 * Calibration tables: per-(platform, function) service-cost and power
 * constants anchored to the paper's measurements. Every number cites
 * the figure/table/section it comes from (see calibration.cc).
 *
 * The model for a CPU-executed function is
 *   service(frame) = fixed + stream * frame_bytes
 * where (fixed, stream) are chosen so that the platform's reference
 * core count exactly reproduces the paper's maximum MTU throughput,
 * with fixed_frac of the MTU service time attributed to per-packet
 * overhead (which is what makes small packets expensive, §III-A).
 * Accelerator-executed functions are a pipeline with a fixed latency
 * and a streaming rate, optionally hard-capped (the REM accelerator
 * tops out at 50 Gbps regardless of offered load).
 */

#ifndef HALSIM_FUNCS_CALIBRATION_HH
#define HALSIM_FUNCS_CALIBRATION_HH

#include <cstdint>

#include "alg/corpus.hh"
#include "funcs/function.hh"
#include "sim/types.hh"

namespace halsim::funcs {

/** The evaluated processors. */
enum class Platform : std::uint8_t
{
    HostSkylake,   //!< Xeon Gold 6140 + QAT (the paper's server)
    SnicBf2,       //!< BlueField-2 (8 Arm cores + accelerators)
    HostSpr,       //!< Sapphire Rapids (Fig. 10 comparison)
    SnicBf3,       //!< BlueField-3 (Fig. 10 comparison)
};

const char *platformName(Platform p);

/** Which execution unit runs the function on a platform. */
enum class ExecUnit : std::uint8_t
{
    Cpu,
    Accel,
};

/** Platform-wide constants. */
struct PlatformSpec
{
    unsigned cores;          //!< cores available for functions
    double line_rate_gbps;   //!< attached network speed
    /** Per-core dynamic power when busy-polling/processing (W). */
    double core_idle_poll_w;
};

const PlatformSpec &platformSpec(Platform p);

/** Whole-server baseline: idle power including the idle SNIC (§III-B:
 *  194 W server + SNIC in the low single digits of dynamic range). */
inline constexpr double kServerBasePowerW = 194.0;
/** SNIC standalone idle power (§III-B). */
inline constexpr double kSnicIdlePowerW = 29.0;

/** Cost/power profile of one function on one platform. */
struct FunctionProfile
{
    ExecUnit unit = ExecUnit::Cpu;
    /**
     * Maximum MTU throughput (Gbps) at the platform's reference core
     * count (CPU) or the accelerator pipeline rate (Accel).
     */
    double max_tp_gbps = 0.0;
    /** Share of MTU service time that is per-packet fixed overhead. */
    double fixed_frac = 0.10;
    /** Hard throughput cap (0 = none); REM accel = 50 Gbps. */
    double cap_gbps = 0.0;
    /** Accelerator pipeline latency (Accel only). */
    Tick accel_latency = 0;
    /** Per active core dynamic power (W) for this function. */
    double core_active_w = 0.0;
    /** Accelerator active power (W). */
    double accel_w = 0.0;
    /** Reference core count the max_tp_gbps was measured at. */
    unsigned ref_cores = 8;

    /** Per-core service time for a frame of @p bytes (CPU unit). */
    Tick serviceTicks(std::size_t frame_bytes) const;

    /** Aggregate throughput with @p cores active cores (CPU). */
    double scaledTp(unsigned cores) const;
};

/** Profile lookup; REM uses the teakettle ruleset by default. */
const FunctionProfile &profile(Platform p, FunctionId f);

/**
 * REM profiles depend on the ruleset (§III-A): the host CPU wins on
 * teakettle but loses 19x on snort_literals, while the SNIC
 * accelerator's rate is ruleset-insensitive.
 */
const FunctionProfile &remProfile(Platform p, alg::RulesetKind ruleset);

/**
 * PKA (public-key accelerator) micro-operation calibration for
 * Fig. 2's cryptography comparison, which is measured in operations
 * rather than packet throughput.
 */
struct PkaOpCalib
{
    const char *op;
    double host_ops_per_s;
    double snic_ops_per_s;
    Tick host_latency;
    Tick snic_latency;
};

/** RSA / DH / DSA rows (Fig. 2 crypto bars). */
const PkaOpCalib *pkaCalib(std::size_t *count);

/** Packet-delivery path latencies (§III-A). */
struct PathLatencies
{
    /** eSwitch -> SNIC CPU rings. */
    Tick eswitch_to_snic = 1000 * kNs;
    /** extra for eSwitch -> host over PCIe (paper: ~0.3 us). */
    Tick pcie_extra = 300 * kNs;
    /** extra for a remote-socket (UPI/CXL) hop (paper: ~0.5 us). */
    Tick upi_extra = 500 * kNs;
    /** HLB adds 800 ns round-trip (§VII-C), 365 ns of which is the
     *  FPGA transceiver+MAC; half charged per direction. */
    Tick hlb_per_direction = 400 * kNs;
};

const PathLatencies &pathLatencies();

} // namespace halsim::funcs

#endif // HALSIM_FUNCS_CALIBRATION_HH
