/**
 * @file
 * The network-function abstraction: the ten DPDK functions of the
 * paper (Table IV), each functionally real. A function parses its
 * request out of a packet's UDP payload, computes an answer, and
 * rewrites the payload into a response in place.
 *
 * Functional behaviour and timing are separated: process() does the
 * real work on real bytes (so it is unit-testable and semantically
 * correct), while the per-platform cost of that work comes from the
 * calibration tables (calibration.hh) because we cannot
 * cycle-simulate an Arm A72 against a Skylake core. Stateful
 * functions route their state accesses through a
 * coherence::StateContext so shared-state latency and coherence
 * traffic are modeled per access.
 */

#ifndef HALSIM_FUNCS_FUNCTION_HH
#define HALSIM_FUNCS_FUNCTION_HH

#include <cstdint>
#include <memory>
#include <string>

#include "coherence/domain.hh"
#include "net/packet.hh"
#include "sim/rng.hh"

namespace halsim::funcs {

/** The benchmark functions of Table IV, plus plain DPDK forwarding. */
enum class FunctionId : std::uint8_t
{
    DpdkFwd,   //!< baseline packet forwarding (no function work)
    Kvs,       //!< key-value store (stateful)
    Count,     //!< frequency counting (stateful)
    Ema,       //!< exponential moving average (stateful)
    Nat,       //!< network address translation
    Bm25,      //!< search ranking
    Knn,       //!< k-nearest neighbours
    Bayes,     //!< naive Bayes classifier
    Rem,       //!< regular-expression (literal multi-pattern) matching
    Crypto,    //!< public-key cryptography (RSA / DH / DSA)
    Compress,  //!< Deflate compression
};

inline constexpr std::size_t kFunctionCount = 11;

/**
 * Shared function state is laid out in cache-line-aligned shards
 * (as production counter/table implementations do), so coherence is
 * charged per shard line rather than per logical key. With the
 * director's run-based splitting, shard ownership follows whichever
 * node is currently active and most accesses stay local — the reason
 * the paper measures only a 0.3-3.4% penalty for coherent stateful
 * processing (§VII-B).
 */
inline constexpr std::uint64_t kStateShards = 64;

/** Byte address of the state line holding @p key. */
inline std::uint64_t
stateLineAddr(std::uint64_t key)
{
    return (key % kStateShards) * 64;
}

/** Short lowercase name as used in the paper's tables. */
const char *functionName(FunctionId id);

/**
 * One network function: real request parsing + computation.
 *
 * A single instance owns the function's state and is shared between
 * the SNIC-side and host-side processors during cooperative
 * processing — exactly the sharing HAL needs coherence for. The
 * StateContext identifies which node is executing and accumulates
 * coherent-access latency.
 */
class NetworkFunction
{
  public:
    virtual ~NetworkFunction() = default;

    virtual FunctionId id() const = 0;

    /** True when processing mutates shared state (Table IV "(S)"). */
    virtual bool stateful() const = 0;

    /**
     * Execute the function on @p pkt, rewriting its payload into the
     * response. State accesses go through @p state.
     */
    virtual void process(net::Packet &pkt,
                         coherence::StateContext &state) = 0;

    /**
     * Fill @p pkt's payload with a request for this function
     * (client-side workload generation).
     */
    virtual void makeRequest(net::Packet &pkt, Rng &rng) = 0;

    const char *name() const { return functionName(id()); }
};

using FunctionPtr = std::unique_ptr<NetworkFunction>;

} // namespace halsim::funcs

#endif // HALSIM_FUNCS_FUNCTION_HH
