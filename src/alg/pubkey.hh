/**
 * @file
 * Public-key protocol layer over BigUint: textbook RSA (keygen /
 * encrypt / decrypt / sign / verify), DSA (parameter generation,
 * sign / verify), and Diffie-Hellman key agreement. These are the
 * three PKA algorithms the paper's cryptography function drives
 * through the BF-2 accelerator and the host QAT (Table IV), built
 * here from scratch on the Montgomery-modexp bignum.
 *
 * Textbook (no padding/OAEP) on purpose: the repository needs the
 * real modular-arithmetic workload and verifiable algebra, not a
 * hardened TLS stack.
 */

#ifndef HALSIM_ALG_PUBKEY_HH
#define HALSIM_ALG_PUBKEY_HH

#include <cstdint>
#include <span>

#include "alg/bignum.hh"
#include "alg/sha256.hh"
#include "sim/rng.hh"

namespace halsim::alg {

/**
 * Textbook RSA.
 */
class RsaKey
{
  public:
    /** Generate a keypair with ~@p bits modulus (two bits/2 primes). */
    static RsaKey generate(unsigned bits, halsim::Rng &rng);

    const BigUint &modulus() const { return n_; }
    const BigUint &publicExponent() const { return e_; }

    /** c = m^e mod n. @pre m < n. */
    BigUint encrypt(const BigUint &m) const;

    /** m = c^d mod n. */
    BigUint decrypt(const BigUint &c) const;

    /** Sign the SHA-256 digest of @p msg: s = H(m)^d mod n. */
    BigUint sign(std::span<const std::uint8_t> msg) const;

    /** Verify s^e mod n == H(m). */
    bool verify(std::span<const std::uint8_t> msg,
                const BigUint &sig) const;

  private:
    BigUint n_, e_, d_;
};

/**
 * DSA over a (p, q, g) group with q | p-1.
 */
class DsaKey
{
  public:
    struct Signature
    {
        BigUint r, s;
    };

    /**
     * Generate group parameters and a keypair.
     * @param p_bits modulus size (e.g. 512)
     * @param q_bits subgroup size (e.g. 160)
     */
    static DsaKey generate(unsigned p_bits, unsigned q_bits,
                           halsim::Rng &rng);

    const BigUint &p() const { return p_; }
    const BigUint &q() const { return q_; }
    const BigUint &g() const { return g_; }
    const BigUint &publicKey() const { return y_; }

    Signature sign(std::span<const std::uint8_t> msg,
                   halsim::Rng &rng) const;
    bool verify(std::span<const std::uint8_t> msg,
                const Signature &sig) const;

  private:
    BigUint digestMod(std::span<const std::uint8_t> msg) const;

    BigUint p_, q_, g_, x_, y_;
};

/**
 * Classic Diffie-Hellman over the Oakley 768-bit group.
 */
class DhParty
{
  public:
    explicit DhParty(halsim::Rng &rng);

    const BigUint &publicValue() const { return gx_; }

    /** Shared secret from the peer's public value. */
    BigUint agree(const BigUint &peer_public) const;

  private:
    BigUint p_, x_, gx_;
};

} // namespace halsim::alg

#endif // HALSIM_ALG_PUBKEY_HH
