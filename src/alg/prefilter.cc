#include "alg/prefilter.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace halsim::alg {

PrefilterMatcher::PrefilterMatcher(const std::vector<std::string> &patterns)
    : patterns_(patterns), buckets_(kBuckets)
{
    for (std::uint32_t i = 0; i < patterns_.size(); ++i) {
        if (patterns_[i].size() < kWindow) {
            throw std::invalid_argument(
                "PrefilterMatcher: pattern shorter than the window");
        }
        const auto *head =
            reinterpret_cast<const std::uint8_t *>(patterns_[i].data());
        buckets_[windowHash(head)].push_back(i);
    }
    // Longest candidate first so findAll emits deterministic order.
    for (auto &b : buckets_) {
        std::sort(b.begin(), b.end());
    }
}

std::size_t
PrefilterMatcher::populatedBuckets() const
{
    std::size_t n = 0;
    for (const auto &b : buckets_)
        n += !b.empty();
    return n;
}

std::uint64_t
PrefilterMatcher::countMatches(std::span<const std::uint8_t> data) const
{
    if (data.size() < kWindow) {
        lastHitRate_ = 0.0;
        return 0;
    }
    std::uint64_t count = 0;
    std::uint64_t hits = 0;
    const std::size_t last = data.size() - kWindow;
    for (std::size_t i = 0; i <= last; ++i) {
        const auto &bucket = buckets_[windowHash(data.data() + i)];
        if (bucket.empty())
            continue;
        ++hits;
        for (std::uint32_t pi : bucket) {
            const std::string &p = patterns_[pi];
            if (p.size() <= data.size() - i &&
                std::memcmp(p.data(), data.data() + i, p.size()) == 0) {
                ++count;
            }
        }
    }
    lastHitRate_ = static_cast<double>(hits) / static_cast<double>(last + 1);
    return count;
}

std::vector<Match>
PrefilterMatcher::findAll(std::span<const std::uint8_t> data) const
{
    std::vector<Match> out;
    if (data.size() < kWindow)
        return out;
    const std::size_t last = data.size() - kWindow;
    for (std::size_t i = 0; i <= last; ++i) {
        const auto &bucket = buckets_[windowHash(data.data() + i)];
        for (std::uint32_t pi : bucket) {
            const std::string &p = patterns_[pi];
            if (p.size() <= data.size() - i &&
                std::memcmp(p.data(), data.data() + i, p.size()) == 0) {
                out.push_back(Match{pi, i + p.size()});
            }
        }
    }
    return out;
}

} // namespace halsim::alg
