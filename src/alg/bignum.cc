#include "alg/bignum.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace halsim::alg {

namespace {

using Limb = std::uint32_t;
using DLimb = std::uint64_t;
constexpr unsigned kLimbBits = 32;

/** -m^-1 mod 2^32 for odd m, by Newton iteration. */
Limb
montInverse(Limb m0)
{
    assert(m0 & 1);
    Limb x = 1;
    for (int i = 0; i < 5; ++i)
        x *= 2 - m0 * x;   // doubles correct bits each round
    return static_cast<Limb>(0) - x;
}

/**
 * Montgomery CIOS multiply-reduce: returns a*b*R^-1 mod m where
 * R = 2^(32n). All operands are n limbs, a,b < m, m odd.
 */
void
montMul(const std::vector<Limb> &a, const std::vector<Limb> &b,
        const std::vector<Limb> &m, Limb mprime, std::vector<Limb> &out,
        std::vector<Limb> &t)
{
    const std::size_t n = m.size();
    t.assign(n + 2, 0);

    for (std::size_t i = 0; i < n; ++i) {
        const DLimb ai = i < a.size() ? a[i] : 0;
        // t += ai * b
        DLimb carry = 0;
        for (std::size_t j = 0; j < n; ++j) {
            const DLimb bj = j < b.size() ? b[j] : 0;
            const DLimb cur = t[j] + ai * bj + carry;
            t[j] = static_cast<Limb>(cur);
            carry = cur >> kLimbBits;
        }
        DLimb cur = static_cast<DLimb>(t[n]) + carry;
        t[n] = static_cast<Limb>(cur);
        t[n + 1] = static_cast<Limb>(cur >> kLimbBits);

        // Reduce: add mf * m and shift one limb.
        const Limb mf = static_cast<Limb>(t[0] * mprime);
        carry = (static_cast<DLimb>(t[0]) +
                 static_cast<DLimb>(mf) * m[0]) >> kLimbBits;
        for (std::size_t j = 1; j < n; ++j) {
            const DLimb c2 =
                t[j] + static_cast<DLimb>(mf) * m[j] + carry;
            t[j - 1] = static_cast<Limb>(c2);
            carry = c2 >> kLimbBits;
        }
        cur = static_cast<DLimb>(t[n]) + carry;
        t[n - 1] = static_cast<Limb>(cur);
        t[n] = t[n + 1] + static_cast<Limb>(cur >> kLimbBits);
        t[n + 1] = 0;
    }

    // t[0..n] holds the result; subtract m once if needed.
    bool ge = t[n] != 0;
    if (!ge) {
        ge = true;
        for (std::size_t i = n; i-- > 0;) {
            if (t[i] != m[i]) {
                ge = t[i] > m[i];
                break;
            }
        }
    }
    out.assign(t.begin(), t.begin() + n);
    if (ge) {
        DLimb borrow = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const DLimb diff =
                static_cast<DLimb>(out[i]) - m[i] - borrow;
            out[i] = static_cast<Limb>(diff);
            borrow = (diff >> kLimbBits) & 1;
        }
    }
}

} // namespace

BigUint::BigUint(std::uint64_t v)
{
    if (v != 0)
        limbs_.push_back(static_cast<Limb>(v));
    if (v >> 32)
        limbs_.push_back(static_cast<Limb>(v >> 32));
}

void
BigUint::trim()
{
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
}

BigUint
BigUint::fromHex(const std::string &hex)
{
    BigUint r;
    for (char ch : hex) {
        if (ch == ' ' || ch == '_')
            continue;
        int v;
        if (ch >= '0' && ch <= '9')
            v = ch - '0';
        else if (ch >= 'a' && ch <= 'f')
            v = ch - 'a' + 10;
        else if (ch >= 'A' && ch <= 'F')
            v = ch - 'A' + 10;
        else
            throw std::invalid_argument("bad hex digit");
        r = (r << 4) + BigUint(static_cast<std::uint64_t>(v));
    }
    return r;
}

BigUint
BigUint::fromBytes(std::span<const std::uint8_t> bytes)
{
    BigUint r;
    for (std::uint8_t b : bytes)
        r = (r << 8) + BigUint(b);
    return r;
}

BigUint
BigUint::randomBits(unsigned bits, halsim::Rng &rng)
{
    assert(bits > 0);
    BigUint r;
    const unsigned nlimbs = (bits + kLimbBits - 1) / kLimbBits;
    r.limbs_.resize(nlimbs);
    for (auto &l : r.limbs_)
        l = static_cast<Limb>(rng.next());
    const unsigned top = (bits - 1) % kLimbBits;
    r.limbs_.back() &= (top == 31) ? ~Limb{0} : ((Limb{1} << (top + 1)) - 1);
    r.limbs_.back() |= Limb{1} << top;   // force exact bit length
    r.trim();
    return r;
}

BigUint
BigUint::randomBelow(const BigUint &n, halsim::Rng &rng)
{
    assert(n >= BigUint(2));
    const unsigned bits = n.bitLength();
    for (;;) {
        BigUint c = randomBits(bits, rng);
        // randomBits forces the MSB; also try with it cleared for
        // uniformity over the low range.
        if (rng.chance(0.5) && bits > 1)
            c = c - (BigUint(1) << (bits - 1));
        if (!c.isZero() && c < n)
            return c;
    }
}

std::string
BigUint::toHex() const
{
    if (isZero())
        return "0";
    static const char *digits = "0123456789abcdef";
    std::string s;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        for (int shift = 28; shift >= 0; shift -= 4)
            s.push_back(digits[(limbs_[i] >> shift) & 0xf]);
    }
    const std::size_t nz = s.find_first_not_of('0');
    return s.substr(nz);
}

std::vector<std::uint8_t>
BigUint::toBytes() const
{
    std::vector<std::uint8_t> out;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        out.push_back(static_cast<std::uint8_t>(limbs_[i] >> 24));
        out.push_back(static_cast<std::uint8_t>(limbs_[i] >> 16));
        out.push_back(static_cast<std::uint8_t>(limbs_[i] >> 8));
        out.push_back(static_cast<std::uint8_t>(limbs_[i]));
    }
    while (out.size() > 1 && out.front() == 0)
        out.erase(out.begin());
    return out;
}

unsigned
BigUint::bitLength() const
{
    if (limbs_.empty())
        return 0;
    unsigned bits = static_cast<unsigned>(limbs_.size()) * kLimbBits;
    Limb top = limbs_.back();
    for (Limb probe = Limb{1} << 31; probe != 0 && !(top & probe);
         probe >>= 1) {
        --bits;
    }
    return bits;
}

bool
BigUint::bit(unsigned i) const
{
    const std::size_t limb = i / kLimbBits;
    if (limb >= limbs_.size())
        return false;
    return (limbs_[limb] >> (i % kLimbBits)) & 1;
}

std::uint64_t
BigUint::toUint64() const
{
    std::uint64_t v = 0;
    if (!limbs_.empty())
        v = limbs_[0];
    if (limbs_.size() > 1)
        v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
    return v;
}

int
BigUint::compare(const BigUint &o) const
{
    if (limbs_.size() != o.limbs_.size())
        return limbs_.size() < o.limbs_.size() ? -1 : 1;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != o.limbs_[i])
            return limbs_[i] < o.limbs_[i] ? -1 : 1;
    }
    return 0;
}

BigUint
BigUint::operator+(const BigUint &o) const
{
    BigUint r;
    const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
    r.limbs_.resize(n + 1, 0);
    DLimb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const DLimb a = i < limbs_.size() ? limbs_[i] : 0;
        const DLimb b = i < o.limbs_.size() ? o.limbs_[i] : 0;
        const DLimb sum = a + b + carry;
        r.limbs_[i] = static_cast<Limb>(sum);
        carry = sum >> kLimbBits;
    }
    r.limbs_[n] = static_cast<Limb>(carry);
    r.trim();
    return r;
}

BigUint
BigUint::operator-(const BigUint &o) const
{
    assert(*this >= o && "unsigned underflow");
    BigUint r;
    r.limbs_.resize(limbs_.size(), 0);
    DLimb borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const DLimb b = i < o.limbs_.size() ? o.limbs_[i] : 0;
        const DLimb diff = static_cast<DLimb>(limbs_[i]) - b - borrow;
        r.limbs_[i] = static_cast<Limb>(diff);
        borrow = (diff >> kLimbBits) & 1;
    }
    r.trim();
    return r;
}

BigUint
BigUint::operator*(const BigUint &o) const
{
    if (isZero() || o.isZero())
        return BigUint();
    BigUint r;
    r.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        DLimb carry = 0;
        for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
            const DLimb cur = r.limbs_[i + j] +
                              static_cast<DLimb>(limbs_[i]) * o.limbs_[j] +
                              carry;
            r.limbs_[i + j] = static_cast<Limb>(cur);
            carry = cur >> kLimbBits;
        }
        r.limbs_[i + o.limbs_.size()] += static_cast<Limb>(carry);
    }
    r.trim();
    return r;
}

BigUint
BigUint::operator<<(unsigned n) const
{
    if (isZero() || n == 0)
        return *this;
    const unsigned limb_shift = n / kLimbBits;
    const unsigned bit_shift = n % kLimbBits;
    BigUint r;
    r.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        r.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
        if (bit_shift != 0) {
            r.limbs_[i + limb_shift + 1] |=
                static_cast<Limb>(static_cast<DLimb>(limbs_[i]) >>
                                  (kLimbBits - bit_shift));
        }
    }
    r.trim();
    return r;
}

BigUint
BigUint::operator>>(unsigned n) const
{
    const unsigned limb_shift = n / kLimbBits;
    const unsigned bit_shift = n % kLimbBits;
    if (limb_shift >= limbs_.size())
        return BigUint();
    BigUint r;
    r.limbs_.assign(limbs_.size() - limb_shift, 0);
    for (std::size_t i = 0; i < r.limbs_.size(); ++i) {
        r.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
        if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
            r.limbs_[i] |= static_cast<Limb>(
                static_cast<DLimb>(limbs_[i + limb_shift + 1])
                << (kLimbBits - bit_shift));
        }
    }
    r.trim();
    return r;
}

BigUintDivMod
BigUint::divmod(const BigUint &d) const
{
    assert(!d.isZero() && "division by zero");
    BigUintDivMod res;
    if (*this < d) {
        res.remainder = *this;
        return res;
    }

    // Single-limb divisor: simple schoolbook pass.
    if (d.limbs_.size() == 1) {
        const DLimb v = d.limbs_[0];
        res.quotient.limbs_.assign(limbs_.size(), 0);
        DLimb rem = 0;
        for (std::size_t i = limbs_.size(); i-- > 0;) {
            const DLimb cur = (rem << kLimbBits) | limbs_[i];
            res.quotient.limbs_[i] = static_cast<Limb>(cur / v);
            rem = cur % v;
        }
        res.quotient.trim();
        res.remainder = BigUint(static_cast<std::uint64_t>(rem));
        return res;
    }

    // Knuth TAOCP vol. 2, Algorithm D (base 2^32).
    const std::size_t n = d.limbs_.size();
    const std::size_t m = limbs_.size() - n;

    // D1: normalize so the divisor's top limb has its MSB set.
    unsigned shift = 0;
    for (Limb top = d.limbs_.back(); !(top & 0x80000000u); top <<= 1)
        ++shift;
    const BigUint vn = d << shift;
    BigUint un = *this << shift;
    un.limbs_.resize(limbs_.size() + 1, 0);   // u has m+n+1 limbs

    const std::vector<Limb> &v = vn.limbs_;
    std::vector<Limb> &u = un.limbs_;
    res.quotient.limbs_.assign(m + 1, 0);

    for (std::size_t j = m + 1; j-- > 0;) {
        // D3: estimate qhat from the top two dividend limbs.
        const DLimb num =
            (static_cast<DLimb>(u[j + n]) << kLimbBits) | u[j + n - 1];
        DLimb qhat = num / v[n - 1];
        DLimb rhat = num % v[n - 1];
        while (qhat >= (DLimb{1} << kLimbBits) ||
               qhat * v[n - 2] >
                   ((rhat << kLimbBits) | u[j + n - 2])) {
            --qhat;
            rhat += v[n - 1];
            if (rhat >= (DLimb{1} << kLimbBits))
                break;
        }

        // D4: multiply-subtract qhat * v from u[j .. j+n].
        std::int64_t borrow = 0;
        DLimb carry = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const DLimb prod = qhat * v[i] + carry;
            carry = prod >> kLimbBits;
            const std::int64_t diff =
                static_cast<std::int64_t>(u[i + j]) -
                static_cast<std::int64_t>(prod & 0xffffffffu) + borrow;
            u[i + j] = static_cast<Limb>(diff);
            borrow = diff >> kLimbBits;   // arithmetic shift: 0 or -1
        }
        const std::int64_t diff =
            static_cast<std::int64_t>(u[j + n]) -
            static_cast<std::int64_t>(carry) + borrow;
        u[j + n] = static_cast<Limb>(diff);

        // D5/D6: qhat was (rarely) one too large; add the divisor
        // back and decrement.
        if (diff < 0) {
            --qhat;
            DLimb add_carry = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const DLimb sum =
                    static_cast<DLimb>(u[i + j]) + v[i] + add_carry;
                u[i + j] = static_cast<Limb>(sum);
                add_carry = sum >> kLimbBits;
            }
            u[j + n] = static_cast<Limb>(u[j + n] + add_carry);
        }
        res.quotient.limbs_[j] = static_cast<Limb>(qhat);
    }

    // D8: the remainder is u[0..n) shifted back.
    BigUint rem;
    rem.limbs_.assign(u.begin(), u.begin() + static_cast<long>(n));
    rem.trim();
    res.remainder = rem >> shift;
    res.quotient.trim();
    return res;
}

BigUint
BigUint::modexp(const BigUint &e, const BigUint &m) const
{
    assert(!m.isZero());
    if (m == BigUint(1))
        return BigUint();
    if (e.isZero())
        return BigUint(1);

    const BigUint base = *this % m;

    if (m.isOdd()) {
        // Montgomery ladder over R = 2^(32n).
        const std::size_t n = m.limbs_.size();
        const Limb mp = montInverse(m.limbs_[0]);
        // R mod m and base*R mod m via one divmod each.
        BigUint r1 = (BigUint(1) << (static_cast<unsigned>(n) * kLimbBits))
                     % m;
        BigUint bm = (base << (static_cast<unsigned>(n) * kLimbBits)) % m;
        std::vector<Limb> acc = r1.limbs_;
        acc.resize(n, 0);
        std::vector<Limb> bmont = bm.limbs_;
        bmont.resize(n, 0);
        std::vector<Limb> tmp, scratch;
        tmp.reserve(n);
        scratch.reserve(n + 2);
        for (unsigned i = e.bitLength(); i-- > 0;) {
            montMul(acc, acc, m.limbs_, mp, tmp, scratch);
            acc.swap(tmp);
            if (e.bit(i)) {
                montMul(acc, bmont, m.limbs_, mp, tmp, scratch);
                acc.swap(tmp);
            }
        }
        // Convert out of Montgomery form: multiply by 1.
        std::vector<Limb> one(n, 0);
        one[0] = 1;
        montMul(acc, one, m.limbs_, mp, tmp, scratch);
        BigUint out;
        out.limbs_ = std::move(tmp);
        out.trim();
        return out;
    }

    // Even modulus: plain square-and-multiply with divmod reduction.
    BigUint result(1);
    BigUint b = base;
    for (unsigned i = 0; i < e.bitLength(); ++i) {
        if (e.bit(i))
            result = (result * b) % m;
        b = (b * b) % m;
    }
    return result;
}

BigUint
BigUint::modinv(const BigUint &m) const
{
    // Extended Euclid on (a, m) tracking x where a*x = g (mod m).
    // Signs handled by tracking (value, negative) pairs.
    BigUint a = *this % m;
    if (a.isZero())
        return BigUint();
    BigUint r0 = m, r1 = a;
    BigUint s0(0), s1(1);
    bool neg0 = false, neg1 = false;
    while (!r1.isZero()) {
        const BigUintDivMod dm = r0.divmod(r1);
        // s2 = s0 - q * s1 (signed).
        const BigUint qs1 = dm.quotient * s1;
        BigUint s2;
        bool neg2;
        if (neg0 == !neg1) {
            // s0 and q*s1 have the same effective sign after the minus:
            // s0 - q*s1 where signs differ -> addition.
            s2 = s0 + qs1;
            neg2 = neg0;
        } else if (s0 >= qs1) {
            s2 = s0 - qs1;
            neg2 = neg0;
        } else {
            s2 = qs1 - s0;
            neg2 = !neg0;
        }
        r0 = r1;
        r1 = dm.remainder;
        s0 = s1;
        neg0 = neg1;
        s1 = std::move(s2);
        neg1 = neg2;
    }
    if (r0 != BigUint(1))
        return BigUint();   // not invertible
    if (neg0)
        return m - (s0 % m);
    return s0 % m;
}

BigUint
BigUint::gcd(BigUint a, BigUint b)
{
    while (!b.isZero()) {
        BigUint r = a % b;
        a = std::move(b);
        b = std::move(r);
    }
    return a;
}

bool
BigUint::isProbablePrime(halsim::Rng &rng, int rounds) const
{
    if (*this < BigUint(2))
        return false;
    for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull,
                            19ull, 23ull, 29ull, 31ull, 37ull}) {
        const BigUint bp(p);
        if (*this == bp)
            return true;
        if ((*this % bp).isZero())
            return false;
    }
    // Write n-1 = d * 2^r.
    const BigUint n1 = *this - BigUint(1);
    BigUint d = n1;
    unsigned r = 0;
    while (!d.isOdd()) {
        d = d >> 1;
        ++r;
    }
    for (int i = 0; i < rounds; ++i) {
        const BigUint a = randomBelow(*this, rng);
        BigUint x = a.modexp(d, *this);
        if (x == BigUint(1) || x == n1)
            continue;
        bool witness = true;
        for (unsigned j = 1; j < r; ++j) {
            x = x.modexp(BigUint(2), *this);
            if (x == n1) {
                witness = false;
                break;
            }
        }
        if (witness)
            return false;
    }
    return true;
}

namespace groups {

BigUint
oakley768()
{
    // RFC 2409 First Oakley Group (768-bit MODP), generator 2.
    static const BigUint p = BigUint::fromHex(
        "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
        "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
        "4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF");
    return p;
}

BigUint
prime512()
{
    // Deterministically generated once: search upward from a fixed
    // random 512-bit odd start until Miller-Rabin accepts.
    static const BigUint p = [] {
        halsim::Rng rng(0x512512);
        BigUint c = BigUint::randomBits(512, rng);
        if (!c.isOdd())
            c = c + BigUint(1);
        while (!c.isProbablePrime(rng, 12))
            c = c + BigUint(2);
        return c;
    }();
    return p;
}

} // namespace groups

} // namespace halsim::alg
