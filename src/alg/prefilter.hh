/**
 * @file
 * Prefilter-and-verify multi-literal matcher — the second REM engine.
 *
 * Hyperscan executes literal rulesets with an FDR/Teddy-style
 * prefilter: a hash over a short window of text selects candidate
 * patterns, which are then verified exactly. This is the engine shape
 * the paper's *host* runs (Table I / §III-A), while the BF-2 RXP
 * accelerator behaves like a DFA walker (our AhoCorasick). Having
 * both lets tests cross-check the engines against each other and the
 * benches compare their throughput shapes.
 *
 * Patterns must be at least kWindow (4) bytes long, which both
 * paper rulesets satisfy.
 */

#ifndef HALSIM_ALG_PREFILTER_HH
#define HALSIM_ALG_PREFILTER_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "alg/aho_corasick.hh"   // for Match

namespace halsim::alg {

/**
 * Hash-bucketed literal prefilter with exact verification.
 */
class PrefilterMatcher
{
  public:
    /** Prefilter window: the first kWindow bytes of each pattern. */
    static constexpr std::size_t kWindow = 4;

    /**
     * @param patterns literal patterns, each >= kWindow bytes
     * @throws std::invalid_argument on a too-short pattern
     */
    explicit PrefilterMatcher(const std::vector<std::string> &patterns);

    std::size_t patternCount() const { return patterns_.size(); }

    /** Number of hash buckets actually populated (density probe). */
    std::size_t populatedBuckets() const;

    /**
     * Count all occurrences of all patterns (same match semantics as
     * AhoCorasick::countMatches: overlaps and nested matches count).
     */
    std::uint64_t countMatches(std::span<const std::uint8_t> data) const;

    /** All matches as (pattern, end-offset) pairs. */
    std::vector<Match> findAll(std::span<const std::uint8_t> data) const;

    /** Fraction of scanned positions whose bucket was non-empty in
     *  the last scan — the verify load the prefilter admits. */
    double lastHitRate() const { return lastHitRate_; }

  private:
    static std::uint32_t
    windowHash(const std::uint8_t *p)
    {
        // 4 bytes -> bucket index; multiplicative mix.
        std::uint32_t h = (std::uint32_t{p[0]} << 24) |
                          (std::uint32_t{p[1]} << 16) |
                          (std::uint32_t{p[2]} << 8) | p[3];
        return (h * 2654435761u) >> (32 - kBucketBits);
    }

    static constexpr unsigned kBucketBits = 14;
    static constexpr std::size_t kBuckets = std::size_t{1} << kBucketBits;

    std::vector<std::string> patterns_;
    /** buckets_[h] -> indices of candidate patterns. */
    std::vector<std::vector<std::uint32_t>> buckets_;
    mutable double lastHitRate_ = 0.0;
};

} // namespace halsim::alg

#endif // HALSIM_ALG_PREFILTER_HH
