/**
 * @file
 * Deterministic synthetic corpora standing in for the paper's
 * datasets: a Silesia-mozilla-like mixed text/binary stream for the
 * compression function, and literal rulesets shaped like Hyperscan's
 * teakettle_2500 (many short patterns) and snort_literals (fewer,
 * longer, security-flavoured patterns) for REM.
 */

#ifndef HALSIM_ALG_CORPUS_HH
#define HALSIM_ALG_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace halsim::alg {

/**
 * Mixed text/binary data with Silesia-like compressibility (roughly
 * 2.5-3x with deflate): English-like word stream with repeated
 * phrases, interleaved with structured binary records.
 *
 * @param bytes  output size
 * @param seed   deterministic stream selector
 */
std::vector<std::uint8_t> makeSilesiaLike(std::size_t bytes,
                                          std::uint64_t seed = 1);

/** Ruleset flavors, mirroring the paper's REM configurations. */
enum class RulesetKind
{
    Teakettle,      //!< 'tea': ~2500 short simple literals
    SnortLiterals,  //!< 'lite': longer, more selective literals
};

const char *rulesetName(RulesetKind k);

/**
 * Deterministic literal ruleset of the given flavor.
 * Teakettle: @p count short (4-8 byte) lowercase words.
 * SnortLiterals: @p count longer (8-24 byte) mixed tokens
 * resembling protocol strings and shellcode fragments.
 */
std::vector<std::string> makeRuleset(RulesetKind kind,
                                     std::size_t count = 2500,
                                     std::uint64_t seed = 7);

/**
 * A payload stream for REM scans: mostly innocuous text with a
 * controllable rate of embedded rule hits.
 *
 * @param bytes      output size
 * @param rules      the ruleset to embed hits from
 * @param hit_rate   approximate fraction of 64-byte windows
 *                   containing a planted match
 */
std::vector<std::uint8_t> makeScanStream(
    std::size_t bytes, const std::vector<std::string> &rules,
    double hit_rate, std::uint64_t seed = 11);

} // namespace halsim::alg

#endif // HALSIM_ALG_CORPUS_HH
