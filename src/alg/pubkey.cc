#include "alg/pubkey.hh"

#include <cassert>
#include <stdexcept>

namespace halsim::alg {

namespace {

/** Next probable prime at or above @p start (odd increments). */
BigUint
nextPrime(BigUint start, halsim::Rng &rng, int rounds = 12)
{
    if (!start.isOdd())
        start = start + BigUint(1);
    while (!start.isProbablePrime(rng, rounds))
        start = start + BigUint(2);
    return start;
}

/** SHA-256 digest of @p msg as an integer. */
BigUint
digestInt(std::span<const std::uint8_t> msg)
{
    const Sha256Digest d = Sha256::hash(msg);
    return BigUint::fromBytes(
        std::span<const std::uint8_t>(d.data(), d.size()));
}

} // namespace

RsaKey
RsaKey::generate(unsigned bits, halsim::Rng &rng)
{
    assert(bits >= 64);
    RsaKey key;
    key.e_ = BigUint(65537);
    for (;;) {
        const BigUint p = nextPrime(BigUint::randomBits(bits / 2, rng),
                                    rng);
        const BigUint q = nextPrime(BigUint::randomBits(bits / 2, rng),
                                    rng);
        if (p == q)
            continue;
        const BigUint phi = (p - BigUint(1)) * (q - BigUint(1));
        if (BigUint::gcd(key.e_, phi) != BigUint(1))
            continue;
        key.n_ = p * q;
        key.d_ = key.e_.modinv(phi);
        assert(!key.d_.isZero());
        return key;
    }
}

BigUint
RsaKey::encrypt(const BigUint &m) const
{
    assert(m < n_);
    return m.modexp(e_, n_);
}

BigUint
RsaKey::decrypt(const BigUint &c) const
{
    return c.modexp(d_, n_);
}

BigUint
RsaKey::sign(std::span<const std::uint8_t> msg) const
{
    return (digestInt(msg) % n_).modexp(d_, n_);
}

bool
RsaKey::verify(std::span<const std::uint8_t> msg, const BigUint &sig) const
{
    return sig.modexp(e_, n_) == digestInt(msg) % n_;
}

DsaKey
DsaKey::generate(unsigned p_bits, unsigned q_bits, halsim::Rng &rng)
{
    assert(p_bits > q_bits + 16);
    DsaKey key;
    // Subgroup prime q, then search for p = q*k + 1 prime.
    key.q_ = nextPrime(BigUint::randomBits(q_bits, rng), rng);
    BigUint k = BigUint::randomBits(p_bits - q_bits, rng);
    if (!((k % BigUint(2)).isZero()))
        k = k + BigUint(1);   // k even keeps p odd
    for (;;) {
        const BigUint candidate = key.q_ * k + BigUint(1);
        if (candidate.bitLength() >= p_bits - 1 &&
            candidate.isProbablePrime(rng, 10)) {
            key.p_ = candidate;
            break;
        }
        k = k + BigUint(2);
    }
    // Generator of the order-q subgroup: g = h^((p-1)/q) mod p != 1.
    const BigUint exp = (key.p_ - BigUint(1)) / key.q_;
    for (std::uint64_t h = 2;; ++h) {
        key.g_ = BigUint(h).modexp(exp, key.p_);
        if (key.g_ != BigUint(1))
            break;
    }
    // Keypair: x in [1, q), y = g^x mod p.
    key.x_ = BigUint::randomBelow(key.q_, rng);
    key.y_ = key.g_.modexp(key.x_, key.p_);
    return key;
}

BigUint
DsaKey::digestMod(std::span<const std::uint8_t> msg) const
{
    return digestInt(msg) % q_;
}

DsaKey::Signature
DsaKey::sign(std::span<const std::uint8_t> msg, halsim::Rng &rng) const
{
    const BigUint h = digestMod(msg);
    for (;;) {
        const BigUint k = BigUint::randomBelow(q_, rng);
        const BigUint r = g_.modexp(k, p_) % q_;
        if (r.isZero())
            continue;
        const BigUint kinv = k.modinv(q_);
        if (kinv.isZero())
            continue;
        const BigUint s = (kinv * ((h + x_ * r) % q_)) % q_;
        if (s.isZero())
            continue;
        return Signature{r, s};
    }
}

bool
DsaKey::verify(std::span<const std::uint8_t> msg,
               const Signature &sig) const
{
    if (sig.r.isZero() || sig.s.isZero() || sig.r >= q_ || sig.s >= q_)
        return false;
    const BigUint w = sig.s.modinv(q_);
    if (w.isZero())
        return false;
    const BigUint u1 = (digestMod(msg) * w) % q_;
    const BigUint u2 = (sig.r * w) % q_;
    const BigUint v =
        ((g_.modexp(u1, p_) * y_.modexp(u2, p_)) % p_) % q_;
    return v == sig.r;
}

DhParty::DhParty(halsim::Rng &rng)
    : p_(groups::oakley768()), x_(BigUint::randomBits(256, rng)),
      gx_(BigUint(2).modexp(x_, p_))
{}

BigUint
DhParty::agree(const BigUint &peer_public) const
{
    if (peer_public <= BigUint(1) || peer_public >= p_ - BigUint(1))
        throw std::invalid_argument("DH: degenerate peer value");
    return peer_public.modexp(x_, p_);
}

} // namespace halsim::alg
