/**
 * @file
 * SHA-256 (FIPS 180-4). Substrate for the cryptography function's
 * hashing path and for DSA-style message digests. A from-scratch
 * implementation so the repository has no external dependencies.
 */

#ifndef HALSIM_ALG_SHA256_HH
#define HALSIM_ALG_SHA256_HH

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace halsim::alg {

/** A 256-bit digest. */
using Sha256Digest = std::array<std::uint8_t, 32>;

/**
 * Incremental SHA-256 context.
 */
class Sha256
{
  public:
    Sha256() { reset(); }

    /** Restart a fresh hash. */
    void reset();

    /** Absorb more message bytes. */
    void update(std::span<const std::uint8_t> data);

    /** Finish padding and produce the digest; context is consumed. */
    Sha256Digest finish();

    /** One-shot convenience. */
    static Sha256Digest hash(std::span<const std::uint8_t> data);

    /** Hex rendering for tests against published vectors. */
    static std::string toHex(const Sha256Digest &d);

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> h_;
    std::array<std::uint8_t, 64> buf_;
    std::size_t bufLen_ = 0;
    std::uint64_t totalBits_ = 0;
};

} // namespace halsim::alg

#endif // HALSIM_ALG_SHA256_HH
