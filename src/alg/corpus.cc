#include "alg/corpus.hh"

#include <array>
#include <cstring>

#include "sim/rng.hh"

namespace halsim::alg {

namespace {

const std::array<const char *, 48> kWords = {
    "the", "of", "packet", "network", "load", "balance", "server",
    "queue", "switch", "kernel", "driver", "buffer", "stream",
    "function", "latency", "through", "energy", "power", "core",
    "cache", "memory", "socket", "thread", "burst", "flow", "rate",
    "limit", "policy", "monitor", "director", "merger", "host",
    "accelerator", "hardware", "software", "system", "balancer",
    "traffic", "client", "response", "request", "header", "payload",
    "checksum", "address", "protocol", "datacenter", "efficiency",
};

const std::array<const char *, 12> kPhrases = {
    "the quick brown fox jumps over the lazy dog ",
    "system-wide energy efficiency under tail latency constraints ",
    "hardware-assisted load balancing for cooperative computing ",
    "packets per second at one hundred gigabits ",
    "receive queue occupancy above the high watermark ",
    "forwarding threshold set by the load balancing policy ",
    "the excess packets are directed to the host processor ",
    "the embedded switch forwards packets to their destinations ",
    "incremental checksum update on the modified header field ",
    "round robin selection of packets at the forwarding rate ",
    "deflate compression with a thirty two kilobyte window ",
    "modular exponentiation over the oakley prime group ",
};

} // namespace

std::vector<std::uint8_t>
makeSilesiaLike(std::size_t bytes, std::uint64_t seed)
{
    halsim::Rng rng(seed ^ 0x51E51A);
    std::vector<std::uint8_t> out;
    out.reserve(bytes + 64);
    while (out.size() < bytes) {
        const double pick = rng.uniform();
        if (pick < 0.45) {
            // Repeated phrase: long-range matches for LZ77.
            const char *p = kPhrases[rng.uniformInt(kPhrases.size())];
            out.insert(out.end(), p, p + std::strlen(p));
        } else if (pick < 0.85) {
            // Word salad: short-range entropy.
            for (int i = 0; i < 8; ++i) {
                const char *w = kWords[rng.uniformInt(kWords.size())];
                out.insert(out.end(), w, w + std::strlen(w));
                out.push_back(' ');
            }
        } else {
            // Structured binary record: id, flags, padding run.
            std::uint8_t rec[24] = {};
            const std::uint64_t id = rng.next();
            std::memcpy(rec, &id, 8);
            rec[8] = static_cast<std::uint8_t>(rng.uniformInt(4));
            out.insert(out.end(), rec, rec + sizeof(rec));
        }
    }
    out.resize(bytes);
    return out;
}

const char *
rulesetName(RulesetKind k)
{
    switch (k) {
      case RulesetKind::Teakettle: return "teakettle_2500";
      case RulesetKind::SnortLiterals: return "snort_literals";
    }
    return "?";
}

std::vector<std::string>
makeRuleset(RulesetKind kind, std::size_t count, std::uint64_t seed)
{
    halsim::Rng rng(seed ^ (kind == RulesetKind::Teakettle ? 0x7EA : 0x5A0));
    std::vector<std::string> rules;
    rules.reserve(count);
    const char *hexdig = "0123456789abcdef";
    while (rules.size() < count) {
        std::string r;
        if (kind == RulesetKind::Teakettle) {
            // Short pseudo-words: 4-8 lowercase letters, distinctive
            // enough not to fire on ordinary text constantly.
            const std::size_t len = 4 + rng.uniformInt(5);
            for (std::size_t i = 0; i < len; ++i)
                r.push_back(
                    static_cast<char>('a' + rng.uniformInt(26)));
            // Inject a rare digraph so hit rates stay controllable.
            r[1] = 'q';
            r[2] = static_cast<char>('u' + rng.uniformInt(3));
        } else {
            // Longer security-style tokens: protocol verbs, hex
            // fragments, path traversals.
            switch (rng.uniformInt(3)) {
              case 0:
                r = "cmd=";
                for (int i = 0; i < 10; ++i)
                    r.push_back(
                        static_cast<char>('A' + rng.uniformInt(26)));
                break;
              case 1:
                r = "\\x90\\x";
                for (int i = 0; i < 12; ++i)
                    r.push_back(hexdig[rng.uniformInt(16)]);
                break;
              default:
                r = "../../";
                for (int i = 0; i < 8; ++i)
                    r.push_back(
                        static_cast<char>('a' + rng.uniformInt(26)));
                r += "/etc";
                break;
            }
        }
        rules.push_back(std::move(r));
    }
    return rules;
}

std::vector<std::uint8_t>
makeScanStream(std::size_t bytes, const std::vector<std::string> &rules,
               double hit_rate, std::uint64_t seed)
{
    halsim::Rng rng(seed ^ 0x5CA4);
    std::vector<std::uint8_t> out;
    out.reserve(bytes + 64);
    while (out.size() < bytes) {
        if (!rules.empty() && rng.chance(hit_rate)) {
            const std::string &r = rules[rng.uniformInt(rules.size())];
            out.insert(out.end(), r.begin(), r.end());
        }
        for (int i = 0; i < 8; ++i) {
            const char *w = kWords[rng.uniformInt(kWords.size())];
            out.insert(out.end(), w, w + std::strlen(w));
            out.push_back(' ');
        }
    }
    out.resize(bytes);
    return out;
}

} // namespace halsim::alg
