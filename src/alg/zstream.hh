/**
 * @file
 * Container formats over raw DEFLATE: zlib (RFC 1950) and gzip
 * (RFC 1952), with their respective Adler-32 and CRC-32 integrity
 * checksums. The paper's software baselines compress through
 * zlib/QATzip, which produce these framings — implementing them makes
 * the codec's output independently checkable byte-for-byte.
 */

#ifndef HALSIM_ALG_ZSTREAM_HH
#define HALSIM_ALG_ZSTREAM_HH

#include <cstdint>
#include <span>
#include <vector>

#include "alg/deflate.hh"

namespace halsim::alg {

/** Adler-32 checksum (RFC 1950 §8). */
std::uint32_t adler32(std::span<const std::uint8_t> data,
                      std::uint32_t seed = 1);

/** CRC-32 (IEEE 802.3, as used by gzip/zip/png). */
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0);

/** Wrap @p input in a zlib (RFC 1950) stream. */
std::vector<std::uint8_t> zlibCompress(
    std::span<const std::uint8_t> input,
    const DeflateConfig &cfg = DeflateConfig{});

/**
 * Unwrap and inflate a zlib stream, verifying the Adler-32 trailer.
 * @throws std::runtime_error on bad header, data, or checksum
 */
std::vector<std::uint8_t> zlibDecompress(
    std::span<const std::uint8_t> input);

/** Wrap @p input in a gzip (RFC 1952) member. */
std::vector<std::uint8_t> gzipCompress(
    std::span<const std::uint8_t> input,
    const DeflateConfig &cfg = DeflateConfig{});

/**
 * Unwrap and inflate a gzip member, verifying CRC-32 and ISIZE.
 * @throws std::runtime_error on bad header, data, or checksum
 */
std::vector<std::uint8_t> gzipDecompress(
    std::span<const std::uint8_t> input);

} // namespace halsim::alg

#endif // HALSIM_ALG_ZSTREAM_HH
