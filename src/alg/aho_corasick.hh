/**
 * @file
 * Aho-Corasick multi-pattern matcher: the regular-expression-matching
 * (REM) substrate. The paper's REM function runs literal rulesets
 * (teakettle_2500, snort_literals) through the BF-2 RXP accelerator
 * or Hyperscan on the host; both engines reduce literal rulesets to
 * exactly this automaton.
 */

#ifndef HALSIM_ALG_AHO_CORASICK_HH
#define HALSIM_ALG_AHO_CORASICK_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace halsim::alg {

/** One pattern hit: which pattern ended at which offset. */
struct Match
{
    std::uint32_t pattern;   //!< index into the rule list
    std::size_t end;         //!< offset one past the last byte

    bool
    operator==(const Match &o) const
    {
        return pattern == o.pattern && end == o.end;
    }
};

/**
 * Byte-alphabet Aho-Corasick automaton with goto/fail links flattened
 * into a dense delta table for scan speed.
 */
class AhoCorasick
{
  public:
    /** Build the automaton for the given literal patterns. */
    explicit AhoCorasick(const std::vector<std::string> &patterns);

    /** Number of automaton states (hardware-cost proxy). */
    std::size_t stateCount() const { return delta_.size() / 256; }

    std::size_t patternCount() const { return patternLengths_.size(); }

    /** Count all matches (including overlaps) in @p data. */
    std::uint64_t countMatches(std::span<const std::uint8_t> data) const;

    /** Collect all matches; order is by end offset, then pattern. */
    std::vector<Match> findAll(std::span<const std::uint8_t> data) const;

    /** True when any pattern occurs in @p data (early exit). */
    bool contains(std::span<const std::uint8_t> data) const;

  private:
    void build(const std::vector<std::string> &patterns);

    /** delta_[state * 256 + byte] -> next state. */
    std::vector<std::uint32_t> delta_;
    /** outputs_[state] -> indices into matchList_ (begin, end). */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> outputs_;
    std::vector<std::uint32_t> matchList_;   //!< pattern ids, grouped
    std::vector<std::uint32_t> patternLengths_;
};

} // namespace halsim::alg

#endif // HALSIM_ALG_AHO_CORASICK_HH
