/**
 * @file
 * Open-addressing hash map with backward-shift deletion. Used by the
 * NAT translation table and the key-value store: both of the paper's
 * functions need predictable per-lookup cost on the datapath, which
 * node-based std::unordered_map cannot give.
 */

#ifndef HALSIM_ALG_FIXED_MAP_HH
#define HALSIM_ALG_FIXED_MAP_HH

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace halsim::alg {

/** 64-bit mix (splitmix64 finalizer) to harden weak std::hash. */
inline std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/**
 * Linear-probing hash map.
 *
 * @tparam K key type (hashable with std::hash, equality comparable)
 * @tparam V mapped type
 *
 * Deletion uses backward shifting instead of tombstones, so probe
 * sequences never degrade over time — important for the NAT table,
 * which churns entries constantly. Grows at 70% load.
 */
template <typename K, typename V>
class FixedMap
{
  public:
    explicit FixedMap(std::size_t initial_capacity = 16)
    {
        std::size_t cap = 16;
        while (cap < initial_capacity)
            cap <<= 1;
        slots_.resize(cap);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

    /** Insert or overwrite. @return true when the key was new. */
    bool
    put(const K &key, V value)
    {
        if ((size_ + 1) * 10 >= slots_.size() * 7)
            grow();
        const std::size_t idx = findSlot(key);
        if (slots_[idx].used) {
            slots_[idx].kv.second = std::move(value);
            return false;
        }
        slots_[idx].used = true;
        slots_[idx].kv = {key, std::move(value)};
        ++size_;
        return true;
    }

    /** Pointer to the mapped value, or nullptr. */
    V *
    find(const K &key)
    {
        const std::size_t idx = findSlot(key);
        return slots_[idx].used ? &slots_[idx].kv.second : nullptr;
    }

    const V *
    find(const K &key) const
    {
        const std::size_t idx =
            const_cast<FixedMap *>(this)->findSlot(key);
        return slots_[idx].used ? &slots_[idx].kv.second : nullptr;
    }

    bool contains(const K &key) const { return find(key) != nullptr; }

    /** Remove @p key. @return true when it existed. */
    bool
    erase(const K &key)
    {
        std::size_t idx = findSlot(key);
        if (!slots_[idx].used)
            return false;
        // Backward-shift deletion: pull subsequent cluster members
        // whose home slot is at or before the vacated index.
        const std::size_t mask = slots_.size() - 1;
        std::size_t hole = idx;
        std::size_t probe = (idx + 1) & mask;
        while (slots_[probe].used) {
            const std::size_t home = homeSlot(slots_[probe].kv.first);
            // Move if the hole lies cyclically within [home, probe).
            const bool movable =
                ((probe - home) & mask) >= ((probe - hole) & mask);
            if (movable) {
                slots_[hole] = std::move(slots_[probe]);
                hole = probe;
            }
            probe = (probe + 1) & mask;
        }
        slots_[hole].used = false;
        slots_[hole].kv = {};
        --size_;
        return true;
    }

    void
    clear()
    {
        for (auto &s : slots_) {
            s.used = false;
            s.kv = {};
        }
        size_ = 0;
    }

    /** Visit every (key, value) pair; @p fn may mutate the value. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &s : slots_)
            if (s.used)
                fn(s.kv.first, s.kv.second);
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &s : slots_)
            if (s.used)
                fn(s.kv.first, s.kv.second);
    }

  private:
    struct Slot
    {
        bool used = false;
        std::pair<K, V> kv{};
    };

    std::size_t
    homeSlot(const K &key) const
    {
        return mix64(std::hash<K>{}(key)) & (slots_.size() - 1);
    }

    /** Slot holding @p key, or the first empty slot on its probe path. */
    std::size_t
    findSlot(const K &key)
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t idx = homeSlot(key);
        while (slots_[idx].used && !(slots_[idx].kv.first == key))
            idx = (idx + 1) & mask;
        return idx;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        size_ = 0;
        for (auto &s : old)
            if (s.used)
                put(s.kv.first, std::move(s.kv.second));
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

} // namespace halsim::alg

#endif // HALSIM_ALG_FIXED_MAP_HH
