#include "alg/zstream.hh"

#include <array>
#include <stdexcept>

namespace halsim::alg {

namespace {

/** CRC-32 table for the reflected IEEE polynomial 0xEDB88320. */
const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

void
push32le(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t
read32le(std::span<const std::uint8_t> data, std::size_t off)
{
    return data[off] | (std::uint32_t{data[off + 1]} << 8) |
           (std::uint32_t{data[off + 2]} << 16) |
           (std::uint32_t{data[off + 3]} << 24);
}

} // namespace

std::uint32_t
adler32(std::span<const std::uint8_t> data, std::uint32_t seed)
{
    constexpr std::uint32_t kMod = 65521;
    std::uint32_t a = seed & 0xffff;
    std::uint32_t b = (seed >> 16) & 0xffff;
    std::size_t i = 0;
    while (i < data.size()) {
        // Process in chunks small enough to defer the modulo (zlib's
        // NMAX trick: 5552 is the largest n with no 32-bit overflow).
        const std::size_t chunk =
            std::min<std::size_t>(data.size() - i, 5552);
        for (std::size_t j = 0; j < chunk; ++j) {
            a += data[i + j];
            b += a;
        }
        a %= kMod;
        b %= kMod;
        i += chunk;
    }
    return (b << 16) | a;
}

std::uint32_t
crc32(std::span<const std::uint8_t> data, std::uint32_t seed)
{
    const auto &table = crcTable();
    std::uint32_t c = ~seed;
    for (std::uint8_t byte : data)
        c = table[(c ^ byte) & 0xff] ^ (c >> 8);
    return ~c;
}

std::vector<std::uint8_t>
zlibCompress(std::span<const std::uint8_t> input, const DeflateConfig &cfg)
{
    std::vector<std::uint8_t> out;
    // CMF: CM=8 (deflate), CINFO=7 (32 KiB window) -> 0x78.
    const std::uint8_t cmf = 0x78;
    // FLG: FCHECK makes (CMF<<8 | FLG) % 31 == 0, FLEVEL=2.
    std::uint8_t flg = 0x80;
    flg += 31 - static_cast<std::uint8_t>(
                    ((std::uint32_t{cmf} << 8) | flg) % 31);
    out.push_back(cmf);
    out.push_back(flg);

    const auto body = deflateCompress(input, cfg);
    out.insert(out.end(), body.begin(), body.end());

    // Adler-32 trailer, big-endian.
    const std::uint32_t ad = adler32(input);
    out.push_back(static_cast<std::uint8_t>(ad >> 24));
    out.push_back(static_cast<std::uint8_t>(ad >> 16));
    out.push_back(static_cast<std::uint8_t>(ad >> 8));
    out.push_back(static_cast<std::uint8_t>(ad));
    return out;
}

std::vector<std::uint8_t>
zlibDecompress(std::span<const std::uint8_t> input)
{
    if (input.size() < 6)
        throw std::runtime_error("zlib: stream too short");
    const std::uint8_t cmf = input[0];
    const std::uint8_t flg = input[1];
    if ((cmf & 0x0f) != 8)
        throw std::runtime_error("zlib: not deflate");
    if (((std::uint32_t{cmf} << 8) | flg) % 31 != 0)
        throw std::runtime_error("zlib: bad header check");
    if (flg & 0x20)
        throw std::runtime_error("zlib: preset dictionaries unsupported");

    const auto body = input.subspan(2, input.size() - 6);
    auto data = deflateDecompress(body);

    const std::uint32_t stored =
        (std::uint32_t{input[input.size() - 4]} << 24) |
        (std::uint32_t{input[input.size() - 3]} << 16) |
        (std::uint32_t{input[input.size() - 2]} << 8) |
        input[input.size() - 1];
    if (adler32(data) != stored)
        throw std::runtime_error("zlib: Adler-32 mismatch");
    return data;
}

std::vector<std::uint8_t>
gzipCompress(std::span<const std::uint8_t> input, const DeflateConfig &cfg)
{
    std::vector<std::uint8_t> out = {
        0x1f, 0x8b,   // magic
        0x08,         // CM = deflate
        0x00,         // FLG: no extras
        0, 0, 0, 0,   // MTIME = 0 (reproducible output)
        0x00,         // XFL
        0xff,         // OS = unknown
    };
    const auto body = deflateCompress(input, cfg);
    out.insert(out.end(), body.begin(), body.end());
    push32le(out, crc32(input));
    push32le(out, static_cast<std::uint32_t>(input.size()));
    return out;
}

std::vector<std::uint8_t>
gzipDecompress(std::span<const std::uint8_t> input)
{
    if (input.size() < 18)
        throw std::runtime_error("gzip: stream too short");
    if (input[0] != 0x1f || input[1] != 0x8b)
        throw std::runtime_error("gzip: bad magic");
    if (input[2] != 0x08)
        throw std::runtime_error("gzip: not deflate");
    const std::uint8_t flg = input[3];
    std::size_t off = 10;
    if (flg & 0x04) {   // FEXTRA
        if (off + 2 > input.size())
            throw std::runtime_error("gzip: truncated FEXTRA");
        const std::size_t xlen =
            input[off] | (std::size_t{input[off + 1]} << 8);
        off += 2 + xlen;
    }
    auto skipZeroTerminated = [&] {
        while (off < input.size() && input[off] != 0)
            ++off;
        ++off;
    };
    if (flg & 0x08)   // FNAME
        skipZeroTerminated();
    if (flg & 0x10)   // FCOMMENT
        skipZeroTerminated();
    if (flg & 0x02)   // FHCRC
        off += 2;
    if (off + 8 > input.size())
        throw std::runtime_error("gzip: truncated member");

    const auto body = input.subspan(off, input.size() - off - 8);
    auto data = deflateDecompress(body);

    const std::uint32_t want_crc = read32le(input, input.size() - 8);
    const std::uint32_t want_size = read32le(input, input.size() - 4);
    if (crc32(data) != want_crc)
        throw std::runtime_error("gzip: CRC-32 mismatch");
    if (static_cast<std::uint32_t>(data.size()) != want_size)
        throw std::runtime_error("gzip: ISIZE mismatch");
    return data;
}

} // namespace halsim::alg
