#include "alg/aho_corasick.hh"

#include <cassert>
#include <queue>

namespace halsim::alg {

namespace {

/** Trie node used only during construction. */
struct TrieNode
{
    std::uint32_t next[256];
    std::uint32_t fail = 0;
    std::vector<std::uint32_t> out;

    TrieNode()
    {
        for (auto &n : next)
            n = 0;
    }
};

} // namespace

AhoCorasick::AhoCorasick(const std::vector<std::string> &patterns)
{
    build(patterns);
}

void
AhoCorasick::build(const std::vector<std::string> &patterns)
{
    patternLengths_.reserve(patterns.size());
    for (const auto &p : patterns)
        patternLengths_.push_back(static_cast<std::uint32_t>(p.size()));

    // 1. Trie of all patterns. State 0 is the root; next[c] == 0 means
    //    "no edge" during this phase (the root never appears as a
    //    child).
    std::vector<TrieNode> trie(1);
    for (std::uint32_t pi = 0; pi < patterns.size(); ++pi) {
        const std::string &p = patterns[pi];
        assert(!p.empty() && "empty pattern is not allowed");
        std::uint32_t s = 0;
        for (unsigned char c : p) {
            if (trie[s].next[c] == 0) {
                trie[s].next[c] = static_cast<std::uint32_t>(trie.size());
                trie.emplace_back();
            }
            s = trie[s].next[c];
        }
        trie[s].out.push_back(pi);
    }

    // 2. BFS to assign failure links and merge outputs along them.
    std::queue<std::uint32_t> bfs;
    for (int c = 0; c < 256; ++c) {
        const std::uint32_t s = trie[0].next[c];
        if (s != 0) {
            trie[s].fail = 0;
            bfs.push(s);
        }
    }
    while (!bfs.empty()) {
        const std::uint32_t u = bfs.front();
        bfs.pop();
        for (int c = 0; c < 256; ++c) {
            const std::uint32_t v = trie[u].next[c];
            if (v == 0)
                continue;
            // Follow fails until a state with an edge on c (or root).
            std::uint32_t f = trie[u].fail;
            while (f != 0 && trie[f].next[c] == 0)
                f = trie[f].fail;
            std::uint32_t target = trie[f].next[c];
            if (target == v)   // only when f is root and the edge is v
                target = 0;
            trie[v].fail = target;
            const auto &fo = trie[trie[v].fail].out;
            trie[v].out.insert(trie[v].out.end(), fo.begin(), fo.end());
            bfs.push(v);
        }
    }

    // 3. Flatten to a dense delta function: delta[s][c] follows the
    //    goto edge if present, else the failure chain's edge.
    const std::size_t n = trie.size();
    delta_.assign(n * 256, 0);
    outputs_.resize(n);
    for (std::uint32_t s = 0; s < n; ++s) {
        const auto begin = static_cast<std::uint32_t>(matchList_.size());
        matchList_.insert(matchList_.end(), trie[s].out.begin(),
                          trie[s].out.end());
        outputs_[s] = {begin, static_cast<std::uint32_t>(matchList_.size())};
    }
    // Root edges first (missing edge loops at root).
    for (int c = 0; c < 256; ++c)
        delta_[c] = trie[0].next[c];
    std::queue<std::uint32_t> bfs2;
    for (int c = 0; c < 256; ++c)
        if (trie[0].next[c] != 0)
            bfs2.push(trie[0].next[c]);
    while (!bfs2.empty()) {
        const std::uint32_t u = bfs2.front();
        bfs2.pop();
        for (int c = 0; c < 256; ++c) {
            const std::uint32_t v = trie[u].next[c];
            if (v != 0) {
                delta_[u * 256 + c] = v;
                bfs2.push(v);
            } else {
                delta_[u * 256 + c] = delta_[trie[u].fail * 256 + c];
            }
        }
    }
}

std::uint64_t
AhoCorasick::countMatches(std::span<const std::uint8_t> data) const
{
    std::uint64_t count = 0;
    std::uint32_t s = 0;
    for (std::uint8_t c : data) {
        s = delta_[s * 256 + c];
        count += outputs_[s].second - outputs_[s].first;
    }
    return count;
}

std::vector<Match>
AhoCorasick::findAll(std::span<const std::uint8_t> data) const
{
    std::vector<Match> result;
    std::uint32_t s = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        s = delta_[s * 256 + data[i]];
        for (std::uint32_t k = outputs_[s].first; k < outputs_[s].second;
             ++k) {
            result.push_back(Match{matchList_[k], i + 1});
        }
    }
    return result;
}

bool
AhoCorasick::contains(std::span<const std::uint8_t> data) const
{
    std::uint32_t s = 0;
    for (std::uint8_t c : data) {
        s = delta_[s * 256 + c];
        if (outputs_[s].second != outputs_[s].first)
            return true;
    }
    return false;
}

} // namespace halsim::alg
