#include "alg/deflate.hh"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <queue>
#include <stdexcept>

namespace halsim::alg {

namespace {

// RFC 1951 length/distance code tables.
constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
constexpr int kWindowSize = 32768;

constexpr std::uint16_t kLengthBase[29] = {
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43,
    51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::uint8_t kLengthExtra[29] = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4,
    4, 4, 5, 5, 5, 5, 0};
constexpr std::uint16_t kDistBase[30] = {
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257,
    385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289,
    16385, 24577};
constexpr std::uint8_t kDistExtra[30] = {
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9,
    10, 10, 11, 11, 12, 12, 13, 13};

/** Order in which code-length-code lengths are transmitted. */
constexpr std::uint8_t kClPermutation[19] = {
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};

constexpr int kLitLenSymbols = 286;
constexpr int kDistSymbols = 30;

/** Length (bytes) -> length code index 0..28. */
int
lengthCode(int len)
{
    assert(len >= kMinMatch && len <= kMaxMatch);
    for (int c = 28; c >= 0; --c)
        if (len >= kLengthBase[c])
            return c;
    return 0;
}

/** Distance -> distance code index 0..29. */
int
distCode(int dist)
{
    assert(dist >= 1 && dist <= kWindowSize);
    for (int c = 29; c >= 0; --c)
        if (dist >= kDistBase[c])
            return c;
    return 0;
}

/** LSB-first bit writer per the DEFLATE bit packing rules. */
class BitWriter
{
  public:
    /** Append @p nbits of @p value, LSB first. */
    void
    writeBits(std::uint32_t value, int nbits)
    {
        acc_ |= static_cast<std::uint64_t>(
                    value & ((nbits < 32 ? (1u << nbits) : 0u) - 1u))
                << filled_;
        filled_ += nbits;
        while (filled_ >= 8) {
            out_.push_back(static_cast<std::uint8_t>(acc_));
            acc_ >>= 8;
            filled_ -= 8;
        }
    }

    /** Append a Huffman code: code bits are emitted MSB-first. */
    void
    writeCode(std::uint32_t code, int nbits)
    {
        std::uint32_t rev = 0;
        for (int i = 0; i < nbits; ++i)
            rev |= ((code >> i) & 1u) << (nbits - 1 - i);
        writeBits(rev, nbits);
    }

    /** Pad to a byte boundary with zero bits. */
    void
    align()
    {
        if (filled_ > 0) {
            out_.push_back(static_cast<std::uint8_t>(acc_));
            acc_ = 0;
            filled_ = 0;
        }
    }

    void
    writeByte(std::uint8_t b)
    {
        assert(filled_ == 0);
        out_.push_back(b);
    }

    /** Total bits emitted so far (for block-type cost comparison). */
    std::size_t
    bitCount() const
    {
        return out_.size() * 8 + static_cast<std::size_t>(filled_);
    }

    std::vector<std::uint8_t>
    take()
    {
        align();
        return std::move(out_);
    }

  private:
    std::vector<std::uint8_t> out_;
    std::uint64_t acc_ = 0;
    int filled_ = 0;
};

/** LSB-first bit reader. */
class BitReader
{
  public:
    explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

    std::uint32_t
    readBits(int nbits)
    {
        while (filled_ < nbits) {
            if (pos_ >= data_.size())
                throw std::runtime_error("deflate: truncated stream");
            acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << filled_;
            filled_ += 8;
        }
        const std::uint32_t v =
            static_cast<std::uint32_t>(acc_ & ((1u << nbits) - 1));
        acc_ >>= nbits;
        filled_ -= nbits;
        return v;
    }

    /** Read one Huffman-coded bit (same order as readBits(1)). */
    std::uint32_t readBit() { return readBits(1); }

    void
    align()
    {
        acc_ = 0;
        filled_ = 0;
    }

    std::uint8_t
    readByte()
    {
        assert(filled_ == 0);
        if (pos_ >= data_.size())
            throw std::runtime_error("deflate: truncated stream");
        return data_[pos_++];
    }

  private:
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
    std::uint64_t acc_ = 0;
    int filled_ = 0;
};

/** Fixed literal/length code for symbol 0..287: (code, bits). */
std::pair<std::uint32_t, int>
fixedLitCode(int sym)
{
    if (sym <= 143)
        return {0x30 + sym, 8};               // 00110000 ..
    if (sym <= 255)
        return {0x190 + (sym - 144), 9};      // 110010000 ..
    if (sym <= 279)
        return {sym - 256, 7};                // 0000000 ..
    return {0xc0 + (sym - 280), 8};           // 11000000 ..
}

// --- Canonical Huffman machinery (dynamic blocks) ---------------------

/**
 * Length-limited Huffman code lengths for the given frequencies.
 * Unused symbols get length 0; a single used symbol gets length 1.
 * Overlong codes are clamped to @p max_len and the Kraft sum repaired
 * by deepening the shallowest remaining codes (both sides only need
 * matching lengths, which are transmitted).
 */
std::vector<std::uint8_t>
buildCodeLengths(const std::vector<std::uint64_t> &freq, int max_len)
{
    const std::size_t n = freq.size();
    std::vector<std::uint8_t> lengths(n, 0);

    std::size_t used = 0;
    std::size_t last_used = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (freq[i] > 0) {
            ++used;
            last_used = i;
        }
    }
    if (used == 0)
        return lengths;
    if (used == 1) {
        lengths[last_used] = 1;
        return lengths;
    }

    // Standard Huffman tree via a min-heap of (weight, node id).
    struct Node
    {
        std::uint64_t weight;
        int left = -1, right = -1;
        int symbol = -1;
    };
    std::vector<Node> nodes;
    using Entry = std::pair<std::uint64_t, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    for (std::size_t i = 0; i < n; ++i) {
        if (freq[i] > 0) {
            nodes.push_back({freq[i], -1, -1, static_cast<int>(i)});
            heap.emplace(freq[i], static_cast<int>(nodes.size()) - 1);
        }
    }
    while (heap.size() > 1) {
        const auto [wa, a] = heap.top();
        heap.pop();
        const auto [wb, b] = heap.top();
        heap.pop();
        nodes.push_back({wa + wb, a, b, -1});
        heap.emplace(wa + wb, static_cast<int>(nodes.size()) - 1);
    }

    // Depth-first traversal for leaf depths (iterative).
    std::vector<std::pair<int, int>> stack{{heap.top().second, 0}};
    while (!stack.empty()) {
        const auto [id, depth] = stack.back();
        stack.pop_back();
        const Node &node = nodes[static_cast<std::size_t>(id)];
        if (node.symbol >= 0) {
            lengths[static_cast<std::size_t>(node.symbol)] =
                static_cast<std::uint8_t>(std::min(depth, max_len));
            continue;
        }
        stack.emplace_back(node.left, depth + 1);
        stack.emplace_back(node.right, depth + 1);
    }

    // Repair the Kraft inequality after clamping: deepen the
    // shallowest codes (cheapest in expected bits) until the code is
    // feasible again.
    auto kraft = [&] {
        std::uint64_t k = 0;
        for (std::size_t i = 0; i < n; ++i)
            if (lengths[i] > 0)
                k += std::uint64_t{1}
                     << static_cast<unsigned>(max_len - lengths[i]);
        return k;
    };
    const std::uint64_t cap = std::uint64_t{1}
                              << static_cast<unsigned>(max_len);
    while (kraft() > cap) {
        std::size_t best = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (lengths[i] > 0 && lengths[i] < max_len &&
                (best == n || lengths[i] < lengths[best])) {
                best = i;
            }
        }
        assert(best < n && "cannot repair Huffman lengths");
        ++lengths[best];
    }
    return lengths;
}

/** Canonical code values for a set of lengths (RFC 1951 §3.2.2). */
std::vector<std::uint32_t>
canonicalCodes(const std::vector<std::uint8_t> &lengths)
{
    int max_len = 0;
    for (std::uint8_t l : lengths)
        max_len = std::max<int>(max_len, l);
    std::vector<std::uint32_t> bl_count(
        static_cast<std::size_t>(max_len) + 1, 0);
    for (std::uint8_t l : lengths)
        if (l > 0)
            ++bl_count[l];
    std::vector<std::uint32_t> next_code(
        static_cast<std::size_t>(max_len) + 1, 0);
    std::uint32_t code = 0;
    for (int len = 1; len <= max_len; ++len) {
        code = (code + bl_count[static_cast<std::size_t>(len) - 1]) << 1;
        next_code[static_cast<std::size_t>(len)] = code;
    }
    std::vector<std::uint32_t> codes(lengths.size(), 0);
    for (std::size_t i = 0; i < lengths.size(); ++i)
        if (lengths[i] > 0)
            codes[i] = next_code[lengths[i]]++;
    return codes;
}

/**
 * Canonical Huffman decoder: per-length first-code tables plus the
 * symbol list sorted by (length, symbol).
 */
class CanonicalDecoder
{
  public:
    explicit CanonicalDecoder(const std::vector<std::uint8_t> &lengths)
    {
        maxLen_ = 0;
        for (std::uint8_t l : lengths)
            maxLen_ = std::max<int>(maxLen_, l);
        if (maxLen_ == 0)
            return;
        count_.assign(static_cast<std::size_t>(maxLen_) + 1, 0);
        for (std::uint8_t l : lengths)
            if (l > 0)
                ++count_[l];
        firstCode_.assign(static_cast<std::size_t>(maxLen_) + 1, 0);
        firstIndex_.assign(static_cast<std::size_t>(maxLen_) + 1, 0);
        std::uint32_t code = 0, index = 0;
        for (int len = 1; len <= maxLen_; ++len) {
            code = (code + count_[static_cast<std::size_t>(len) - 1])
                   << 1;
            firstCode_[static_cast<std::size_t>(len)] = code;
            firstIndex_[static_cast<std::size_t>(len)] = index;
            index += count_[static_cast<std::size_t>(len)];
        }
        symbols_.resize(index);
        std::uint32_t pos = 0;
        for (int len = 1; len <= maxLen_; ++len)
            for (std::size_t s = 0; s < lengths.size(); ++s)
                if (lengths[s] == len)
                    symbols_[pos++] = static_cast<std::uint16_t>(s);
    }

    bool usable() const { return maxLen_ > 0; }

    int
    decode(BitReader &br) const
    {
        std::uint32_t code = 0;
        for (int len = 1; len <= maxLen_; ++len) {
            code = (code << 1) | br.readBit();
            const std::uint32_t first =
                firstCode_[static_cast<std::size_t>(len)];
            const std::uint32_t cnt =
                count_[static_cast<std::size_t>(len)];
            if (cnt != 0 && code >= first && code - first < cnt) {
                return symbols_[firstIndex_[static_cast<std::size_t>(
                                    len)] +
                                (code - first)];
            }
        }
        throw std::runtime_error("deflate: invalid Huffman code");
    }

  private:
    int maxLen_ = 0;
    std::vector<std::uint32_t> count_, firstCode_, firstIndex_;
    std::vector<std::uint16_t> symbols_;
};

// --- LZ77 token stream -------------------------------------------------

/** One LZ77 token: a literal (dist == 0) or a (length, dist) match. */
struct Token
{
    std::uint16_t lit_or_len;
    std::uint16_t dist;
};

/** Emit the token stream with the given (possibly fixed) code sets. */
void
emitTokens(BitWriter &bw, const std::vector<Token> &tokens,
           const std::vector<std::uint8_t> &lit_len,
           const std::vector<std::uint32_t> &lit_code,
           const std::vector<std::uint8_t> &dist_len,
           const std::vector<std::uint32_t> &dist_code)
{
    for (const Token &t : tokens) {
        if (t.dist == 0) {
            bw.writeCode(lit_code[t.lit_or_len], lit_len[t.lit_or_len]);
            continue;
        }
        const int lc = lengthCode(t.lit_or_len);
        const std::size_t lsym = static_cast<std::size_t>(257 + lc);
        bw.writeCode(lit_code[lsym], lit_len[lsym]);
        if (kLengthExtra[lc])
            bw.writeBits(
                static_cast<std::uint32_t>(t.lit_or_len - kLengthBase[lc]),
                kLengthExtra[lc]);
        const auto dc = static_cast<std::size_t>(distCode(t.dist));
        bw.writeCode(dist_code[dc], dist_len[dc]);
        if (kDistExtra[dc])
            bw.writeBits(
                static_cast<std::uint32_t>(t.dist - kDistBase[dc]),
                kDistExtra[dc]);
    }
    // End of block.
    bw.writeCode(lit_code[256], lit_len[256]);
}

/** Fixed-Huffman code tables as length/code vectors. */
void
fixedTables(std::vector<std::uint8_t> &lit_len,
            std::vector<std::uint32_t> &lit_code,
            std::vector<std::uint8_t> &dist_len,
            std::vector<std::uint32_t> &dist_code)
{
    lit_len.resize(288);
    lit_code.resize(288);
    for (int s = 0; s < 288; ++s) {
        const auto [code, bits] = fixedLitCode(s);
        lit_code[static_cast<std::size_t>(s)] = code;
        lit_len[static_cast<std::size_t>(s)] =
            static_cast<std::uint8_t>(bits);
    }
    dist_len.assign(30, 5);
    dist_code.resize(30);
    for (std::uint32_t s = 0; s < 30; ++s)
        dist_code[s] = s;
}

/**
 * RLE-encode the concatenated literal+distance length arrays with the
 * 0-18 code-length alphabet (16 = repeat previous 3-6, 17 = zero run
 * 3-10, 18 = zero run 11-138). Returns (symbol, extra) pairs where
 * extra is the repeat count payload (or -1 for plain symbols).
 */
std::vector<std::pair<int, int>>
rleCodeLengths(const std::vector<std::uint8_t> &lengths)
{
    std::vector<std::pair<int, int>> out;
    std::size_t i = 0;
    while (i < lengths.size()) {
        const std::uint8_t v = lengths[i];
        std::size_t run = 1;
        while (i + run < lengths.size() && lengths[i + run] == v)
            ++run;
        if (v == 0) {
            std::size_t left = run;
            while (left >= 11) {
                const std::size_t take = std::min<std::size_t>(left, 138);
                out.emplace_back(18, static_cast<int>(take) - 11);
                left -= take;
            }
            while (left >= 3) {
                const std::size_t take = std::min<std::size_t>(left, 10);
                out.emplace_back(17, static_cast<int>(take) - 3);
                left -= take;
            }
            while (left-- > 0)
                out.emplace_back(0, -1);
        } else {
            out.emplace_back(v, -1);
            std::size_t left = run - 1;
            while (left >= 3) {
                const std::size_t take = std::min<std::size_t>(left, 6);
                out.emplace_back(16, static_cast<int>(take) - 3);
                left -= take;
            }
            while (left-- > 0)
                out.emplace_back(v, -1);
        }
        i += run;
    }
    return out;
}

/** Render one complete dynamic-Huffman block (BFINAL set). */
void
emitDynamicBlock(BitWriter &bw, const std::vector<Token> &tokens)
{
    // Symbol frequencies.
    std::vector<std::uint64_t> lit_freq(kLitLenSymbols, 0);
    std::vector<std::uint64_t> dist_freq(kDistSymbols, 0);
    for (const Token &t : tokens) {
        if (t.dist == 0) {
            ++lit_freq[t.lit_or_len];
        } else {
            ++lit_freq[static_cast<std::size_t>(
                257 + lengthCode(t.lit_or_len))];
            ++dist_freq[static_cast<std::size_t>(distCode(t.dist))];
        }
    }
    ++lit_freq[256];   // end-of-block always occurs

    std::vector<std::uint8_t> lit_len = buildCodeLengths(lit_freq, 15);
    std::vector<std::uint8_t> dist_len = buildCodeLengths(dist_freq, 15);
    // The distance code set may be empty (all-literal data); the spec
    // still transmits at least one distance code length.
    bool any_dist = false;
    for (std::uint8_t l : dist_len)
        any_dist |= l > 0;
    if (!any_dist)
        dist_len[0] = 1;

    const auto lit_code = canonicalCodes(lit_len);
    const auto dist_code = canonicalCodes(dist_len);

    // Trim trailing unused symbols: HLIT >= 257, HDIST >= 1.
    std::size_t hlit = kLitLenSymbols;
    while (hlit > 257 && lit_len[hlit - 1] == 0)
        --hlit;
    std::size_t hdist = kDistSymbols;
    while (hdist > 1 && dist_len[hdist - 1] == 0)
        --hdist;

    std::vector<std::uint8_t> all(lit_len.begin(),
                                  lit_len.begin() +
                                      static_cast<long>(hlit));
    all.insert(all.end(), dist_len.begin(),
               dist_len.begin() + static_cast<long>(hdist));
    const auto rle = rleCodeLengths(all);

    std::vector<std::uint64_t> cl_freq(19, 0);
    for (const auto &[sym, extra] : rle)
        ++cl_freq[static_cast<std::size_t>(sym)];
    std::vector<std::uint8_t> cl_len = buildCodeLengths(cl_freq, 7);
    const auto cl_code = canonicalCodes(cl_len);

    std::size_t hclen = 19;
    while (hclen > 4 && cl_len[kClPermutation[hclen - 1]] == 0)
        --hclen;

    bw.writeBits(1, 1);   // BFINAL
    bw.writeBits(2, 2);   // BTYPE = 10 dynamic
    bw.writeBits(static_cast<std::uint32_t>(hlit - 257), 5);
    bw.writeBits(static_cast<std::uint32_t>(hdist - 1), 5);
    bw.writeBits(static_cast<std::uint32_t>(hclen - 4), 4);
    for (std::size_t i = 0; i < hclen; ++i)
        bw.writeBits(cl_len[kClPermutation[i]], 3);
    for (const auto &[sym, extra] : rle) {
        bw.writeCode(cl_code[static_cast<std::size_t>(sym)],
                     cl_len[static_cast<std::size_t>(sym)]);
        if (sym == 16)
            bw.writeBits(static_cast<std::uint32_t>(extra), 2);
        else if (sym == 17)
            bw.writeBits(static_cast<std::uint32_t>(extra), 3);
        else if (sym == 18)
            bw.writeBits(static_cast<std::uint32_t>(extra), 7);
    }

    emitTokens(bw, tokens, lit_len, lit_code, dist_len, dist_code);
}

/** Render one complete fixed-Huffman block (BFINAL set). */
void
emitFixedBlock(BitWriter &bw, const std::vector<Token> &tokens)
{
    bw.writeBits(1, 1);   // BFINAL
    bw.writeBits(1, 2);   // BTYPE = 01 fixed
    std::vector<std::uint8_t> lit_len, dist_len;
    std::vector<std::uint32_t> lit_code, dist_code;
    fixedTables(lit_len, lit_code, dist_len, dist_code);
    emitTokens(bw, tokens, lit_len, lit_code, dist_len, dist_code);
}

} // namespace

std::vector<std::uint8_t>
deflateCompress(std::span<const std::uint8_t> input, const DeflateConfig &cfg)
{
    const std::uint8_t *in = input.data();
    const std::size_t n = input.size();

    // Hash chains over 3-byte prefixes.
    constexpr std::size_t kHashBits = 15;
    constexpr std::size_t kHashSize = 1u << kHashBits;
    std::vector<std::int32_t> head(kHashSize, -1);
    std::vector<std::int32_t> prev(std::max<std::size_t>(n, 1), -1);

    auto hash3 = [&](std::size_t i) {
        const std::uint32_t h = (std::uint32_t{in[i]} << 16) ^
                                (std::uint32_t{in[i + 1]} << 8) ^
                                in[i + 2];
        return (h * 2654435761u) >> (32 - kHashBits);
    };

    auto matchLen = [&](std::size_t a, std::size_t b) {
        // Length of common prefix of in[a..] and in[b..], capped.
        int len = 0;
        const int cap = static_cast<int>(
            std::min<std::size_t>(kMaxMatch, n - b));
        while (len < cap && in[a + len] == in[b + len])
            ++len;
        return len;
    };

    auto findMatch = [&](std::size_t pos, int &best_dist) {
        int best_len = 0;
        best_dist = 0;
        if (pos + kMinMatch > n)
            return 0;
        std::int32_t cand = head[hash3(pos)];
        unsigned chain = cfg.max_chain;
        while (cand >= 0 && chain-- > 0) {
            const auto cpos = static_cast<std::size_t>(cand);
            if (pos - cpos > kWindowSize)
                break;
            const int len = matchLen(cpos, pos);
            if (len > best_len) {
                best_len = len;
                best_dist = static_cast<int>(pos - cpos);
                if (len >= kMaxMatch)
                    break;
            }
            cand = prev[cpos];
        }
        return best_len >= kMinMatch ? best_len : 0;
    };

    auto insert = [&](std::size_t pos) {
        if (pos + kMinMatch <= n) {
            const auto h = hash3(pos);
            prev[pos] = head[h];
            head[h] = static_cast<std::int32_t>(pos);
        }
    };

    // Positions [0, inserted) are registered in the hash chains. A
    // position is only registered once we have moved past it, so a
    // position can never match against itself (distance 0).
    std::size_t inserted = 0;
    auto insertThrough = [&](std::size_t end) {
        for (; inserted < end && inserted < n; ++inserted)
            insert(inserted);
    };

    std::vector<Token> tokens;
    tokens.reserve(n / 4 + 16);
    std::size_t pos = 0;
    while (pos < n) {
        insertThrough(pos);
        int dist = 0;
        int len = findMatch(pos, dist);
        if (len > 0 && cfg.lazy_match && pos + 1 < n) {
            // One-step lazy evaluation, as zlib does: if the next
            // position has a strictly longer match, emit a literal
            // and take that one instead.
            insertThrough(pos + 1);
            int dist2 = 0;
            const int len2 = findMatch(pos + 1, dist2);
            if (len2 > len) {
                tokens.push_back({in[pos], 0});
                ++pos;
                len = len2;
                dist = dist2;
            }
        }

        if (len > 0) {
            tokens.push_back({static_cast<std::uint16_t>(len),
                              static_cast<std::uint16_t>(dist)});
            insertThrough(pos + static_cast<std::size_t>(len));
            pos += static_cast<std::size_t>(len);
        } else {
            tokens.push_back({in[pos], 0});
            ++pos;
        }
    }

    // Render the cheaper of the fixed and dynamic encodings.
    BitWriter fixed_bw;
    emitFixedBlock(fixed_bw, tokens);
    std::vector<std::uint8_t> out;
    if (cfg.allow_dynamic) {
        BitWriter dyn_bw;
        emitDynamicBlock(dyn_bw, tokens);
        out = dyn_bw.bitCount() < fixed_bw.bitCount() ? dyn_bw.take()
                                                      : fixed_bw.take();
    } else {
        out = fixed_bw.take();
    }

    if (cfg.allow_stored && out.size() > n + 5 * (n / 65535 + 1)) {
        // Compression expanded the data; fall back to stored blocks.
        BitWriter sw;
        std::size_t off = 0;
        do {
            const std::size_t chunk = std::min<std::size_t>(n - off, 65535);
            const bool final = off + chunk == n;
            sw.writeBits(final ? 1 : 0, 1);
            sw.writeBits(0, 2);   // BTYPE = 00 stored
            sw.align();
            sw.writeByte(static_cast<std::uint8_t>(chunk));
            sw.writeByte(static_cast<std::uint8_t>(chunk >> 8));
            sw.writeByte(static_cast<std::uint8_t>(~chunk));
            sw.writeByte(static_cast<std::uint8_t>(~(chunk >> 8)));
            for (std::size_t i = 0; i < chunk; ++i)
                sw.writeByte(in[off + i]);
            off += chunk;
        } while (off < n);
        out = sw.take();
    }
    return out;
}

namespace {

/** Shared literal/length + distance decode loop for coded blocks. */
void
inflateCodedBlock(BitReader &br, const CanonicalDecoder &lit,
                  const CanonicalDecoder &dist,
                  std::vector<std::uint8_t> &out)
{
    for (;;) {
        const int sym = lit.decode(br);
        if (sym == 256)
            break;
        if (sym < 256) {
            out.push_back(static_cast<std::uint8_t>(sym));
            continue;
        }
        const int lc = sym - 257;
        if (lc >= 29)
            throw std::runtime_error("deflate: bad length code");
        int len = kLengthBase[lc];
        if (kLengthExtra[lc])
            len += static_cast<int>(br.readBits(kLengthExtra[lc]));
        if (!dist.usable())
            throw std::runtime_error(
                "deflate: match with empty distance code");
        const int dcode = dist.decode(br);
        if (dcode >= 30)
            throw std::runtime_error("deflate: bad distance code");
        int distance = kDistBase[dcode];
        if (kDistExtra[dcode])
            distance += static_cast<int>(br.readBits(kDistExtra[dcode]));
        if (static_cast<std::size_t>(distance) > out.size())
            throw std::runtime_error("deflate: distance too far");
        const std::size_t from =
            out.size() - static_cast<std::size_t>(distance);
        for (int i = 0; i < len; ++i)
            out.push_back(out[from + static_cast<std::size_t>(i)]);
    }
}

} // namespace

std::vector<std::uint8_t>
deflateDecompress(std::span<const std::uint8_t> input)
{
    BitReader br(input);
    std::vector<std::uint8_t> out;
    bool final = false;
    while (!final) {
        final = br.readBits(1) != 0;
        const std::uint32_t btype = br.readBits(2);
        if (btype == 0) {
            br.align();
            const std::uint32_t len =
                br.readByte() | (std::uint32_t{br.readByte()} << 8);
            const std::uint32_t nlen =
                br.readByte() | (std::uint32_t{br.readByte()} << 8);
            if ((len ^ nlen) != 0xffff)
                throw std::runtime_error("deflate: stored LEN mismatch");
            for (std::uint32_t i = 0; i < len; ++i)
                out.push_back(br.readByte());
        } else if (btype == 1) {
            std::vector<std::uint8_t> lit_len, dist_len;
            std::vector<std::uint32_t> lit_code, dist_code;
            fixedTables(lit_len, lit_code, dist_len, dist_code);
            const CanonicalDecoder lit(lit_len);
            const CanonicalDecoder dist(dist_len);
            inflateCodedBlock(br, lit, dist, out);
        } else if (btype == 2) {
            const std::size_t hlit = br.readBits(5) + 257;
            const std::size_t hdist = br.readBits(5) + 1;
            const std::size_t hclen = br.readBits(4) + 4;
            if (hlit > 286 || hdist > 30)
                throw std::runtime_error("deflate: bad dynamic header");
            std::vector<std::uint8_t> cl_len(19, 0);
            for (std::size_t i = 0; i < hclen; ++i)
                cl_len[kClPermutation[i]] =
                    static_cast<std::uint8_t>(br.readBits(3));
            const CanonicalDecoder cl(cl_len);

            std::vector<std::uint8_t> all;
            all.reserve(hlit + hdist);
            while (all.size() < hlit + hdist) {
                const int sym = cl.decode(br);
                if (sym < 16) {
                    all.push_back(static_cast<std::uint8_t>(sym));
                } else if (sym == 16) {
                    if (all.empty())
                        throw std::runtime_error(
                            "deflate: repeat with no previous length");
                    const std::uint32_t rep = br.readBits(2) + 3;
                    all.insert(all.end(), rep, all.back());
                } else if (sym == 17) {
                    const std::uint32_t rep = br.readBits(3) + 3;
                    all.insert(all.end(), rep, 0);
                } else {
                    const std::uint32_t rep = br.readBits(7) + 11;
                    all.insert(all.end(), rep, 0);
                }
            }
            if (all.size() != hlit + hdist)
                throw std::runtime_error(
                    "deflate: code-length overflow");
            const std::vector<std::uint8_t> lit_len(
                all.begin(), all.begin() + static_cast<long>(hlit));
            const std::vector<std::uint8_t> dist_len(
                all.begin() + static_cast<long>(hlit), all.end());
            const CanonicalDecoder lit(lit_len);
            const CanonicalDecoder dist(dist_len);
            if (!lit.usable())
                throw std::runtime_error(
                    "deflate: empty literal code");
            inflateCodedBlock(br, lit, dist, out);
        } else {
            throw std::runtime_error("deflate: reserved block type");
        }
    }
    return out;
}

} // namespace halsim::alg
