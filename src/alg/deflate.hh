/**
 * @file
 * DEFLATE (RFC 1951) compressor and decompressor: the substrate for
 * the paper's (de)compression function, which drives the BF-2 Deflate
 * accelerator or the host's QATzip. We implement LZ77 with a 32 KiB
 * window and hash-chain matching, emitting stored or fixed-Huffman
 * blocks; the inflater decodes both. (Dynamic-Huffman blocks are not
 * produced and are rejected on decode — the accelerator-equivalent
 * fast path in real deployments also prefers static tables.)
 */

#ifndef HALSIM_ALG_DEFLATE_HH
#define HALSIM_ALG_DEFLATE_HH

#include <cstdint>
#include <span>
#include <vector>

namespace halsim::alg {

/** Compression effort, mirroring deflate levels. */
struct DeflateConfig
{
    unsigned max_chain = 128;   //!< hash-chain probes per position
    bool lazy_match = true;     //!< one-step lazy matching
    /** Emit a stored block when compression would expand the data. */
    bool allow_stored = true;
    /** Build a dynamic Huffman block and keep it when it beats the
     *  fixed encoding (RFC 1951 BTYPE=10). */
    bool allow_dynamic = true;
};

/**
 * Compress @p input into a self-contained DEFLATE stream.
 */
std::vector<std::uint8_t> deflateCompress(
    std::span<const std::uint8_t> input,
    const DeflateConfig &cfg = DeflateConfig{});

/**
 * Decompress any conforming DEFLATE stream (stored, fixed, and
 * dynamic blocks).
 * @throws std::runtime_error on malformed input
 */
std::vector<std::uint8_t> deflateDecompress(
    std::span<const std::uint8_t> input);

} // namespace halsim::alg

#endif // HALSIM_ALG_DEFLATE_HH
