/**
 * @file
 * Arbitrary-precision unsigned integers and modular arithmetic: the
 * public-key cryptography substrate (RSA / Diffie-Hellman / DSA).
 * The paper's crypto function drives the BF-2 PKA accelerator or the
 * host's QAT through OpenSSL; our functional equivalent computes the
 * same modular exponentiations with a from-scratch bignum.
 */

#ifndef HALSIM_ALG_BIGNUM_HH
#define HALSIM_ALG_BIGNUM_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/rng.hh"

namespace halsim::alg {

struct BigUintDivMod;

/**
 * Unsigned big integer, little-endian 32-bit limbs, always
 * normalized (no leading zero limbs; zero is an empty limb vector).
 */
class BigUint
{
  public:
    BigUint() = default;
    explicit BigUint(std::uint64_t v);

    /** Parse from big-endian hex (no 0x prefix, case-insensitive). */
    static BigUint fromHex(const std::string &hex);

    /** Parse from big-endian bytes. */
    static BigUint fromBytes(std::span<const std::uint8_t> bytes);

    /** Uniform random value with exactly @p bits bits (MSB set). */
    static BigUint randomBits(unsigned bits, halsim::Rng &rng);

    /** Uniform random value in [1, n-1]. @pre n >= 2. */
    static BigUint randomBelow(const BigUint &n, halsim::Rng &rng);

    std::string toHex() const;
    std::vector<std::uint8_t> toBytes() const;

    bool isZero() const { return limbs_.empty(); }
    bool isOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }

    /** Number of significant bits (0 for zero). */
    unsigned bitLength() const;

    /** Value of bit @p i (0 = LSB). */
    bool bit(unsigned i) const;

    /** Low 64 bits. */
    std::uint64_t toUint64() const;

    int compare(const BigUint &o) const;
    bool operator==(const BigUint &o) const { return compare(o) == 0; }
    bool operator!=(const BigUint &o) const { return compare(o) != 0; }
    bool operator<(const BigUint &o) const { return compare(o) < 0; }
    bool operator<=(const BigUint &o) const { return compare(o) <= 0; }
    bool operator>(const BigUint &o) const { return compare(o) > 0; }
    bool operator>=(const BigUint &o) const { return compare(o) >= 0; }

    BigUint operator+(const BigUint &o) const;
    /** @pre *this >= o (unsigned subtraction). */
    BigUint operator-(const BigUint &o) const;
    BigUint operator*(const BigUint &o) const;
    BigUint operator<<(unsigned n) const;
    BigUint operator>>(unsigned n) const;

    /** Quotient and remainder in one pass. @pre !d.isZero(). */
    BigUintDivMod divmod(const BigUint &d) const;

    BigUint operator/(const BigUint &d) const;
    BigUint operator%(const BigUint &d) const;

    /** (this ^ e) mod m via left-to-right square-and-multiply. */
    BigUint modexp(const BigUint &e, const BigUint &m) const;

    /** Modular inverse via extended Euclid; zero when none exists. */
    BigUint modinv(const BigUint &m) const;

    /** Greatest common divisor. */
    static BigUint gcd(BigUint a, BigUint b);

    /** Miller-Rabin probable-prime test with @p rounds witnesses. */
    bool isProbablePrime(halsim::Rng &rng, int rounds = 16) const;

  private:
    void trim();

    std::vector<std::uint32_t> limbs_;
};

/** Result pair of BigUint::divmod(). */
struct BigUintDivMod
{
    BigUint quotient;
    BigUint remainder;
};

inline BigUint
BigUint::operator/(const BigUint &d) const
{
    return divmod(d).quotient;
}

inline BigUint
BigUint::operator%(const BigUint &d) const
{
    return divmod(d).remainder;
}

/**
 * Well-known safe prime groups for DH/DSA-style operations, so the
 * crypto function need not generate primes per run.
 */
namespace groups {

/** RFC 2409 Oakley Group 1: 768-bit MODP prime (generator 2). */
BigUint oakley768();

/** A fixed 512-bit probable prime for fast unit tests. */
BigUint prime512();

} // namespace groups

} // namespace halsim::alg

#endif // HALSIM_ALG_BIGNUM_HH
